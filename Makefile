# BWaveR build/test entry points. `make ci` is the verification gate
# referenced from ROADMAP.md: vet plus the full test suite under the race
# detector (the server runs jobs on goroutines; races are correctness bugs).

GO ?= go

# Per-corpus budget for fuzz-smoke; raise for a real fuzzing session, e.g.
# `make fuzz-smoke FUZZTIME=5m`.
FUZZTIME ?= 10s

.PHONY: ci build vet test race bench bench-smoke bench-baseline fuzz-smoke fault-smoke obs-smoke chaos-smoke stream-smoke cluster-smoke mem-smoke mem-bench-smoke qc-smoke

ci: vet race fuzz-smoke fault-smoke obs-smoke bench-smoke chaos-smoke stream-smoke cluster-smoke mem-smoke mem-bench-smoke qc-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-smoke exercises the prefix-table ablation path (build, sweep,
# allocation accounting, kernel cycle model) at unit-test scale.
bench-smoke:
	$(GO) test -run='FtabAblation' ./internal/bench
	$(GO) test -run='^$$' -bench='BenchmarkMapReads$$' -benchtime=1x ./internal/core

# bench-baseline records the PR's performance numbers: the reduced-scale
# prefix-table sweep (reads/sec, allocs/read, modeled FPGA ms, structure
# bytes) written to BENCH_pr4.json, the seed-and-extend sweep (host
# reads/sec, per-read pipeline intensity, modeled two-pass cycles) written
# to BENCH_pr8.json, the batched zero-allocation rerun of that sweep —
# with allocs/read and the speedup-vs-pr8 column — written to BENCH_pr9.json,
# and the QC ingest sweep (dirty-corpus ingest rate, quality-sort's effect on
# modeled wave cycles) written to BENCH_pr10.json.
bench-baseline:
	$(GO) run ./cmd/bwaver-bench -quiet -json BENCH_pr4.json ftab
	$(GO) run ./cmd/bwaver-bench -quiet -json BENCH_pr8.json mem
	$(GO) run ./cmd/bwaver-bench -quiet -json BENCH_pr9.json -mem-baseline BENCH_pr8.json mem
	$(GO) run ./cmd/bwaver-bench -quiet -json BENCH_pr10.json qc

# mem-bench-smoke is the allocation gate for the batched mem pipeline: the
# steady-state zero-allocs test (fails on any alloc per read), the z-drop /
# adaptive-band bit-transparency check, and the alloc-reporting benchmarks
# of the extension kernels the gate rests on.
mem-bench-smoke:
	$(GO) test -run='MemBatchSteadyStateZeroAlloc|MemZDropMatchesFullBand' -count=1 ./internal/core
	$(GO) test -run='^$$' -bench='MapReadsMemInto|Extender' -benchtime=50x ./internal/core ./internal/align

# qc-smoke is the ingest-hardening gate: the tolerant decoder's resync and
# accounting, the QC gate units (trim, gates, paired dooming, quality-sort
# stability), the gated stream, and the served dirty-corpus chaos drill —
# journal-replay accounting identity, CPU/FPGA bit-identity, and the
# pre-cleaned control — all under the race detector.
# zero-alloc gate rerun proves QC stays out of the warm mapping path.
qc-smoke:
	$(GO) test -race -run='Tolerant|QC|Dirty|Gate|Ingest|Wave' ./internal/fastx ./internal/qc ./internal/readsim ./internal/core ./internal/fpga ./internal/server
	$(GO) test -run='MemBatchSteadyStateZeroAlloc' -count=1 ./internal/core

# fuzz-smoke gives every fuzz target a short budget; `go test` allows one
# -fuzz target per invocation, hence the per-target lines.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzTolerantFastq$$' -fuzztime=$(FUZZTIME) ./internal/fastx
	$(GO) test -run='^$$' -fuzz='^FuzzReader$$' -fuzztime=$(FUZZTIME) ./internal/fastx
	$(GO) test -run='^$$' -fuzz='^FuzzReaderGzip$$' -fuzztime=$(FUZZTIME) ./internal/fastx
	$(GO) test -run='^$$' -fuzz='^FuzzRank$$' -fuzztime=$(FUZZTIME) ./internal/rrr
	$(GO) test -run='^$$' -fuzz='^FuzzSerialization$$' -fuzztime=$(FUZZTIME) ./internal/rrr
	$(GO) test -run='^$$' -fuzz='^FuzzReadIndex$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzSearchWithFtab$$' -fuzztime=$(FUZZTIME) ./internal/fmindex
	$(GO) test -run='^$$' -fuzz='^FuzzSMEMs$$' -fuzztime=$(FUZZTIME) ./internal/fmindex

# fault-smoke runs the fault-injection and resilience tests, including the
# end-to-end server scenarios, under the race detector.
fault-smoke:
	$(GO) test -race -run='Fault|Resilience|Breaker|Retry|Fallback|Redistrib|Corrupt|SurvivesDeadDevice|Transient' ./internal/fpga ./internal/server

# chaos-smoke is the crash-safety gate: SIGKILL a real bwaver-server process
# mid-job, restart it against the same -state-dir, and assert the journaled
# job recovers and completes with correct results. The package tests also
# cover the in-process variants (snapshot restore, drain vs. submits).
chaos-smoke:
	$(GO) test -race -run='ChaosKillRestart' -count=1 ./cmd/bwaver-server

# stream-smoke is the streaming-protocol crash gate: SIGKILL a real server
# mid chunked upload and again mid result-stream, then assert the client
# recovers via the journaled offsets, an idempotent resubmit, and a ?from=N
# stream resume whose rows are bit-identical to an undisturbed buffered run.
stream-smoke:
	$(GO) test -race -run='StreamChaosKillResume' -count=1 ./cmd/bwaver-server

# cluster-smoke is the fault-tolerance gate for the gateway/worker tier: a
# real gateway process over two self-registered worker processes, the worker
# owning a running job SIGKILLed mid-job, the job asserted to complete on the
# replica with bit-identical results, scatter-gather stats asserted to answer
# around the corpse, and the gateway asserted to degrade to local serving once
# every worker is dead. The in-process variants (ring skew, breaker life
# cycle, deadline propagation, hung-worker scrapes) run in the package tests.
cluster-smoke:
	$(GO) test -race -run='ClusterChaosFailover' -count=1 ./cmd/bwaver-server

# mem-smoke is the seed-and-extend gate: the SMEM/chain/extend pipeline units,
# the two-pass kernel vs. host bit-identity (under fault plans), the served
# mode=mem/mem-pe jobs end-to-end, the gateway passthrough, and the mem CLI —
# all under the race detector.
mem-smoke:
	$(GO) test -race -run='SMEM|Chain|Extend|Mem|CIGAR' ./internal/align ./internal/fmindex ./internal/core ./internal/fpga ./internal/server ./internal/cluster ./internal/bench ./cmd/bwaver

# obs-smoke covers the observability layer under the race detector: the
# metrics registry and tracer, concurrent /metrics + trace scrapes against
# faulted FPGA jobs, event identity tagging, and the mid-build cancellation
# regression.
obs-smoke:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run='Metrics|Trace|Span|EventTagging|CancelDuringBuild|CanceledBuilder|BuildIndexCtx' ./internal/core ./internal/fpga ./internal/server
