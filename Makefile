# BWaveR build/test entry points. `make ci` is the verification gate
# referenced from ROADMAP.md: vet plus the full test suite under the race
# detector (the server runs jobs on goroutines; races are correctness bugs).

GO ?= go

.PHONY: ci build vet test race bench

ci: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
