// Webupload: drives the BWaveR web application end-to-end over HTTP — the
// workflow of Fig. 4 in the paper. It starts the server in-process, uploads
// a gzipped synthetic reference (FASTA) and read set (FASTQ), polls the job
// page, and downloads the result TSV.
//
//	go run ./examples/webupload
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
	"bwaver/internal/server"
)

func main() {
	// Synthesise the upload files, gzipped as the web app accepts.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 100_000, Seed: 2, RepeatFraction: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 2000, Length: 80, MappingRatio: 0.8, RevCompFraction: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var refBuf bytes.Buffer
	fw := fastx.NewWriter(&refBuf, fastx.FASTA, true)
	if err := fw.Write(&fastx.Record{ID: "synthetic", Seq: []byte(ref.String())}); err != nil {
		log.Fatal(err)
	}
	fw.Close()
	var readsBuf bytes.Buffer
	qw := fastx.NewWriter(&readsBuf, fastx.FASTQ, true)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			log.Fatal(err)
		}
	}
	qw.Close()

	// Start the web application.
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("server running at", ts.URL)

	// Upload through the jobs endpoint, exactly as the browser form would.
	var form bytes.Buffer
	mw := multipart.NewWriter(&form)
	mw.WriteField("b", "15")
	mw.WriteField("sf", "50")
	mw.WriteField("backend", "fpga")
	rf, _ := mw.CreateFormFile("reference", "ref.fa.gz")
	rf.Write(refBuf.Bytes())
	qf, _ := mw.CreateFormFile("reads", "reads.fq.gz")
	qf.Write(readsBuf.Bytes())
	mw.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Post(ts.URL+"/jobs", mw.FormDataContentType(), &form)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		log.Fatalf("submit returned %d", resp.StatusCode)
	}
	jobURL := ts.URL + resp.Header.Get("Location")
	fmt.Println("job submitted:", jobURL)

	// Poll the job page until it is done, as the browser's refresh does.
	for i := 0; ; i++ {
		resp, err := http.Get(jobURL)
		if err != nil {
			log.Fatal(err)
		}
		page, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(page), "— done") {
			break
		}
		if strings.Contains(string(page), "— failed") {
			log.Fatalf("job failed:\n%s", page)
		}
		if i > 100 {
			log.Fatal("job did not finish")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Download the results.
	resp, err = http.Get(jobURL + "/results")
	if err != nil {
		log.Fatal(err)
	}
	tsv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(tsv)), "\n")
	fmt.Printf("downloaded %d result rows; first three:\n", len(lines)-1)
	for _, line := range lines[1:4] {
		fmt.Println(" ", line)
	}

	// Verify against the simulation truth.
	mapped := 0
	for _, line := range lines[1:] {
		if strings.Split(line, "\t")[1] == "true" {
			mapped++
		}
	}
	fmt.Printf("%d/%d reads mapped (expected ~%d)\n", mapped, len(sim), int(0.8*float64(len(sim))))
}
