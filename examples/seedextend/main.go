// Seed-and-extend: the workload the paper's introduction motivates — exact
// short-fragment mapping as the seeding stage of an aligner for longer,
// error-containing reads. Long reads (1 kbp, 2% substitution errors) are
// chopped into 24 bp seeds, the seeds are mapped exactly with BWaveR on the
// simulated FPGA, and candidate loci are extended on the host with banded
// Smith-Waterman (internal/align).
//
//	go run ./examples/seedextend
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bwaver/internal/align"
	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

const (
	genomeLen = 1_000_000
	nReads    = 60
	readLen   = 1000
	errorRate = 0.02
	seedLen   = 24
	seedStep  = 100 // one seed per 100 bp of read
	band      = 20
)

func main() {
	rng := rand.New(rand.NewSource(3))
	ref, err := readsim.Genome(readsim.GenomeConfig{
		Length: genomeLen, GC: 0.45, RepeatFraction: 0.2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Long reads: reference windows with substitution errors.
	type longRead struct {
		seq    dna.Seq
		origin int
	}
	reads := make([]longRead, nReads)
	for i := range reads {
		pos := rng.Intn(genomeLen - readLen)
		seq := ref[pos : pos+readLen].Clone()
		for j := range seq {
			if rng.Float64() < errorRate {
				seq[j] = dna.Base(rng.Intn(4))
			}
		}
		reads[i] = longRead{seq: seq, origin: pos}
	}

	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := fpga.NewDevice(fpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		log.Fatal(err)
	}

	// Seeding: chop every read into fixed-stride seeds and batch-map them
	// on the device. This is exactly the role the paper assigns BWaveR in a
	// seed-and-extend pipeline.
	type seedRef struct{ read, offset int }
	var seeds []dna.Seq
	var meta []seedRef
	for ri, r := range reads {
		for off := 0; off+seedLen <= len(r.seq); off += seedStep {
			seeds = append(seeds, r.seq[off:off+seedLen])
			meta = append(meta, seedRef{read: ri, offset: off})
		}
	}
	run, err := kernel.MapReads(seeds)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := kernel.LocateResults(run.Results); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d reads with %d seeds of %d bp: modeled device time %v\n",
		nReads, len(seeds), seedLen, run.Profile.Total().Round(time.Microsecond))

	// Extension: take the best-voted candidate locus per read and run
	// banded Smith-Waterman around it.
	extStart := time.Now()
	aligned, correct := 0, 0
	for ri, r := range reads {
		votes := map[int]int{} // candidate read-start locus -> seed votes
		for si, m := range meta {
			if m.read != ri {
				continue
			}
			for _, p := range run.Results[si].ForwardPositions {
				votes[int(p)-m.offset]++
			}
		}
		bestLocus, bestVotes := -1, 0
		for locus, v := range votes {
			if v > bestVotes && locus >= 0 {
				bestLocus, bestVotes = locus, v
			}
		}
		if bestLocus < 0 {
			continue
		}
		// Anchor the extension on the first seed hit consistent with the
		// chosen locus.
		res, err := align.ExtendSeed(r.seq, ref, 0, bestLocus, seedLen, band, align.DefaultScoring)
		if err != nil {
			log.Fatal(err)
		}
		if res.Score == 0 {
			continue
		}
		aligned++
		if bestLocus == r.origin {
			correct++
		}
		if ri < 3 {
			fmt.Printf("  read %d: locus %d (%d votes, truth %d), score %d, identity %.3f, cigar %.40s\n",
				ri, bestLocus, bestVotes, r.origin, res.Score, res.Identity(r.seq, ref), res.CIGAR())
		}
	}
	fmt.Printf("extension on host took %v\n", time.Since(extStart).Round(time.Millisecond))
	fmt.Printf("aligned %d/%d long reads, %d at the true locus\n", aligned, nReads, correct)
	if correct < nReads*9/10 {
		log.Fatalf("seed-and-extend accuracy too low: %d/%d", correct, nReads)
	}

	// Strategy 2: SMEM seeds (BWA-MEM style) on the bidirectional index —
	// adaptive-length seeds instead of fixed 24-mers. Each SMEM votes for
	// the loci its occurrences imply.
	fmt.Println("\nSMEM seeding (bidirectional index):")
	text := make([]uint8, len(ref))
	for i, b := range ref {
		text[i] = uint8(b)
	}
	biStart := time.Now()
	bi, err := fmindex.NewBiIndex(text, dna.AlphabetSize, rrr.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bidirectional index built in %v\n", time.Since(biStart).Round(time.Millisecond))

	smemStart := time.Now()
	smemCorrect, totalSeeds := 0, 0
	for ri, r := range reads {
		pattern := make([]uint8, len(r.seq))
		for i, b := range r.seq {
			pattern[i] = uint8(b)
		}
		smems, err := bi.SMEMs(pattern, seedLen)
		if err != nil {
			log.Fatal(err)
		}
		totalSeeds += len(smems)
		votes := map[int]int{}
		for _, s := range smems {
			if s.Rows.Count() > 50 {
				continue // hyper-repetitive seed: skip, as real mappers do
			}
			positions, err := bi.Forward().Locate(s.Rows.Fwd)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range positions {
				// Weight votes by seed length: long unique SMEMs dominate.
				votes[int(p)-s.Start] += s.Len()
			}
		}
		bestLocus, bestVotes := -1, 0
		for locus, v := range votes {
			if v > bestVotes && locus >= 0 {
				bestLocus, bestVotes = locus, v
			}
		}
		if bestLocus == reads[ri].origin {
			smemCorrect++
		}
	}
	fmt.Printf("SMEM seeding: %.1f seeds/read, %d/%d at the true locus, took %v\n",
		float64(totalSeeds)/float64(nReads), smemCorrect, nReads,
		time.Since(smemStart).Round(time.Millisecond))
	if smemCorrect < correct {
		fmt.Println("note: fixed seeds beat SMEMs on this error profile")
	}
}
