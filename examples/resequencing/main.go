// Resequencing: the genome-resequencing scenario from the paper's
// introduction — hundreds of thousands of short reads mapped onto a known
// reference to measure coverage. A synthetic 2 Mbp genome is sequenced at
// ~15x depth with 100 bp reads (5% contamination that maps nowhere), mapped
// with BWaveR on the simulated FPGA, and summarised as a coverage histogram.
//
//	go run ./examples/resequencing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/stats"
)

func main() {
	const (
		genomeLen = 2_000_000
		readLen   = 100
		depth     = 15
	)
	nReads := genomeLen * depth / readLen

	fmt.Printf("simulating %d bp genome and %d reads of %d bp (~%dx depth)\n",
		genomeLen, nReads, readLen, depth)
	ref, err := readsim.Genome(readsim.GenomeConfig{
		Length: genomeLen, GC: 0.41, RepeatFraction: 0.3, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: nReads, Length: readLen, MappingRatio: 0.95, RevCompFraction: 0.5, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v; structure %.2f MB vs %.2f MB plain BWT\n",
		time.Since(start).Round(time.Millisecond),
		float64(ix.StructureBytes())/1e6, float64(ix.Stats().UncompressedBytes)/1e6)

	dev, err := fpga.NewDevice(fpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		log.Fatal(err)
	}
	run, err := kernel.MapReads(readsim.Seqs(reads))
	if err != nil {
		log.Fatal(err)
	}
	locateTime, err := kernel.LocateResults(run.Results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping: modeled device time %v, host locate %v\n",
		run.Profile.Total().Round(time.Millisecond), locateTime.Round(time.Millisecond))

	// Accumulate per-base coverage from uniquely-mapping reads, the core of
	// a resequencing pipeline. Forward hits cover [p, p+len); reverse-strand
	// reads map via their reverse complement, which covers the same window.
	coverage := make([]int32, genomeLen)
	unique, multi, unmapped := 0, 0, 0
	for i, res := range run.Results {
		n := res.Occurrences()
		switch {
		case n == 0:
			unmapped++
			continue
		case n > 1:
			multi++
			continue
		}
		unique++
		var pos int32
		if len(res.ForwardPositions) == 1 {
			pos = res.ForwardPositions[0]
		} else {
			pos = res.ReversePositions[0]
		}
		for j := int(pos); j < int(pos)+len(reads[i].Seq) && j < genomeLen; j++ {
			coverage[j]++
		}
	}
	fmt.Printf("reads: %d unique, %d multi-mapping, %d unmapped\n", unique, multi, unmapped)

	// Coverage distribution.
	sample := make([]float64, 0, genomeLen/10)
	hist, err := stats.NewHistogram(0, 40, 8)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for i, c := range coverage {
		hist.Add(float64(c))
		total += int(c)
		if i%10 == 0 {
			sample = append(sample, float64(c))
		}
	}
	summary := stats.Summarize(sample)
	fmt.Printf("coverage (unique reads only): mean %.2fx, median %.0fx, p5 %.0fx, p95 %.0fx\n",
		float64(total)/float64(genomeLen), summary.Median, summary.P5, summary.P95)
	fmt.Println("coverage histogram:")
	hist.Render(os.Stdout, 50)
}
