// Quickstart: build a BWaveR index over a small reference, map a handful of
// reads on the CPU and on the simulated FPGA, and print the occurrences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fpga"
)

func main() {
	// A toy reference. Real genomes come from FASTA files via internal/fastx
	// or the readsim generator; the API is identical.
	ref := dna.MustParseSeq(
		"ACGTACGGTACCTTAGGCAATCGAACGTACGGTACCTTAGGCAATCGATTGGCCAATTGGCCAA" +
			"GATTACAGATTACAGGGCCCAAATTTACGTACGTACGTTGCATGCATGCATGCAACGTACGGTA")

	// Step 1+2 of the pipeline: suffix array + BWT, then succinct encoding
	// (wavelet tree of RRR sequences, b=15 sf=50 by default).
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed %d bases; structure %d B (+%d B shared table); BWT entropy %.3f bits\n",
		st.RefLength, st.StructureBytes, st.SharedBytes, st.BWTEntropy)

	reads := []dna.Seq{
		dna.MustParseSeq("GGTACCTTAGGC"), // occurs twice, forward
		dna.MustParseSeq("GCCTAAGGTACC"), // reverse complement of the above
		dna.MustParseSeq("GATTACA"),      // the classic
		dna.MustParseSeq("TTTTTTTTTTTT"), // maps nowhere
	}

	// Step 3a: map on the CPU.
	fmt.Println("\nCPU mapping:")
	results, stats, err := ix.MapReads(reads, core.MapOptions{Locate: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		fmt.Printf("  read %d %-14s mapped=%-5t fw=%v rc=%v\n",
			i, reads[i], res.Mapped(), res.ForwardPositions, res.ReversePositions)
	}
	fmt.Printf("  %d/%d reads mapped in %v\n", stats.MappedReads, stats.Reads, stats.Elapsed)

	// Step 3b: the same batch on the simulated Alveo U200.
	fmt.Println("\nFPGA mapping (simulated):")
	dev, err := fpga.NewDevice(fpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		log.Fatal(err)
	}
	run, err := kernel.MapReads(reads)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range run.Results {
		fmt.Printf("  read %d %-14s mapped=%-5t occurrences=%d\n",
			i, reads[i], res.Mapped(), res.Occurrences())
	}
	p := run.Profile
	fmt.Printf("  modeled device time %v (%d kernel cycles), energy %.3f mJ\n",
		p.Total(), p.KernelCycles, p.EnergyJoules(dev.Config().PowerWatts)*1e3)
	for _, e := range p.Events {
		fmt.Printf("    event %-14s %12v -> %12v\n", e.Name, e.Start, e.End)
	}
}
