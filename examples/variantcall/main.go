// Variantcall: the complete resequencing use case from the paper's
// introduction — determine a sample's genetic variants relative to a known
// reference. A sample genome with planted SNVs is sequenced (with
// sequencing errors), the reads are mapped with the k-mismatch search on
// the simulated FPGA's two-pass flow, uniquely-mapped reads are piled up,
// and SNVs are called and compared against the planted truth.
//
//	go run ./examples/variantcall
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/variant"
)

const (
	genomeLen = 500_000
	nSNVs     = 120
	readLen   = 80
	depth     = 12
	errorRate = 0.002
)

func main() {
	nReads := genomeLen * depth / readLen
	rng := rand.New(rand.NewSource(11))

	ref, err := readsim.Genome(readsim.GenomeConfig{Length: genomeLen, Seed: 2, RepeatFraction: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	// The sample differs from the reference at nSNVs well-separated sites.
	sample := ref.Clone()
	truth := map[int]dna.Base{}
	for len(truth) < nSNVs {
		pos := readLen + rng.Intn(genomeLen-2*readLen)
		clash := false
		for q := range truth {
			if q > pos-2*readLen && q < pos+2*readLen {
				clash = true
			}
		}
		if clash {
			continue
		}
		alt := dna.Base((int(sample[pos]) + 1 + rng.Intn(3)) % 4)
		truth[pos] = alt
		sample[pos] = alt
	}
	fmt.Printf("planted %d SNVs in a %d bp sample; sequencing %d reads of %d bp (%.1fx, %.2g%% error)\n",
		nSNVs, genomeLen, nReads, readLen, float64(depth), errorRate*100)

	reads, err := readsim.Simulate(sample, readsim.ReadsConfig{
		Count: nReads, Length: readLen, MappingRatio: 1,
		RevCompFraction: 0.5, ErrorRate: errorRate, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Index the reference; map on the simulated FPGA with the two-pass
	// reconfigurable flow so reads crossing an SNV are rescued at k=1.
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := fpga.NewDevice(fpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		log.Fatal(err)
	}
	mapStart := time.Now()
	run, err := kernel.MapReadsTwoPass(readsim.Seqs(reads), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-pass mapping: modeled device time %v (%d reads rescued by the mismatch kernel), host wall %v\n",
		run.Profile.Total().Round(time.Millisecond), run.Rescued, time.Since(mapStart).Round(time.Millisecond))

	// Pile up uniquely-mapping reads.
	pile, err := variant.NewPileup(genomeLen)
	if err != nil {
		log.Fatal(err)
	}
	unique, multi, unmapped := 0, 0, 0
	addUnique := func(read dna.Seq, fw, rc []int32) error {
		switch len(fw) + len(rc) {
		case 0:
			unmapped++
		case 1:
			unique++
			if len(fw) == 1 {
				return pile.AddRead(int(fw[0]), read)
			}
			return pile.AddRead(int(rc[0]), read.ReverseComplement())
		default:
			multi++
		}
		return nil
	}
	fm := ix.FM()
	for i, r := range reads {
		exact := run.Exact[i]
		if exact.Mapped() {
			fw, err := fm.Locate(exact.Forward)
			if err != nil {
				log.Fatal(err)
			}
			rc, err := fm.Locate(exact.Reverse)
			if err != nil {
				log.Fatal(err)
			}
			if err := addUnique(r.Seq, fw, rc); err != nil {
				log.Fatal(err)
			}
			continue
		}
		approx := run.Approx[i]
		var fw, rc []int32
		for _, m := range approx.Forward {
			ps, err := fm.Locate(m.Range)
			if err != nil {
				log.Fatal(err)
			}
			fw = append(fw, ps...)
		}
		for _, m := range approx.Reverse {
			ps, err := fm.Locate(m.Range)
			if err != nil {
				log.Fatal(err)
			}
			rc = append(rc, ps...)
		}
		if err := addUnique(r.Seq, fw, rc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reads: %d unique, %d multi-mapping, %d unmapped\n", unique, multi, unmapped)

	calls, err := variant.CallSNVs(ref, pile, variant.CallerConfig{MinDepth: 5, MinFraction: 0.75})
	if err != nil {
		log.Fatal(err)
	}
	tp, fp := 0, 0
	var missed []int
	for _, c := range calls {
		if truth[c.Pos] == c.Alt {
			tp++
		} else {
			fp++
		}
	}
	for pos := range truth {
		found := false
		for _, c := range calls {
			if c.Pos == pos && c.Alt == truth[pos] {
				found = true
			}
		}
		if !found {
			missed = append(missed, pos)
		}
	}
	sort.Ints(missed)
	fmt.Printf("called %d SNVs: %d true positives, %d false positives, %d missed\n",
		len(calls), tp, fp, len(missed))
	fmt.Printf("recall %.1f%%, precision %.1f%%\n",
		100*float64(tp)/float64(nSNVs), 100*float64(tp)/float64(max(tp+fp, 1)))
	for i, c := range calls {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(calls)-5)
			break
		}
		fmt.Printf("  %v\n", c)
	}
	if tp < nSNVs*8/10 {
		log.Fatalf("recall too low: %d/%d", tp, nSNVs)
	}
}
