// Textsearch: the paper's data structure is not DNA-specific — §III-B
// derives rank in O(log2(sigma)·sf) "for any arbitrary sequence from an
// alphabet Sigma", and its related work (Waidyasooriya et al.) builds the
// same wavelet-tree structure for general FPGA text search. This example
// indexes English text over its natural byte alphabet with the generic
// substrates (suffixarray -> bwt -> wavelet/RRR -> fmindex) and answers
// phrase queries, bypassing the DNA-only core package.
//
//	go run ./examples/textsearch
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"bwaver/internal/bwt"
	"bwaver/internal/fmindex"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
)

// A public-domain snippet (Darwin, On the Origin of Species, 1859).
const text = `There is grandeur in this view of life, with its several powers,
having been originally breathed into a few forms or into one; and that,
whilst this planet has gone cycling on according to the fixed law of
gravity, from so simple a beginning endless forms most beautiful and most
wonderful have been, and are being, evolved. It is interesting to
contemplate an entangled bank, clothed with many plants of many kinds,
with birds singing on the bushes, with various insects flitting about,
and with worms crawling through the damp earth. These elaborately
constructed forms, so different from each other, and dependent on each
other in so complex a manner, have all been produced by laws acting
around us. Thus, from the war of nature, from famine and death, the most
exalted object which we are capable of conceiving, namely, the production
of the higher animals, directly follows.`

func main() {
	// Build a dense alphabet over the bytes that actually occur, so the
	// wavelet tree is as shallow as the text allows.
	var present [256]bool
	for i := 0; i < len(text); i++ {
		present[text[i]] = true
	}
	var code [256]uint8
	var alphabet []byte
	for b := 0; b < 256; b++ {
		if present[b] {
			code[b] = uint8(len(alphabet))
			alphabet = append(alphabet, byte(b))
		}
	}
	sigma := len(alphabet)
	data := make([]uint8, len(text))
	for i := 0; i < len(text); i++ {
		data[i] = code[text[i]]
	}
	fmt.Printf("indexed %d bytes over a %d-symbol alphabet (wavelet depth %d)\n",
		len(text), sigma, bitsFor(sigma))

	// The same pipeline the DNA mapper uses, over the byte alphabet.
	sa, err := suffixarray.Build(data, sigma)
	if err != nil {
		log.Fatal(err)
	}
	transform, err := bwt.Transform(data, sa)
	if err != nil {
		log.Fatal(err)
	}
	occ, err := fmindex.NewWaveletOcc(transform.Data, sigma,
		rrr.Params{BlockSize: 15, SuperblockFactor: 50})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := fmindex.New(transform, sigma, occ, fmindex.Options{SA: sa})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BWT entropy %.3f bits/symbol; structure %d B (text %d B)\n\n",
		transform.Entropy(sigma), occ.SizeBytes(), len(text))

	queries := []string{"forms", "with", "the war of nature", "grandeur", "entangled bank", "penguin"}
	for _, q := range queries {
		pattern := make([]uint8, len(q))
		valid := true
		for i := 0; i < len(q); i++ {
			if !present[q[i]] {
				valid = false
				break
			}
			pattern[i] = code[q[i]]
		}
		if !valid {
			fmt.Printf("%-22q 0 occurrences (query uses symbols outside the text)\n", q)
			continue
		}
		r := ix.Count(pattern)
		positions, err := ix.Locate(r)
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		fmt.Printf("%-22q %d occurrences", q, r.Count())
		if len(positions) > 0 {
			fmt.Printf(" at %v; first in context: %q", positions, context(q, int(positions[0])))
		}
		fmt.Println()
		// Sanity: agree with the standard library.
		if want := strings.Count(text, q); r.Count() != want {
			log.Fatalf("FM count %d disagrees with strings.Count %d for %q", r.Count(), want, q)
		}
	}
}

func bitsFor(sigma int) int {
	b := 0
	for 1<<uint(b) < sigma {
		b++
	}
	return b
}

func context(q string, pos int) string {
	lo := max(0, pos-12)
	hi := min(len(text), pos+len(q)+12)
	return strings.ReplaceAll(text[lo:hi], "\n", " ")
}
