package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
)

// TestChaosKillRestart is the crash-safety smoke (`make chaos-smoke`): a real
// bwaver-server process is SIGKILLed mid-job, restarted against the same
// -state-dir, and must recover the journaled job and run it to completion
// with correct results. No graceful path is involved anywhere — the first
// process dies without flushing anything beyond what the journal fsync'd.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := filepath.Join(t.TempDir(), "bwaver-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building server binary: %v", err)
	}
	stateDir := t.TempDir()

	// A reference big enough that index construction keeps the job
	// in-flight for seconds — the SIGKILL below lands mid-build.
	refFasta, readsFastq := chaosUpload(t)

	proc, base := startServer(t, bin, stateDir)
	submitChaosJob(t, base, refFasta, readsFastq)
	waitJobState(t, base, 1, func(state string) bool {
		return state == "running" || state == "done"
	}, 30*time.Second)
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		t.Fatal(err)
	}
	proc.Wait()

	proc2, base2 := startServer(t, bin, stateDir)
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()
	state := waitJobState(t, base2, 1, func(state string) bool {
		return state == "done" || state == "failed"
	}, 120*time.Second)
	if state != "done" {
		t.Fatalf("recovered job state %q, want done", state)
	}
	resp, err := http.Get(base2 + "/jobs/1/results")
	if err != nil {
		t.Fatal(err)
	}
	results, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered results returned %d", resp.StatusCode)
	}
	if !bytes.HasPrefix(results, []byte("read\t")) || bytes.Count(results, []byte("\n")) < 2 {
		t.Fatalf("recovered results look empty:\n%.200s", results)
	}

	// The same upload to the recovered server must map identically — the
	// replayed job's output is the ground truth for the repeat.
	submitChaosJob(t, base2, refFasta, readsFastq)
	if st := waitJobState(t, base2, 2, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("verification job state %q, want done", st)
	}
	resp, err = http.Get(base2 + "/jobs/2/results")
	if err != nil {
		t.Fatal(err)
	}
	verify, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(results, verify) {
		t.Error("replayed job results differ from a fresh run of the same upload")
	}
}

// chaosUpload renders a large synthetic reference and a small read set.
func chaosUpload(t *testing.T) (refFasta, readsFastq []byte) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 900_000, Seed: 99, RepeatFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 50, Length: 60, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "chaosref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}
	return fb.Bytes(), qb.Bytes()
}

// startServer launches the binary on an ephemeral port with the given state
// dir (plus any extra flags) and returns the process plus the base URL parsed
// from its banner.
func startServer(t *testing.T, bin, stateDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-state-dir", stateDir, "-log-level", "warn"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				lineCh <- line
			}
		}
	}()
	select {
	case line := <-lineCh:
		addr := line[strings.LastIndex(line, " ")+1:]
		return cmd, "http://" + addr
	case <-deadline:
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server did not print its listen address")
		return nil, ""
	}
}

func submitChaosJob(t *testing.T, base string, refFasta, readsFastq []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("backend", "cpu")
	for name, data := range map[string][]byte{"reference": refFasta, "reads": readsFastq} {
		fw, err := mw.CreateFormFile(name, name+".txt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Post(base+"/jobs", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("submit returned %d: %.200s", resp.StatusCode, body)
	}
}

// waitJobState polls /api/jobs/{id} until ok(state) or the deadline; it
// tolerates transient connection errors while a process comes up.
func waitJobState(t *testing.T, base string, id int, ok func(string) bool, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d", base, id))
		if err == nil {
			var j struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			if err == nil {
				last = j.State
				if ok(j.State) {
					if j.State == "failed" {
						t.Logf("job %d failed: %s", id, j.Error)
					}
					return j.State
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %d stuck in state %q after %v", id, last, timeout)
	return ""
}
