package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestClusterChaosFailover is the cluster smoke (`make cluster-smoke`): a real
// gateway process routes across two real worker processes; the worker that
// owns a running job is SIGKILLed and the job must complete on the replica
// with bit-identical results; then the replica is killed too and the gateway
// must degrade to serving locally.
func TestClusterChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	bin := filepath.Join(t.TempDir(), "bwaver-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building server binary: %v", err)
	}

	// Gateway first (empty pool), then workers that self-register against it —
	// the same join path a scaled-up deployment uses.
	gwProc, gwBase := startServer(t, bin, t.TempDir(),
		"-mode=gateway", "-heartbeat-interval=100ms", "-worker-timeout=2s",
		"-worker-misses=2", "-worker-cooldown=5s")
	defer func() {
		gwProc.Process.Kill()
		gwProc.Wait()
	}()
	w1Proc, w1Base := startServer(t, bin, t.TempDir(),
		"-mode=worker", "-gateway-url="+gwBase, "-heartbeat-interval=100ms")
	defer func() {
		w1Proc.Process.Kill()
		w1Proc.Wait()
	}()
	w2Proc, w2Base := startServer(t, bin, t.TempDir(),
		"-mode=worker", "-gateway-url="+gwBase, "-heartbeat-interval=100ms")
	defer func() {
		w2Proc.Process.Kill()
		w2Proc.Wait()
	}()
	waitClusterHealthy(t, gwBase, 2)

	refFasta, readsFastq := chaosUpload(t)
	job := submitClusterJob(t, gwBase, refFasta, readsFastq, "chaos-cluster-1")
	if int(job["id"].(float64)) != 1 {
		t.Fatalf("gateway job id = %v, want 1", job["id"])
	}
	owner, _ := job["worker"].(string)
	var victimProc *exec.Cmd
	var survivorBase string
	switch owner {
	case w1Base:
		victimProc, survivorBase = w1Proc, w2Base
	case w2Base:
		victimProc, survivorBase = w2Proc, w1Base
	default:
		t.Fatalf("job landed on %q, want one of the workers (%s, %s)", owner, w1Base, w2Base)
	}

	// SIGKILL the owner mid-job: no drain, no deregister, no goodbye.
	if err := victimProc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victimProc.Wait()

	// The heartbeat sweep must evict the corpse and re-run the retained
	// submission on the replica; the gateway id stays 1 throughout.
	if st := waitJobState(t, gwBase, 1, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("failed-over job finished %q, want done", st)
	}
	final := fetchJSON(t, gwBase+"/api/jobs/1")
	if final["worker"] != survivorBase {
		t.Fatalf("job finished on %v, want the survivor %s", final["worker"], survivorBase)
	}
	if fo, _ := final["failovers"].(float64); fo < 1 {
		t.Fatalf("job reports %v failovers, want >= 1", final["failovers"])
	}
	viaGateway := fetchBody(t, gwBase+"/jobs/1/results")
	if !bytes.HasPrefix(viaGateway, []byte("read\t")) {
		t.Fatalf("failed-over results look wrong:\n%.200s", viaGateway)
	}

	// Idempotent replay: retrying the original submission returns job 1, not a
	// new job.
	replayed := submitClusterJob(t, gwBase, refFasta, readsFastq, "chaos-cluster-1")
	if int(replayed["id"].(float64)) != 1 {
		t.Fatalf("idempotent retry returned job %v, want 1", replayed["id"])
	}

	// Ground truth: the same upload submitted directly to the survivor maps
	// bit-identically to what the failover produced.
	direct := submitClusterJob(t, survivorBase, refFasta, readsFastq, "")
	directID := int(direct["id"].(float64))
	if st := waitJobState(t, survivorBase, directID, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("verification job finished %q, want done", st)
	}
	groundTruth := fetchBody(t, fmt.Sprintf("%s/jobs/%d/results", survivorBase, directID))
	if !bytes.Equal(viaGateway, groundTruth) {
		t.Error("failed-over results differ from a direct run of the same upload")
	}

	// No duplicate execution: the survivor ran exactly the failed-over job and
	// the verification job.
	var workerJobs []map[string]any
	if err := json.Unmarshal(fetchBody(t, survivorBase+"/api/jobs"), &workerJobs); err != nil {
		t.Fatal(err)
	}
	if len(workerJobs) != 2 {
		t.Fatalf("survivor tracks %d jobs, want 2 (failover + verification): %v", len(workerJobs), workerJobs)
	}

	// Scatter-gather stats answer with the dead worker reported as an error
	// entry, not a stall.
	stats := fetchJSON(t, gwBase+"/api/stats")
	if _, ok := stats["cluster"]; !ok {
		t.Fatalf("gateway stats lack the cluster block: %v", stats)
	}
	workersBlock, _ := stats["workers"].(map[string]any)
	if len(workersBlock) == 0 {
		t.Fatal("gateway stats carry no per-worker entries")
	}

	// Kill the survivor too: the gateway must report degraded and serve new
	// jobs itself.
	for _, p := range []*exec.Cmd{w1Proc, w2Proc} {
		if p != victimProc {
			p.Process.Kill()
			p.Wait()
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		health := fetchJSON(t, gwBase+"/api/health")
		if health["status"] == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never reported degraded: %v", health)
		}
		time.Sleep(50 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodGet, gwBase+"/demo", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var demo map[string]any
	json.NewDecoder(resp.Body).Decode(&demo)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded demo submission returned %d: %v", resp.StatusCode, demo)
	}
	if demo["worker"] != "local" {
		t.Fatalf("degraded demo served by %v, want local", demo["worker"])
	}
	demoID := int(demo["id"].(float64))
	if st := waitJobState(t, gwBase, demoID, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("degraded local job finished %q, want done", st)
	}
}

// waitClusterHealthy polls the gateway's health until it sees the wanted
// number of healthy workers (self-registration plus one heartbeat round).
func waitClusterHealthy(t *testing.T, gwBase string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		resp, err := http.Get(gwBase + "/api/health")
		if err == nil {
			var m map[string]any
			derr := json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if derr == nil {
				last = m
				if h, _ := m["workers_healthy"].(float64); int(h) == want {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("gateway never saw %d healthy workers; last health: %v", want, last)
}

// submitClusterJob posts a multipart cpu job expecting a JSON answer;
// idemKey, when non-empty, is sent as the Idempotency-Key.
func submitClusterJob(t *testing.T, base string, refFasta, readsFastq []byte, idemKey string) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("backend", "cpu")
	for name, data := range map[string][]byte{"reference": refFasta, "reads": readsFastq} {
		fw, err := mw.CreateFormFile(name, name+".txt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	req.Header.Set("Accept", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit to %s returned %d: %.300s", base, resp.StatusCode, raw)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("submit response not JSON: %v\n%.300s", err, raw)
	}
	return m
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s returned %d: %.200s", url, resp.StatusCode, body)
	}
	return body
}

func fetchJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(fetchBody(t, url), &m); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return m
}
