// Command bwaver-server runs the BWaveR web application (§III-D): upload a
// reference FASTA and reads FASTQ (plain or gzipped), run the pipeline on
// the CPU or the simulated FPGA with an optional mismatch budget, download
// the mapping results. It shuts down gracefully on SIGINT/SIGTERM, letting
// running pipeline jobs finish.
//
//	bwaver-server [-addr :8080]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwaver/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	s := server.New()
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nbwaver-server: shutting down; waiting for running jobs")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("bwaver-server: shutdown: %v", err)
		}
		s.Wait()
	}()

	fmt.Printf("BWaveR web server listening on %s\n", *addr)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
