// Command bwaver-server runs the BWaveR web application (§III-D): upload a
// reference FASTA and reads FASTQ (plain or gzipped), run the pipeline on
// the CPU or the simulated FPGA with an optional mismatch budget, download
// the mapping results. Built indexes are cached content-addressed, so repeat
// references skip construction; jobs can be cancelled (DELETE
// /api/jobs/{id}) and are evicted after a TTL; operational counters are at
// /api/stats.
//
// Durability: with -state-dir the server is crash-safe — every job lifecycle
// transition is journaled (fsync'd) under the directory, built indexes are
// spilled to disk with checksummed atomic writes, and on startup the journal
// is replayed: finished jobs come back with their results, jobs that were
// accepted or running when the process died re-queue and run again. On
// SIGINT/SIGTERM the server drains: new submissions get 503 + Retry-After
// while in-flight jobs finish (bounded by -drain-timeout), then it exits.
// Admission control sheds load before it hurts: -max-queue bounds jobs
// waiting for a pipeline slot (503 when full) and -rate-limit enforces a
// per-client token bucket (429 when exceeded; X-Forwarded-For is only
// honored behind proxies listed in -trusted-proxies).
//
// Streaming protocol: POST /api/jobs opens a job shell, PUT
// /api/jobs/{id}/reference and /reads append resumable chunks at the
// committed offset, POST /api/jobs/{id}/finalize seals and queues it. GET
// /api/jobs/{id}/stream serves results as Server-Sent Events (Last-Event-ID
// resume) or raw NDJSON, batch by batch (-stream-batch) as mapping
// progresses, holding O(batch) result memory per job. An Idempotency-Key
// header on any submission path makes retries return the original job, even
// across a crash-restart.
//
// The simulated FPGA layer is fault-injectable (-fault-plan) and resilient:
// failed shards retry with backoff (-max-retries), repeatedly failing cards
// trip a circuit breaker (-breaker-threshold, -breaker-cooldown), and jobs
// whose devices are all broken transparently rerun on the CPU baseline
// (-fallback=cpu, the default) with the fallback recorded in the job status
// and /api/stats. Device health is at /api/health.
//
// Observability: structured request and job logs go to stderr (-log-format
// text|json, -log-level), Prometheus metrics are at /metrics, per-job span
// traces at /api/jobs/{id}/trace, and -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// Clustering: -mode=gateway runs a stateless front that consistent-hashes
// submissions across -workers (each a bwaver-server in -mode=worker),
// heartbeats them via /api/health, fails jobs over to ring replicas when a
// worker dies, and degrades to serving locally when no worker is healthy.
// -mode=worker is a normal server that additionally announces itself to
// -gateway-url (re-registering every -heartbeat-interval, so a restarted
// gateway relearns the membership). The default -mode=standalone is the
// single-process behavior described above.
//
//	bwaver-server [-addr :8080] [-state-dir ""] [-drain-timeout 30s]
//	              [-max-jobs 2] [-max-queue 64] [-rate-limit 0] [-rate-burst 0]
//	              [-trusted-proxies ""] [-stream-batch 0] [-upload-timeout 10m]
//	              [-cache-entries 8] [-ftab-k 10]
//	              [-job-ttl 0] [-job-timeout 0] [-max-upload-mb 256]
//	              [-devices 1] [-fault-plan ""] [-max-retries 0]
//	              [-breaker-threshold 5] [-breaker-cooldown 30s]
//	              [-fallback cpu] [-verify-stride 64]
//	              [-log-format text] [-log-level info] [-pprof]
//	              [-mode standalone|worker|gateway] [-workers url,url]
//	              [-heartbeat-interval 2s] [-worker-timeout 2s]
//	              [-worker-misses 3] [-worker-cooldown 10s]
//	              [-forward-retries 3] [-gateway-url ""] [-advertise ""]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bwaver/internal/cluster"
	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/obs"
	"bwaver/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	stateDir := flag.String("state-dir", "", "directory for the durable job journal and index spill; empty = stateless")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before exiting anyway")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxConcurrentJobs, "max concurrently running pipelines")
	maxQueue := flag.Int("max-queue", server.DefaultMaxQueue, "max jobs waiting for a pipeline slot before submissions are shed with 503 (negative = unlimited)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client job submissions per second (token bucket, keyed by client IP; 0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst when -rate-limit is set (0 = derive from the rate)")
	trustedProxies := flag.String("trusted-proxies", "", "comma-separated CIDRs whose X-Forwarded-For is trusted for rate-limit client keying (empty = never trust the header)")
	streamBatch := flag.Int("stream-batch", 0, "reads mapped between result-stream flushes (0 = default 8192)")
	uploadTimeout := flag.Duration("upload-timeout", 10*time.Minute, "fail chunked uploads idle this long, freeing their queue slot (0 = never)")
	cacheEntries := flag.Int("cache-entries", server.DefaultCacheEntries, "index cache capacity (distinct reference/parameter combinations)")
	ftabK := flag.Int("ftab-k", core.DefaultFtabK, "k-mer prefix-lookup table order for job indexes (0 = disable)")
	jobTTL := flag.Duration("job-ttl", 0, "evict finished jobs and their results this long after completion (0 = keep forever)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job runtime bound including queue wait (0 = unbounded)")
	maxUploadMB := flag.Int64("max-upload-mb", 256, "request body limit in MiB")
	devices := flag.Int("devices", 1, "number of simulated accelerator cards")
	faultPlan := flag.String("fault-plan", "", `inject simulated device faults, e.g. "seed=7,kernel=0.01,corrupt=0.005,persistent=0:result"`)
	maxRetries := flag.Int("max-retries", 0, "per-device retries after a failed shard attempt (0 = default of 2, negative = no retries)")
	breakerThreshold := flag.Int("breaker-threshold", fpga.DefaultBreakerThreshold, "consecutive failures that open a device's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", fpga.DefaultBreakerCooldown, "how long an open breaker waits before admitting a probe")
	fallback := flag.String("fallback", "cpu", "when the FPGA path fails with a device error: cpu = rerun on the CPU baseline, fail = fail the job")
	verifyStride := flag.Int("verify-stride", server.DefaultVerifyStride, "CPU cross-check every Nth FPGA result (negative = disable)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	mode := flag.String("mode", "standalone", "role: standalone, worker (registers with -gateway-url), or gateway (routes across -workers)")
	workers := flag.String("workers", "", "gateway mode: comma-separated worker base URLs to route across (workers can also self-register)")
	heartbeatInterval := flag.Duration("heartbeat-interval", 2*time.Second, "gateway mode: worker health-poll period; worker mode: re-registration period")
	workerTimeout := flag.Duration("worker-timeout", 2*time.Second, "gateway mode: per-worker deadline for heartbeats, forwards, and scatter-gather fan-out")
	workerMisses := flag.Int("worker-misses", 3, "gateway mode: consecutive heartbeat/forward failures that evict a worker from routing")
	workerCooldown := flag.Duration("worker-cooldown", 10*time.Second, "gateway mode: how long an evicted worker must stay up before re-admission")
	forwardRetries := flag.Int("forward-retries", 3, "gateway mode: forwarding attempts per submission before degrading to local execution")
	gatewayURL := flag.String("gateway-url", "", "worker mode: gateway base URL to register with (empty = don't self-register)")
	advertise := flag.String("advertise", "", "worker mode: base URL the gateway should reach this worker at (empty = derive from the bound address)")
	flag.Parse()

	switch *mode {
	case "standalone", "worker", "gateway":
	default:
		log.Fatalf("bwaver-server: -mode must be standalone, worker, or gateway, got %q", *mode)
	}

	var plan *fpga.FaultPlan
	if *faultPlan != "" {
		parsed, err := fpga.ParseFaultPlan(*faultPlan)
		if err != nil {
			log.Fatalf("bwaver-server: -fault-plan: %v", err)
		}
		plan = parsed
	}
	if *fallback != "cpu" && *fallback != "fail" {
		log.Fatalf("bwaver-server: -fallback must be cpu or fail, got %q", *fallback)
	}

	s, err := server.Open(server.Config{
		MaxConcurrentJobs: *maxJobs,
		MaxUploadBytes:    *maxUploadMB << 20,
		CacheEntries:      *cacheEntries,
		FtabK:             *ftabK,
		JobTTL:            *jobTTL,
		JobTimeout:        *jobTimeout,
		StateDir:          *stateDir,
		MaxQueue:          *maxQueue,
		RatePerSec:        *rateLimit,
		RateBurst:         *rateBurst,
		TrustedProxies:    *trustedProxies,
		StreamBatch:       *streamBatch,
		UploadTimeout:     *uploadTimeout,
		Devices:           *devices,
		FaultPlan:         plan,
		MaxRetries:        *maxRetries,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		Fallback:          *fallback,
		VerifyStride:      *verifyStride,
		Logger:            obs.NewLogger(os.Stderr, *logFormat, *logLevel),
		EnablePprof:       *enablePprof,
	})
	if err != nil {
		log.Fatalf("bwaver-server: %v", err)
	}

	// In gateway mode the HTTP front is the cluster router; the server opened
	// above becomes its embedded local fallback for degraded operation.
	var gw *cluster.Gateway
	handler := s.Handler()
	if *mode == "gateway" {
		gw, err = cluster.New(cluster.Config{
			Workers:           splitWorkers(*workers),
			HeartbeatInterval: *heartbeatInterval,
			WorkerTimeout:     *workerTimeout,
			Cooldown:          *workerCooldown,
			JobTimeout:        *jobTimeout,
			MissThreshold:     *workerMisses,
			ForwardAttempts:   *forwardRetries,
			FtabK:             *ftabK,
			MaxUploadBytes:    *maxUploadMB << 20,
			Local:             s,
			Logger:            obs.NewLogger(os.Stderr, *logFormat, *logLevel),
		})
		if err != nil {
			log.Fatalf("bwaver-server: gateway: %v", err)
		}
		gw.Start()
		handler = gw.Handler()
	}

	httpServer := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("bwaver-server: listen: %v", err)
	}

	// Worker mode: announce this node to the gateway, and keep re-announcing
	// so a restarted (stateless) gateway relearns the membership.
	regCtx, regCancel := context.WithCancel(context.Background())
	defer regCancel()
	selfURL := *advertise
	if *mode == "worker" && *gatewayURL != "" {
		if selfURL == "" {
			selfURL = advertiseURL(ln.Addr())
		}
		go cluster.RegisterLoop(regCtx, *gatewayURL, selfURL, *heartbeatInterval, log.Printf)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nbwaver-server: draining; rejecting new jobs, waiting for running ones")
		// A draining worker tells its gateway to stop routing to it before
		// jobs start being refused with 503s.
		regCancel()
		if *mode == "worker" && *gatewayURL != "" {
			if err := cluster.DeregisterWorker(context.Background(), nil, *gatewayURL, selfURL); err != nil {
				log.Printf("bwaver-server: deregister: %v", err)
			}
		}
		// Drain first, with the API still up: /api/health reports
		// "draining", status polls keep working, and new submissions get
		// 503 + Retry-After. Only then stop the listener and close.
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			log.Printf("bwaver-server: drain: %v (unfinished jobs stay journaled)", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			log.Printf("bwaver-server: shutdown: %v", err)
		}
		if gw != nil {
			gw.Close()
		}
		s.Close()
	}()

	fmt.Printf("BWaveR web server listening on %s\n", ln.Addr())
	if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// splitWorkers parses the -workers flag: comma-separated URLs, blanks
// dropped.
func splitWorkers(list string) []string {
	var out []string
	for _, w := range strings.Split(list, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// advertiseURL derives a worker's self-advertised base URL from its bound
// listen address, mapping wildcard hosts to loopback (good enough for
// single-machine clusters; multi-host deployments should pass -advertise).
func advertiseURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
