// Command bwaver-server runs the BWaveR web application (§III-D): upload a
// reference FASTA and reads FASTQ (plain or gzipped), run the pipeline on
// the CPU or the simulated FPGA with an optional mismatch budget, download
// the mapping results. Built indexes are cached content-addressed, so repeat
// references skip construction; jobs can be cancelled (DELETE
// /api/jobs/{id}) and are evicted after a TTL; operational counters are at
// /api/stats. It shuts down gracefully on SIGINT/SIGTERM, letting running
// pipeline jobs finish.
//
//	bwaver-server [-addr :8080] [-max-jobs 2] [-cache-entries 8]
//	              [-job-ttl 0] [-job-timeout 0] [-max-upload-mb 256]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwaver/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxConcurrentJobs, "max concurrently running pipelines")
	cacheEntries := flag.Int("cache-entries", server.DefaultCacheEntries, "index cache capacity (distinct reference/parameter combinations)")
	jobTTL := flag.Duration("job-ttl", 0, "evict finished jobs and their results this long after completion (0 = keep forever)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job runtime bound including queue wait (0 = unbounded)")
	maxUploadMB := flag.Int64("max-upload-mb", 256, "request body limit in MiB")
	flag.Parse()

	s := server.NewWithConfig(server.Config{
		MaxConcurrentJobs: *maxJobs,
		MaxUploadBytes:    *maxUploadMB << 20,
		CacheEntries:      *cacheEntries,
		JobTTL:            *jobTTL,
		JobTimeout:        *jobTimeout,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nbwaver-server: shutting down; waiting for running jobs")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("bwaver-server: shutdown: %v", err)
		}
		s.Wait()
		s.Close()
	}()

	fmt.Printf("BWaveR web server listening on %s\n", *addr)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
