package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStreamChaosKillResume is the streaming-protocol crash smoke
// (`make stream-smoke`): a real bwaver-server process is SIGKILLed twice —
// once mid chunked upload, once with a result-stream subscriber attached —
// and each restart must let the client pick up where it left off: the upload
// resumes from the journaled committed offset, an idempotent resubmission
// replays the original job instead of double-running it, and the NDJSON
// stream resumed with ?from=N yields, together with the rows held from before
// the crash, exactly the byte sequence an undisturbed buffered run produces.
func TestStreamChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := filepath.Join(t.TempDir(), "bwaver-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building server binary: %v", err)
	}
	stateDir := t.TempDir()
	refFasta, readsFastq := chaosUpload(t)
	// A small stream batch makes the job commit its stream incrementally, so
	// the mid-stream kill actually lands between batches.
	flags := []string{"-stream-batch", "4"}

	// Ground truth: an undisturbed buffered run on the same data.
	proc, base := startServer(t, bin, stateDir, flags...)
	submitChaosJob(t, base, refFasta, readsFastq)
	if st := waitJobState(t, base, 1, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("golden job state %q, want done", st)
	}
	goldenTSV := fetchChaosResults(t, base, 1)
	goldenStream := fetchNDJSON(t, base, 1, 0)

	// Open a chunked job and feed half the reference, then SIGKILL mid-upload.
	created := postJSON(t, base+"/api/jobs", `{"backend":"cpu"}`, "stream-chaos", http.StatusCreated)
	id := int(created["id"].(float64))
	cut := len(refFasta) / 2
	putStreamChunk(t, base, id, "reference", 0, refFasta[:cut])
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	// Restart #1: the idempotent resubmit replays the uploading job with its
	// committed offset, and the upload resumes from there.
	proc2, base2 := startServer(t, bin, stateDir, flags...)
	replayed := postJSON(t, base2+"/api/jobs", `{"backend":"cpu"}`, "stream-chaos", http.StatusOK)
	if got := int(replayed["id"].(float64)); got != id {
		t.Fatalf("post-crash resubmit returned job %d, want %d", got, id)
	}
	off := int64(replayed["reference_offset"].(float64))
	if off <= 0 || off > int64(cut) {
		t.Fatalf("replayed committed offset %d outside (0,%d]", off, cut)
	}
	putStreamChunk(t, base2, id, "reference", off, refFasta[off:])
	putStreamChunk(t, base2, id, "reads", 0, readsFastq)
	resp, err := http.Post(fmt.Sprintf("%s/api/jobs/%d/finalize", base2, id), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("finalize returned %d", resp.StatusCode)
	}

	// Attach an NDJSON subscriber while the job runs, collect whatever rows
	// arrive, and SIGKILL mid-stream.
	held := make(chan []string, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/jobs/%d/stream", base2, id), nil)
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			held <- nil
			return
		}
		defer resp.Body.Close()
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, `{"event"`) {
				break // terminal summary, not a result row
			}
			lines = append(lines, line)
		}
		held <- lines
	}()
	waitJobState(t, base2, id, func(s string) bool { return s == "running" || s == "done" }, 120*time.Second)
	time.Sleep(200 * time.Millisecond)
	if err := proc2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc2.Wait()
	heldRows := <-held
	// The kill can tear the connection mid-line; only the final held row can
	// be affected, so drop it when it doesn't match the golden run.
	if n := len(heldRows); n > 0 && (n > len(goldenStream) || heldRows[n-1] != goldenStream[n-1]) {
		heldRows = heldRows[:n-1]
	}

	// Restart #2: the accepted job replays from its journaled payloads and
	// re-runs deterministically; the client resumes the stream after the rows
	// it already holds and must end up with the golden byte sequence.
	proc3, base3 := startServer(t, bin, stateDir, flags...)
	defer func() {
		proc3.Process.Kill()
		proc3.Wait()
	}()
	if st := waitJobState(t, base3, id, func(s string) bool { return s == "done" || s == "failed" }, 120*time.Second); st != "done" {
		t.Fatalf("replayed chunked job state %q, want done", st)
	}
	resumed := fetchNDJSON(t, base3, id, len(heldRows))
	combined := append(append([]string{}, heldRows...), resumed...)
	if len(combined) != len(goldenStream) {
		t.Fatalf("held %d + resumed %d rows != golden %d", len(heldRows), len(resumed), len(goldenStream))
	}
	for i := range combined {
		if combined[i] != goldenStream[i] {
			t.Fatalf("stream row %d differs after crash resume:\n got %s\nwant %s", i+1, combined[i], goldenStream[i])
		}
	}
	// And the buffered TSV download agrees bit for bit with the golden run.
	if got := fetchChaosResults(t, base3, id); !bytes.Equal(got, goldenTSV) {
		t.Error("chunked job TSV differs from the buffered golden run")
	}
}

// postJSON posts a JSON body with an Idempotency-Key and decodes the reply.
func postJSON(t *testing.T, url, body, idemKey string, wantCode int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s returned %d, want %d: %.200s", url, resp.StatusCode, wantCode, raw)
	}
	payload := map[string]any{}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("POST %s: non-JSON reply: %.200s", url, raw)
	}
	return payload
}

// putStreamChunk uploads one chunk at an explicit offset.
func putStreamChunk(t *testing.T, base string, id int, part string, offset int64, data []byte) {
	t.Helper()
	url := fmt.Sprintf("%s/api/jobs/%d/%s?offset=%d", base, id, part, offset)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk %s@%d returned %d: %.200s", part, offset, resp.StatusCode, raw)
	}
}

// fetchNDJSON drains a finished job's stream from row `from` on, returning
// the result rows (the terminal summary line is dropped).
func fetchNDJSON(t *testing.T, base string, id, from int) []string {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/jobs/%d/stream?from=%d", base, id, from), nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[len(lines)-1], `{"event"`) {
		t.Fatalf("stream did not end with a terminal summary:\n%.300s", body)
	}
	return lines[:len(lines)-1]
}

func fetchChaosResults(t *testing.T, base string, id int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/results", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results for job %d returned %d", id, resp.StatusCode)
	}
	return body
}
