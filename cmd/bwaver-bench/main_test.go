package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyArgs shrink everything so the full suite runs in seconds.
var tinyArgs = []string{"-ref-scale", "0.002", "-read-scale", "0.0002", "-sample", "500", "-quiet"}

func TestBenchAll(t *testing.T) {
	var out bytes.Buffer
	if err := run(append(append([]string{}, tinyArgs...), "all"), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"Fig. 5", "Fig. 6", "Fig. 7",
		"Table I", "Table II",
		"BWaveR FPGA", "Bowtie2-like 16t",
		"E.Coli", "Human Chr.21",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchSingleExperiments(t *testing.T) {
	for _, target := range []string{"fig5", "fig6", "fig7", "table1", "table2"} {
		var out bytes.Buffer
		if err := run(append(append([]string{}, tinyArgs...), target), &out); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", target)
		}
	}
	// fig5 must not print fig6's table and vice versa.
	var out bytes.Buffer
	if err := run(append(append([]string{}, tinyArgs...), "fig5"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Fig. 6") {
		t.Error("fig5 printed fig6 output")
	}
}

func TestBenchErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"unknown-experiment"},
		{"-ref-scale", "0", "fig5"},
		{"-read-scale", "9", "table1"},
		{"-sample", "1", "table1"},
		{"fig5", "fig6"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
