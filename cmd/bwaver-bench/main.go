// Command bwaver-bench regenerates the figures and tables of the paper's
// evaluation (§IV).
//
//	bwaver-bench [-ref-scale 0.01] [-read-scale 0.001] [-sample 20000] [-seed 1] [-quiet]
//	             [-csv DIR] [-json FILE] [-ftab-ks 0,8,10,12] <fig5|fig6|fig7|table1|table2|ablate|ftab|mem|qc|all>
//
// Default scales shrink the paper's workloads roughly 100-1000x so a full
// run finishes in minutes; pass -ref-scale 1 -read-scale 1 for the paper's
// exact sizes (long runtime, ~2 GB memory). See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bwaver/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwaver-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwaver-bench", flag.ContinueOnError)
	refScale := fs.Float64("ref-scale", bench.Quick.Ref, "reference length scale in (0,1]")
	readScale := fs.Float64("read-scale", bench.Quick.Reads, "read count scale in (0,1]")
	sample := fs.Int("sample", bench.Quick.SampleReads, "reads measured before extrapolating")
	seed := fs.Int64("seed", 1, "random seed")
	quiet := fs.Bool("quiet", false, "suppress progress lines")
	csvDir := fs.String("csv", "", "also export machine-readable CSV files into this directory")
	jsonPath := fs.String("json", "", "write the sweep as JSON to this file (with the ftab and mem targets)")
	ftabKs := fs.String("ftab-ks", "", "comma-separated prefix-table orders for the ftab target (default 0,8,10,12)")
	memBaseline := fs.String("mem-baseline", "", "earlier mem sweep JSON to compute the speedup column against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bwaver-bench [flags] <ablate|fig5|fig6|fig7|ftab|mem|qc|table1|table2|all>")
	}
	scale := bench.Scale{Ref: *refScale, Reads: *readScale, SampleReads: *sample, Seed: *seed}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	target := fs.Arg(0)
	runFig56 := target == "fig5" || target == "fig6" || target == "all"
	runFig7 := target == "fig7" || target == "all"
	runT1 := target == "table1" || target == "all"
	runT2 := target == "table2" || target == "all"
	runAblate := target == "ablate" || target == "all"
	runFtab := target == "ftab" || target == "all"
	runMem := target == "mem" || target == "all"
	runQC := target == "qc" || target == "all"
	if !runFig56 && !runFig7 && !runT1 && !runT2 && !runAblate && !runFtab && !runMem && !runQC {
		return fmt.Errorf("unknown experiment %q", target)
	}

	fmt.Fprintf(out, "BWaveR evaluation — ref scale %g, read scale %g, sample %d reads\n",
		scale.Ref, scale.Reads, scale.SampleReads)

	exportCSV := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		return bench.ExportCSV(*csvDir, name, write)
	}

	if runFig56 {
		rows, err := bench.Fig5And6(scale, progress)
		if err != nil {
			return err
		}
		if target != "fig6" {
			bench.PrintFig5(out, rows)
		}
		if target != "fig5" {
			bench.PrintFig6(out, rows)
		}
		if err := exportCSV("fig5_fig6.csv", func(w io.Writer) error {
			return bench.WriteFig5CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if runFig7 {
		rows, err := bench.Fig7(scale, progress)
		if err != nil {
			return err
		}
		bench.PrintFig7(out, rows)
		if err := exportCSV("fig7.csv", func(w io.Writer) error {
			return bench.WriteFig7CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if runT1 {
		results, err := bench.Table1(scale, progress)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Table I — 100M (scaled) 35 bp reads on E.Coli", results)
		if err := exportCSV("table1.csv", func(w io.Writer) error {
			return bench.WriteTableCSV(w, results)
		}); err != nil {
			return err
		}
	}
	if runT2 {
		results, err := bench.Table2(scale, progress)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Table II — 1/10/100M (scaled) 40 bp reads on Human Chr.21", results)
		if err := exportCSV("table2.csv", func(w io.Writer) error {
			return bench.WriteTableCSV(w, results)
		}); err != nil {
			return err
		}
	}
	if runAblate {
		res, err := bench.Ablate(scale, progress)
		if err != nil {
			return err
		}
		bench.PrintAblation(out, res)
	}
	if runFtab {
		ks, err := parseKs(*ftabKs)
		if err != nil {
			return err
		}
		res, err := bench.FtabAblate(scale, ks, progress)
		if err != nil {
			return err
		}
		bench.PrintFtabAblation(out, res)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := bench.WriteFtabJSON(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	if runMem {
		var baseline *bench.MemBenchResult
		if *memBaseline != "" {
			b, err := bench.LoadMemJSON(*memBaseline)
			if err != nil {
				return err
			}
			baseline = b
		}
		res, err := bench.MemBench(scale, baseline, progress)
		if err != nil {
			return err
		}
		bench.PrintMemBench(out, res)
		if *jsonPath != "" && target == "mem" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := bench.WriteMemJSON(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	if runQC {
		res, err := bench.QCBench(scale, progress)
		if err != nil {
			return err
		}
		bench.PrintQCBench(out, res)
		if *jsonPath != "" && target == "qc" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := bench.WriteQCJSON(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	return nil
}

// parseKs parses the -ftab-ks list; empty means the package default sweep.
func parseKs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-ftab-ks: %w", err)
		}
		ks = append(ks, k)
	}
	return ks, nil
}
