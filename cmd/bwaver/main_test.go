package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
)

// writeTestFiles generates a reference FASTA and a reads FASTQ in dir and
// returns their paths plus the simulated reads for truth checking.
func writeTestFiles(t *testing.T, dir string) (refPath, readsPath string, sim []readsim.Read) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 8000, Seed: 4, RepeatFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	sim, err = readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 80, Length: 50, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	w := fastx.NewWriter(rf, fastx.FASTA, false)
	if err := w.Write(&fastx.Record{ID: "ref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rf.Close()

	readsPath = filepath.Join(dir, "reads.fq")
	qf, err := os.Create(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	qw := fastx.NewWriter(qf, fastx.FASTQ, false)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	qw.Close()
	qf.Close()
	return refPath, readsPath, sim
}

func TestIndexMapStatsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, sim := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")

	var out bytes.Buffer
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath, "-b", "15", "-sf", "50"}, &out); err != nil {
		t.Fatalf("index: %v", err)
	}
	if !strings.Contains(out.String(), "indexed 8000 bases") {
		t.Errorf("index output: %q", out.String())
	}

	for _, backend := range []string{"cpu", "fpga"} {
		tsvPath := filepath.Join(dir, backend+".tsv")
		out.Reset()
		if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
			"-backend", backend, "-out", tsvPath}, &out); err != nil {
			t.Fatalf("map %s: %v", backend, err)
		}
		data, err := os.ReadFile(tsvPath)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != len(sim)+1 {
			t.Fatalf("%s: %d lines, want %d", backend, len(lines), len(sim)+1)
		}
		mapped := map[string]bool{}
		for _, line := range lines[1:] {
			f := strings.Split(line, "\t")
			mapped[f[0]] = f[1] == "true"
		}
		for _, r := range sim {
			if mapped[r.ID] != (r.Origin >= 0) {
				t.Errorf("%s: read %s mapped=%t, want %t", backend, r.ID, mapped[r.ID], r.Origin >= 0)
			}
		}
	}

	out.Reset()
	if err := run([]string{"stats", "-index", indexPath}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"reference length:  8000", "b=15 sf=50", "full-sa"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestMemSubcommand(t *testing.T) {
	dir := t.TempDir()
	refPath, _, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	var out bytes.Buffer
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &out); err != nil {
		t.Fatalf("index: %v", err)
	}

	// Interleaved paired reads with substitution errors — the workload the
	// seed-and-extend pipeline exists for.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 8000, Seed: 4, RepeatFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 20, ReadLength: 70, InsertMean: 250, InsertStdDev: 25,
		MappingRatio: 0.9, ErrorRate: 0.02, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	readsPath := filepath.Join(dir, "pairs.fq")
	qf, err := os.Create(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	qw := fastx.NewWriter(qf, fastx.FASTQ, false)
	for _, p := range pairs {
		for m, seq := range []string{p.R1.String(), p.R2.String()} {
			if err := qw.Write(&fastx.Record{ID: fmt.Sprintf("%s/%d", p.ID, m+1), Seq: []byte(seq)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	qw.Close()
	qf.Close()

	var samByBackend [2]string
	for bi, backend := range []string{"cpu", "fpga"} {
		samPath := filepath.Join(dir, backend+".sam")
		out.Reset()
		if err := run([]string{"mem", "-index", indexPath, "-reads", readsPath,
			"-backend", backend, "-paired", "-out", samPath}, &out); err != nil {
			t.Fatalf("mem %s: %v", backend, err)
		}
		data, err := os.ReadFile(samPath)
		if err != nil {
			t.Fatal(err)
		}
		samByBackend[bi] = string(data)
	}
	if samByBackend[0] != samByBackend[1] {
		t.Error("cpu and fpga backends produced different SAM")
	}
	text := samByBackend[0]
	if !strings.HasPrefix(text, "@HD\t") {
		t.Fatalf("mem output is not SAM:\n%.200s", text)
	}
	var records, mapped int
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		records++
		f := strings.Split(line, "\t")
		if len(f) < 11 {
			t.Fatalf("short SAM record: %q", line)
		}
		if f[2] != "*" {
			mapped++
		}
	}
	if records != 2*len(pairs) {
		t.Fatalf("%d SAM records, want %d", records, 2*len(pairs))
	}
	if mapped < records*8/10 {
		t.Errorf("only %d/%d reads mapped", mapped, records)
	}

	if err := run([]string{"mem", "-index", indexPath, "-reads", readsPath, "-backend", "gpu"}, &out); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestIndexLocateModes(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, _ := writeTestFiles(t, dir)
	for _, mode := range []string{"full", "sampled", "none"} {
		indexPath := filepath.Join(dir, mode+".bwx")
		var out bytes.Buffer
		if err := run([]string{"index", "-ref", refPath, "-out", indexPath, "-locate", mode}, &out); err != nil {
			t.Fatalf("index -locate %s: %v", mode, err)
		}
		args := []string{"map", "-index", indexPath, "-reads", readsPath, "-out", filepath.Join(dir, mode+".tsv")}
		if mode == "none" {
			args = append(args, "-locate=false")
		}
		if err := run(args, &out); err != nil {
			t.Fatalf("map with %s index: %v", mode, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "x.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},
		{"bogus"},
		{"index"},
		{"index", "-ref", refPath},
		{"index", "-ref", "/nonexistent", "-out", indexPath},
		{"index", "-ref", refPath, "-out", indexPath, "-locate", "bogus"},
		{"index", "-ref", refPath, "-out", indexPath, "-b", "99"},
		{"map"},
		{"map", "-index", "/nonexistent", "-reads", readsPath},
		{"map", "-index", indexPath, "-reads", "/nonexistent"},
		{"map", "-index", indexPath, "-reads", readsPath, "-backend", "asic"},
		{"stats"},
		{"stats", "-index", "/nonexistent"},
		{"stats", "-index", refPath}, // not an index file
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestMapSAMOutput(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, sim := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	samPath := filepath.Join(dir, "out.sam")
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
		"-format", "sam", "-out", samPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(samPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "@SQ\tSN:ref\tLN:8000") {
		t.Errorf("SAM header missing @SQ:\n%.200s", text)
	}
	// Every simulated read must appear; mapped ones with a position, and
	// the planted origin must appear as POS (1-based) on some record.
	for _, r := range sim {
		if !strings.Contains(text, r.ID+"\t") {
			t.Fatalf("read %s missing from SAM", r.ID)
		}
		if r.Origin >= 0 {
			want := "\t" + itoa(r.Origin+1) + "\t"
			if !strings.Contains(text, want) {
				t.Errorf("read %s origin %d not found as SAM POS", r.ID, r.Origin)
			}
		}
	}
	// Reverse-strand reads must carry flag 16 (or 16|256 for secondaries).
	sawReverse := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "@") || line == "" {
			continue
		}
		f := strings.Split(line, "\t")
		if f[1] == "16" || f[1] == "272" {
			sawReverse = true
		}
	}
	if !sawReverse {
		t.Error("no reverse-strand SAM records emitted")
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func TestMapSAMRequiresLocate(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
		"-format", "sam", "-locate=false"}, &bytes.Buffer{}); err == nil {
		t.Error("sam without locate accepted")
	}
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
		"-format", "xml"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestMultiContigTSV(t *testing.T) {
	dir := t.TempDir()
	// Two-record reference.
	g1, err := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := readsim.Genome(readsim.GenomeConfig{Length: 2000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "multi.fa")
	rf, _ := os.Create(refPath)
	w := fastx.NewWriter(rf, fastx.FASTA, false)
	w.Write(&fastx.Record{ID: "chrA", Seq: []byte(g1.String())})
	w.Write(&fastx.Record{ID: "chrB", Seq: []byte(g2.String())})
	w.Close()
	rf.Close()

	// One read planted inside chrB.
	readsPath := filepath.Join(dir, "reads.fq")
	qf, _ := os.Create(readsPath)
	qw := fastx.NewWriter(qf, fastx.FASTQ, false)
	qw.Write(&fastx.Record{ID: "planted", Seq: []byte(g2[700:760].String())})
	qw.Close()
	qf.Close()

	indexPath := filepath.Join(dir, "multi.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chrB:700") {
		t.Errorf("TSV lacks contig-relative position chrB:700:\n%s", out.String())
	}
}

func TestExtractAndVerify(t *testing.T) {
	dir := t.TempDir()
	refPath, _, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// verify against the original must pass.
	var out bytes.Buffer
	if err := run([]string{"verify", "-index", indexPath, "-ref", refPath}, &out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "matches") {
		t.Errorf("verify output: %q", out.String())
	}
	// extract, re-index the extraction, verify against the original FASTA.
	extractedPath := filepath.Join(dir, "extracted.fa")
	if err := run([]string{"extract", "-index", indexPath, "-out", extractedPath}, &bytes.Buffer{}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	origData, _ := os.ReadFile(refPath)
	extData, _ := os.ReadFile(extractedPath)
	orig, err := fastx.ReadAll(bytes.NewReader(origData))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := fastx.ReadAll(bytes.NewReader(extData))
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 || string(ext[0].Seq) != string(orig[0].Seq) {
		t.Error("extracted FASTA differs from original")
	}
	// verify against a different reference must fail.
	otherRef, _, _ := writeTestFiles(t, t.TempDir())
	_ = otherRef
	badDir := t.TempDir()
	badRefPath, _, _ := func() (string, string, []readsim.Read) {
		// regenerate with a different seed by tweaking one base
		data, _ := os.ReadFile(refPath)
		mutated := bytes.Replace(data, []byte("ACG"), []byte("ACT"), 1)
		p := filepath.Join(badDir, "mut.fa")
		os.WriteFile(p, mutated, 0o644)
		return p, "", nil
	}()
	if err := run([]string{"verify", "-index", indexPath, "-ref", badRefPath}, &bytes.Buffer{}); err == nil {
		t.Error("verify accepted a mutated reference")
	}
	// Multi-contig extract preserves record structure.
	multiPath := filepath.Join(dir, "multi.fa")
	mf, _ := os.Create(multiPath)
	w := fastx.NewWriter(mf, fastx.FASTA, false)
	w.Write(&fastx.Record{ID: "c1", Seq: []byte("ACGTACGTACGTACGTACGT")})
	w.Write(&fastx.Record{ID: "c2", Seq: []byte("TTTTGGGGCCCCAAAATTTT")})
	w.Close()
	mf.Close()
	multiIndex := filepath.Join(dir, "multi.bwx")
	if err := run([]string{"index", "-ref", multiPath, "-out", multiIndex}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	multiOut := filepath.Join(dir, "multi-ext.fa")
	if err := run([]string{"extract", "-index", multiIndex, "-out", multiOut}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	med, _ := os.ReadFile(multiOut)
	recs, err := fastx.ReadAll(bytes.NewReader(med))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "c1" || string(recs[1].Seq) != "TTTTGGGGCCCCAAAATTTT" {
		t.Errorf("multi-contig extraction wrong: %+v", recs)
	}
	if err := run([]string{"verify", "-index", multiIndex, "-ref", multiPath}, &bytes.Buffer{}); err != nil {
		t.Errorf("multi-contig verify failed: %v", err)
	}
}

func TestMapWithMismatches(t *testing.T) {
	dir := t.TempDir()
	// Reference plus reads with exactly one substitution each.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 9000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 40, Length: 50, MappingRatio: 1, ErrorRate: 0.02, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.fa")
	rf, _ := os.Create(refPath)
	w := fastx.NewWriter(rf, fastx.FASTA, false)
	w.Write(&fastx.Record{ID: "ref", Seq: []byte(ref.String())})
	w.Close()
	rf.Close()
	readsPath := filepath.Join(dir, "reads.fq")
	qf, _ := os.Create(readsPath)
	qw := fastx.NewWriter(qf, fastx.FASTQ, false)
	for _, r := range sim {
		qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())})
	}
	qw.Close()
	qf.Close()
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	for _, backend := range []string{"cpu", "fpga"} {
		var out bytes.Buffer
		if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
			"-backend", backend, "-mismatches", "2"}, &out); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(lines) != len(sim)+1 {
			t.Fatalf("%s: %d lines, want %d", backend, len(lines), len(sim)+1)
		}
		byID := map[string][]string{}
		for _, line := range lines[1:] {
			f := strings.Split(line, "\t")
			byID[f[0]] = f
		}
		for _, r := range sim {
			f := byID[r.ID]
			if f == nil {
				t.Fatalf("%s: read %s missing", backend, r.ID)
			}
			wantMM := r.Errors
			if wantMM > 2 {
				continue // beyond budget; may or may not map elsewhere
			}
			if f[1] != "true" {
				t.Errorf("%s: read %s with %d errors did not map", backend, r.ID, r.Errors)
				continue
			}
			if f[2] != itoa(wantMM) {
				t.Errorf("%s: read %s best_mismatches=%s, want %d", backend, r.ID, f[2], wantMM)
			}
			// Origin must appear among best positions.
			if !strings.Contains(","+f[4]+",", ","+itoa(r.Origin)+",") {
				t.Errorf("%s: read %s origin %d not in positions %s", backend, r.ID, r.Origin, f[4])
			}
		}
	}
	// Negative budget rejected.
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath, "-mismatches", "-1"}, &bytes.Buffer{}); err == nil {
		t.Error("negative mismatches accepted")
	}
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath, "-mismatches", "1", "-format", "sam"}, &bytes.Buffer{}); err == nil {
		t.Error("mismatches+sam accepted")
	}
}

func TestMapPairedEnd(t *testing.T) {
	dir := t.TempDir()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 60, ReadLength: 50, InsertMean: 300, InsertStdDev: 20,
		MappingRatio: 0.8, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.fa")
	rf, _ := os.Create(refPath)
	w := fastx.NewWriter(rf, fastx.FASTA, false)
	w.Write(&fastx.Record{ID: "ref", Seq: []byte(ref.String())})
	w.Close()
	rf.Close()
	writeMates := func(name string, pick func(p readsim.Pair) string) string {
		p := filepath.Join(dir, name)
		f, _ := os.Create(p)
		qw := fastx.NewWriter(f, fastx.FASTQ, false)
		for _, pr := range pairs {
			qw.Write(&fastx.Record{ID: pr.ID, Seq: []byte(pick(pr))})
		}
		qw.Close()
		f.Close()
		return p
	}
	r1Path := writeMates("r1.fq", func(p readsim.Pair) string { return p.R1.String() })
	r2Path := writeMates("r2.fq", func(p readsim.Pair) string { return p.R2.String() })
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"map", "-index", indexPath, "-reads", r1Path, "-reads2", r2Path,
		"-min-insert", "200", "-max-insert", "400"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(pairs)+1 {
		t.Fatalf("%d lines, want %d", len(lines), len(pairs)+1)
	}
	byID := map[string][]string{}
	for _, line := range lines[1:] {
		f := strings.Split(line, "\t")
		byID[f[0]] = f
	}
	for _, p := range pairs {
		f := byID[p.ID]
		wantConcordant := p.Origin >= 0
		if (f[1] == "true") != wantConcordant {
			t.Errorf("pair %s concordant=%s, want %t", p.ID, f[1], wantConcordant)
		}
		if wantConcordant && f[4] != itoa(p.Origin) {
			// The best (lowest-position) placement is usually the truth for
			// unique fragments; tolerate repeats by checking insert too.
			if f[5] != itoa(p.Insert) {
				t.Logf("pair %s: best placement %s/%s, truth %d/%d (repeat?)", p.ID, f[4], f[5], p.Origin, p.Insert)
			}
		}
	}
	// Mismatched mate counts must fail.
	short := writeMates("short.fq", func(p readsim.Pair) string { return p.R1.String() })
	data, _ := os.ReadFile(short)
	trimmed := bytes.Join(bytes.Split(data, []byte("\n"))[:8], []byte("\n"))
	os.WriteFile(short, append(trimmed, '\n'), 0o644)
	if err := run([]string{"map", "-index", indexPath, "-reads", r1Path, "-reads2", short}, &bytes.Buffer{}); err == nil {
		t.Error("mismatched mate counts accepted")
	}
	// Paired SAM output: proper flags, mate fields, TLEN symmetry.
	var samOut bytes.Buffer
	if err := run([]string{"map", "-index", indexPath, "-reads", r1Path, "-reads2", r2Path,
		"-min-insert", "200", "-max-insert", "400", "-format", "sam"}, &samOut); err != nil {
		t.Fatalf("paired SAM: %v", err)
	}
	properPairs := 0
	tlenByName := map[string][]int{}
	for _, line := range strings.Split(strings.TrimSpace(samOut.String()), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		var flag, tlen int
		fmt.Sscanf(f[1], "%d", &flag)
		fmt.Sscanf(f[8], "%d", &tlen)
		if flag&0x1 == 0 {
			t.Fatalf("record without paired flag: %s", line)
		}
		if flag&0x2 != 0 {
			properPairs++
			if f[6] != "=" {
				t.Errorf("proper pair with RNEXT %q", f[6])
			}
			tlenByName[f[0]] = append(tlenByName[f[0]], tlen)
		}
	}
	if properPairs == 0 {
		t.Fatal("no proper pairs emitted")
	}
	for name, tlens := range tlenByName {
		if len(tlens) != 2 || tlens[0] != -tlens[1] {
			t.Errorf("pair %s TLENs %v not symmetric", name, tlens)
		}
	}
	// Paired + mismatches rejected.
	if err := run([]string{"map", "-index", indexPath, "-reads", r1Path, "-reads2", r2Path, "-mismatches", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("paired mismatches accepted")
	}
}

func TestStatsVerbose(t *testing.T) {
	dir := t.TempDir()
	refPath, _, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"stats", "-index", indexPath, "-verbose"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"wavelet nodes", "ACGT", "entropy", "contigs:"} {
		if !strings.Contains(text, want) {
			t.Errorf("verbose stats missing %q:\n%s", want, text)
		}
	}
	// Three node rows for the DNA alphabet.
	if strings.Count(text, "\n  ") < 4 { // 1 contig row + 3 node rows
		t.Errorf("verbose stats too short:\n%s", text)
	}
}

func TestFPGAReportCommand(t *testing.T) {
	dir := t.TempDir()
	refPath, _, _ := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"fpga-report", "-index", indexPath, "-avg-steps", "40", "-pes", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"URAM", "BRAM36", "processing elements:          2", "reads/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	if err := run([]string{"fpga-report"}, &bytes.Buffer{}); err == nil {
		t.Error("missing index accepted")
	}
}

func TestMapStreaming(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, sim := writeTestFiles(t, dir)
	indexPath := filepath.Join(dir, "ref.bwx")
	if err := run([]string{"index", "-ref", refPath, "-out", indexPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// Streaming must match the batch path byte for byte (modulo ordering,
	// which both preserve).
	var batch, streamed bytes.Buffer
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath}, &batch); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath, "-stream"}, &streamed); err != nil {
		t.Fatal(err)
	}
	if batch.String() != streamed.String() {
		t.Error("streamed output differs from batch output")
	}
	if strings.Count(streamed.String(), "\n") != len(sim)+1 {
		t.Errorf("streamed lines wrong")
	}
	// Incompatible combinations rejected.
	for _, args := range [][]string{
		{"map", "-index", indexPath, "-reads", readsPath, "-stream", "-backend", "fpga"},
		{"map", "-index", indexPath, "-reads", readsPath, "-stream", "-format", "sam"},
		{"map", "-index", indexPath, "-reads", readsPath, "-stream", "-mismatches", "1"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestIndexSAAlgoAndProfileJSON(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath, _ := writeTestFiles(t, dir)
	for _, algo := range []string{"sais", "dc3", "doubling"} {
		indexPath := filepath.Join(dir, algo+".bwx")
		if err := run([]string{"index", "-ref", refPath, "-out", indexPath, "-sa-algo", algo}, &bytes.Buffer{}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := run([]string{"verify", "-index", indexPath, "-ref", refPath}, &bytes.Buffer{}); err != nil {
			t.Fatalf("%s index fails verification: %v", algo, err)
		}
	}
	if err := run([]string{"index", "-ref", refPath, "-out", filepath.Join(dir, "x.bwx"), "-sa-algo", "magic"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown sa-algo accepted")
	}

	// FPGA profile JSON.
	indexPath := filepath.Join(dir, "sais.bwx")
	profilePath := filepath.Join(dir, "profile.json")
	if err := run([]string{"map", "-index", indexPath, "-reads", readsPath,
		"-backend", "fpga", "-profile", profilePath, "-out", filepath.Join(dir, "r.tsv")}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(profilePath)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Events []struct {
			Name string
		}
		TotalNs      int64   `json:"total_ns"`
		EnergyJoules float64 `json:"energy_joules"`
		KernelCycles uint64
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("profile not valid JSON: %v\n%s", err, data)
	}
	if len(payload.Events) < 5 || payload.TotalNs <= 0 || payload.EnergyJoules <= 0 || payload.KernelCycles == 0 {
		t.Errorf("profile payload incomplete: %+v", payload)
	}
}
