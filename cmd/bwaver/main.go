// Command bwaver is the BWaveR command-line mapper.
//
//	bwaver index       -ref ref.fa[.gz] -out ref.bwx [-b 15] [-sf 50] [-locate full|sampled|none] [-plain]
//	                   [-trace spans.json]
//	bwaver map         -index ref.bwx -reads reads.fq[.gz] [-backend cpu|fpga] [-workers N]
//	                   [-format tsv|sam] [-mismatches K] [-reads2 mate2.fq -min-insert N -max-insert N]
//	                   [-stream] [-tolerant] [-min-len N -max-ee F -max-n N -trim-qual Q -qc-sort] [-out results]
//	bwaver mem         -index ref.bwx -reads reads.fq[.gz] [-backend cpu|fpga] [-paired]
//	                   [-min-seed 19] [-band 16] [-min-score 30] [-min-insert N -max-insert N]
//	                   [-tolerant] [-min-len N -max-ee F -max-n N -trim-qual Q -qc-sort] [-out out.sam]
//	bwaver stats       -index ref.bwx [-verbose]
//	bwaver extract     -index ref.bwx [-out ref.fa] [-gzip]
//	bwaver verify      -index ref.bwx -ref ref.fa
//	bwaver fpga-report -index ref.bwx [-avg-steps 35] [-pes N]
//
// `index` and `map` are the paper's pipeline (§III-D) split for batch use:
// BWT/SA computation plus succinct encoding, then sequence mapping on the
// CPU or the simulated FPGA. The remaining subcommands exploit properties
// of the structure: the BWT is reversible (extract/verify) and the cycle
// model doubles as a capacity planner (fpga-report).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/obs"
	"bwaver/internal/qc"
	"bwaver/internal/rrr"
	"bwaver/internal/sam"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwaver:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: bwaver <index|map|stats> [flags]")
	}
	switch args[0] {
	case "index":
		return cmdIndex(args[1:], out)
	case "map":
		return cmdMap(args[1:], out)
	case "mem":
		return cmdMem(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "extract":
		return cmdExtract(args[1:], out)
	case "verify":
		return cmdVerify(args[1:], out)
	case "fpga-report":
		return cmdFPGAReport(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want index, map, mem, stats, extract, verify or fpga-report)", args[0])
	}
}

// cmdFPGAReport prints the modeled on-chip resource footprint and
// throughput of the kernel for a built index.
func cmdFPGAReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fpga-report", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file")
	avgSteps := fs.Float64("avg-steps", 35, "mean backward-search steps per read (read length for mapping reads)")
	pes := fs.Int("pes", 1, "processing elements")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("fpga-report: -index is required")
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	dev, err := fpga.NewDevice(fpga.Config{PEs: *pes})
	if err != nil {
		return err
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		return err
	}
	report, err := kernel.Report(*avgSteps)
	if err != nil {
		return err
	}
	fpga.WriteReport(out, report)
	return nil
}

// cmdExtract reconstructs the reference FASTA from an index file — the BWT
// is reversible, so the succinct structure doubles as a lossless archive.
func cmdExtract(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file")
	outPath := fs.String("out", "", "output FASTA (default stdout)")
	gz := fs.Bool("gzip", false, "gzip the output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("extract: -index is required")
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	seq, err := ix.ExtractReference()
	if err != nil {
		return err
	}
	var dst io.Writer = out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := fastx.NewWriter(dst, fastx.FASTA, *gz)
	if contigs := ix.Contigs(); contigs != nil {
		for _, c := range contigs.Contigs() {
			rec := &fastx.Record{ID: c.Name, Seq: []byte(seq[c.Offset:c.End()].String())}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	} else if err := w.Write(&fastx.Record{ID: "ref", Seq: []byte(seq.String())}); err != nil {
		return err
	}
	return w.Close()
}

// cmdVerify checks an index file against the reference FASTA it was built
// from, by extracting the archived sequence and comparing base by base.
func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file")
	refPath := fs.String("ref", "", "reference FASTA the index should encode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" || *refPath == "" {
		return fmt.Errorf("verify: -index and -ref are required")
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	ref, contigs, err := loadReference(*refPath)
	if err != nil {
		return err
	}
	got, err := ix.ExtractReference()
	if err != nil {
		return fmt.Errorf("verify: extraction failed: %w", err)
	}
	if len(got) != len(ref) {
		return fmt.Errorf("verify: index encodes %d bases, FASTA has %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			return fmt.Errorf("verify: mismatch at position %d: index has %v, FASTA has %v", i, got[i], ref[i])
		}
	}
	if ixContigs := ix.Contigs(); ixContigs != nil && contigs != nil {
		if ixContigs.Count() != contigs.Count() {
			return fmt.Errorf("verify: index has %d contigs, FASTA has %d", ixContigs.Count(), contigs.Count())
		}
		for i := 0; i < contigs.Count(); i++ {
			a, b := ixContigs.Contig(i), contigs.Contig(i)
			if a != b {
				return fmt.Errorf("verify: contig %d differs: index %+v, FASTA %+v", i, a, b)
			}
		}
	}
	fmt.Fprintf(out, "verify: index matches %s (%d bases)\n", *refPath, len(ref))
	return nil
}

func loadReference(path string) (dna.Seq, *core.ContigSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs, err := fastx.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("%s: no FASTA records", path)
	}
	var raw []byte
	names := make([]string, len(recs))
	lengths := make([]int, len(recs))
	for i, rec := range recs {
		raw = append(raw, rec.Seq...)
		names[i] = rec.ID
		lengths[i] = len(rec.Seq)
	}
	seq, replaced := dna.Sanitize(raw, dna.A)
	if replaced > 0 {
		fmt.Fprintf(os.Stderr, "bwaver: replaced %d ambiguous bases with A\n", replaced)
	}
	contigs, err := core.NewContigSet(names, lengths)
	if err != nil {
		return nil, nil, err
	}
	return seq, contigs, nil
}

// qcFlagSet registers the QC gate flags shared by the read-mapping
// subcommands; policy() resolves them after Parse.
type qcFlagSet struct {
	minLen, maxN, trimQual, phred *int
	maxEE                         *float64
	sort, tolerant                *bool
}

func addQCFlags(fs *flag.FlagSet) *qcFlagSet {
	return &qcFlagSet{
		minLen:   fs.Int("min-len", 0, "QC: reject reads shorter than this after trimming (0 = off)"),
		maxEE:    fs.Float64("max-ee", 0, "QC: reject reads with more expected errors than this (0 = off)"),
		maxN:     fs.Int("max-n", 0, "QC: reject reads with more than this many ambiguous bases (0 = off)"),
		trimQual: fs.Int("trim-qual", 0, "QC: trim 3' bases below this phred score (0 = off)"),
		sort:     fs.Bool("qc-sort", false, "QC: stably sort surviving reads by ascending expected errors"),
		phred:    fs.Int("phred", 0, "QC: phred offset 33 or 64 (0 = auto-detect)"),
		tolerant: fs.Bool("tolerant", false, "skip malformed FASTQ records instead of aborting"),
	}
}

func (q *qcFlagSet) policy(paired bool) (qc.Policy, error) {
	pol := qc.Policy{
		MinLen: *q.minLen, MaxEE: *q.maxEE, MaxN: *q.maxN, TrimQual: *q.trimQual,
		QualitySort: *q.sort, PhredOffset: *q.phred, Tolerant: *q.tolerant,
		Paired: paired,
	}
	if err := pol.Validate(); err != nil {
		return qc.Policy{}, err
	}
	return pol, nil
}

func loadReads(path string, pol qc.Policy) ([]dna.Seq, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if pol.Active() {
		res, err := qc.Ingest(f, pol)
		if err != nil {
			return nil, nil, err
		}
		rep := res.Report
		fmt.Fprintf(os.Stderr, "bwaver: qc: %d/%d reads passed (%d malformed, %d rejected, %d bases trimmed, phred+%d)\n",
			rep.Passed, rep.Attempted, rep.Malformed, rep.RejectedTotal(), rep.TrimmedBases, rep.PhredOffset)
		if len(res.Seqs) == 0 {
			return nil, nil, fmt.Errorf("no reads survived QC in %s", path)
		}
		return res.Seqs, res.IDs, nil
	}
	recs, err := fastx.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	seqs := make([]dna.Seq, len(recs))
	ids := make([]string, len(recs))
	for i, rec := range recs {
		seqs[i], _ = dna.Sanitize(rec.Seq, dna.A)
		ids[i] = rec.ID
	}
	return seqs, ids, nil
}

func cmdIndex(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference FASTA file (.gz ok)")
	outPath := fs.String("out", "", "output index file")
	b := fs.Int("b", 15, "RRR block size (2-15)")
	sf := fs.Int("sf", 50, "RRR superblock factor (>= 1)")
	locate := fs.String("locate", "full", "locate structure: full, sampled or none")
	sampleRate := fs.Int("sample-rate", 32, "sampled-SA rate (with -locate sampled)")
	plain := fs.Bool("plain", false, "use uncompressed bit-vectors instead of RRR")
	saAlgo := fs.String("sa-algo", "sais", "suffix-array construction: sais, dc3 or doubling")
	ftabK := fs.Int("ftab-k", core.DefaultFtabK, "k-mer prefix-lookup table order (0 = none)")
	tracePath := fs.String("trace", "", "write the build's span trace as JSON to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *outPath == "" {
		return fmt.Errorf("index: -ref and -out are required")
	}
	var algo core.SAAlgorithm
	switch *saAlgo {
	case "sais":
		algo = core.SAIS
	case "dc3":
		algo = core.DC3
	case "doubling":
		algo = core.Doubling
	default:
		return fmt.Errorf("index: unknown suffix-array algorithm %q", *saAlgo)
	}
	var mode core.LocateMode
	switch *locate {
	case "full":
		mode = core.LocateFullSA
	case "sampled":
		mode = core.LocateSampled
	case "none":
		mode = core.LocateNone
	default:
		return fmt.Errorf("index: unknown locate mode %q", *locate)
	}
	ref, contigs, err := loadReference(*refPath)
	if err != nil {
		return err
	}
	// A trace collects one span per construction phase (build.sa, build.bwt,
	// build.encode); without -trace the context carries none and the spans
	// are free no-ops.
	var tr *obs.Trace
	ctx := context.Background()
	if *tracePath != "" {
		tr = obs.NewTrace("index")
		ctx = obs.WithTrace(ctx, tr)
	}
	start := time.Now()
	ix, err := core.BuildIndexCtx(ctx, ref, core.IndexConfig{
		RRR:             rrr.Params{BlockSize: *b, SuperblockFactor: *sf},
		PlainBitvectors: *plain,
		Locate:          mode,
		SampleRate:      *sampleRate,
		SAAlgorithm:     algo,
		FtabK:           *ftabK,
	})
	if err != nil {
		return err
	}
	if err := ix.SetContigs(contigs); err != nil {
		return err
	}
	if err := ix.SaveFile(*outPath); err != nil {
		return err
	}
	if tr != nil {
		if err := writeTraceJSON(*tracePath, tr, out); err != nil {
			return err
		}
	}
	st := ix.Stats()
	fmt.Fprintf(out, "indexed %d bases in %v (SA %v, BWT %v, encode %v)\n",
		st.RefLength, time.Since(start).Round(time.Millisecond),
		st.SATime.Round(time.Millisecond), st.BWTTime.Round(time.Millisecond),
		st.EncodeTime.Round(time.Millisecond))
	fmt.Fprintf(out, "structure %.2f MB (+%.2f MB shared table), %.1f%% of the plain BWT; BWT entropy %.3f bits\n",
		float64(st.StructureBytes)/1e6, float64(st.SharedBytes)/1e6,
		st.CompressionRatio()*100, st.BWTEntropy)
	if st.FtabBytes > 0 {
		fmt.Fprintf(out, "ftab k=%d: %.2f MB built in %v\n",
			ix.FtabK(), float64(st.FtabBytes)/1e6, st.FtabTime.Round(time.Millisecond))
	}
	return nil
}

// writeTraceJSON serializes a build trace to path ("-" = the command's
// output writer).
func writeTraceJSON(path string, tr *obs.Trace, out io.Writer) error {
	payload, err := json.MarshalIndent(tr.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if path == "-" {
		_, err := out.Write(payload)
		return err
	}
	return os.WriteFile(path, payload, 0o644)
}

func cmdMap(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("map", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file from `bwaver index`")
	readsPath := fs.String("reads", "", "reads FASTQ/FASTA file (.gz ok)")
	backend := fs.String("backend", "cpu", "mapping backend: cpu or fpga")
	workers := fs.Int("workers", 1, "CPU worker goroutines (-1 = all cores)")
	doLocate := fs.Bool("locate", true, "resolve occurrence positions")
	format := fs.String("format", "tsv", "output format: tsv or sam")
	mismatches := fs.Int("mismatches", 0, "substitution budget per read (0 = exact); on the fpga backend this runs the two-pass reconfigurable flow")
	reads2Path := fs.String("reads2", "", "mate-2 FASTQ for paired-end mapping")
	minInsert := fs.Int("min-insert", 100, "minimum fragment length for proper pairs (with -reads2)")
	maxInsert := fs.Int("max-insert", 600, "maximum fragment length for proper pairs (with -reads2)")
	stream := fs.Bool("stream", false, "stream the reads in bounded memory (cpu backend, tsv output)")
	profilePath := fs.String("profile", "", "write the fpga run's event profile as JSON (fpga backend)")
	outPath := fs.String("out", "", "results file (default stdout)")
	qcf := addQCFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	qcPol, err := qcf.policy(false)
	if err != nil {
		return fmt.Errorf("map: %w", err)
	}
	if qcPol.Active() && *reads2Path != "" {
		return fmt.Errorf("map: QC gating with two-file pairs would desynchronize mates; use `bwaver mem -paired` with interleaved input")
	}
	if *format != "tsv" && *format != "sam" {
		return fmt.Errorf("map: unknown format %q (want tsv or sam)", *format)
	}
	if *format == "sam" && !*doLocate {
		return fmt.Errorf("map: -format sam requires -locate")
	}
	if *mismatches < 0 {
		return fmt.Errorf("map: -mismatches must be >= 0")
	}
	if *mismatches > 0 && *format == "sam" {
		return fmt.Errorf("map: -mismatches currently supports only -format tsv")
	}
	if *indexPath == "" || *readsPath == "" {
		return fmt.Errorf("map: -index and -reads are required")
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	if *stream {
		if *backend != "cpu" || *format != "tsv" || *reads2Path != "" || *mismatches > 0 {
			return fmt.Errorf("map: -stream supports the cpu backend with tsv output, unpaired, exact")
		}
		return mapStreaming(out, ix, *readsPath, qcPol, *doLocate, *workers, *outPath)
	}
	reads, ids, err := loadReads(*readsPath, qcPol)
	if err != nil {
		return err
	}

	if *reads2Path != "" {
		if *mismatches > 0 {
			return fmt.Errorf("map: paired-end mode currently supports exact matching only")
		}
		return mapPaired(out, ix, reads, ids, *reads2Path, *minInsert, *maxInsert, *format, *outPath)
	}
	if *mismatches > 0 {
		return mapApprox(out, ix, reads, ids, *backend, *mismatches, *workers, *doLocate, *outPath)
	}

	var results []core.MapResult
	switch *backend {
	case "cpu":
		var stats core.MapStats
		results, stats, err = ix.MapReads(reads, core.MapOptions{Locate: *doLocate, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bwaver: mapped %d/%d reads in %v (%.0f reads/s)\n",
			stats.MappedReads, stats.Reads, stats.Elapsed.Round(time.Millisecond), stats.ReadsPerSecond())
	case "fpga":
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			return err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return err
		}
		run, err := kernel.MapReads(reads)
		if err != nil {
			return err
		}
		if *doLocate {
			if _, err := kernel.LocateResults(run.Results); err != nil {
				return err
			}
		}
		results = run.Results
		p := run.Profile
		fmt.Fprintf(os.Stderr, "bwaver: fpga model: total %v (setup %v, index xfer %v, kernel %v / %d cycles), energy %.2f J\n",
			p.Total().Round(time.Microsecond), p.Setup.Round(time.Microsecond),
			p.IndexTransfer.Round(time.Microsecond), p.KernelTime.Round(time.Microsecond),
			p.KernelCycles, p.EnergyJoules(dev.Config().PowerWatts))
		if *profilePath != "" {
			if err := writeProfileJSON(*profilePath, p, dev.Config().PowerWatts); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("map: unknown backend %q", *backend)
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "sam" {
		return writeSAM(w, ix, ids, reads, results)
	}
	writeTSV(w, ix.Contigs(), ids, reads, results)
	return nil
}

// cmdMem runs the seed-and-extend pipeline (SMEM seeding, chaining, banded
// extension) and writes scored SAM. With -paired the reads file is treated as
// interleaved mate pairs (R1, R2, ...), enabling proper-pair calls and mate
// rescue.
func cmdMem(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mem", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file from `bwaver index`")
	readsPath := fs.String("reads", "", "reads FASTQ/FASTA file (.gz ok)")
	backend := fs.String("backend", "cpu", "mapping backend: cpu or fpga")
	paired := fs.Bool("paired", false, "treat the reads file as interleaved mate pairs")
	minSeed := fs.Int("min-seed", 0, "minimum SMEM seed length (0 = default 19)")
	band := fs.Int("band", 0, "extension band half-width (0 = default 16)")
	minScore := fs.Int("min-score", 0, "minimum alignment score to report (0 = default 30)")
	minInsert := fs.Int("min-insert", 0, "minimum fragment length for proper pairs (with -paired)")
	maxInsert := fs.Int("max-insert", 0, "maximum fragment length for proper pairs (0 = default 1000, with -paired)")
	outPath := fs.String("out", "", "output SAM file (default stdout)")
	qcf := addQCFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" || *readsPath == "" {
		return fmt.Errorf("mem: -index and -reads are required")
	}
	qcPol, err := qcf.policy(*paired)
	if err != nil {
		return fmt.Errorf("mem: %w", err)
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	reads, ids, err := loadReads(*readsPath, qcPol)
	if err != nil {
		return err
	}
	opts := core.MemOptions{
		MinSeedLen: *minSeed, Band: *band, MinScore: *minScore,
		Paired: *paired, MinInsert: *minInsert, MaxInsert: *maxInsert,
	}

	var results []core.MemResult
	var stats core.MemStats
	switch *backend {
	case "cpu":
		results, stats, err = ix.MapReadsMem(reads, opts)
		if err != nil {
			return err
		}
	case "fpga":
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			return err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return err
		}
		run, err := kernel.MapReadsMem(reads, opts)
		if err != nil {
			return err
		}
		results, stats = run.Results, run.Stats
		p := run.Profile
		fmt.Fprintf(os.Stderr, "bwaver: fpga mem model: total %v (reconfig %v, kernel %v / %d cycles)\n",
			p.Total().Round(time.Microsecond), p.Reconfig,
			p.KernelTime.Round(time.Microsecond), p.KernelCycles)
	default:
		return fmt.Errorf("mem: unknown backend %q", *backend)
	}
	fmt.Fprintf(os.Stderr, "bwaver: mem mapped %d/%d reads (%d seeds, %d extensions, %d rescues) in %v\n",
		stats.MappedReads, stats.Reads, stats.Seeds, stats.Extensions, stats.Rescues,
		stats.Elapsed.Round(time.Millisecond))

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	sw, err := sam.NewWriter(w, ix.SAMRefSeqs())
	if err != nil {
		return err
	}
	if opts.Paired {
		i := 0
		for ; i+1 < len(results); i += 2 {
			pr := core.MemPairFromResults(results[i], results[i+1], opts)
			rec1, rec2 := ix.MemPairRecords(ids[i], ids[i+1], reads[i], reads[i+1], pr)
			if err := sw.Write(rec1); err != nil {
				return err
			}
			if err := sw.Write(rec2); err != nil {
				return err
			}
		}
		if i < len(results) { // odd trailing read maps single-end
			if err := sw.Write(ix.MemRecord(ids[i], reads[i], results[i])); err != nil {
				return err
			}
		}
	} else {
		for i, res := range results {
			if err := sw.Write(ix.MemRecord(ids[i], reads[i], res)); err != nil {
				return err
			}
		}
	}
	return sw.Flush()
}

func writeTSV(w io.Writer, contigs *core.ContigSet, ids []string, reads []dna.Seq, results []core.MapResult) {
	fmt.Fprintln(w, "read\tmapped\tfw_count\tfw_positions\trc_count\trc_positions")
	for i, res := range results {
		span := len(reads[i])
		fmt.Fprintf(w, "%s\t%t\t%d\t%s\t%d\t%s\n",
			ids[i], res.Mapped(),
			res.Forward.Count(), formatPositions(contigs, res.ForwardPositions, span),
			res.Reverse.Count(), formatPositions(contigs, res.ReversePositions, span))
	}
}

// formatPositions renders positions; with multi-contig metadata they become
// name:offset pairs and boundary-spanning hits are marked.
func formatPositions(contigs *core.ContigSet, ps []int32, span int) string {
	if len(ps) == 0 {
		return "-"
	}
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += ","
		}
		if contigs != nil && contigs.Count() > 1 {
			if contig, off, ok := contigs.Resolve(int(p), span); ok {
				s += fmt.Sprintf("%s:%d", contig.Name, off)
			} else {
				s += fmt.Sprintf("boundary@%d", p)
			}
		} else {
			s += fmt.Sprint(p)
		}
	}
	return s
}

// writeProfileJSON dumps the modeled event timeline, the machine-readable
// form of the OpenCL event profiling the paper benchmarks with. Durations
// are nanoseconds.
func writeProfileJSON(path string, p fpga.Profile, powerWatts float64) error {
	payload := struct {
		fpga.Profile
		TotalNs      int64   `json:"total_ns"`
		EnergyJoules float64 `json:"energy_joules"`
	}{
		Profile:      p,
		TotalNs:      int64(p.Total()),
		EnergyJoules: p.EnergyJoules(powerWatts),
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// mapStreaming maps an arbitrarily large FASTQ in bounded memory, writing
// TSV rows as batches complete.
func mapStreaming(out io.Writer, ix *core.Index, readsPath string, qcPol qc.Policy, doLocate bool, workers int, outPath string) error {
	f, err := os.Open(readsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := out
	if outPath != "" {
		dst, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer dst.Close()
		w = dst
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "read\tmapped\tfw_count\tfw_positions\trc_count\trc_positions")
	contigs := ix.Contigs()
	stats, rep, err := ix.MapStreamQC(f, qcPol, core.MapOptions{Locate: doLocate, Workers: workers}, 0,
		func(r core.StreamResult) error {
			_, err := fmt.Fprintf(bw, "%s\t%t\t%d\t%s\t%d\t%s\n",
				r.ID, r.Res.Mapped(),
				r.Res.Forward.Count(), formatPositions(contigs, r.Res.ForwardPositions, len(r.Read)),
				r.Res.Reverse.Count(), formatPositions(contigs, r.Res.ReversePositions, len(r.Read)))
			return err
		})
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if qcPol.Active() {
		fmt.Fprintf(os.Stderr, "bwaver: qc: %d/%d reads passed (%d malformed, %d rejected, %d bases trimmed)\n",
			rep.Passed, rep.Attempted, rep.Malformed, rep.RejectedTotal(), rep.TrimmedBases)
	}
	fmt.Fprintf(os.Stderr, "bwaver: streamed %d reads, %d mapped, in %v\n",
		stats.Reads, stats.MappedReads, stats.Elapsed.Round(time.Millisecond))
	return nil
}

// mapPaired maps mate pairs and reports proper (concordant) placements
// within the insert window, as TSV or paired SAM.
func mapPaired(out io.Writer, ix *core.Index, r1s []dna.Seq, ids []string, reads2Path string, minInsert, maxInsert int, format, outPath string) error {
	r2s, _, err := loadReads(reads2Path, qc.Policy{})
	if err != nil {
		return err
	}
	if len(r2s) != len(r1s) {
		return fmt.Errorf("map: %d mate-1 reads but %d mate-2 reads", len(r1s), len(r2s))
	}
	results, stats, err := ix.MapPairs(r1s, r2s, core.PairOptions{MinInsert: minInsert, MaxInsert: maxInsert})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bwaver: %d/%d pairs concordant, %d ambiguous\n",
		stats.Concordant, stats.Pairs, stats.Ambiguous)
	w := out
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "sam" {
		return writePairedSAM(w, ix, ids, r1s, r2s, results)
	}
	fmt.Fprintln(w, "pair\tconcordant\tambiguous\tplacements\tbest_pos\tbest_insert")
	for i, res := range results {
		pos, insert := "-", "-"
		if res.Concordant() {
			pos = fmt.Sprint(res.Placements[0].Pos)
			insert = fmt.Sprint(res.Placements[0].Insert)
		}
		fmt.Fprintf(w, "%s\t%t\t%t\t%d\t%s\t%s\n",
			ids[i], res.Concordant(), res.Ambiguous, len(res.Placements), pos, insert)
	}
	return nil
}

// writePairedSAM emits the best concordant placement of each pair as two
// properly-flagged SAM records, or a pair of unmapped records when no
// placement exists.
func writePairedSAM(w io.Writer, ix *core.Index, ids []string, r1s, r2s []dna.Seq, results []core.PairResult) error {
	contigs := ix.Contigs()
	var refs []sam.RefSeq
	if contigs != nil {
		for _, c := range contigs.Contigs() {
			refs = append(refs, sam.RefSeq{Name: c.Name, Length: c.Length})
		}
	} else {
		refs = []sam.RefSeq{{Name: "ref", Length: ix.RefLength()}}
		var err error
		if contigs, err = core.NewContigSet([]string{"ref"}, []int{ix.RefLength()}); err != nil {
			return err
		}
	}
	sw, err := sam.NewWriter(w, refs)
	if err != nil {
		return err
	}
	dropped := 0
	for i, res := range results {
		mateFlags := [2]uint16{sam.FlagFirstInPair, sam.FlagSecondInPair}
		reads := [2]dna.Seq{r1s[i], r2s[i]}
		placed := false
		if res.Concordant() {
			pl := res.Placements[0]
			// Leftmost mate forward, rightmost reverse; which read is
			// which depends on the placement orientation.
			leftIdx, rightIdx := 0, 1
			if !pl.R1Forward {
				leftIdx, rightIdx = 1, 0
			}
			leftRead, rightRead := reads[leftIdx], reads[rightIdx]
			leftPos := int(pl.Pos)
			rightPos := leftPos + pl.Insert - len(rightRead)
			contig, leftOff, okL := contigs.Resolve(leftPos, pl.Insert)
			if okL {
				rightOff := rightPos - contig.Offset
				base := sam.FlagPaired | sam.FlagProperPair
				recs := [2]sam.Record{
					{
						QName: ids[i], RName: contig.Name, Pos: leftOff + 1, MapQ: 60,
						Flag:  base | mateFlags[leftIdx] | sam.FlagMateReverse,
						CIGAR: fmt.Sprintf("%dM", len(leftRead)), Seq: leftRead.String(),
						RNext: "=", PNext: rightOff + 1, TLen: pl.Insert,
					},
					{
						QName: ids[i], RName: contig.Name, Pos: rightOff + 1, MapQ: 60,
						Flag:  base | mateFlags[rightIdx] | sam.FlagReverse,
						CIGAR: fmt.Sprintf("%dM", len(rightRead)), Seq: rightRead.ReverseComplement().String(),
						RNext: "=", PNext: leftOff + 1, TLen: -pl.Insert,
					},
				}
				for _, rec := range recs {
					if err := sw.Write(rec); err != nil {
						return err
					}
				}
				placed = true
			} else {
				dropped++
			}
		}
		if !placed {
			for m := 0; m < 2; m++ {
				if err := sw.Write(sam.Record{
					QName: ids[i], Seq: reads[m].String(),
					Flag: sam.FlagPaired | sam.FlagUnmapped | sam.FlagMateUnmapped | mateFlags[m],
				}); err != nil {
					return err
				}
			}
		}
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "bwaver: dropped %d pair placements spanning contig boundaries\n", dropped)
	}
	return sw.Flush()
}

// mapApprox runs k-mismatch mapping: on the CPU every read goes through the
// branching backward search; on the FPGA model the two-pass reconfigurable
// flow maps exactly first and rescues the unaligned reads. The TSV reports
// the best mismatch stratum per read.
func mapApprox(out io.Writer, ix *core.Index, reads []dna.Seq, ids []string, backend string, k, workers int, doLocate bool, outPath string) error {
	type approxRow struct {
		mapped      bool
		bestMM      int
		occurrences int
		positions   []int32
	}
	rows := make([]approxRow, len(reads))

	fill := func(i int, res core.ApproxResult) error {
		rows[i] = approxRow{mapped: res.Mapped(), bestMM: res.BestMismatches(), occurrences: res.Occurrences()}
		if doLocate && res.Mapped() {
			best := res.BestMismatches()
			for _, set := range [][]fmindex.ApproxMatch{res.Forward, res.Reverse} {
				for _, m := range set {
					if m.Mismatches != best {
						continue
					}
					ps, err := ix.FM().Locate(m.Range)
					if err != nil {
						return err
					}
					rows[i].positions = append(rows[i].positions, ps...)
				}
			}
		}
		return nil
	}

	switch backend {
	case "cpu":
		all, err := ix.MapReadsApprox(reads, k, core.MapOptions{Workers: workers})
		if err != nil {
			return err
		}
		for i, res := range all {
			if err := fill(i, res); err != nil {
				return err
			}
		}
	case "fpga":
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			return err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return err
		}
		run, err := kernel.MapReadsTwoPass(reads, k)
		if err != nil {
			return err
		}
		for i, exact := range run.Exact {
			if exact.Mapped() {
				// Exact hits are the 0-mismatch stratum.
				rows[i] = approxRow{mapped: true, bestMM: 0, occurrences: exact.Occurrences()}
				if doLocate {
					for _, r := range []fmindex.Range{exact.Forward, exact.Reverse} {
						ps, err := ix.FM().Locate(r)
						if err != nil {
							return err
						}
						rows[i].positions = append(rows[i].positions, ps...)
					}
				}
				continue
			}
			if err := fill(i, run.Approx[i]); err != nil {
				return err
			}
		}
		p := run.Profile
		fmt.Fprintf(os.Stderr, "bwaver: fpga two-pass model: total %v (reconfig %v), %d reads rescued at k<=%d\n",
			p.Total().Round(time.Microsecond), p.Reconfig, run.Rescued, k)
	default:
		return fmt.Errorf("map: unknown backend %q", backend)
	}

	w := out
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "read\tmapped\tbest_mismatches\toccurrences\tbest_positions")
	for i, row := range rows {
		pos := "-"
		if len(row.positions) > 0 {
			pos = ""
			for j, p := range row.positions {
				if j > 0 {
					pos += ","
				}
				pos += fmt.Sprint(p)
			}
		}
		fmt.Fprintf(w, "%s\t%t\t%d\t%d\t%s\n", ids[i], row.mapped, row.bestMM, row.occurrences, pos)
	}
	return nil
}

// writeSAM emits results as SAM: the first resolvable hit of each read is
// primary, further hits secondary, reverse-strand hits carry the reverse
// flag and the reverse-complemented sequence, per the spec.
func writeSAM(w io.Writer, ix *core.Index, ids []string, reads []dna.Seq, results []core.MapResult) error {
	contigs := ix.Contigs()
	var refs []sam.RefSeq
	if contigs != nil {
		for _, c := range contigs.Contigs() {
			refs = append(refs, sam.RefSeq{Name: c.Name, Length: c.Length})
		}
	} else {
		refs = []sam.RefSeq{{Name: "ref", Length: ix.RefLength()}}
		var err error
		if contigs, err = core.NewContigSet([]string{"ref"}, []int{ix.RefLength()}); err != nil {
			return err
		}
	}
	sw, err := sam.NewWriter(w, refs)
	if err != nil {
		return err
	}
	dropped := 0
	for i, res := range results {
		read := reads[i]
		emit := func(ps []int32, reverse bool, primaryEmitted *bool) error {
			seq := read
			var flag uint16
			if reverse {
				seq = read.ReverseComplement()
				flag |= sam.FlagReverse
			}
			for _, p := range ps {
				contig, off, ok := contigs.Resolve(int(p), len(read))
				if !ok {
					dropped++
					continue
				}
				recFlag := flag
				if *primaryEmitted {
					recFlag |= sam.FlagSecondary
				}
				*primaryEmitted = true
				if err := sw.Write(sam.Record{
					QName: ids[i], Flag: recFlag, RName: contig.Name, Pos: off + 1,
					MapQ: 255, CIGAR: fmt.Sprintf("%dM", len(read)), Seq: seq.String(),
					Tags: []string{"NM:i:0"},
				}); err != nil {
					return err
				}
			}
			return nil
		}
		primaryEmitted := false
		if err := emit(res.ForwardPositions, false, &primaryEmitted); err != nil {
			return err
		}
		if err := emit(res.ReversePositions, true, &primaryEmitted); err != nil {
			return err
		}
		if !primaryEmitted {
			if err := sw.Write(sam.Record{
				QName: ids[i], Flag: sam.FlagUnmapped, Seq: read.String(),
			}); err != nil {
				return err
			}
		}
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "bwaver: dropped %d hits spanning contig boundaries\n", dropped)
	}
	return sw.Flush()
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file")
	verbose := fs.Bool("verbose", false, "print the per-node wavelet breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("stats: -index is required")
	}
	ix, err := core.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	cfg := ix.Config()
	st := ix.Stats()
	fmt.Fprintf(out, "reference length:  %d bases\n", ix.RefLength())
	fmt.Fprintf(out, "rrr parameters:    b=%d sf=%d (plain=%t)\n",
		cfg.RRR.BlockSize, cfg.RRR.SuperblockFactor, cfg.PlainBitvectors)
	fmt.Fprintf(out, "locate:            %v\n", cfg.Locate)
	fmt.Fprintf(out, "structure size:    %.3f MB (+%.3f MB shared)\n",
		float64(st.StructureBytes)/1e6, float64(st.SharedBytes)/1e6)
	fmt.Fprintf(out, "total index size:  %.3f MB\n", float64(ix.SizeBytes())/1e6)
	if contigs := ix.Contigs(); contigs != nil {
		fmt.Fprintf(out, "contigs:           %d\n", contigs.Count())
		for _, c := range contigs.Contigs() {
			fmt.Fprintf(out, "  %-20s %10d bp at offset %d\n", c.Name, c.Length, c.Offset)
		}
	}
	if *verbose {
		occ, ok := ix.FM().OccProvider().(*fmindex.WaveletOcc)
		if !ok {
			return fmt.Errorf("stats: index has no wavelet structure to break down")
		}
		fmt.Fprintf(out, "wavelet nodes (entropy drives the RRR offset size, paper §III-B):\n")
		fmt.Fprintf(out, "  %-12s %6s %12s %12s %10s %9s\n",
			"alphabet", "depth", "bits", "ones", "size B", "entropy")
		for _, st := range occ.Tree.NodeStats() {
			var names []byte
			for c := st.Lo; c < st.Hi; c++ {
				names = append(names, dna.Base(c).Byte())
			}
			fmt.Fprintf(out, "  %-12s %6d %12d %12d %10d %9.4f\n",
				string(names), st.Depth, st.Bits, st.Ones, st.SizeBytes, st.Entropy)
		}
	}
	return nil
}
