// Command readsim generates the synthetic workloads BWaveR-Go is evaluated
// on: reference genomes (FASTA) and short-read sets (FASTQ) with a
// controlled mapping ratio.
//
//	readsim genome -out ref.fa [-length N | -preset ecoli|chr21 [-scale F]] [-gc 0.5] [-repeats 0.25] [-seed 1] [-gzip]
//	readsim reads  -ref ref.fa -out reads.fq [-count N] [-length 100] [-ratio 0.5] [-revcomp 0.5] [-error 0]
//	               [-pairs -insert-mean 300 -insert-sd 30] [-dirty 0 -n-frac 0 -qual-drop 0] [-seed 1] [-gzip]
//
// With -pairs the output is interleaved FR mate pairs (R1, R2, R1, R2, ...),
// the wire form the server's mode=mem-pe jobs and `bwaver mem -paired`
// consume; -count then counts pairs, so the file holds 2×count reads.
//
// The -dirty/-n-frac/-qual-drop flags corrupt the corpus for robustness
// testing: -dirty emits that fraction of records malformed (short quality
// line, missing separator, broken header), -n-frac splices N runs into that
// fraction of reads, and -qual-drop collapses the 3' quality tail of that
// fraction. The result exercises the tolerant decoder and QC gate.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: readsim <genome|reads> [flags]")
	}
	switch args[0] {
	case "genome":
		return cmdGenome(args[1:], out)
	case "reads":
		return cmdReads(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want genome or reads)", args[0])
	}
}

func cmdGenome(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genome", flag.ContinueOnError)
	outPath := fs.String("out", "", "output FASTA path")
	length := fs.Int("length", 0, "genome length in bases (ignored with -preset)")
	preset := fs.String("preset", "", "paper-scale preset: ecoli or chr21")
	scale := fs.Float64("scale", 1, "preset scale factor in (0,1]")
	gc := fs.Float64("gc", 0.5, "GC content")
	repeats := fs.Float64("repeats", 0.25, "repeat fraction")
	seed := fs.Int64("seed", 1, "random seed")
	gz := fs.Bool("gzip", false, "gzip the output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("genome: -out is required")
	}
	var (
		g    dna.Seq
		err  error
		name string
	)
	switch *preset {
	case "ecoli":
		g, err = readsim.EColiLike(*seed, *scale)
		name = fmt.Sprintf("synthetic-ecoli scale=%g seed=%d", *scale, *seed)
	case "chr21":
		g, err = readsim.Chr21Like(*seed, *scale)
		name = fmt.Sprintf("synthetic-chr21 scale=%g seed=%d", *scale, *seed)
	case "":
		if *length <= 0 {
			return fmt.Errorf("genome: -length or -preset is required")
		}
		g, err = readsim.Genome(readsim.GenomeConfig{
			Length: *length, GC: *gc, RepeatFraction: *repeats, Seed: *seed,
		})
		name = fmt.Sprintf("synthetic length=%d seed=%d", *length, *seed)
	default:
		return fmt.Errorf("genome: unknown preset %q", *preset)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := fastx.NewWriter(f, fastx.FASTA, *gz)
	if err := w.Write(&fastx.Record{ID: "ref", Desc: name, Seq: []byte(g.String())}); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d bases to %s\n", len(g), *outPath)
	return nil
}

func cmdReads(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reads", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference FASTA to sample from")
	outPath := fs.String("out", "", "output FASTQ path")
	count := fs.Int("count", 10000, "number of reads")
	length := fs.Int("length", 100, "read length")
	ratio := fs.Float64("ratio", 0.5, "mapping ratio in [0,1]")
	revcomp := fs.Float64("revcomp", 0.5, "reverse-strand fraction of mapped reads")
	errRate := fs.Float64("error", 0, "per-base substitution probability on sampled reads")
	pairs := fs.Bool("pairs", false, "emit interleaved FR mate pairs (-count counts pairs)")
	insertMean := fs.Int("insert-mean", 300, "mean fragment length (with -pairs)")
	insertSD := fs.Int("insert-sd", 30, "fragment length standard deviation (with -pairs)")
	dirty := fs.Float64("dirty", 0, "fraction of records emitted malformed")
	nFrac := fs.Float64("n-frac", 0, "fraction of reads with an N run spliced in")
	qualDrop := fs.Float64("qual-drop", 0, "fraction of reads with a collapsed 3' quality tail")
	seed := fs.Int64("seed", 1, "random seed")
	gz := fs.Bool("gzip", false, "gzip the output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirtyCfg := readsim.DirtyConfig{MalformedFrac: *dirty, NFrac: *nFrac, QualDrop: *qualDrop, Seed: *seed}
	if err := dirtyCfg.Validate(); err != nil {
		return err
	}
	useDirty := *dirty > 0 || *nFrac > 0 || *qualDrop > 0
	if *refPath == "" || *outPath == "" {
		return fmt.Errorf("reads: -ref and -out are required")
	}
	rf, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	recs, err := fastx.ReadAll(rf)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("reads: %s has no records", *refPath)
	}
	var raw []byte
	for _, rec := range recs {
		raw = append(raw, rec.Seq...)
	}
	ref, _ := dna.Sanitize(raw, dna.A)
	if *pairs {
		return writePairs(out, ref, *outPath, *count, *length, *ratio, *errRate,
			*insertMean, *insertSD, *seed, *gz, useDirty, dirtyCfg)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: *count, Length: *length, MappingRatio: *ratio,
		RevCompFraction: *revcomp, ErrorRate: *errRate, Seed: *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if useDirty {
		dirtyReads := make([]readsim.FastqRead, len(sim))
		for i, r := range sim {
			dirtyReads[i] = readsim.FastqRead{ID: r.ID, Seq: []byte(r.Seq.String())}
		}
		st, err := writeDirty(f, dirtyReads, dirtyCfg, *gz)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d reads of %d bp to %s (%d malformed, %d with Ns, %d quality-dropped)\n",
			st.Records, *length, *outPath, st.Malformed, st.NInjected, st.QualDropped)
		return nil
	}
	w := fastx.NewWriter(f, fastx.FASTQ, *gz)
	for _, r := range sim {
		desc := "origin=random"
		if r.Origin >= 0 {
			strand := "+"
			if r.RevStrand {
				strand = "-"
			}
			desc = fmt.Sprintf("origin=%d strand=%s", r.Origin, strand)
		}
		if err := w.Write(&fastx.Record{ID: r.ID, Desc: desc, Seq: []byte(r.Seq.String())}); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d reads of %d bp to %s\n", len(sim), *length, *outPath)
	return nil
}

// writeDirty routes the corrupted corpus through an optional gzip layer.
func writeDirty(f *os.File, reads []readsim.FastqRead, cfg readsim.DirtyConfig, gz bool) (readsim.DirtyStats, error) {
	if !gz {
		return readsim.WriteDirtyFastq(f, reads, cfg)
	}
	zw := gzip.NewWriter(f)
	st, err := readsim.WriteDirtyFastq(zw, reads, cfg)
	if err != nil {
		zw.Close()
		return st, err
	}
	return st, zw.Close()
}

// writePairs emits interleaved FR mate pairs with /1 and /2 name suffixes.
func writePairs(out io.Writer, ref dna.Seq, outPath string, count, length int, ratio, errRate float64, insertMean, insertSD int, seed int64, gz bool, useDirty bool, dirtyCfg readsim.DirtyConfig) error {
	sim, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: count, ReadLength: length, MappingRatio: ratio, ErrorRate: errRate,
		InsertMean: insertMean, InsertStdDev: insertSD, Seed: seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if useDirty {
		var dirtyReads []readsim.FastqRead
		for _, p := range sim {
			for m, seq := range [2]dna.Seq{p.R1, p.R2} {
				dirtyReads = append(dirtyReads, readsim.FastqRead{
					ID: fmt.Sprintf("%s/%d", p.ID, m+1), Seq: []byte(seq.String()),
				})
			}
		}
		st, err := writeDirty(f, dirtyReads, dirtyCfg, gz)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d pairs (%d reads) of %d bp to %s (%d malformed, %d with Ns, %d quality-dropped)\n",
			len(sim), st.Records, length, outPath, st.Malformed, st.NInjected, st.QualDropped)
		return nil
	}
	w := fastx.NewWriter(f, fastx.FASTQ, gz)
	for _, p := range sim {
		mates := [2]dna.Seq{p.R1, p.R2}
		for m, seq := range mates {
			rec := &fastx.Record{ID: fmt.Sprintf("%s/%d", p.ID, m+1), Seq: []byte(seq.String())}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d pairs (%d reads) of %d bp to %s\n", len(sim), 2*len(sim), length, outPath)
	return nil
}
