package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwaver/internal/fastx"
)

func TestGenomeAndReadsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fa")
	var out bytes.Buffer
	if err := run([]string{"genome", "-out", refPath, "-length", "5000", "-seed", "3"}, &out); err != nil {
		t.Fatalf("genome: %v", err)
	}
	if !strings.Contains(out.String(), "wrote 5000 bases") {
		t.Errorf("genome output: %q", out.String())
	}
	f, err := os.Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fastx.ReadAll(f)
	f.Close()
	if err != nil || len(recs) != 1 || len(recs[0].Seq) != 5000 {
		t.Fatalf("genome FASTA wrong: %v %v", recs, err)
	}

	readsPath := filepath.Join(dir, "reads.fq.gz")
	out.Reset()
	if err := run([]string{"reads", "-ref", refPath, "-out", readsPath,
		"-count", "200", "-length", "60", "-ratio", "0.5", "-gzip"}, &out); err != nil {
		t.Fatalf("reads: %v", err)
	}
	rf, err := os.Open(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := fastx.ReadAll(rf)
	rf.Close()
	if err != nil || len(reads) != 200 {
		t.Fatalf("reads FASTQ wrong: %d records, err %v", len(reads), err)
	}
	// Provenance must be recorded in the description.
	withOrigin := 0
	for _, r := range reads {
		if strings.HasPrefix(r.Desc, "origin=") {
			if !strings.Contains(r.Desc, "random") {
				withOrigin++
			}
		} else {
			t.Fatalf("read %s lacks provenance desc %q", r.ID, r.Desc)
		}
	}
	if withOrigin != 100 {
		t.Errorf("%d reads with origins, want 100", withOrigin)
	}
}

func TestGenomePresets(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	p := filepath.Join(dir, "e.fa")
	if err := run([]string{"genome", "-out", p, "-preset", "ecoli", "-scale", "0.001"}, &out); err != nil {
		t.Fatalf("preset: %v", err)
	}
	if !strings.Contains(out.String(), "wrote 4641 bases") {
		t.Errorf("preset output: %q", out.String())
	}
}

func TestReadsimErrors(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fa")
	if err := run([]string{"genome", "-out", refPath, "-length", "1000"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},
		{"bogus"},
		{"genome"},
		{"genome", "-out", filepath.Join(dir, "x.fa")},
		{"genome", "-out", filepath.Join(dir, "x.fa"), "-preset", "mouse"},
		{"genome", "-out", filepath.Join(dir, "x.fa"), "-length", "100", "-gc", "2"},
		{"reads"},
		{"reads", "-ref", "/nonexistent", "-out", filepath.Join(dir, "r.fq")},
		{"reads", "-ref", refPath, "-out", filepath.Join(dir, "r.fq"), "-ratio", "2"},
		{"reads", "-ref", refPath, "-out", filepath.Join(dir, "r.fq"), "-length", "0"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
