// Package wavelet implements the balanced wavelet tree of the BWaveR paper
// (§III-B, Fig. 1 and 2): a string over a small alphabet is represented as a
// binary tree of bit-vectors, where each level splits the remaining alphabet
// in half. A rank query over the string becomes log2(sigma) binary rank
// queries down the tree.
//
// Following the paper, node bit-vectors are encoded as RRR sequences by
// default, which compresses the low-entropy bit-vectors a BWT produces; a
// plain (uncompressed) backend is provided for the space/time ablation
// called out in DESIGN.md. The tree is optimised for power-of-two alphabets
// (2^N symbols, N >= 2), the case of genomic sequences, but works for any
// alphabet size >= 2.
package wavelet

import (
	"fmt"
	"math"

	"bwaver/internal/bitvec"
	"bwaver/internal/rrr"
)

// RankVector is the bit-vector contract a wavelet node needs. Both
// rrr.Sequence and bitvec.Vector satisfy it.
type RankVector interface {
	Len() int
	Bit(i int) bool
	Rank1(i int) int
	Rank0(i int) int
	Select1(k int) int
	SizeBytes() int
}

var (
	_ RankVector = (*rrr.Sequence)(nil)
	_ RankVector = (*bitvec.Vector)(nil)
)

// Backend constructs the bit-vector of one wavelet node.
type Backend interface {
	// Build encodes n bits read from src.
	Build(src func(i int) bool, n int) (RankVector, error)
	// Name identifies the backend in stats output.
	Name() string
}

type rrrBackend struct{ p rrr.Params }

func (b rrrBackend) Build(src func(i int) bool, n int) (RankVector, error) {
	return rrr.New(rrr.BitSource(src), n, b.p)
}
func (b rrrBackend) Name() string {
	return fmt.Sprintf("rrr(b=%d,sf=%d)", b.p.BlockSize, b.p.SuperblockFactor)
}

// RRRBackend returns the paper's backend: every node encoded as an RRR
// sequence with the given parameters.
func RRRBackend(p rrr.Params) Backend { return rrrBackend{p} }

type plainBackend struct{}

func (plainBackend) Build(src func(i int) bool, n int) (RankVector, error) {
	bld := bitvec.NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.Append(src(i))
	}
	return bld.Build(), nil
}
func (plainBackend) Name() string { return "plain" }

// PlainBackend returns an uncompressed bit-vector backend, the ablation
// baseline.
func PlainBackend() Backend { return plainBackend{} }

// node is one wavelet node: a bit-vector plus the two child subtrees. The
// paper's struct also carries the child alphabets; because our symbols are
// contiguous integer codes the alphabet of a node is fully described by the
// [lo, hi) code range, stored here in place of the two character arrays.
type node struct {
	vec      RankVector
	lo, hi   int // alphabet code range covered by this node
	zero, on *node
}

// Tree is an immutable wavelet tree over symbols 0..sigma-1.
// It is safe for concurrent readers.
type Tree struct {
	root    *node
	n       int
	sigma   int
	levels  int
	backend string
}

// New builds a wavelet tree over data, whose symbols must all be in
// [0, sigma). A nil backend defaults to the paper's RRR backend with
// rrr.DefaultParams.
func New(data []uint8, sigma int, backend Backend) (*Tree, error) {
	if sigma < 2 {
		return nil, fmt.Errorf("wavelet: alphabet size %d must be >= 2", sigma)
	}
	if backend == nil {
		backend = RRRBackend(rrr.DefaultParams)
	}
	for i, s := range data {
		if int(s) >= sigma {
			return nil, fmt.Errorf("wavelet: symbol %d at position %d outside alphabet [0,%d)", s, i, sigma)
		}
	}
	levels := 0
	for 1<<uint(levels) < sigma {
		levels++
	}
	root, err := build(data, 0, sigma, backend)
	if err != nil {
		return nil, err
	}
	return &Tree{root: root, n: len(data), sigma: sigma, levels: levels, backend: backend.Name()}, nil
}

func build(data []uint8, lo, hi int, backend Backend) (*node, error) {
	if hi-lo <= 1 {
		return nil, nil // leaf: a single symbol needs no bit-vector
	}
	mid := (lo + hi + 1) / 2
	vec, err := backend.Build(func(i int) bool { return int(data[i]) >= mid }, len(data))
	if err != nil {
		return nil, err
	}
	// Partition data into the two children, preserving order.
	nOnes := vec.Rank1(len(data))
	zeroData := make([]uint8, 0, len(data)-nOnes)
	oneData := make([]uint8, 0, nOnes)
	for _, s := range data {
		if int(s) >= mid {
			oneData = append(oneData, s)
		} else {
			zeroData = append(zeroData, s)
		}
	}
	n := &node{vec: vec, lo: lo, hi: hi}
	if n.zero, err = build(zeroData, lo, mid, backend); err != nil {
		return nil, err
	}
	if n.on, err = build(oneData, mid, hi, backend); err != nil {
		return nil, err
	}
	return n, nil
}

// Len returns the length of the underlying string.
func (t *Tree) Len() int { return t.n }

// Sigma returns the alphabet size.
func (t *Tree) Sigma() int { return t.sigma }

// Levels returns the tree depth, ceil(log2(sigma)).
func (t *Tree) Levels() int { return t.levels }

// BackendName reports which bit-vector backend encodes the nodes.
func (t *Tree) BackendName() string { return t.backend }

// Rank returns the number of occurrences of sym in positions [0, i) —
// the rank query of Fig. 2, resolved by log2(sigma) binary ranks.
func (t *Tree) Rank(sym uint8, i int) int {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("wavelet: rank position %d out of range [0,%d]", i, t.n))
	}
	if int(sym) >= t.sigma {
		panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", sym, t.sigma))
	}
	nd := t.root
	for nd != nil {
		mid := (nd.lo + nd.hi + 1) / 2
		if int(sym) >= mid {
			i = nd.vec.Rank1(i)
			nd = nd.on
		} else {
			i = nd.vec.Rank0(i)
			nd = nd.zero
		}
	}
	return i
}

// RankAll computes Rank(sym, i) for every symbol in one traversal, writing
// the counts into counts[0:sigma]. A single walk resolves all sigma ranks
// with one binary rank per node (Rank1; the zero-side count is its
// complement), so for sigma=4 the whole-alphabet query costs 3 bit-vector
// ranks instead of the 8 that sigma separate Rank calls would issue. This is
// the workhorse of the bidirectional index's extension step, which needs
// occurrence counts for all symbols at the same position.
func (t *Tree) RankAll(i int, counts []int) {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("wavelet: rank position %d out of range [0,%d]", i, t.n))
	}
	if len(counts) < t.sigma {
		panic(fmt.Sprintf("wavelet: RankAll counts slice too short: %d < %d", len(counts), t.sigma))
	}
	rankAllRec(t.root, i, counts)
}

func rankAllRec(nd *node, i int, counts []int) {
	if nd == nil {
		return
	}
	ones := nd.vec.Rank1(i)
	mid := (nd.lo + nd.hi + 1) / 2
	if nd.zero == nil {
		counts[nd.lo] = i - ones
	} else {
		rankAllRec(nd.zero, i-ones, counts)
	}
	if nd.on == nil {
		counts[mid] = ones
	} else {
		rankAllRec(nd.on, ones, counts)
	}
}

// Access returns the symbol at position i.
func (t *Tree) Access(i int) uint8 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("wavelet: index %d out of range [0,%d)", i, t.n))
	}
	nd := t.root
	lo, hi := 0, t.sigma
	for nd != nil {
		mid := (nd.lo + nd.hi + 1) / 2
		if nd.vec.Bit(i) {
			i = nd.vec.Rank1(i)
			lo = mid
			nd = nd.on
		} else {
			i = nd.vec.Rank0(i)
			hi = mid
			nd = nd.zero
		}
	}
	_ = hi
	return uint8(lo)
}

// Select returns the position of the k-th occurrence of sym (k >= 1), or -1
// if sym occurs fewer than k times. It descends to the leaf and maps the
// position back up with binary selects.
func (t *Tree) Select(sym uint8, k int) int {
	if int(sym) >= t.sigma || k <= 0 {
		return -1
	}
	return selectRec(t.root, sym, k)
}

func selectRec(nd *node, sym uint8, k int) int {
	if nd == nil {
		return k - 1 // leaf: the k-th occurrence is at position k-1
	}
	mid := (nd.lo + nd.hi + 1) / 2
	if int(sym) >= mid {
		p := selectRec(nd.on, sym, k)
		if p < 0 {
			return -1
		}
		return nd.vec.Select1(p + 1)
	}
	p := selectRec(nd.zero, sym, k)
	if p < 0 {
		return -1
	}
	return select0(nd.vec, p+1)
}

// select0 finds the position of the k-th zero bit via binary search on
// Rank0; plain vectors have a native Select0 but the RankVector contract
// keeps the surface minimal.
func select0(v RankVector, k int) int {
	zeros := v.Len() - v.Rank1(v.Len())
	if k > zeros {
		return -1
	}
	lo, hi := 0, v.Len()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Rank0(mid+1) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the total number of occurrences of sym.
func (t *Tree) Count(sym uint8) int {
	if int(sym) >= t.sigma {
		return 0
	}
	return t.Rank(sym, t.n)
}

// SizeBytes returns the summed footprint of all node bit-vectors plus the
// tree skeleton. For the RRR backend this excludes the shared global rank
// table, matching the paper's accounting ("the permutations array and class
// offsets array are stored only once, and shared among the RRRs encoding all
// the wavelet nodes"); add SharedSizeBytes once per index.
func (t *Tree) SizeBytes() int {
	total := 0
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		total += nd.vec.SizeBytes() + 32 // struct overhead: pointers + range
		walk(nd.zero)
		walk(nd.on)
	}
	walk(t.root)
	return total
}

// SharedSizeBytes returns the size of the shared RRR global rank table, or 0
// for the plain backend.
func (t *Tree) SharedSizeBytes() int {
	if nd := t.root; nd != nil {
		if s, ok := nd.vec.(*rrr.Sequence); ok {
			return s.SharedSizeBytes()
		}
	}
	return 0
}

// NodeStat describes one wavelet node for diagnostics: which alphabet
// slice it distinguishes, how long its bit-vector is, how it compressed,
// and its zero-order entropy — the quantity that drives RRR's offset size
// (paper §III-B: "the size of the offset field ... depends only on the
// zero-order empirical entropy of the bit sequence").
type NodeStat struct {
	// Lo and Hi delimit the alphabet code range the node covers.
	Lo, Hi int
	// Depth is the node's level, root = 0.
	Depth int
	// Bits is the bit-vector length, Ones its popcount.
	Bits, Ones int
	// SizeBytes is the encoded size (excluding any shared table).
	SizeBytes int
	// Entropy is the bit-vector's zero-order entropy in bits per bit.
	Entropy float64
}

// NodeStats returns per-node diagnostics in depth-first order.
func (t *Tree) NodeStats() []NodeStat {
	var out []NodeStat
	var walk func(nd *node, depth int)
	walk = func(nd *node, depth int) {
		if nd == nil {
			return
		}
		n := nd.vec.Len()
		ones := nd.vec.Rank1(n)
		st := NodeStat{
			Lo: nd.lo, Hi: nd.hi, Depth: depth,
			Bits: n, Ones: ones, SizeBytes: nd.vec.SizeBytes(),
		}
		if n > 0 && ones > 0 && ones < n {
			p := float64(ones) / float64(n)
			st.Entropy = -p*math.Log2(p) - (1-p)*math.Log2(1-p)
		}
		out = append(out, st)
		walk(nd.zero, depth+1)
		walk(nd.on, depth+1)
	}
	walk(t.root, 0)
	return out
}

// NodeCount returns the number of internal nodes (bit-vectors) in the tree.
func (t *Tree) NodeCount() int {
	count := 0
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		count++
		walk(nd.zero)
		walk(nd.on)
	}
	walk(t.root)
	return count
}
