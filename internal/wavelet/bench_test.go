package wavelet

import (
	"math/rand"
	"testing"

	"bwaver/internal/rrr"
)

// benchData builds BWT-like run-structured symbols.
func benchData(n int) []uint8 {
	rng := rand.New(rand.NewSource(1))
	out := make([]uint8, n)
	for i := 0; i < n; {
		sym := uint8(rng.Intn(4))
		runLen := 1 + rng.Intn(60)
		for j := 0; j < runLen && i < n; j++ {
			out[i] = sym
			i++
		}
	}
	return out
}

func BenchmarkTreeRank(b *testing.B) {
	data := benchData(1 << 20)
	for _, be := range []struct {
		name string
		b    Backend
	}{
		{"rrr-sf50", RRRBackend(rrr.Params{BlockSize: 15, SuperblockFactor: 50})},
		{"rrr-sf200", RRRBackend(rrr.Params{BlockSize: 15, SuperblockFactor: 200})},
		{"plain", PlainBackend()},
	} {
		tree, err := New(data, 4, be.b)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(be.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(tree.SizeBytes())/1e6, "MB")
			for i := 0; i < b.N; i++ {
				tree.Rank(uint8(i&3), (i*7919)%(tree.Len()+1))
			}
		})
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	data := benchData(1 << 18)
	for _, be := range []struct {
		name string
		b    Backend
	}{
		{"rrr", RRRBackend(rrr.DefaultParams)},
		{"plain", PlainBackend()},
	} {
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(data, 4, be.b); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
