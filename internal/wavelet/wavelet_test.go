package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwaver/internal/rrr"
)

func naiveRank(data []uint8, sym uint8, i int) int {
	c := 0
	for _, s := range data[:i] {
		if s == sym {
			c++
		}
	}
	return c
}

func naiveSelect(data []uint8, sym uint8, k int) int {
	for i, s := range data {
		if s == sym {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func randomData(rng *rand.Rand, n, sigma int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(sigma))
	}
	return out
}

var testBackends = []struct {
	name string
	b    Backend
}{
	{"rrr", RRRBackend(rrr.Params{BlockSize: 15, SuperblockFactor: 10})},
	{"plain", PlainBackend()},
	{"default", nil},
}

func TestRankMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, be := range testBackends {
		for _, sigma := range []int{2, 3, 4, 5, 8, 16} {
			for _, n := range []int{0, 1, 2, 100, 3000} {
				data := randomData(rng, n, sigma)
				tr, err := New(data, sigma, be.b)
				if err != nil {
					t.Fatalf("%s sigma=%d n=%d: %v", be.name, sigma, n, err)
				}
				step := 1
				if n > 500 {
					step = 17
				}
				for i := 0; i <= n; i += step {
					for sym := 0; sym < sigma; sym++ {
						got := tr.Rank(uint8(sym), i)
						want := naiveRank(data, uint8(sym), i)
						if got != want {
							t.Fatalf("%s sigma=%d n=%d: Rank(%d,%d)=%d, want %d", be.name, sigma, n, sym, i, got, want)
						}
					}
				}
			}
		}
	}
}

func TestAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, be := range testBackends {
		for _, sigma := range []int{2, 4, 7, 16} {
			data := randomData(rng, 2000, sigma)
			tr, err := New(data, sigma, be.b)
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range data {
				if got := tr.Access(i); got != want {
					t.Fatalf("%s sigma=%d: Access(%d)=%d, want %d", be.name, sigma, i, got, want)
				}
			}
		}
	}
}

func TestSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, be := range testBackends {
		for _, sigma := range []int{2, 4, 6} {
			data := randomData(rng, 1500, sigma)
			tr, err := New(data, sigma, be.b)
			if err != nil {
				t.Fatal(err)
			}
			for sym := 0; sym < sigma; sym++ {
				count := tr.Count(uint8(sym))
				if count != naiveRank(data, uint8(sym), len(data)) {
					t.Fatalf("Count(%d) wrong", sym)
				}
				for k := 1; k <= count; k += 1 + count/40 {
					got := tr.Select(uint8(sym), k)
					want := naiveSelect(data, uint8(sym), k)
					if got != want {
						t.Fatalf("%s sigma=%d: Select(%d,%d)=%d, want %d", be.name, sigma, sym, k, got, want)
					}
				}
				if tr.Select(uint8(sym), count+1) != -1 {
					t.Error("Select past count should be -1")
				}
			}
		}
	}
}

func TestSelectRankInverseProperty(t *testing.T) {
	f := func(raw []byte) bool {
		data := make([]uint8, len(raw))
		for i, r := range raw {
			data[i] = r & 3
		}
		tr, err := New(data, 4, RRRBackend(rrr.Params{BlockSize: 7, SuperblockFactor: 3}))
		if err != nil {
			return false
		}
		for sym := uint8(0); sym < 4; sym++ {
			for k := 1; k <= tr.Count(sym); k++ {
				p := tr.Select(sym, k)
				if tr.Access(p) != sym || tr.Rank(sym, p) != k-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRanksSumToLength(t *testing.T) {
	f := func(raw []byte) bool {
		data := make([]uint8, len(raw))
		for i, r := range raw {
			data[i] = r & 3
		}
		tr, err := New(data, 4, nil)
		if err != nil {
			return false
		}
		for i := 0; i <= len(data); i++ {
			sum := 0
			for sym := uint8(0); sym < 4; sym++ {
				sum += tr.Rank(sym, i)
			}
			if sum != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New([]uint8{0, 1}, 1, nil); err == nil {
		t.Error("accepted sigma < 2")
	}
	if _, err := New([]uint8{0, 5}, 4, nil); err == nil {
		t.Error("accepted out-of-alphabet symbol")
	}
	tr, err := New([]uint8{0, 1, 2, 3}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { tr.Rank(0, -1) },
		func() { tr.Rank(0, 5) },
		func() { tr.Rank(9, 0) },
		func() { tr.Access(-1) },
		func() { tr.Access(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid query")
				}
			}()
			fn()
		}()
	}
	if tr.Select(9, 1) != -1 || tr.Select(0, 0) != -1 {
		t.Error("Select on invalid args should return -1")
	}
}

func TestLevels(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 16: 4}
	for sigma, want := range cases {
		tr, err := New(randomData(rand.New(rand.NewSource(1)), 64, sigma), sigma, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Levels() != want {
			t.Errorf("sigma=%d: Levels=%d, want %d", sigma, tr.Levels(), want)
		}
	}
}

func TestDNATreeShape(t *testing.T) {
	// For sigma=4 the tree must have exactly 3 internal nodes and 2 levels.
	tr, err := New(randomData(rand.New(rand.NewSource(1)), 1000, 4), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 3 {
		t.Errorf("NodeCount=%d, want 3", tr.NodeCount())
	}
	if tr.Levels() != 2 {
		t.Errorf("Levels=%d, want 2", tr.Levels())
	}
}

// TestRRRSmallerThanPlainOnRuns checks the paper's space claim at the tree
// level: for run-structured (BWT-like) data the RRR backend is smaller than
// the plain backend.
func TestRRRSmallerThanPlainOnRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300000
	data := make([]uint8, n)
	cur := uint8(rng.Intn(4))
	for i := 0; i < n; {
		runLen := 1 + rng.Intn(80)
		for j := 0; j < runLen && i < n; j++ {
			data[i] = cur
			i++
		}
		cur = uint8(rng.Intn(4))
	}
	rrrTree, err := New(data, 4, RRRBackend(rrr.Params{BlockSize: 15, SuperblockFactor: 100}))
	if err != nil {
		t.Fatal(err)
	}
	plainTree, err := New(data, 4, PlainBackend())
	if err != nil {
		t.Fatal(err)
	}
	if rrrTree.SizeBytes() >= plainTree.SizeBytes() {
		t.Errorf("rrr tree %dB not smaller than plain tree %dB on run input",
			rrrTree.SizeBytes(), plainTree.SizeBytes())
	}
	if rrrTree.SharedSizeBytes() == 0 {
		t.Error("rrr tree should report a shared table size")
	}
	if plainTree.SharedSizeBytes() != 0 {
		t.Error("plain tree should have no shared table")
	}
}

func TestNodeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randomData(rng, 3000, 4)
	tr, err := New(data, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.NodeStats()
	if len(stats) != 3 {
		t.Fatalf("%d node stats for sigma=4, want 3", len(stats))
	}
	root := stats[0]
	if root.Depth != 0 || root.Lo != 0 || root.Hi != 4 || root.Bits != 3000 {
		t.Errorf("root stat wrong: %+v", root)
	}
	// Children cover the root's zeros and ones.
	var childBits int
	for _, st := range stats[1:] {
		if st.Depth != 1 {
			t.Errorf("child depth %d", st.Depth)
		}
		childBits += st.Bits
		if st.Entropy < 0 || st.Entropy > 1 {
			t.Errorf("entropy %v out of [0,1]", st.Entropy)
		}
		if st.SizeBytes <= 0 {
			t.Errorf("node size missing: %+v", st)
		}
	}
	if childBits != 3000 {
		t.Errorf("children cover %d bits, want 3000", childBits)
	}
	// On near-uniform data the root entropy approaches 1 bit.
	if root.Entropy < 0.95 {
		t.Errorf("root entropy %v implausibly low for uniform data", root.Entropy)
	}
	// A constant string has zero-entropy nodes.
	flat := make([]uint8, 500)
	ft, err := New(flat, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := ft.NodeStats()[0]; s.Entropy != 0 || s.Ones != 0 {
		t.Errorf("constant-string root stat: %+v", s)
	}
}
