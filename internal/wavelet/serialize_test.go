package wavelet

import (
	"bytes"
	"math/rand"
	"testing"

	"bwaver/internal/rrr"
)

func TestTreeSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, sigma := range []int{2, 4, 7, 16} {
		for _, backend := range []Backend{
			RRRBackend(rrr.Params{BlockSize: 9, SuperblockFactor: 4}),
			PlainBackend(),
		} {
			data := randomData(rng, 3000, sigma)
			orig, err := New(data, sigma, backend)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			back, err := ReadTree(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != orig.Len() || back.Sigma() != orig.Sigma() || back.Levels() != orig.Levels() {
				t.Fatalf("metadata changed: %d/%d/%d", back.Len(), back.Sigma(), back.Levels())
			}
			for i := 0; i < len(data); i += 7 {
				if back.Access(i) != data[i] {
					t.Fatalf("Access(%d) changed after round trip", i)
				}
				for sym := 0; sym < sigma; sym++ {
					if back.Rank(uint8(sym), i) != orig.Rank(uint8(sym), i) {
						t.Fatalf("Rank(%d,%d) changed after round trip", sym, i)
					}
				}
			}
		}
	}
}

func TestReadTreeRejectsCorruption(t *testing.T) {
	data := randomData(rand.New(rand.NewSource(92)), 500, 4)
	orig, err := New(data, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 4, 12, len(good) / 2, len(good) - 1} {
		if _, err := ReadTree(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("accepted tree truncated to %d bytes", cut)
		}
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Corrupt the sigma field: must be rejected by structural checks.
	bad = append([]byte(nil), good...)
	bad[8] = 0xEE
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Error("accepted corrupted alphabet size")
	}
}
