package wavelet

import (
	"encoding/binary"
	"fmt"
	"io"

	"bwaver/internal/bitvec"
	"bwaver/internal/rrr"
)

// Serialization format (little endian):
//
//	magic  uint32 'WVT1'
//	n, sigma  uint32
//	backendKind uint8 (0 = rrr, 1 = plain)
//	nodes, pre-order; per node:
//	    present uint8 (0 = leaf/nil)
//	    lo, hi uint32
//	    payload (rrr.Sequence or bitvec.Vector)
const treeMagic = 0x57565431 // "WVT1"

const (
	backendKindRRR   = 0
	backendKindPlain = 1
)

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	kind := uint8(backendKindRRR)
	if t.root != nil {
		if _, ok := t.root.vec.(*bitvec.Vector); ok {
			kind = backendKindPlain
		}
	}
	head := []any{uint32(treeMagic), uint32(t.n), uint32(t.sigma), kind}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	var writeNode func(nd *node) error
	writeNode = func(nd *node) error {
		if nd == nil {
			return binary.Write(cw, binary.LittleEndian, uint8(0))
		}
		if err := binary.Write(cw, binary.LittleEndian, uint8(1)); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, [2]uint32{uint32(nd.lo), uint32(nd.hi)}); err != nil {
			return err
		}
		wt, ok := nd.vec.(io.WriterTo)
		if !ok {
			return fmt.Errorf("wavelet: node vector %T is not serializable", nd.vec)
		}
		if _, err := wt.WriteTo(cw); err != nil {
			return err
		}
		if err := writeNode(nd.zero); err != nil {
			return err
		}
		return writeNode(nd.on)
	}
	if err := writeNode(t.root); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadTree deserializes a tree written by WriteTo.
func ReadTree(r io.Reader) (*Tree, error) {
	var magic, n, sigma uint32
	var kind uint8
	for _, v := range []any{&magic, &n, &sigma, &kind} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("wavelet: reading header: %w", err)
		}
	}
	if magic != treeMagic {
		return nil, fmt.Errorf("wavelet: bad magic %#x", magic)
	}
	if sigma < 2 || sigma > 256 {
		return nil, fmt.Errorf("wavelet: implausible alphabet size %d", sigma)
	}
	if kind != backendKindRRR && kind != backendKindPlain {
		return nil, fmt.Errorf("wavelet: unknown backend kind %d", kind)
	}
	var readNode func() (*node, error)
	readNode = func() (*node, error) {
		var present uint8
		if err := binary.Read(r, binary.LittleEndian, &present); err != nil {
			return nil, fmt.Errorf("wavelet: reading node flag: %w", err)
		}
		if present == 0 {
			return nil, nil
		}
		var bounds [2]uint32
		if err := binary.Read(r, binary.LittleEndian, &bounds); err != nil {
			return nil, fmt.Errorf("wavelet: reading node bounds: %w", err)
		}
		if bounds[0] >= bounds[1] || bounds[1] > sigma {
			return nil, fmt.Errorf("wavelet: node range [%d,%d) invalid for sigma %d", bounds[0], bounds[1], sigma)
		}
		nd := &node{lo: int(bounds[0]), hi: int(bounds[1])}
		var err error
		if kind == backendKindRRR {
			nd.vec, err = rrr.ReadSequence(r)
		} else {
			nd.vec, err = bitvec.ReadVector(r)
		}
		if err != nil {
			return nil, err
		}
		if nd.zero, err = readNode(); err != nil {
			return nil, err
		}
		if nd.on, err = readNode(); err != nil {
			return nil, err
		}
		return nd, nil
	}
	root, err := readNode()
	if err != nil {
		return nil, err
	}
	if root != nil && root.vec.Len() != int(n) {
		return nil, fmt.Errorf("wavelet: root vector covers %d symbols, header says %d", root.vec.Len(), n)
	}
	if root != nil {
		if root.lo != 0 || root.hi != int(sigma) {
			return nil, fmt.Errorf("wavelet: root covers [%d,%d), want [0,%d)", root.lo, root.hi, sigma)
		}
		if err := validateNode(root); err != nil {
			return nil, err
		}
	} else if n > 0 && sigma > 1 {
		return nil, fmt.Errorf("wavelet: non-empty tree lacks a root node")
	}
	levels := 0
	for 1<<uint(levels) < int(sigma) {
		levels++
	}
	backendName := "rrr(deserialized)"
	if kind == backendKindPlain {
		backendName = "plain"
	}
	return &Tree{root: root, n: int(n), sigma: int(sigma), levels: levels, backend: backendName}, nil
}

// validateNode checks the structural invariants a deserialized subtree must
// satisfy before queries are safe: each child partitions its parent's
// alphabet range at the midpoint and covers exactly the parent's zero/one
// count. Corrupted payloads that pass the per-vector checks but break the
// tree shape would otherwise return garbage ranks that overflow callers.
func validateNode(nd *node) error {
	if nd.hi-nd.lo < 2 {
		return fmt.Errorf("wavelet: internal node covers degenerate range [%d,%d)", nd.lo, nd.hi)
	}
	mid := (nd.lo + nd.hi + 1) / 2
	ones := nd.vec.Rank1(nd.vec.Len())
	zeros := nd.vec.Len() - ones
	if nd.zero != nil {
		if nd.zero.lo != nd.lo || nd.zero.hi != mid {
			return fmt.Errorf("wavelet: zero child covers [%d,%d), want [%d,%d)", nd.zero.lo, nd.zero.hi, nd.lo, mid)
		}
		if nd.zero.vec.Len() != zeros {
			return fmt.Errorf("wavelet: zero child covers %d symbols, parent has %d zeros", nd.zero.vec.Len(), zeros)
		}
		if err := validateNode(nd.zero); err != nil {
			return err
		}
	} else if mid-nd.lo > 1 {
		return fmt.Errorf("wavelet: missing zero child for range [%d,%d)", nd.lo, mid)
	}
	if nd.on != nil {
		if nd.on.lo != mid || nd.on.hi != nd.hi {
			return fmt.Errorf("wavelet: one child covers [%d,%d), want [%d,%d)", nd.on.lo, nd.on.hi, mid, nd.hi)
		}
		if nd.on.vec.Len() != ones {
			return fmt.Errorf("wavelet: one child covers %d symbols, parent has %d ones", nd.on.vec.Len(), ones)
		}
		if err := validateNode(nd.on); err != nil {
			return err
		}
	} else if nd.hi-mid > 1 {
		return fmt.Errorf("wavelet: missing one child for range [%d,%d)", mid, nd.hi)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
