// Package sam writes Sequence Alignment/Map (SAM) records, the interchange
// format downstream of every read mapper. BWaveR's CLI uses it to emit
// mapping results that genomics toolchains (samtools-style) can consume;
// only the subset needed for exact/k-mismatch single-end mappings is
// implemented.
package sam

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Flag bits (SAM spec §1.4).
const (
	FlagPaired        uint16 = 0x1
	FlagProperPair    uint16 = 0x2
	FlagUnmapped      uint16 = 0x4
	FlagMateUnmapped  uint16 = 0x8
	FlagReverse       uint16 = 0x10
	FlagMateReverse   uint16 = 0x20
	FlagFirstInPair   uint16 = 0x40
	FlagSecondInPair  uint16 = 0x80
	FlagSecondary     uint16 = 0x100
	FlagQCFail        uint16 = 0x200
	FlagDuplicate     uint16 = 0x400
	FlagSupplementary uint16 = 0x800
)

// RefSeq describes one @SQ header line.
type RefSeq struct {
	Name   string
	Length int
}

// Record is one alignment line.
type Record struct {
	QName string
	Flag  uint16
	// RName is the reference (contig) name, "*" or empty when unmapped.
	RName string
	// Pos is the 1-based leftmost mapping position, 0 when unmapped.
	Pos  int
	MapQ uint8
	// CIGAR is the alignment string, "*" or empty when unmapped.
	CIGAR string
	// Seq is the read sequence as aligned (reverse-complemented for
	// reverse-strand records, per the spec).
	Seq string
	// Qual is the quality string; "*" or empty substitutes the placeholder.
	Qual string
	// RNext names the mate's reference for paired records: "=" for the
	// same reference, a contig name, or empty/"*" for none.
	RNext string
	// PNext is the mate's 1-based position, 0 for none.
	PNext int
	// TLen is the signed observed template length, 0 for none.
	TLen int
	// Tags holds optional fields, already formatted ("NM:i:1").
	Tags []string
}

// Unmapped reports the unmapped flag.
func (r Record) Unmapped() bool { return r.Flag&FlagUnmapped != 0 }

// Writer emits a SAM header followed by alignment records.
type Writer struct {
	w        *bufio.Writer
	refs     map[string]int // name -> length
	wroteAny bool
}

// NewWriter writes the @HD/@SQ/@PG header immediately and returns a Writer
// for the alignment section.
func NewWriter(w io.Writer, refs []RefSeq) (*Writer, error) {
	out := &Writer{w: bufio.NewWriter(w), refs: make(map[string]int, len(refs))}
	fmt.Fprintf(out.w, "@HD\tVN:1.6\tSO:unknown\n")
	for _, r := range refs {
		if r.Name == "" || strings.ContainsAny(r.Name, " \t\n") {
			return nil, fmt.Errorf("sam: invalid reference name %q", r.Name)
		}
		if r.Length <= 0 {
			return nil, fmt.Errorf("sam: reference %q has non-positive length %d", r.Name, r.Length)
		}
		if _, dup := out.refs[r.Name]; dup {
			return nil, fmt.Errorf("sam: duplicate reference %q", r.Name)
		}
		out.refs[r.Name] = r.Length
		fmt.Fprintf(out.w, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length)
	}
	fmt.Fprintf(out.w, "@PG\tID:bwaver\tPN:bwaver\n")
	return out, nil
}

// Write validates and emits one record.
func (w *Writer) Write(rec Record) error {
	if rec.QName == "" || strings.ContainsAny(rec.QName, " \t\n") {
		return fmt.Errorf("sam: invalid query name %q", rec.QName)
	}
	if rec.Pos < 0 {
		return fmt.Errorf("sam: record %q has negative position %d", rec.QName, rec.Pos)
	}
	if rec.PNext < 0 {
		return fmt.Errorf("sam: record %q has negative mate position %d", rec.QName, rec.PNext)
	}
	rname, pos, cigar := rec.RName, rec.Pos, rec.CIGAR
	if rec.Unmapped() {
		rname, pos, cigar = "*", 0, "*"
	} else {
		length, ok := w.refs[rname]
		if !ok {
			return fmt.Errorf("sam: record %q maps to unknown reference %q", rec.QName, rname)
		}
		if pos < 1 || pos > length {
			return fmt.Errorf("sam: record %q position %d outside %q [1,%d]", rec.QName, pos, rname, length)
		}
		if cigar == "" {
			return fmt.Errorf("sam: mapped record %q lacks a CIGAR", rec.QName)
		}
	}
	seq := rec.Seq
	if seq == "" {
		seq = "*"
	}
	qual := rec.Qual
	if qual == "" {
		qual = "*"
	}
	if seq != "*" && qual != "*" && len(seq) != len(qual) {
		return fmt.Errorf("sam: record %q: %d quality bytes for %d bases", rec.QName, len(qual), len(seq))
	}
	if seq == "*" && qual != "*" {
		return fmt.Errorf("sam: record %q has qualities but no sequence", rec.QName)
	}
	rnext := rec.RNext
	if rnext == "" {
		rnext = "*"
	}
	if rnext != "*" && rnext != "=" {
		if _, ok := w.refs[rnext]; !ok {
			return fmt.Errorf("sam: record %q: mate reference %q unknown", rec.QName, rnext)
		}
	}
	fmt.Fprintf(w.w, "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s",
		rec.QName, rec.Flag, rname, pos, rec.MapQ, cigar, rnext, rec.PNext, rec.TLen, seq, qual)
	for _, tag := range rec.Tags {
		fmt.Fprintf(w.w, "\t%s", tag)
	}
	w.w.WriteByte('\n')
	w.wroteAny = true
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
