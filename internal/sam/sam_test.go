package sam

import (
	"bytes"
	"strings"
	"testing"
)

func newTestWriter(t *testing.T) (*Writer, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []RefSeq{{Name: "chr1", Length: 1000}, {Name: "chr2", Length: 500}})
	if err != nil {
		t.Fatal(err)
	}
	return w, &buf
}

func TestHeader(t *testing.T) {
	w, buf := newTestWriter(t)
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d header lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "@HD\tVN:1.6") {
		t.Errorf("bad @HD: %q", lines[0])
	}
	if lines[1] != "@SQ\tSN:chr1\tLN:1000" || lines[2] != "@SQ\tSN:chr2\tLN:500" {
		t.Errorf("bad @SQ lines: %q %q", lines[1], lines[2])
	}
	if !strings.HasPrefix(lines[3], "@PG\tID:bwaver") {
		t.Errorf("bad @PG: %q", lines[3])
	}
}

func TestHeaderValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]RefSeq{
		{{Name: "", Length: 10}},
		{{Name: "a b", Length: 10}},
		{{Name: "a", Length: 0}},
		{{Name: "a", Length: 10}, {Name: "a", Length: 20}},
	}
	for _, refs := range cases {
		if _, err := NewWriter(&buf, refs); err == nil {
			t.Errorf("NewWriter(%v) accepted invalid refs", refs)
		}
	}
}

func TestWriteMappedRecord(t *testing.T) {
	w, buf := newTestWriter(t)
	err := w.Write(Record{
		QName: "read1", Flag: 0, RName: "chr1", Pos: 42, MapQ: 37,
		CIGAR: "50M", Seq: strings.Repeat("A", 50), Qual: strings.Repeat("I", 50),
		Tags: []string{"NM:i:0", "AS:i:100"},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	fields := strings.Split(last, "\t")
	if len(fields) != 13 {
		t.Fatalf("%d fields, want 13: %q", len(fields), last)
	}
	want := []string{"read1", "0", "chr1", "42", "37", "50M", "*", "0", "0"}
	for i, wv := range want {
		if fields[i] != wv {
			t.Errorf("field %d = %q, want %q", i, fields[i], wv)
		}
	}
	if fields[11] != "NM:i:0" || fields[12] != "AS:i:100" {
		t.Errorf("tags wrong: %v", fields[11:])
	}
}

func TestWriteUnmappedRecord(t *testing.T) {
	w, buf := newTestWriter(t)
	if err := w.Write(Record{QName: "r", Flag: FlagUnmapped, Seq: "ACGT"}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fields := strings.Split(lines[len(lines)-1], "\t")
	if fields[2] != "*" || fields[3] != "0" || fields[5] != "*" || fields[10] != "*" {
		t.Errorf("unmapped record fields wrong: %v", fields)
	}
}

func TestWriteValidation(t *testing.T) {
	w, _ := newTestWriter(t)
	cases := []Record{
		{QName: "", RName: "chr1", Pos: 1, CIGAR: "1M"},
		{QName: "a b", RName: "chr1", Pos: 1, CIGAR: "1M"},
		{QName: "r", RName: "chrX", Pos: 1, CIGAR: "1M"},
		{QName: "r", RName: "chr1", Pos: 0, CIGAR: "1M"},
		{QName: "r", RName: "chr1", Pos: 1001, CIGAR: "1M"},
		{QName: "r", RName: "chr1", Pos: 5, CIGAR: ""},
		{QName: "r", RName: "chr1", Pos: 5, CIGAR: "4M", Seq: "ACGT", Qual: "II"},
		{QName: "r", RName: "chr1", Pos: -3, CIGAR: "1M"},
		{QName: "r", Flag: FlagUnmapped, Pos: -3}, // negative Pos is invalid even when masked by the unmapped substitution
		{QName: "r", RName: "chr1", Pos: 5, CIGAR: "1M", RNext: "=", PNext: -1},
		{QName: "r", RName: "chr1", Pos: 5, CIGAR: "1M", Qual: "III"}, // qualities without a sequence
	}
	for i, rec := range cases {
		if err := w.Write(rec); err == nil {
			t.Errorf("case %d: Write(%+v) accepted invalid record", i, rec)
		}
	}
}

func TestFlagConstants(t *testing.T) {
	// Spec §1.4 bit values; FlagSupplementary in particular was missing.
	for _, c := range []struct {
		flag uint16
		want uint16
	}{
		{FlagSecondary, 0x100},
		{FlagQCFail, 0x200},
		{FlagDuplicate, 0x400},
		{FlagSupplementary, 0x800},
	} {
		if c.flag != c.want {
			t.Errorf("flag = %#x, want %#x", c.flag, c.want)
		}
	}
}

func TestFlagHelpers(t *testing.T) {
	if (Record{Flag: FlagUnmapped}).Unmapped() != true {
		t.Error("Unmapped flag not detected")
	}
	if (Record{Flag: FlagReverse}).Unmapped() {
		t.Error("reverse flag misread as unmapped")
	}
}

func TestWritePairedRecord(t *testing.T) {
	w, buf := newTestWriter(t)
	err := w.Write(Record{
		QName: "p1", Flag: FlagPaired | FlagProperPair | FlagFirstInPair | FlagMateReverse,
		RName: "chr1", Pos: 100, MapQ: 60, CIGAR: "50M",
		RNext: "=", PNext: 251, TLen: 201,
		Seq: strings.Repeat("A", 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fields := strings.Split(lines[len(lines)-1], "\t")
	if fields[1] != "99" { // 0x1|0x2|0x20|0x40
		t.Errorf("flag = %s, want 99", fields[1])
	}
	if fields[6] != "=" || fields[7] != "251" || fields[8] != "201" {
		t.Errorf("mate fields = %v", fields[6:9])
	}
}

func TestWriteMateReferenceValidation(t *testing.T) {
	w, _ := newTestWriter(t)
	err := w.Write(Record{
		QName: "p", Flag: FlagPaired, RName: "chr1", Pos: 1, CIGAR: "1M",
		RNext: "chrUnknown", PNext: 5,
	})
	if err == nil {
		t.Error("unknown mate reference accepted")
	}
	// Cross-contig mates are fine when the contig is declared.
	if err := w.Write(Record{
		QName: "p", Flag: FlagPaired, RName: "chr1", Pos: 1, CIGAR: "1M",
		RNext: "chr2", PNext: 5,
	}); err != nil {
		t.Errorf("declared mate reference rejected: %v", err)
	}
}
