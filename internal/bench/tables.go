package bench

import (
	"fmt"
	"io"
	"time"

	"bwaver/internal/baseline"
	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

// TableEntry is one column group of Tables I/II: a mapper configuration's
// time plus its speed and power-efficiency ratios relative to BWaveR-FPGA.
type TableEntry struct {
	// Config names the row: "BWaveR FPGA", "BWaveR CPU", "Bowtie2-like 1t" ...
	Config string
	Time   time.Duration
	// Slowdown is Time / FPGA-Time, the paper's "Speed-up" row read from
	// the FPGA's perspective (the FPGA row holds 1).
	Slowdown float64
	// PowerRatio is energy relative to the FPGA run: Slowdown scaled by
	// the 135 W / 25 W power ratio (the paper's "Power efficiency" row).
	PowerRatio float64
}

// TableResult is one read-count block of Table I or II.
type TableResult struct {
	Ref     Reference
	Reads   int
	ReadLen int
	Entries []TableEntry
}

// TableReadCounts are the paper's workload sizes: Table I uses the largest
// only; Table II all three.
var TableReadCounts = []int{1_000_000, 10_000_000, 100_000_000}

// tableParams are the hardware parameters of §IV: b=15, sf=50 for every
// Table I/II run, on both CPU and FPGA.
var tableParams = rrr.Params{BlockSize: 15, SuperblockFactor: 50}

// tableThreads are the Bowtie2 thread counts of the tables.
var tableThreads = []int{1, 8, 16}

// tableMappingRatio approximates the paper's (unstated) workload mix; the
// relative results are insensitive to it because every mapper sees the same
// reads.
const tableMappingRatio = 0.3

// RunTable produces one block of Table I (ref = EColi, readLen = 35) or
// Table II (ref = Chr21, readLen = 40): it builds both indexes, measures a
// read sample on every configuration, and extrapolates to target read
// counts.
func RunTable(ref Reference, readLen int, readCounts []int, s Scale, progress io.Writer) ([]TableResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	genome, err := ref.generate(s)
	if err != nil {
		return nil, err
	}

	// BWaveR index (shared by CPU and FPGA paths) and baseline index.
	ix, err := core.BuildIndex(genome, core.IndexConfig{RRR: tableParams})
	if err != nil {
		return nil, err
	}
	dev, err := fpga.NewDevice(s.deviceConfig())
	if err != nil {
		return nil, err
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		return nil, err
	}
	bl, err := baseline.NewMapper(genome)
	if err != nil {
		return nil, err
	}

	// Measure once on the sample; per-read costs extrapolate linearly.
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: s.SampleReads, Length: readLen, MappingRatio: tableMappingRatio,
		RevCompFraction: 0.5, Seed: s.Seed + 13,
	})
	if err != nil {
		return nil, err
	}
	seqs := readsim.Seqs(reads)

	_, cpuStats, err := ix.MapReads(seqs, core.MapOptions{})
	if err != nil {
		return nil, err
	}
	run, err := kernel.MapReads(seqs)
	if err != nil {
		return nil, err
	}
	avgSteps := float64(cpuStats.TotalSteps) / float64(s.SampleReads)

	// Accuracy gate: the three mappers must agree on every sampled read
	// before their times are worth comparing.
	blResults, _, err := bl.MapReads(seqs, 1, false)
	if err != nil {
		return nil, err
	}
	cpuResults, _, err := ix.MapReads(seqs[:min(2000, len(seqs))], core.MapOptions{})
	if err != nil {
		return nil, err
	}
	for i := range cpuResults {
		if run.Results[i].Forward != cpuResults[i].Forward ||
			blResults[i].Forward != cpuResults[i].Forward ||
			run.Results[i].Reverse != cpuResults[i].Reverse ||
			blResults[i].Reverse != cpuResults[i].Reverse {
			return nil, fmt.Errorf("bench: mappers disagree on read %d; refusing to benchmark wrong code", i)
		}
	}

	blTimes := make(map[int]time.Duration)
	for _, threads := range tableThreads {
		_, st, err := bl.MapReads(seqs, threads, false)
		if err != nil {
			return nil, err
		}
		blTimes[threads] = st.Elapsed
		if progress != nil {
			fmt.Fprintf(progress, "table %-12s baseline %2d threads: %v for %d reads\n",
				ref, threads, st.Elapsed.Round(time.Millisecond), s.SampleReads)
		}
	}

	var results []TableResult
	for _, paperCount := range readCounts {
		target := int(float64(paperCount) * s.Reads)
		if target < 1 {
			target = 1
		}
		fpgaTime := kernel.ModelProfile(target, avgSteps).Total()
		res := TableResult{Ref: ref, Reads: target, ReadLen: readLen}
		add := func(name string, t time.Duration) {
			slow := float64(t) / float64(fpgaTime)
			res.Entries = append(res.Entries, TableEntry{
				Config:     name,
				Time:       t,
				Slowdown:   slow,
				PowerRatio: slow * HostPowerWatts / FPGAPowerWatts,
			})
		}
		res.Entries = append(res.Entries, TableEntry{
			Config: "BWaveR FPGA", Time: fpgaTime, Slowdown: 1, PowerRatio: 1,
		})
		add("BWaveR CPU", extrapolate(cpuStats.Elapsed, s.SampleReads, target))
		for _, threads := range tableThreads {
			add(fmt.Sprintf("Bowtie2-like %dt", threads),
				extrapolate(blTimes[threads], s.SampleReads, target))
		}
		results = append(results, res)
		if progress != nil {
			fmt.Fprintf(progress, "table %-12s %d reads: fpga=%v\n",
				ref, target, fpgaTime.Round(time.Millisecond))
		}
	}
	return results, nil
}

// Table1 reproduces Table I: 100 M (scaled) 35 bp reads on E. coli.
func Table1(s Scale, progress io.Writer) ([]TableResult, error) {
	return RunTable(EColi, 35, TableReadCounts[2:], s, progress)
}

// Table2 reproduces Table II: 1, 10 and 100 M (scaled) 40 bp reads on
// chromosome 21.
func Table2(s Scale, progress io.Writer) ([]TableResult, error) {
	return RunTable(Chr21, 40, TableReadCounts, s, progress)
}

// PrintFig5 renders the Fig. 5 rows (sizes) as a table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "\nFig. 5 — data structure size [MB] (uncompressed BWT = 1 B/base)\n")
	fmt.Fprintf(w, "%-12s %4s %5s %12s %12s %8s\n", "reference", "b", "sf", "size MB", "plain MB", "saving")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %4d %5d %12.3f %12.3f %7.1f%%\n",
			r.Ref, r.B, r.SF, float64(r.TotalBytes())/1e6,
			float64(r.UncompressedBytes)/1e6, r.Saving()*100)
	}
}

// PrintFig6 renders the Fig. 6 rows (build times) as a table.
func PrintFig6(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "\nFig. 6 — structure building time\n")
	fmt.Fprintf(w, "%-12s %4s %5s %14s\n", "reference", "b", "sf", "encode time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %4d %5d %14v\n", r.Ref, r.B, r.SF, r.BuildTime.Round(time.Microsecond))
	}
}

// ms renders a duration as fractional milliseconds, the unit of the paper's
// tables, without rounding sub-millisecond model output to zero.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}

// PrintFig7 renders the Fig. 7 rows.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "\nFig. 7 — mapping time vs mapping ratio (%d reads of 100 bp)\n", rowsReads(rows))
	fmt.Fprintf(w, "%-12s %4s %5s %7s %16s %16s\n", "reference", "b", "sf", "ratio", "cpu time", "fpga time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %4d %5d %6.0f%% %16s %16s\n",
			r.Ref, r.B, r.SF, r.MappingRatio*100, ms(r.CPUTime), ms(r.FPGATime))
	}
}

func rowsReads(rows []Fig7Row) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Reads
}

// PrintTable renders Table I/II blocks in the paper's layout.
func PrintTable(w io.Writer, title string, results []TableResult) {
	fmt.Fprintf(w, "\n%s\n", title)
	for _, res := range results {
		fmt.Fprintf(w, "\n%s, %d reads of %d bp\n", res.Ref, res.Reads, res.ReadLen)
		fmt.Fprintf(w, "%-18s %16s %10s %12s\n", "config", "time", "speed-up", "power-eff")
		for _, e := range res.Entries {
			fmt.Fprintf(w, "%-18s %16s %9.2fx %11.2fx\n",
				e.Config, ms(e.Time), e.Slowdown, e.PowerRatio)
		}
	}
}
