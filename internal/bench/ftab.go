package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
)

// Prefix-table ablation: the same read batch mapped with the k-mer lookup
// table at several orders (k=0 disables it), on the host hot path and the
// modeled kernel. The host column is the zero-allocation MapReadsInto
// pipeline, so the allocs/read figure doubles as a regression gate; the
// kernel column shows the first k pipeline iterations collapsing into one
// BRAM lookup cycle — and, at orders whose table no longer fits next to the
// succinct structure, the graceful degrade back to ftab-off hardware.

// FtabKs is the default order sweep; 12 exceeds the default 40 MiB BRAM
// budget (4^12 intervals = 128 MiB) and exercises the degrade path.
var FtabKs = []int{0, 8, 10, 12}

// ftabReadLen matches Table I's short-read workload, where the table
// covers the largest fraction of each search.
const ftabReadLen = 35

// FtabRow is one arm of the ablation.
type FtabRow struct {
	K              int     `json:"k"`
	StructureBytes int     `json:"structure_bytes"`
	FtabBytes      int     `json:"ftab_bytes"`
	FtabBuildMs    float64 `json:"ftab_build_ms"`
	ReadsPerSec    float64 `json:"reads_per_sec"`
	AllocsPerRead  float64 `json:"allocs_per_read"`
	KernelCycles   uint64  `json:"kernel_cycles"`
	FPGAMs         float64 `json:"fpga_ms"`
	Degraded       bool    `json:"bram_degraded"`
	// Speedup is host reads/sec relative to the k=0 arm (1.0 when the
	// sweep has no k=0 arm to compare against).
	Speedup float64 `json:"speedup_vs_k0"`
}

// FtabResult bundles the sweep with its workload parameters.
type FtabResult struct {
	Reference    string    `json:"reference"`
	RefBases     int       `json:"ref_bases"`
	Reads        int       `json:"reads"`
	ReadLength   int       `json:"read_length"`
	MappingRatio float64   `json:"mapping_ratio"`
	Rows         []FtabRow `json:"rows"`
}

// FtabAblate sweeps the prefix-table order over ks (FtabKs when empty) on an
// E.Coli-scale reference with Table I-style 35 bp reads at 50% mapping
// ratio. The index is built once; each arm swaps the table via EnsureFtab so
// the succinct structure is shared and only the quantity under test varies.
func FtabAblate(s Scale, ks []int, progress io.Writer) (*FtabResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		ks = FtabKs
	}
	genome, err := EColi.generate(s)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndex(genome, core.IndexConfig{})
	if err != nil {
		return nil, err
	}
	const ratio = 0.5
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: s.SampleReads, Length: ftabReadLen, MappingRatio: ratio,
		RevCompFraction: 0.5, Seed: s.Seed + 31,
	})
	if err != nil {
		return nil, err
	}
	seqs := readsim.Seqs(reads)
	dst := make([]core.MapResult, len(seqs))
	res := &FtabResult{
		Reference:    EColi.String(),
		RefBases:     len(genome),
		Reads:        len(seqs),
		ReadLength:   ftabReadLen,
		MappingRatio: ratio,
	}
	single := core.MapOptions{Workers: 1}
	for _, k := range ks {
		if err := ix.EnsureFtab(k); err != nil {
			return nil, err
		}
		// Warm-up pass fills the pooled scratch buffers; afterwards the
		// single-worker pipeline should allocate nothing per read.
		if _, err := ix.MapReadsInto(dst, seqs, single); err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := ix.MapReadsInto(dst, seqs, single); err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		allocsPerRead := float64(after.Mallocs-before.Mallocs) / float64(len(seqs))

		// Timing: accumulate passes until the measurement is long enough to
		// trust, then report the per-read rate.
		var elapsed time.Duration
		mapped := 0
		for pass := 0; pass < 50 && elapsed < 200*time.Millisecond; pass++ {
			st, err := ix.MapReadsInto(dst, seqs, single)
			if err != nil {
				return nil, err
			}
			elapsed += st.Elapsed
			mapped += len(seqs)
		}

		dev, err := fpga.NewDevice(s.deviceConfig())
		if err != nil {
			return nil, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return nil, err
		}
		run, err := kernel.MapReads(seqs)
		if err != nil {
			return nil, err
		}
		row := FtabRow{
			K:              k,
			StructureBytes: ix.StructureBytes(),
			FtabBytes:      ix.FtabBytes(),
			FtabBuildMs:    float64(ix.Stats().FtabTime) / float64(time.Millisecond),
			ReadsPerSec:    float64(mapped) / elapsed.Seconds(),
			AllocsPerRead:  allocsPerRead,
			KernelCycles:   run.Profile.KernelCycles,
			FPGAMs:         float64(run.Profile.Total()) / float64(time.Millisecond),
			Degraded:       kernel.FtabDegraded(),
		}
		res.Rows = append(res.Rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "ftab k=%-2d table=%8.2f MB  %10.0f reads/s  %.2f allocs/read  %12d cycles%s\n",
				k, float64(row.FtabBytes)/1e6, row.ReadsPerSec, row.AllocsPerRead,
				row.KernelCycles, degradedNote(row.Degraded))
		}
	}
	baseline := 0.0
	for _, r := range res.Rows {
		if r.K == 0 {
			baseline = r.ReadsPerSec
		}
	}
	for i := range res.Rows {
		if baseline > 0 {
			res.Rows[i].Speedup = res.Rows[i].ReadsPerSec / baseline
		} else {
			res.Rows[i].Speedup = 1
		}
	}
	return res, nil
}

func degradedNote(d bool) string {
	if d {
		return "  (BRAM degrade: ftab off)"
	}
	return ""
}

// PrintFtabAblation renders the sweep.
func PrintFtabAblation(w io.Writer, res *FtabResult) {
	fmt.Fprintf(w, "\nAblation — k-mer prefix table (%s, %d x %d bp reads, %.0f%% mapping)\n",
		res.Reference, res.Reads, res.ReadLength, res.MappingRatio*100)
	fmt.Fprintf(w, "%-4s %12s %12s %12s %10s %8s %14s %10s %s\n",
		"k", "ftab MB", "on-chip MB", "reads/s", "speedup", "allocs", "cycles", "fpga", "degraded")
	for _, r := range res.Rows {
		onChip := r.StructureBytes
		if !r.Degraded {
			onChip += r.FtabBytes // a degraded kernel keeps only the structure on chip
		}
		fmt.Fprintf(w, "%-4d %12.2f %12.2f %12.0f %9.2fx %8.2f %14d %10s %v\n",
			r.K, float64(r.FtabBytes)/1e6, float64(onChip)/1e6,
			r.ReadsPerSec, r.Speedup, r.AllocsPerRead, r.KernelCycles,
			fmt.Sprintf("%.1fms", r.FPGAMs), r.Degraded)
	}
}

// WriteFtabJSON serializes the sweep (the BENCH_pr4.json payload).
func WriteFtabJSON(w io.Writer, res *FtabResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
