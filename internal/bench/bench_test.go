package bench

import (
	"io"
	"os"
	"strings"
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

// tiny is a scale small enough for unit tests: ~0.1% references.
var tiny = Scale{Ref: 0.002, Reads: 0.0002, SampleReads: 500, Seed: 1}

func TestScaleValidate(t *testing.T) {
	bad := []Scale{
		{Ref: 0, Reads: 0.5, SampleReads: 1000},
		{Ref: 1.5, Reads: 0.5, SampleReads: 1000},
		{Ref: 0.5, Reads: 0, SampleReads: 1000},
		{Ref: 0.5, Reads: 0.5, SampleReads: 10},
	}
	for _, s := range bad {
		if s.validate() == nil {
			t.Errorf("accepted invalid scale %+v", s)
		}
	}
	if Quick.validate() != nil || Full.validate() != nil {
		t.Error("preset scales invalid")
	}
}

func TestFig5And6Shapes(t *testing.T) {
	rows, err := Fig5And6(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(GridBlockSizes) * len(GridSuperblockFactors)
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	// Shape check from the paper: for fixed b, size decreases as sf grows.
	byKey := map[[3]int]Fig5Row{}
	for _, r := range rows {
		byKey[[3]int{int(r.Ref), r.B, r.SF}] = r
	}
	for _, refID := range []int{0, 1} {
		for _, b := range GridBlockSizes {
			prev := -1
			for _, sf := range GridSuperblockFactors {
				row := byKey[[3]int{refID, b, sf}]
				if prev >= 0 && row.TotalBytes() > prev {
					t.Errorf("ref=%d b=%d: size grew from %d to %d as sf increased",
						refID, b, prev, row.TotalBytes())
				}
				prev = row.TotalBytes()
				if row.BuildTime <= 0 {
					t.Errorf("missing build time for b=%d sf=%d", b, sf)
				}
			}
		}
	}
	// At tiny reference sizes the 64 KiB shared rank table dominates, so
	// the net-saving claim is asserted separately at a reference size where
	// it is meaningful (TestCompressionAtRealisticSize).
}

// TestCompressionAtRealisticSize checks the paper's headline Fig. 5 claim —
// the structure beats 1 byte/base — once the reference is large enough that
// the shared table amortises.
func TestCompressionAtRealisticSize(t *testing.T) {
	genome, err := readsim.EColiLike(1, 0.1) // ~464 kbp
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(genome, core.IndexConfig{
		RRR:    rrr.Params{BlockSize: 15, SuperblockFactor: 100},
		Locate: core.LocateNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	total := st.StructureBytes + st.SharedBytes
	if total >= st.UncompressedBytes {
		t.Errorf("no compression at 464 kbp: structure %d B vs plain %d B", total, st.UncompressedBytes)
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper claim: FPGA mapping time grows with the mapping ratio.
	type key struct {
		ref   Reference
		b, sf int
	}
	series := map[key][]Fig7Row{}
	for _, r := range rows {
		k := key{r.Ref, r.B, r.SF}
		series[k] = append(series[k], r)
	}
	for k, rs := range series {
		for i := 1; i < len(rs); i++ {
			if rs[i].MappingRatio > rs[i-1].MappingRatio && rs[i].FPGATime < rs[i-1].FPGATime {
				t.Errorf("%v: FPGA time fell from %v to %v as ratio rose %v->%v",
					k, rs[i-1].FPGATime, rs[i].FPGATime, rs[i-1].MappingRatio, rs[i].MappingRatio)
			}
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	results, err := Table2(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d read-count blocks, want 3", len(results))
	}
	var prevCPUSlowdown float64
	for i, res := range results {
		if len(res.Entries) != 5 {
			t.Fatalf("block %d: %d entries, want 5", i, len(res.Entries))
		}
		if res.Entries[0].Config != "BWaveR FPGA" || res.Entries[0].Slowdown != 1 {
			t.Errorf("block %d: FPGA row wrong: %+v", i, res.Entries[0])
		}
		cpu := res.Entries[1]
		if cpu.Slowdown <= 1 {
			t.Errorf("block %d: CPU not slower than FPGA: %+v", i, cpu)
		}
		if cpu.PowerRatio <= cpu.Slowdown {
			t.Errorf("block %d: power ratio must exceed slowdown by the 135/25 factor", i)
		}
		// Paper's key trend: speedup grows with read count because the
		// fixed device overhead amortises.
		if i > 0 && cpu.Slowdown < prevCPUSlowdown {
			t.Errorf("block %d: CPU slowdown %v fell below previous %v — amortisation trend broken",
				i, cpu.Slowdown, prevCPUSlowdown)
		}
		prevCPUSlowdown = cpu.Slowdown
	}
}

func TestTable1SingleBlock(t *testing.T) {
	results, err := Table1(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d blocks, want 1", len(results))
	}
	if results[0].ReadLen != 35 || results[0].Ref != EColi {
		t.Errorf("table 1 metadata wrong: %+v", results[0])
	}
}

func TestPrinters(t *testing.T) {
	fig5, err := Fig5And6(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintFig5(&sb, fig5)
	PrintFig6(&sb, fig5)
	if !strings.Contains(sb.String(), "Fig. 5") || !strings.Contains(sb.String(), "E.Coli") {
		t.Error("fig5/6 output incomplete")
	}
	table, err := Table1(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	PrintTable(&sb, "Table I", table)
	out := sb.String()
	for _, want := range []string{"Table I", "BWaveR FPGA", "Bowtie2-like 16t", "power-eff"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestReferenceString(t *testing.T) {
	if EColi.String() != "E.Coli" || Chr21.String() != "Human Chr.21" {
		t.Error("Reference.String wrong")
	}
}

func TestAblate(t *testing.T) {
	res, err := Ablate(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Occ) != 4 || len(res.Kernel) != 5 {
		t.Fatalf("ablation rows: %d occ, %d kernel", len(res.Occ), len(res.Kernel))
	}
	byName := map[string]KernelAblationRow{}
	for _, r := range res.Kernel {
		byName[r.Name] = r
	}
	base := byName["baseline (paper)"]
	if seq := byName["sequential rank"]; seq.KernelCycles <= base.KernelCycles {
		t.Error("sequential rank not slower than baseline")
	}
	if pe4 := byName["4 PEs"]; pe4.KernelCycles >= base.KernelCycles {
		t.Error("4 PEs not faster than baseline")
	}
	if db := byName["double buffered"]; db.Total > base.Total {
		t.Error("double buffering did not help")
	}
	for _, r := range res.Occ {
		if r.SizeBytes <= 0 || r.RankTime <= 0 {
			t.Errorf("occ row %q not populated: %+v", r.Name, r)
		}
	}
	var sb strings.Builder
	PrintAblation(&sb, res)
	if !strings.Contains(sb.String(), "rlfm") || !strings.Contains(sb.String(), "sequential rank") {
		t.Error("ablation output incomplete")
	}
}

// TestFtabAblation is the bench-smoke gate: it runs the prefix-table sweep
// at tiny scale with small orders and checks the shape claims — the table
// shrinks kernel cycles, the host path stays allocation-free, and the k=0
// baseline anchors the speedup column.
func TestFtabAblation(t *testing.T) {
	res, err := FtabAblate(tiny, []int{0, 4, 6}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	if res.ReadLength != 35 || res.Reads != tiny.SampleReads {
		t.Errorf("workload metadata wrong: %+v", res)
	}
	base := res.Rows[0]
	if base.K != 0 || base.FtabBytes != 0 || base.Speedup != 1 {
		t.Errorf("k=0 baseline wrong: %+v", base)
	}
	for _, r := range res.Rows[1:] {
		if r.FtabBytes <= 0 {
			t.Errorf("k=%d: no table bytes", r.K)
		}
		if r.Degraded {
			t.Errorf("k=%d: unexpected BRAM degrade at tiny scale", r.K)
		}
		// The table collapses the first k iterations of every search, so
		// the modeled kernel must retire fewer cycles than the baseline.
		if r.KernelCycles >= base.KernelCycles {
			t.Errorf("k=%d: %d kernel cycles, baseline %d — no cycle reduction",
				r.K, r.KernelCycles, base.KernelCycles)
		}
	}
	for _, r := range res.Rows {
		// Steady-state MapReadsInto allocates a small constant per batch
		// (worker closure, its escaping counters, and under -race the
		// detector's own bookkeeping) and nothing per read, so the budget is
		// per batch: any real per-read allocation would cost reads-many.
		if batch := r.AllocsPerRead * float64(res.Reads); batch > 16 {
			t.Errorf("k=%d: %.1f allocations per batch of %d reads in steady state",
				r.K, batch, res.Reads)
		}
	}
	var sb strings.Builder
	PrintFtabAblation(&sb, res)
	if !strings.Contains(sb.String(), "prefix table") {
		t.Error("ftab ablation output incomplete")
	}
	sb.Reset()
	if err := WriteFtabJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"speedup_vs_k0\"") {
		t.Error("ftab JSON missing fields")
	}
}

func TestMemBench(t *testing.T) {
	baseline := &MemBenchResult{Rows: []MemRow{{ReadLength: 70, Paired: false, ReadsPerSec: 100}}}
	res, err := MemBench(tiny, baseline, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Speedup <= 0 {
		t.Errorf("baseline row matched but speedup is %v", res.Rows[0].Speedup)
	}
	for _, r := range res.Rows[1:] {
		if r.Speedup != 0 {
			t.Errorf("%dbp paired=%v: speedup %v without a baseline row", r.ReadLength, r.Paired, r.Speedup)
		}
	}
	if len(res.Rows) != len(memArms) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(memArms))
	}
	for _, r := range res.Rows {
		if r.Reads == 0 || r.ReadsPerSec <= 0 {
			t.Errorf("%dbp paired=%v: empty measurement: %+v", r.ReadLength, r.Paired, r)
		}
		if r.MappedPct < 50 {
			t.Errorf("%dbp paired=%v: only %.1f%% mapped at 2%% error rate",
				r.ReadLength, r.Paired, r.MappedPct)
		}
		if r.SeedsPerRead <= 0 || r.CellsPerRead <= 0 || r.KernelCycles == 0 {
			t.Errorf("%dbp paired=%v: pipeline counters empty: %+v", r.ReadLength, r.Paired, r)
		}
		if r.ReconfigMs <= 0 {
			t.Errorf("%dbp paired=%v: no reconfiguration charge", r.ReadLength, r.Paired)
		}
	}
	for _, r := range res.Rows {
		if !r.Paired && r.Rescues != 0 {
			t.Errorf("single-end arm reports %d rescues", r.Rescues)
		}
	}
	var sb strings.Builder
	PrintMemBench(&sb, res)
	if !strings.Contains(sb.String(), "Seed-and-extend") {
		t.Error("mem bench output incomplete")
	}
	sb.Reset()
	if err := WriteMemJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"dp_cells_per_read\"") {
		t.Error("mem JSON missing fields")
	}
}

func TestCSVWriters(t *testing.T) {
	fig5, err := Fig5And6(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig5CSV(&sb, fig5); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(fig5)+1 {
		t.Fatalf("fig5 csv: %d lines, want %d", len(lines), len(fig5)+1)
	}
	if !strings.HasPrefix(lines[0], "reference,b,sf,") {
		t.Errorf("fig5 csv header: %q", lines[0])
	}

	fig7, err := Fig7(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteFig7CSV(&sb, fig7); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(fig7)+1 {
		t.Errorf("fig7 csv: %d lines, want %d", got, len(fig7)+1)
	}

	table, err := Table1(tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTableCSV(&sb, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BWaveR FPGA") {
		t.Error("table csv missing rows")
	}
}

func TestExportCSV(t *testing.T) {
	dir := t.TempDir() + "/nested/out"
	if err := ExportCSV(dir, "x.csv", func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/x.csv")
	if err != nil || string(data) != "a,b\n1,2\n" {
		t.Fatalf("export round trip: %q %v", data, err)
	}
}
