package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
)

// Seed-and-extend ("mem") benchmark: the full SMEM → chain → extend → MAPQ
// pipeline over an E.Coli-scale reference at several read lengths, single-end
// and paired. The host column is the serving path's CPU fallback; the kernel
// column is the modeled two-pass device (seeding pass, reconfiguration,
// systolic extension pass), so the reconfiguration charge and the DP-cell
// cycle volume are visible next to the host rate they amortize against.

// memArm is one workload shape of the sweep.
type memArm struct {
	readLen int
	paired  bool
}

// memArms is the default sweep: the paper's short-read regime plus the
// longer-read shapes where extension (pass 2) dominates seeding (pass 1).
var memArms = []memArm{
	{70, false},
	{70, true},
	{100, true},
	{150, true},
}

// memErrorRate is the per-base substitution rate of the simulated reads —
// high enough that exact matching would miss most of them, which is the
// regime the seed-and-extend pipeline exists for.
const memErrorRate = 0.02

// MemRow is one arm of the mem sweep.
type MemRow struct {
	ReadLength int     `json:"read_length"`
	Paired     bool    `json:"paired"`
	Reads      int     `json:"reads"`
	MappedPct  float64 `json:"mapped_pct"`
	// ReadsPerSec is the host (CPU fallback) rate.
	ReadsPerSec float64 `json:"reads_per_sec"`
	// AllocsPerRead is the heap allocations per read of the steady-state
	// batch path (pools warm, result buffer reused) — the zero-allocation
	// pipeline's regression gauge.
	AllocsPerRead float64 `json:"allocs_per_read"`
	// Speedup is ReadsPerSec over the same arm's rate in the baseline sweep
	// the caller supplied (0 when no baseline row matches).
	Speedup float64 `json:"speedup,omitempty"`
	// Per-read pipeline intensity, the quantities that size the two passes.
	SeedsPerRead      float64 `json:"seeds_per_read"`
	ChainsPerRead     float64 `json:"chains_per_read"`
	ExtensionsPerRead float64 `json:"extensions_per_read"`
	CellsPerRead      float64 `json:"dp_cells_per_read"`
	Rescues           int     `json:"rescues"`
	// Modeled device figures: total kernel cycles across both passes, the
	// fabric reconfiguration charge between them, and the end-to-end device
	// time including transfers.
	KernelCycles uint64  `json:"kernel_cycles"`
	ReconfigMs   float64 `json:"reconfig_ms"`
	FPGAMs       float64 `json:"fpga_ms"`
}

// MemBenchResult bundles the sweep with its workload parameters.
type MemBenchResult struct {
	Reference string   `json:"reference"`
	RefBases  int      `json:"ref_bases"`
	ErrorRate float64  `json:"error_rate"`
	Rows      []MemRow `json:"rows"`
}

// MemBench runs the seed-and-extend sweep. The index is built once and
// shared across arms; each arm simulates its own read set (90% drawn from
// the reference with memErrorRate substitutions), measures the host pipeline
// rate and its steady-state allocations, and replays the same batch through
// the modeled kernel. A non-nil baseline (an earlier sweep's JSON, see
// LoadMemJSON) fills each row's Speedup against the matching arm.
func MemBench(s Scale, baseline *MemBenchResult, progress io.Writer) (*MemBenchResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	genome, err := EColi.generate(s)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndex(genome, core.IndexConfig{})
	if err != nil {
		return nil, err
	}
	res := &MemBenchResult{
		Reference: EColi.String(),
		RefBases:  len(genome),
		ErrorRate: memErrorRate,
	}
	for ai, arm := range memArms {
		seqs, err := memReads(genome, arm, s, int64(ai))
		if err != nil {
			return nil, err
		}
		opts := core.MemOptions{Paired: arm.paired}

		// Host rate: accumulate passes until the measurement is long
		// enough to trust. The first pass also warms the lazily-built
		// bidirectional index and the batch engine's scratch pools so the
		// timing covers only steady-state mapping into a reused buffer.
		results := make([]core.MemResult, len(seqs))
		if _, err := ix.MapReadsMemInto(results, seqs, opts, core.MapOptions{}); err != nil {
			return nil, err
		}
		var elapsed time.Duration
		var stats core.MemStats
		mapped := 0
		for pass := 0; pass < 50 && elapsed < 200*time.Millisecond; pass++ {
			st, err := ix.MapReadsMemInto(results, seqs, opts, core.MapOptions{})
			if err != nil {
				return nil, err
			}
			elapsed += st.Elapsed
			mapped += len(seqs)
			if pass == 0 {
				stats = st
			}
		}

		// Steady-state allocation rate: one more pass bracketed by the
		// runtime's cumulative malloc counter, after the passes above warmed
		// every pool.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := ix.MapReadsMemInto(results, seqs, opts, core.MapOptions{}); err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&m1)
		allocsPerRead := float64(m1.Mallocs-m0.Mallocs) / float64(len(seqs))

		dev, err := fpga.NewDevice(s.deviceConfig())
		if err != nil {
			return nil, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return nil, err
		}
		run, err := kernel.MapReadsMem(seqs, opts)
		if err != nil {
			return nil, err
		}

		n := float64(stats.Reads)
		row := MemRow{
			ReadLength:        arm.readLen,
			Paired:            arm.paired,
			Reads:             stats.Reads,
			MappedPct:         100 * float64(stats.MappedReads) / n,
			ReadsPerSec:       float64(mapped) / elapsed.Seconds(),
			AllocsPerRead:     allocsPerRead,
			SeedsPerRead:      float64(stats.Seeds) / n,
			ChainsPerRead:     float64(stats.Chains) / n,
			ExtensionsPerRead: float64(stats.Extensions) / n,
			CellsPerRead:      float64(stats.Cells) / n,
			Rescues:           stats.Rescues,
			KernelCycles:      run.Profile.KernelCycles,
			ReconfigMs:        float64(run.Profile.Reconfig) / float64(time.Millisecond),
			FPGAMs:            float64(run.Profile.Total()) / float64(time.Millisecond),
		}
		if base := baselineRow(baseline, arm); base != nil && base.ReadsPerSec > 0 {
			row.Speedup = row.ReadsPerSec / base.ReadsPerSec
		}
		res.Rows = append(res.Rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "mem %3dbp %-6s %8.0f reads/s  %5.1f%% mapped  %8.0f cells/read  %12d cycles\n",
				arm.readLen, pairedLabel(arm.paired), row.ReadsPerSec, row.MappedPct,
				row.CellsPerRead, row.KernelCycles)
		}
	}
	return res, nil
}

// memReads simulates one arm's read batch: paired arms interleave mates
// (R1, R2, ...) exactly as the serving path streams them.
func memReads(genome dna.Seq, arm memArm, s Scale, salt int64) ([]dna.Seq, error) {
	if arm.paired {
		pairs, err := readsim.SimulatePairs(genome, readsim.PairConfig{
			Count: s.SampleReads / 2, ReadLength: arm.readLen,
			InsertMean: 3 * arm.readLen, InsertStdDev: arm.readLen / 4,
			MappingRatio: 0.9, ErrorRate: memErrorRate, Seed: s.Seed + 61 + salt,
		})
		if err != nil {
			return nil, err
		}
		seqs := make([]dna.Seq, 0, 2*len(pairs))
		for _, p := range pairs {
			seqs = append(seqs, p.R1, p.R2)
		}
		return seqs, nil
	}
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: s.SampleReads, Length: arm.readLen, MappingRatio: 0.9,
		RevCompFraction: 0.5, ErrorRate: memErrorRate, Seed: s.Seed + 61 + salt,
	})
	if err != nil {
		return nil, err
	}
	return readsim.Seqs(reads), nil
}

func pairedLabel(p bool) string {
	if p {
		return "paired"
	}
	return "single"
}

// baselineRow finds the baseline sweep's row for the same workload shape.
func baselineRow(baseline *MemBenchResult, arm memArm) *MemRow {
	if baseline == nil {
		return nil
	}
	for i := range baseline.Rows {
		if baseline.Rows[i].ReadLength == arm.readLen && baseline.Rows[i].Paired == arm.paired {
			return &baseline.Rows[i]
		}
	}
	return nil
}

// LoadMemJSON reads an earlier sweep's JSON (a recorded BENCH_*.json) for
// use as a speedup baseline.
func LoadMemJSON(path string) (*MemBenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var res MemBenchResult
	if err := json.NewDecoder(f).Decode(&res); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &res, nil
}

// PrintMemBench renders the sweep.
func PrintMemBench(w io.Writer, res *MemBenchResult) {
	fmt.Fprintf(w, "\nSeed-and-extend (mem) — %s (%d bases), %.0f%% substitution reads\n",
		res.Reference, res.RefBases, res.ErrorRate*100)
	fmt.Fprintf(w, "%-6s %-7s %7s %8s %12s %8s %8s %8s %11s %14s %10s %10s\n",
		"len", "mode", "reads", "mapped", "reads/s", "allocs/r", "speedup", "seeds/r", "cells/r", "cycles", "reconfig", "fpga")
	for _, r := range res.Rows {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "%-6d %-7s %7d %7.1f%% %12.0f %8.2f %8s %8.2f %11.0f %14d %9.1fms %9.1fms\n",
			r.ReadLength, pairedLabel(r.Paired), r.Reads, r.MappedPct, r.ReadsPerSec,
			r.AllocsPerRead, speedup, r.SeedsPerRead, r.CellsPerRead,
			r.KernelCycles, r.ReconfigMs, r.FPGAMs)
	}
}

// WriteMemJSON serializes the sweep (the BENCH_pr8.json payload).
func WriteMemJSON(w io.Writer, res *MemBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
