package bench

import (
	"fmt"
	"io"
	"time"

	"bwaver/internal/bwt"
	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
	"bwaver/internal/wavelet"
)

// Ablations quantify the design choices DESIGN.md calls out, beyond the
// paper's own tables: Occ structure, rank pipelining, PE count, and
// double buffering.

// OccAblationRow compares one Occ provider.
type OccAblationRow struct {
	Name      string
	SizeBytes int
	// RankTime is the mean time of one Occ query.
	RankTime time.Duration
}

// KernelAblationRow compares one device configuration.
type KernelAblationRow struct {
	Name         string
	KernelCycles uint64
	Total        time.Duration
}

// AblationResult bundles all ablation outputs.
type AblationResult struct {
	Occ    []OccAblationRow
	Kernel []KernelAblationRow
}

// Ablate runs every ablation at the given scale.
func Ablate(s Scale, progress io.Writer) (*AblationResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	genome, err := EColi.generate(s)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndex(genome, core.IndexConfig{})
	if err != nil {
		return nil, err
	}
	// Extract the BWT data by rebuilding the pipeline pieces once.
	text := make([]uint8, len(genome))
	for i, b := range genome {
		text[i] = uint8(b)
	}
	bwtData, err := bwtDataOf(text)
	if err != nil {
		return nil, err
	}

	out := &AblationResult{}

	// --- Occ providers ---
	providers := []struct {
		name string
		mk   func() (fmindex.OccProvider, error)
	}{
		{"wavelet/rrr (paper)", func() (fmindex.OccProvider, error) {
			return fmindex.NewWaveletOcc(bwtData, 4, rrr.DefaultParams)
		}},
		{"wavelet/plain", func() (fmindex.OccProvider, error) {
			return fmindex.NewWaveletOccBackend(bwtData, 4, wavelet.PlainBackend())
		}},
		{"checkpoint (bowtie-like)", func() (fmindex.OccProvider, error) {
			return fmindex.NewCheckpointOcc(bwtData)
		}},
		{"rlfm", func() (fmindex.OccProvider, error) {
			return fmindex.NewRLFMOcc(bwtData, 4, rrr.DefaultParams)
		}},
	}
	const rankQueries = 200000
	for _, p := range providers {
		occ, err := p.mk()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < rankQueries; i++ {
			occ.Occ(uint8(i&3), (i*7919)%(occ.Len()+1))
		}
		row := OccAblationRow{
			Name:      p.name,
			SizeBytes: occ.SizeBytes(),
			RankTime:  time.Since(start) / rankQueries,
		}
		out.Occ = append(out.Occ, row)
		if progress != nil {
			fmt.Fprintf(progress, "ablate occ %-26s %8.3f MB  %v/rank\n",
				p.name, float64(row.SizeBytes)/1e6, row.RankTime)
		}
	}

	// --- Kernel configurations ---
	sample := min(s.SampleReads, 20000)
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: sample, Length: 40, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: s.Seed + 19,
	})
	if err != nil {
		return nil, err
	}
	seqs := readsim.Seqs(reads)
	kernels := []struct {
		name string
		cfg  fpga.Config
	}{
		{"baseline (paper)", fpga.Config{}},
		{"sequential rank", fpga.Config{SequentialRank: true}},
		{"2 PEs", fpga.Config{PEs: 2}},
		{"4 PEs", fpga.Config{PEs: 4}},
		{"double buffered", fpga.Config{DoubleBuffer: true}},
	}
	for _, k := range kernels {
		cfg := k.cfg
		cfg.SetupTime = s.deviceConfig().SetupTime
		dev, err := fpga.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return nil, err
		}
		run, err := kernel.MapReads(seqs)
		if err != nil {
			return nil, err
		}
		row := KernelAblationRow{
			Name:         k.name,
			KernelCycles: run.Profile.KernelCycles,
			Total:        run.Profile.Total(),
		}
		out.Kernel = append(out.Kernel, row)
		if progress != nil {
			fmt.Fprintf(progress, "ablate kernel %-18s %12d cycles  total %v\n",
				k.name, row.KernelCycles, row.Total.Round(time.Microsecond))
		}
	}
	return out, nil
}

// bwtDataOf runs the SA+BWT stages and returns the compact BWT symbols.
func bwtDataOf(text []uint8) ([]uint8, error) {
	sa, err := suffixarray.Build(text, dna.AlphabetSize)
	if err != nil {
		return nil, err
	}
	tr, err := bwt.Transform(text, sa)
	if err != nil {
		return nil, err
	}
	return tr.Data, nil
}

// PrintAblation renders the ablation tables.
func PrintAblation(w io.Writer, res *AblationResult) {
	fmt.Fprintf(w, "\nAblation — Occ structures (E.Coli-scale reference)\n")
	fmt.Fprintf(w, "%-28s %12s %14s\n", "structure", "size MB", "per-rank")
	for _, r := range res.Occ {
		fmt.Fprintf(w, "%-28s %12.3f %14v\n", r.Name, float64(r.SizeBytes)/1e6, r.RankTime)
	}
	fmt.Fprintf(w, "\nAblation — kernel configurations (modeled)\n")
	fmt.Fprintf(w, "%-20s %14s %16s\n", "kernel", "cycles", "total")
	for _, r := range res.Kernel {
		fmt.Fprintf(w, "%-20s %14d %16s\n", r.Name, r.KernelCycles, ms(r.Total))
	}
}
