// Package bench regenerates every figure and table of the paper's
// evaluation (§IV). It is shared between cmd/bwaver-bench (human-readable
// runs) and the root-level testing.B benches.
//
// Methodology. The paper's workloads reach 100 million reads; measuring
// those directly is neither necessary nor informative on a development
// machine, so each experiment measures a configurable sample of reads and
// extrapolates linearly (mapping cost is per-read; index build cost is
// excluded from mapping time exactly as the paper excludes it). The FPGA
// numbers come from the cycle model of internal/fpga, which is linear in
// the summed backward-search steps, so its extrapolation is exact given the
// sampled mean step count. Reference sequences are scaled synthetic genomes
// (see internal/readsim); pass Scale.Full for the paper's exact lengths.
package bench

import (
	"fmt"
	"io"
	"time"

	"bwaver/internal/bwt"
	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
)

// Power reference values from §IV: the paper compares an Intel Xeon
// E5-2698 v3 at 135 W against the Alveo U200 at 25 W.
const (
	HostPowerWatts = 135.0
	FPGAPowerWatts = 25.0
)

// Scale controls how far the experiments are shrunk from paper size.
type Scale struct {
	// Ref scales the reference genome lengths (1 = paper size).
	Ref float64
	// Reads scales the per-experiment read counts (1 = paper size).
	Reads float64
	// SampleReads is how many reads are actually measured before
	// extrapolating to the (scaled) target count.
	SampleReads int
	// Seed drives all synthetic generation.
	Seed int64
}

// Quick is the default scale: ~1% sized references, exact sample
// measurement, minutes not hours.
var Quick = Scale{Ref: 0.01, Reads: 0.001, SampleReads: 20000, Seed: 1}

// Full is the paper-sized scale. Expect long runtimes and ~2 GB of memory.
var Full = Scale{Ref: 1, Reads: 1, SampleReads: 200000, Seed: 1}

// deviceConfig returns the simulated card configuration for this scale.
// The fixed OpenCL setup overhead (200 ms) is calibrated against the paper's
// full-size workloads, so it is scaled together with the read counts:
// otherwise a 1000x-shrunk workload would compare milliseconds of mapping
// against an unshrunk fixed cost and every ratio in Tables I/II would be
// about the overhead instead of about the kernels. At Full scale this is a
// no-op.
func (s Scale) deviceConfig() fpga.Config {
	return fpga.Config{SetupTime: time.Duration(float64(fpga.DefaultSetupTime) * s.Reads)}
}

func (s Scale) validate() error {
	if s.Ref <= 0 || s.Ref > 1 || s.Reads <= 0 || s.Reads > 1 {
		return fmt.Errorf("bench: scales must be in (0,1], got ref=%v reads=%v", s.Ref, s.Reads)
	}
	if s.SampleReads < 100 {
		return fmt.Errorf("bench: sample of %d reads is too small to extrapolate from", s.SampleReads)
	}
	return nil
}

// Reference identifies one of the paper's two references.
type Reference int

// The two references of §IV.
const (
	EColi Reference = iota
	Chr21
)

// String implements fmt.Stringer.
func (r Reference) String() string {
	if r == Chr21 {
		return "Human Chr.21"
	}
	return "E.Coli"
}

func (r Reference) generate(s Scale) (dna.Seq, error) {
	if r == Chr21 {
		return readsim.Chr21Like(s.Seed, s.Ref)
	}
	return readsim.EColiLike(s.Seed, s.Ref)
}

// Grid is the (b, sf) parameter grid of Figs. 5 and 6.
var (
	GridBlockSizes        = []int{5, 7, 9, 11, 13, 15}
	GridSuperblockFactors = []int{50, 100, 150, 200}
)

// Fig5Row is one point of Fig. 5: structure size for a (reference, b, sf)
// combination.
type Fig5Row struct {
	Ref               Reference
	B, SF             int
	StructureBytes    int
	SharedBytes       int
	UncompressedBytes int
	BuildTime         time.Duration // doubles as the Fig. 6 measurement
}

// TotalBytes is what Fig. 5 plots.
func (r Fig5Row) TotalBytes() int { return r.StructureBytes + r.SharedBytes }

// Saving is the space saved versus the 1-byte-per-symbol BWT.
func (r Fig5Row) Saving() float64 {
	return 1 - float64(r.TotalBytes())/float64(r.UncompressedBytes)
}

// Fig5And6 sweeps the (b, sf) grid over both references, measuring the
// structure size (Fig. 5) and the encoding time (Fig. 6) at each point.
// Progress, if non-nil, receives one line per grid point.
func Fig5And6(s Scale, progress io.Writer) ([]Fig5Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, ref := range []Reference{EColi, Chr21} {
		genome, err := ref.generate(s)
		if err != nil {
			return nil, err
		}
		// The suffix array and BWT do not depend on (b, sf); compute them
		// once per reference and re-run only the encoding step per grid
		// point, which is exactly the quantity Fig. 6 plots.
		text := make([]uint8, len(genome))
		for i, base := range genome {
			text[i] = uint8(base)
		}
		sa, err := suffixarray.Build(text, dna.AlphabetSize)
		if err != nil {
			return nil, err
		}
		transform, err := bwt.Transform(text, sa)
		if err != nil {
			return nil, err
		}
		for _, b := range GridBlockSizes {
			for _, sf := range GridSuperblockFactors {
				start := time.Now()
				occ, err := fmindex.NewWaveletOcc(transform.Data, dna.AlphabetSize,
					rrr.Params{BlockSize: b, SuperblockFactor: sf})
				if err != nil {
					return nil, fmt.Errorf("bench: fig5 %v b=%d sf=%d: %w", ref, b, sf, err)
				}
				encodeTime := time.Since(start)
				row := Fig5Row{
					Ref: ref, B: b, SF: sf,
					StructureBytes:    occ.Tree.SizeBytes(),
					SharedBytes:       occ.Tree.SharedSizeBytes(),
					UncompressedBytes: len(text),
					BuildTime:         encodeTime,
				}
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "fig5/6 %-12s b=%-2d sf=%-3d size=%8.2f MB  encode=%v\n",
						ref, b, sf, float64(row.TotalBytes())/1e6, row.BuildTime.Round(time.Millisecond))
				}
			}
		}
	}
	return rows, nil
}

// Fig7Row is one point of Fig. 7: mapping time for a read set with a given
// mapping ratio.
type Fig7Row struct {
	Ref          Reference
	B, SF        int
	MappingRatio float64
	Reads        int
	// CPUTime is the measured software mapping time (extrapolated to
	// Reads); FPGATime the modeled device time for the same batch.
	CPUTime  time.Duration
	FPGATime time.Duration
}

// Fig7ReadsPaper is the paper's Fig. 7 read count.
const Fig7ReadsPaper = 240000

// Fig7 maps ~240k (scaled) 100 bp reads at several mapping ratios over both
// references, for a subset of (b, sf) combinations, reporting software time
// and modeled FPGA time.
func Fig7(s Scale, progress io.Writer) ([]Fig7Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	targetReads := int(float64(Fig7ReadsPaper) * s.Reads)
	if targetReads < 1 {
		targetReads = 1
	}
	combos := []rrr.Params{
		{BlockSize: 15, SuperblockFactor: 50},
		{BlockSize: 15, SuperblockFactor: 100},
		{BlockSize: 11, SuperblockFactor: 50},
	}
	ratios := []float64{0, 0.25, 0.5, 0.75, 1}
	var rows []Fig7Row
	for _, ref := range []Reference{EColi, Chr21} {
		genome, err := ref.generate(s)
		if err != nil {
			return nil, err
		}
		for _, params := range combos {
			ix, err := core.BuildIndex(genome, core.IndexConfig{RRR: params})
			if err != nil {
				return nil, err
			}
			dev, err := fpga.NewDevice(s.deviceConfig())
			if err != nil {
				return nil, err
			}
			kernel, err := dev.Program(ix)
			if err != nil {
				return nil, err
			}
			for _, ratio := range ratios {
				sample := min(s.SampleReads, targetReads)
				reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
					Count: sample, Length: 100, MappingRatio: ratio,
					RevCompFraction: 0.5, Seed: s.Seed + 7,
				})
				if err != nil {
					return nil, err
				}
				seqs := readsim.Seqs(reads)
				_, cpuStats, err := ix.MapReads(seqs, core.MapOptions{})
				if err != nil {
					return nil, err
				}
				run, err := kernel.MapReads(seqs)
				if err != nil {
					return nil, err
				}
				avgSteps := float64(cpuStats.TotalSteps) / float64(sample)
				row := Fig7Row{
					Ref: ref, B: params.BlockSize, SF: params.SuperblockFactor,
					MappingRatio: ratio, Reads: targetReads,
					CPUTime:  extrapolate(cpuStats.Elapsed, sample, targetReads),
					FPGATime: kernel.ModelProfile(targetReads, avgSteps).Total(),
				}
				_ = run // functional execution doubles as a correctness check
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "fig7 %-12s b=%-2d sf=%-3d ratio=%3.0f%%  cpu=%-12v fpga=%v\n",
						ref, row.B, row.SF, ratio*100,
						row.CPUTime.Round(time.Millisecond), row.FPGATime.Round(time.Millisecond))
				}
			}
		}
	}
	return rows, nil
}

// extrapolate scales a measured duration from sample to target reads.
func extrapolate(d time.Duration, sample, target int) time.Duration {
	return time.Duration(float64(d) * float64(target) / float64(sample))
}
