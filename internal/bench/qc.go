package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/qc"
	"bwaver/internal/readsim"
)

// QC ingest benchmark: a dirty interleaved corpus (malformed records, N runs,
// collapsed 3' quality tails) pushed through the tolerant decoder and the QC
// gate, once in stream order and once quality-sorted. The corpus and the
// survivors are identical between the two arms — only the batch order
// differs — so the WaveCycles delta isolates what batch homogeneity is worth
// on the lockstep device: trimming splits the survivors into length classes,
// and the sort groups each class into its own waves.

// qcReadLen is the pre-trim read length. Long enough that losing the
// collapsed 3' third (see qcQualDrop) produces two well-separated length
// classes.
const qcReadLen = 120

// Corruption rates of the benchmark corpus.
const (
	qcMalformedFrac = 0.10
	qcNFrac         = 0.08
	qcQualDrop      = 0.50
)

// qcPEs is the lane width of the modeled device. Wave divergence only exists
// across lanes, so the qc arm runs a multi-PE card (the default elsewhere in
// the sweep is a single PE, where every wave is trivially homogeneous).
const qcPEs = 16

// QCRow is one arm: the same corpus with quality-sort off or on.
type QCRow struct {
	QualitySort bool `json:"quality_sort"`
	// IngestReadsPerSec is the decode+trim+gate(+sort) rate over attempted
	// records.
	IngestReadsPerSec float64 `json:"ingest_reads_per_sec"`
	// MapReadsPerSec is the host mapping rate over the surviving reads.
	MapReadsPerSec float64 `json:"map_reads_per_sec"`
	// KernelCycles is the throughput-ideal device charge; WaveCycles is the
	// lockstep wave model, where every lane in a wave waits for the slowest.
	KernelCycles uint64 `json:"kernel_cycles"`
	WaveCycles   uint64 `json:"wave_cycles"`
	// WaveOverheadPct is 100*(WaveCycles-KernelCycles)/KernelCycles — the
	// divergence penalty batch ordering can recover.
	WaveOverheadPct float64 `json:"wave_overhead_pct"`
}

// QCBenchResult bundles the two arms with the corpus accounting they share.
type QCBenchResult struct {
	Reference string  `json:"reference"`
	RefBases  int     `json:"ref_bases"`
	Records   int     `json:"records"`
	ReadLen   int     `json:"read_length"`
	Malformed int     `json:"malformed"`
	Survivors int     `json:"survivors"`
	Rejected  int     `json:"rejected"`
	Trimmed   int     `json:"trimmed_bases"`
	SortGain  float64 `json:"wave_cycle_gain_pct"`
	Rows      []QCRow `json:"rows"`
}

// qcPolicy is the gate both arms run: tolerant decode, 3' trimming at the
// corpus's collapsed-tail boundary, and gates loose enough that rejects come
// from the injected damage rather than clean-read noise.
func qcPolicy(sorted bool) qc.Policy {
	return qc.Policy{
		Tolerant:    true,
		TrimQual:    10,
		MinLen:      qcReadLen / 2,
		MaxN:        4,
		QualitySort: sorted,
	}
}

// QCBench generates the dirty corpus once, then runs both arms over the same
// bytes.
func QCBench(s Scale, progress io.Writer) (*QCBenchResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	genome, err := EColi.generate(s)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndex(genome, core.IndexConfig{})
	if err != nil {
		return nil, err
	}
	sim, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: s.SampleReads, Length: qcReadLen, MappingRatio: 0.9,
		RevCompFraction: 0.5, Seed: s.Seed + 83,
	})
	if err != nil {
		return nil, err
	}
	reads := make([]readsim.FastqRead, len(sim))
	for i, rd := range sim {
		reads[i] = readsim.FastqRead{ID: rd.ID, Seq: []byte(rd.Seq.String())}
	}
	var corpus bytes.Buffer
	dirty, err := readsim.WriteDirtyFastq(&corpus, reads, readsim.DirtyConfig{
		MalformedFrac: qcMalformedFrac, NFrac: qcNFrac, QualDrop: qcQualDrop,
		Seed: s.Seed + 83,
	})
	if err != nil {
		return nil, err
	}

	res := &QCBenchResult{
		Reference: EColi.String(),
		RefBases:  len(genome),
		Records:   dirty.Records,
		ReadLen:   qcReadLen,
	}
	for _, sorted := range []bool{false, true} {
		pol := qcPolicy(sorted)

		// Ingest rate: repeat full passes over the corpus bytes until the
		// measurement is long enough to trust.
		ing, err := qc.Ingest(bytes.NewReader(corpus.Bytes()), pol)
		if err != nil {
			return nil, err
		}
		var elapsed time.Duration
		attempted := 0
		for pass := 0; pass < 50 && elapsed < 200*time.Millisecond; pass++ {
			start := time.Now()
			if _, err := qc.Ingest(bytes.NewReader(corpus.Bytes()), pol); err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			attempted += ing.Report.Attempted
		}

		// Host mapping rate over the survivors, in the arm's batch order.
		var mapElapsed time.Duration
		mapped := 0
		for pass := 0; pass < 50 && mapElapsed < 200*time.Millisecond; pass++ {
			start := time.Now()
			for _, seq := range ing.Seqs {
				ix.MapRead(seq)
			}
			mapElapsed += time.Since(start)
			mapped += len(ing.Seqs)
		}

		// Modeled device run: same survivors, same order, exact-match kernel.
		devCfg := s.deviceConfig()
		devCfg.PEs = qcPEs
		dev, err := fpga.NewDevice(devCfg)
		if err != nil {
			return nil, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return nil, err
		}
		run, err := kernel.MapReads(ing.Seqs)
		if err != nil {
			return nil, err
		}

		row := QCRow{
			QualitySort:       sorted,
			IngestReadsPerSec: float64(attempted) / elapsed.Seconds(),
			MapReadsPerSec:    float64(mapped) / mapElapsed.Seconds(),
			KernelCycles:      run.Profile.KernelCycles,
			WaveCycles:        run.Profile.WaveCycles,
		}
		if row.KernelCycles > 0 {
			row.WaveOverheadPct = 100 * float64(row.WaveCycles-row.KernelCycles) / float64(row.KernelCycles)
		}
		res.Rows = append(res.Rows, row)
		if res.Survivors == 0 {
			res.Survivors = ing.Report.Passed
			res.Malformed = ing.Report.Malformed
			res.Rejected = ing.Report.RejectedTotal()
			res.Trimmed = ing.Report.TrimmedBases
		}
		if progress != nil {
			fmt.Fprintf(progress, "qc  sort=%-5v %8.0f ingest reads/s  %8.0f map reads/s  %12d wave cycles (+%.1f%%)\n",
				sorted, row.IngestReadsPerSec, row.MapReadsPerSec, row.WaveCycles, row.WaveOverheadPct)
		}
	}
	if res.Rows[0].WaveCycles > 0 {
		res.SortGain = 100 * float64(res.Rows[0].WaveCycles-res.Rows[1].WaveCycles) / float64(res.Rows[0].WaveCycles)
	}
	return res, nil
}

// PrintQCBench renders the sweep.
func PrintQCBench(w io.Writer, res *QCBenchResult) {
	fmt.Fprintf(w, "\nQC ingest — %s (%d bases), %d records at %d bp (%d malformed, %d rejected, %d survivors, %d bases trimmed)\n",
		res.Reference, res.RefBases, res.Records, res.ReadLen,
		res.Malformed, res.Rejected, res.Survivors, res.Trimmed)
	fmt.Fprintf(w, "%-10s %14s %14s %14s %14s %10s\n",
		"sort", "ingest r/s", "map r/s", "kernel cyc", "wave cyc", "overhead")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10v %14.0f %14.0f %14d %14d %9.1f%%\n",
			r.QualitySort, r.IngestReadsPerSec, r.MapReadsPerSec,
			r.KernelCycles, r.WaveCycles, r.WaveOverheadPct)
	}
	fmt.Fprintf(w, "quality-sort recovers %.1f%% of wave cycles\n", res.SortGain)
}

// WriteQCJSON serializes the sweep (the BENCH_pr10.json payload).
func WriteQCJSON(w io.Writer, res *QCBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
