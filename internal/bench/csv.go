package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every figure/table as machine-readable series, for replotting
// the paper's charts from the reproduction data.

// WriteFig5CSV writes the Fig. 5/6 grid (sizes and encode times).
func WriteFig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"reference", "b", "sf", "structure_bytes", "shared_bytes", "uncompressed_bytes", "encode_ms"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Ref.String(),
			strconv.Itoa(r.B), strconv.Itoa(r.SF),
			strconv.Itoa(r.StructureBytes), strconv.Itoa(r.SharedBytes),
			strconv.Itoa(r.UncompressedBytes),
			fmt.Sprintf("%.3f", r.BuildTime.Seconds()*1e3),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV writes the Fig. 7 series.
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"reference", "b", "sf", "mapping_ratio", "reads", "cpu_ms", "fpga_ms"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Ref.String(),
			strconv.Itoa(r.B), strconv.Itoa(r.SF),
			fmt.Sprintf("%.2f", r.MappingRatio),
			strconv.Itoa(r.Reads),
			fmt.Sprintf("%.3f", r.CPUTime.Seconds()*1e3),
			fmt.Sprintf("%.3f", r.FPGATime.Seconds()*1e3),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV writes Table I/II blocks.
func WriteTableCSV(w io.Writer, results []TableResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"reference", "reads", "read_len", "config", "time_ms", "speedup_vs_fpga", "power_eff_vs_fpga"}); err != nil {
		return err
	}
	for _, res := range results {
		for _, e := range res.Entries {
			rec := []string{
				res.Ref.String(),
				strconv.Itoa(res.Reads), strconv.Itoa(res.ReadLen),
				e.Config,
				fmt.Sprintf("%.3f", e.Time.Seconds()*1e3),
				fmt.Sprintf("%.3f", e.Slowdown),
				fmt.Sprintf("%.3f", e.PowerRatio),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV writes one CSV file into dir, creating dir if needed.
func ExportCSV(dir, name string, write func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
