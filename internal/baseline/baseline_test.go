package baseline

import (
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

func testRef(t *testing.T, n int) dna.Seq {
	t.Helper()
	g, err := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 11, RepeatFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(nil); err == nil {
		t.Error("accepted empty reference")
	}
	m, err := NewMapper(dna.MustParseSeq("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if m.BuildTime() <= 0 || m.IndexBytes() <= 0 {
		t.Error("build metadata missing")
	}
}

func TestMapReadsAgainstTruth(t *testing.T) {
	ref := testRef(t, 25000)
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 300, Length: 40, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := m.MapReads(readsim.Seqs(reads), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != 300 || stats.Threads != 1 {
		t.Errorf("stats = %+v", stats)
	}
	for i, r := range reads {
		res := results[i]
		if r.Origin >= 0 {
			if !res.Mapped() {
				t.Fatalf("planted read %d did not map", i)
			}
			positions := res.ForwardPositions
			if r.RevStrand {
				positions = res.ReversePositions
			}
			found := false
			for _, p := range positions {
				if int(p) == r.Origin {
					found = true
				}
			}
			if !found {
				t.Fatalf("read %d origin %d missing from %v", i, r.Origin, positions)
			}
		} else if res.Mapped() {
			t.Fatalf("random read %d mapped", i)
		}
	}
}

// TestAgreesWithBWaveR is the paper's "without any loss in accuracy" claim:
// the baseline and the succinct mapper must report identical matches.
func TestAgreesWithBWaveR(t *testing.T) {
	ref := testRef(t, 15000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 200, Length: 35, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 3,
	})
	m, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	blResults, _, err := m.MapReads(readsim.Seqs(reads), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		want := ix.MapRead(r.Seq)
		if blResults[i].Forward != want.Forward || blResults[i].Reverse != want.Reverse {
			t.Fatalf("read %d: baseline %+v vs bwaver fw=%v rc=%v",
				i, blResults[i], want.Forward, want.Reverse)
		}
	}
}

func TestThreadCountsAgree(t *testing.T) {
	ref := testRef(t, 20000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 500, Length: 30, MappingRatio: 0.7, Seed: 4,
	})
	m, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := m.MapReads(readsim.Seqs(reads), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 8, 16, -1} {
		par, stats, err := m.MapReads(readsim.Seqs(reads), threads, false)
		if err != nil {
			t.Fatal(err)
		}
		if threads > 0 && stats.Threads != threads {
			t.Errorf("stats.Threads = %d, want %d", stats.Threads, threads)
		}
		for i := range serial {
			if serial[i].Forward != par[i].Forward || serial[i].Reverse != par[i].Reverse {
				t.Fatalf("threads=%d: result %d differs", threads, i)
			}
		}
	}
}

func TestMoreThreadsThanReads(t *testing.T) {
	ref := testRef(t, 2000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 3, Length: 20, MappingRatio: 1, Seed: 5})
	m, _ := NewMapper(ref)
	results, stats, err := m.MapReads(readsim.Seqs(reads), 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || stats.MappedReads != 3 {
		t.Errorf("results=%d mapped=%d", len(results), stats.MappedReads)
	}
}

func TestEmptyReadSet(t *testing.T) {
	m, _ := NewMapper(testRef(t, 1000))
	results, stats, err := m.MapReads(nil, 4, true)
	if err != nil || len(results) != 0 || stats.Reads != 0 {
		t.Errorf("empty read set: %v %+v %v", results, stats, err)
	}
}
