// Package baseline implements the Bowtie2-equivalent CPU mapper BWaveR is
// compared against in Tables I and II of the paper.
//
// The paper runs Bowtie2 with "-a --score-min C,0,-1", which restricts it to
// reporting all and only the exact matches of each read — i.e. exactly the
// FM-index backward-search workload, executed over Bowtie's classic index
// layout: the BWT kept as 2-bit packed symbols with occurrence counts
// checkpointed at cache-line intervals, queries distributed over a worker
// pool. Bowtie2 itself is closed off to this offline environment, so this
// package re-implements that algorithmic class from scratch (see DESIGN.md's
// substitution table); it measures the same design point — a sampled,
// non-succinct index on a general-purpose CPU — that the paper measured.
package baseline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bwaver/internal/bwt"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/suffixarray"
)

// Mapper is the baseline exact-match mapper.
type Mapper struct {
	fm        *fmindex.Index
	buildTime time.Duration
}

// Result is one read's mapping outcome, covering both strands as Bowtie2
// does for unpaired reads.
type Result struct {
	Forward, Reverse                   fmindex.Range
	ForwardPositions, ReversePositions []int32
}

// Mapped reports whether either orientation matched.
func (r Result) Mapped() bool { return !r.Forward.Empty() || !r.Reverse.Empty() }

// Occurrences counts matches across both strands.
func (r Result) Occurrences() int { return r.Forward.Count() + r.Reverse.Count() }

// NewMapper builds the checkpointed FM-index over the reference.
func NewMapper(ref dna.Seq) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("baseline: empty reference")
	}
	start := time.Now()
	text := make([]uint8, len(ref))
	for i, b := range ref {
		text[i] = uint8(b)
	}
	sa, err := suffixarray.Build(text, dna.AlphabetSize)
	if err != nil {
		return nil, fmt.Errorf("baseline: suffix array: %w", err)
	}
	transform, err := bwt.Transform(text, sa)
	if err != nil {
		return nil, fmt.Errorf("baseline: bwt: %w", err)
	}
	occ, err := fmindex.NewCheckpointOcc(transform.Data)
	if err != nil {
		return nil, fmt.Errorf("baseline: occ: %w", err)
	}
	fm, err := fmindex.New(transform, dna.AlphabetSize, occ, fmindex.Options{SA: sa})
	if err != nil {
		return nil, fmt.Errorf("baseline: fm-index: %w", err)
	}
	return &Mapper{fm: fm, buildTime: time.Since(start)}, nil
}

// BuildTime reports how long index construction took.
func (m *Mapper) BuildTime() time.Duration { return m.buildTime }

// IndexBytes reports the index footprint (checkpointed BWT plus full SA).
func (m *Mapper) IndexBytes() int { return m.fm.SizeBytes() }

// FM exposes the underlying index for cross-checks in tests.
func (m *Mapper) FM() *fmindex.Index { return m.fm }

// Stats aggregates one batch run.
type Stats struct {
	Reads       int
	MappedReads int
	Occurrences int
	Threads     int
	Elapsed     time.Duration
}

// MapReads maps every read and its reverse complement on the given number
// of worker threads (1, 8 and 16 in the paper's tables; <= 0 uses all CPUs).
// When locate is true, occurrence positions are resolved through the suffix
// array as Bowtie2's exact mode reports alignments.
func (m *Mapper) MapReads(reads []dna.Seq, threads int, locate bool) ([]Result, Stats, error) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(reads))
	start := time.Now()

	mapRange := func(lo, hi int) error {
		fw := make([]uint8, 0, 256)
		rc := make([]uint8, 0, 256)
		for i := lo; i < hi; i++ {
			read := reads[i]
			fw = fw[:0]
			rc = rc[:0]
			for _, b := range read {
				fw = append(fw, uint8(b))
			}
			for j := len(read) - 1; j >= 0; j-- {
				rc = append(rc, uint8(read[j].Complement()))
			}
			res := Result{Forward: m.fm.Count(fw), Reverse: m.fm.Count(rc)}
			if locate {
				var err error
				if res.ForwardPositions, err = m.fm.Locate(res.Forward); err != nil {
					return err
				}
				if res.ReversePositions, err = m.fm.Locate(res.Reverse); err != nil {
					return err
				}
			}
			results[i] = res
		}
		return nil
	}

	var firstErr error
	if threads == 1 {
		if err := mapRange(0, len(reads)); err != nil {
			return nil, Stats{}, err
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		chunk := (len(reads) + threads - 1) / threads
		for w := 0; w < threads; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(reads))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := mapRange(lo, hi); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	stats := Stats{Reads: len(reads), Threads: threads, Elapsed: time.Since(start)}
	for _, r := range results {
		if r.Mapped() {
			stats.MappedReads++
		}
		stats.Occurrences += r.Occurrences()
	}
	return results, stats, nil
}
