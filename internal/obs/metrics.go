// Package obs is the observability layer: a dependency-free metrics
// registry with Prometheus text exposition, structured logging helpers over
// log/slog, and a span-based tracer whose job traces can absorb the FPGA
// simulator's modeled event timeline alongside host-side wall-clock stages.
//
// The paper's whole argument is profiling-shaped — OpenCL event timelines
// decomposed into setup/index/query/kernel/result stages — and the server's
// resilience machinery (retries, breakers, fallbacks) is invisible without
// counters. This package makes both first-class: every later performance PR
// can be judged from /metrics and a job trace instead of one-off CLI tables.
//
// The registry intentionally implements only what the repo needs (counters,
// gauges, histograms, label vectors, and scrape-time collector functions),
// not the full Prometheus client API; the exposition format follows the
// text format v0.0.4 so any Prometheus-compatible scraper can consume it.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's Prometheus type.
type Kind string

// The exposition types the registry supports.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DefDurationBuckets are the default histogram buckets for durations in
// seconds: microseconds-scale modeled kernel stages through minutes-scale
// index builds.
var DefDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Registry holds metric families and renders them in the Prometheus text
// format. All methods are safe for concurrent use. Creating a family that
// already exists returns the existing one (families are get-or-create), so
// components wired lazily — like farms built per cache entry — share
// instruments instead of colliding.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu      sync.Mutex
	metrics map[string]any      // labelKey -> *Counter | *Gauge | *Histogram
	funcs   map[string]funcCell // labelKey -> scrape-time collector
	order   []string            // insertion order of label keys
}

// funcCell is a scrape-time collector bound to one label set.
type funcCell struct {
	labelValues []string
	fn          func() float64
}

func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: append([]string(nil), labels...),
		buckets: buckets,
		metrics: map[string]any{},
		funcs:   map[string]funcCell{},
	}
	r.families[name] = f
	return f
}

func (f *family) cell(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = mk()
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels; With resolves one series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels; With resolves one series.
type HistogramVec struct{ f *family }

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or finds) a histogram family with the given bucket
// upper bounds (ascending, in the metric's base unit; +Inf is implicit).
// A nil buckets slice takes DefDurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefDurationBuckets
	}
	return &HistogramVec{r.family(name, help, KindHistogram, buckets, labels)}
}

// CounterFunc attaches a scrape-time collector as a counter series: fn is
// called at exposition time under no registry locks beyond the family's.
// Use it to surface counters another component already maintains (cache
// hit counts, resilience totals) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, KindCounter, fn, labelPairs)
}

// GaugeFunc attaches a scrape-time collector as a gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, KindGauge, fn, labelPairs)
}

// registerFunc wires fn under the label pairs (name1, value1, name2,
// value2, ...). Re-attaching the same series replaces the collector.
func (r *Registry) registerFunc(name, help string, kind Kind, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: label pairs must come as name,value", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.family(name, help, kind, nil, names)
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.funcs[key]; !ok {
		f.order = append(f.order, key)
	}
	f.funcs[key] = funcCell{labelValues: values, fn: fn}
}

// Counter is one monotonically increasing series.
type Counter struct {
	mu  sync.Mutex
	val float64
}

// With resolves the series for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.cell(labelValues, func() any { return &Counter{} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta; negative deltas panic (counters are monotone).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	c.mu.Lock()
	c.val += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Gauge is one settable series.
type Gauge struct {
	mu  sync.Mutex
	val float64
}

// With resolves the series for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.cell(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// Set stores the value.
func (g *Gauge) Set(val float64) {
	g.mu.Lock()
	g.val = val
	g.mu.Unlock()
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.val += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// Histogram is one series of observations bucketed by upper bound.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // cumulative at exposition, stored per-bucket here
	sum     float64
	count   uint64
}

// With resolves the series for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	f := v.f
	return f.cell(labelValues, func() any {
		return &Histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets))}
	}).(*Histogram)
}

// Observe records one observation.
func (h *Histogram) Observe(val float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += val
	h.count++
	for i, ub := range h.buckets {
		if val <= ub {
			h.counts[i]++
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (v0.0.4), families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// ContentType is the /metrics response content type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, key := range f.order {
		if m, ok := f.metrics[key]; ok {
			values := strings.Split(key, "\x1f")
			if len(f.labels) == 0 {
				values = nil
			}
			switch v := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, values), formatValue(v.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, values), formatValue(v.Value()))
			case *Histogram:
				v.write(w, f.name, f.labels, values)
			}
			continue
		}
		if fc, ok := f.funcs[key]; ok {
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, fc.labelValues), formatValue(fc.fn()))
		}
	}
}

func (h *Histogram) write(w io.Writer, name string, labelNames, labelValues []string) {
	h.mu.Lock()
	buckets := append([]float64(nil), h.buckets...)
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	cum := uint64(0)
	for i, ub := range buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			renderLabels(append(labelNames, "le"), append(labelValues, formatValue(ub))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		renderLabels(append(labelNames, "le"), append(labelValues, "+Inf")), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labelNames, labelValues), formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labelNames, labelValues), count)
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
