package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("jobs_total", "jobs by state", "state")
	jobs.With("done").Add(3)
	jobs.With("failed").Inc()
	depth := r.Gauge("queue_depth", "queued jobs")
	depth.With().Set(7)
	depth.With().Add(-2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total jobs by state",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "stage durations", []float64{0.1, 1, 10}, "stage")
	s := h.With("sa")
	s.Observe(0.05)
	s.Observe(0.5)
	s.Observe(5)
	s.Observe(50)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="sa",le="0.1"} 1`,
		`stage_seconds_bucket{stage="sa",le="1"} 2`,
		`stage_seconds_bucket{stage="sa",le="10"} 3`,
		`stage_seconds_bucket{stage="sa",le="+Inf"} 4`,
		`stage_seconds_sum{stage="sa"} 55.55`,
		`stage_seconds_count{stage="sa"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if s.Count() != 4 {
		t.Errorf("count = %d, want 4", s.Count())
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("cache_entries", "entries", func() float64 { return n })
	r.CounterFunc("cache_hits_total", "hits", func() float64 { return 9 }, "cache", "index")
	n = 42

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "cache_entries 42") {
		t.Errorf("func gauge not collected at scrape time:\n%s", out)
	}
	if !strings.Contains(out, `cache_hits_total{cache="index"} 9`) {
		t.Errorf("func counter missing:\n%s", out)
	}
}

// TestGetOrCreateFamilies: re-registering a family returns the same series,
// the contract lazily-built farms rely on.
func TestGetOrCreateFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", "l").With("a").Inc()
	r.Counter("x_total", "x", "l").With("a").Inc()
	if got := r.Counter("x_total", "x", "l").With("a").Value(); got != 2 {
		t.Errorf("re-registered counter = %v, want 2", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "e", "id").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `esc_total{id="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c_total", "c", "w").With("x").Inc()
				r.Histogram("h_seconds", "h", nil, "s").With("y").Observe(0.01)
				var b strings.Builder
				r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c", "w").With("x").Value(); got != 800 {
		t.Errorf("counter = %v, want 800", got)
	}
}
