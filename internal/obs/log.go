package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging, standardized on log/slog. The server logs one line
// per HTTP request and one per job state transition, each carrying the
// job/request fields, so a grep over the log reconstructs any job's
// lifecycle without the trace endpoint.

// NewLogger builds a slog.Logger writing to w. format is "text" or "json";
// level is one of "debug", "info", "warn", "error" (case-insensitive).
// Unknown values fall back to text/info rather than failing: the logger is
// the component reporting failures, so it must always construct.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	lv := ParseLevel(level)
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a level name to a slog.Level, defaulting to Info.
func ParseLevel(level string) slog.Level {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NopLogger returns a logger that discards everything — the default for
// embedded servers and tests.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// JobAttrs returns the standard per-job log fields, so every component logs
// jobs identically.
func JobAttrs(jobID int, backend string) []any {
	return []any{slog.Int("job", jobID), slog.String("backend", backend)}
}

// FmtBytes renders a byte count human-readably for log lines.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
