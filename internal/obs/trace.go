package obs

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Trace is one job's span tree. Host-side spans are wall-clock intervals
// measured from the trace's start; device-side spans are "modeled": their
// offsets live on the FPGA simulator's virtual timeline (the OpenCL-event
// timeline the paper profiles with), flagged so readers don't mix the two
// clock domains. A trace may be snapshotted (JSON) while spans are still
// open — the server's /api/jobs/{id}/trace serves live, partial traces.
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	roots []*Span
}

// NewTrace starts an empty trace identified by id (the server uses the job
// ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Span is one stage of a trace. All mutation goes through the owning
// trace's lock so snapshots can race with a running job safely.
type Span struct {
	trace    *Trace
	name     string
	start    time.Duration // offset from trace start (or virtual timeline)
	end      time.Duration
	ended    bool
	modeled  bool
	attrs    map[string]any
	children []*Span
}

// StartSpan opens a root span. Safe on a nil trace (returns nil; all Span
// methods are nil-safe), so instrumented code needs no trace-presence
// branches.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{trace: t, name: name, start: time.Since(t.start)}
	t.roots = append(t.roots, s)
	return s
}

// StartChild opens a sub-span under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{trace: t, name: name, start: time.Since(t.start)}
	s.children = append(s.children, c)
	return c
}

// End closes the span at the current wall clock. Ending twice keeps the
// first end.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.ended {
		s.end = time.Since(t.start)
		s.ended = true
	}
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// AddModeled attaches a closed child span on the modeled (virtual) timeline:
// start and end are offsets on the device timeline, not wall clock. The farm
// uses this to fold the fpga.Event log — tagged with device and attempt —
// into the host trace.
func (s *Span) AddModeled(name string, start, end time.Duration, attrs map[string]any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{trace: t, name: name, start: start, end: end, ended: true, modeled: true}
	if len(attrs) > 0 {
		c.attrs = make(map[string]any, len(attrs))
		for k, v := range attrs {
			c.attrs[k] = v
		}
	}
	s.children = append(s.children, c)
}

// SpanJSON is the wire form of a span.
type SpanJSON struct {
	Name string `json:"name"`
	// StartMs and EndMs are offsets from the trace start (host spans) or on
	// the device's virtual timeline (modeled spans).
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// DurationMs is EndMs-StartMs for closed spans; -1 marks a span still
	// open at snapshot time.
	DurationMs float64        `json:"duration_ms"`
	Modeled    bool           `json:"modeled,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// TraceJSON is the wire form of a trace.
type TraceJSON struct {
	ID      string     `json:"id"`
	StartUS int64      `json:"start_unix_us"`
	Spans   []SpanJSON `json:"spans"`
}

// Snapshot returns a point-in-time copy of the trace, safe to serialize
// while spans are still being opened and closed.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.start)
	out := TraceJSON{ID: t.id, StartUS: t.start.UnixMicro()}
	out.Spans = make([]SpanJSON, len(t.roots))
	for i, s := range t.roots {
		out.Spans[i] = s.snapshotLocked(now)
	}
	return out
}

func (s *Span) snapshotLocked(now time.Duration) SpanJSON {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	j := SpanJSON{
		Name:    s.name,
		StartMs: ms(s.start),
		Modeled: s.modeled,
	}
	if s.ended {
		j.EndMs = ms(s.end)
		j.DurationMs = ms(s.end - s.start)
	} else {
		j.EndMs = ms(now)
		j.DurationMs = -1
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			j.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.snapshotLocked(now))
	}
	return j
}

// MarshalJSON serializes a snapshot of the trace.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Snapshot())
}

// traceKey and spanKey carry the active trace and span through a context.
type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFrom returns the context's innermost span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's current span (or a
// root span of the context's trace when none is open) and returns a context
// carrying the new span. With no trace on the context it is a no-op: the
// returned span is nil and nil-safe, and ctx is returned unchanged — so
// library code (core, fpga) can instrument unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if parent := SpanFrom(ctx); parent != nil {
		s := parent.StartChild(name)
		return context.WithValue(ctx, spanKey{}, s), s
	}
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := t.StartSpan(name)
	return context.WithValue(ctx, spanKey{}, s), s
}
