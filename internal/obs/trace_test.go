package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("7")
	ctx := WithTrace(context.Background(), tr)

	ctx1, job := StartSpan(ctx, "job")
	_, build := StartSpan(ctx1, "build")
	build.SetAttr("cache_hit", false)
	build.End()
	_, mp := StartSpan(ctx1, "map")
	mp.AddModeled("kernel:bwaver", 0, 5*time.Millisecond, map[string]any{"device": 1, "attempt": 2})
	mp.End()
	job.End()

	snap := tr.Snapshot()
	if snap.ID != "7" || len(snap.Spans) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	root := snap.Spans[0]
	if root.Name != "job" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if root.Children[0].Name != "build" || root.Children[0].Attrs["cache_hit"] != false {
		t.Errorf("build span = %+v", root.Children[0])
	}
	kernel := root.Children[1].Children[0]
	if !kernel.Modeled || kernel.DurationMs != 5 || kernel.Attrs["device"] != 1 {
		t.Errorf("modeled span = %+v", kernel)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestNoTraceIsNoop: instrumented code paths must work with no trace on the
// context — nil spans absorb every call.
func TestNoTraceIsNoop(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("span without a trace should be nil")
	}
	s.SetAttr("k", "v")
	s.AddModeled("m", 0, 0, nil)
	s.End()
	if SpanFrom(ctx) != nil {
		t.Fatal("no span should be attached")
	}
	var tr *Trace
	if tr.StartSpan("y") != nil {
		t.Fatal("nil trace should return nil span")
	}
}

// TestOpenSpanSnapshot: snapshotting a live trace marks open spans with
// duration -1 — what the live /api/jobs/{id}/trace endpoint serves.
func TestOpenSpanSnapshot(t *testing.T) {
	tr := NewTrace("1")
	s := tr.StartSpan("running")
	snap := tr.Snapshot()
	if snap.Spans[0].DurationMs != -1 {
		t.Errorf("open span duration = %v, want -1", snap.Spans[0].DurationMs)
	}
	s.End()
	if d := tr.Snapshot().Spans[0].DurationMs; d < 0 {
		t.Errorf("closed span duration = %v, want >= 0", d)
	}
}

// TestConcurrentSnapshot: snapshots race-cleanly with span churn.
func TestConcurrentSnapshot(t *testing.T) {
	tr := NewTrace("race")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tr.StartSpan("s")
			c := s.StartChild("c")
			c.SetAttr("i", 1)
			c.End()
			s.End()
		}
	}()
	for i := 0; i < 50; i++ {
		tr.Snapshot()
	}
	close(stop)
	wg.Wait()
}

func TestLoggerConstruction(t *testing.T) {
	if NewLogger(nil, "json", "debug") == nil || NewLogger(nil, "bogus", "bogus") == nil {
		t.Fatal("NewLogger must always construct")
	}
	NopLogger().Info("discarded")
	if ParseLevel("warn") != ParseLevel("WARNING") {
		t.Error("level aliases disagree")
	}
}
