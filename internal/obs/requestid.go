package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request identity. Every HTTP request entering the system — at the cluster
// gateway or directly at a worker — is stamped with an X-Request-Id. The
// gateway forwards the same id on every attempt, including replica failovers,
// so one logical job stays traceable across processes: the access logs, job
// logs, and span traces on every node that touched it share the id.

// RequestIDHeader is the HTTP header carrying the request identity.
const RequestIDHeader = "X-Request-Id"

// ridFallback disambiguates ids minted when the entropy source fails.
var ridFallback atomic.Uint64

// NewRequestID mints a 16-hex-char random request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy failure: fall back to a process-unique counter. Ids only
		// need to be unique enough to correlate logs, not unguessable.
		return fmt.Sprintf("rid-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

type requestIDKey struct{}

// WithRequestID attaches a request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id on the context, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
