package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a registry's cooldown deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRegistryEvictionAndReadmission walks a worker through the breaker's
// whole life cycle: misses accumulate, the threshold evicts (firing the
// callback once), an early success does not re-admit inside the cooldown, and
// a success after the cooldown does.
func TestRegistryEvictionAndReadmission(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rg := newRegistry(8, 2, time.Second)
	rg.now = clock.now
	var evicted []string
	rg.onEvict = func(url string) { evicted = append(evicted, url) }

	w1, w2 := "http://w1:8080", "http://w2:8080"
	if !rg.Register(w1) || !rg.Register(w2) {
		t.Fatal("fresh registrations reported not-new")
	}
	if rg.Register(w1) {
		t.Fatal("re-registration reported new")
	}

	boom := errors.New("connection refused")
	rg.ReportHeartbeat(w1, HealthReport{}, boom)
	if !rg.Healthy(w1) {
		t.Fatal("one miss below the threshold must not evict")
	}
	rg.ReportHeartbeat(w1, HealthReport{}, boom)
	if rg.Healthy(w1) {
		t.Fatal("threshold misses must evict")
	}
	if len(evicted) != 1 || evicted[0] != w1 {
		t.Fatalf("onEvict calls = %v, want exactly [%s]", evicted, w1)
	}
	// Further misses on an open breaker do not re-fire the callback.
	rg.ReportHeartbeat(w1, HealthReport{}, boom)
	if len(evicted) != 1 {
		t.Fatalf("onEvict re-fired on an already-open breaker: %v", evicted)
	}
	if ev, re := rg.Totals(); ev != 1 || re != 0 {
		t.Fatalf("Totals = (%d, %d), want (1, 0)", ev, re)
	}

	// Candidates skips the evicted worker but keeps it on the ring.
	for i := 0; i < 50; i++ {
		for _, c := range rg.Candidates(fmt.Sprintf("key-%d", i)) {
			if c == w1 {
				t.Fatal("evicted worker returned as a candidate")
			}
		}
	}

	// A success inside the cooldown window resets misses but stays evicted.
	clock.advance(500 * time.Millisecond)
	rg.ReportHeartbeat(w1, HealthReport{Status: "ok"}, nil)
	if rg.Healthy(w1) {
		t.Fatal("worker re-admitted before the cooldown lapsed")
	}
	// After the cooldown, one success re-admits, and its keys come back.
	clock.advance(time.Second)
	rg.ReportHeartbeat(w1, HealthReport{Status: "ok"}, nil)
	if !rg.Healthy(w1) {
		t.Fatal("worker not re-admitted after cooldown + success")
	}
	if _, re := rg.Totals(); re != 1 {
		t.Fatalf("readmissions = %d, want 1", re)
	}
	back := false
	for i := 0; i < 50 && !back; i++ {
		for _, c := range rg.Candidates(fmt.Sprintf("key-%d", i)) {
			back = back || c == w1
		}
	}
	if !back {
		t.Fatal("re-admitted worker never reappeared among candidates")
	}
}

// TestRegistryDrainingSkipped: a draining worker stays registered and on the
// ring but is withheld from routing until its drain flag clears.
func TestRegistryDrainingSkipped(t *testing.T) {
	rg := newRegistry(8, 3, time.Second)
	w1, w2 := "http://w1:8080", "http://w2:8080"
	rg.Register(w1)
	rg.Register(w2)
	rg.ReportHeartbeat(w1, HealthReport{Status: "draining", Draining: true}, nil)
	if rg.Healthy(w1) {
		t.Fatal("draining worker reported healthy")
	}
	for i := 0; i < 20; i++ {
		for _, c := range rg.Candidates(fmt.Sprintf("key-%d", i)) {
			if c == w1 {
				t.Fatal("draining worker returned as a candidate")
			}
		}
	}
	healthy, total := rg.Counts()
	if healthy != 1 || total != 2 {
		t.Fatalf("Counts = (%d, %d), want (1, 2)", healthy, total)
	}
	rg.ReportHeartbeat(w1, HealthReport{Status: "ok"}, nil)
	if !rg.Healthy(w1) {
		t.Fatal("worker still unhealthy after drain cleared")
	}
}

// TestRegistryForwardFailuresEvict: failed forwards count toward the same
// breaker as missed heartbeats, so a dead worker is evicted at request time
// without waiting out the heartbeat interval.
func TestRegistryForwardFailuresEvict(t *testing.T) {
	rg := newRegistry(8, 3, time.Second)
	w := "http://w1:8080"
	rg.Register(w)
	rg.ReportForward(w, false, "connection refused")
	rg.ReportForward(w, false, "connection refused")
	if !rg.Healthy(w) {
		t.Fatal("evicted below the threshold")
	}
	rg.ReportForward(w, false, "connection refused")
	if rg.Healthy(w) {
		t.Fatal("threshold forward failures must evict")
	}
	snap := rg.Snapshot()
	if len(snap) != 1 || snap[0].Breaker != "open" || snap[0].BreakerTrips != 1 || snap[0].LastError == "" {
		t.Fatalf("snapshot after eviction: %+v", snap[0])
	}
}

// TestRegistryConcurrentChurn hammers registration, heartbeats, forward
// reports, and reads from many goroutines; meaningful under -race.
func TestRegistryConcurrentChurn(t *testing.T) {
	rg := newRegistry(8, 3, 10*time.Millisecond)
	rg.onEvict = func(string) {}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := fmt.Sprintf("http://w%d:8080", g%4)
			for i := 0; i < 200; i++ {
				switch i % 6 {
				case 0:
					rg.Register(url)
				case 1:
					rg.ReportHeartbeat(url, HealthReport{Status: "ok", QueueDepth: i}, nil)
				case 2:
					rg.ReportForward(url, false, "boom")
				case 3:
					rg.Candidates(fmt.Sprintf("key-%d-%d", g, i))
				case 4:
					rg.Snapshot()
					rg.Counts()
					rg.Healthy(url)
				case 5:
					if i%30 == 5 {
						rg.Deregister(url)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
