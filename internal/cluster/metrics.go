package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"strings"

	"bwaver/internal/obs"
)

// initMetrics registers the gateway's own observability series.
func (g *Gateway) initMetrics() {
	g.metrics = obs.NewRegistry()
	g.mForwards = g.metrics.Counter("bwaver_gateway_forwards_total",
		"Submissions accepted by a worker.", "worker")
	g.mRetries = g.metrics.Counter("bwaver_gateway_forward_retries_total",
		"Forward attempts that failed or were rejected and moved to the next replica.", "worker")
	g.mFailovers = g.metrics.Counter("bwaver_gateway_failovers_total",
		"Jobs re-routed to a replica after their worker was evicted.", "worker")
	g.mLocalJobs = g.metrics.Counter("bwaver_gateway_local_jobs_total",
		"Jobs served by the embedded standalone fallback.")
	g.mHeartbeats = g.metrics.Counter("bwaver_gateway_heartbeats_total",
		"Heartbeat probes by outcome.", "worker", "outcome")
	g.mScrapeErrors = g.metrics.Counter("bwaver_gateway_scrape_errors_total",
		"Scatter-gather fetches that failed.", "worker")
	g.mBreakerState = g.metrics.Gauge("bwaver_gateway_worker_breaker_open",
		"1 when the worker's circuit breaker is open (evicted from routing).", "worker")
	g.mWorkerDepth = g.metrics.Gauge("bwaver_gateway_worker_queue_depth",
		"Queue depth last reported by the worker's heartbeat.", "worker")
	g.metrics.GaugeFunc("bwaver_gateway_workers_healthy",
		"Workers currently in rotation.", func() float64 {
			h, _ := g.reg.Counts()
			return float64(h)
		})
	g.metrics.GaugeFunc("bwaver_gateway_workers_total",
		"Workers registered with the gateway.", func() float64 {
			_, t := g.reg.Counts()
			return float64(t)
		})
	g.metrics.GaugeFunc("bwaver_gateway_evictions_total",
		"Lifetime breaker evictions.", func() float64 {
			e, _ := g.reg.Totals()
			return float64(e)
		})
	g.metrics.GaugeFunc("bwaver_gateway_readmissions_total",
		"Lifetime cooldown re-admissions.", func() float64 {
			_, r := g.reg.Totals()
			return float64(r)
		})
	g.metrics.GaugeFunc("bwaver_gateway_routed_jobs",
		"Jobs currently tracked in the gateway's routing table.", func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.routes))
		})
}

// handleMetrics serves a merged Prometheus exposition: the gateway's own
// series first, then every worker's /metrics (and the embedded local
// server's), each relabeled with worker="<url>" so series from different
// nodes never collide. Fetches are concurrent and bounded per worker.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type scrape struct {
		worker string
		body   []byte
		err    error
	}
	workers := g.reg.Workers()
	results := make([]scrape, len(workers))
	done := make(chan int, len(workers))
	for i, url := range workers {
		go func(i int, url string) {
			body, err := g.fetchWorker(r.Context(), url, "/metrics")
			results[i] = scrape{worker: url, body: body, err: err}
			done <- i
		}(i, url)
	}
	for range workers {
		<-done
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var buf bytes.Buffer
	g.metrics.WritePrometheus(&buf)
	// seenMeta dedups # HELP / # TYPE lines: every worker exposes the same
	// families, and Prometheus wants the metadata once per exposition.
	seenMeta := map[string]bool{}
	for _, sc := range results {
		if sc.err != nil {
			g.mScrapeErrors.With(sc.worker).Inc()
			fmt.Fprintf(&buf, "# worker %s scrape failed: %s\n", sc.worker, strings.ReplaceAll(sc.err.Error(), "\n", " "))
			continue
		}
		relabelPrometheus(&buf, sc.body, sc.worker, seenMeta)
	}
	if rec, err := g.localRoundTrip(r.Context(), http.MethodGet, "/metrics", "", nil, nil); err == nil && rec.Code == http.StatusOK {
		relabelPrometheus(&buf, rec.Body.Bytes(), "local", seenMeta)
	}
	w.Write(buf.Bytes())
}

// relabelPrometheus rewrites one node's exposition, injecting
// worker="<name>" as the first label of every sample line. Metadata lines
// are emitted once across all nodes (tracked in seenMeta); other comments
// and blanks are dropped.
func relabelPrometheus(out *bytes.Buffer, exposition []byte, workerName string, seenMeta map[string]bool) {
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	label := fmt.Sprintf("worker=%q", workerName)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE "):
			if !seenMeta[line] {
				seenMeta[line] = true
				out.WriteString(line)
				out.WriteByte('\n')
			}
		case strings.HasPrefix(line, "#"):
			continue
		default:
			out.WriteString(injectLabel(line, label))
			out.WriteByte('\n')
		}
	}
}

// injectLabel adds one label pair to a Prometheus sample line, handling both
// the labeled (`name{a="b"} 1`) and bare (`name 1`) forms.
func injectLabel(line, label string) string {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if space < 0 {
		return line
	}
	if brace >= 0 && brace < space {
		rest := line[brace+1:]
		if strings.HasPrefix(rest, "}") { // empty label set: name{} value
			return line[:brace+1] + label + rest
		}
		return line[:brace+1] + label + "," + rest
	}
	return line[:space] + "{" + label + "}" + line[space:]
}
