package cluster

import (
	"sort"
	"sync"
	"time"
)

// Per-worker health tracking. The registry generalizes PR 2's per-device
// circuit breaker from accelerator cards to worker processes: consecutive
// missed heartbeats (or failed forwards — a connection refused is evidence of
// death too) open the worker's breaker, which evicts it from routing without
// removing it from the ring, so its keys come straight back to it when the
// cooldown lapses and a heartbeat succeeds again (re-admission).

// BreakerState is a worker breaker's position.
type BreakerState int

const (
	// BreakerClosed: the worker is in rotation.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the worker is evicted from routing; heartbeats keep
	// probing it and a success after the cooldown re-admits it.
	BreakerOpen
)

func (s BreakerState) String() string {
	if s == BreakerOpen {
		return "open"
	}
	return "closed"
}

// HealthReport is the slice of a worker's /api/health payload the gateway
// uses for admission decisions.
type HealthReport struct {
	Status       string `json:"status"`
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	JobsInFlight int    `json:"jobs_in_flight"`
}

// WorkerHealth is one worker's registry snapshot, served in the gateway's
// /api/health and /api/stats.
type WorkerHealth struct {
	URL               string    `json:"url"`
	Breaker           string    `json:"breaker"`
	Healthy           bool      `json:"healthy"`
	Draining          bool      `json:"draining"`
	QueueDepth        int       `json:"queue_depth"`
	JobsInFlight      int       `json:"jobs_in_flight"`
	ConsecutiveMisses int       `json:"consecutive_misses"`
	BreakerTrips      uint64    `json:"breaker_trips"`
	LastSeen          time.Time `json:"last_seen"`
	LastError         string    `json:"last_error,omitempty"`
}

// worker is the registry's mutable per-node state; guarded by Registry.mu.
type worker struct {
	url          string
	state        BreakerState
	misses       int // consecutive missed heartbeats / failed forwards
	trips        uint64
	openedAt     time.Time
	lastSeen     time.Time
	lastErr      string
	draining     bool
	queueDepth   int
	jobsInFlight int
}

// Registry tracks the worker pool: ring membership, per-worker breaker
// state, and the latest heartbeat payload. Safe for concurrent use.
type Registry struct {
	mu            sync.Mutex
	ring          *Ring
	workers       map[string]*worker
	missThreshold int
	cooldown      time.Duration
	evictions     uint64
	readmissions  uint64
	// onEvict runs (outside the lock) when a worker's breaker opens; the
	// gateway hooks its failover sweep here.
	onEvict func(url string)
	// now is replaceable so tests can drive the cooldown clock.
	now func() time.Time
}

// newRegistry creates an empty registry. missThreshold <= 0 takes 3;
// cooldown <= 0 takes 10s.
func newRegistry(vnodes, missThreshold int, cooldown time.Duration) *Registry {
	if missThreshold <= 0 {
		missThreshold = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Registry{
		ring:          NewRing(vnodes),
		workers:       map[string]*worker{},
		missThreshold: missThreshold,
		cooldown:      cooldown,
		now:           time.Now,
	}
}

// Register adds a worker to the pool and the ring; re-registering a known
// worker is a no-op that keeps its breaker state (a periodic re-register is
// the workers' way of surviving a gateway restart, not a health claim). It
// reports whether the worker was new.
func (rg *Registry) Register(url string) bool {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if _, ok := rg.workers[url]; ok {
		return false
	}
	rg.workers[url] = &worker{url: url, lastSeen: rg.now()}
	rg.ring.Add(url)
	return true
}

// Deregister removes a worker from the pool and the ring.
func (rg *Registry) Deregister(url string) bool {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if _, ok := rg.workers[url]; !ok {
		return false
	}
	delete(rg.workers, url)
	rg.ring.Remove(url)
	return true
}

// Workers returns every registered worker URL, sorted.
func (rg *Registry) Workers() []string {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]string, 0, len(rg.workers))
	for url := range rg.workers {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// ReportHeartbeat folds one heartbeat probe result into the worker's breaker
// and admission state. err == nil is a successful probe carrying hr.
func (rg *Registry) ReportHeartbeat(url string, hr HealthReport, err error) {
	if err == nil {
		rg.reportOutcome(url, true, "", &hr)
	} else {
		rg.reportOutcome(url, false, err.Error(), nil)
	}
}

// ReportForward folds a forward attempt's transport outcome into the breaker:
// a network failure counts like a missed heartbeat (so a dead worker is
// evicted after missThreshold failed forwards without waiting for the
// heartbeat loop), and a successful round trip resets the miss count.
func (rg *Registry) ReportForward(url string, ok bool, errMsg string) {
	rg.reportOutcome(url, ok, errMsg, nil)
}

// reportOutcome is the single breaker transition point. Success closes an
// open breaker only after the cooldown has lapsed — a worker that flaps
// within the cooldown stays evicted. The eviction callback runs outside the
// lock.
func (rg *Registry) reportOutcome(url string, ok bool, errMsg string, hr *HealthReport) {
	rg.mu.Lock()
	w := rg.workers[url]
	if w == nil {
		rg.mu.Unlock()
		return
	}
	now := rg.now()
	evicted := false
	if ok {
		w.misses = 0
		w.lastSeen = now
		w.lastErr = ""
		if hr != nil {
			w.draining = hr.Draining
			w.queueDepth = hr.QueueDepth
			w.jobsInFlight = hr.JobsInFlight
		}
		if w.state == BreakerOpen && now.Sub(w.openedAt) >= rg.cooldown {
			w.state = BreakerClosed
			rg.readmissions++
		}
	} else {
		w.misses++
		w.lastErr = errMsg
		if w.state == BreakerClosed && w.misses >= rg.missThreshold {
			w.state = BreakerOpen
			w.openedAt = now
			w.trips++
			rg.evictions++
			evicted = true
		}
	}
	onEvict := rg.onEvict
	rg.mu.Unlock()
	if evicted && onEvict != nil {
		onEvict(url)
	}
}

// Healthy reports whether a worker is in rotation (registered, breaker
// closed, not draining).
func (rg *Registry) Healthy(url string) bool {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	w := rg.workers[url]
	return w != nil && w.state == BreakerClosed && !w.draining
}

// Candidates returns the workers eligible to run a job with the given ring
// key, in ring order: the primary first, then the failover replicas. Evicted
// and draining workers are skipped — not removed from the ring — so their
// keys return to them on re-admission.
func (rg *Registry) Candidates(key string) []string {
	ordered := rg.ring.Lookup(key, -1)
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]string, 0, len(ordered))
	for _, url := range ordered {
		if w := rg.workers[url]; w != nil && w.state == BreakerClosed && !w.draining {
			out = append(out, url)
		}
	}
	return out
}

// Counts returns how many workers are in rotation and how many are
// registered.
func (rg *Registry) Counts() (healthy, total int) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	for _, w := range rg.workers {
		if w.state == BreakerClosed && !w.draining {
			healthy++
		}
	}
	return healthy, len(rg.workers)
}

// Snapshot returns every worker's health, sorted by URL.
func (rg *Registry) Snapshot() []WorkerHealth {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]WorkerHealth, 0, len(rg.workers))
	for _, w := range rg.workers {
		out = append(out, WorkerHealth{
			URL:               w.url,
			Breaker:           w.state.String(),
			Healthy:           w.state == BreakerClosed && !w.draining,
			Draining:          w.draining,
			QueueDepth:        w.queueDepth,
			JobsInFlight:      w.jobsInFlight,
			ConsecutiveMisses: w.misses,
			BreakerTrips:      w.trips,
			LastSeen:          w.lastSeen,
			LastError:         w.lastErr,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].URL < out[k].URL })
	return out
}

// Totals returns the registry's lifetime eviction and re-admission counts.
func (rg *Registry) Totals() (evictions, readmissions uint64) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return rg.evictions, rg.readmissions
}
