package cluster

import (
	"encoding/json"
	"net/http"
	"sync"

	"bwaver/internal/qc"
)

// Scatter-gather endpoints. Every fan-out fetch is bounded by WorkerTimeout,
// so one hung worker delays the scrape by at most that much and surfaces as
// an error entry instead of stalling the whole response.

// handleHealth reports cluster health: worker pool state plus the gateway's
// own serving posture. Zero healthy workers means every new job is served by
// the embedded standalone fallback, which is exactly what "degraded" means
// here. Always HTTP 200 — the status lives in the body, like the workers'
// own /api/health.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	healthy, total := g.reg.Counts()
	evictions, readmissions := g.reg.Totals()
	status := "ok"
	if healthy == 0 {
		status = "degraded"
	}
	g.mu.Lock()
	routed := len(g.routes)
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":            "gateway",
		"status":          status,
		"workers_healthy": healthy,
		"workers_total":   total,
		"evictions":       evictions,
		"readmissions":    readmissions,
		"routed_jobs":     routed,
		"workers":         g.reg.Snapshot(),
	})
}

// handleStats scatter-gathers /api/stats from every worker (bounded per
// worker), merges in the embedded local server's stats, and wraps the lot in
// the gateway's own routing counters.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	workers := g.reg.Workers()
	perWorker := make(map[string]any, len(workers)+1)
	var qcRollup qc.Report
	mergeQC := func(body []byte) {
		var probe struct {
			QC qc.Report `json:"qc"`
		}
		if json.Unmarshal(body, &probe) == nil {
			qcRollup.Merge(probe.QC)
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, url := range workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			body, err := g.fetchWorker(r.Context(), url, "/api/stats")
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				g.mScrapeErrors.With(url).Inc()
				perWorker[url] = map[string]string{"error": err.Error()}
				return
			}
			var stats any
			if jerr := json.Unmarshal(body, &stats); jerr != nil {
				perWorker[url] = map[string]string{"error": "bad stats payload: " + jerr.Error()}
				return
			}
			perWorker[url] = stats
			mergeQC(body)
		}(url)
	}
	wg.Wait()
	var local any
	if rec, err := g.localRoundTrip(r.Context(), http.MethodGet, "/api/stats", "", nil, nil); err == nil {
		var stats any
		if json.Unmarshal(rec.Body.Bytes(), &stats) == nil {
			local = stats
			mergeQC(rec.Body.Bytes())
		}
	}
	healthy, total := g.reg.Counts()
	evictions, readmissions := g.reg.Totals()
	g.mu.Lock()
	routed := len(g.routes)
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"role": "gateway",
		"cluster": map[string]any{
			"workers_healthy": healthy,
			"workers_total":   total,
			"evictions":       evictions,
			"readmissions":    readmissions,
			"routed_jobs":     routed,
			"qc":              qcRollup,
		},
		"workers": perWorker,
		"local":   local,
	})
}
