package cluster

import (
	"bytes"
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`bwaver_jobs 4`, `bwaver_jobs{worker="w1"} 4`},
		{`bwaver_jobs{} 4`, `bwaver_jobs{worker="w1"} 4`},
		{`bwaver_jobs{state="done"} 4`, `bwaver_jobs{worker="w1",state="done"} 4`},
		{`bwaver_seconds_bucket{le="0.5",route="submit"} 9`, `bwaver_seconds_bucket{worker="w1",le="0.5",route="submit"} 9`},
		{`malformed`, `malformed`},
	}
	for _, c := range cases {
		if got := injectLabel(c.in, `worker="w1"`); got != c.want {
			t.Errorf("injectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRelabelPrometheus(t *testing.T) {
	exposition := []byte(`# HELP bwaver_jobs Jobs by state.
# TYPE bwaver_jobs gauge
bwaver_jobs{state="done"} 3
bwaver_jobs{state="queued"} 1
# some stray comment

bwaver_up 1
`)
	var out bytes.Buffer
	seen := map[string]bool{}
	relabelPrometheus(&out, exposition, "http://w1:8080", seen)
	relabelPrometheus(&out, exposition, "http://w2:8080", seen)
	got := out.String()

	if n := strings.Count(got, "# HELP bwaver_jobs"); n != 1 {
		t.Errorf("HELP emitted %d times across two workers, want 1:\n%s", n, got)
	}
	if n := strings.Count(got, "# TYPE bwaver_jobs"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
	for _, want := range []string{
		`bwaver_jobs{worker="http://w1:8080",state="done"} 3`,
		`bwaver_jobs{worker="http://w2:8080",state="done"} 3`,
		`bwaver_up{worker="http://w1:8080"} 1`,
		`bwaver_up{worker="http://w2:8080"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("merged exposition lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "stray comment") {
		t.Error("non-metadata comments must be dropped")
	}
	for _, line := range strings.Split(got, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, `worker="`) {
			t.Errorf("sample line missing worker label: %q", line)
		}
	}
}
