// Package cluster is the scale-out serving tier: a stateless gateway that
// consistent-hashes jobs across a pool of worker nodes, each running the
// existing server (internal/server) as a library behind its own HTTP
// listener. The gateway keys the ring on core.CacheKey — the content address
// of the index a job needs — so repeat references land on the worker whose
// cache already holds the built index (index affinity), the same amortization
// argument the paper makes for the FPGA's fixed setup cost, applied one level
// up.
//
// Robustness is the point of the package: workers heartbeat through
// /api/health, a per-worker circuit breaker evicts nodes that miss heartbeats
// and re-admits them after a cooldown, job forwarding retries with
// exponential backoff across ring replicas with the job's deadline budget
// shrinking as time elapses, and a worker that dies mid-job has its journaled
// submissions re-forwarded to the next replica on the ring — idempotently,
// so a duplicate forward never double-runs a job. With zero healthy workers
// the gateway degrades to serving jobs itself (standalone fallback).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is how many virtual points each worker occupies on the ring.
// More vnodes smooth the load distribution (relative skew shrinks roughly
// with 1/sqrt(vnodes)) at the cost of a larger sorted point list.
const DefaultVnodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// worker.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent hash ring over worker names (URLs). Adding or
// removing a worker moves only the keys adjacent to its vnodes — the
// minimal-movement property that keeps index caches warm across membership
// changes. Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

// NewRing creates an empty ring; vnodes <= 0 takes DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// ringHash positions a key (or vnode name) on the ring. FNV-1a alone
// avalanches poorly on short, similar inputs (vnode names differ by a
// suffix), and ring placement orders on the full 64-bit value — so the FNV
// sum is finished with a splitmix64-style mixer to spread the points
// uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a worker's vnodes; it reports false if the worker was already
// present.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return false
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, k int) bool { return r.points[i].hash < r.points[k].hash })
	return true
}

// Remove deletes a worker's vnodes; it reports false if the worker was not
// on the ring.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Len is the number of workers on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the workers on the ring, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns up to n distinct workers for key, ordered clockwise from
// the key's position: the first entry is the primary, the rest are the
// failover replicas in preference order. n < 0 means every worker. The order
// is a pure function of ring membership, so every gateway (and every retry)
// agrees on the replica chain.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n == 0 {
		return nil
	}
	if n < 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
