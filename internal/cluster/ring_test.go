package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// ringKeys renders a deterministic key population shaped like real ring keys
// (content hashes).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cachekey|%016x", ringHash(fmt.Sprintf("ref-%d", i)))
	}
	return keys
}

// TestRingSkewBound: with DefaultVnodes, no worker's share of a large key
// population may exceed twice the fair share, for every pool size the
// gateway is expected to run at.
func TestRingSkewBound(t *testing.T) {
	keys := ringKeys(20000)
	for workers := 1; workers <= 16; workers++ {
		r := NewRing(0)
		for w := 0; w < workers; w++ {
			r.Add(fmt.Sprintf("http://worker-%d:8080", w))
		}
		counts := map[string]int{}
		for _, k := range keys {
			owners := r.Lookup(k, 1)
			if len(owners) != 1 {
				t.Fatalf("%d workers: Lookup(%q, 1) = %v", workers, k, owners)
			}
			counts[owners[0]]++
		}
		if len(counts) != workers {
			t.Fatalf("%d workers: only %d received keys", workers, len(counts))
		}
		fair := float64(len(keys)) / float64(workers)
		for node, c := range counts {
			if float64(c) > 2*fair {
				t.Errorf("%d workers: %s owns %d keys, more than 2x the fair share %.0f", workers, node, c, fair)
			}
			if float64(c) < fair/4 {
				t.Errorf("%d workers: %s owns %d keys, less than a quarter of the fair share %.0f", workers, node, c, fair)
			}
		}
	}
}

// TestRingMinimalMovement: adding a worker may only move keys onto the new
// worker (never reshuffle between the incumbents), the moved fraction must be
// near 1/(n+1), and removing the worker must restore the original mapping
// exactly.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	r := NewRing(0)
	incumbents := 8
	for w := 0; w < incumbents; w++ {
		r.Add(fmt.Sprintf("http://worker-%d:8080", w))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k, 1)[0]
	}

	joiner := "http://worker-new:8080"
	if !r.Add(joiner) {
		t.Fatal("Add(joiner) reported already present")
	}
	moved := 0
	for _, k := range keys {
		owner := r.Lookup(k, 1)[0]
		if owner != before[k] {
			if owner != joiner {
				t.Fatalf("key %q moved %s -> %s, not to the joining worker", k, before[k], owner)
			}
			moved++
		}
	}
	fair := len(keys) / (incumbents + 1)
	if moved == 0 || moved > 2*fair {
		t.Errorf("join moved %d keys, want (0, %d]", moved, 2*fair)
	}

	if !r.Remove(joiner) {
		t.Fatal("Remove(joiner) reported not present")
	}
	for _, k := range keys {
		if owner := r.Lookup(k, 1)[0]; owner != before[k] {
			t.Fatalf("after leave, key %q owned by %s, want %s", k, owner, before[k])
		}
	}
}

// TestRingLookupReplicas: the replica chain is distinct, deterministic, and
// bounded by membership; n < 0 yields every worker.
func TestRingLookupReplicas(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("anything", 3); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	for w := 0; w < 5; w++ {
		r.Add(fmt.Sprintf("http://worker-%d:8080", w))
	}
	chain := r.Lookup("some-key", -1)
	if len(chain) != 5 {
		t.Fatalf("Lookup(-1) returned %d workers, want 5", len(chain))
	}
	seen := map[string]bool{}
	for _, n := range chain {
		if seen[n] {
			t.Fatalf("duplicate worker %s in replica chain %v", n, chain)
		}
		seen[n] = true
	}
	// A shorter lookup is a prefix of the full chain, and repeat lookups agree.
	short := r.Lookup("some-key", 2)
	if len(short) != 2 || short[0] != chain[0] || short[1] != chain[1] {
		t.Fatalf("Lookup(2) = %v, want prefix of %v", short, chain)
	}
	if again := r.Lookup("some-key", -1); fmt.Sprint(again) != fmt.Sprint(chain) {
		t.Fatalf("repeat lookup disagreed: %v vs %v", again, chain)
	}
	if over := r.Lookup("some-key", 50); len(over) != 5 {
		t.Fatalf("Lookup(50) returned %d workers, want all 5", len(over))
	}
	if none := r.Lookup("some-key", 0); none != nil {
		t.Fatalf("Lookup(0) = %v, want nil", none)
	}
}

// TestRingConcurrentAccess exercises membership churn against lookups under
// -race.
func TestRingConcurrentAccess(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("http://worker-%d:8080", g)
			for i := 0; i < 200; i++ {
				r.Add(node)
				r.Lookup(fmt.Sprintf("key-%d-%d", g, i), -1)
				r.Nodes()
				r.Remove(node)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after churn: %v", r.Nodes())
	}
}
