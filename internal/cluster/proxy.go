package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"bwaver/internal/obs"
)

// Job-scoped proxying. The gateway owns the job ID namespace: clients see
// gateway IDs, workers keep their own, and the proxy rewrites between them —
// in the request path on the way up and in JSON/HTML bodies on the way down.
// Buffered endpoints (status, chunk uploads, finalize, cancel, trace) are
// captured and rewritten; streaming endpoints (results, SSE) pass bytes
// through with flushing so live tails stay live.

// hopHeaders are not forwarded (RFC 9110 connection-level fields).
var hopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authorization": true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Content-Length":      true,
	"Host":                true,
}

// routeFromRequest resolves the {id} path segment to a routed job.
func (g *Gateway) routeFromRequest(w http.ResponseWriter, r *http.Request) (*routedJob, bool) {
	id, err := atoiID(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad job id")
		return nil, false
	}
	rj := g.route(id)
	if rj == nil {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("no such job: %d", id))
		return nil, false
	}
	return rj, true
}

// ensureOwnerAlive fails a route over before proxying when its worker has
// been evicted — so a status poll right after a crash already lands on the
// replica instead of bouncing off the corpse.
func (g *Gateway) ensureOwnerAlive(rj *routedJob) {
	g.mu.Lock()
	if rj.terminal || rj.worker == "" || rj.failingOver || !g.canFailoverLocked(rj) || g.reg.Healthy(rj.worker) {
		g.mu.Unlock()
		return
	}
	rj.failingOver = true
	g.mu.Unlock()
	g.failoverRoute(rj)
}

// upstreamRequest builds the worker-side copy of a job-scoped request: same
// method and query, path re-addressed to the owner's job ID, client headers
// minus hop-by-hop, plus the route's request id.
func (g *Gateway) upstreamRequest(ctx context.Context, r *http.Request, rj *routedJob, worker string, remoteID int, body []byte) (*http.Request, error) {
	path := rewritePathID(r.URL.Path, rj.gwID, remoteID)
	url := worker + path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if !hopHeaders[k] {
			req.Header[k] = vs
		}
	}
	if rj.requestID != "" {
		req.Header.Set(obs.RequestIDHeader, rj.requestID)
	}
	return req, nil
}

// proxyBuffered captures the owner's whole response and re-addresses it to
// the gateway namespace before answering.
func (g *Gateway) proxyBuffered(w http.ResponseWriter, r *http.Request) {
	rj, ok := g.routeFromRequest(w, r)
	if !ok {
		return
	}
	g.ensureOwnerAlive(rj)
	g.mu.Lock()
	worker, remoteID := rj.worker, rj.remoteID
	g.mu.Unlock()

	var body []byte
	if r.Method == http.MethodPut || r.Method == http.MethodPost {
		b, ok := g.readBody(w, r)
		if !ok {
			return
		}
		body = b
	}

	var resp *http.Response
	if worker == "" {
		rec, err := g.localRoundTrip(r.Context(), r.Method,
			rewritePathID(r.URL.Path, rj.gwID, remoteID), r.URL.RawQuery, body,
			func(req *http.Request) {
				for k, vs := range r.Header {
					if !hopHeaders[k] {
						req.Header[k] = vs
					}
				}
			})
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp = rec.Result()
	} else {
		// Bodyless reads get the scatter timeout; uploads can be large, so
		// they run on the client's own context.
		ctx := r.Context()
		if body == nil {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.cfg.WorkerTimeout)
			defer cancel()
		}
		req, err := g.upstreamRequest(ctx, r, rj, worker, remoteID, body)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		var doErr error
		resp, doErr = g.client.Do(req)
		if doErr != nil {
			g.reg.ReportForward(worker, false, doErr.Error())
			jsonError(w, http.StatusBadGateway,
				fmt.Sprintf("job %d's worker is unreachable: %v", rj.gwID, doErr))
			return
		}
		g.reg.ReportForward(worker, true, "")
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		jsonError(w, http.StatusBadGateway, "reading worker response: "+err.Error())
		return
	}
	g.writeRewritten(w, resp, respBody, rj, remoteID)
}

// writeRewritten re-addresses a buffered worker response to the gateway
// namespace: JSON `id` fields and HTML job links become the gateway's ID,
// and any observed job state is folded into the route.
func (g *Gateway) writeRewritten(w http.ResponseWriter, resp *http.Response, body []byte, rj *routedJob, remoteID int) {
	ct := resp.Header.Get("Content-Type")
	out := body
	switch {
	case strings.Contains(ct, "application/json"):
		var m map[string]any
		if json.Unmarshal(body, &m) == nil {
			if _, ok := m["id"]; ok {
				m["id"] = rj.gwID
			}
			if state, _ := m["state"].(string); state != "" {
				g.markState(rj, state)
			}
			g.mu.Lock()
			worker, failovers := rj.worker, rj.failovers
			g.mu.Unlock()
			m["worker"] = workerLabel(worker)
			if failovers > 0 {
				m["failovers"] = failovers
			}
			if buf, err := json.Marshal(m); err == nil {
				out = buf
			}
		}
	case strings.Contains(ct, "text/html"):
		out = bytes.ReplaceAll(body,
			[]byte(fmt.Sprintf("/jobs/%d", remoteID)),
			[]byte(fmt.Sprintf("/jobs/%d", rj.gwID)))
	}
	copyHeader(w.Header(), resp.Header,
		"Content-Type", "Idempotency-Replayed", "Retry-After", "Cache-Control")
	if loc := resp.Header.Get("Location"); loc != "" {
		w.Header().Set("Location", strings.Replace(loc,
			fmt.Sprintf("/jobs/%d", remoteID), fmt.Sprintf("/jobs/%d", rj.gwID), 1))
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(out)
}

// proxyStream passes a streaming endpoint (results download, SSE/NDJSON
// live tail) through byte-for-byte with flushing. No ID rewriting is needed:
// result rows and stream events carry alignments, not job ids.
func (g *Gateway) proxyStream(w http.ResponseWriter, r *http.Request) {
	rj, ok := g.routeFromRequest(w, r)
	if !ok {
		return
	}
	g.ensureOwnerAlive(rj)
	g.mu.Lock()
	worker, remoteID := rj.worker, rj.remoteID
	g.mu.Unlock()

	path := rewritePathID(r.URL.Path, rj.gwID, remoteID)
	if worker == "" {
		// Local: hand the real ResponseWriter to the embedded server so SSE
		// keeps streaming. Only the path needs re-addressing.
		r2 := r.Clone(r.Context())
		r2.URL.Path = path
		g.localHandler.ServeHTTP(w, r2)
		return
	}
	// Streams outlive any worker timeout by design; the client's context is
	// the only bound.
	req, err := g.upstreamRequest(r.Context(), r, rj, worker, remoteID, nil)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.reg.ReportForward(worker, false, err.Error())
		jsonError(w, http.StatusBadGateway,
			fmt.Sprintf("job %d's worker is unreachable: %v", rj.gwID, err))
		return
	}
	defer resp.Body.Close()
	g.reg.ReportForward(worker, true, "")
	for k, vs := range resp.Header {
		if !hopHeaders[k] && k != obs.RequestIDHeader {
			w.Header()[k] = vs
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy streams src to w, flushing after every read so live event
// streams are delivered as they happen, not when a buffer fills.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
