package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/obs"
	"bwaver/internal/server"
)

// TimeoutHeader carries the job's remaining deadline budget (in whole
// milliseconds) from the gateway to the worker. The gateway recomputes it at
// every forward attempt — including retries and replica failovers — so a
// worker never receives a fresh full budget for a job that has already spent
// part of its deadline elsewhere.
const TimeoutHeader = "X-Bwaver-Timeout-Ms"

// Config tunes the gateway; zero values take the listed defaults.
type Config struct {
	// Workers are the statically configured worker base URLs; more can join
	// at runtime via POST /cluster/register.
	Workers []string
	// HeartbeatInterval is how often every worker's /api/health is probed;
	// default 2s.
	HeartbeatInterval time.Duration
	// WorkerTimeout bounds one heartbeat probe, one scatter-gather fetch,
	// and one forward round trip; default 2s. A hung worker costs at most
	// this much wall clock per scrape.
	WorkerTimeout time.Duration
	// MissThreshold consecutive missed heartbeats (or failed forwards) evict
	// a worker; default 3.
	MissThreshold int
	// Cooldown is how long an evicted worker stays out of rotation before a
	// successful heartbeat re-admits it; default 10s.
	Cooldown time.Duration
	// JobTimeout is the end-to-end deadline budget stamped on forwarded
	// jobs; 0 propagates no budget.
	JobTimeout time.Duration
	// ForwardAttempts bounds submission attempts across ring replicas;
	// default 3.
	ForwardAttempts int
	// RetryBase is the exponential-backoff base between forward attempts
	// (plus up to 50% jitter); default 50ms.
	RetryBase time.Duration
	// Vnodes is the ring's virtual nodes per worker; default DefaultVnodes.
	Vnodes int
	// FtabK must match the workers' -ftab-k so the gateway computes the same
	// core.CacheKey the workers' caches are addressed by; default
	// core.DefaultFtabK.
	FtabK int
	// MaxUploadBytes bounds buffered submission bodies; default 256 MiB.
	MaxUploadBytes int64
	// Local is the embedded standalone server the gateway degrades to when
	// zero workers are healthy. Required.
	Local *server.Server
	// Logger receives gateway logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 2 * time.Second
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.FtabK == 0 {
		c.FtabK = core.DefaultFtabK
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	return c
}

// routedJob is the gateway's record of one submission: where it lives now,
// and everything needed to re-run it somewhere else if that worker dies. The
// payload is retained until the job is observed terminal, then freed.
type routedJob struct {
	gwID      int
	key       string // ring key (core.CacheKey of the job's index)
	idemKey   string // forwarded on every attempt so replays dedupe
	requestID string
	deadline  time.Time // zero = no budget
	method    string
	path      string // upstream submission path: "/jobs", "/demo", "/api/jobs"
	query     string
	contentType string
	body      []byte
	chunked   bool // created via POST /api/jobs; payload lives on the worker

	worker    string // current owner base URL; "" = served locally
	remoteID  int
	lastState string
	terminal  bool
	failovers int
	// failingOver single-flights re-forwards: the heartbeat sweep and a
	// proxy-time failover must not both re-run the job (the idempotency key
	// would still dedupe on one worker, but two different replicas could
	// each run it).
	failingOver bool
}

// Gateway is the cluster front door: an http.Handler that consistent-hashes
// submissions across registered workers, fails them over when workers die,
// and degrades to the embedded local server when none are healthy.
type Gateway struct {
	cfg    Config
	reg    *Registry
	local  *server.Server
	localHandler http.Handler
	client *http.Client
	log    *slog.Logger

	mu     sync.Mutex
	routes map[int]*routedJob
	idem   map[string]int // Idempotency-Key → gateway job ID
	nextID int

	metrics        *obs.Registry
	mForwards      *obs.CounterVec
	mRetries       *obs.CounterVec
	mFailovers     *obs.CounterVec
	mLocalJobs     *obs.CounterVec
	mHeartbeats    *obs.CounterVec
	mScrapeErrors  *obs.CounterVec
	mBreakerState  *obs.GaugeVec
	mWorkerDepth   *obs.GaugeVec

	stopOnce  sync.Once
	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New creates a gateway over cfg.Workers. Call Start to begin heartbeating
// and Close to stop; the embedded local server's lifecycle belongs to the
// caller.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: Config.Local (standalone fallback server) is required")
	}
	g := &Gateway{
		cfg:          cfg,
		reg:          newRegistry(cfg.Vnodes, cfg.MissThreshold, cfg.Cooldown),
		local:        cfg.Local,
		localHandler: cfg.Local.Handler(),
		client:       &http.Client{},
		log:          cfg.Logger,
		routes:       map[int]*routedJob{},
		idem:         map[string]int{},
		nextID:       1,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	if g.log == nil {
		g.log = obs.NopLogger()
	}
	g.initMetrics()
	g.reg.onEvict = func(url string) {
		g.log.Warn("worker evicted; failing over its jobs", "worker", url)
		go g.failoverWorker(url)
	}
	for _, url := range cfg.Workers {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url != "" {
			g.reg.Register(url)
		}
	}
	return g, nil
}

// Registry exposes the worker registry (tests and the CLI's status output).
func (g *Gateway) Registry() *Registry { return g.reg }

// Start launches the heartbeat loop; safe to call once.
func (g *Gateway) Start() {
	g.startOnce.Do(func() { go g.heartbeatLoop() })
}

// Close stops the heartbeat loop. It does not close the embedded local
// server (the caller owns it).
func (g *Gateway) Close() {
	g.stopOnce.Do(func() {
		close(g.stop)
		g.startOnce.Do(func() { close(g.done) }) // never started: unblock the wait
		<-g.done
	})
}

// Handler returns the gateway's HTTP routes. The surface mirrors the worker
// API: clients talk to the cluster exactly as they would to one server.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", g.handleHome)
	mux.HandleFunc("POST /jobs", g.handleSubmit)
	mux.HandleFunc("GET /demo", g.handleDemo)
	mux.HandleFunc("POST /api/jobs", g.handleCreateChunked)
	mux.HandleFunc("GET /api/jobs", g.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", g.proxyBuffered)
	mux.HandleFunc("GET /api/jobs/{id}", g.proxyBuffered)
	mux.HandleFunc("DELETE /api/jobs/{id}", g.proxyBuffered)
	mux.HandleFunc("PUT /api/jobs/{id}/reference", g.proxyBuffered)
	mux.HandleFunc("PUT /api/jobs/{id}/reads", g.proxyBuffered)
	mux.HandleFunc("POST /api/jobs/{id}/finalize", g.proxyBuffered)
	mux.HandleFunc("GET /api/jobs/{id}/trace", g.proxyBuffered)
	mux.HandleFunc("GET /jobs/{id}/results", g.proxyStream)
	mux.HandleFunc("GET /api/jobs/{id}/stream", g.proxyStream)
	mux.HandleFunc("GET /api/stats", g.handleStats)
	mux.HandleFunc("GET /api/health", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("POST /cluster/register", g.handleRegister)
	mux.HandleFunc("POST /cluster/deregister", g.handleDeregister)
	return g.withRequestID(mux)
}

// withRequestID stamps every request with an X-Request-Id (minting one when
// the client sent none), echoes it on the response, and writes the access
// log line.
func (g *Gateway) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := strings.TrimSpace(r.Header.Get(obs.RequestIDHeader))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, reqID)
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		start := time.Now()
		next.ServeHTTP(w, r)
		g.log.Info("gateway request",
			"method", r.Method, "path", r.URL.Path,
			"request_id", reqID,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	})
}

// writeJSON mirrors the worker's envelope so clients see one wire format.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json") || strings.Contains(accept, "application/x-ndjson")
}

// newRoute allocates a gateway job ID and records the submission.
func (g *Gateway) newRoute(method, path, query, contentType, key, idemKey, requestID string, body []byte, chunked bool) *routedJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	rj := &routedJob{
		gwID:        g.nextID,
		key:         key,
		idemKey:     idemKey,
		requestID:   requestID,
		method:      method,
		path:        path,
		query:       query,
		contentType: contentType,
		body:        body,
		chunked:     chunked,
	}
	if g.cfg.JobTimeout > 0 {
		rj.deadline = time.Now().Add(g.cfg.JobTimeout)
	}
	g.nextID++
	g.routes[rj.gwID] = rj
	if idemKey != "" {
		g.idem[idemKey] = rj.gwID
	}
	return rj
}

// dropRoute forgets a submission that never landed anywhere.
func (g *Gateway) dropRoute(rj *routedJob) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.routes, rj.gwID)
	if rj.idemKey != "" && g.idem[rj.idemKey] == rj.gwID {
		delete(g.idem, rj.idemKey)
	}
}

// routeByIdem returns the route already holding an idempotency key, if any.
func (g *Gateway) routeByIdem(key string) *routedJob {
	if key == "" {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.idem[key]; ok {
		return g.routes[id]
	}
	return nil
}

// route looks up a gateway job ID.
func (g *Gateway) route(id int) *routedJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.routes[id]
}

// markState folds a state string observed in a proxied response into the
// route; terminal states free the retained payload.
func (g *Gateway) markState(rj *routedJob, state string) {
	if state == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rj.lastState = state
	if state == "done" || state == "failed" || state == "canceled" {
		rj.terminal = true
		rj.body = nil
	}
}

// handleSubmit accepts a buffered multipart upload, hashes it onto the ring,
// and forwards it. The whole body is buffered so the payload can be re-sent
// to a replica if the chosen worker dies mid-job.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := obs.RequestIDFrom(r.Context())
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if rj := g.routeByIdem(idemKey); rj != nil {
		g.respondReplay(w, r, rj)
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	contentType := r.Header.Get("Content-Type")
	key := g.ringKeyForUpload(contentType, body)
	if idemKey == "" {
		// Mint one: the key is what makes a failover re-forward safe against
		// double execution when it races a retry to the same worker.
		idemKey = "gw-" + reqID
	}
	rj := g.newRoute(http.MethodPost, "/jobs", "", contentType, key, idemKey, reqID, body, false)
	g.dispatchSubmit(w, r, rj)
}

// handleDemo forwards the synthetic demo job; the ring key is derived from
// the demo parameters (every worker renders the same seeded dataset).
func (g *Gateway) handleDemo(w http.ResponseWriter, r *http.Request) {
	reqID := obs.RequestIDFrom(r.Context())
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if rj := g.routeByIdem(idemKey); rj != nil {
		g.respondReplay(w, r, rj)
		return
	}
	if idemKey == "" {
		idemKey = "gw-" + reqID
	}
	key := "demo|" + r.URL.RawQuery
	rj := g.newRoute(http.MethodGet, "/demo", r.URL.RawQuery, "", key, idemKey, reqID, nil, false)
	g.dispatchSubmit(w, r, rj)
}

// handleCreateChunked opens a chunked-ingest job on a worker. The payload
// will live on that worker, so the route is sticky: if the worker dies while
// the job is still uploading, a failover re-creates the empty shell on a
// replica and the client's offset polling restarts the upload; once the job
// is past uploading, the payload cannot be re-sent and the route stays
// pinned until the worker returns.
func (g *Gateway) handleCreateChunked(w http.ResponseWriter, r *http.Request) {
	reqID := obs.RequestIDFrom(r.Context())
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if rj := g.routeByIdem(idemKey); rj != nil {
		g.respondReplay(w, r, rj)
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	if idemKey == "" {
		idemKey = "gw-" + reqID
	}
	// No payload yet, so no content address: spread shells by idempotency
	// key. The index-affinity win only applies once the reference is known.
	key := "create|" + idemKey
	rj := g.newRoute(http.MethodPost, "/api/jobs", "", r.Header.Get("Content-Type"), key, idemKey, reqID, body, true)
	g.dispatchSubmit(w, r, rj)
}

// readBody buffers a submission body under the upload cap.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxUploadBytes)
	body, err := readAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if isMaxBytes(err) {
			status = http.StatusRequestEntityTooLarge
		}
		jsonError(w, status, "reading upload: "+err.Error())
		return nil, false
	}
	return body, true
}

// dispatchSubmit forwards a new submission and renders the outcome.
func (g *Gateway) dispatchSubmit(w http.ResponseWriter, r *http.Request, rj *routedJob) {
	out, err := g.forwardSubmit(r.Context(), rj)
	if err != nil {
		g.dropRoute(rj)
		jsonError(w, http.StatusServiceUnavailable, "no worker accepted the job: "+err.Error())
		return
	}
	if out.status < 200 || out.status > 299 {
		// Pass the worker's structured rejection (queue full, rate limited,
		// bad request...) through verbatim; the submission never landed.
		g.dropRoute(rj)
		copyHeader(w.Header(), out.header, "Content-Type", "Retry-After")
		w.WriteHeader(out.status)
		w.Write(out.body)
		return
	}
	g.mu.Lock()
	rj.worker = out.worker
	rj.remoteID = out.remoteID
	rj.lastState = out.state
	g.mu.Unlock()
	g.log.Info("job routed",
		"gw_job", rj.gwID, "worker", workerLabel(out.worker), "remote_job", out.remoteID,
		"key", shortKey(rj.key), "request_id", rj.requestID)
	if wantsJSON(r) {
		if out.replayed {
			w.Header().Set("Idempotency-Replayed", "true")
		}
		writeJSON(w, http.StatusOK, g.rewriteJobJSON(out.body, rj))
		return
	}
	http.Redirect(w, r, fmt.Sprintf("/jobs/%d", rj.gwID), http.StatusSeeOther)
}

// respondReplay answers a retried submission from its existing route: the
// current owner is asked for the job's state, and the response is rewritten
// to the gateway's ID with the replay marker set.
func (g *Gateway) respondReplay(w http.ResponseWriter, r *http.Request, rj *routedJob) {
	out, err := g.fetchStatus(r, rj)
	if err != nil {
		jsonError(w, http.StatusBadGateway, "job's worker is unreachable: "+err.Error())
		return
	}
	if wantsJSON(r) {
		w.Header().Set("Idempotency-Replayed", "true")
		writeJSON(w, out.status, g.rewriteJobJSON(out.body, rj))
		return
	}
	http.Redirect(w, r, fmt.Sprintf("/jobs/%d", rj.gwID), http.StatusSeeOther)
}

// rewriteJobJSON re-addresses a worker's job JSON to the gateway namespace:
// the id becomes the gateway's, and the serving worker is surfaced for
// operators. Undecodable bodies pass through untouched.
func (g *Gateway) rewriteJobJSON(body []byte, rj *routedJob) any {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return json.RawMessage(body)
	}
	if _, ok := m["id"]; ok {
		m["id"] = rj.gwID
	}
	if state, _ := m["state"].(string); state != "" {
		g.markState(rj, state)
	}
	g.mu.Lock()
	worker, failovers := rj.worker, rj.failovers
	g.mu.Unlock()
	m["worker"] = workerLabel(worker)
	if failovers > 0 {
		m["failovers"] = failovers
	}
	return m
}

// handleListJobs scatter-gathers every owner's job list and re-addresses the
// routed ones to gateway IDs. Jobs submitted directly to a worker (bypassing
// the gateway) are not part of the gateway namespace and are skipped.
func (g *Gateway) handleListJobs(w http.ResponseWriter, r *http.Request) {
	type owned struct {
		worker string
		jobs   []map[string]any
	}
	owners := g.reg.Workers()
	results := make([]owned, len(owners)+1)
	var wg sync.WaitGroup
	for i, url := range owners {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			body, err := g.fetchWorker(r.Context(), url, "/api/jobs")
			if err != nil {
				g.mScrapeErrors.With(url).Inc()
				return
			}
			var jobs []map[string]any
			if json.Unmarshal(body, &jobs) == nil {
				results[i] = owned{worker: url, jobs: jobs}
			}
		}(i, url)
	}
	wg.Wait()
	// Local jobs come from the embedded server, in process.
	if rec, err := g.localRoundTrip(r.Context(), http.MethodGet, "/api/jobs", "", nil, nil); err == nil {
		var jobs []map[string]any
		if json.Unmarshal(rec.Body.Bytes(), &jobs) == nil {
			results[len(owners)] = owned{worker: "", jobs: jobs}
		}
	}

	// Reverse index (owner, remoteID) → route.
	g.mu.Lock()
	byOwner := map[string]map[int]*routedJob{}
	for _, rj := range g.routes {
		m := byOwner[rj.worker]
		if m == nil {
			m = map[int]*routedJob{}
			byOwner[rj.worker] = m
		}
		m[rj.remoteID] = rj
	}
	g.mu.Unlock()
	var merged []map[string]any
	for _, own := range results {
		for _, j := range own.jobs {
			rid, ok := j["id"].(float64)
			if !ok {
				continue
			}
			rj := byOwner[own.worker][int(rid)]
			if rj == nil {
				continue
			}
			j["id"] = rj.gwID
			j["worker"] = workerLabel(own.worker)
			if state, _ := j["state"].(string); state != "" {
				g.markState(rj, state)
			}
			merged = append(merged, j)
		}
	}
	sort.Slice(merged, func(i, k int) bool {
		a, _ := merged[i]["id"].(int)
		b, _ := merged[k]["id"].(int)
		return a < b
	})
	if merged == nil {
		merged = []map[string]any{}
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleRegister admits a worker announced over the API. Registration is
// idempotent; workers re-announce periodically so a restarted (stateless)
// gateway relearns its pool.
func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad register payload: "+err.Error())
		return
	}
	url := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		jsonError(w, http.StatusBadRequest, "worker url must be absolute (http:// or https://)")
		return
	}
	fresh := g.reg.Register(url)
	if fresh {
		g.log.Info("worker registered", "worker", url)
		// Probe immediately so the newcomer joins rotation without waiting a
		// full heartbeat interval.
		go g.probeWorker(url)
	}
	_, total := g.reg.Counts()
	writeJSON(w, http.StatusOK, map[string]any{"registered": true, "new": fresh, "workers": total})
}

// handleDeregister removes a worker from the pool (graceful scale-down; its
// routed jobs fail over like an eviction).
func (g *Gateway) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad deregister payload: "+err.Error())
		return
	}
	url := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	removed := g.reg.Deregister(url)
	if removed {
		g.log.Info("worker deregistered", "worker", url)
		go g.failoverWorker(url)
	}
	_, total := g.reg.Counts()
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed, "workers": total})
}

var gatewayHome = template.Must(template.New("gwhome").Parse(`<!doctype html>
<html><head><title>BWaveR gateway</title></head><body>
<h1>BWaveR cluster gateway</h1>
<p>{{.Healthy}}/{{.Total}} workers healthy{{if .Degraded}} — <b>degraded: serving locally</b>{{end}}.</p>
<h2>Routed jobs</h2>
<ul>{{range .Jobs}}<li><a href="/jobs/{{.ID}}">job {{.ID}}</a> — {{.State}} on {{.Worker}}</li>{{end}}</ul>
<p><a href="/demo">Run a synthetic demo job</a> · <a href="/api/health">health</a> · <a href="/api/stats">stats</a></p>
</body></html>`))

func (g *Gateway) handleHome(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID     int
		State  string
		Worker string
	}
	healthy, total := g.reg.Counts()
	data := struct {
		Healthy, Total int
		Degraded       bool
		Jobs           []row
	}{Healthy: healthy, Total: total, Degraded: healthy == 0}
	g.mu.Lock()
	for _, rj := range g.routes {
		state := rj.lastState
		if state == "" {
			state = "queued"
		}
		data.Jobs = append(data.Jobs, row{ID: rj.gwID, State: state, Worker: workerLabel(rj.worker)})
	}
	g.mu.Unlock()
	sort.Slice(data.Jobs, func(i, k int) bool { return data.Jobs[i].ID < data.Jobs[k].ID })
	var buf bytes.Buffer
	if err := gatewayHome.Execute(&buf, data); err != nil {
		g.log.Error("gateway home render failed", "err", err)
		http.Error(w, "internal server error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf.Bytes())
}

// workerLabel names a route's owner for payloads and logs.
func workerLabel(worker string) string {
	if worker == "" {
		return "local"
	}
	return worker
}

// shortKey abbreviates a ring key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// rewritePathID swaps the gateway job ID for the owner's in a request path.
// Every job-scoped route embeds the ID as the path segment after "/jobs/",
// so one targeted replace is exact.
func rewritePathID(path string, gwID, remoteID int) string {
	return strings.Replace(path,
		fmt.Sprintf("/jobs/%d", gwID),
		fmt.Sprintf("/jobs/%d", remoteID), 1)
}

func atoiID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}
