package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Heartbeats are pull-based: the gateway polls every registered worker's
// /api/health on a fixed interval instead of trusting workers to push. A
// worker that is wedged (accepting TCP but not answering) misses heartbeats
// exactly like one that is dead, which push-based liveness cannot see.

// heartbeatLoop probes the whole pool every HeartbeatInterval until Close.
func (g *Gateway) heartbeatLoop() {
	defer close(g.done)
	t := time.NewTicker(g.cfg.HeartbeatInterval)
	defer t.Stop()
	g.probeAll()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// probeAll heartbeats every worker concurrently; one slow worker cannot
// delay the others' verdicts.
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, url := range g.reg.Workers() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			g.probeWorker(url)
		}(url)
	}
	wg.Wait()
	g.publishWorkerGauges()
}

// probeWorker runs one heartbeat: GET /api/health bounded by WorkerTimeout,
// result folded into the worker's breaker.
func (g *Gateway) probeWorker(url string) {
	hr, err := g.fetchHealth(url)
	g.reg.ReportHeartbeat(url, hr, err)
	if err != nil {
		g.mHeartbeats.With(url, "miss").Inc()
	} else {
		g.mHeartbeats.With(url, "ok").Inc()
	}
}

// fetchHealth fetches and decodes one worker's /api/health.
func (g *Gateway) fetchHealth(url string) (HealthReport, error) {
	var hr HealthReport
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.WorkerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/api/health", nil)
	if err != nil {
		return hr, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return hr, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return hr, err
	}
	// Workers answer /api/health with 200 even when degraded (status in the
	// body); any non-200 means the thing listening is not a worker.
	if resp.StatusCode != http.StatusOK {
		return hr, fmt.Errorf("health probe: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &hr); err != nil {
		return hr, fmt.Errorf("health probe: bad payload: %w", err)
	}
	return hr, nil
}

// publishWorkerGauges refreshes the per-worker observability gauges from the
// registry snapshot after each heartbeat round.
func (g *Gateway) publishWorkerGauges() {
	for _, wh := range g.reg.Snapshot() {
		state := 0.0
		if wh.Breaker == "open" {
			state = 1
		}
		g.mBreakerState.With(wh.URL).Set(state)
		g.mWorkerDepth.With(wh.URL).Set(float64(wh.QueueDepth))
	}
}

// RegisterWorker announces a worker to a gateway once: POST
// /cluster/register with the worker's advertised base URL.
func RegisterWorker(ctx context.Context, client *http.Client, gatewayURL, advertiseURL string) error {
	return announce(ctx, client, gatewayURL, "/cluster/register", advertiseURL)
}

// DeregisterWorker withdraws a worker from a gateway's pool: POST
// /cluster/deregister. Draining workers call this before refusing new jobs,
// so the gateway fails their routable work over instead of discovering the
// drain through missed forwards.
func DeregisterWorker(ctx context.Context, client *http.Client, gatewayURL, advertiseURL string) error {
	return announce(ctx, client, gatewayURL, "/cluster/deregister", advertiseURL)
}

func announce(ctx context.Context, client *http.Client, gatewayURL, path, advertiseURL string) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	payload, _ := json.Marshal(map[string]string{"url": advertiseURL})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		gatewayURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("announce %s at %s: HTTP %d", path, gatewayURL, resp.StatusCode)
	}
	return nil
}

// RegisterLoop keeps a worker announced to its gateway: register
// immediately, then re-register on every interval tick until ctx ends. The
// gateway is stateless — a restarted gateway relearns its pool from these
// re-announcements within one interval. Registration is idempotent, so the
// steady-state re-registers are cheap no-ops.
func RegisterLoop(ctx context.Context, gatewayURL, advertiseURL string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	client := &http.Client{Timeout: interval}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := RegisterWorker(ctx, client, gatewayURL, advertiseURL); err != nil {
		logf("cluster register failed (will retry): %v", err)
	} else {
		logf("registered with gateway %s as %s", gatewayURL, advertiseURL)
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := RegisterWorker(ctx, client, gatewayURL, advertiseURL); err != nil {
				logf("cluster re-register failed: %v", err)
			}
		}
	}
}
