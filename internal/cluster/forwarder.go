package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"bwaver/internal/obs"
	"bwaver/internal/server"
)

// forwardOutcome is one settled submission attempt: where it landed and what
// the owner answered.
type forwardOutcome struct {
	worker   string // owner base URL; "" = served by the embedded local server
	status   int
	header   http.Header
	body     []byte
	remoteID int
	state    string
	replayed bool
}

// errNoCandidates reports an empty healthy-candidate set.
var errNoCandidates = errors.New("no healthy workers")

// remainingBudget returns the job's unspent deadline. ok is false when the
// budget is exhausted; a zero deadline means "no budget" and reports ok with
// zero remaining.
func remainingBudget(rj *routedJob) (time.Duration, bool) {
	if rj.deadline.IsZero() {
		return 0, true
	}
	left := time.Until(rj.deadline)
	return left, left > 0
}

// forwardHeaders stamps the cross-process job identity on an upstream
// request: idempotency key (dedupe), request id (tracing), and the remaining
// deadline budget (satellite fix: a retried or failed-over forward must NOT
// hand the worker a fresh full timeout — it gets deadline minus elapsed,
// recomputed at this call).
func forwardHeaders(req *http.Request, rj *routedJob) {
	if rj.contentType != "" {
		req.Header.Set("Content-Type", rj.contentType)
	}
	req.Header.Set("Accept", "application/json")
	if rj.idemKey != "" {
		req.Header.Set("Idempotency-Key", rj.idemKey)
	}
	if rj.requestID != "" {
		req.Header.Set(obs.RequestIDHeader, rj.requestID)
	}
	if left, ok := remainingBudget(rj); ok && !rj.deadline.IsZero() {
		req.Header.Set(TimeoutHeader, strconv.FormatInt(left.Milliseconds()+1, 10))
	}
}

// retryableStatus reports whether a worker's rejection should move the job to
// the next ring replica: overload and drain answers (429/503) and transient
// upstream faults (502/504). Client errors pass through — no replica will
// judge a malformed upload differently.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forwardSubmit pushes a submission onto the ring: candidates are tried in
// ring order (primary, then replicas) with exponential backoff + jitter
// between attempts, and the deadline budget shrinks as attempts burn time.
// When every candidate is down — or there were none — the job is served by
// the embedded local server (graceful degradation to standalone).
func (g *Gateway) forwardSubmit(ctx context.Context, rj *routedJob) (*forwardOutcome, error) {
	cands := g.reg.Candidates(rj.key)
	var lastErr error
	for attempt := 0; attempt < g.cfg.ForwardAttempts && attempt < len(cands); attempt++ {
		if attempt > 0 {
			if err := g.backoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		if _, ok := remainingBudget(rj); !ok {
			return nil, fmt.Errorf("deadline exhausted after %d attempts", attempt)
		}
		target := cands[attempt]
		out, err := g.forwardOnce(ctx, rj, target)
		if err != nil {
			lastErr = err
			g.reg.ReportForward(target, false, err.Error())
			g.mRetries.With(target).Inc()
			g.log.Warn("forward attempt failed", "worker", target, "gw_job", rj.gwID, "err", err)
			continue
		}
		g.reg.ReportForward(target, true, "")
		if retryableStatus(out.status) {
			lastErr = fmt.Errorf("worker %s rejected the job: HTTP %d", target, out.status)
			g.mRetries.With(target).Inc()
			g.log.Warn("worker rejected job, trying next replica",
				"worker", target, "gw_job", rj.gwID, "status", out.status)
			continue
		}
		g.mForwards.With(target).Inc()
		return out, nil
	}
	if len(cands) == 0 {
		lastErr = errNoCandidates
	}
	// Standalone fallback: serve the job ourselves rather than failing it.
	g.log.Warn("no worker accepted job; serving locally", "gw_job", rj.gwID, "cause", lastErr)
	out, err := g.forwardLocal(ctx, rj)
	if err != nil {
		return nil, fmt.Errorf("%v (local fallback also failed: %w)", lastErr, err)
	}
	g.mLocalJobs.With().Inc()
	return out, nil
}

// backoff sleeps RetryBase·2^(attempt-1) plus up to 50% jitter, honoring ctx.
func (g *Gateway) backoff(ctx context.Context, attempt int) error {
	d := g.cfg.RetryBase << (attempt - 1)
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// forwardOnce performs one submission round trip against one worker.
func (g *Gateway) forwardOnce(ctx context.Context, rj *routedJob, target string) (*forwardOutcome, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, g.attemptTimeout(rj))
	defer cancel()
	url := target + rj.path
	if rj.query != "" {
		url += "?" + rj.query
	}
	req, err := http.NewRequestWithContext(attemptCtx, rj.method, url, bytes.NewReader(rj.body))
	if err != nil {
		return nil, err
	}
	forwardHeaders(req, rj)
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	return decodeOutcome(target, resp, body), nil
}

// attemptTimeout bounds one submission round trip: the configured worker
// timeout, shrunk to the job's remaining budget when that is tighter. The
// submission answer is immediate (202-style accept), so WorkerTimeout — not
// JobTimeout — is the right scale.
func (g *Gateway) attemptTimeout(rj *routedJob) time.Duration {
	d := g.cfg.WorkerTimeout
	if left, ok := remainingBudget(rj); ok && !rj.deadline.IsZero() && left < d {
		d = left
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// decodeOutcome folds an HTTP submission response into a forwardOutcome.
func decodeOutcome(worker string, resp *http.Response, body []byte) *forwardOutcome {
	out := &forwardOutcome{
		worker:   worker,
		status:   resp.StatusCode,
		header:   resp.Header,
		body:     body,
		replayed: resp.Header.Get("Idempotency-Replayed") == "true",
	}
	var m struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if json.Unmarshal(body, &m) == nil {
		out.remoteID = m.ID
		out.state = m.State
	}
	return out
}

// forwardLocal serves a submission with the embedded local server, in
// process. The response is decoded exactly like a remote worker's.
func (g *Gateway) forwardLocal(ctx context.Context, rj *routedJob) (*forwardOutcome, error) {
	hdr := http.Header{}
	if rj.idemKey != "" {
		hdr.Set("Idempotency-Key", rj.idemKey)
	}
	if rj.requestID != "" {
		hdr.Set(obs.RequestIDHeader, rj.requestID)
	}
	if left, ok := remainingBudget(rj); ok && !rj.deadline.IsZero() {
		hdr.Set(TimeoutHeader, strconv.FormatInt(left.Milliseconds()+1, 10))
	}
	rec, err := g.localRoundTrip(ctx, rj.method, rj.path, rj.query, rj.body, func(req *http.Request) {
		if rj.contentType != "" {
			req.Header.Set("Content-Type", rj.contentType)
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
	})
	if err != nil {
		return nil, err
	}
	resp := rec.Result()
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return decodeOutcome("", resp, body), nil
}

// localRoundTrip runs one request against the embedded local server's
// handler without touching the network. mutate (optional) adjusts headers
// before dispatch.
func (g *Gateway) localRoundTrip(ctx context.Context, method, path, query string, body []byte, mutate func(*http.Request)) (*httptest.ResponseRecorder, error) {
	url := path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	if mutate != nil {
		mutate(req)
	}
	rec := httptest.NewRecorder()
	g.localHandler.ServeHTTP(rec, req)
	return rec, nil
}

// fetchStatus asks a route's current owner for the job's state (used for
// idempotent replay answers).
func (g *Gateway) fetchStatus(r *http.Request, rj *routedJob) (*forwardOutcome, error) {
	g.mu.Lock()
	worker, remoteID := rj.worker, rj.remoteID
	g.mu.Unlock()
	path := fmt.Sprintf("/api/jobs/%d", remoteID)
	if worker == "" {
		rec, err := g.localRoundTrip(r.Context(), http.MethodGet, path, "", nil, nil)
		if err != nil {
			return nil, err
		}
		resp := rec.Result()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return decodeOutcome("", resp, body), nil
	}
	body, err := g.fetchWorker(r.Context(), worker, path)
	if err != nil {
		return nil, err
	}
	out := &forwardOutcome{worker: worker, status: http.StatusOK, body: body}
	var m struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if json.Unmarshal(body, &m) == nil {
		out.remoteID = m.ID
		out.state = m.State
	}
	return out, nil
}

// fetchWorker GETs a worker endpoint with the scatter-gather timeout and
// returns the body of a 2xx answer.
func (g *Gateway) fetchWorker(ctx context.Context, workerURL, path string) ([]byte, error) {
	fetchCtx, cancel := context.WithTimeout(ctx, g.cfg.WorkerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fetchCtx, http.MethodGet, workerURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s%s: HTTP %d", workerURL, path, resp.StatusCode)
	}
	return body, nil
}

// failoverWorker re-forwards every live routed job owned by a dead (or
// deregistered) worker to the next replica on the ring. The retained
// submission payload plus the original idempotency key make this safe: if
// the "dead" worker was actually alive and already ran the job, the replica
// runs it too but the results are deterministic and bit-identical, and a
// retry that lands back on the original dedupes outright.
func (g *Gateway) failoverWorker(deadURL string) {
	g.mu.Lock()
	var victims []*routedJob
	for _, rj := range g.routes {
		if rj.worker == deadURL && !rj.terminal && !rj.failingOver && g.canFailoverLocked(rj) {
			rj.failingOver = true
			victims = append(victims, rj)
		}
	}
	g.mu.Unlock()
	for _, rj := range victims {
		g.failoverRoute(rj)
	}
}

// canFailoverLocked reports whether a route's submission can be replayed
// elsewhere. Buffered submissions (multipart /jobs, /demo) always can.
// Chunked jobs can only while still uploading: the re-created shell has no
// chunks, and the client's offset polling restarts the transfer; past that
// point the payload only exists on the dead worker.
func (g *Gateway) canFailoverLocked(rj *routedJob) bool {
	if !rj.chunked {
		return rj.body != nil || rj.method == http.MethodGet
	}
	return rj.lastState == "" || rj.lastState == "uploading"
}

// failoverRoute re-forwards one job. On success the route is re-pointed at
// the new owner; on failure it stays pinned to the dead worker (clients see
// 502 until it returns or a later sweep succeeds).
func (g *Gateway) failoverRoute(rj *routedJob) {
	defer func() {
		g.mu.Lock()
		rj.failingOver = false
		g.mu.Unlock()
	}()
	out, err := g.forwardSubmit(context.Background(), rj)
	if err != nil {
		g.log.Error("failover failed; job pinned to dead worker",
			"gw_job", rj.gwID, "worker", rj.worker, "err", err)
		return
	}
	if out.status < 200 || out.status > 299 {
		g.log.Error("failover rejected by replica",
			"gw_job", rj.gwID, "status", out.status, "body", string(out.body))
		return
	}
	g.mu.Lock()
	from := rj.worker
	rj.worker = out.worker
	rj.remoteID = out.remoteID
	rj.failovers++
	if out.state != "" {
		rj.lastState = out.state
	}
	g.mu.Unlock()
	g.mFailovers.With(workerLabel(out.worker)).Inc()
	g.log.Info("job failed over",
		"gw_job", rj.gwID, "from", workerLabel(from), "to", workerLabel(out.worker),
		"remote_job", out.remoteID, "request_id", rj.requestID, "replayed", out.replayed)
}

// ringKeyForUpload computes the consistent-hash key for a buffered multipart
// submission: the core.CacheKey of the index the job will need, parsed from
// the reference part plus the b/sf form fields. Index affinity is the whole
// point — same reference and parameters always land on the same worker, so
// its index cache is already warm. Any parse trouble falls back to hashing
// the raw body (uniform spread, no affinity, still deterministic).
func (g *Gateway) ringKeyForUpload(contentType string, body []byte) string {
	key, err := ringKeyFromMultipart(contentType, body, g.cfg.FtabK)
	if err != nil {
		g.log.Warn("ring key: falling back to raw-body hash", "cause", err)
		return fmt.Sprintf("raw|%016x", ringHash(string(body)))
	}
	return key
}

// ringKeyFromMultipart extracts (reference, b, sf) from a multipart body and
// derives the index cache key via server.RingKey.
func ringKeyFromMultipart(contentType string, body []byte, ftabK int) (string, error) {
	mediaType, params, err := mime.ParseMediaType(contentType)
	if err != nil {
		return "", fmt.Errorf("content type: %w", err)
	}
	if !strings.HasPrefix(mediaType, "multipart/") {
		return "", fmt.Errorf("not multipart: %s", mediaType)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	var refRaw []byte
	b, sf := server.DefaultB, server.DefaultSF
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", fmt.Errorf("multipart: %w", err)
		}
		switch part.FormName() {
		case "reference":
			refRaw, err = io.ReadAll(part)
			if err != nil {
				return "", fmt.Errorf("reference part: %w", err)
			}
		case "b", "sf":
			raw, err := io.ReadAll(io.LimitReader(part, 64))
			if err == nil {
				if v, perr := strconv.Atoi(strings.TrimSpace(string(raw))); perr == nil {
					if part.FormName() == "b" {
						b = v
					} else {
						sf = v
					}
				}
			}
		}
		part.Close()
	}
	if len(refRaw) == 0 {
		return "", errors.New("no reference part")
	}
	return server.RingKey(refRaw, b, sf, ftabK)
}

// readAll drains r fully.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }

// isMaxBytes reports whether err came from http.MaxBytesReader.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// copyHeader copies the named headers between header maps, skipping absent
// ones.
func copyHeader(dst, src http.Header, names ...string) {
	for _, name := range names {
		if v := src.Get(name); v != "" {
			dst.Set(name, v)
		}
	}
}
