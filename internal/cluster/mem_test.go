package cluster

import (
	"bytes"
	"mime/multipart"
	"testing"
	"time"
)

// TestGatewayMemModePassthrough: the gateway forwards multipart bodies
// opaquely, so a mode=mem submission must reach the worker intact and the
// proxied results must come back as SAM, not TSV.
func TestGatewayMemModePassthrough(t *testing.T) {
	w := newWorker(t)
	g, ts := newGateway(t, nil, w.URL)
	waitHealthy(t, g, 1)

	ref, reads := testUpload(t, 5000, 99)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("backend", "cpu")
	mw.WriteField("mode", "mem")
	for name, data := range map[string][]byte{"reference": ref, "reads": reads} {
		fw, err := mw.CreateFormFile(name, name+".txt")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(data)
	}
	mw.Close()

	job, _ := submitJSON(t, ts.URL, bytes.NewReader(buf.Bytes()), mw.FormDataContentType(), nil)
	if got, _ := job["mode"].(string); got != "mem" {
		t.Fatalf("worker job record carries mode %q, want \"mem\"", got)
	}
	id := int(job["id"].(float64))

	final := waitGatewayJob(t, ts.URL, id, func(s string) bool { return s == "done" || s == "failed" }, 60*time.Second)
	if final["state"] != "done" {
		t.Fatalf("job finished %v: %v", final["state"], final["error"])
	}

	sam := fetchResults(t, ts.URL, id)
	if !bytes.HasPrefix(sam, []byte("@HD\t")) {
		t.Fatalf("gateway-proxied results are not SAM:\n%.200s", sam)
	}
	if !bytes.Contains(sam, []byte("@SQ\tSN:clusterref")) {
		t.Error("SAM header is missing the reference sequence line")
	}
}
