package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
	"bwaver/internal/server"
)

// testUpload renders a deterministic reference + read set sized for the test.
func testUpload(t *testing.T, length, seed int) (refFasta, readsFastq []byte) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: length, Seed: int64(seed), RepeatFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 20, Length: 40, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: int64(seed + 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "clusterref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	qw.Close()
	return fb.Bytes(), qb.Bytes()
}

// multipartJob builds a cpu-backend submission body.
func multipartJob(t *testing.T, refFasta, readsFastq []byte) (*bytes.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("backend", "cpu")
	for name, data := range map[string][]byte{"reference": refFasta, "reads": readsFastq} {
		fw, err := mw.CreateFormFile(name, name+".txt")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(data)
	}
	mw.Close()
	return bytes.NewReader(buf.Bytes()), mw.FormDataContentType()
}

// newWorker runs a real server behind a real listener, like -mode=worker.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.Open(server.Config{MaxConcurrentJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newGateway builds a started gateway (with its own embedded local server)
// over the given worker URLs, tuned for fast test heartbeats.
func newGateway(t *testing.T, mod func(*Config), workers ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	local, err := server.Open(server.Config{MaxConcurrentJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(local.Close)
	cfg := Config{
		Workers:           workers,
		HeartbeatInterval: 20 * time.Millisecond,
		WorkerTimeout:     time.Second,
		MissThreshold:     2,
		Cooldown:          250 * time.Millisecond,
		RetryBase:         10 * time.Millisecond,
		Local:             local,
	}
	if mod != nil {
		mod(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// waitHealthy blocks until the gateway sees the wanted number of healthy
// workers.
func waitHealthy(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if healthy, _ := g.reg.Counts(); healthy == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	healthy, total := g.reg.Counts()
	t.Fatalf("gateway never saw %d healthy workers (has %d/%d)", want, healthy, total)
}

// submitJSON posts a submission to the gateway with Accept: application/json
// and decodes the job payload.
func submitJSON(t *testing.T, base string, body *bytes.Reader, ctype string, hdr map[string]string) (map[string]any, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	req.Header.Set("Accept", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d: %.300s", resp.StatusCode, raw)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("submit response not JSON: %v\n%.300s", err, raw)
	}
	return m, resp
}

// waitGatewayJob polls the gateway's job status until ok(state).
func waitGatewayJob(t *testing.T, base string, id int, ok func(string) bool, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last map[string]any
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d", base, id))
		if err == nil {
			var m map[string]any
			derr := json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK {
				last = m
				if state, _ := m["state"].(string); ok(state) {
					return m
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("gateway job %d never reached the wanted state; last: %v", id, last)
	return nil
}

func fetchResults(t *testing.T, base string, id int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/results", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d: %.200s", resp.StatusCode, body)
	}
	return body
}

// TestGatewayForwardAndProxy: a submission through the gateway lands on a
// worker, the gateway namespace tracks it (status, results, list, trace), and
// the request id threads through to the worker's job record.
func TestGatewayForwardAndProxy(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	g, ts := newGateway(t, nil, w1.URL, w2.URL)
	waitHealthy(t, g, 2)

	ref, reads := testUpload(t, 5000, 42)
	body, ctype := multipartJob(t, ref, reads)
	job, resp := submitJSON(t, ts.URL, body, ctype, nil)
	if got := job["id"].(float64); got != 1 {
		t.Fatalf("gateway job id = %v, want 1", got)
	}
	owner, _ := job["worker"].(string)
	if owner != w1.URL && owner != w2.URL {
		t.Fatalf("job landed on %q, want one of the two workers", owner)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("gateway response carries no X-Request-Id")
	}

	final := waitGatewayJob(t, ts.URL, 1, func(s string) bool { return s == "done" || s == "failed" }, 60*time.Second)
	if final["state"] != "done" {
		t.Fatalf("job finished %v: %v", final["state"], final["error"])
	}
	if final["worker"] != owner {
		t.Fatalf("job moved from %v to %v without a failure", owner, final["worker"])
	}
	if got, _ := final["request_id"].(string); got != reqID {
		t.Fatalf("worker job record carries request_id %q, want the gateway's %q", got, reqID)
	}

	viaGateway := fetchResults(t, ts.URL, 1)
	if !bytes.HasPrefix(viaGateway, []byte("read\t")) {
		t.Fatalf("results look wrong:\n%.200s", viaGateway)
	}
	// The same rows must come straight off the owning worker (remote job 1 on
	// a fresh worker).
	direct := fetchResults(t, owner, 1)
	if !bytes.Equal(viaGateway, direct) {
		t.Error("gateway-proxied results differ from the worker's own")
	}

	// The gateway list shows the job under its gateway id and owner.
	lresp, err := http.Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list) != 1 || list[0]["id"].(float64) != 1 || list[0]["worker"] != owner {
		t.Fatalf("gateway job list = %v", list)
	}

	// The trace proxies through and is stamped with the request id.
	tresp, err := http.Get(ts.URL + "/api/jobs/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	traw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace returned %d: %.200s", tresp.StatusCode, traw)
	}
	if !bytes.Contains(traw, []byte(reqID)) {
		t.Errorf("trace does not mention request id %s:\n%.300s", reqID, traw)
	}
}

// TestGatewayIdempotentReplay: re-submitting with the same Idempotency-Key
// returns the same gateway job with the replay marker, not a second job.
func TestGatewayIdempotentReplay(t *testing.T) {
	w1 := newWorker(t)
	g, ts := newGateway(t, nil, w1.URL)
	waitHealthy(t, g, 1)

	ref, reads := testUpload(t, 5000, 43)
	body, ctype := multipartJob(t, ref, reads)
	job, _ := submitJSON(t, ts.URL, body, ctype, map[string]string{"Idempotency-Key": "same-key"})
	id := int(job["id"].(float64))

	body2, ctype2 := multipartJob(t, ref, reads)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", body2)
	req.Header.Set("Content-Type", ctype2)
	req.Header.Set("Accept", "application/json")
	req.Header.Set("Idempotency-Key", "same-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var replay map[string]any
	json.NewDecoder(resp.Body).Decode(&replay)
	resp.Body.Close()
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("replay response lacks Idempotency-Replayed: true")
	}
	if got := int(replay["id"].(float64)); got != id {
		t.Fatalf("replay returned job %d, want %d", got, id)
	}
	waitGatewayJob(t, ts.URL, id, func(s string) bool { return s == "done" }, 60*time.Second)
}

// TestGatewayMidJobFailover: SIGKILL-equivalent (listener torn down) on the
// owning worker mid-job; the heartbeat sweep must evict it and re-run the
// retained submission on the surviving replica, bit-identically.
func TestGatewayMidJobFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second mapping job")
	}
	w1, w2 := newWorker(t), newWorker(t)
	g, ts := newGateway(t, nil, w1.URL, w2.URL)
	waitHealthy(t, g, 2)

	ref, reads := testUpload(t, 250_000, 44)
	body, ctype := multipartJob(t, ref, reads)
	job, _ := submitJSON(t, ts.URL, body, ctype, nil)
	owner, _ := job["worker"].(string)
	survivor := w1
	victim := w2
	if owner == w1.URL {
		survivor, victim = w2, w1
	}
	victim.CloseClientConnections()
	victim.Close()

	final := waitGatewayJob(t, ts.URL, 1, func(s string) bool { return s == "done" || s == "failed" }, 90*time.Second)
	if final["state"] != "done" {
		t.Fatalf("job finished %v after failover: %v", final["state"], final["error"])
	}
	if final["worker"] != survivor.URL {
		t.Fatalf("job finished on %v, want the survivor %s", final["worker"], survivor.URL)
	}
	if fo, _ := final["failovers"].(float64); fo < 1 {
		t.Fatalf("job record reports %v failovers, want >= 1", final["failovers"])
	}
	viaGateway := fetchResults(t, ts.URL, 1)

	// Ground truth: the same upload run directly on the survivor maps
	// bit-identically.
	body2, ctype2 := multipartJob(t, ref, reads)
	req, _ := http.NewRequest(http.MethodPost, survivor.URL+"/jobs", body2)
	req.Header.Set("Content-Type", ctype2)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var direct map[string]any
	json.NewDecoder(resp.Body).Decode(&direct)
	resp.Body.Close()
	directID := int(direct["id"].(float64))
	deadline := time.Now().Add(90 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d", survivor.URL, directID))
		state := ""
		if err == nil {
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			state, _ = m["state"].(string)
		}
		if state == "done" {
			break
		}
		if state == "failed" || time.Now().After(deadline) {
			t.Fatalf("verification job state %q", state)
		}
		time.Sleep(20 * time.Millisecond)
	}
	groundTruth := fetchResults(t, survivor.URL, directID)
	if !bytes.Equal(viaGateway, groundTruth) {
		t.Error("failed-over results differ from a direct run of the same upload")
	}

	// The eviction is visible in cluster health.
	hresp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if ev, _ := health["evictions"].(float64); ev < 1 {
		t.Errorf("health reports %v evictions, want >= 1", health["evictions"])
	}
}

// TestGatewayDegradedLocal: with zero workers the gateway reports "degraded"
// and serves jobs itself through the embedded standalone server.
func TestGatewayDegradedLocal(t *testing.T) {
	g, ts := newGateway(t, nil)
	_ = g

	hresp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if health["status"] != "degraded" || health["role"] != "gateway" {
		t.Fatalf("health = %v, want degraded gateway", health)
	}

	ref, reads := testUpload(t, 5000, 45)
	body, ctype := multipartJob(t, ref, reads)
	job, _ := submitJSON(t, ts.URL, body, ctype, nil)
	if job["worker"] != "local" {
		t.Fatalf("degraded submission served by %v, want local", job["worker"])
	}
	final := waitGatewayJob(t, ts.URL, 1, func(s string) bool { return s == "done" || s == "failed" }, 60*time.Second)
	if final["state"] != "done" {
		t.Fatalf("local job finished %v: %v", final["state"], final["error"])
	}
	if res := fetchResults(t, ts.URL, 1); !bytes.HasPrefix(res, []byte("read\t")) {
		t.Fatalf("local results look wrong:\n%.200s", res)
	}
}

// fakeWorker is a scriptable worker endpoint: healthy heartbeats, a custom
// submission handler, and a stats handler.
func fakeWorker(t *testing.T, submit http.HandlerFunc, stats http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","draining":false,"queue_depth":0,"jobs_in_flight":0}`)
	})
	if submit != nil {
		mux.HandleFunc("POST /jobs", submit)
	}
	if stats != nil {
		mux.HandleFunc("/api/stats", stats)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayDeadlinePropagation is the satellite-fix regression test: a
// retried forward must carry deadline-minus-elapsed, not a fresh budget.
func TestGatewayDeadlinePropagation(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	budgets := map[int64]int64{} // call # -> X-Bwaver-Timeout-Ms
	idemKeys := map[int64]string{}
	submit := func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		ms, _ := io.ReadAll(io.LimitReader(strings.NewReader(r.Header.Get(TimeoutHeader)), 64))
		var v int64
		fmt.Sscanf(string(ms), "%d", &v)
		mu.Lock()
		budgets[n] = v
		idemKeys[n] = r.Header.Get("Idempotency-Key")
		mu.Unlock()
		if n == 1 {
			// First attempt: shed the job so the gateway retries on the next
			// replica after backoff.
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"id":7,"state":"queued"}`)
	}
	f1 := fakeWorker(t, submit, nil)
	f2 := fakeWorker(t, submit, nil)
	g, ts := newGateway(t, func(c *Config) {
		c.JobTimeout = 5 * time.Second
		c.RetryBase = 60 * time.Millisecond
	}, f1.URL, f2.URL)
	waitHealthy(t, g, 2)

	ref, reads := testUpload(t, 5000, 46)
	body, ctype := multipartJob(t, ref, reads)
	job, _ := submitJSON(t, ts.URL, body, ctype, nil)
	if got := int(job["id"].(float64)); got != 1 {
		t.Fatalf("gateway job id = %d, want 1", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if calls.Load() != 2 {
		t.Fatalf("fake workers saw %d submissions, want 2 (one rejection, one accept)", calls.Load())
	}
	b1, b2 := budgets[1], budgets[2]
	if b1 <= 0 || b1 > 5001 {
		t.Fatalf("first attempt budget %dms, want (0, 5001]", b1)
	}
	if b2 >= b1 {
		t.Fatalf("retry budget %dms did not shrink from the first attempt's %dms", b2, b1)
	}
	// The backoff alone burns >= 60ms of the budget.
	if b1-b2 < 50 {
		t.Errorf("retry budget shrank only %dms; elapsed time is not being subtracted", b1-b2)
	}
	if idemKeys[1] == "" || idemKeys[1] != idemKeys[2] {
		t.Fatalf("attempts carried different idempotency keys: %q vs %q", idemKeys[1], idemKeys[2])
	}
}

// TestGatewayScatterGatherHungWorker: one hung worker costs a stats scrape at
// most WorkerTimeout and shows up as an error entry, not a stall.
func TestGatewayScatterGatherHungWorker(t *testing.T) {
	hung := fakeWorker(t, nil, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // the gateway's per-worker timeout fired
		case <-time.After(10 * time.Second):
		}
	})
	g, ts := newGateway(t, func(c *Config) {
		c.WorkerTimeout = 200 * time.Millisecond
	}, hung.URL)
	waitHealthy(t, g, 1)

	start := time.Now()
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("stats scrape took %v with one hung worker, want ~WorkerTimeout", elapsed)
	}
	workers, _ := stats["workers"].(map[string]any)
	entry, _ := workers[hung.URL].(map[string]any)
	if msg, _ := entry["error"].(string); msg == "" {
		t.Fatalf("hung worker's stats entry carries no error: %v", workers)
	}
	if _, ok := stats["local"]; !ok {
		t.Fatal("scatter response lacks the local stats block")
	}
	if _, ok := stats["cluster"]; !ok {
		t.Fatal("scatter response lacks the cluster counters block")
	}
}

// TestGatewayRegisterValidation: the register API rejects junk and admits
// well-formed workers idempotently.
func TestGatewayRegisterValidation(t *testing.T) {
	g, ts := newGateway(t, nil)
	for _, bad := range []string{`{"url":""}`, `{"url":"not-a-url"}`, `nonsense`} {
		resp, err := http.Post(ts.URL+"/cluster/register", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register %q returned %d, want 400", bad, resp.StatusCode)
		}
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/cluster/register", "application/json",
			strings.NewReader(`{"url":"http://127.0.0.1:1/"}`))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out["registered"] != true || out["workers"].(float64) != 1 {
			t.Fatalf("register attempt %d: %v", i, out)
		}
	}
	if got := g.reg.Workers(); len(got) != 1 || got[0] != "http://127.0.0.1:1" {
		t.Fatalf("registry = %v", got)
	}
}
