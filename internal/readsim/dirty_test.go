package readsim

import (
	"bytes"
	"strings"
	"testing"

	"bwaver/internal/fastx"
)

func dirtyReads(n, length int) []FastqRead {
	out := make([]FastqRead, n)
	seq := []byte(strings.Repeat("ACGT", (length+3)/4)[:length])
	for i := range out {
		out[i] = FastqRead{ID: sprintfID(i), Seq: seq}
	}
	return out
}

func sprintfID(i int) string {
	return "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestWriteDirtyFastqClean(t *testing.T) {
	var buf bytes.Buffer
	st, err := WriteDirtyFastq(&buf, dirtyReads(50, 40), DirtyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 || st.Records != 50 {
		t.Fatalf("stats = %+v", st)
	}
	recs, err := fastx.ReadAll(&buf)
	if err != nil {
		t.Fatalf("clean output rejected by strict parser: %v", err)
	}
	if len(recs) != 50 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if len(r.Qual) != len(r.Seq) {
			t.Fatal("generated qualities inconsistent")
		}
	}
}

func TestWriteDirtyFastqInjection(t *testing.T) {
	var buf bytes.Buffer
	cfg := DirtyConfig{MalformedFrac: 0.2, NFrac: 0.3, QualDrop: 0.3, Seed: 7}
	st, err := WriteDirtyFastq(&buf, dirtyReads(200, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed == 0 || st.NInjected == 0 || st.QualDropped == 0 {
		t.Fatalf("nothing injected: %+v", st)
	}
	// The strict parser must choke on the corpus...
	if _, err := fastx.ReadAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("strict parser accepted a malformed corpus")
	}
	// ...while the tolerant decoder recovers every clean record.
	recs, recErrs, err := fastx.ReadAllTolerant(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recErrs) == 0 {
		t.Fatal("tolerant decode saw no malformed records")
	}
	if len(recs) != st.Records-st.Malformed {
		t.Fatalf("recovered %d records, want the %d clean ones (of %d)",
			len(recs), st.Records-st.Malformed, st.Records)
	}
	// Determinism: the same seed corrupts the same records.
	var buf2 bytes.Buffer
	st2, err := WriteDirtyFastq(&buf2, dirtyReads(200, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st || !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("dirty corpus generation is not deterministic")
	}
}
