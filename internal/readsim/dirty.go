package readsim

import (
	"fmt"
	"io"
	"math/rand"
)

// Dirty-corpus generation: real FASTQ traffic carries malformed records,
// ambiguous-base runs, and collapsed 3' quality tails. This writer injects
// all three at controlled rates so the tolerant decoder and the QC gate can
// be exercised against corpora with known ground truth.

// FastqRead is one record to emit: the raw sequence plus an optional
// quality string (generated when empty).
type FastqRead struct {
	ID  string
	Seq []byte
	// Qual overrides the generated quality string when non-empty; it must
	// match len(Seq).
	Qual []byte
}

// DirtyConfig controls corruption injection for WriteDirtyFastq. The zero
// value writes a clean phred+33 FASTQ file.
type DirtyConfig struct {
	// MalformedFrac is the fraction of records emitted malformed (short
	// quality line, missing '+' separator, corrupted header, stray blank
	// garbage). The first record is always emitted clean so the format
	// stays detectable.
	MalformedFrac float64
	// NFrac is the fraction of reads that get a run of 'N's spliced into
	// their sequence (quality bytes are kept consistent).
	NFrac float64
	// QualDrop is the fraction of reads whose 3' tail quality collapses to
	// TailQual over the last third of the read.
	QualDrop float64
	// BaseQual is the phred score of clean bases; 0 defaults to 35.
	BaseQual int
	// TailQual is the phred score of collapsed tails; 0 defaults to 2.
	TailQual int
	// Seed makes injection reproducible.
	Seed int64
}

func (c DirtyConfig) withDefaults() DirtyConfig {
	if c.BaseQual == 0 {
		c.BaseQual = 35
	}
	if c.TailQual == 0 {
		c.TailQual = 2
	}
	return c
}

// Validate bounds the fractions.
func (c DirtyConfig) Validate() error {
	for _, f := range []float64{c.MalformedFrac, c.NFrac, c.QualDrop} {
		if f < 0 || f > 1 {
			return fmt.Errorf("readsim: dirty fraction %v outside [0,1]", f)
		}
	}
	return nil
}

// DirtyStats reports what the writer actually injected.
type DirtyStats struct {
	// Records is the number of records emitted (clean + malformed).
	Records int
	// Malformed counts records emitted in a broken form.
	Malformed int
	// NInjected counts reads that received an N run.
	NInjected int
	// QualDropped counts reads whose 3' tail was collapsed.
	QualDropped int
}

// WriteDirtyFastq emits reads as phred+33 FASTQ with corruption injected at
// the configured rates. Records are written raw (not through fastx.Writer,
// which refuses inconsistent records by design). Injection is positional
// and seeded, so the same config over the same reads always corrupts the
// same records — tests can predict exactly which reads survive.
func WriteDirtyFastq(w io.Writer, reads []FastqRead, cfg DirtyConfig) (DirtyStats, error) {
	if err := cfg.Validate(); err != nil {
		return DirtyStats{}, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st DirtyStats
	for i, rd := range reads {
		seq := append([]byte(nil), rd.Seq...)
		qual := rd.Qual
		if len(qual) != len(seq) {
			qual = flatQual(len(seq), cfg.BaseQual)
		} else {
			qual = append([]byte(nil), qual...)
		}
		if rng.Float64() < cfg.NFrac && len(seq) > 0 {
			injectNs(rng, seq)
			st.NInjected++
		}
		if rng.Float64() < cfg.QualDrop && len(seq) >= 3 {
			tail := len(seq) / 3
			for j := len(qual) - tail; j < len(qual); j++ {
				qual[j] = byte(33 + cfg.TailQual)
			}
			st.QualDropped++
		}
		st.Records++
		if i > 0 && rng.Float64() < cfg.MalformedFrac {
			st.Malformed++
			if err := writeMalformed(w, rng, rd.ID, seq, qual); err != nil {
				return st, err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "@%s\n%s\n+\n%s\n", rd.ID, seq, qual); err != nil {
			return st, err
		}
	}
	return st, nil
}

// flatQual builds a quality string at one phred score.
func flatQual(n, q int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(33 + q)
	}
	return out
}

// injectNs splices a short run of 'N's at a random position.
func injectNs(rng *rand.Rand, seq []byte) {
	run := 3 + rng.Intn(8)
	if run > len(seq) {
		run = len(seq)
	}
	at := rng.Intn(len(seq) - run + 1)
	for j := at; j < at+run; j++ {
		seq[j] = 'N'
	}
}

// writeMalformed emits one record in a randomly-chosen broken form. Every
// form keeps later records recoverable by the tolerant decoder's resync.
func writeMalformed(w io.Writer, rng *rand.Rand, id string, seq, qual []byte) error {
	switch rng.Intn(4) {
	case 0: // quality line shorter than the sequence
		cut := len(qual) / 2
		_, err := fmt.Fprintf(w, "@%s\n%s\n+\n%s\n", id, seq, qual[:cut])
		return err
	case 1: // missing '+' separator
		_, err := fmt.Fprintf(w, "@%s\n%s\n%s\n", id, seq, qual)
		return err
	case 2: // header lost its '@'
		_, err := fmt.Fprintf(w, "%s\n%s\n+\n%s\n", id, seq, qual)
		return err
	default: // record torn mid-way, stray blank line behind it
		_, err := fmt.Fprintf(w, "@%s\n%s\n\n", id, seq)
		return err
	}
}
