package readsim

import (
	"math"
	"strings"
	"testing"

	"bwaver/internal/dna"
)

func TestGenomeLengthAndDeterminism(t *testing.T) {
	cfg := GenomeConfig{Length: 10000, GC: 0.5, RepeatFraction: 0.2, Seed: 42}
	a, err := Genome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10000 {
		t.Fatalf("length %d, want 10000", len(a))
	}
	b, err := Genome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different genomes")
	}
	c, err := Genome(GenomeConfig{Length: 10000, GC: 0.5, RepeatFraction: 0.2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenomeGCContent(t *testing.T) {
	for _, gc := range []float64{0.3, 0.5, 0.7} {
		g, err := Genome(GenomeConfig{Length: 200000, GC: gc, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := g.GC(); math.Abs(got-gc) > 0.02 {
			t.Errorf("GC target %v, measured %v", gc, got)
		}
	}
}

func TestGenomeValidation(t *testing.T) {
	bad := []GenomeConfig{
		{Length: -1},
		{Length: 10, GC: 1.5},
		{Length: 10, GC: -0.1},
		{Length: 10, RepeatFraction: 1.0},
		{Length: 10, RepeatFraction: -0.2},
	}
	for _, cfg := range bad {
		if _, err := Genome(cfg); err == nil {
			t.Errorf("Genome(%+v) accepted invalid config", cfg)
		}
	}
	g, err := Genome(GenomeConfig{Length: 0, Seed: 1})
	if err != nil || len(g) != 0 {
		t.Errorf("zero-length genome: %v %v", g, err)
	}
}

func TestRepeatsIncreaseSelfSimilarity(t *testing.T) {
	// Count distinct 16-mers: a repeat-rich genome has fewer.
	distinct := func(g dna.Seq) int {
		seen := make(map[string]struct{})
		s := g.String()
		for i := 0; i+16 <= len(s); i += 4 {
			seen[s[i:i+16]] = struct{}{}
		}
		return len(seen)
	}
	plain, err := Genome(GenomeConfig{Length: 150000, Seed: 7, RepeatFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	repeaty, err := Genome(GenomeConfig{Length: 150000, Seed: 7, RepeatFraction: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if distinct(repeaty) >= distinct(plain) {
		t.Errorf("repeats did not reduce distinct k-mers: %d vs %d", distinct(repeaty), distinct(plain))
	}
}

func TestPaperScalePresets(t *testing.T) {
	e, err := EColiLike(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != EColiLength/100 {
		t.Errorf("EColiLike scale: %d, want %d", len(e), EColiLength/100)
	}
	c, err := Chr21Like(1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.001
	wantLen := int(float64(Chr21Length) * scale)
	if len(c) != wantLen {
		t.Errorf("Chr21Like scale: %d", len(c))
	}
	if _, err := EColiLike(1, 0); err == nil {
		t.Error("accepted scale 0")
	}
	if _, err := EColiLike(1, 1.5); err == nil {
		t.Error("accepted scale > 1")
	}
}

func TestSimulateMappingRatio(t *testing.T) {
	ref, err := Genome(GenomeConfig{Length: 50000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, ratio := range []float64{0, 0.25, 0.5, 1} {
		reads, err := Simulate(ref, ReadsConfig{Count: 1000, Length: 50, MappingRatio: ratio, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		mapped := 0
		for _, r := range reads {
			if len(r.Seq) != 50 {
				t.Fatalf("read length %d, want 50", len(r.Seq))
			}
			if r.Origin >= 0 {
				mapped++
				// Forward-strand reads must be exact substrings.
				if !r.RevStrand {
					if !r.Seq.Equal(ref[r.Origin : r.Origin+50]) {
						t.Fatal("mapped forward read is not a reference substring")
					}
				} else if !r.Seq.ReverseComplement().Equal(ref[r.Origin : r.Origin+50]) {
					t.Fatal("mapped reverse read does not reverse-complement to the reference")
				}
			}
		}
		want := int(1000*ratio + 0.5)
		if mapped != want {
			t.Errorf("ratio %v: %d mapped reads, want %d", ratio, mapped, want)
		}
	}
}

func TestSimulateRevCompFraction(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 20000, Seed: 5})
	reads, err := Simulate(ref, ReadsConfig{Count: 2000, Length: 40, MappingRatio: 1, RevCompFraction: 0.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rev := 0
	for _, r := range reads {
		if r.RevStrand {
			rev++
		}
	}
	if rev < 800 || rev > 1200 {
		t.Errorf("reverse-strand count %d outside [800,1200] for fraction 0.5", rev)
	}
}

func TestSimulateUniqueIDs(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 1000, Seed: 1})
	reads, err := Simulate(ref, ReadsConfig{Count: 500, Length: 20, MappingRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range reads {
		if seen[r.ID] {
			t.Fatalf("duplicate read ID %q", r.ID)
		}
		if !strings.HasPrefix(r.ID, "read") {
			t.Fatalf("unexpected ID format %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSimulateValidation(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 100, Seed: 1})
	bad := []ReadsConfig{
		{Count: -1, Length: 10},
		{Count: 10, Length: 0},
		{Count: 10, Length: 10, MappingRatio: 1.5},
		{Count: 10, Length: 10, MappingRatio: -0.5},
		{Count: 10, Length: 10, MappingRatio: 0.5, RevCompFraction: 2},
		{Count: 10, Length: 200, MappingRatio: 1}, // longer than ref
	}
	for _, cfg := range bad {
		if _, err := Simulate(ref, cfg); err == nil {
			t.Errorf("Simulate(%+v) accepted invalid config", cfg)
		}
	}
	// Reads longer than the reference are fine when nothing has to map.
	if _, err := Simulate(ref, ReadsConfig{Count: 5, Length: 200, MappingRatio: 0}); err != nil {
		t.Errorf("unmapped long reads rejected: %v", err)
	}
}

func TestSeqs(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 1000, Seed: 1})
	reads, _ := Simulate(ref, ReadsConfig{Count: 10, Length: 20, MappingRatio: 1, Seed: 4})
	seqs := Seqs(reads)
	if len(seqs) != 10 {
		t.Fatalf("Seqs returned %d, want 10", len(seqs))
	}
	for i := range seqs {
		if !seqs[i].Equal(reads[i].Seq) {
			t.Fatal("Seqs order mismatch")
		}
	}
}

func TestSimulateDeterminism(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 5000, Seed: 1})
	cfg := ReadsConfig{Count: 100, Length: 30, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: 77}
	a, _ := Simulate(ref, cfg)
	b, _ := Simulate(ref, cfg)
	for i := range a {
		if !a[i].Seq.Equal(b[i].Seq) || a[i].Origin != b[i].Origin {
			t.Fatal("same seed produced different read sets")
		}
	}
}

func TestSimulateErrorRate(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 30000, Seed: 6})
	reads, err := Simulate(ref, ReadsConfig{
		Count: 1000, Length: 100, MappingRatio: 1, ErrorRate: 0.02, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalErrors := 0
	for _, r := range reads {
		totalErrors += r.Errors
		// The recorded error count must equal the Hamming distance to the
		// originating window (on the correct strand).
		window := ref[r.Origin : r.Origin+100]
		seq := r.Seq
		if r.RevStrand {
			seq = seq.ReverseComplement()
		}
		mm := 0
		for j := range window {
			if window[j] != seq[j] {
				mm++
			}
		}
		if mm != r.Errors {
			t.Fatalf("read %s: recorded %d errors, Hamming distance %d", r.ID, r.Errors, mm)
		}
	}
	// Expect ~2 errors per 100 bp read; allow generous slack.
	mean := float64(totalErrors) / 1000
	if mean < 1.2 || mean > 2.8 {
		t.Errorf("mean errors per read %v, want ~2", mean)
	}
}

func TestSimulateErrorRateZeroExact(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 5000, Seed: 7})
	reads, err := Simulate(ref, ReadsConfig{Count: 200, Length: 50, MappingRatio: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if r.Errors != 0 {
			t.Fatalf("read %s has %d errors at rate 0", r.ID, r.Errors)
		}
	}
}

func TestSimulateErrorRateValidation(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 1000, Seed: 1})
	for _, rate := range []float64{-0.1, 1.0, 2.0} {
		if _, err := Simulate(ref, ReadsConfig{Count: 5, Length: 10, ErrorRate: rate}); err == nil {
			t.Errorf("accepted error rate %v", rate)
		}
	}
}
