package readsim

import (
	"fmt"
	"math/rand"

	"bwaver/internal/dna"
)

// Paired-end simulation. Illumina-style sequencing reads both ends of a
// DNA fragment: R1 is the forward strand of the fragment's left end and R2
// the reverse complement of its right end (FR orientation). Mapping tools
// exploit the known fragment-length distribution to pair the two mates'
// hits; core.MapPairs consumes these simulated pairs.

// PairConfig controls paired-end read simulation.
type PairConfig struct {
	// Count is the number of pairs.
	Count int
	// ReadLength is the length of each mate.
	ReadLength int
	// InsertMean and InsertStdDev describe the fragment (outer insert)
	// length distribution; InsertMean must be >= 2*ReadLength.
	InsertMean, InsertStdDev int
	// MappingRatio is the fraction of pairs drawn from the reference.
	MappingRatio float64
	// ErrorRate is the per-base substitution probability.
	ErrorRate float64
	// Seed makes generation reproducible.
	Seed int64
}

// Pair is one simulated read pair.
type Pair struct {
	ID string
	// R1 is the fragment's left end read on the forward strand; R2 is the
	// right end read on the reverse strand (stored reverse-complemented,
	// as sequencers emit it).
	R1, R2 dna.Seq
	// Origin is the fragment's leftmost reference position, -1 for random
	// pairs.
	Origin int
	// Insert is the fragment length (outer distance), 0 for random pairs.
	Insert int
	// Errors counts injected substitutions across both mates.
	Errors int
}

// SimulatePairs draws a paired-end read set from ref.
func SimulatePairs(ref dna.Seq, cfg PairConfig) ([]Pair, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("readsim: negative pair count %d", cfg.Count)
	}
	if cfg.ReadLength <= 0 {
		return nil, fmt.Errorf("readsim: read length %d must be positive", cfg.ReadLength)
	}
	if cfg.InsertMean < 2*cfg.ReadLength {
		return nil, fmt.Errorf("readsim: insert mean %d below twice the read length %d", cfg.InsertMean, cfg.ReadLength)
	}
	if cfg.InsertStdDev < 0 {
		return nil, fmt.Errorf("readsim: negative insert std dev %d", cfg.InsertStdDev)
	}
	if cfg.MappingRatio < 0 || cfg.MappingRatio > 1 {
		return nil, fmt.Errorf("readsim: mapping ratio %v outside [0,1]", cfg.MappingRatio)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("readsim: error rate %v outside [0,1)", cfg.ErrorRate)
	}
	maxInsert := cfg.InsertMean + 4*cfg.InsertStdDev
	if cfg.MappingRatio > 0 && maxInsert > len(ref) {
		return nil, fmt.Errorf("readsim: inserts up to %d exceed reference length %d", maxInsert, len(ref))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Pair, cfg.Count)
	nMapped := int(float64(cfg.Count)*cfg.MappingRatio + 0.5)
	for i := range out {
		p := &out[i]
		p.ID = fmt.Sprintf("pair%08d", i)
		if i >= nMapped {
			p.Origin = -1
			p.R1 = randomSeq(rng, cfg.ReadLength)
			p.R2 = randomSeq(rng, cfg.ReadLength)
			continue
		}
		insert := cfg.InsertMean
		if cfg.InsertStdDev > 0 {
			insert += int(rng.NormFloat64() * float64(cfg.InsertStdDev))
		}
		if insert < 2*cfg.ReadLength {
			insert = 2 * cfg.ReadLength
		}
		if insert > len(ref) {
			insert = len(ref)
		}
		pos := rng.Intn(len(ref) - insert + 1)
		p.Origin = pos
		p.Insert = insert
		p.R1 = ref[pos : pos+cfg.ReadLength].Clone()
		p.R2 = ref[pos+insert-cfg.ReadLength : pos+insert].ReverseComplement()
		for _, mate := range []dna.Seq{p.R1, p.R2} {
			for j := range mate {
				if rng.Float64() < cfg.ErrorRate {
					mate[j] = dna.Base((int(mate[j]) + 1 + rng.Intn(3)) % dna.AlphabetSize)
					p.Errors++
				}
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

func randomSeq(rng *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(dna.AlphabetSize))
	}
	return s
}
