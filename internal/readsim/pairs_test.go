package readsim

import (
	"math"
	"testing"
)

func TestSimulatePairsTruth(t *testing.T) {
	ref, err := Genome(GenomeConfig{Length: 30000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SimulatePairs(ref, PairConfig{
		Count: 400, ReadLength: 50, InsertMean: 300, InsertStdDev: 25,
		MappingRatio: 0.75, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 400 {
		t.Fatalf("%d pairs", len(pairs))
	}
	mapped := 0
	var insertSum float64
	for _, p := range pairs {
		if len(p.R1) != 50 || len(p.R2) != 50 {
			t.Fatalf("pair %s mate lengths %d/%d", p.ID, len(p.R1), len(p.R2))
		}
		if p.Origin < 0 {
			if p.Insert != 0 {
				t.Errorf("random pair %s has insert %d", p.ID, p.Insert)
			}
			continue
		}
		mapped++
		insertSum += float64(p.Insert)
		// R1 is the fragment's left end, forward strand.
		if !p.R1.Equal(ref[p.Origin : p.Origin+50]) {
			t.Fatalf("pair %s R1 mismatch", p.ID)
		}
		// R2 is the right end, reverse strand.
		right := ref[p.Origin+p.Insert-50 : p.Origin+p.Insert]
		if !p.R2.ReverseComplement().Equal(right) {
			t.Fatalf("pair %s R2 mismatch", p.ID)
		}
		if p.Insert < 100 || p.Origin+p.Insert > len(ref) {
			t.Fatalf("pair %s insert %d out of range", p.ID, p.Insert)
		}
	}
	if mapped != 300 {
		t.Errorf("%d mapped pairs, want 300", mapped)
	}
	if mean := insertSum / float64(mapped); math.Abs(mean-300) > 10 {
		t.Errorf("mean insert %v, want ~300", mean)
	}
}

func TestSimulatePairsWithErrors(t *testing.T) {
	ref, err := Genome(GenomeConfig{Length: 20000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SimulatePairs(ref, PairConfig{
		Count: 300, ReadLength: 60, InsertMean: 250, MappingRatio: 1,
		ErrorRate: 0.01, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalErrors := 0
	for _, p := range pairs {
		totalErrors += p.Errors
		// Hamming distance across both mates must equal the error count.
		mm := 0
		left := ref[p.Origin : p.Origin+60]
		right := ref[p.Origin+p.Insert-60 : p.Origin+p.Insert]
		r2 := p.R2.ReverseComplement()
		for i := 0; i < 60; i++ {
			if p.R1[i] != left[i] {
				mm++
			}
			if r2[i] != right[i] {
				mm++
			}
		}
		if mm != p.Errors {
			t.Fatalf("pair %s: %d errors recorded, %d observed", p.ID, p.Errors, mm)
		}
	}
	// ~1.2 errors per pair on average (120 bases at 1%).
	mean := float64(totalErrors) / 300
	if mean < 0.6 || mean > 2.0 {
		t.Errorf("mean errors per pair %v, want ~1.2", mean)
	}
}

func TestSimulatePairsDeterminism(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 10000, Seed: 25})
	cfg := PairConfig{Count: 50, ReadLength: 40, InsertMean: 200, MappingRatio: 0.5, Seed: 26}
	a, err := SimulatePairs(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePairs(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].R1.Equal(b[i].R1) || !a[i].R2.Equal(b[i].R2) || a[i].Origin != b[i].Origin {
			t.Fatal("same seed produced different pairs")
		}
	}
}

func TestSimulatePairsUniqueIDs(t *testing.T) {
	ref, _ := Genome(GenomeConfig{Length: 5000, Seed: 27})
	pairs, err := SimulatePairs(ref, PairConfig{Count: 100, ReadLength: 30, InsertMean: 100, MappingRatio: 1, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if seen[p.ID] {
			t.Fatalf("duplicate pair ID %q", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestSimulatePairsInsertClamping(t *testing.T) {
	// Huge std dev: inserts must stay within [2*readLen, len(ref)].
	ref, _ := Genome(GenomeConfig{Length: 2000, Seed: 29})
	pairs, err := SimulatePairs(ref, PairConfig{
		Count: 200, ReadLength: 50, InsertMean: 150, InsertStdDev: 100, MappingRatio: 1, Seed: 30,
	})
	if err == nil {
		for _, p := range pairs {
			if p.Insert < 100 || p.Insert > 2000 {
				t.Fatalf("insert %d out of bounds", p.Insert)
			}
		}
	}
	// (The config may also be rejected because mean+4sd exceeds the
	// reference; both behaviours are acceptable for this stress case.)
}
