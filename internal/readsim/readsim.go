// Package readsim generates the synthetic workloads BWaveR-Go is evaluated
// on: reference genomes with realistic repeat structure and short-read sets
// with a controlled mapping ratio.
//
// The paper evaluates on E. coli U00096.3 and human chromosome 21
// (GRCh38.p12) with simulated 35-100 bp read sets of known mapping ratio.
// Those exact sequences are proprietary-free but unavailable offline, so
// this package substitutes seeded synthetic genomes at the same lengths and
// GC content, with repeats injected so the BWT develops the run structure
// (low zero-order entropy) that real genomes give the RRR encoding. See
// DESIGN.md's substitution table.
package readsim

import (
	"fmt"
	"math/rand"

	"bwaver/internal/dna"
)

// GenomeConfig controls synthetic genome generation.
type GenomeConfig struct {
	// Length is the genome size in bases.
	Length int
	// GC is the target G+C fraction, in (0,1); 0 means 0.5.
	GC float64
	// RepeatFraction is the fraction of the genome rewritten by copying
	// earlier segments, in [0,1). Repeats drive BWT compressibility.
	RepeatFraction float64
	// RepeatMinLen and RepeatMaxLen bound the copied segment lengths;
	// zero values default to 200 and 5000.
	RepeatMinLen, RepeatMaxLen int
	// Seed makes generation reproducible.
	Seed int64
}

func (c GenomeConfig) withDefaults() GenomeConfig {
	if c.GC == 0 {
		c.GC = 0.5
	}
	if c.RepeatMinLen == 0 {
		c.RepeatMinLen = 200
	}
	if c.RepeatMaxLen == 0 {
		c.RepeatMaxLen = 5000
	}
	if c.RepeatMaxLen < c.RepeatMinLen {
		c.RepeatMaxLen = c.RepeatMinLen
	}
	return c
}

// Genome generates a synthetic genome.
func Genome(cfg GenomeConfig) (dna.Seq, error) {
	cfg = cfg.withDefaults()
	if cfg.Length < 0 {
		return nil, fmt.Errorf("readsim: negative genome length %d", cfg.Length)
	}
	if cfg.GC <= 0 || cfg.GC >= 1 {
		return nil, fmt.Errorf("readsim: GC content %v outside (0,1)", cfg.GC)
	}
	if cfg.RepeatFraction < 0 || cfg.RepeatFraction >= 1 {
		return nil, fmt.Errorf("readsim: repeat fraction %v outside [0,1)", cfg.RepeatFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := make(dna.Seq, cfg.Length)
	for i := range g {
		if rng.Float64() < cfg.GC {
			if rng.Intn(2) == 0 {
				g[i] = dna.G
			} else {
				g[i] = dna.C
			}
		} else {
			if rng.Intn(2) == 0 {
				g[i] = dna.A
			} else {
				g[i] = dna.T
			}
		}
	}
	// Inject repeats: copy random earlier segments over later positions
	// until the requested fraction of bases has been rewritten.
	if cfg.Length > 2*cfg.RepeatMaxLen {
		rewritten := 0
		target := int(cfg.RepeatFraction * float64(cfg.Length))
		for rewritten < target {
			l := cfg.RepeatMinLen + rng.Intn(cfg.RepeatMaxLen-cfg.RepeatMinLen+1)
			src := rng.Intn(cfg.Length - l)
			dst := rng.Intn(cfg.Length - l)
			copy(g[dst:dst+l], g[src:src+l])
			rewritten += l
		}
	}
	return g, nil
}

// Paper reference lengths (bases) and GC contents.
const (
	// EColiLength is the length of E. coli K-12 MG1655 (U00096.3).
	EColiLength = 4641652
	// Chr21Length matches the ~40.1 MB BWT the paper reports for
	// GRCh38.p12 chromosome 21 after removing ambiguous bases.
	Chr21Length = 40088619

	eColiGC = 0.508
	chr21GC = 0.408
)

// EColiLike generates a synthetic genome at the E. coli scale the paper
// uses. The scale argument in (0,1] shrinks the genome proportionally so
// tests and default bench runs stay fast; pass 1 for the paper's size.
func EColiLike(seed int64, scale float64) (dna.Seq, error) {
	return scaled(EColiLength, eColiGC, 0.25, seed, scale)
}

// Chr21Like generates a synthetic genome at the human chromosome 21 scale,
// with a heavier repeat fraction as in real human sequence.
func Chr21Like(seed int64, scale float64) (dna.Seq, error) {
	return scaled(Chr21Length, chr21GC, 0.45, seed, scale)
}

func scaled(length int, gc, repeats float64, seed int64, scale float64) (dna.Seq, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("readsim: scale %v outside (0,1]", scale)
	}
	return Genome(GenomeConfig{
		Length:         int(float64(length) * scale),
		GC:             gc,
		RepeatFraction: repeats,
		Seed:           seed,
	})
}

// Read is one simulated read with its provenance.
type Read struct {
	// ID is a unique identifier, FASTQ-ready.
	ID string
	// Seq is the read sequence.
	Seq dna.Seq
	// Origin is the 0-based reference position the read was sampled from,
	// or -1 for random (unmappable) reads. For reverse-strand reads it is
	// the position of the leftmost reference base covered.
	Origin int
	// RevStrand marks reads sampled from the reverse-complement strand.
	RevStrand bool
	// Errors is the number of substitution errors injected into the read.
	Errors int
}

// ReadsConfig controls read-set simulation.
type ReadsConfig struct {
	// Count is the number of reads.
	Count int
	// Length is the read length in bases (paper: 35, 40, and 100 bp).
	Length int
	// MappingRatio is the fraction of reads sampled from the reference
	// (the rest are random and map nowhere), in [0,1].
	MappingRatio float64
	// RevCompFraction is the fraction of mapped reads drawn from the
	// reverse strand; 0.5 models real sequencing. BWaveR searches both
	// orientations, so reverse-strand reads still map.
	RevCompFraction float64
	// ErrorRate is the per-base substitution probability applied to
	// sampled reads, modelling sequencing errors. Exact matching misses
	// reads that drew at least one error; the k-mismatch extension
	// (core.MapReadApprox) rescues them. Random filler reads are
	// unaffected.
	ErrorRate float64
	// Seed makes generation reproducible.
	Seed int64
}

// Simulate draws a read set from ref.
func Simulate(ref dna.Seq, cfg ReadsConfig) ([]Read, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("readsim: negative read count %d", cfg.Count)
	}
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("readsim: read length %d must be positive", cfg.Length)
	}
	if cfg.MappingRatio < 0 || cfg.MappingRatio > 1 {
		return nil, fmt.Errorf("readsim: mapping ratio %v outside [0,1]", cfg.MappingRatio)
	}
	if cfg.RevCompFraction < 0 || cfg.RevCompFraction > 1 {
		return nil, fmt.Errorf("readsim: reverse-complement fraction %v outside [0,1]", cfg.RevCompFraction)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("readsim: error rate %v outside [0,1)", cfg.ErrorRate)
	}
	if cfg.MappingRatio > 0 && cfg.Length > len(ref) {
		return nil, fmt.Errorf("readsim: read length %d exceeds reference length %d", cfg.Length, len(ref))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Read, cfg.Count)
	nMapped := int(float64(cfg.Count)*cfg.MappingRatio + 0.5)
	for i := range out {
		r := &out[i]
		r.ID = fmt.Sprintf("read%08d", i)
		if i < nMapped {
			pos := rng.Intn(len(ref) - cfg.Length + 1)
			r.Origin = pos
			seq := ref[pos : pos+cfg.Length].Clone()
			if rng.Float64() < cfg.RevCompFraction {
				seq = seq.ReverseComplement()
				r.RevStrand = true
			}
			for j := range seq {
				if rng.Float64() < cfg.ErrorRate {
					seq[j] = dna.Base((int(seq[j]) + 1 + rng.Intn(3)) % dna.AlphabetSize)
					r.Errors++
				}
			}
			r.Seq = seq
		} else {
			r.Origin = -1
			seq := make(dna.Seq, cfg.Length)
			for j := range seq {
				seq[j] = dna.Base(rng.Intn(dna.AlphabetSize))
			}
			r.Seq = seq
		}
	}
	// Shuffle so mapped and unmapped reads interleave as in a real run.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// Seqs strips provenance, returning just the sequences in order.
func Seqs(reads []Read) []dna.Seq {
	out := make([]dna.Seq, len(reads))
	for i, r := range reads {
		out[i] = r.Seq
	}
	return out
}
