// Package bwt computes the Burrows-Wheeler transform of a text from its
// suffix array, and the inverse transform.
//
// Following the paper's optimisation for power-of-two alphabets (§III-B),
// the sentinel '$' is not materialised in the transformed sequence: the BWT
// is stored compactly over the original alphabet, and the position the
// sentinel would occupy (the "primary index") is kept separately. The
// FM-index layer adjusts its rank queries around that position, exactly as
// the paper's backward-search function does.
package bwt

import (
	"errors"
	"fmt"
	"math"
)

// BWT is the compact Burrows-Wheeler transform of a text.
type BWT struct {
	// Data holds the n non-sentinel symbols of the transform in order,
	// with the sentinel slot removed.
	Data []uint8
	// Primary is the position in the full (n+1)-long transform where the
	// sentinel sits; Data[j] corresponds to full position j when
	// j < Primary and j+1 otherwise.
	Primary int
}

// Transform computes the BWT of text given its suffix array sa (as produced
// by internal/suffixarray: length len(text)+1, sentinel first).
func Transform(text []uint8, sa []int32) (*BWT, error) {
	n := len(text)
	if len(sa) != n+1 {
		return nil, fmt.Errorf("bwt: suffix array length %d, want %d", len(sa), n+1)
	}
	out := &BWT{Data: make([]uint8, 0, n), Primary: -1}
	for i, p := range sa {
		if p == 0 {
			if out.Primary != -1 {
				return nil, errors.New("bwt: suffix array has multiple zero entries")
			}
			out.Primary = i
			continue
		}
		if int(p) > n {
			return nil, fmt.Errorf("bwt: suffix array entry %d out of range", p)
		}
		out.Data = append(out.Data, text[p-1])
	}
	if out.Primary == -1 {
		return nil, errors.New("bwt: suffix array lacks the sentinel suffix")
	}
	return out, nil
}

// Len returns the number of non-sentinel symbols (the original text length).
func (b *BWT) Len() int { return len(b.Data) }

// FullLen returns the length of the conceptual transform including the
// sentinel.
func (b *BWT) FullLen() int { return len(b.Data) + 1 }

// CompactPos maps a prefix length over the full transform (including the
// sentinel slot) to the corresponding prefix length over Data. Rank queries
// on the full transform for any real symbol reduce to rank on Data at this
// adjusted position — the paper's "$-position check" in backward search.
func (b *BWT) CompactPos(i int) int {
	if i <= b.Primary {
		return i
	}
	return i - 1
}

// SymbolCounts returns the number of occurrences of each symbol in [0,sigma).
func (b *BWT) SymbolCounts(sigma int) ([]int, error) {
	counts := make([]int, sigma)
	for i, c := range b.Data {
		if int(c) >= sigma {
			return nil, fmt.Errorf("bwt: symbol %d at position %d outside alphabet [0,%d)", c, i, sigma)
		}
		counts[c]++
	}
	return counts, nil
}

// Inverse reconstructs the original text by LF-walking from the sentinel
// row. It is the correctness oracle for Transform and the basis of the
// round-trip tests.
func (b *BWT) Inverse(sigma int) ([]uint8, error) {
	n := len(b.Data)
	if b.Primary < 0 || b.Primary > n {
		return nil, fmt.Errorf("bwt: primary index %d out of range [0,%d]", b.Primary, n)
	}
	counts, err := b.SymbolCounts(sigma)
	if err != nil {
		return nil, err
	}
	// cFull[c] = number of rows whose first column is < c, counting the
	// sentinel row (always row 0).
	cFull := make([]int, sigma+1)
	cFull[0] = 1
	for c := 0; c < sigma; c++ {
		cFull[c+1] = cFull[c] + counts[c]
	}
	// Precompute LF for every full row in O(n): occ[c] counts symbols seen
	// so far scanning Data left to right.
	lf := make([]int32, n+1)
	occ := make([]int, sigma)
	for full := 0; full <= n; full++ {
		if full == b.Primary {
			lf[full] = -1 // sentinel row has no predecessor symbol
			continue
		}
		c := b.Data[b.CompactPos(full)]
		lf[full] = int32(cFull[c] + occ[c])
		occ[c]++
	}
	text := make([]uint8, n)
	row := 0 // row 0's last column is the text's final symbol
	for i := n - 1; i >= 0; i-- {
		if row == b.Primary {
			return nil, errors.New("bwt: hit sentinel row early; transform is corrupt")
		}
		text[i] = b.Data[b.CompactPos(row)]
		row = int(lf[row])
	}
	if row != b.Primary {
		return nil, errors.New("bwt: LF walk did not end at sentinel row; transform is corrupt")
	}
	return text, nil
}

// RunCount returns the number of maximal runs of equal symbols in Data, a
// standard measure of BWT compressibility.
func (b *BWT) RunCount() int {
	if len(b.Data) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(b.Data); i++ {
		if b.Data[i] != b.Data[i-1] {
			runs++
		}
	}
	return runs
}

// Entropy returns the zero-order empirical entropy H0 of Data in bits per
// symbol. The paper's RRR offset array grows with the entropy of each
// wavelet node's bit-vector, so H0 predicts the structure's compression.
func (b *BWT) Entropy(sigma int) float64 {
	counts, err := b.SymbolCounts(sigma)
	if err != nil || len(b.Data) == 0 {
		return 0
	}
	n := float64(len(b.Data))
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / n
			h -= p * math.Log2(p)
		}
	}
	return h
}
