package bwt

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bwaver/internal/suffixarray"
)

// naiveBWT builds the transform by sorting all rotations of text·$,
// returning the compact data and primary index.
func naiveBWT(text []uint8) ([]uint8, int) {
	n := len(text) + 1
	full := make([]int, n) // rotation start offsets
	for i := range full {
		full[i] = i
	}
	// symbol at position p of rotation r is t[(r+p) % n], sentinel = -1.
	at := func(r, p int) int {
		i := (r + p) % n
		if i == len(text) {
			return -1
		}
		return int(text[i])
	}
	sort.Slice(full, func(x, y int) bool {
		for p := 0; p < n; p++ {
			a, b := at(full[x], p), at(full[y], p)
			if a != b {
				return a < b
			}
		}
		return false
	})
	data := make([]uint8, 0, len(text))
	primary := -1
	for i, r := range full {
		c := at(r, n-1)
		if c == -1 {
			primary = i
		} else {
			data = append(data, uint8(c))
		}
	}
	return data, primary
}

func mustTransform(t *testing.T, text []uint8, sigma int) *BWT {
	t.Helper()
	sa, err := suffixarray.Build(text, sigma)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transform(text, sa)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 2, 7, 40, 200} {
		for rep := 0; rep < 4; rep++ {
			text := make([]uint8, n)
			for i := range text {
				text[i] = uint8(rng.Intn(4))
			}
			b := mustTransform(t, text, 4)
			wantData, wantPrimary := naiveBWT(text)
			if b.Primary != wantPrimary {
				t.Fatalf("n=%d: primary %d, want %d", n, b.Primary, wantPrimary)
			}
			if len(b.Data) != len(wantData) {
				t.Fatalf("n=%d: data length %d, want %d", n, len(b.Data), len(wantData))
			}
			for i := range wantData {
				if b.Data[i] != wantData[i] {
					t.Fatalf("n=%d: data[%d]=%d, want %d", n, i, b.Data[i], wantData[i])
				}
			}
		}
	}
}

func TestBananaBWT(t *testing.T) {
	// BWT("banana"+$) = "annb$aa": with $ removed, data="annbaa", primary=4.
	text := []uint8{1, 0, 13, 0, 13, 0} // b,a,n,a,n,a with a=0,b=1,n=13
	b := mustTransform(t, text, 26)
	want := []uint8{0, 13, 13, 1, 0, 0}
	if b.Primary != 4 {
		t.Errorf("primary = %d, want 4", b.Primary)
	}
	for i := range want {
		if b.Data[i] != want[i] {
			t.Errorf("data[%d] = %d, want %d", i, b.Data[i], want[i])
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]uint8, len(raw))
		for i, r := range raw {
			text[i] = r & 3
		}
		sa, err := suffixarray.Build(text, 4)
		if err != nil {
			return false
		}
		b, err := Transform(text, sa)
		if err != nil {
			return false
		}
		back, err := b.Inverse(4)
		if err != nil {
			return false
		}
		if len(back) != len(text) {
			return false
		}
		for i := range text {
			if back[i] != text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestInverseLargeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	text := make([]uint8, 100000)
	for i := range text {
		text[i] = uint8(rng.Intn(4))
	}
	b := mustTransform(t, text, 4)
	back, err := b.Inverse(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range text {
		if back[i] != text[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestInverseDetectsCorruption(t *testing.T) {
	text := []uint8{0, 1, 2, 3, 2, 1, 0, 2, 1, 3}
	b := mustTransform(t, text, 4)
	// A bad primary index must not round-trip silently.
	for _, badPrimary := range []int{-1, len(b.Data) + 1} {
		bad := &BWT{Data: b.Data, Primary: badPrimary}
		if _, err := bad.Inverse(4); err == nil {
			t.Errorf("Inverse accepted primary=%d", badPrimary)
		}
	}
	// Out-of-alphabet symbol.
	corrupt := append([]uint8(nil), b.Data...)
	corrupt[3] = 200
	if _, err := (&BWT{Data: corrupt, Primary: b.Primary}).Inverse(4); err == nil {
		t.Error("Inverse accepted out-of-alphabet symbol")
	}
}

func TestTransformErrors(t *testing.T) {
	text := []uint8{0, 1, 2}
	if _, err := Transform(text, []int32{0, 1, 2}); err == nil {
		t.Error("accepted short suffix array")
	}
	if _, err := Transform(text, []int32{3, 2, 1, 9}); err == nil {
		t.Error("accepted out-of-range suffix array entry")
	}
	if _, err := Transform(text, []int32{0, 0, 1, 2}); err == nil {
		t.Error("accepted duplicate zero entries")
	}
	if _, err := Transform(text, []int32{3, 2, 1, 1}); err == nil {
		t.Error("accepted suffix array without sentinel entry")
	}
}

func TestCompactPos(t *testing.T) {
	b := &BWT{Data: []uint8{0, 1, 2, 3}, Primary: 2}
	wants := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 5: 4}
	for full, want := range wants {
		if got := b.CompactPos(full); got != want {
			t.Errorf("CompactPos(%d) = %d, want %d", full, got, want)
		}
	}
}

func TestRunCountAndEntropy(t *testing.T) {
	b := &BWT{Data: []uint8{0, 0, 0, 1, 1, 2}, Primary: 0}
	if b.RunCount() != 3 {
		t.Errorf("RunCount = %d, want 3", b.RunCount())
	}
	empty := &BWT{Primary: 0}
	if empty.RunCount() != 0 || empty.Entropy(4) != 0 {
		t.Error("empty BWT should have 0 runs and 0 entropy")
	}
	uniform := &BWT{Data: []uint8{0, 1, 2, 3}, Primary: 0}
	if h := uniform.Entropy(4); math.Abs(h-2.0) > 1e-9 {
		t.Errorf("uniform entropy = %v, want 2.0", h)
	}
	single := &BWT{Data: []uint8{1, 1, 1, 1}, Primary: 0}
	if h := single.Entropy(4); h != 0 {
		t.Errorf("single-symbol entropy = %v, want 0", h)
	}
}

// TestBWTLowersEntropyOfRepetitiveText exercises the property the whole
// design rests on: the BWT of repetitive text has long runs.
func TestBWTLowersEntropyOfRepetitiveText(t *testing.T) {
	pattern := []uint8{0, 1, 2, 3, 1, 0, 2}
	text := make([]uint8, 0, 7000)
	for len(text) < 7000 {
		text = append(text, pattern...)
	}
	b := mustTransform(t, text, 4)
	if b.RunCount() >= len(text)/10 {
		t.Errorf("BWT of repetitive text has %d runs over %d symbols; expected heavy run structure",
			b.RunCount(), len(text))
	}
}
