package bitvec

import (
	"encoding/binary"
	"fmt"
	"io"
)

const vectorMagic = 0x42495431 // "BIT1"

// WriteTo serializes the vector (words only; the rank directory is rebuilt
// on load). It implements io.WriterTo.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	var written int64
	head := [2]uint32{vectorMagic, uint32(v.n)}
	if err := binary.Write(w, binary.LittleEndian, head); err != nil {
		return written, err
	}
	written += 8
	if err := binary.Write(w, binary.LittleEndian, v.words); err != nil {
		return written, err
	}
	written += int64(len(v.words)) * 8
	return written, nil
}

// ReadVector deserializes a vector written by WriteTo and rebuilds its rank
// directory.
func ReadVector(r io.Reader) (*Vector, error) {
	var head [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &head); err != nil {
		return nil, fmt.Errorf("bitvec: reading header: %w", err)
	}
	if head[0] != vectorMagic {
		return nil, fmt.Errorf("bitvec: bad magic %#x", head[0])
	}
	n := int(head[1])
	v := &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
	if err := binary.Read(r, binary.LittleEndian, v.words); err != nil {
		return nil, fmt.Errorf("bitvec: reading words: %w", err)
	}
	if rem := n % wordBits; rem != 0 && len(v.words) > 0 {
		if v.words[len(v.words)-1]>>uint(rem) != 0 {
			return nil, fmt.Errorf("bitvec: nonzero bits beyond position %d", n)
		}
	}
	v.buildDirectory()
	return v, nil
}
