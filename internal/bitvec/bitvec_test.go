package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is the reference implementation all queries are checked against.
type naive []bool

func (n naive) rank1(i int) int {
	c := 0
	for _, b := range n[:i] {
		if b {
			c++
		}
	}
	return c
}

func (n naive) select1(k int) int {
	for i, b := range n {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func (n naive) select0(k int) int {
	for i, b := range n {
		if !b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func randomBits(rng *rand.Rand, n int, density float64) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < density
	}
	return out
}

func TestEmptyVector(t *testing.T) {
	v := FromBools(nil)
	if v.Len() != 0 || v.Ones() != 0 {
		t.Fatalf("empty vector: Len=%d Ones=%d", v.Len(), v.Ones())
	}
	if v.Rank1(0) != 0 {
		t.Error("Rank1(0) on empty vector != 0")
	}
	if v.Select1(1) != -1 || v.Select0(1) != -1 {
		t.Error("select on empty vector should return -1")
	}
}

func TestBitAccess(t *testing.T) {
	bits := []bool{true, false, false, true, true}
	v := FromBools(bits)
	for i, want := range bits {
		if v.Bit(i) != want {
			t.Errorf("Bit(%d) = %v, want %v", i, v.Bit(i), want)
		}
	}
}

func TestRankMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 511, 512, 513, 4096, 70000} {
		for _, density := range []float64{0, 0.05, 0.5, 0.95, 1} {
			bits := randomBits(rng, n, density)
			v := FromBools(bits)
			nv := naive(bits)
			if v.Ones() != nv.rank1(n) {
				t.Fatalf("n=%d density=%v: Ones=%d, want %d", n, density, v.Ones(), nv.rank1(n))
			}
			// All positions for small n, sampled positions for large n.
			step := 1
			if n > 2048 {
				step = 97
			}
			for i := 0; i <= n; i += step {
				if got, want := v.Rank1(i), nv.rank1(i); got != want {
					t.Fatalf("n=%d density=%v: Rank1(%d)=%d, want %d", n, density, i, got, want)
				}
				if got, want := v.Rank0(i), i-nv.rank1(i); got != want {
					t.Fatalf("Rank0(%d)=%d, want %d", i, got, want)
				}
			}
		}
	}
}

func TestSelectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 1000, 66000} {
		bits := randomBits(rng, n, 0.3)
		v := FromBools(bits)
		nv := naive(bits)
		for k := 1; k <= v.Ones(); k += 1 + v.Ones()/500 {
			if got, want := v.Select1(k), nv.select1(k); got != want {
				t.Fatalf("n=%d: Select1(%d)=%d, want %d", n, k, got, want)
			}
		}
		zeros := n - v.Ones()
		for k := 1; k <= zeros; k += 1 + zeros/500 {
			if got, want := v.Select0(k), nv.select0(k); got != want {
				t.Fatalf("n=%d: Select0(%d)=%d, want %d", n, k, got, want)
			}
		}
		if v.Select1(v.Ones()+1) != -1 {
			t.Error("Select1 past end should be -1")
		}
		if v.Select1(0) != -1 {
			t.Error("Select1(0) should be -1")
		}
	}
}

// Property: Rank1(Select1(k)) == k-1 and Bit(Select1(k)) == true.
func TestSelectRankInverse(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]bool, len(raw)*3)
		for i := range bits {
			bits[i] = raw[i/3]>>(uint(i)%3)&1 == 1
		}
		v := FromBools(bits)
		for k := 1; k <= v.Ones(); k++ {
			p := v.Select1(k)
			if !v.Bit(p) || v.Rank1(p) != k-1 || v.Rank1(p+1) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: rank is monotone and increments by Bit(i).
func TestRankMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]bool, len(raw))
		for i := range bits {
			bits[i] = raw[i]&1 == 1
		}
		v := FromBools(bits)
		for i := 0; i < v.Len(); i++ {
			d := v.Rank1(i+1) - v.Rank1(i)
			if (d != 1) == v.Bit(i) || d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppendWord(t *testing.T) {
	b := NewBuilder(10)
	b.AppendWord(0b1011, 4)
	b.AppendWord(0, 2)
	v := b.Build()
	want := []bool{true, true, false, true, false, false}
	if v.Len() != len(want) {
		t.Fatalf("Len=%d, want %d", v.Len(), len(want))
	}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("Bit(%d)=%v, want %v", i, v.Bit(i), w)
		}
	}
}

func TestRankBoundsPanic(t *testing.T) {
	v := FromBools([]bool{true})
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rank1(%d) did not panic", i)
				}
			}()
			v.Rank1(i)
		}()
	}
}

func TestSizeBytesPositive(t *testing.T) {
	v := FromBools(randomBits(rand.New(rand.NewSource(1)), 10000, 0.5))
	if v.SizeBytes() < 10000/8 {
		t.Errorf("SizeBytes=%d implausibly small", v.SizeBytes())
	}
}
