package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestVectorSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 63, 64, 65, 10000} {
		bits := randomBits(rng, n, 0.4)
		orig := FromBools(bits)
		var buf bytes.Buffer
		written, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d, wrote %d", written, buf.Len())
		}
		back, err := ReadVector(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != n || back.Ones() != orig.Ones() {
			t.Fatalf("n=%d: metadata changed", n)
		}
		for i := 0; i <= n; i += 1 + n/100 {
			if back.Rank1(i) != orig.Rank1(i) {
				t.Fatalf("n=%d: Rank1(%d) changed after round trip", n, i)
			}
		}
	}
}

func TestReadVectorRejectsCorruption(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadVector(bytes.NewReader(good[:3])); err == nil {
		t.Error("accepted truncated header")
	}
	if _, err := ReadVector(bytes.NewReader(good[:9])); err == nil {
		t.Error("accepted truncated words")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0x01
	if _, err := ReadVector(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Dirty trailing bits beyond position n must be rejected.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 0xFF
	if _, err := ReadVector(bytes.NewReader(bad)); err == nil {
		t.Error("accepted dirty trailing bits")
	}
}
