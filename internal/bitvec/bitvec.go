// Package bitvec implements a plain (uncompressed) bit-vector with constant
// time rank and near-constant-time select.
//
// It is the baseline the paper's RRR structure (internal/rrr) is compared
// against: rank here costs one superblock lookup, one block lookup, and one
// popcount, at a space cost of n + o(n) bits with no compression. The wavelet
// tree can be built over either representation (see internal/wavelet), which
// is one of the ablations DESIGN.md calls out.
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits = 64
	// rank directory geometry: a 32-bit block count every blockWords words,
	// and a 64-bit running total every superWords words.
	blockWords = 8 // 512-bit blocks, matching the burst width the paper uses
	superWords = 1024
)

// Vector is an immutable bit-vector with a rank/select directory.
// Build one with a Builder, then query it concurrently from any number of
// goroutines.
type Vector struct {
	words []uint64
	n     int

	// super[i] = number of 1s before word i*superWords.
	super []uint64
	// block[i] = number of 1s between the enclosing superblock boundary and
	// word i*blockWords.
	block []uint32

	ones int
}

// Builder accumulates bits for a Vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a Builder with capacity for n bits pre-allocated.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// Append adds one bit.
func (b *Builder) Append(bit bool) {
	if b.n%wordBits == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/wordBits] |= 1 << uint(b.n%wordBits)
	}
	b.n++
}

// AppendWord adds the low nbits bits of w, LSB first.
func (b *Builder) AppendWord(w uint64, nbits int) {
	for i := 0; i < nbits; i++ {
		b.Append(w>>uint(i)&1 == 1)
	}
}

// Len returns the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Build freezes the builder into a queryable Vector. The builder may be
// reused afterwards only by starting from scratch.
func (b *Builder) Build() *Vector {
	v := &Vector{words: b.words, n: b.n}
	v.buildDirectory()
	return v
}

// FromBools builds a Vector directly from a bool slice, convenient in tests.
func FromBools(bits []bool) *Vector {
	b := NewBuilder(len(bits))
	for _, bit := range bits {
		b.Append(bit)
	}
	return b.Build()
}

func (v *Vector) buildDirectory() {
	nw := len(v.words)
	v.super = make([]uint64, nw/superWords+1)
	v.block = make([]uint32, nw/blockWords+1)
	var total uint64
	var sinceSuper uint32
	for i := 0; i < nw; i++ {
		if i%superWords == 0 {
			v.super[i/superWords] = total
			sinceSuper = 0
		}
		if i%blockWords == 0 {
			v.block[i/blockWords] = sinceSuper
		}
		c := uint32(bits.OnesCount64(v.words[i]))
		total += uint64(c)
		sinceSuper += c
	}
	// Fill the boundary entries that fall exactly at the end of the vector
	// so the select binary searches never read uninitialized counts.
	if nw%superWords == 0 {
		v.super[nw/superWords] = total
		sinceSuper = 0
	}
	if nw%blockWords == 0 {
		v.block[nw/blockWords] = sinceSuper
	}
	v.ones = int(total)
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *Vector) Ones() int { return v.ones }

// Bit returns the i-th bit.
func (v *Vector) Bit(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>uint(i%wordBits)&1 == 1
}

// Rank1 returns the number of 1 bits in positions [0, i), i.e. strictly
// before position i. Rank1(Len()) equals Ones(). This prefix-exclusive
// convention matches Algorithm 1 of the paper once positions are shifted
// to zero-based.
func (v *Vector) Rank1(i int) int {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitvec: rank position %d out of range [0,%d]", i, v.n))
	}
	w := i / wordBits
	r := v.super[w/superWords] + uint64(v.block[w/blockWords])
	for j := w / blockWords * blockWords; j < w; j++ {
		r += uint64(bits.OnesCount64(v.words[j]))
	}
	if rem := uint(i % wordBits); rem != 0 {
		r += uint64(bits.OnesCount64(v.words[w] & (1<<rem - 1)))
	}
	return int(r)
}

// Rank0 returns the number of 0 bits strictly before position i.
func (v *Vector) Rank0(i int) int { return i - v.Rank1(i) }

// Select1 returns the position of the k-th 1 bit (k counts from 1), or -1 if
// the vector has fewer than k ones. It binary-searches the superblock and
// block directories, then scans at most blockWords words.
func (v *Vector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Superblock: greatest s with super[s] < k.
	lo, hi := 0, len(v.super)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.super[mid] < uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := lo
	rem := uint64(k) - v.super[s]
	// Block within superblock: greatest b with block[b] < rem.
	bLo := s * superWords / blockWords
	bHi := min((s+1)*superWords/blockWords, len(v.block)) - 1
	for bLo < bHi {
		mid := (bLo + bHi + 1) / 2
		if uint64(v.block[mid]) < rem {
			bLo = mid
		} else {
			bHi = mid - 1
		}
	}
	rem -= uint64(v.block[bLo])
	for w := bLo * blockWords; w < len(v.words); w++ {
		c := uint64(bits.OnesCount64(v.words[w]))
		if rem <= c {
			return w*wordBits + selectInWord(v.words[w], int(rem))
		}
		rem -= c
	}
	return -1 // unreachable given k <= ones
}

// Select0 returns the position of the k-th 0 bit (k counts from 1), or -1.
// It is implemented by binary search over Rank0, which is O(log n); BWaveR
// itself only needs rank, so select0 exists for completeness of the
// substrate API.
func (v *Vector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	lo, hi := 0, v.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Rank0(mid+1) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// selectInWord returns the position (0-63) of the k-th set bit of w, k>=1.
func selectInWord(w uint64, k int) int {
	for i := 0; i < wordBits; i++ {
		if w>>uint(i)&1 == 1 {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

// SizeBytes returns the memory footprint of the vector including its rank
// directory, used by the space-accounting benches.
func (v *Vector) SizeBytes() int {
	return len(v.words)*8 + len(v.super)*8 + len(v.block)*4 + 16
}

// Words exposes the raw backing words (read-only by convention).
func (v *Vector) Words() []uint64 { return v.words }
