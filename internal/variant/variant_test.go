package variant

import (
	"math/rand"
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

func TestPileupBasics(t *testing.T) {
	p, err := NewPileup(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddRead(2, dna.MustParseSeq("ACGT")); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRead(2, dna.MustParseSeq("ACGT")); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRead(8, dna.MustParseSeq("TTTT")); err != nil { // runs off the end
		t.Fatal(err)
	}
	if p.Depth(2) != 2 || p.BaseCount(2, dna.A) != 2 {
		t.Errorf("depth at 2 = %d", p.Depth(2))
	}
	if p.Depth(5) != 2 || p.BaseCount(5, dna.T) != 2 {
		t.Errorf("depth at 5 = %d", p.Depth(5))
	}
	if p.Depth(9) != 1 || p.BaseCount(9, dna.T) != 1 {
		t.Errorf("truncated read not recorded at 9")
	}
	if p.Depth(0) != 0 {
		t.Errorf("spurious depth at 0")
	}
	if err := p.AddRead(-1, dna.MustParseSeq("A")); err == nil {
		t.Error("negative position accepted")
	}
	if err := p.AddRead(10, dna.MustParseSeq("A")); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := NewPileup(0); err == nil {
		t.Error("empty pileup accepted")
	}
}

func TestCallSNVsThresholds(t *testing.T) {
	ref := dna.MustParseSeq("AAAAAAAAAA")
	p, _ := NewPileup(10)
	// Position 3: 5x T (clean variant). Position 6: 2x T (below depth).
	// Position 8: 3x T + 3x A (below fraction).
	for i := 0; i < 5; i++ {
		p.AddRead(3, dna.MustParseSeq("T"))
	}
	for i := 0; i < 2; i++ {
		p.AddRead(6, dna.MustParseSeq("T"))
	}
	for i := 0; i < 3; i++ {
		p.AddRead(8, dna.MustParseSeq("T"))
		p.AddRead(8, dna.MustParseSeq("A"))
	}
	calls, err := CallSNVs(ref, p, CallerConfig{MinDepth: 4, MinFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0].Pos != 3 || calls[0].Alt != dna.T || calls[0].Ref != dna.A {
		t.Fatalf("calls = %v", calls)
	}
	if calls[0].Fraction() != 1.0 {
		t.Errorf("fraction = %v", calls[0].Fraction())
	}
	if calls[0].String() == "" {
		t.Error("String empty")
	}
	// Validation paths.
	if _, err := CallSNVs(ref[:5], p, CallerConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CallSNVs(ref, p, CallerConfig{MinDepth: -1, MinFraction: 0.5}); err == nil {
		t.Error("bad thresholds accepted")
	}
	if _, err := CallSNVs(ref, p, CallerConfig{MinDepth: 1, MinFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestEndToEndResequencing runs the full pipeline: plant SNVs in a sample
// genome, sequence it, map the reads with the k-mismatch search, pile up
// uniquely-mapped reads, call variants, and compare against the truth.
func TestEndToEndResequencing(t *testing.T) {
	const (
		genomeLen = 40000
		nSNVs     = 25
		readLen   = 60
		nReads    = 8000 // ~12x depth
	)
	rng := rand.New(rand.NewSource(9))
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: genomeLen, Seed: 5, RepeatFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Plant well-separated SNVs in the sample.
	sample := ref.Clone()
	truth := map[int]dna.Base{}
	for len(truth) < nSNVs {
		pos := 200 + rng.Intn(genomeLen-400)
		tooClose := false
		for q := range truth {
			if abs(q-pos) < 2*readLen {
				tooClose = true
			}
		}
		if tooClose {
			continue
		}
		alt := dna.Base((int(sample[pos]) + 1 + rng.Intn(3)) % 4)
		truth[pos] = alt
		sample[pos] = alt
	}

	// Sequence the sample and map against the *reference*.
	reads, err := readsim.Simulate(sample, readsim.ReadsConfig{
		Count: nReads, Length: readLen, MappingRatio: 1, RevCompFraction: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}

	pile, err := NewPileup(genomeLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		res, err := ix.MapReadApprox(r.Seq, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mapped() || res.Occurrences() != 1 {
			continue // unmapped or multi-mapping: excluded from the pileup
		}
		// The single hit is in exactly one stratum of one orientation.
		for _, m := range res.Forward {
			if m.Range.Count() == 1 {
				ps, err := ix.FM().Locate(m.Range)
				if err != nil {
					t.Fatal(err)
				}
				if err := pile.AddRead(int(ps[0]), r.Seq); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, m := range res.Reverse {
			if m.Range.Count() == 1 {
				ps, err := ix.FM().Locate(m.Range)
				if err != nil {
					t.Fatal(err)
				}
				if err := pile.AddRead(int(ps[0]), r.Seq.ReverseComplement()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	calls, err := CallSNVs(ref, pile, CallerConfig{MinDepth: 4, MinFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	called := map[int]dna.Base{}
	for _, c := range calls {
		called[c.Pos] = c.Alt
	}
	tp, fp := 0, 0
	for pos, alt := range called {
		if truth[pos] == alt {
			tp++
		} else {
			fp++
		}
	}
	recall := float64(tp) / float64(len(truth))
	if recall < 0.85 {
		t.Errorf("recall %.2f (%d/%d SNVs found)", recall, tp, len(truth))
	}
	if fp > 2 {
		t.Errorf("%d false-positive calls", fp)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
