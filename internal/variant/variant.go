// Package variant implements the last stage of the genome-resequencing
// pipeline the paper's introduction motivates ("hundreds of millions of
// short reads are mapped onto a reference genome ... to determine the
// genetic variations of a sample in relation to the reference"): a per-base
// pileup over uniquely-mapped reads and a simple frequency-threshold SNV
// caller on top of it.
package variant

import (
	"fmt"

	"bwaver/internal/dna"
)

// Pileup accumulates per-position base observations.
type Pileup struct {
	counts [][dna.AlphabetSize]int32
}

// NewPileup creates a pileup over a reference of refLen bases.
func NewPileup(refLen int) (*Pileup, error) {
	if refLen <= 0 {
		return nil, fmt.Errorf("variant: reference length %d must be positive", refLen)
	}
	return &Pileup{counts: make([][dna.AlphabetSize]int32, refLen)}, nil
}

// RefLen returns the covered reference length.
func (p *Pileup) RefLen() int { return len(p.counts) }

// AddRead records a read aligned (forward-oriented) at 0-based reference
// position pos. Reverse-strand reads must be reverse-complemented by the
// caller first — mapping hits of RC(read) at position q contribute
// RC(read) at q. Bases running past the reference end are ignored.
func (p *Pileup) AddRead(pos int, read dna.Seq) error {
	if pos < 0 || pos >= len(p.counts) {
		return fmt.Errorf("variant: read position %d outside reference [0,%d)", pos, len(p.counts))
	}
	for i, b := range read {
		j := pos + i
		if j >= len(p.counts) {
			break
		}
		p.counts[j][b&3]++
	}
	return nil
}

// Depth returns the total observations at pos.
func (p *Pileup) Depth(pos int) int {
	d := 0
	for _, c := range p.counts[pos] {
		d += int(c)
	}
	return d
}

// BaseCount returns the observations of base b at pos.
func (p *Pileup) BaseCount(pos int, b dna.Base) int { return int(p.counts[pos][b&3]) }

// CallerConfig sets the SNV calling thresholds.
type CallerConfig struct {
	// MinDepth is the minimum pileup depth to consider a site; default 4.
	MinDepth int
	// MinFraction is the minimum alternate-allele fraction; default 0.8
	// (haploid/clonal samples — the resequencing scenario of the
	// examples).
	MinFraction float64
}

func (c CallerConfig) withDefaults() CallerConfig {
	if c.MinDepth == 0 {
		c.MinDepth = 4
	}
	if c.MinFraction == 0 {
		c.MinFraction = 0.8
	}
	return c
}

// Call is one called single-nucleotide variant.
type Call struct {
	Pos      int
	Ref, Alt dna.Base
	Depth    int
	AltCount int
}

// Fraction returns the alternate-allele fraction.
func (c Call) Fraction() float64 {
	if c.Depth == 0 {
		return 0
	}
	return float64(c.AltCount) / float64(c.Depth)
}

// String renders the call in a compact VCF-like form.
func (c Call) String() string {
	return fmt.Sprintf("%d %s>%s depth=%d alt=%d (%.0f%%)",
		c.Pos, c.Ref, c.Alt, c.Depth, c.AltCount, c.Fraction()*100)
}

// CallSNVs scans the pileup against the reference and reports sites whose
// dominant base differs from the reference and passes the thresholds.
func CallSNVs(ref dna.Seq, p *Pileup, cfg CallerConfig) ([]Call, error) {
	if len(ref) != p.RefLen() {
		return nil, fmt.Errorf("variant: reference length %d, pileup covers %d", len(ref), p.RefLen())
	}
	cfg = cfg.withDefaults()
	if cfg.MinDepth < 1 || cfg.MinFraction <= 0 || cfg.MinFraction > 1 {
		return nil, fmt.Errorf("variant: invalid thresholds %+v", cfg)
	}
	var calls []Call
	for pos := range ref {
		depth := p.Depth(pos)
		if depth < cfg.MinDepth {
			continue
		}
		best, bestCount := dna.Base(0), -1
		for b := dna.Base(0); b < dna.AlphabetSize; b++ {
			if c := p.BaseCount(pos, b); c > bestCount {
				best, bestCount = b, c
			}
		}
		if best == ref[pos] {
			continue
		}
		if float64(bestCount)/float64(depth) < cfg.MinFraction {
			continue
		}
		calls = append(calls, Call{Pos: pos, Ref: ref[pos], Alt: best, Depth: depth, AltCount: bestCount})
	}
	return calls, nil
}
