// Package qc is the quality-aware ingest stage: per-read quality metrics
// (average phred, expected errors, meep — the metrics phredsort computes),
// a filtering policy with fixed reject-reason codes, 3'-quality trimming,
// and an optional stable quality-sort that improves batch homogeneity on
// the modeled device without changing any individual read's mapping.
//
// QC runs at ingest, on the parse side of the pipeline, so the warm mapping
// path (the pooled batch engine) sees only the surviving reads and keeps
// its zero-allocation guarantee.
package qc

import (
	"fmt"
	"io"
	"math"
	"sort"

	"bwaver/internal/dna"
	"bwaver/internal/fastx"
)

// Reject-reason codes. This is a fixed enum — attacker-controlled input can
// never mint a new reason — so journal counters and /metrics labels have
// bounded cardinality.
const (
	// ReasonMalformed: the record did not parse (tolerant decode skipped it).
	ReasonMalformed = "malformed"
	// ReasonTooShort: shorter than Policy.MinLen after trimming.
	ReasonTooShort = "too_short"
	// ReasonTooManyN: more ambiguous bases than Policy.MaxN.
	ReasonTooManyN = "too_many_n"
	// ReasonMaxEE: expected errors above Policy.MaxEE.
	ReasonMaxEE = "max_ee"
	// ReasonMateRejected: the read was fine but its mate was not; paired
	// policies reject mates together so pairing never phase-shifts.
	ReasonMateRejected = "mate_rejected"
)

// Reasons returns every reject-reason code, for metric pre-registration.
func Reasons() []string {
	return []string{ReasonMalformed, ReasonTooShort, ReasonTooManyN, ReasonMaxEE, ReasonMateRejected}
}

// ValidReason reports whether s is one of the fixed reason codes.
func ValidReason(s string) bool {
	for _, r := range Reasons() {
		if s == r {
			return true
		}
	}
	return false
}

// Policy is a per-job quality-control configuration. The zero value is a
// no-op (strict parse, no gates, no trimming, no sorting).
type Policy struct {
	// MinLen rejects reads shorter than this after trimming; 0 disables.
	MinLen int `json:"min_len,omitempty"`
	// MaxEE rejects reads whose expected-error count (sum of per-base error
	// probabilities) exceeds this; 0 disables.
	MaxEE float64 `json:"max_ee,omitempty"`
	// MaxN rejects reads with more than this many ambiguous bases; 0
	// disables.
	MaxN int `json:"max_n,omitempty"`
	// TrimQual trims 3' bases whose phred score is below this; 0 disables.
	TrimQual int `json:"trim_qual,omitempty"`
	// QualitySort stably sorts each ingested batch by ascending expected
	// errors (cleanest reads first). Stable, so CPU and FPGA backends map
	// the identical post-sort order and stay bit-identical.
	QualitySort bool `json:"quality_sort,omitempty"`
	// PhredOffset is the quality encoding base: 33, 64, or 0 to auto-detect.
	PhredOffset int `json:"phred_offset,omitempty"`
	// Paired treats the input as interleaved mates (R1,R2,R1,R2,...):
	// rejecting either mate rejects both, and QualitySort moves pairs as
	// units.
	Paired bool `json:"paired,omitempty"`
	// Tolerant decodes FASTQ tolerantly: malformed records are skipped and
	// counted instead of failing the job.
	Tolerant bool `json:"tolerant,omitempty"`
}

// Active reports whether the policy does anything beyond a strict parse.
func (p Policy) Active() bool {
	return p.MinLen > 0 || p.MaxEE > 0 || p.MaxN > 0 || p.TrimQual > 0 ||
		p.QualitySort || p.Tolerant
}

// Validate rejects nonsensical configurations.
func (p Policy) Validate() error {
	if p.PhredOffset != 0 && p.PhredOffset != 33 && p.PhredOffset != 64 {
		return fmt.Errorf("qc: phred offset must be 0 (auto), 33 or 64, got %d", p.PhredOffset)
	}
	if p.MinLen < 0 || p.MaxN < 0 || p.TrimQual < 0 || p.MaxEE < 0 {
		return fmt.Errorf("qc: thresholds must be non-negative")
	}
	return nil
}

// Metrics are the per-read quality figures, computed after trimming.
type Metrics struct {
	// Length is the read length in bases.
	Length int
	// NCount is the number of ambiguous (non-ACGT) bases.
	NCount int
	// AvgPhred is the error-probability-averaged quality: the phred score
	// of the mean per-base error probability (not the arithmetic mean of
	// scores, which overstates quality).
	AvgPhred float64
	// MaxEE is the expected number of errors: the sum of per-base error
	// probabilities.
	MaxEE float64
	// Meep is the maximum expected error percentage: MaxEE * 100 / Length.
	Meep float64
}

// Measure computes the metrics of one read. qual may be nil (FASTA input),
// in which case the quality-derived figures are zero.
func Measure(seq, qual []byte, offset int) Metrics {
	m := Metrics{Length: len(seq)}
	for _, b := range seq {
		if _, ok := dna.FromByte(b); !ok {
			m.NCount++
		}
	}
	if len(qual) == 0 || offset == 0 {
		return m
	}
	var sumP float64
	for _, q := range qual {
		sumP += phredErrProb(int(q) - offset)
	}
	m.MaxEE = sumP
	if m.Length > 0 {
		m.Meep = m.MaxEE * 100 / float64(m.Length)
		m.AvgPhred = -10 * math.Log10(sumP/float64(len(qual)))
	}
	return m
}

// phredErrProb converts a phred score to an error probability, clamping
// garbage scores (a wrongly-detected offset) into [0,1].
func phredErrProb(q int) float64 {
	if q < 0 {
		return 1
	}
	return math.Pow(10, -float64(q)/10)
}

// DetectOffset inspects quality strings and picks the phred encoding base:
// any byte below 59 proves phred+33, a byte above 74 with none below 59
// indicates phred+64. Ambiguous input (all bytes in the overlap) defaults
// to the modern phred+33.
func DetectOffset(quals ...[]byte) int {
	sawHigh := false
	for _, qual := range quals {
		for _, b := range qual {
			if b < 59 {
				return 33
			}
			if b > 74 {
				sawHigh = true
			}
		}
	}
	if sawHigh {
		return 64
	}
	return 33
}

// trim3 returns the length seq keeps after 3'-quality trimming: trailing
// bases with phred < threshold are dropped, stopping at the first base at
// or above the threshold.
func trim3(qual []byte, offset, threshold int) int {
	n := len(qual)
	for n > 0 && int(qual[n-1])-offset < threshold {
		n--
	}
	return n
}

// Reject is one dropped read, for streaming clients and per-reason
// accounting. Index is the read's ordinal in the attempted input stream
// (malformed records included), so clients can correlate gaps.
type Reject struct {
	Index  int    `json:"index"`
	ID     string `json:"id,omitempty"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// Report is the ingest accounting block: journaled with the job so replay
// is accounting-identical, and surfaced in /api/stats.
type Report struct {
	// Attempted counts every record the decoder tried, valid or not.
	Attempted int `json:"attempted"`
	// Passed counts reads that survived every gate.
	Passed int `json:"passed"`
	// Malformed counts records the tolerant decoder skipped.
	Malformed int `json:"malformed"`
	// Rejected counts QC-gate drops per reason code.
	Rejected map[string]int `json:"rejected,omitempty"`
	// TrimmedBases counts 3'-trimmed bases across all reads.
	TrimmedBases int `json:"trimmed_bases,omitempty"`
	// PhredOffset is the encoding the gate used (33/64), 0 when no
	// qualities were seen.
	PhredOffset int `json:"phred_offset,omitempty"`
}

// RejectedTotal sums the per-reason reject counts (malformed excluded).
func (r Report) RejectedTotal() int {
	n := 0
	for _, c := range r.Rejected {
		n += c
	}
	return n
}

// Merge accumulates other into r (gateway scatter-gather rollup).
func (r *Report) Merge(other Report) {
	r.Attempted += other.Attempted
	r.Passed += other.Passed
	r.Malformed += other.Malformed
	r.TrimmedBases += other.TrimmedBases
	if r.PhredOffset == 0 {
		r.PhredOffset = other.PhredOffset
	}
	for reason, c := range other.Rejected {
		if r.Rejected == nil {
			r.Rejected = make(map[string]int)
		}
		r.Rejected[reason] += c
	}
}

// Read is one surviving read.
type Read struct {
	ID  string
	Seq dna.Seq
	// ee is the sort key for QualitySort (expected errors, trimmed).
	ee float64
}

// event is one decoder outcome in stream order: a parsed record or a
// malformed-record error. Keeping both in one ordered stream is what makes
// paired-mate accounting exact — pairing is positional, so a malformed R1
// must still consume its slot and doom its R2.
type event struct {
	rec   *fastx.Record
	err   *fastx.RecordError
	index int
}

// Gate applies a Policy to a stream of decoder events. Feed events with
// Record/Malformed, take surviving reads out with Drain (batch-wise, so
// streaming callers stay memory-bounded), and collect the accounting from
// Report/TakeRejects.
type Gate struct {
	policy  Policy
	events  []event
	next    int // index of the next attempted record
	offset  int // resolved phred offset; 0 until known
	report  Report
	rejects []Reject
}

// NewGate validates the policy and builds a gate for it.
func NewGate(p Policy) (*Gate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Gate{policy: p, offset: p.PhredOffset}
	g.report.Rejected = make(map[string]int)
	return g, nil
}

// Record feeds one parsed record.
func (g *Gate) Record(rec *fastx.Record) {
	g.events = append(g.events, event{rec: rec, index: g.next})
	g.next++
	g.report.Attempted++
}

// Malformed feeds one malformed-record error from the tolerant decoder.
func (g *Gate) Malformed(re *fastx.RecordError) {
	g.events = append(g.events, event{err: re, index: g.next})
	g.next++
	g.report.Attempted++
	g.report.Malformed++
	g.rejects = append(g.rejects, Reject{
		Index: g.next - 1, ID: re.RecordID, Reason: ReasonMalformed, Detail: re.Detail,
	})
}

// Drain gates the buffered events and returns the survivors, quality-sorted
// when the policy asks for it. With a paired policy a trailing odd event is
// held back for its mate unless final is true (EOF), where it is rejected
// as an orphan.
func (g *Gate) Drain(final bool) []Read {
	events := g.events
	if g.policy.Paired && !final && len(events)%2 == 1 {
		events = events[:len(events)-1]
	}
	g.events = g.events[len(events):]

	g.resolveOffset(events)
	var out []Read
	if g.policy.Paired {
		for i := 0; i+1 < len(events); i += 2 {
			out = g.gatePair(out, events[i], events[i+1])
		}
		if len(events)%2 == 1 {
			// Orphan at EOF: positional pairing has no mate for it.
			last := events[len(events)-1]
			if last.rec != nil {
				g.rejectRead(last, ReasonMateRejected, "no mate: odd trailing read")
			}
		}
	} else {
		for _, ev := range events {
			if ev.rec == nil {
				continue // already accounted by Malformed
			}
			if rd, reason, detail := g.gateRead(ev.rec); reason == "" {
				out = append(out, rd)
			} else {
				g.rejectRead(ev, reason, detail)
			}
		}
	}
	if g.policy.QualitySort {
		g.sortBatch(out)
	}
	g.report.Passed += len(out)
	return out
}

// gatePair evaluates an interleaved mate pair: both survive or both are
// rejected (the clean mate as mate_rejected), so downstream pairing never
// phase-shifts.
func (g *Gate) gatePair(out []Read, e1, e2 event) []Read {
	type side struct {
		ev     event
		rd     Read
		reason string
		detail string
	}
	sides := [2]side{{ev: e1}, {ev: e2}}
	for i := range sides {
		if sides[i].ev.rec == nil {
			sides[i].reason = ReasonMalformed // already accounted
			continue
		}
		sides[i].rd, sides[i].reason, sides[i].detail = g.gateRead(sides[i].ev.rec)
	}
	if sides[0].reason == "" && sides[1].reason == "" {
		return append(out, sides[0].rd, sides[1].rd)
	}
	for i := range sides {
		if sides[i].ev.rec == nil {
			continue // malformed side: Reject row already emitted
		}
		if sides[i].reason == "" {
			g.rejectRead(sides[i].ev, ReasonMateRejected, "mate failed QC")
		} else {
			g.rejectRead(sides[i].ev, sides[i].reason, sides[i].detail)
		}
	}
	return out
}

// gateRead trims and measures one record; reason is "" when it passes.
func (g *Gate) gateRead(rec *fastx.Record) (Read, string, string) {
	seq, qual := rec.Seq, rec.Qual
	if g.policy.TrimQual > 0 && len(qual) == len(seq) && g.offset > 0 {
		keep := trim3(qual, g.offset, g.policy.TrimQual)
		g.report.TrimmedBases += len(seq) - keep
		seq, qual = seq[:keep], qual[:keep]
	}
	m := Measure(seq, qual, g.offset)
	if g.policy.MinLen > 0 && m.Length < g.policy.MinLen {
		return Read{}, ReasonTooShort, fmt.Sprintf("%d bases after trim, need %d", m.Length, g.policy.MinLen)
	}
	if g.policy.MaxN > 0 && m.NCount > g.policy.MaxN {
		return Read{}, ReasonTooManyN, fmt.Sprintf("%d ambiguous bases, max %d", m.NCount, g.policy.MaxN)
	}
	if g.policy.MaxEE > 0 && len(qual) > 0 && m.MaxEE > g.policy.MaxEE {
		return Read{}, ReasonMaxEE, fmt.Sprintf("%.2f expected errors, max %.2f", m.MaxEE, g.policy.MaxEE)
	}
	s, _ := dna.Sanitize(seq, dna.A)
	return Read{ID: rec.ID, Seq: s, ee: m.MaxEE}, "", ""
}

func (g *Gate) rejectRead(ev event, reason, detail string) {
	g.report.Rejected[reason]++
	id := ""
	if ev.rec != nil {
		id = ev.rec.ID
	}
	g.rejects = append(g.rejects, Reject{Index: ev.index, ID: id, Reason: reason, Detail: detail})
}

// resolveOffset fixes the phred encoding on first use. Detection scans the
// buffered batch; once resolved the offset never changes, so every read in
// the job is measured against the same encoding.
func (g *Gate) resolveOffset(events []event) {
	if g.offset != 0 {
		return
	}
	quals := make([][]byte, 0, len(events))
	for _, ev := range events {
		if ev.rec != nil && len(ev.rec.Qual) > 0 {
			quals = append(quals, ev.rec.Qual)
		}
	}
	if len(quals) == 0 {
		return // FASTA so far; stay undetected
	}
	g.offset = DetectOffset(quals...)
}

// sortBatch stably sorts one drained batch by ascending expected errors,
// keeping interleaved mates adjacent by sorting pair-blocks as units. The
// sort is stable and happens before the backend split, so CPU and FPGA map
// the same order and remain bit-identical.
func (g *Gate) sortBatch(reads []Read) {
	stride := 1
	if g.policy.Paired {
		stride = 2
	}
	blocks := len(reads) / stride
	if blocks*stride != len(reads) {
		return // defensive: never split a pair
	}
	order := make([]int, blocks)
	for i := range order {
		order[i] = i
	}
	key := func(b int) float64 {
		ee := 0.0
		for k := 0; k < stride; k++ {
			ee += reads[b*stride+k].ee
		}
		return ee
	}
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) < key(order[b]) })
	sorted := make([]Read, 0, len(reads))
	for _, b := range order {
		sorted = append(sorted, reads[b*stride:(b+1)*stride]...)
	}
	copy(reads, sorted)
}

// Report returns the accounting so far.
func (g *Gate) Report() Report {
	r := g.report
	r.PhredOffset = g.offset
	return r
}

// TakeRejects returns and clears the reject rows accumulated since the last
// call, in stream order.
func (g *Gate) TakeRejects() []Reject {
	r := g.rejects
	g.rejects = nil
	return r
}

// Result is the outcome of a one-shot Ingest.
type Result struct {
	Seqs    []dna.Seq
	IDs     []string
	Rejects []Reject
	Report  Report
}

// Ingest parses a whole FASTA/FASTQ stream (plain or gzipped) through the
// policy: tolerant or strict decode, trim, gate, and — when QualitySort is
// set — one stable quality-sort over the surviving set.
func Ingest(r io.Reader, p Policy) (*Result, error) {
	g, err := NewGate(p)
	if err != nil {
		return nil, err
	}
	rd, err := fastx.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	rd.SetTolerant(p.Tolerant)
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if re, ok := err.(*fastx.RecordError); ok && p.Tolerant {
				g.Malformed(re)
				continue
			}
			return nil, err
		}
		g.Record(rec)
	}
	reads := g.Drain(true)
	res := &Result{
		Seqs:    make([]dna.Seq, len(reads)),
		IDs:     make([]string, len(reads)),
		Rejects: g.TakeRejects(),
		Report:  g.Report(),
	}
	for i, read := range reads {
		res.Seqs[i] = read.Seq
		res.IDs[i] = read.ID
	}
	return res, nil
}
