package qc

import (
	"math"
	"strings"
	"testing"

	"bwaver/internal/fastx"
)

// qual builds a quality string of n bases at phred score q (offset 33).
func qual(n, q int) string {
	return strings.Repeat(string(rune(q+33)), n)
}

func fq(parts ...string) string { return strings.Join(parts, "") }

func rec(id, seq, q string) string { return "@" + id + "\n" + seq + "\n+\n" + q + "\n" }

func TestMeasure(t *testing.T) {
	// Four bases at phred 20: p = 0.01 each, maxEE = 0.04, meep = 1%.
	m := Measure([]byte("ACGT"), []byte(qual(4, 20)), 33)
	if m.Length != 4 || m.NCount != 0 {
		t.Fatalf("length/ncount: %+v", m)
	}
	if math.Abs(m.MaxEE-0.04) > 1e-9 {
		t.Errorf("maxEE = %g, want 0.04", m.MaxEE)
	}
	if math.Abs(m.Meep-1.0) > 1e-9 {
		t.Errorf("meep = %g, want 1", m.Meep)
	}
	if math.Abs(m.AvgPhred-20) > 1e-9 {
		t.Errorf("avgPhred = %g, want 20", m.AvgPhred)
	}

	// Mixed qualities: the error-probability average is dominated by the
	// bad base, unlike a naive mean of scores.
	m = Measure([]byte("AC"), []byte{33 + 2, 33 + 40}, 33)
	if m.AvgPhred > 6 {
		t.Errorf("avgPhred = %g, want error-prob-dominated (< 6)", m.AvgPhred)
	}

	// N counting.
	m = Measure([]byte("ANNT"), nil, 0)
	if m.NCount != 2 || m.MaxEE != 0 {
		t.Errorf("N metrics: %+v", m)
	}
}

func TestDetectOffset(t *testing.T) {
	if got := DetectOffset([]byte("II!!")); got != 33 {
		t.Errorf("low bytes: got %d, want 33", got)
	}
	if got := DetectOffset([]byte("ffgh")); got != 64 {
		t.Errorf("high bytes: got %d, want 64", got)
	}
	// Ambiguous overlap region defaults to 33.
	if got := DetectOffset([]byte("IIII")); got != 33 {
		t.Errorf("ambiguous: got %d, want 33", got)
	}
	if got := DetectOffset(); got != 33 {
		t.Errorf("empty: got %d, want 33", got)
	}
}

func TestTrim3(t *testing.T) {
	// Phred 30,30,30,2,2 trimmed at threshold 10 keeps 3 bases.
	q := []byte{63, 63, 63, 35, 35}
	if n := trim3(q, 33, 10); n != 3 {
		t.Errorf("trim kept %d, want 3", n)
	}
	// Interior dip is not trimmed: stop at first good base from the 3' end.
	q = []byte{63, 35, 63}
	if n := trim3(q, 33, 10); n != 3 {
		t.Errorf("interior dip trimmed: kept %d, want 3", n)
	}
	if n := trim3([]byte{35, 35}, 33, 10); n != 0 {
		t.Errorf("all-bad read kept %d, want 0", n)
	}
}

func TestIngestGates(t *testing.T) {
	in := fq(
		rec("ok", "ACGTACGT", qual(8, 30)),
		rec("short", "ACG", qual(3, 30)),
		rec("enns", "ANNNANNN", qual(8, 30)),
		rec("dirty", "ACGTACGT", qual(8, 2)),
	)
	res, err := Ingest(strings.NewReader(in), Policy{MinLen: 5, MaxN: 2, MaxEE: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 1 || res.IDs[0] != "ok" {
		t.Fatalf("survivors = %v", res.IDs)
	}
	r := res.Report
	if r.Attempted != 4 || r.Passed != 1 || r.Malformed != 0 {
		t.Fatalf("report = %+v", r)
	}
	want := map[string]int{ReasonTooShort: 1, ReasonTooManyN: 1, ReasonMaxEE: 1}
	for reason, n := range want {
		if r.Rejected[reason] != n {
			t.Errorf("rejected[%s] = %d, want %d", reason, r.Rejected[reason], n)
		}
	}
	if r.RejectedTotal() != 3 {
		t.Errorf("rejectedTotal = %d", r.RejectedTotal())
	}
	if len(res.Rejects) != 3 {
		t.Fatalf("reject rows = %v", res.Rejects)
	}
	for _, rj := range res.Rejects {
		if !ValidReason(rj.Reason) {
			t.Errorf("reason %q outside the fixed enum", rj.Reason)
		}
	}
}

func TestIngestTrimming(t *testing.T) {
	// 8 good bases then 4 bad ones; trimming drops the tail, and the read
	// survives a MinLen that the untrimmed gate logic would also pass —
	// the point is the trimmed_bases accounting and the shorter output.
	in := rec("r", "ACGTACGTACGT", qual(8, 30)+qual(4, 2))
	res, err := Ingest(strings.NewReader(in), Policy{TrimQual: 10, MinLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 1 || len(res.Seqs[0]) != 8 {
		t.Fatalf("trimmed read length = %v", res.Seqs)
	}
	if res.Report.TrimmedBases != 4 {
		t.Errorf("trimmedBases = %d, want 4", res.Report.TrimmedBases)
	}
	// Trimming can push a read under MinLen.
	in = rec("r", "ACGTACGT", qual(2, 30)+qual(6, 2))
	res, err = Ingest(strings.NewReader(in), Policy{TrimQual: 10, MinLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 0 || res.Report.Rejected[ReasonTooShort] != 1 {
		t.Fatalf("trim-to-reject: %+v", res.Report)
	}
}

func TestIngestTolerantMalformed(t *testing.T) {
	in := fq(
		rec("ok1", "ACGT", qual(4, 30)),
		"@bad\nACGT\n+\nII\n", // short quality line
		rec("ok2", "TTTT", qual(4, 30)),
	)
	res, err := Ingest(strings.NewReader(in), Policy{Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 2 {
		t.Fatalf("survivors = %v", res.IDs)
	}
	if res.Report.Malformed != 1 || res.Report.Attempted != 3 {
		t.Fatalf("report = %+v", res.Report)
	}
	if len(res.Rejects) != 1 || res.Rejects[0].Reason != ReasonMalformed || res.Rejects[0].ID != "bad" {
		t.Fatalf("rejects = %+v", res.Rejects)
	}
	// Strict mode still fails closed on the same input.
	if _, err := Ingest(strings.NewReader(in), Policy{}); err == nil {
		t.Fatal("strict ingest accepted malformed input")
	}
}

func TestIngestPairedMateRejection(t *testing.T) {
	in := fq(
		rec("p1/1", "ACGTACGT", qual(8, 30)),
		rec("p1/2", "ACGTACGT", qual(8, 30)),
		rec("p2/1", "ACG", qual(3, 30)), // too short
		rec("p2/2", "ACGTACGT", qual(8, 30)),
	)
	res, err := Ingest(strings.NewReader(in), Policy{Paired: true, MinLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 2 || res.IDs[0] != "p1/1" || res.IDs[1] != "p1/2" {
		t.Fatalf("survivors = %v", res.IDs)
	}
	r := res.Report
	if r.Rejected[ReasonTooShort] != 1 || r.Rejected[ReasonMateRejected] != 1 {
		t.Fatalf("paired rejects = %+v", r.Rejected)
	}
}

func TestIngestPairedMalformedDoomsMate(t *testing.T) {
	// A malformed R1 must consume its slot: R2 is rejected as
	// mate_rejected and the following pair is NOT phase-shifted.
	in := fq(
		"@bad/1\nACGT\n+\nII\n",
		rec("bad/2", "ACGTACGT", qual(8, 30)),
		rec("p2/1", "ACGTACGT", qual(8, 30)),
		rec("p2/2", "ACGTACGT", qual(8, 30)),
	)
	res, err := Ingest(strings.NewReader(in), Policy{Paired: true, Tolerant: true, MinLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 || res.IDs[0] != "p2/1" || res.IDs[1] != "p2/2" {
		t.Fatalf("survivors = %v (pairing phase-shifted?)", res.IDs)
	}
	if res.Report.Malformed != 1 || res.Report.Rejected[ReasonMateRejected] != 1 {
		t.Fatalf("report = %+v", res.Report)
	}
}

func TestQualitySortStableAndPairAware(t *testing.T) {
	in := fq(
		rec("dirty1", "ACGTACGT", qual(8, 5)),
		rec("clean1", "ACGTACGT", qual(8, 38)),
		rec("mid", "ACGTACGT", qual(8, 20)),
		rec("clean2", "ACGTACGT", qual(8, 38)),
	)
	res, err := Ingest(strings.NewReader(in), Policy{QualitySort: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"clean1", "clean2", "mid", "dirty1"}
	for i, id := range want {
		if res.IDs[i] != id {
			t.Fatalf("sort order = %v, want %v", res.IDs, want)
		}
	}

	// Paired: blocks move as units, keyed by combined quality.
	in = fq(
		rec("p1/1", "ACGTACGT", qual(8, 5)),
		rec("p1/2", "ACGTACGT", qual(8, 5)),
		rec("p2/1", "ACGTACGT", qual(8, 38)),
		rec("p2/2", "ACGTACGT", qual(8, 38)),
	)
	res, err = Ingest(strings.NewReader(in), Policy{QualitySort: true, Paired: true})
	if err != nil {
		t.Fatal(err)
	}
	wantP := []string{"p2/1", "p2/2", "p1/1", "p1/2"}
	for i, id := range wantP {
		if res.IDs[i] != id {
			t.Fatalf("paired sort order = %v, want %v", res.IDs, wantP)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{PhredOffset: 42}).Validate(); err == nil {
		t.Error("accepted bad offset")
	}
	if err := (Policy{MinLen: -1}).Validate(); err == nil {
		t.Error("accepted negative threshold")
	}
	if err := (Policy{PhredOffset: 64, MaxEE: 2}).Validate(); err != nil {
		t.Errorf("rejected valid policy: %v", err)
	}
	if (Policy{}).Active() {
		t.Error("zero policy reported active")
	}
	if !(Policy{QualitySort: true}).Active() {
		t.Error("sort-only policy reported inactive")
	}
}

func TestGateStreamingDrain(t *testing.T) {
	// Drain mid-stream with a paired policy: the odd trailing event is
	// held for its mate, not rejected.
	g, err := NewGate(Policy{Paired: true, MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string) *fastx.Record {
		return &fastx.Record{ID: id, Seq: []byte("ACGT"), Qual: []byte(qual(4, 30))}
	}
	g.Record(mk("a/1"))
	g.Record(mk("a/2"))
	g.Record(mk("b/1"))
	first := g.Drain(false)
	if len(first) != 2 {
		t.Fatalf("first drain = %d reads, want the complete pair only", len(first))
	}
	g.Record(mk("b/2"))
	second := g.Drain(true)
	if len(second) != 2 {
		t.Fatalf("second drain = %d reads, want the held pair", len(second))
	}
	rep := g.Report()
	if rep.Attempted != 4 || rep.Passed != 4 || rep.RejectedTotal() != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestIngestFastaInput(t *testing.T) {
	// FASTA reads have no qualities: quality gates are inert, length/N
	// gates still work, and the offset stays unreported.
	in := ">ok\nACGTACGT\n>short\nAC\n"
	res, err := Ingest(strings.NewReader(in), Policy{MinLen: 5, MaxEE: 0.5, TrimQual: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seqs) != 1 || res.IDs[0] != "ok" {
		t.Fatalf("survivors = %v", res.IDs)
	}
	if res.Report.PhredOffset != 0 {
		t.Errorf("offset = %d for FASTA", res.Report.PhredOffset)
	}
}
