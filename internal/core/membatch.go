package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bwaver/internal/dna"
)

// Batched seed-and-extend mapping, the mem mirror of the exact path's
// MapReadsInto engine (index.go): workers claim fixed-size chunks off an
// atomic cursor — work-stealing without channels — and map them with pooled
// per-worker scratch, so the steady state allocates nothing per read.
// Paired batches chunk on pair boundaries: a mate pair is always mapped by
// one worker, in order, which keeps rescue and the proper-pair call
// identical to the sequential schedule.

// memScratchPool recycles per-worker mem pipeline scratch across batches
// and workers.
var memScratchPool = sync.Pool{New: func() any { return new(memScratch) }}

// memBatchState is the shared state of one MapReadsMemInto call. It lives
// in a pool — and workers run as a method on it rather than a closure — so
// a sequential batch call performs zero heap allocations: an escaping
// closure would drag its captured cursor and counters to the heap on every
// call.
type memBatchState struct {
	mem   *memState
	dst   []MemResult
	reads []dna.Seq
	opts  MemOptions
	run   MapOptions
	units int
	every int

	cursor atomic.Int64
	done   atomic.Int64
}

var memBatchPool = sync.Pool{New: func() any { return new(memBatchState) }}

// worker claims chunks of work units off the shared cursor until the batch
// is drained, the context is cancelled, or a read fails.
func (bs *memBatchState) worker() error {
	sc := memScratchPool.Get().(*memScratch)
	defer memScratchPool.Put(sc)
	for {
		end := int(bs.cursor.Add(memChunk))
		begin := end - memChunk
		if begin >= bs.units {
			return nil
		}
		end = min(end, bs.units)
		if bs.run.Context != nil {
			if err := bs.run.Context.Err(); err != nil {
				return err
			}
		}
		nReads := 0
		for u := begin; u < end; u++ {
			if bs.opts.Paired {
				i := 2 * u
				if i+1 < len(bs.reads) {
					pr, err := bs.mem.mapPair(sc, bs.reads[i], bs.reads[i+1], bs.opts)
					if err != nil {
						return err
					}
					bs.dst[i], bs.dst[i+1] = pr.R1, pr.R2
					nReads += 2
				} else {
					res, err := bs.mem.mapRead(sc, bs.reads[i], bs.opts)
					if err != nil {
						return err
					}
					bs.dst[i] = res
					nReads++
				}
			} else {
				res, err := bs.mem.mapRead(sc, bs.reads[u], bs.opts)
				if err != nil {
					return err
				}
				bs.dst[u] = res
				nReads++
			}
		}
		if bs.run.Progress != nil {
			d := bs.done.Add(int64(nReads))
			if d/int64(bs.every) != (d-int64(nReads))/int64(bs.every) {
				bs.run.Progress(int(d), len(bs.reads))
			}
		}
	}
}

// runParallel drains the batch with n concurrent workers and returns the
// first error any of them hit.
func (bs *memBatchState) runParallel(n int) error {
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := bs.worker(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// memChunk is how many work units (reads, or pairs when Paired) a worker
// claims per cursor fetch. Mem reads are ~100x more expensive than exact
// lookups, so a smaller chunk than the exact path's keeps cancellation and
// progress responsive without measurable cursor contention.
const memChunk = 16

// MapReadsMemInto is MapReadsMem writing into a caller-provided result
// slice (len(dst) must equal len(reads)) — the allocation-free batch hot
// path. run.Workers controls parallelism (0 or 1 sequential, -1 all CPUs);
// results are written by index, so any worker count yields bit-identical
// output in the same order as the sequential schedule. run.Context is
// polled between chunks; cancellation abandons the batch mid-flight.
// run.Locate is ignored (mem results always carry positions).
func (ix *Index) MapReadsMemInto(dst []MemResult, reads []dna.Seq, opts MemOptions, run MapOptions) (MemStats, error) {
	if len(dst) != len(reads) {
		return MemStats{}, fmt.Errorf("core: result slice holds %d entries for %d reads", len(dst), len(reads))
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return MemStats{}, err
	}
	mem, err := ix.memState()
	if err != nil {
		return MemStats{}, err
	}
	workers := run.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	bs := memBatchPool.Get().(*memBatchState)
	// A work unit is one read, or one pair slot when Paired (the final slot
	// of an odd paired batch holds a lone read, mapped single-end exactly as
	// the sequential loop does).
	units := len(reads)
	if opts.Paired {
		units = (len(reads) + 1) / 2
	}
	every := run.ProgressEvery
	if every <= 0 {
		every = 1024
	}
	*bs = memBatchState{mem: mem, dst: dst, reads: reads, opts: opts, run: run, units: units, every: every}

	// The parallel fan-out lives in its own method: its goroutine closure
	// captures the error slot, and were it inline, that slot would escape —
	// and heap-allocate — on the sequential path too (escape is a property of
	// the variable, not the branch).
	var firstErr error
	if workers == 1 {
		firstErr = bs.worker()
	} else {
		firstErr = bs.runParallel(workers)
	}
	*bs = memBatchState{} // drop the borrowed slices before pooling
	memBatchPool.Put(bs)
	if firstErr != nil {
		return MemStats{}, firstErr
	}
	if run.Progress != nil {
		run.Progress(len(reads), len(reads))
	}

	var stats MemStats
	for i := range dst {
		stats.Add(dst[i])
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}
