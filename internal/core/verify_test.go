package core

import (
	"testing"

	"bwaver/internal/readsim"
)

func TestVerifySampled(t *testing.T) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: 3, RepeatFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 60, Length: 30, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := readsim.Seqs(sim)
	results := make([]MapResult, len(reads))
	for i, r := range reads {
		results[i] = ix.MapRead(r)
	}

	if err := VerifySampled(ix, reads, results, 7); err != nil {
		t.Fatalf("correct results rejected: %v", err)
	}
	if err := VerifySampled(ix, reads, results, 0); err != nil {
		t.Fatalf("stride 0 must disable: %v", err)
	}
	if err := VerifySampled(ix, reads[:10], results, 1); err == nil {
		t.Error("length mismatch accepted")
	}

	// Corrupt a sampled position: stride 1 samples everything.
	results[3].Forward.Start ^= 1
	if err := VerifySampled(ix, reads, results, 1); err == nil {
		t.Error("corrupted result passed the cross-check")
	}
	// A stride that skips index 3 does not see it.
	if err := VerifySampled(ix, reads, results, len(reads)); err != nil {
		t.Errorf("stride sampling only index 0 rejected clean read: %v", err)
	}
}
