package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSerializeRoundTripConfigs(t *testing.T) {
	ref := testGenome(t, 8000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 150, Length: 30, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: 8,
	})
	configs := []IndexConfig{
		{},
		{PlainBitvectors: true},
		{Locate: LocateSampled, SampleRate: 8},
		{Locate: LocateNone},
		{RRR: rrr.Params{BlockSize: 9, SuperblockFactor: 3}},
	}
	for _, cfg := range configs {
		orig := mustBuild(t, ref, cfg)
		back := roundTrip(t, orig)
		if back.RefLength() != orig.RefLength() {
			t.Fatalf("cfg %+v: length changed", cfg)
		}
		if back.Config().RRR != orig.Config().RRR ||
			back.Config().PlainBitvectors != orig.Config().PlainBitvectors ||
			back.Config().Locate != orig.Config().Locate {
			t.Fatalf("cfg %+v: config changed to %+v", cfg, back.Config())
		}
		wantLocate := cfg.withDefaults().Locate != LocateNone
		for _, r := range reads {
			a := orig.MapRead(r.Seq)
			b := back.MapRead(r.Seq)
			if a.Forward != b.Forward || a.Reverse != b.Reverse {
				t.Fatalf("cfg %+v: deserialized index disagrees on ranges", cfg)
			}
			if wantLocate && !a.Forward.Empty() {
				pa, err := orig.FM().Locate(a.Forward)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := back.FM().Locate(b.Forward)
				if err != nil {
					t.Fatal(err)
				}
				if !equalPositions(pa, pb) {
					t.Fatalf("cfg %+v: deserialized index disagrees on positions", cfg)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ref := testGenome(t, 4000)
	ix := mustBuild(t, ref, IndexConfig{})
	path := filepath.Join(t.TempDir(), "test.bwx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res := back.MapRead(ref[100:140])
	if !res.Mapped() {
		t.Error("loaded index failed to map")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bwx")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	ref := testGenome(t, 3000)
	ix := mustBuild(t, ref, IndexConfig{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at several depths.
	for _, cut := range []int{0, 3, 10, 40, len(good) / 2, len(good) - 1} {
		if _, err := ReadIndex(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("accepted index truncated to %d bytes", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Corrupted RRR class data: flip a byte inside the tree payload. The
	// reader must either error out or still produce a structurally valid
	// index — it must never panic.
	bad = append([]byte(nil), good...)
	bad[60] ^= 0x0F
	func() {
		defer func() {
			if recover() != nil {
				t.Error("ReadIndex panicked on corrupted payload")
			}
		}()
		ReadIndex(bytes.NewReader(bad))
	}()
}

func TestSerializedSizeReasonable(t *testing.T) {
	ref := testGenome(t, 50000)
	ix := mustBuild(t, ref, IndexConfig{Locate: LocateNone})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Without the SA the file should be in the ballpark of the structure
	// size (not the raw reference, not 10x larger).
	if buf.Len() > ix.Stats().StructureBytes*2+4096 {
		t.Errorf("serialized %d bytes for %d-byte structure", buf.Len(), ix.Stats().StructureBytes)
	}
}
