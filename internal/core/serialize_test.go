package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSerializeRoundTripConfigs(t *testing.T) {
	ref := testGenome(t, 8000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 150, Length: 30, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: 8,
	})
	configs := []IndexConfig{
		{},
		{PlainBitvectors: true},
		{Locate: LocateSampled, SampleRate: 8},
		{Locate: LocateNone},
		{RRR: rrr.Params{BlockSize: 9, SuperblockFactor: 3}},
	}
	for _, cfg := range configs {
		orig := mustBuild(t, ref, cfg)
		back := roundTrip(t, orig)
		if back.RefLength() != orig.RefLength() {
			t.Fatalf("cfg %+v: length changed", cfg)
		}
		if back.Config().RRR != orig.Config().RRR ||
			back.Config().PlainBitvectors != orig.Config().PlainBitvectors ||
			back.Config().Locate != orig.Config().Locate {
			t.Fatalf("cfg %+v: config changed to %+v", cfg, back.Config())
		}
		wantLocate := cfg.withDefaults().Locate != LocateNone
		for _, r := range reads {
			a := orig.MapRead(r.Seq)
			b := back.MapRead(r.Seq)
			if a.Forward != b.Forward || a.Reverse != b.Reverse {
				t.Fatalf("cfg %+v: deserialized index disagrees on ranges", cfg)
			}
			if wantLocate && !a.Forward.Empty() {
				pa, err := orig.FM().Locate(a.Forward)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := back.FM().Locate(b.Forward)
				if err != nil {
					t.Fatal(err)
				}
				if !equalPositions(pa, pb) {
					t.Fatalf("cfg %+v: deserialized index disagrees on positions", cfg)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ref := testGenome(t, 4000)
	ix := mustBuild(t, ref, IndexConfig{})
	path := filepath.Join(t.TempDir(), "test.bwx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res := back.MapRead(ref[100:140])
	if !res.Mapped() {
		t.Error("loaded index failed to map")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bwx")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	ref := testGenome(t, 3000)
	ix := mustBuild(t, ref, IndexConfig{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at several depths.
	for _, cut := range []int{0, 3, 10, 40, len(good) / 2, len(good) - 1} {
		if _, err := ReadIndex(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("accepted index truncated to %d bytes", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Corrupted RRR class data: flip a byte inside the tree payload. The
	// reader must either error out or still produce a structurally valid
	// index — it must never panic.
	bad = append([]byte(nil), good...)
	bad[60] ^= 0x0F
	func() {
		defer func() {
			if recover() != nil {
				t.Error("ReadIndex panicked on corrupted payload")
			}
		}()
		ReadIndex(bytes.NewReader(bad))
	}()
}

// The trailer must reject every corruption class fail-closed: truncation at
// any depth, a single flipped bit in any section (header, wavelet tree,
// suffix array, ftab, contigs, trailer), and stale trailer-less files —
// including old BWX1 images — with an error matching ErrIndexIntegrity.
func TestLoadFileCorruptionMatrix(t *testing.T) {
	ref := testGenome(t, 6000)
	ix := mustBuild(t, ref, IndexConfig{FtabK: 4})
	contigs, err := NewContigSet([]string{"chrA", "chrB"}, []int{3000, 3000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetContigs(contigs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "good.bwx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("control load failed: %v", err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		p := filepath.Join(dir, name+".bwx")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(p)
		if err == nil {
			t.Errorf("%s: load succeeded, want integrity failure", name)
			return
		}
		if !errors.Is(err, ErrIndexIntegrity) {
			t.Errorf("%s: error %v does not match ErrIndexIntegrity", name, err)
		}
	}

	// Truncations at several depths, including mid-trailer.
	for _, cut := range []int{0, 10, len(good) / 3, len(good) / 2, len(good) - trailerSize - 1, len(good) - 5, len(good) - 1} {
		check(fmt.Sprintf("trunc-%d", cut), good[:cut])
	}
	// One flipped bit in each section of the payload and in the trailer. The
	// offsets walk the file: header, tree, SA, ftab/contigs, trailer fields.
	payloadLen := len(good) - trailerSize
	for _, off := range []int{1, 8, payloadLen / 4, payloadLen / 2, 3 * payloadLen / 4, payloadLen - 2,
		payloadLen + 1, payloadLen + 6, payloadLen + 14} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		check(fmt.Sprintf("flip-%d", off), bad)
	}

	// A stale trailer-less file (raw WriteTo image, the pre-checksum layout).
	var raw bytes.Buffer
	if _, err := ix.WriteTo(&raw); err != nil {
		t.Fatal(err)
	}
	check("stale-raw", raw.Bytes())
	staleErrPath := filepath.Join(dir, "stale-raw.bwx")
	if _, err := LoadFile(staleErrPath); err == nil || !errors.Is(err, ErrIndexIntegrity) {
		t.Errorf("stale file error = %v, want ErrIndexIntegrity", err)
	}
	// Same image with a BWX1 magic: an old-format file must also fail closed
	// at the trailer check, long before version sniffing.
	v1 := append([]byte(nil), raw.Bytes()...)
	binary.LittleEndian.PutUint32(v1[0:4], 0x42575831)
	check("stale-bwx1", v1)
}

// SaveFile must be atomic: no temp droppings after success, and a failed
// save (unwritable directory) must not clobber the existing file.
func TestSaveFileAtomic(t *testing.T) {
	ref := testGenome(t, 2000)
	ix := mustBuild(t, ref, IndexConfig{})
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.bwx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after save, want only the index", len(entries))
	}
	if err := ix.SaveFile(filepath.Join(dir, "missing-subdir", "ix.bwx")); err == nil {
		t.Error("save into a missing directory should fail")
	}
	if _, err := LoadFile(path); err != nil {
		t.Errorf("original file unreadable after failed save: %v", err)
	}
}

func TestSerializedSizeReasonable(t *testing.T) {
	ref := testGenome(t, 50000)
	ix := mustBuild(t, ref, IndexConfig{Locate: LocateNone})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Without the SA the file should be in the ballpark of the structure
	// size (not the raw reference, not 10x larger).
	if buf.Len() > ix.Stats().StructureBytes*2+4096 {
		t.Errorf("serialized %d bytes for %d-byte structure", buf.Len(), ix.Stats().StructureBytes)
	}
}
