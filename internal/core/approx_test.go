package core

import (
	"math/rand"
	"testing"

	"bwaver/internal/dna"
)

func TestMapReadApproxRescuesMutation(t *testing.T) {
	ref := testGenome(t, 20000)
	ix := mustBuild(t, ref, IndexConfig{})
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		pos := rng.Intn(len(ref) - 40)
		read := ref[pos : pos+40].Clone()
		p := rng.Intn(40)
		read[p] = dna.Base((int(read[p]) + 1 + rng.Intn(3)) % 4)

		exact := ix.MapRead(read)
		if exact.Mapped() {
			continue // rare repeat coincidence; skip
		}
		res, err := ix.MapReadApprox(read, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mapped() {
			t.Fatalf("trial %d: mutated read not rescued at k=1", trial)
		}
		if res.BestMismatches() != 1 {
			t.Fatalf("trial %d: best stratum %d, want 1", trial, res.BestMismatches())
		}
		// The planted origin must be among the located forward positions.
		found := false
		for _, m := range res.Forward {
			ps, err := ix.FM().Locate(m.Range)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range ps {
				if int(q) == pos {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: origin %d not located", trial, pos)
		}
	}
}

func TestMapReadApproxReverseStrand(t *testing.T) {
	ref := testGenome(t, 10000)
	ix := mustBuild(t, ref, IndexConfig{})
	read := ref[500:540].ReverseComplement()
	read[3] = read[3].Complement() // one mismatch
	res, err := ix.MapReadApprox(read, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reverse) == 0 {
		t.Error("reverse-strand approximate match missed")
	}
	if res.Steps <= len(read) {
		t.Errorf("steps %d implausibly low for branching search", res.Steps)
	}
}

func TestMapReadApproxBudgetValidation(t *testing.T) {
	ref := testGenome(t, 2000)
	ix := mustBuild(t, ref, IndexConfig{})
	if _, err := ix.MapReadApprox(ref[0:20], -1); err == nil {
		t.Error("accepted negative budget")
	}
	if _, err := ix.MapReadApprox(ref[0:20], 99); err == nil {
		t.Error("accepted huge budget")
	}
}

func TestApproxResultAccessorsEmpty(t *testing.T) {
	var r ApproxResult
	if r.Mapped() || r.Occurrences() != 0 || r.BestMismatches() != -1 {
		t.Errorf("zero ApproxResult accessors wrong: %+v", r)
	}
}

func TestMapReadsApproxParallelMatchesSerial(t *testing.T) {
	ref := testGenome(t, 15000)
	rng := rand.New(rand.NewSource(71))
	var reads []dna.Seq
	for i := 0; i < 120; i++ {
		pos := rng.Intn(len(ref) - 40)
		read := ref[pos : pos+40].Clone()
		if i%2 == 0 {
			p := rng.Intn(40)
			read[p] = dna.Base((int(read[p]) + 1 + rng.Intn(3)) % 4)
		}
		reads = append(reads, read)
	}
	ix := mustBuild(t, ref, IndexConfig{})
	serial, err := ix.MapReadsApprox(reads, 1, MapOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ix.MapReadsApprox(reads, 1, MapOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].BestMismatches() != parallel[i].BestMismatches() ||
			serial[i].Occurrences() != parallel[i].Occurrences() {
			t.Fatalf("read %d: serial and parallel approx mapping differ", i)
		}
		if !serial[i].Mapped() {
			t.Fatalf("read %d with <=1 mismatch did not map", i)
		}
	}
	// Budget validation propagates.
	if _, err := ix.MapReadsApprox(reads, -1, MapOptions{}); err == nil {
		t.Error("negative budget accepted")
	}
}
