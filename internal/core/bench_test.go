package core

import (
	"io"
	"testing"

	"bwaver/internal/readsim"
)

func benchInputs(b *testing.B) (ref []readsim.Read, ix *Index) {
	b.Helper()
	genome, err := readsim.EColiLike(1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: 5000, Length: 100, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	index, err := BuildIndex(genome, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return reads, index
}

func BenchmarkBuildIndex(b *testing.B) {
	genome, err := readsim.EColiLike(1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(genome)))
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(genome, IndexConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapRead(b *testing.B) {
	reads, ix := benchInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.MapRead(reads[i%len(reads)].Seq)
	}
}

func BenchmarkMapReadsLocate(b *testing.B) {
	reads, ix := benchInputs(b)
	seqs := readsim.Seqs(reads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MapReads(seqs[:500], MapOptions{Locate: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeIndex(b *testing.B) {
	_, ix := benchInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := ix.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}
