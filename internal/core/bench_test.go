package core

import (
	"fmt"
	"io"
	"testing"

	"bwaver/internal/readsim"
)

func benchInputs(b *testing.B) (ref []readsim.Read, ix *Index) {
	b.Helper()
	genome, err := readsim.EColiLike(1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: 5000, Length: 100, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	index, err := BuildIndex(genome, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return reads, index
}

func BenchmarkBuildIndex(b *testing.B) {
	genome, err := readsim.EColiLike(1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(genome)))
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(genome, IndexConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapRead(b *testing.B) {
	reads, ix := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.MapRead(reads[i%len(reads)].Seq)
	}
}

// BenchmarkMapReads is the ftab acceptance benchmark: the batched
// zero-allocation pipeline over short Table I-style reads, with and without
// the prefix table. The k=10 arm should beat k=0 by well over 1.5x at
// 0 allocs/read.
func BenchmarkMapReads(b *testing.B) {
	genome, err := readsim.EColiLike(1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.Simulate(genome, readsim.ReadsConfig{
		Count: 5000, Length: 35, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := BuildIndex(genome, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	seqs := readsim.Seqs(reads)
	dst := make([]MapResult, len(seqs))
	for _, k := range []int{0, 10} {
		if err := ix.EnsureFtab(k); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ftab-k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.MapReadsInto(dst, seqs, MapOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*len(seqs))/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

func BenchmarkMapReadsLocate(b *testing.B) {
	reads, ix := benchInputs(b)
	seqs := readsim.Seqs(reads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MapReads(seqs[:500], MapOptions{Locate: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeIndex(b *testing.B) {
	_, ix := benchInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := ix.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}
