package core

import (
	"fmt"

	"bwaver/internal/dna"
)

// ExtractReference reconstructs the original reference sequence from the
// index alone by LF-walking the FM-index from the sentinel row — the BWT is
// a reversible permutation, so the succinct structure is also a lossless
// archive of the genome. The walk costs one Occ query per base
// (O(n · levels · sf) on the succinct structure), which keeps `bwaver
// extract` practical for chromosome-scale references.
func (ix *Index) ExtractReference() (dna.Seq, error) {
	fm := ix.fm
	n := fm.Len()
	out := make(dna.Seq, n)
	row := 0 // row 0 is the sentinel suffix; its BWT symbol is the last base
	for i := n - 1; i >= 0; i-- {
		if row == fm.Primary() {
			return nil, fmt.Errorf("core: extraction hit the sentinel row at base %d; index is corrupt", i)
		}
		next, err := fm.LF(row)
		if err != nil {
			return nil, fmt.Errorf("core: extraction failed at base %d: %w", i, err)
		}
		// LF consumed the symbol of this row; recover it from the C-array
		// bucket the destination row falls into.
		sym, err := symbolForRow(fm, next)
		if err != nil {
			return nil, err
		}
		out[i] = dna.Base(sym)
		row = next
	}
	if row != fm.Primary() {
		return nil, fmt.Errorf("core: extraction ended at row %d, want sentinel row %d; index is corrupt", row, fm.Primary())
	}
	return out, nil
}

// symbolForRow returns the first-column symbol of a non-sentinel row, i.e.
// the symbol whose C-array bucket contains the row.
func symbolForRow(fm interface {
	Sigma() int
	SymbolCount(uint8) int
}, row int) (uint8, error) {
	// cFull[0] = 1 (sentinel row); walk the buckets.
	lo := 1
	for s := 0; s < fm.Sigma(); s++ {
		hi := lo + fm.SymbolCount(uint8(s))
		if row >= lo && row < hi {
			return uint8(s), nil
		}
		lo = hi
	}
	return 0, fmt.Errorf("core: row %d outside every symbol bucket", row)
}
