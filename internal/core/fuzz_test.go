package core

import (
	"bytes"
	"testing"

	"bwaver/internal/dna"
)

// FuzzReadIndex hammers the index deserializer with arbitrary bytes: it
// must never panic, and anything it accepts must behave like an index
// (consistent lengths, queries that do not crash).
func FuzzReadIndex(f *testing.F) {
	ref := dna.MustParseSeq("ACGTACGGTACCTTAGGCAATCGAACGTACGGTACCTTAGGC")
	for _, cfg := range []IndexConfig{{}, {Locate: LocateNone}, {PlainBitvectors: true}} {
		ix, err := BuildIndex(ref, cfg)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ix.RefLength() < 0 {
			t.Fatal("negative reference length")
		}
		// Queries on an accepted index must not crash and must return
		// sane ranges.
		res := ix.MapRead(dna.MustParseSeq("ACGT"))
		if res.Forward.Count() < 0 || res.Reverse.Count() < 0 {
			t.Fatalf("negative match count: %+v", res)
		}
		if res.Forward.Count() > ix.RefLength()+1 {
			t.Fatalf("match count %d exceeds possible rows", res.Forward.Count())
		}
	})
}
