package core

import (
	"fmt"
	"sort"
)

// Multi-record references. Mapping tools index a multi-chromosome FASTA by
// concatenating its records; occurrence positions then live in concatenated
// coordinates and must be translated back to (contig, offset) pairs — and
// hits that straddle a record boundary are artifacts of the concatenation
// and must be rejected, since no contiguous genomic locus corresponds to
// them. ContigSet provides both operations.

// Contig is one reference record in concatenation order.
type Contig struct {
	Name   string
	Offset int // start position in the concatenated sequence
	Length int
}

// End returns the exclusive end of the contig in concatenated coordinates.
func (c Contig) End() int { return c.Offset + c.Length }

// ContigSet translates concatenated positions to per-contig coordinates.
type ContigSet struct {
	contigs []Contig
	total   int
}

// NewContigSet builds a set from record names and lengths in file order.
func NewContigSet(names []string, lengths []int) (*ContigSet, error) {
	if len(names) != len(lengths) {
		return nil, fmt.Errorf("core: %d contig names for %d lengths", len(names), len(lengths))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: empty contig set")
	}
	seen := make(map[string]bool, len(names))
	cs := &ContigSet{contigs: make([]Contig, len(names))}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("core: contig %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("core: duplicate contig name %q", name)
		}
		seen[name] = true
		if lengths[i] <= 0 {
			return nil, fmt.Errorf("core: contig %q has non-positive length %d", name, lengths[i])
		}
		cs.contigs[i] = Contig{Name: name, Offset: cs.total, Length: lengths[i]}
		cs.total += lengths[i]
	}
	return cs, nil
}

// Total returns the concatenated length.
func (cs *ContigSet) Total() int { return cs.total }

// Count returns the number of contigs.
func (cs *ContigSet) Count() int { return len(cs.contigs) }

// Contig returns the i-th contig.
func (cs *ContigSet) Contig(i int) Contig { return cs.contigs[i] }

// Contigs returns all contigs in order.
func (cs *ContigSet) Contigs() []Contig { return cs.contigs }

// Resolve translates a concatenated hit covering [pos, pos+span) into a
// contig-relative position. ok is false when the hit starts outside the
// concatenation or straddles a contig boundary — the false-positive class
// concatenated indexing introduces.
func (cs *ContigSet) Resolve(pos, span int) (contig Contig, offset int, ok bool) {
	if pos < 0 || pos >= cs.total || span < 0 || pos+span > cs.total {
		return Contig{}, 0, false
	}
	// Greatest contig with Offset <= pos.
	i := sort.Search(len(cs.contigs), func(j int) bool { return cs.contigs[j].Offset > pos }) - 1
	c := cs.contigs[i]
	if pos+span > c.End() {
		return Contig{}, 0, false
	}
	return c, pos - c.Offset, true
}

// SetContigs attaches contig metadata to the index. The summed contig
// lengths must equal the indexed reference length.
func (ix *Index) SetContigs(cs *ContigSet) error {
	if cs != nil && cs.Total() != ix.RefLength() {
		return fmt.Errorf("core: contigs cover %d bases, index holds %d", cs.Total(), ix.RefLength())
	}
	ix.contigs = cs
	return nil
}

// Contigs returns the attached contig metadata, or nil for a single
// anonymous reference.
func (ix *Index) Contigs() *ContigSet { return ix.contigs }
