// Package core is the BWaveR library: it assembles the substrates
// (suffix array, BWT, wavelet tree over RRR bit-vectors, FM-index) into the
// three-step pipeline of the paper (§III-D) — BWT and SA computation, BWT
// encoding, and sequence mapping — and exposes the index and mapping API
// that the CLI, web server, FPGA simulator, and benches all drive.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bwaver/internal/bwt"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/obs"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
	"bwaver/internal/wavelet"
)

// LocateMode selects how occurrence positions are recovered.
type LocateMode int

const (
	// LocateFullSA keeps the complete suffix array on the host, the
	// paper's configuration: O(1) per occurrence, 4 bytes per base.
	LocateFullSA LocateMode = iota
	// LocateSampled keeps a sampled suffix array and walks LF to the
	// nearest sample, trading time for space (DESIGN.md extension).
	LocateSampled
	// LocateNone builds a count-only index.
	LocateNone
)

// String implements fmt.Stringer.
func (m LocateMode) String() string {
	switch m {
	case LocateFullSA:
		return "full-sa"
	case LocateSampled:
		return "sampled-sa"
	default:
		return "none"
	}
}

// IndexConfig controls index construction.
type IndexConfig struct {
	// RRR sets the succinct structure's block size and superblock factor;
	// the zero value means the paper's hardware parameters (b=15, sf=50).
	RRR rrr.Params
	// PlainBitvectors switches the wavelet nodes to uncompressed
	// bit-vectors — the space/time ablation, not the paper's design.
	PlainBitvectors bool
	// Locate selects the locate structure; the zero value is LocateFullSA.
	Locate LocateMode
	// SampleRate is the sampled-SA rate when Locate == LocateSampled;
	// zero means 32.
	SampleRate int
	// SAAlgorithm selects the suffix-array construction; the zero value is
	// SAIS. All three produce identical arrays (cross-checked in the
	// suffix-array tests); the choice only affects build time and memory.
	SAAlgorithm SAAlgorithm
	// FtabK, when > 0, builds an order-k prefix-lookup table that replaces
	// the first k backward-search steps with one lookup (8*4^k bytes; see
	// fmindex.Ftab). The zero value builds no table, preserving the paper's
	// original structure; DefaultFtabK is what the CLI and server pass.
	FtabK int
}

// DefaultFtabK is the prefix-table order the CLI and server default to:
// 4^10 intervals, ~8 MiB — the Bowtie-style sweet spot between lookup
// coverage and BRAM footprint.
const DefaultFtabK = 10

// SAAlgorithm names a suffix-array construction.
type SAAlgorithm int

// The available constructions.
const (
	// SAIS is the linear-time induced-sorting algorithm (default).
	SAIS SAAlgorithm = iota
	// DC3 is the linear-time skew algorithm.
	DC3
	// Doubling is the O(n log^2 n) prefix-doubling algorithm.
	Doubling
)

// String implements fmt.Stringer.
func (a SAAlgorithm) String() string {
	switch a {
	case DC3:
		return "dc3"
	case Doubling:
		return "doubling"
	default:
		return "sais"
	}
}

func (a SAAlgorithm) build(text []uint8, sigma int) ([]int32, error) {
	switch a {
	case SAIS:
		return suffixarray.Build(text, sigma)
	case DC3:
		return suffixarray.BuildDC3(text, sigma)
	case Doubling:
		return suffixarray.BuildDoubling(text, sigma)
	default:
		return nil, fmt.Errorf("core: unknown suffix-array algorithm %d", a)
	}
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.RRR == (rrr.Params{}) {
		c.RRR = rrr.DefaultParams
	}
	if c.SampleRate == 0 {
		c.SampleRate = 32
	}
	return c
}

// BuildStats reports what index construction did, feeding Figs. 5 and 6.
type BuildStats struct {
	RefLength int
	// Stage timings of the paper's three-step flow; EncodeTime is what
	// Fig. 6 plots.
	SATime     time.Duration
	BWTTime    time.Duration
	EncodeTime time.Duration
	// StructureBytes is the succinct structure's size (Fig. 5);
	// SharedBytes the global rank table shared across wavelet nodes.
	StructureBytes int
	SharedBytes    int
	// FtabTime and FtabBytes cover the optional prefix-table phase
	// (zero when IndexConfig.FtabK is 0).
	FtabTime  time.Duration
	FtabBytes int
	// UncompressedBytes is the 1-byte-per-symbol BWT baseline the paper
	// compares against.
	UncompressedBytes int
	BWTRuns           int
	BWTEntropy        float64
}

// CompressionRatio returns structure size over the uncompressed BWT
// representation (1 byte per base, as the paper counts it).
func (s BuildStats) CompressionRatio() float64 {
	if s.UncompressedBytes == 0 {
		return 0
	}
	return float64(s.StructureBytes+s.SharedBytes) / float64(s.UncompressedBytes)
}

// Index is a built BWaveR index over one reference sequence.
type Index struct {
	fm      *fmindex.Index
	config  IndexConfig
	stats   BuildStats
	contigs *ContigSet // nil for a single anonymous reference

	// memMu guards the lazily-built seed-and-extend state (bidirectional
	// index plus extracted reference text); see EnsureMem. Concurrent mem
	// jobs over one cached index share a single build.
	memMu sync.Mutex
	mem   *memState
}

// BuildIndex runs the first two pipeline steps over the reference: suffix
// array and BWT computation, then succinct encoding. It is BuildIndexCtx
// without cancellation.
func BuildIndex(ref dna.Seq, cfg IndexConfig) (*Index, error) {
	return BuildIndexCtx(context.Background(), ref, cfg)
}

// BuildIndexCtx is BuildIndex with cancellation: the context is checked
// between the build phases (suffix array, BWT, succinct encoding, locate
// structure), so a canceled job stops at the next phase boundary instead of
// running the whole construction to completion while holding resources.
// When the context carries an obs trace, each phase emits a span.
func BuildIndexCtx(ctx context.Context, ref dna.Seq, cfg IndexConfig) (*Index, error) {
	cfg = cfg.withDefaults()
	if err := cfg.RRR.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	text := make([]uint8, len(ref))
	for i, b := range ref {
		text[i] = uint8(b)
	}

	var stats BuildStats
	stats.RefLength = len(ref)
	stats.UncompressedBytes = len(ref)

	start := time.Now()
	_, saSpan := obs.StartSpan(ctx, "build.sa")
	saSpan.SetAttr("algorithm", cfg.SAAlgorithm.String())
	sa, err := cfg.SAAlgorithm.build(text, dna.AlphabetSize)
	saSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: suffix array: %w", err)
	}
	stats.SATime = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start = time.Now()
	_, bwtSpan := obs.StartSpan(ctx, "build.bwt")
	transform, err := bwt.Transform(text, sa)
	bwtSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: bwt: %w", err)
	}
	stats.BWTTime = time.Since(start)
	stats.BWTRuns = transform.RunCount()
	stats.BWTEntropy = transform.Entropy(dna.AlphabetSize)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start = time.Now()
	var backend wavelet.Backend
	if cfg.PlainBitvectors {
		backend = wavelet.PlainBackend()
	} else {
		backend = wavelet.RRRBackend(cfg.RRR)
	}
	_, encSpan := obs.StartSpan(ctx, "build.encode")
	occ, err := fmindex.NewWaveletOccBackend(transform.Data, dna.AlphabetSize, backend)
	encSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: encoding: %w", err)
	}
	stats.EncodeTime = time.Since(start)
	stats.StructureBytes = occ.Tree.SizeBytes()
	stats.SharedBytes = occ.Tree.SharedSizeBytes()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	opts := fmindex.Options{}
	switch cfg.Locate {
	case LocateFullSA:
		opts.SA = sa
	case LocateSampled:
		sampled, err := fmindex.NewSampledSA(sa, cfg.SampleRate)
		if err != nil {
			return nil, fmt.Errorf("core: sampled SA: %w", err)
		}
		opts.Sampled = sampled
	case LocateNone:
	default:
		return nil, fmt.Errorf("core: unknown locate mode %d", cfg.Locate)
	}

	fm, err := fmindex.New(transform, dna.AlphabetSize, occ, opts)
	if err != nil {
		return nil, fmt.Errorf("core: fm-index: %w", err)
	}
	if cfg.FtabK > 0 {
		start = time.Now()
		_, ftabSpan := obs.StartSpan(ctx, "build.ftab")
		ftab, err := fm.BuildFtab(cfg.FtabK)
		ftabSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: ftab: %w", err)
		}
		fm.SetFtab(ftab)
		stats.FtabTime = time.Since(start)
		stats.FtabBytes = ftab.SizeBytes()
	}
	return &Index{fm: fm, config: cfg, stats: stats}, nil
}

// EnsureFtab attaches an order-k prefix table, building one if the index has
// none or one of a different order — the rebuild-on-demand path for indexes
// deserialized from the pre-ftab file format. k <= 0 drops the table.
func (ix *Index) EnsureFtab(k int) error {
	if k <= 0 {
		ix.fm.SetFtab(nil)
		ix.config.FtabK = 0
		ix.stats.FtabBytes = 0
		return nil
	}
	if f := ix.fm.Ftab(); f != nil && f.K() == k {
		ix.config.FtabK = k
		return nil
	}
	start := time.Now()
	f, err := ix.fm.BuildFtab(k)
	if err != nil {
		return err
	}
	ix.fm.SetFtab(f)
	ix.config.FtabK = k
	ix.stats.FtabTime = time.Since(start)
	ix.stats.FtabBytes = f.SizeBytes()
	return nil
}

// DropFtab detaches the prefix table (the ftab-off ablation arm).
func (ix *Index) DropFtab() { _ = ix.EnsureFtab(0) }

// FtabK returns the attached prefix table's order, 0 if none.
func (ix *Index) FtabK() int {
	if f := ix.fm.Ftab(); f != nil {
		return f.K()
	}
	return 0
}

// FtabBytes returns the prefix table's footprint, 0 if none — charged
// against the simulator's BRAM gate alongside StructureBytes.
func (ix *Index) FtabBytes() int {
	if f := ix.fm.Ftab(); f != nil {
		return f.SizeBytes()
	}
	return 0
}

// FtabStats snapshots the prefix table's lookup counters (zero if none).
func (ix *Index) FtabStats() fmindex.FtabStats {
	if f := ix.fm.Ftab(); f != nil {
		return f.Stats()
	}
	return fmindex.FtabStats{}
}

// FM exposes the underlying FM-index for step-level consumers such as the
// FPGA simulator.
func (ix *Index) FM() *fmindex.Index { return ix.fm }

// Config returns the configuration the index was built with.
func (ix *Index) Config() IndexConfig { return ix.config }

// Stats returns the build statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// RefLength returns the reference length in bases.
func (ix *Index) RefLength() int { return ix.fm.Len() }

// SizeBytes returns the total index footprint (structure, shared table, and
// locate structure).
func (ix *Index) SizeBytes() int { return ix.fm.SizeBytes() }

// StructureBytes returns just the succinct BWT structure plus shared table,
// the quantity Fig. 5 plots.
func (ix *Index) StructureBytes() int { return ix.stats.StructureBytes + ix.stats.SharedBytes }

// MapResult is the outcome of mapping one read and its reverse complement,
// mirroring what the paper's kernel returns to the host per query.
type MapResult struct {
	// Forward and Reverse are the suffix-array row ranges of the read and
	// of its reverse complement.
	Forward, Reverse fmindex.Range
	// ForwardPositions and ReversePositions are the located reference
	// occurrences (filled only when MapOptions.Locate is set).
	ForwardPositions, ReversePositions []int32
	// Steps is the larger of the two backward-search step counts; the two
	// searches run in parallel in hardware (§III-C), so this drives the
	// kernel cycle model.
	Steps int
}

// Mapped reports whether either orientation occurs in the reference.
func (m MapResult) Mapped() bool { return !m.Forward.Empty() || !m.Reverse.Empty() }

// Occurrences returns the total number of occurrences across both strands.
func (m MapResult) Occurrences() int { return m.Forward.Count() + m.Reverse.Count() }

// mapBuffer is a worker's reusable scratch for the two search patterns. The
// locate slab is deliberately not here: located positions outlive the call
// as subslices of their slab, so that memory belongs to the results.
type mapBuffer struct {
	fw, rc []uint8
}

// mapBufPool recycles search scratch across calls, the allocation-free
// steady state: after warm-up the count-only hot path performs no heap
// allocation per read.
var mapBufPool = sync.Pool{New: func() any { return new(mapBuffer) }}

// mapReadBuf maps one read using buf's reusable pattern buffers. useFtab
// gates the prefix-table path so a consumer whose table was evicted (the
// simulator's BRAM degrade) can stay consistent with its own cycle model.
func (ix *Index) mapReadBuf(buf *mapBuffer, read dna.Seq, useFtab bool) MapResult {
	m := len(read)
	if cap(buf.fw) < m {
		buf.fw = make([]uint8, m)
		buf.rc = make([]uint8, m)
	}
	fw, rc := buf.fw[:m], buf.rc[:m]
	for i, b := range read {
		fw[i] = uint8(b)
		rc[m-1-i] = uint8(b.Complement())
	}
	var res MapResult
	var fwSteps, rcSteps int
	if useFtab {
		res.Forward, fwSteps = ix.fm.SearchWithFtabSteps(fw)
		res.Reverse, rcSteps = ix.fm.SearchWithFtabSteps(rc)
	} else {
		res.Forward, fwSteps = ix.fm.CountSteps(fw)
		res.Reverse, rcSteps = ix.fm.CountSteps(rc)
	}
	// The two searches run in parallel pipelines in hardware (§III-C), so
	// the slower one bounds the query's latency.
	res.Steps = max(fwSteps, rcSteps)
	return res
}

// MapRead maps one read and its reverse complement (count only), through
// the prefix table when the index carries one.
func (ix *Index) MapRead(read dna.Seq) MapResult {
	return ix.MapReadMode(read, true)
}

// MapReadMode is MapRead with explicit prefix-table control: useFtab=false
// forces the plain backward search even on an index that has a table — the
// mode a BRAM-degraded kernel runs in.
func (ix *Index) MapReadMode(read dna.Seq, useFtab bool) MapResult {
	buf := mapBufPool.Get().(*mapBuffer)
	res := ix.mapReadBuf(buf, read, useFtab)
	mapBufPool.Put(buf)
	return res
}

// MapOptions control batch mapping.
type MapOptions struct {
	// Context, if non-nil, cancels the batch: worker loops stop between
	// reads and the call returns the context's error. A nil Context maps
	// to completion, preserving the historical behaviour.
	Context context.Context
	// Locate fills occurrence positions, the paper's host-side SA lookup.
	Locate bool
	// Workers is the number of parallel mapping goroutines; 0 or 1 keeps
	// the single-threaded behaviour of the paper's software baseline, -1
	// uses all CPUs.
	Workers int
	// Progress, if non-nil, is called with (done, total) roughly every
	// ProgressEvery completed reads and once at the end. With Workers > 1
	// it is called from mapping goroutines and must be safe for concurrent
	// use.
	Progress func(done, total int)
	// ProgressEvery is the reporting granularity; 0 means 1024.
	ProgressEvery int
}

// MapStats aggregates a batch mapping run.
type MapStats struct {
	Reads       int
	MappedReads int
	Occurrences int
	TotalSteps  int
	Elapsed     time.Duration
}

// MappingRatio returns the fraction of reads that mapped.
func (s MapStats) MappingRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.MappedReads) / float64(s.Reads)
}

// ReadsPerSecond returns mapping throughput.
func (s MapStats) ReadsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Reads) / s.Elapsed.Seconds()
}

// MapReads maps a batch of reads, the paper's "sequence mapping" step on
// the CPU path (BWaveR-CPU).
func (ix *Index) MapReads(reads []dna.Seq, opts MapOptions) ([]MapResult, MapStats, error) {
	results := make([]MapResult, len(reads))
	stats, err := ix.MapReadsInto(results, reads, opts)
	if err != nil {
		return nil, MapStats{}, err
	}
	return results, stats, nil
}

// mapChunk is how many reads a worker claims per fetch from the shared
// cursor: large enough that the atomic add vanishes against the search
// work, small enough that progress and cancellation stay responsive.
const mapChunk = 64

// MapReadsInto is MapReads writing into a caller-provided result slice
// (len(dst) must equal len(reads)) — the allocation-free hot path. Workers
// claim fixed-size chunks off an atomic cursor instead of receiving reads
// over a channel, and reuse pooled pattern scratch, so the count-only
// steady state allocates nothing per read. With Locate set, positions are
// appended to one growing slab per worker and results hold subslices of it,
// amortizing locate allocations to the slab's doubling growth.
func (ix *Index) MapReadsInto(dst []MapResult, reads []dna.Seq, opts MapOptions) (MapStats, error) {
	if len(dst) != len(reads) {
		return MapStats{}, fmt.Errorf("core: result slice holds %d entries for %d reads", len(dst), len(reads))
	}
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()

	every := opts.ProgressEvery
	if every <= 0 {
		every = 1024
	}
	var (
		cursor atomic.Int64
		done   atomic.Int64
	)
	worker := func() error {
		buf := mapBufPool.Get().(*mapBuffer)
		defer mapBufPool.Put(buf)
		var slab []int32
		for {
			end := int(cursor.Add(mapChunk))
			begin := end - mapChunk
			if begin >= len(reads) {
				return nil
			}
			end = min(end, len(reads))
			if opts.Context != nil {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			for i := begin; i < end; i++ {
				res := ix.mapReadBuf(buf, reads[i], true)
				if opts.Locate {
					var err error
					a := len(slab)
					if slab, err = ix.fm.LocateAppend(slab, res.Forward); err != nil {
						return err
					}
					b := len(slab)
					if slab, err = ix.fm.LocateAppend(slab, res.Reverse); err != nil {
						return err
					}
					// Subslices stay valid across later slab growth: append
					// copies the prefix, and slab contents are never mutated.
					if b > a {
						res.ForwardPositions = slab[a:b:b]
					}
					if c := len(slab); c > b {
						res.ReversePositions = slab[b:c:c]
					}
				}
				dst[i] = res
			}
			if opts.Progress != nil {
				d := done.Add(int64(end - begin))
				if d/int64(every) != (d-int64(end-begin))/int64(every) {
					opts.Progress(int(d), len(reads))
				}
			}
		}
	}

	var firstErr error
	if workers == 1 {
		firstErr = worker()
	} else {
		var (
			wg    sync.WaitGroup
			errMu sync.Mutex
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := worker(); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return MapStats{}, firstErr
	}
	if opts.Progress != nil {
		opts.Progress(len(reads), len(reads))
	}

	stats := MapStats{Reads: len(reads), Elapsed: time.Since(start)}
	for i := range dst {
		if dst[i].Mapped() {
			stats.MappedReads++
		}
		stats.Occurrences += dst[i].Occurrences()
		stats.TotalSteps += dst[i].Steps
	}
	return stats, nil
}
