// Package core is the BWaveR library: it assembles the substrates
// (suffix array, BWT, wavelet tree over RRR bit-vectors, FM-index) into the
// three-step pipeline of the paper (§III-D) — BWT and SA computation, BWT
// encoding, and sequence mapping — and exposes the index and mapping API
// that the CLI, web server, FPGA simulator, and benches all drive.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bwaver/internal/bwt"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/obs"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
	"bwaver/internal/wavelet"
)

// LocateMode selects how occurrence positions are recovered.
type LocateMode int

const (
	// LocateFullSA keeps the complete suffix array on the host, the
	// paper's configuration: O(1) per occurrence, 4 bytes per base.
	LocateFullSA LocateMode = iota
	// LocateSampled keeps a sampled suffix array and walks LF to the
	// nearest sample, trading time for space (DESIGN.md extension).
	LocateSampled
	// LocateNone builds a count-only index.
	LocateNone
)

// String implements fmt.Stringer.
func (m LocateMode) String() string {
	switch m {
	case LocateFullSA:
		return "full-sa"
	case LocateSampled:
		return "sampled-sa"
	default:
		return "none"
	}
}

// IndexConfig controls index construction.
type IndexConfig struct {
	// RRR sets the succinct structure's block size and superblock factor;
	// the zero value means the paper's hardware parameters (b=15, sf=50).
	RRR rrr.Params
	// PlainBitvectors switches the wavelet nodes to uncompressed
	// bit-vectors — the space/time ablation, not the paper's design.
	PlainBitvectors bool
	// Locate selects the locate structure; the zero value is LocateFullSA.
	Locate LocateMode
	// SampleRate is the sampled-SA rate when Locate == LocateSampled;
	// zero means 32.
	SampleRate int
	// SAAlgorithm selects the suffix-array construction; the zero value is
	// SAIS. All three produce identical arrays (cross-checked in the
	// suffix-array tests); the choice only affects build time and memory.
	SAAlgorithm SAAlgorithm
}

// SAAlgorithm names a suffix-array construction.
type SAAlgorithm int

// The available constructions.
const (
	// SAIS is the linear-time induced-sorting algorithm (default).
	SAIS SAAlgorithm = iota
	// DC3 is the linear-time skew algorithm.
	DC3
	// Doubling is the O(n log^2 n) prefix-doubling algorithm.
	Doubling
)

// String implements fmt.Stringer.
func (a SAAlgorithm) String() string {
	switch a {
	case DC3:
		return "dc3"
	case Doubling:
		return "doubling"
	default:
		return "sais"
	}
}

func (a SAAlgorithm) build(text []uint8, sigma int) ([]int32, error) {
	switch a {
	case SAIS:
		return suffixarray.Build(text, sigma)
	case DC3:
		return suffixarray.BuildDC3(text, sigma)
	case Doubling:
		return suffixarray.BuildDoubling(text, sigma)
	default:
		return nil, fmt.Errorf("core: unknown suffix-array algorithm %d", a)
	}
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.RRR == (rrr.Params{}) {
		c.RRR = rrr.DefaultParams
	}
	if c.SampleRate == 0 {
		c.SampleRate = 32
	}
	return c
}

// BuildStats reports what index construction did, feeding Figs. 5 and 6.
type BuildStats struct {
	RefLength int
	// Stage timings of the paper's three-step flow; EncodeTime is what
	// Fig. 6 plots.
	SATime     time.Duration
	BWTTime    time.Duration
	EncodeTime time.Duration
	// StructureBytes is the succinct structure's size (Fig. 5);
	// SharedBytes the global rank table shared across wavelet nodes.
	StructureBytes int
	SharedBytes    int
	// UncompressedBytes is the 1-byte-per-symbol BWT baseline the paper
	// compares against.
	UncompressedBytes int
	BWTRuns           int
	BWTEntropy        float64
}

// CompressionRatio returns structure size over the uncompressed BWT
// representation (1 byte per base, as the paper counts it).
func (s BuildStats) CompressionRatio() float64 {
	if s.UncompressedBytes == 0 {
		return 0
	}
	return float64(s.StructureBytes+s.SharedBytes) / float64(s.UncompressedBytes)
}

// Index is a built BWaveR index over one reference sequence.
type Index struct {
	fm      *fmindex.Index
	config  IndexConfig
	stats   BuildStats
	contigs *ContigSet // nil for a single anonymous reference
}

// BuildIndex runs the first two pipeline steps over the reference: suffix
// array and BWT computation, then succinct encoding. It is BuildIndexCtx
// without cancellation.
func BuildIndex(ref dna.Seq, cfg IndexConfig) (*Index, error) {
	return BuildIndexCtx(context.Background(), ref, cfg)
}

// BuildIndexCtx is BuildIndex with cancellation: the context is checked
// between the build phases (suffix array, BWT, succinct encoding, locate
// structure), so a canceled job stops at the next phase boundary instead of
// running the whole construction to completion while holding resources.
// When the context carries an obs trace, each phase emits a span.
func BuildIndexCtx(ctx context.Context, ref dna.Seq, cfg IndexConfig) (*Index, error) {
	cfg = cfg.withDefaults()
	if err := cfg.RRR.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	text := make([]uint8, len(ref))
	for i, b := range ref {
		text[i] = uint8(b)
	}

	var stats BuildStats
	stats.RefLength = len(ref)
	stats.UncompressedBytes = len(ref)

	start := time.Now()
	_, saSpan := obs.StartSpan(ctx, "build.sa")
	saSpan.SetAttr("algorithm", cfg.SAAlgorithm.String())
	sa, err := cfg.SAAlgorithm.build(text, dna.AlphabetSize)
	saSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: suffix array: %w", err)
	}
	stats.SATime = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start = time.Now()
	_, bwtSpan := obs.StartSpan(ctx, "build.bwt")
	transform, err := bwt.Transform(text, sa)
	bwtSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: bwt: %w", err)
	}
	stats.BWTTime = time.Since(start)
	stats.BWTRuns = transform.RunCount()
	stats.BWTEntropy = transform.Entropy(dna.AlphabetSize)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start = time.Now()
	var backend wavelet.Backend
	if cfg.PlainBitvectors {
		backend = wavelet.PlainBackend()
	} else {
		backend = wavelet.RRRBackend(cfg.RRR)
	}
	_, encSpan := obs.StartSpan(ctx, "build.encode")
	occ, err := fmindex.NewWaveletOccBackend(transform.Data, dna.AlphabetSize, backend)
	encSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: encoding: %w", err)
	}
	stats.EncodeTime = time.Since(start)
	stats.StructureBytes = occ.Tree.SizeBytes()
	stats.SharedBytes = occ.Tree.SharedSizeBytes()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	opts := fmindex.Options{}
	switch cfg.Locate {
	case LocateFullSA:
		opts.SA = sa
	case LocateSampled:
		sampled, err := fmindex.NewSampledSA(sa, cfg.SampleRate)
		if err != nil {
			return nil, fmt.Errorf("core: sampled SA: %w", err)
		}
		opts.Sampled = sampled
	case LocateNone:
	default:
		return nil, fmt.Errorf("core: unknown locate mode %d", cfg.Locate)
	}

	fm, err := fmindex.New(transform, dna.AlphabetSize, occ, opts)
	if err != nil {
		return nil, fmt.Errorf("core: fm-index: %w", err)
	}
	return &Index{fm: fm, config: cfg, stats: stats}, nil
}

// FM exposes the underlying FM-index for step-level consumers such as the
// FPGA simulator.
func (ix *Index) FM() *fmindex.Index { return ix.fm }

// Config returns the configuration the index was built with.
func (ix *Index) Config() IndexConfig { return ix.config }

// Stats returns the build statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// RefLength returns the reference length in bases.
func (ix *Index) RefLength() int { return ix.fm.Len() }

// SizeBytes returns the total index footprint (structure, shared table, and
// locate structure).
func (ix *Index) SizeBytes() int { return ix.fm.SizeBytes() }

// StructureBytes returns just the succinct BWT structure plus shared table,
// the quantity Fig. 5 plots.
func (ix *Index) StructureBytes() int { return ix.stats.StructureBytes + ix.stats.SharedBytes }

// MapResult is the outcome of mapping one read and its reverse complement,
// mirroring what the paper's kernel returns to the host per query.
type MapResult struct {
	// Forward and Reverse are the suffix-array row ranges of the read and
	// of its reverse complement.
	Forward, Reverse fmindex.Range
	// ForwardPositions and ReversePositions are the located reference
	// occurrences (filled only when MapOptions.Locate is set).
	ForwardPositions, ReversePositions []int32
	// Steps is the larger of the two backward-search step counts; the two
	// searches run in parallel in hardware (§III-C), so this drives the
	// kernel cycle model.
	Steps int
}

// Mapped reports whether either orientation occurs in the reference.
func (m MapResult) Mapped() bool { return !m.Forward.Empty() || !m.Reverse.Empty() }

// Occurrences returns the total number of occurrences across both strands.
func (m MapResult) Occurrences() int { return m.Forward.Count() + m.Reverse.Count() }

// MapRead maps one read and its reverse complement (count only).
func (ix *Index) MapRead(read dna.Seq) MapResult {
	fwPattern := make([]uint8, len(read))
	rcPattern := make([]uint8, len(read))
	for i, b := range read {
		fwPattern[i] = uint8(b)
		rcPattern[len(read)-1-i] = uint8(b.Complement())
	}
	var res MapResult
	var fwSteps, rcSteps int
	res.Forward, fwSteps = ix.fm.CountSteps(fwPattern)
	res.Reverse, rcSteps = ix.fm.CountSteps(rcPattern)
	// The two searches run in parallel pipelines in hardware (§III-C), so
	// the slower one bounds the query's latency.
	res.Steps = max(fwSteps, rcSteps)
	return res
}

// MapOptions control batch mapping.
type MapOptions struct {
	// Context, if non-nil, cancels the batch: worker loops stop between
	// reads and the call returns the context's error. A nil Context maps
	// to completion, preserving the historical behaviour.
	Context context.Context
	// Locate fills occurrence positions, the paper's host-side SA lookup.
	Locate bool
	// Workers is the number of parallel mapping goroutines; 0 or 1 keeps
	// the single-threaded behaviour of the paper's software baseline, -1
	// uses all CPUs.
	Workers int
	// Progress, if non-nil, is called with (done, total) roughly every
	// ProgressEvery completed reads and once at the end. With Workers > 1
	// it is called from mapping goroutines and must be safe for concurrent
	// use.
	Progress func(done, total int)
	// ProgressEvery is the reporting granularity; 0 means 1024.
	ProgressEvery int
}

// MapStats aggregates a batch mapping run.
type MapStats struct {
	Reads       int
	MappedReads int
	Occurrences int
	TotalSteps  int
	Elapsed     time.Duration
}

// MappingRatio returns the fraction of reads that mapped.
func (s MapStats) MappingRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.MappedReads) / float64(s.Reads)
}

// ReadsPerSecond returns mapping throughput.
func (s MapStats) ReadsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Reads) / s.Elapsed.Seconds()
}

// MapReads maps a batch of reads, the paper's "sequence mapping" step on
// the CPU path (BWaveR-CPU).
func (ix *Index) MapReads(reads []dna.Seq, opts MapOptions) ([]MapResult, MapStats, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]MapResult, len(reads))
	start := time.Now()

	every := opts.ProgressEvery
	if every <= 0 {
		every = 1024
	}
	var done atomic.Int64
	mapOne := func(i int) error {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return err
			}
		}
		res := ix.MapRead(reads[i])
		if opts.Locate {
			var err error
			if res.ForwardPositions, err = ix.fm.Locate(res.Forward); err != nil {
				return err
			}
			if res.ReversePositions, err = ix.fm.Locate(res.Reverse); err != nil {
				return err
			}
		}
		results[i] = res
		if opts.Progress != nil {
			if d := done.Add(1); d%int64(every) == 0 {
				opts.Progress(int(d), len(reads))
			}
		}
		return nil
	}

	var firstErr error
	if workers == 1 {
		for i := range reads {
			if err := mapOne(i); err != nil {
				return nil, MapStats{}, err
			}
		}
	} else {
		var (
			wg    sync.WaitGroup
			errMu sync.Mutex
			next  = make(chan int, workers)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if err := mapOne(i); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		for i := range reads {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if firstErr != nil {
		return nil, MapStats{}, firstErr
	}
	if opts.Progress != nil {
		opts.Progress(len(reads), len(reads))
	}

	stats := MapStats{Reads: len(reads), Elapsed: time.Since(start)}
	for _, r := range results {
		if r.Mapped() {
			stats.MappedReads++
		}
		stats.Occurrences += r.Occurrences()
		stats.TotalSteps += r.Steps
	}
	return results, stats, nil
}
