package core

import (
	"fmt"
	"sort"

	"bwaver/internal/dna"
)

// Paired-end mapping. A read pair in FR orientation is concordant when R1
// maps on the forward strand at p1, R2 on the reverse strand ending at
// p2+len, with the implied fragment length p2+len-p1 inside the expected
// insert window (or the strand-mirrored arrangement). This is the
// pipeline-integration feature the paper's future work points at
// ("integrate BWaveR in real sequence analysis pipelines").

// PairOptions configure paired-end mapping.
type PairOptions struct {
	// MinInsert and MaxInsert bound the accepted fragment length
	// (outer distance).
	MinInsert, MaxInsert int
	// MaxHitsPerMate caps how many occurrences per mate are considered
	// when pairing; reads more repetitive than this are reported as
	// ambiguous rather than exploding combinatorially. 0 means 256.
	MaxHitsPerMate int
}

func (o PairOptions) withDefaults() PairOptions {
	if o.MaxHitsPerMate == 0 {
		o.MaxHitsPerMate = 256
	}
	return o
}

func (o PairOptions) validate() error {
	if o.MinInsert < 0 || o.MaxInsert < o.MinInsert {
		return fmt.Errorf("core: insert window [%d,%d] invalid", o.MinInsert, o.MaxInsert)
	}
	if o.MaxHitsPerMate < 0 {
		return fmt.Errorf("core: MaxHitsPerMate %d must be >= 0", o.MaxHitsPerMate)
	}
	return nil
}

// PairPlacement is one concordant placement of a pair.
type PairPlacement struct {
	// Pos is the fragment's leftmost reference position.
	Pos int32
	// Insert is the implied fragment length.
	Insert int
	// R1Forward reports the orientation: true when R1 is the forward
	// (left) mate, false for the mirrored arrangement.
	R1Forward bool
}

// PairResult is the outcome of mapping one read pair.
type PairResult struct {
	// R1 and R2 are the individual mates' results.
	R1, R2 MapResult
	// Placements lists every concordant placement within the insert
	// window, sorted by position.
	Placements []PairPlacement
	// Ambiguous is set when a mate exceeded MaxHitsPerMate occurrences
	// and pairing was skipped.
	Ambiguous bool
}

// Concordant reports whether at least one proper placement was found.
func (r PairResult) Concordant() bool { return len(r.Placements) > 0 }

// PairStats aggregates a paired mapping run.
type PairStats struct {
	Pairs      int
	Concordant int
	Ambiguous  int
	// BothMapped counts pairs where both mates hit somewhere, concordant
	// or not.
	BothMapped int
}

// MapPair maps one pair and searches the insert window for concordant
// placements.
func (ix *Index) MapPair(r1, r2 dna.Seq, opts PairOptions) (PairResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PairResult{}, err
	}
	res := PairResult{R1: ix.MapRead(r1), R2: ix.MapRead(r2)}
	if !res.R1.Mapped() || !res.R2.Mapped() {
		return res, nil
	}
	if res.R1.Occurrences() > opts.MaxHitsPerMate || res.R2.Occurrences() > opts.MaxHitsPerMate {
		res.Ambiguous = true
		return res, nil
	}
	fm := ix.FM()
	locate := func(m MapResult) (fw, rc []int32, err error) {
		if fw, err = fm.Locate(m.Forward); err != nil {
			return nil, nil, err
		}
		rc, err = fm.Locate(m.Reverse)
		return fw, rc, err
	}
	r1F, r1R, err := locate(res.R1)
	if err != nil {
		return res, err
	}
	r2F, r2R, err := locate(res.R2)
	if err != nil {
		return res, err
	}
	// FR arrangement 1: R1 forward at p1, R2 reverse-strand at p2
	// (RC(R2) matches the genome at p2); fragment = [p1, p2+len2).
	res.Placements = append(res.Placements,
		pairUp(r1F, r2R, len(r2), opts, true)...)
	// Mirror: R2 forward at p2, R1 reverse-strand at p1.
	res.Placements = append(res.Placements,
		pairUp(r2F, r1R, len(r1), opts, false)...)
	sort.Slice(res.Placements, func(i, j int) bool {
		if res.Placements[i].Pos != res.Placements[j].Pos {
			return res.Placements[i].Pos < res.Placements[j].Pos
		}
		return res.Placements[i].Insert < res.Placements[j].Insert
	})
	return res, nil
}

// pairUp matches left-mate forward positions with right-mate reverse
// positions whose implied insert falls inside the window.
func pairUp(lefts, rights []int32, rightLen int, opts PairOptions, r1Forward bool) []PairPlacement {
	if len(lefts) == 0 || len(rights) == 0 {
		return nil
	}
	ls := append([]int32(nil), lefts...)
	rs := append([]int32(nil), rights...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	var out []PairPlacement
	lo := 0
	for _, p1 := range ls {
		// Fragment end = p2 + rightLen; accept p2 with
		// MinInsert <= p2+rightLen-p1 <= MaxInsert.
		for lo < len(rs) && int(rs[lo])+rightLen-int(p1) < opts.MinInsert {
			lo++
		}
		for i := lo; i < len(rs); i++ {
			insert := int(rs[i]) + rightLen - int(p1)
			if insert > opts.MaxInsert {
				break
			}
			if insert >= opts.MinInsert {
				out = append(out, PairPlacement{Pos: p1, Insert: insert, R1Forward: r1Forward})
			}
		}
	}
	return out
}

// MapPairs maps a batch of pairs.
func (ix *Index) MapPairs(r1s, r2s []dna.Seq, opts PairOptions) ([]PairResult, PairStats, error) {
	if len(r1s) != len(r2s) {
		return nil, PairStats{}, fmt.Errorf("core: %d R1 reads for %d R2 reads", len(r1s), len(r2s))
	}
	results := make([]PairResult, len(r1s))
	stats := PairStats{Pairs: len(r1s)}
	for i := range r1s {
		res, err := ix.MapPair(r1s[i], r2s[i], opts)
		if err != nil {
			return nil, PairStats{}, err
		}
		results[i] = res
		if res.Concordant() {
			stats.Concordant++
		}
		if res.Ambiguous {
			stats.Ambiguous++
		}
		if res.R1.Mapped() && res.R2.Mapped() {
			stats.BothMapped++
		}
	}
	return results, stats, nil
}
