package core

import (
	"context"
	"errors"
	"testing"

	"bwaver/internal/obs"
)

// TestBuildIndexCtxCanceled: a canceled context aborts construction at the
// next phase boundary with the context's error, the contract the server's
// job-cancellation path relies on.
func TestBuildIndexCtxCanceled(t *testing.T) {
	ref := testGenome(t, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildIndexCtx(ctx, ref, IndexConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildIndexCtxSpans: a trace on the context collects one span per
// build phase, each closed with a non-negative duration.
func TestBuildIndexCtxSpans(t *testing.T) {
	ref := testGenome(t, 4000)
	tr := obs.NewTrace("build")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := BuildIndexCtx(ctx, ref, IndexConfig{}); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	got := map[string]bool{}
	for _, s := range snap.Spans {
		if s.DurationMs < 0 {
			t.Errorf("span %s still open", s.Name)
		}
		got[s.Name] = true
	}
	for _, want := range []string{"build.sa", "build.bwt", "build.encode"} {
		if !got[want] {
			t.Errorf("missing span %s (have %v)", want, got)
		}
	}
}

// TestBuildIndexCtxNoTrace: building without a trace still works (nil-span
// no-op path) and matches BuildIndex output bit-for-bit on the stats that
// matter.
func TestBuildIndexCtxNoTrace(t *testing.T) {
	ref := testGenome(t, 2000)
	a, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIndexCtx(context.Background(), ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.StructureBytes() != b.StructureBytes() || a.RefLength() != b.RefLength() {
		t.Fatalf("ctx build differs: %d/%d vs %d/%d",
			a.StructureBytes(), a.RefLength(), b.StructureBytes(), b.RefLength())
	}
}
