package core

import (
	"fmt"
	"io"
	"time"

	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/qc"
)

// Streaming batch mapping. The paper's kernel "iteratively fetches query
// sequences from the host's memory ... until there is no more data to map";
// MapStream is the host-side equivalent for arbitrarily large FASTQ inputs:
// records are parsed in fixed-size batches and mapped while the next batch
// is being parsed, so memory stays bounded by the batch size regardless of
// input size.

// StreamResult couples one record's identity with its mapping outcome.
type StreamResult struct {
	ID   string
	Read dna.Seq
	Res  MapResult
}

// DefaultStreamBatch is the default batch size for MapStream.
const DefaultStreamBatch = 8192

// MapBatches maps an in-memory read set in fixed-size batches through the
// zero-allocation batched path, invoking emit after every batch with the
// batch's starting read index and its results. The result slice is reused
// between batches, so a caller that writes rows out as they arrive holds
// O(batchSize) result memory no matter how many reads the run covers — the
// server's streamed-results path depends on exactly that bound. emit must
// consume (or copy) the results before returning; returning an error aborts
// the run. batchSize <= 0 selects DefaultStreamBatch. Progress callbacks see
// global (done, total) counts across the whole read set.
func (ix *Index) MapBatches(reads []dna.Seq, batchSize int, opts MapOptions, emit func(start int, results []MapResult) error) (MapStats, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}
	dst := make([]MapResult, min(batchSize, len(reads)))
	var agg MapStats
	start := time.Now()
	for off := 0; off < len(reads); off += batchSize {
		end := min(off+batchSize, len(reads))
		chunk := reads[off:end]
		sub := opts
		if opts.Progress != nil {
			off := off
			sub.Progress = func(done, total int) { opts.Progress(off+done, len(reads)) }
		}
		stats, err := ix.MapReadsInto(dst[:len(chunk)], chunk, sub)
		if err != nil {
			return MapStats{}, err
		}
		agg.Reads += stats.Reads
		agg.MappedReads += stats.MappedReads
		agg.Occurrences += stats.Occurrences
		agg.TotalSteps += stats.TotalSteps
		if err := emit(off, dst[:len(chunk)]); err != nil {
			return MapStats{}, fmt.Errorf("core: emit: %w", err)
		}
	}
	agg.Elapsed = time.Since(start)
	return agg, nil
}

// MapStream maps every record of a FASTA/FASTQ stream (plain or gzipped),
// delivering results to emit in input order. batchSize <= 0 selects
// DefaultStreamBatch. emit returning an error aborts the run.
func (ix *Index) MapStream(r io.Reader, opts MapOptions, batchSize int, emit func(StreamResult) error) (MapStats, error) {
	stats, _, err := ix.MapStreamQC(r, qc.Policy{}, opts, batchSize, emit)
	return stats, err
}

// MapStreamQC is MapStream with a quality-control policy applied at ingest:
// the parser goroutine decodes (tolerantly when the policy asks), trims,
// gates, and — with QualitySort — stably reorders each batch before it is
// mapped, so only surviving reads reach the mapping path. Order within a
// batch is the gate's post-sort order, identical on every backend. The
// returned report carries the per-reason reject accounting; the zero policy
// degrades to exactly MapStream.
func (ix *Index) MapStreamQC(r io.Reader, pol qc.Policy, opts MapOptions, batchSize int, emit func(StreamResult) error) (MapStats, qc.Report, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}
	gate, err := qc.NewGate(pol)
	if err != nil {
		return MapStats{}, qc.Report{}, err
	}
	reader, err := fastx.NewReader(r)
	if err != nil {
		return MapStats{}, qc.Report{}, err
	}
	defer reader.Close()
	reader.SetTolerant(pol.Tolerant)

	type batch struct {
		ids   []string
		reads []dna.Seq
		err   error
	}
	// The parser goroutine stays one batch ahead of the mapper. It owns the
	// gate, so trimming, gating, and the stable quality-sort overlap mapping;
	// the final report is handed over once the stream is fully decoded.
	batches := make(chan batch, 1)
	reportCh := make(chan qc.Report, 1)
	go func() {
		defer close(batches)
		defer func() { reportCh <- gate.Report() }()
		eof := false
		for !eof {
			b := batch{}
			// Feed one batch of decoder events; the gate may hold back a
			// trailing odd mate for the next drain.
			for fed := 0; fed < batchSize; fed++ {
				rec, err := reader.Read()
				if err == io.EOF {
					eof = true
					break
				}
				if err != nil {
					if re, ok := err.(*fastx.RecordError); ok && pol.Tolerant {
						gate.Malformed(re)
						continue
					}
					b.err = err
					break
				}
				gate.Record(rec)
			}
			for _, rd := range gate.Drain(eof && b.err == nil) {
				b.ids = append(b.ids, rd.ID)
				b.reads = append(b.reads, rd.Seq)
			}
			if len(b.reads) == 0 && b.err == nil {
				if eof {
					return
				}
				continue // every record in this batch was rejected; keep going
			}
			batches <- b
			if b.err != nil {
				return
			}
		}
	}()

	// fail drains the parser goroutine before returning, so its gate report
	// is complete and the goroutine never blocks on an abandoned channel.
	fail := func(err error) (MapStats, qc.Report, error) {
		for range batches {
		}
		return MapStats{}, <-reportCh, err
	}
	var stats MapStats
	start := time.Now()
	for b := range batches {
		if len(b.reads) > 0 {
			results, batchStats, err := ix.MapReads(b.reads, opts)
			if err != nil {
				return fail(err)
			}
			stats.Reads += batchStats.Reads
			stats.MappedReads += batchStats.MappedReads
			stats.Occurrences += batchStats.Occurrences
			stats.TotalSteps += batchStats.TotalSteps
			for i := range results {
				if err := emit(StreamResult{ID: b.ids[i], Read: b.reads[i], Res: results[i]}); err != nil {
					return fail(fmt.Errorf("core: emit: %w", err))
				}
			}
		}
		if b.err != nil {
			return fail(b.err)
		}
	}
	stats.Elapsed = time.Since(start)
	return stats, <-reportCh, nil
}
