package core

import (
	"context"
	"errors"
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

func TestCacheKeyIdentity(t *testing.T) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := IndexConfig{RRR: rrr.Params{BlockSize: 15, SuperblockFactor: 50}}

	k1 := CacheKey(ref, nil, cfg)
	k2 := CacheKey(ref, nil, cfg)
	if k1 != k2 {
		t.Fatalf("same inputs produced different keys: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a hex sha256", k1)
	}

	// The zero config resolves to the paper defaults, so it must share a
	// key with the explicit default parameters.
	if got := CacheKey(ref, nil, IndexConfig{}); got != k1 {
		t.Errorf("zero config key differs from explicit defaults")
	}

	// Any change to the addressed content must change the key.
	other := append(dna.Seq(nil), ref...)
	other[0] ^= 1
	if CacheKey(other, nil, cfg) == k1 {
		t.Error("mutated reference shares a key")
	}
	if CacheKey(ref[:len(ref)-1], nil, cfg) == k1 {
		t.Error("truncated reference shares a key")
	}
	if CacheKey(ref, nil, IndexConfig{RRR: rrr.Params{BlockSize: 7, SuperblockFactor: 50}}) == k1 {
		t.Error("different block size shares a key")
	}
	if CacheKey(ref, nil, IndexConfig{RRR: cfg.RRR, PlainBitvectors: true}) == k1 {
		t.Error("plain-bitvector config shares a key")
	}
	if CacheKey(ref, nil, IndexConfig{RRR: cfg.RRR, Locate: LocateNone}) == k1 {
		t.Error("count-only config shares a key")
	}
	cs, err := NewContigSet([]string{"a", "b"}, []int{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(ref, cs, cfg) == k1 {
		t.Error("contig layout not part of the key")
	}
	// The SA algorithm produces identical artifacts and must NOT split the
	// cache.
	if CacheKey(ref, nil, IndexConfig{RRR: cfg.RRR, SAAlgorithm: DC3}) != k1 {
		t.Error("SA algorithm choice split the cache key")
	}
}

func TestMapReadsContextCanceled(t *testing.T) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reads := []dna.Seq{ref[100:140], ref[200:240], ref[300:340]}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{1, 4} {
		if _, _, err := ix.MapReads(reads, MapOptions{Context: ctx, Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Errorf("MapReads workers=%d returned %v, want context.Canceled", workers, err)
		}
		if _, err := ix.MapReadsApprox(reads, 1, MapOptions{Context: ctx, Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Errorf("MapReadsApprox workers=%d returned %v, want context.Canceled", workers, err)
		}
	}

	// A nil context preserves the historical behaviour.
	if _, _, err := ix.MapReads(reads, MapOptions{}); err != nil {
		t.Errorf("nil-context MapReads failed: %v", err)
	}
}
