package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"bwaver/internal/fastx"
	"bwaver/internal/qc"
	"bwaver/internal/readsim"
)

func streamInput(t *testing.T, reads []readsim.Read, gz bool) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := fastx.NewWriter(&buf, fastx.FASTQ, gz)
	for _, r := range reads {
		if err := w.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestMapStreamMatchesBatch(t *testing.T) {
	ref := testGenome(t, 20000)
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 1000, Length: 40, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustBuild(t, ref, IndexConfig{})
	want, _, err := ix.MapReads(readsim.Seqs(sim), MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batchSize := range []int{0, 1, 7, 100, 5000} {
		var got []StreamResult
		stats, err := ix.MapStream(streamInput(t, sim, false), MapOptions{}, batchSize, func(r StreamResult) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batchSize, err)
		}
		if stats.Reads != len(sim) || len(got) != len(sim) {
			t.Fatalf("batch=%d: %d results for %d reads", batchSize, len(got), len(sim))
		}
		for i := range got {
			if got[i].ID != sim[i].ID {
				t.Fatalf("batch=%d: result %d out of order: %s vs %s", batchSize, i, got[i].ID, sim[i].ID)
			}
			if got[i].Res.Forward != want[i].Forward || got[i].Res.Reverse != want[i].Reverse {
				t.Fatalf("batch=%d: result %d differs from batch mapping", batchSize, i)
			}
		}
	}
}

func TestMapStreamGzip(t *testing.T) {
	ref := testGenome(t, 5000)
	sim, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 100, Length: 30, MappingRatio: 1, Seed: 13})
	ix := mustBuild(t, ref, IndexConfig{})
	count := 0
	stats, err := ix.MapStream(streamInput(t, sim, true), MapOptions{}, 16, func(r StreamResult) error {
		count++
		if !r.Res.Mapped() {
			t.Errorf("read %s did not map", r.ID)
		}
		return nil
	})
	if err != nil || count != 100 || stats.MappedReads != 100 {
		t.Fatalf("gzip stream: count=%d stats=%+v err=%v", count, stats, err)
	}
}

func TestMapStreamEmptyInput(t *testing.T) {
	ix := mustBuild(t, testGenome(t, 1000), IndexConfig{})
	stats, err := ix.MapStream(strings.NewReader(""), MapOptions{}, 10, func(StreamResult) error {
		t.Error("emit called for empty input")
		return nil
	})
	if err != nil || stats.Reads != 0 {
		t.Errorf("empty stream: %+v %v", stats, err)
	}
}

func TestMapStreamMalformedMidStream(t *testing.T) {
	ix := mustBuild(t, testGenome(t, 1000), IndexConfig{})
	// Two good records, then a truncated one.
	in := "@r1\nACGT\n+\nIIII\n@r2\nGGTT\n+\nIIII\n@broken\nACG\n"
	emitted := 0
	_, err := ix.MapStream(strings.NewReader(in), MapOptions{}, 2, func(StreamResult) error {
		emitted++
		return nil
	})
	if err == nil {
		t.Fatal("malformed stream accepted")
	}
	if emitted != 2 {
		t.Errorf("emitted %d results before the error, want 2", emitted)
	}
}

// TestMapStreamQCTolerant runs the gated stream over a corpus with malformed
// records and low-quality tails: the emitted results must be exactly the
// offline-ingested survivors, in order, and the report must balance.
func TestMapStreamQCTolerant(t *testing.T) {
	ref := testGenome(t, 5000)
	sim, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 40, Length: 40, MappingRatio: 1, Seed: 15})
	var dirty bytes.Buffer
	for i, r := range sim {
		switch {
		case i%7 == 3: // quality line shorter than the sequence
			fmt.Fprintf(&dirty, "@%s\n%s\n+\n%s\n", r.ID, r.Seq.String(), strings.Repeat("I", 10))
		case i%7 == 5: // collapsed 3' tail, trimmed below MinLen
			half := strings.Repeat("I", 20) + strings.Repeat("#", 20)
			fmt.Fprintf(&dirty, "@%s\n%s\n+\n%s\n", r.ID, r.Seq.String(), half)
		default:
			fmt.Fprintf(&dirty, "@%s\n%s\n+\n%s\n", r.ID, r.Seq.String(), strings.Repeat("I", 40))
		}
	}
	pol := qc.Policy{Tolerant: true, TrimQual: 10, MinLen: 30}
	want, err := qc.Ingest(bytes.NewReader(dirty.Bytes()), pol)
	if err != nil {
		t.Fatal(err)
	}
	if want.Report.Malformed == 0 || want.Report.RejectedTotal() == 0 {
		t.Fatalf("corpus too tame: %+v", want.Report)
	}
	ix := mustBuild(t, ref, IndexConfig{})
	var got []StreamResult
	stats, rep, err := ix.MapStreamQC(bytes.NewReader(dirty.Bytes()), pol, MapOptions{}, 8,
		func(r StreamResult) error {
			got = append(got, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want.Report) {
		t.Errorf("stream report %+v, want %+v", rep, want.Report)
	}
	if stats.Reads != want.Report.Passed || len(got) != len(want.Seqs) {
		t.Fatalf("stream mapped %d reads, want %d survivors", stats.Reads, want.Report.Passed)
	}
	for i := range got {
		if got[i].ID != want.IDs[i] || got[i].Read.String() != want.Seqs[i].String() {
			t.Fatalf("survivor %d is %s, want %s", i, got[i].ID, want.IDs[i])
		}
	}
}

func TestMapStreamEmitError(t *testing.T) {
	ref := testGenome(t, 2000)
	sim, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 50, Length: 20, MappingRatio: 1, Seed: 14})
	ix := mustBuild(t, ref, IndexConfig{})
	boom := errors.New("boom")
	_, err := ix.MapStream(streamInput(t, sim, false), MapOptions{}, 10, func(StreamResult) error {
		return boom
	})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("emit error not propagated: %v", err)
	}
}
