package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/rrr"
	"bwaver/internal/wavelet"
)

// Index file format (little endian):
//
//	magic    uint32 'BWX2'
//	b, sf    uint32  (RRR parameters; also stored when plain)
//	flags    uint8   bit0 = plain bit-vectors
//	locate   uint8   LocateMode
//	sampleRate uint32
//	primary  uint32
//	ftabK    uint32  prefix-table order (0 = none; absent in 'BWX1')
//	counts   [4]uint32 per-symbol occurrence counts
//	wavelet tree payload
//	locate payload (full SA as [n+1]int32, or sampled SA, or nothing)
//	ftab payload (when ftabK > 0)
//	contigs
//
// ReadIndex still accepts the previous 'BWX1' format, which has no ftabK
// header field and no ftab payload; such indexes load with no prefix table
// and callers rebuild one on demand via EnsureFtab.
const (
	indexMagic   = 0x42575832 // "BWX2"
	indexMagicV1 = 0x42575831 // "BWX1"
)

// Index *files* additionally end with a fixed-size integrity trailer so a
// truncated, bit-flipped, or pre-trailer (stale) file is rejected on load
// instead of silently producing wrong mappings:
//
//	trailerMagic uint32 'BWXT'
//	payloadLen   uint64  bytes preceding the trailer
//	checksum     uint64  CRC-64/ECMA over those payloadLen bytes
//
// The trailer is a property of SaveFile/LoadFile, not of WriteTo/ReadIndex:
// streams keep the raw format (and its consumers, e.g. FuzzReadIndex), while
// every file that goes through the filesystem is checksummed. SaveFile also
// writes atomically — temp file in the destination directory, fsync, rename —
// so a crash mid-write can never leave a half-written file under the final
// name.
const (
	trailerMagic = 0x42575854 // "BWXT"
	trailerSize  = 4 + 8 + 8
)

// crcTable is the CRC-64/ECMA polynomial used by the file trailer.
var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrIndexIntegrity tags LoadFile failures caused by the file itself —
// missing trailer, truncation, or checksum mismatch — as opposed to I/O
// errors. Callers holding the reference (the server's index cache, build
// pipelines) match it with errors.Is and rebuild instead of serving from a
// corrupt artifact.
var ErrIndexIntegrity = errors.New("index integrity check failed")

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countingWriter{w: bw}

	occ, ok := ix.fm.OccProvider().(*fmindex.WaveletOcc)
	if !ok {
		return 0, fmt.Errorf("core: only wavelet-backed indexes serialize, have %s", ix.fm.OccName())
	}
	var flags uint8
	if ix.config.PlainBitvectors {
		flags |= 1
	}
	head := []any{
		uint32(indexMagic),
		uint32(ix.config.RRR.BlockSize), uint32(ix.config.RRR.SuperblockFactor),
		flags, uint8(ix.config.Locate), uint32(ix.config.SampleRate),
		uint32(ix.fm.Primary()),
		uint32(ix.FtabK()),
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for s := uint8(0); s < dna.AlphabetSize; s++ {
		if err := binary.Write(cw, binary.LittleEndian, uint32(ix.fm.SymbolCount(s))); err != nil {
			return cw.n, err
		}
	}
	if _, err := occ.Tree.WriteTo(cw); err != nil {
		return cw.n, err
	}
	switch ix.config.Locate {
	case LocateFullSA:
		if err := binary.Write(cw, binary.LittleEndian, ix.fm.SA()); err != nil {
			return cw.n, err
		}
	case LocateSampled:
		if _, err := ix.fm.Sampled().WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	if ftab := ix.fm.Ftab(); ftab != nil {
		if _, err := ftab.WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	if err := writeContigs(cw, ix.contigs); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

func writeContigs(w io.Writer, cs *ContigSet) error {
	if cs == nil {
		return binary.Write(w, binary.LittleEndian, uint32(0))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(cs.Count())); err != nil {
		return err
	}
	for _, c := range cs.Contigs() {
		name := []byte(c.Name)
		if len(name) > 1<<16-1 {
			return fmt.Errorf("core: contig name %q too long", c.Name)
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(c.Length)); err != nil {
			return err
		}
	}
	return nil
}

func readContigs(r io.Reader) (*ContigSet, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("core: reading contig count: %w", err)
	}
	if count == 0 {
		return nil, nil
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("core: implausible contig count %d", count)
	}
	names := make([]string, count)
	lengths := make([]int, count)
	for i := range names {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("core: reading contig name length: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("core: reading contig name: %w", err)
		}
		names[i] = string(name)
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("core: reading contig length: %w", err)
		}
		lengths[i] = int(l)
	}
	return NewContigSet(names, lengths)
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var (
		magic, b, sf, sampleRate, primary, ftabK uint32
		flags, locate                            uint8
	)
	for _, v := range []any{&magic, &b, &sf, &flags, &locate, &sampleRate, &primary} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", err)
		}
	}
	if magic != indexMagic && magic != indexMagicV1 {
		return nil, fmt.Errorf("core: not a BWaveR index (magic %#x)", magic)
	}
	if magic == indexMagic {
		// The v1 header has no prefix-table field; v1 files load with no
		// table and callers rebuild one on demand (EnsureFtab).
		if err := binary.Read(br, binary.LittleEndian, &ftabK); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", err)
		}
		if ftabK > fmindex.MaxFtabK {
			return nil, fmt.Errorf("core: implausible ftab order %d", ftabK)
		}
	}
	cfg := IndexConfig{
		RRR:             rrr.Params{BlockSize: int(b), SuperblockFactor: int(sf)},
		PlainBitvectors: flags&1 != 0,
		Locate:          LocateMode(locate),
		SampleRate:      int(sampleRate),
		FtabK:           int(ftabK),
	}
	if err := cfg.RRR.Validate(); err != nil {
		return nil, err
	}
	counts := make([]int, dna.AlphabetSize)
	total := 0
	for s := range counts {
		var c uint32
		if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
			return nil, fmt.Errorf("core: reading symbol counts: %w", err)
		}
		counts[s] = int(c)
		total += int(c)
	}
	tree, err := wavelet.ReadTree(br)
	if err != nil {
		return nil, err
	}
	if tree.Len() != total {
		return nil, fmt.Errorf("core: tree covers %d symbols, counts sum to %d", tree.Len(), total)
	}
	// The header's per-symbol counts feed the FM-index C array; they must
	// agree with what the tree actually stores, or backward-search ranges
	// overflow on a corrupted file.
	for s := 0; s < dna.AlphabetSize; s++ {
		if got := tree.Count(uint8(s)); got != counts[s] {
			return nil, fmt.Errorf("core: tree stores %d copies of symbol %d, header says %d", got, s, counts[s])
		}
	}
	occ := &fmindex.WaveletOcc{Tree: tree}
	opts := fmindex.Options{}
	switch cfg.Locate {
	case LocateFullSA:
		sa := make([]int32, total+1)
		if err := binary.Read(br, binary.LittleEndian, sa); err != nil {
			return nil, fmt.Errorf("core: reading suffix array: %w", err)
		}
		opts.SA = sa
	case LocateSampled:
		sampled, err := fmindex.ReadSampledSA(br)
		if err != nil {
			return nil, err
		}
		opts.Sampled = sampled
	case LocateNone:
	default:
		return nil, fmt.Errorf("core: unknown locate mode %d", cfg.Locate)
	}
	fm, err := fmindex.NewFromParts(occ, dna.AlphabetSize, int(primary), counts, opts)
	if err != nil {
		return nil, err
	}
	stats := BuildStats{
		RefLength:         total,
		UncompressedBytes: total,
		StructureBytes:    tree.SizeBytes(),
		SharedBytes:       tree.SharedSizeBytes(),
	}
	if ftabK > 0 {
		ftab, err := fmindex.ReadFtab(br)
		if err != nil {
			return nil, err
		}
		if got := ftab.K(); got != int(ftabK) {
			return nil, fmt.Errorf("core: ftab payload order %d, header says %d", got, ftabK)
		}
		if err := ftab.Validate(total); err != nil {
			return nil, err
		}
		fm.SetFtab(ftab)
		stats.FtabBytes = ftab.SizeBytes()
	}
	ix := &Index{fm: fm, config: cfg, stats: stats}
	contigs, err := readContigs(br)
	if err != nil {
		return nil, err
	}
	if err := ix.SetContigs(contigs); err != nil {
		return nil, err
	}
	return ix, nil
}

// SaveFile writes the index to path atomically with an integrity trailer:
// the payload and its CRC-64 trailer go to a temp file in the destination
// directory, the file is fsync'd, and only then renamed over path. A crash at
// any point leaves either the previous file or a stray temp file — never a
// truncated index under the final name.
func (ix *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	hw := &hashingWriter{w: tmp, h: crc64.New(crcTable)}
	n, err := ix.WriteTo(hw)
	if err != nil {
		return err
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], trailerMagic)
	binary.LittleEndian.PutUint64(trailer[4:12], uint64(n))
	binary.LittleEndian.PutUint64(trailer[12:20], hw.h.Sum64())
	if _, err = tmp.Write(trailer[:]); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// platforms; failure to open the directory is not a save failure.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads an index from path, verifying the integrity trailer before
// parsing: a missing trailer (stale pre-checksum BWX file), a length mismatch
// (truncation), or a checksum mismatch (bit rot, torn write) fails closed
// with an error matching ErrIndexIntegrity.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < trailerSize {
		return nil, fmt.Errorf("core: %s: %w: file is %d bytes, smaller than the integrity trailer", path, ErrIndexIntegrity, size)
	}
	var trailer [trailerSize]byte
	if _, err := f.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("core: %s: reading integrity trailer: %w", path, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[0:4]); got != trailerMagic {
		return nil, fmt.Errorf("core: %s: %w: missing integrity trailer (stale pre-checksum index? rebuild with `bwaver index`)", path, ErrIndexIntegrity)
	}
	payloadLen := binary.LittleEndian.Uint64(trailer[4:12])
	if payloadLen != uint64(size-trailerSize) {
		return nil, fmt.Errorf("core: %s: %w: trailer says %d payload bytes, file holds %d (truncated or overwritten)", path, ErrIndexIntegrity, payloadLen, size-trailerSize)
	}
	// Verify the checksum over the whole payload before parsing a single
	// field: a corrupt file must never reach the deserializer, whose
	// structural checks are necessarily incomplete.
	h := crc64.New(crcTable)
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, int64(payloadLen))); err != nil {
		return nil, fmt.Errorf("core: %s: checksumming payload: %w", path, err)
	}
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(trailer[12:20]); got != want {
		return nil, fmt.Errorf("core: %s: %w: checksum mismatch (have %#x, trailer says %#x)", path, ErrIndexIntegrity, got, want)
	}
	return ReadIndex(io.NewSectionReader(f, 0, int64(payloadLen)))
}

// hashingWriter tees writes into a running checksum.
type hashingWriter struct {
	w io.Writer
	h hash64
}

// hash64 is the subset of hash.Hash64 the trailer needs.
type hash64 interface {
	io.Writer
	Sum64() uint64
}

func (hw *hashingWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	return n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
