package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/rrr"
	"bwaver/internal/wavelet"
)

// Index file format (little endian):
//
//	magic    uint32 'BWX2'
//	b, sf    uint32  (RRR parameters; also stored when plain)
//	flags    uint8   bit0 = plain bit-vectors
//	locate   uint8   LocateMode
//	sampleRate uint32
//	primary  uint32
//	ftabK    uint32  prefix-table order (0 = none; absent in 'BWX1')
//	counts   [4]uint32 per-symbol occurrence counts
//	wavelet tree payload
//	locate payload (full SA as [n+1]int32, or sampled SA, or nothing)
//	ftab payload (when ftabK > 0)
//	contigs
//
// ReadIndex still accepts the previous 'BWX1' format, which has no ftabK
// header field and no ftab payload; such indexes load with no prefix table
// and callers rebuild one on demand via EnsureFtab.
const (
	indexMagic   = 0x42575832 // "BWX2"
	indexMagicV1 = 0x42575831 // "BWX1"
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countingWriter{w: bw}

	occ, ok := ix.fm.OccProvider().(*fmindex.WaveletOcc)
	if !ok {
		return 0, fmt.Errorf("core: only wavelet-backed indexes serialize, have %s", ix.fm.OccName())
	}
	var flags uint8
	if ix.config.PlainBitvectors {
		flags |= 1
	}
	head := []any{
		uint32(indexMagic),
		uint32(ix.config.RRR.BlockSize), uint32(ix.config.RRR.SuperblockFactor),
		flags, uint8(ix.config.Locate), uint32(ix.config.SampleRate),
		uint32(ix.fm.Primary()),
		uint32(ix.FtabK()),
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for s := uint8(0); s < dna.AlphabetSize; s++ {
		if err := binary.Write(cw, binary.LittleEndian, uint32(ix.fm.SymbolCount(s))); err != nil {
			return cw.n, err
		}
	}
	if _, err := occ.Tree.WriteTo(cw); err != nil {
		return cw.n, err
	}
	switch ix.config.Locate {
	case LocateFullSA:
		if err := binary.Write(cw, binary.LittleEndian, ix.fm.SA()); err != nil {
			return cw.n, err
		}
	case LocateSampled:
		if _, err := ix.fm.Sampled().WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	if ftab := ix.fm.Ftab(); ftab != nil {
		if _, err := ftab.WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	if err := writeContigs(cw, ix.contigs); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

func writeContigs(w io.Writer, cs *ContigSet) error {
	if cs == nil {
		return binary.Write(w, binary.LittleEndian, uint32(0))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(cs.Count())); err != nil {
		return err
	}
	for _, c := range cs.Contigs() {
		name := []byte(c.Name)
		if len(name) > 1<<16-1 {
			return fmt.Errorf("core: contig name %q too long", c.Name)
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(c.Length)); err != nil {
			return err
		}
	}
	return nil
}

func readContigs(r io.Reader) (*ContigSet, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("core: reading contig count: %w", err)
	}
	if count == 0 {
		return nil, nil
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("core: implausible contig count %d", count)
	}
	names := make([]string, count)
	lengths := make([]int, count)
	for i := range names {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("core: reading contig name length: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("core: reading contig name: %w", err)
		}
		names[i] = string(name)
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("core: reading contig length: %w", err)
		}
		lengths[i] = int(l)
	}
	return NewContigSet(names, lengths)
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var (
		magic, b, sf, sampleRate, primary, ftabK uint32
		flags, locate                            uint8
	)
	for _, v := range []any{&magic, &b, &sf, &flags, &locate, &sampleRate, &primary} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", err)
		}
	}
	if magic != indexMagic && magic != indexMagicV1 {
		return nil, fmt.Errorf("core: not a BWaveR index (magic %#x)", magic)
	}
	if magic == indexMagic {
		// The v1 header has no prefix-table field; v1 files load with no
		// table and callers rebuild one on demand (EnsureFtab).
		if err := binary.Read(br, binary.LittleEndian, &ftabK); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", err)
		}
		if ftabK > fmindex.MaxFtabK {
			return nil, fmt.Errorf("core: implausible ftab order %d", ftabK)
		}
	}
	cfg := IndexConfig{
		RRR:             rrr.Params{BlockSize: int(b), SuperblockFactor: int(sf)},
		PlainBitvectors: flags&1 != 0,
		Locate:          LocateMode(locate),
		SampleRate:      int(sampleRate),
		FtabK:           int(ftabK),
	}
	if err := cfg.RRR.Validate(); err != nil {
		return nil, err
	}
	counts := make([]int, dna.AlphabetSize)
	total := 0
	for s := range counts {
		var c uint32
		if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
			return nil, fmt.Errorf("core: reading symbol counts: %w", err)
		}
		counts[s] = int(c)
		total += int(c)
	}
	tree, err := wavelet.ReadTree(br)
	if err != nil {
		return nil, err
	}
	if tree.Len() != total {
		return nil, fmt.Errorf("core: tree covers %d symbols, counts sum to %d", tree.Len(), total)
	}
	// The header's per-symbol counts feed the FM-index C array; they must
	// agree with what the tree actually stores, or backward-search ranges
	// overflow on a corrupted file.
	for s := 0; s < dna.AlphabetSize; s++ {
		if got := tree.Count(uint8(s)); got != counts[s] {
			return nil, fmt.Errorf("core: tree stores %d copies of symbol %d, header says %d", got, s, counts[s])
		}
	}
	occ := &fmindex.WaveletOcc{Tree: tree}
	opts := fmindex.Options{}
	switch cfg.Locate {
	case LocateFullSA:
		sa := make([]int32, total+1)
		if err := binary.Read(br, binary.LittleEndian, sa); err != nil {
			return nil, fmt.Errorf("core: reading suffix array: %w", err)
		}
		opts.SA = sa
	case LocateSampled:
		sampled, err := fmindex.ReadSampledSA(br)
		if err != nil {
			return nil, err
		}
		opts.Sampled = sampled
	case LocateNone:
	default:
		return nil, fmt.Errorf("core: unknown locate mode %d", cfg.Locate)
	}
	fm, err := fmindex.NewFromParts(occ, dna.AlphabetSize, int(primary), counts, opts)
	if err != nil {
		return nil, err
	}
	stats := BuildStats{
		RefLength:         total,
		UncompressedBytes: total,
		StructureBytes:    tree.SizeBytes(),
		SharedBytes:       tree.SharedSizeBytes(),
	}
	if ftabK > 0 {
		ftab, err := fmindex.ReadFtab(br)
		if err != nil {
			return nil, err
		}
		if got := ftab.K(); got != int(ftabK) {
			return nil, fmt.Errorf("core: ftab payload order %d, header says %d", got, ftabK)
		}
		if err := ftab.Validate(total); err != nil {
			return nil, err
		}
		fm.SetFtab(ftab)
		stats.FtabBytes = ftab.SizeBytes()
	}
	ix := &Index{fm: fm, config: cfg, stats: stats}
	contigs, err := readContigs(br)
	if err != nil {
		return nil, err
	}
	if err := ix.SetContigs(contigs); err != nil {
		return nil, err
	}
	return ix, nil
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
