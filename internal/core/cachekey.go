package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"bwaver/internal/dna"
)

// CacheKey returns a content-addressed identity for the index BuildIndex
// would produce from ref under cfg: a hex SHA-256 over the reference bases,
// the contig layout, and every configuration field that changes the built
// structure. Two (reference, config) pairs share a key exactly when their
// indexes are interchangeable, so the key can safely address a shared index
// cache. The suffix-array algorithm is deliberately excluded — all three
// constructions produce identical arrays (cross-checked in the suffix-array
// tests), so it affects build time, not the artifact.
func CacheKey(ref dna.Seq, contigs *ContigSet, cfg IndexConfig) string {
	cfg = cfg.withDefaults()
	ftabK := max(cfg.FtabK, 0) // every non-positive value means "no table"
	h := sha256.New()
	fmt.Fprintf(h, "bwaver-index-v2|b=%d|sf=%d|plain=%t|locate=%d|sample=%d|ftabk=%d|",
		cfg.RRR.BlockSize, cfg.RRR.SuperblockFactor, cfg.PlainBitvectors, cfg.Locate, cfg.SampleRate, ftabK)
	if contigs != nil {
		for _, c := range contigs.Contigs() {
			fmt.Fprintf(h, "contig|%d|%s|%d|", len(c.Name), c.Name, c.Length)
		}
	}
	fmt.Fprintf(h, "ref|%d|", len(ref))
	// Stream the 2-bit codes in chunks to avoid a full-reference copy.
	var buf [4096]byte
	for off := 0; off < len(ref); {
		n := min(len(buf), len(ref)-off)
		for i := 0; i < n; i++ {
			buf[i] = byte(ref[off+i])
		}
		h.Write(buf[:n])
		off += n
	}
	return hex.EncodeToString(h.Sum(nil))
}
