package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
)

// Approximate mapping — the paper's future-work extension (§V): backward
// search tolerating up to k substitutions, applied to both the read and its
// reverse complement.

// ApproxResult is the k-mismatch analogue of MapResult.
type ApproxResult struct {
	// Forward and Reverse hold the match strata of each orientation.
	Forward, Reverse []fmindex.ApproxMatch
	// Steps is the larger per-orientation count of backward-search steps
	// the branching search executed (the two orientations run in parallel
	// pipelines, like the exact kernel).
	Steps int
}

// Mapped reports whether any stratum of either orientation matched.
func (r ApproxResult) Mapped() bool { return len(r.Forward) > 0 || len(r.Reverse) > 0 }

// Occurrences counts matches across both orientations and all strata.
func (r ApproxResult) Occurrences() int {
	return fmindex.TotalOccurrences(r.Forward) + fmindex.TotalOccurrences(r.Reverse)
}

// BestMismatches returns the lowest mismatch count among all matches, or -1
// if nothing matched.
func (r ApproxResult) BestMismatches() int {
	best := -1
	for _, set := range [][]fmindex.ApproxMatch{r.Forward, r.Reverse} {
		for _, m := range set {
			if best == -1 || m.Mismatches < best {
				best = m.Mismatches
			}
		}
	}
	return best
}

// MapReadsApprox maps a batch of reads with up to maxMismatches
// substitutions each, distributing reads over opts.Workers goroutines
// (0/1 serial, -1 all CPUs). Locate and Progress options apply as in
// MapReads; located positions are merged across strata into the flat
// position fields of the embedded results.
func (ix *Index) MapReadsApprox(reads []dna.Seq, maxMismatches int, opts MapOptions) ([]ApproxResult, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]ApproxResult, len(reads))
	var done atomic.Int64
	every := opts.ProgressEvery
	if every <= 0 {
		every = 1024
	}
	mapOne := func(i int) error {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return err
			}
		}
		res, err := ix.MapReadApprox(reads[i], maxMismatches)
		if err != nil {
			return err
		}
		results[i] = res
		if opts.Progress != nil {
			if d := done.Add(1); d%int64(every) == 0 {
				opts.Progress(int(d), len(reads))
			}
		}
		return nil
	}
	if workers == 1 {
		for i := range reads {
			if err := mapOne(i); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
			next     = make(chan int, workers)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if err := mapOne(i); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		for i := range reads {
			next <- i
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if opts.Progress != nil {
		opts.Progress(len(reads), len(reads))
	}
	return results, nil
}

// MapReadApprox maps one read and its reverse complement with up to
// maxMismatches substitutions per orientation.
func (ix *Index) MapReadApprox(read dna.Seq, maxMismatches int) (ApproxResult, error) {
	fwPattern := make([]uint8, len(read))
	rcPattern := make([]uint8, len(read))
	for i, b := range read {
		fwPattern[i] = uint8(b)
		rcPattern[len(read)-1-i] = uint8(b.Complement())
	}
	fw, fwSteps, err := ix.fm.CountApproxSteps(fwPattern, maxMismatches)
	if err != nil {
		return ApproxResult{}, err
	}
	rc, rcSteps, err := ix.fm.CountApproxSteps(rcPattern, maxMismatches)
	if err != nil {
		return ApproxResult{}, err
	}
	return ApproxResult{Forward: fw, Reverse: rc, Steps: max(fwSteps, rcSteps)}, nil
}
