package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"

	"bwaver/internal/readsim"
)

// v1HeaderPrefix is the byte length of the shared header fields before the
// v2-only ftabK word: magic(4) b(4) sf(4) flags(1) locate(1) sampleRate(4)
// primary(4).
const v1HeaderPrefix = 22

func TestBuildIndexWithFtab(t *testing.T) {
	ref := testGenome(t, 6000)
	ix := mustBuild(t, ref, IndexConfig{FtabK: 3})
	if ix.FtabK() != 3 {
		t.Fatalf("FtabK() = %d, want 3", ix.FtabK())
	}
	if ix.FtabBytes() != (1<<6)*8+16 {
		t.Errorf("FtabBytes() = %d for k=3", ix.FtabBytes())
	}
	st := ix.Stats()
	if st.FtabBytes != ix.FtabBytes() || st.FtabTime < 0 {
		t.Errorf("build stats not filled: %+v", st)
	}
	plain := mustBuild(t, ref, IndexConfig{})
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 200, Length: 30, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		a, b := ix.MapRead(r.Seq), plain.MapRead(r.Seq)
		if a.Forward != b.Forward || a.Reverse != b.Reverse {
			t.Fatalf("ftab index disagrees with plain index on %v", r.Seq)
		}
	}
}

func TestFtabRoundTrip(t *testing.T) {
	ref := testGenome(t, 5000)
	orig := mustBuild(t, ref, IndexConfig{FtabK: 3})
	back := roundTrip(t, orig)
	if back.FtabK() != 3 || back.FtabBytes() != orig.FtabBytes() {
		t.Fatalf("ftab lost in serialization: k=%d bytes=%d", back.FtabK(), back.FtabBytes())
	}
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 100, Length: 25, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		a, b := orig.MapRead(r.Seq), back.MapRead(r.Seq)
		if a.Forward != b.Forward || a.Reverse != b.Reverse {
			t.Fatal("deserialized ftab index disagrees")
		}
	}
}

// TestReadIndexV1Compat synthesizes the previous on-disk format — same
// stream minus the magic bump, the ftabK header word, and the ftab payload —
// and checks it still loads, with the table rebuildable on demand.
func TestReadIndexV1Compat(t *testing.T) {
	ref := testGenome(t, 4000)
	ix := mustBuild(t, ref, IndexConfig{}) // no ftab: payload matches v1
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	v1 := make([]byte, 0, len(raw)-4)
	v1 = append(v1, raw[:v1HeaderPrefix]...)
	v1 = append(v1, raw[v1HeaderPrefix+4:]...) // drop the ftabK word
	binary.LittleEndian.PutUint32(v1[:4], indexMagicV1)

	back, err := ReadIndex(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 index rejected: %v", err)
	}
	if back.FtabK() != 0 || back.FtabBytes() != 0 {
		t.Fatalf("v1 index loaded with a table: k=%d", back.FtabK())
	}
	probe := ref[100:130]
	want := ix.MapRead(probe)
	if got := back.MapRead(probe); got.Forward != want.Forward || got.Reverse != want.Reverse {
		t.Fatal("v1 index disagrees with original")
	}
	// The table is rebuilt on demand for old files.
	if err := back.EnsureFtab(3); err != nil {
		t.Fatal(err)
	}
	if back.FtabK() != 3 {
		t.Fatalf("EnsureFtab did not attach: k=%d", back.FtabK())
	}
	if got := back.MapRead(probe); got.Forward != want.Forward || got.Reverse != want.Reverse {
		t.Fatal("rebuilt ftab changes results")
	}
}

func TestEnsureAndDropFtab(t *testing.T) {
	ref := testGenome(t, 3000)
	ix := mustBuild(t, ref, IndexConfig{})
	if ix.FtabK() != 0 {
		t.Fatal("unexpected default table")
	}
	if err := ix.EnsureFtab(2); err != nil {
		t.Fatal(err)
	}
	first := ix.FM().Ftab()
	if ix.FtabK() != 2 || first == nil {
		t.Fatalf("EnsureFtab(2): k=%d", ix.FtabK())
	}
	// Same order is a no-op, not a rebuild.
	if err := ix.EnsureFtab(2); err != nil {
		t.Fatal(err)
	}
	if ix.FM().Ftab() != first {
		t.Error("EnsureFtab(2) rebuilt an up-to-date table")
	}
	if err := ix.EnsureFtab(4); err != nil {
		t.Fatal(err)
	}
	if ix.FtabK() != 4 || ix.FM().Ftab() == first {
		t.Error("EnsureFtab(4) did not rebuild")
	}
	ix.DropFtab()
	if ix.FtabK() != 0 || ix.FtabBytes() != 0 {
		t.Errorf("DropFtab left k=%d bytes=%d", ix.FtabK(), ix.FtabBytes())
	}
	if err := ix.EnsureFtab(-1); err != nil {
		t.Fatal(err)
	}
	if ix.FtabK() != 0 {
		t.Error("EnsureFtab(-1) attached a table")
	}
}

// TestMapReadsIntoMatchesMapReads pins the zero-allocation batch path to the
// allocating one: identical results, positions included, across worker
// counts — and nil (not empty) position slices for reads without matches.
func TestMapReadsIntoMatchesMapReads(t *testing.T) {
	ref := testGenome(t, 6000)
	ix := mustBuild(t, ref, IndexConfig{FtabK: 3})
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 300, Length: 28, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := readsim.Seqs(reads)
	want, wantStats, err := ix.MapReads(seqs, MapOptions{Locate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		dst := make([]MapResult, len(seqs))
		stats, err := ix.MapReadsInto(dst, seqs, MapOptions{Locate: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if stats.MappedReads != wantStats.MappedReads || stats.TotalSteps != wantStats.TotalSteps {
			t.Fatalf("workers=%d: stats %+v != %+v", workers, stats, wantStats)
		}
		for i := range dst {
			if dst[i].Forward != want[i].Forward || dst[i].Reverse != want[i].Reverse {
				t.Fatalf("workers=%d read %d: ranges differ", workers, i)
			}
			if !equalPositions(dst[i].ForwardPositions, want[i].ForwardPositions) ||
				!equalPositions(dst[i].ReversePositions, want[i].ReversePositions) {
				t.Fatalf("workers=%d read %d: positions differ", workers, i)
			}
			if want[i].ForwardPositions == nil && dst[i].ForwardPositions != nil {
				t.Fatalf("workers=%d read %d: empty positions not nil", workers, i)
			}
		}
	}

	if _, err := ix.MapReadsInto(make([]MapResult, 1), seqs, MapOptions{}); err == nil {
		t.Error("accepted mismatched dst length")
	}
}

func TestMapReadsIntoZeroAlloc(t *testing.T) {
	ref := testGenome(t, 4000)
	ix := mustBuild(t, ref, IndexConfig{FtabK: 3})
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 400, Length: 30, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := readsim.Seqs(reads)
	dst := make([]MapResult, len(seqs))
	run := func() {
		if _, err := ix.MapReadsInto(dst, seqs, MapOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	// Steady state allocates a small constant per batch (the worker closure
	// and its escaping cursor/done counters) and nothing per read: the bound
	// is independent of the read count.
	if avg := testing.AllocsPerRun(5, run); avg > 8 {
		t.Errorf("MapReadsInto allocates %.1f times per batch of %d reads", avg, len(seqs))
	}
}

func TestMapReadsIntoCancel(t *testing.T) {
	ref := testGenome(t, 3000)
	ix := mustBuild(t, ref, IndexConfig{})
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 200, Length: 30, MappingRatio: 1, RevCompFraction: 0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := readsim.Seqs(reads)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]MapResult, len(seqs))
	if _, err := ix.MapReadsInto(dst, seqs, MapOptions{Context: ctx}); err == nil {
		t.Error("canceled context not observed")
	}
}

func TestCacheKeyFtabK(t *testing.T) {
	ref := testGenome(t, 500)
	base := CacheKey(ref, nil, IndexConfig{})
	if CacheKey(ref, nil, IndexConfig{FtabK: 10}) == base {
		t.Error("ftab order not part of the cache key")
	}
	// Every non-positive order means "no table" and must share a key.
	if CacheKey(ref, nil, IndexConfig{FtabK: -3}) != base {
		t.Error("negative ftab order changed the key")
	}
}
