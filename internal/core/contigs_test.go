package core

import (
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

func TestNewContigSetValidation(t *testing.T) {
	cases := []struct {
		names   []string
		lengths []int
	}{
		{[]string{"a"}, []int{1, 2}},
		{nil, nil},
		{[]string{""}, []int{5}},
		{[]string{"a", "a"}, []int{5, 5}},
		{[]string{"a"}, []int{0}},
		{[]string{"a"}, []int{-3}},
	}
	for _, c := range cases {
		if _, err := NewContigSet(c.names, c.lengths); err == nil {
			t.Errorf("NewContigSet(%v, %v) accepted invalid input", c.names, c.lengths)
		}
	}
}

func TestContigResolve(t *testing.T) {
	cs, err := NewContigSet([]string{"chr1", "chr2", "chr3"}, []int{100, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Total() != 350 || cs.Count() != 3 {
		t.Fatalf("Total=%d Count=%d", cs.Total(), cs.Count())
	}
	cases := []struct {
		pos, span  int
		wantName   string
		wantOffset int
		wantOK     bool
	}{
		{0, 10, "chr1", 0, true},
		{99, 1, "chr1", 99, true},
		{100, 1, "chr2", 0, true},
		{149, 1, "chr2", 49, true},
		{150, 200, "chr3", 0, true},
		{349, 1, "chr3", 199, true},
		{95, 10, "", 0, false},  // straddles chr1/chr2
		{149, 2, "", 0, false},  // straddles chr2/chr3
		{340, 20, "", 0, false}, // runs off the end
		{-1, 5, "", 0, false},
		{350, 0, "", 0, false},
	}
	for _, c := range cases {
		contig, off, ok := cs.Resolve(c.pos, c.span)
		if ok != c.wantOK || (ok && (contig.Name != c.wantName || off != c.wantOffset)) {
			t.Errorf("Resolve(%d,%d) = %v,%d,%v; want %s,%d,%v",
				c.pos, c.span, contig.Name, off, ok, c.wantName, c.wantOffset, c.wantOK)
		}
	}
}

func TestIndexContigsRoundTrip(t *testing.T) {
	// Two contigs concatenated; a read planted inside contig 2 must resolve
	// there, before and after serialization.
	g1, _ := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 1})
	g2, _ := readsim.Genome(readsim.GenomeConfig{Length: 2000, Seed: 2})
	ref := append(g1.Clone(), g2...)
	ix := mustBuild(t, ref, IndexConfig{})
	cs, err := NewContigSet([]string{"chrA", "chrB"}, []int{3000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetContigs(cs); err != nil {
		t.Fatal(err)
	}
	check := func(ix *Index) {
		t.Helper()
		read := ref[3500:3550]
		res := ix.MapRead(read)
		ps, err := ix.FM().Locate(res.Forward)
		if err != nil {
			t.Fatal(err)
		}
		resolved := false
		for _, p := range ps {
			contig, off, ok := ix.Contigs().Resolve(int(p), len(read))
			if ok && contig.Name == "chrB" && off == 500 {
				resolved = true
			}
		}
		if !resolved {
			t.Error("read planted in chrB not resolved there")
		}
	}
	check(ix)
	back := roundTrip(t, ix)
	if back.Contigs() == nil || back.Contigs().Count() != 2 {
		t.Fatal("contigs lost in serialization")
	}
	check(back)
}

func TestSetContigsLengthMismatch(t *testing.T) {
	ref := testGenome(t, 1000)
	ix := mustBuild(t, ref, IndexConfig{})
	cs, _ := NewContigSet([]string{"x"}, []int{999})
	if err := ix.SetContigs(cs); err == nil {
		t.Error("accepted contigs not covering the reference")
	}
	if err := ix.SetContigs(nil); err != nil {
		t.Errorf("clearing contigs failed: %v", err)
	}
}

func TestBoundarySpanningHitRejected(t *testing.T) {
	// Plant the same pattern so one occurrence straddles the boundary.
	pattern := dna.MustParseSeq("ACGTTGCAGGTCATCGAATC")
	g1, _ := readsim.Genome(readsim.GenomeConfig{Length: 1000, Seed: 3})
	g2, _ := readsim.Genome(readsim.GenomeConfig{Length: 1000, Seed: 4})
	ref := append(g1.Clone(), g2...)
	copy(ref[990:], pattern) // straddles positions 990..1010
	copy(ref[100:], pattern) // clean occurrence inside contig 1
	ix := mustBuild(t, ref, IndexConfig{})
	cs, _ := NewContigSet([]string{"c1", "c2"}, []int{1000, 1000})
	if err := ix.SetContigs(cs); err != nil {
		t.Fatal(err)
	}
	res := ix.MapRead(pattern)
	ps, err := ix.FM().Locate(res.Forward)
	if err != nil {
		t.Fatal(err)
	}
	clean, spanning := 0, 0
	for _, p := range ps {
		if _, _, ok := cs.Resolve(int(p), len(pattern)); ok {
			clean++
		} else {
			spanning++
		}
	}
	if clean < 1 || spanning < 1 {
		t.Fatalf("expected both clean and boundary-spanning hits, got %d/%d", clean, spanning)
	}
}
