package core

import (
	"context"
	"errors"
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

// memTestReads simulates an interleaved paired batch over ref.
func memTestReads(t *testing.T, ref dna.Seq, pairs, readLen int) []dna.Seq {
	t.Helper()
	sim, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: pairs, ReadLength: readLen, InsertMean: 3 * readLen, InsertStdDev: readLen / 4,
		MappingRatio: 0.9, ErrorRate: 0.02, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := make([]dna.Seq, 0, 2*pairs)
	for _, p := range sim {
		reads = append(reads, p.R1, p.R2)
	}
	return reads
}

// sequentialMem maps reads one by one through the public per-read entry
// points — the reference schedule parallel batches must reproduce exactly.
func sequentialMem(t *testing.T, ix *Index, reads []dna.Seq, opts MemOptions) []MemResult {
	t.Helper()
	out := make([]MemResult, len(reads))
	if opts.Paired {
		i := 0
		for ; i+1 < len(reads); i += 2 {
			pr, err := ix.MapPairMem(reads[i], reads[i+1], opts)
			if err != nil {
				t.Fatal(err)
			}
			out[i], out[i+1] = pr.R1, pr.R2
		}
		if i < len(reads) {
			res, err := ix.MapReadMem(reads[i], opts)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}
	for i, r := range reads {
		res, err := ix.MapReadMem(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

func TestMapReadsMemIntoMatchesSequential(t *testing.T) {
	ix, ref := buildMemIndex(t, 30000, 21)
	reads := memTestReads(t, ref, 45, 100)
	for _, tc := range []struct {
		name   string
		paired bool
		n      int // batch length, odd cases included
	}{
		{"paired", true, len(reads)},
		{"paired-odd", true, len(reads) - 1}, // odd paired batch: lone last read
		{"single", false, len(reads)},
		{"single-odd", false, len(reads) - 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch := reads[:tc.n]
			opts := MemOptions{Paired: tc.paired, MinInsert: 100, MaxInsert: 600}
			want := sequentialMem(t, ix, batch, opts)
			for _, workers := range []int{1, 4} {
				dst := make([]MemResult, len(batch))
				stats, err := ix.MapReadsMemInto(dst, batch, opts, MapOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("workers=%d read %d diverges from sequential:\n got %+v\nwant %+v",
							workers, i, dst[i], want[i])
					}
				}
				if stats.Reads != len(batch) {
					t.Errorf("workers=%d stats cover %d reads, want %d", workers, stats.Reads, len(batch))
				}
			}
		})
	}
}

func TestMapReadsMemIntoCancel(t *testing.T) {
	ix, ref := buildMemIndex(t, 30000, 22)
	reads := memTestReads(t, ref, 200, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first chunk check: the batch must abort
	dst := make([]MemResult, len(reads))
	_, err := ix.MapReadsMemInto(dst, reads, MemOptions{Paired: true}, MapOptions{Context: ctx, Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v", err)
	}

	// Mid-batch cancellation: trip the context from a progress callback so
	// workers observe it between chunks.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = ix.MapReadsMemInto(dst, reads, MemOptions{Paired: true}, MapOptions{
		Context: ctx2, Workers: 4, ProgressEvery: 8,
		Progress: func(done, total int) {
			if done >= 16 {
				cancel2()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancellation returned %v", err)
	}
}

func TestMapReadsMemIntoValidation(t *testing.T) {
	ix, ref := buildMemIndex(t, 5000, 23)
	reads := []dna.Seq{ref[100:170].Clone()}
	if _, err := ix.MapReadsMemInto(make([]MemResult, 2), reads, MemOptions{}, MapOptions{}); err == nil {
		t.Error("length-mismatched result slice accepted")
	}
	if _, err := ix.MapReadsMemInto(nil, nil, MemOptions{}, MapOptions{}); err != nil {
		t.Errorf("empty batch rejected: %v", err)
	}
}

// TestMemZDropMatchesFullBand asserts the served pipeline's work-cutting
// heuristics (z-drop, adaptive band growth) are bit-transparent on the
// serving workload: every alignment field, CIGAR included, matches a run
// with both heuristics disabled. Only Stats.Cells (the work saved) may
// differ.
func TestMemZDropMatchesFullBand(t *testing.T) {
	ix, ref := buildMemIndex(t, 40000, 24)
	reads := memTestReads(t, ref, 150, 150)
	opts := MemOptions{Paired: true, MinInsert: 200, MaxInsert: 700}
	fast := make([]MemResult, len(reads))
	if _, err := ix.MapReadsMemInto(fast, reads, opts, MapOptions{}); err != nil {
		t.Fatal(err)
	}
	full := opts
	full.ZDrop = -1
	full.BandStart = -1
	exact := make([]MemResult, len(reads))
	if _, err := ix.MapReadsMemInto(exact, reads, full, MapOptions{}); err != nil {
		t.Fatal(err)
	}
	saved := 0
	for i := range exact {
		f, e := fast[i], exact[i]
		if f.Cells < e.Cells {
			saved++
		}
		// Cells is the work the heuristics save — everything else must match.
		f.Cells, e.Cells = 0, 0
		if f != e {
			t.Fatalf("read %d: heuristics changed the alignment:\n fast %+v\nexact %+v", i, fast[i], exact[i])
		}
	}
	if saved == 0 {
		t.Error("heuristics saved no DP cells on any read — they are not engaged")
	}
}

// TestMemBatchSteadyStateZeroAlloc is the allocation gate the mem-bench
// smoke runs in CI: once pools are warm, the batch path must not allocate
// per read.
func TestMemBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	ix, ref := buildMemIndex(t, 30000, 25)
	reads := memTestReads(t, ref, 40, 100)
	opts := MemOptions{Paired: true, MinInsert: 100, MaxInsert: 600}
	dst := make([]MemResult, len(reads))
	// Warm: lazily-built bidirectional index, scratch pools, CIGAR interns.
	if _, err := ix.MapReadsMemInto(dst, reads, opts, MapOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ix.MapReadsMemInto(dst, reads, opts, MapOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if perRead := allocs / float64(len(reads)); perRead > 0 {
		t.Errorf("steady-state batch path allocates %.3f allocs/read (%.0f per batch), want 0", perRead, allocs)
	}
}

func BenchmarkMapReadsMemInto(b *testing.B) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 30000, GC: 0.45, Seed: 26})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 50, ReadLength: 150, InsertMean: 450, InsertStdDev: 35,
		MappingRatio: 0.9, ErrorRate: 0.02, Seed: 27,
	})
	if err != nil {
		b.Fatal(err)
	}
	reads := make([]dna.Seq, 0, 2*len(sim))
	for _, p := range sim {
		reads = append(reads, p.R1, p.R2)
	}
	opts := MemOptions{Paired: true, MinInsert: 200, MaxInsert: 700}
	dst := make([]MemResult, len(reads))
	if _, err := ix.MapReadsMemInto(dst, reads, opts, MapOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.MapReadsMemInto(dst, reads, opts, MapOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
