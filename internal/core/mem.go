package core

import (
	"fmt"
	"strconv"
	"time"

	"bwaver/internal/align"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
)

// Seed-and-extend approximate mapping (the "mem" workload, after BWA-MEM):
// SMEM seeding on the bidirectional index, collinear chaining of the located
// seed hits, banded extension of the best chains, and MAPQ scoring — the
// full pipeline the paper's introduction motivates when it frames exact
// short-fragment matching as "candidate loci in the genome (seeds) to be
// extended by the actual alignment algorithm".

// MemOptions configure the seed-and-extend pipeline. The zero value takes
// the listed defaults.
type MemOptions struct {
	// MinSeedLen is the minimum SMEM length used as a seed; default 19
	// (BWA-MEM's default).
	MinSeedLen int
	// MaxSeedHits caps the occurrences one seed may contribute; seeds more
	// repetitive than this are skipped rather than exploding the chain set —
	// the same ambiguity guard PairOptions.MaxHitsPerMate applies to exact
	// pairing. Default 256.
	MaxSeedHits int
	// Band is the extension half-band: the largest diagonal drift (net
	// indel length) an alignment may accumulate. Default 16.
	Band int
	// MaxChains bounds how many chains are extended per orientation;
	// default 4.
	MaxChains int
	// MinScore is the minimum alignment score to report a mapping;
	// default 30.
	MinScore int
	// Scoring is the extension scoring scheme; the zero value takes
	// align.DefaultScoring.
	Scoring align.Scoring
	// Paired treats the read stream as interleaved mate pairs (R1, R2,
	// R1, R2, ...) with FR orientation, enabling proper-pair calls and mate
	// rescue.
	Paired bool
	// MinInsert and MaxInsert bound the accepted fragment length for
	// proper-pair calls and the mate-rescue search window. MaxInsert
	// defaults to 1000 when Paired.
	MinInsert, MaxInsert int
	// ZDrop is the extension early-termination threshold (see
	// align.Extender): DP rows stop once the row maximum has fallen ZDrop
	// below the best score. 0 takes align.DefaultZDrop; a negative value
	// disables early termination (every band row is evaluated).
	ZDrop int
	// BandStart is the initial half-band of adaptive band growth:
	// extensions start at this band and double — re-running — whenever the
	// banded optimum looks band-limited, up to Band. 0 takes
	// DefaultBandStart; a negative value disables growth (extensions run
	// the full Band immediately, the pre-adaptive behaviour).
	BandStart int
}

// DefaultBandStart is the initial adaptive-extension half-band: wide enough
// for the small indel counts short reads carry, an eighth of the full-band
// DP cell volume. Extensions whose optimum touches the band edge re-run
// wider, so the full Band remains the correctness envelope.
const DefaultBandStart = 4

func (o MemOptions) withDefaults() MemOptions {
	if o.MinSeedLen == 0 {
		o.MinSeedLen = 19
	}
	if o.MaxSeedHits == 0 {
		o.MaxSeedHits = 256
	}
	if o.Band == 0 {
		o.Band = 16
	}
	if o.MaxChains == 0 {
		o.MaxChains = 4
	}
	if o.MinScore == 0 {
		o.MinScore = 30
	}
	if o.Scoring == (align.Scoring{}) {
		o.Scoring = align.DefaultScoring
	}
	if o.Paired && o.MaxInsert == 0 {
		o.MaxInsert = 1000
	}
	if o.ZDrop == 0 {
		o.ZDrop = align.DefaultZDrop
	}
	if o.BandStart == 0 {
		o.BandStart = DefaultBandStart
	}
	return o
}

// extenderBandStart maps the option encoding (negative disables) onto the
// align.Extender encoding (zero disables).
func (o MemOptions) extenderBandStart() int {
	if o.BandStart < 0 {
		return 0
	}
	return o.BandStart
}

func (o MemOptions) validate() error {
	if o.MinSeedLen < 1 {
		return fmt.Errorf("core: MinSeedLen %d must be >= 1", o.MinSeedLen)
	}
	if o.MaxSeedHits < 1 {
		return fmt.Errorf("core: MaxSeedHits %d must be >= 1", o.MaxSeedHits)
	}
	if o.Band < 0 {
		return fmt.Errorf("core: Band %d must be >= 0", o.Band)
	}
	if o.MaxChains < 1 {
		return fmt.Errorf("core: MaxChains %d must be >= 1", o.MaxChains)
	}
	if o.MinScore < 1 {
		return fmt.Errorf("core: MinScore %d must be >= 1", o.MinScore)
	}
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.MinInsert < 0 || o.MaxInsert < o.MinInsert {
		return fmt.Errorf("core: insert window [%d,%d] invalid", o.MinInsert, o.MaxInsert)
	}
	return nil
}

// MemAlignment is one reported placement of a read.
type MemAlignment struct {
	// Pos is the 0-based leftmost reference position in concatenated
	// coordinates; RefSpan the number of reference bases consumed.
	Pos     int32
	RefSpan int
	// Score is the extension score; MapQ the mapping quality (see MemMapQ).
	Score int
	MapQ  uint8
	// CIGAR is in SAM orientation (reverse-strand alignments describe the
	// reverse-complemented read), including terminal soft clips.
	CIGAR string
	// Forward reports the strand.
	Forward bool
	// NM is the edit distance of the aligned region (SAM NM tag).
	NM int
}

// Mapped reports whether the alignment places the read.
func (a MemAlignment) Mapped() bool { return a.CIGAR != "" }

// MemResult is the outcome of seed-and-extend mapping one read.
type MemResult struct {
	// Best is the reported alignment; zero when the read is unmapped.
	Best MemAlignment
	// SubScore is the best competing score at a distinct locus, 0 if none —
	// the quantity MAPQ discounts for.
	SubScore int
	// Seeds, Chains, and Extensions count pipeline work for this read
	// (after the ambiguity guard).
	Seeds, Chains, Extensions int
	// SeedSteps is the larger per-orientation count of bidirectional
	// extension operations (the two orientations search in parallel
	// pipelines, like the exact kernel) — the pass-1 cycle driver.
	SeedSteps int
	// Cells is the total count of DP cells the extensions evaluated — the
	// pass-2 systolic-array cycle driver.
	Cells int
	// Rescued marks a mate placed by the paired rescue search rather than
	// its own seeds.
	Rescued bool
}

// Mapped reports whether the read was placed.
func (r MemResult) Mapped() bool { return r.Best.Mapped() }

// MemStats aggregates a mem batch.
type MemStats struct {
	Reads       int           `json:"reads"`
	MappedReads int           `json:"mapped_reads"`
	Seeds       int           `json:"seeds"`
	Chains      int           `json:"chains"`
	Extensions  int           `json:"extensions"`
	Rescues     int           `json:"rescues"`
	SeedSteps   int           `json:"seed_steps"`
	Cells       int           `json:"dp_cells"`
	Elapsed     time.Duration `json:"-"`
}

// Merge folds another batch's stats into s.
func (s *MemStats) Merge(o MemStats) {
	s.Reads += o.Reads
	s.MappedReads += o.MappedReads
	s.Seeds += o.Seeds
	s.Chains += o.Chains
	s.Extensions += o.Extensions
	s.Rescues += o.Rescues
	s.SeedSteps += o.SeedSteps
	s.Cells += o.Cells
	s.Elapsed += o.Elapsed
}

// Add folds one read's result into the stats.
func (s *MemStats) Add(r MemResult) {
	s.Reads++
	if r.Mapped() {
		s.MappedReads++
	}
	s.Seeds += r.Seeds
	s.Chains += r.Chains
	s.Extensions += r.Extensions
	if r.Rescued {
		s.Rescues++
	}
	s.SeedSteps += r.SeedSteps
	s.Cells += r.Cells
}

// memState is the lazily-built seed-and-extend substrate: the bidirectional
// index for SMEM seeding and the reference text for extension. The text is
// reconstructed from the index itself (ExtractReference), so a cache-restored
// index needs no access to the original FASTA.
type memState struct {
	bi  *fmindex.BiIndex
	ref dna.Seq
}

// EnsureMem builds the seed-and-extend state if the index does not hold one
// yet. Safe for concurrent use; parallel callers share one build.
func (ix *Index) EnsureMem() error {
	ix.memMu.Lock()
	defer ix.memMu.Unlock()
	if ix.mem != nil {
		return nil
	}
	ref, err := ix.ExtractReference()
	if err != nil {
		return fmt.Errorf("core: mem state: %w", err)
	}
	text := make([]uint8, len(ref))
	for i, b := range ref {
		text[i] = uint8(b)
	}
	bi, err := fmindex.NewBiIndex(text, dna.AlphabetSize, ix.config.RRR)
	if err != nil {
		return fmt.Errorf("core: mem state: %w", err)
	}
	ix.mem = &memState{bi: bi, ref: ref}
	return nil
}

// MemReady reports whether the seed-and-extend state is built.
func (ix *Index) MemReady() bool {
	ix.memMu.Lock()
	defer ix.memMu.Unlock()
	return ix.mem != nil
}

// MemBytes returns the footprint of the seed-and-extend state (both
// directions' structures plus the retained text), 0 when not built.
func (ix *Index) MemBytes() int {
	ix.memMu.Lock()
	defer ix.memMu.Unlock()
	if ix.mem == nil {
		return 0
	}
	return ix.mem.bi.Forward().SizeBytes() + len(ix.mem.ref)
}

func (ix *Index) memState() (*memState, error) {
	if err := ix.EnsureMem(); err != nil {
		return nil, err
	}
	ix.memMu.Lock()
	defer ix.memMu.Unlock()
	return ix.mem, nil
}

// memCandidate is one extended chain before best-selection.
type memCandidate struct {
	res     align.Result
	forward bool
	query   dna.Seq // the orientation's query (read or its RC)
}

// memScratch is one batch worker's reusable working memory: every buffer
// the per-read pipeline touches, so the steady-state batch path performs no
// heap allocation per read. Pooled via memScratchPool; not safe for
// concurrent use.
type memScratch struct {
	pattern []uint8     // orientation pattern (symbol codes)
	rc      dna.Seq     // reverse-complement buffer
	smems   []fmindex.SMEM
	seeds   []Seed
	posSlab []int32 // located seed positions (per SMEM)
	chains  chainScratch
	cands   []memCandidate
	ext     align.Extender
	cigar   []byte            // CIGAR render buffer
	interns map[string]string // CIGAR intern table, bounded
	rescueQ dna.Seq           // rescue-query RC buffer
}

// memInternCap bounds the CIGAR intern table; real batches repeat a small
// set of CIGAR shapes, but a pathological input must not grow the table
// unboundedly.
const memInternCap = 1 << 15

// internCIGAR returns the rendered bytes as a string, reusing a previously
// interned copy when the same CIGAR was seen before — the final allocation
// on the per-read path (the compiler elides the []byte→string conversion in
// the map lookup).
func (sc *memScratch) internCIGAR(b []byte) string {
	if s, ok := sc.interns[string(b)]; ok {
		return s
	}
	s := string(b)
	if sc.interns == nil {
		sc.interns = make(map[string]string)
	}
	if len(sc.interns) < memInternCap {
		sc.interns[s] = s
	}
	return s
}

// MapReadMem runs the full seed → chain → extend pipeline for one read:
// SMEM seeds on both orientations, collinear chaining with the repetitive
// seed guard, banded extension of the surviving chains, and MAPQ from the
// best/second-best score gap.
func (ix *Index) MapReadMem(read dna.Seq, opts MemOptions) (MemResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return MemResult{}, err
	}
	mem, err := ix.memState()
	if err != nil {
		return MemResult{}, err
	}
	sc := memScratchPool.Get().(*memScratch)
	res, err := mem.mapRead(sc, read, opts)
	memScratchPool.Put(sc)
	return res, err
}

func (st *memState) mapRead(sc *memScratch, read dna.Seq, opts MemOptions) (MemResult, error) {
	var out MemResult
	if len(read) == 0 {
		return out, nil
	}
	sc.rc = read.ReverseComplementInto(sc.rc)
	sc.cands = sc.cands[:0]
	sc.ext.ZDrop = opts.ZDrop
	sc.ext.BandStart = opts.extenderBandStart()
	for orient := 0; orient < 2; orient++ {
		query, forward := read, true
		if orient == 1 {
			query, forward = sc.rc, false
		}
		if cap(sc.pattern) < len(query) {
			sc.pattern = make([]uint8, len(query))
		}
		pattern := sc.pattern[:len(query)]
		for i, b := range query {
			pattern[i] = uint8(b)
		}
		seeds := sc.seeds[:0]
		smems, steps, err := st.bi.SMEMsAppend(sc.smems[:0], pattern, opts.MinSeedLen)
		sc.smems = smems[:0]
		if err != nil {
			return out, err
		}
		// The two orientations search in parallel pipelines, so the slower
		// one bounds the seeding latency (like MapResult.Steps).
		out.SeedSteps = max(out.SeedSteps, steps)
		for _, s := range smems {
			if s.Rows.Count() > opts.MaxSeedHits {
				continue // hyper-repetitive seed: ambiguity guard
			}
			positions, err := st.bi.Forward().LocateAppend(sc.posSlab[:0], s.Rows.Fwd)
			sc.posSlab = positions[:0]
			if err != nil {
				return out, err
			}
			for _, p := range positions {
				seeds = append(seeds, Seed{QStart: s.Start, QEnd: s.End, RPos: p})
			}
		}
		sc.seeds = seeds[:0]
		out.Seeds += len(seeds)
		chains := sc.chains.chain(seeds, opts.Band, opts.MaxChains)
		out.Chains += len(chains)
		for _, c := range chains {
			anchor := c.Seeds[c.Anchor]
			res, err := sc.ext.ExtendSeed(query, st.ref, anchor.QStart, int(anchor.RPos), anchor.Len(), opts.Band, opts.Scoring)
			if err != nil {
				return out, err
			}
			out.Extensions++
			out.Cells += res.Cells
			if res.Score > 0 {
				sc.cands = append(sc.cands, memCandidate{res: res, forward: forward, query: query})
			}
		}
	}
	best, sub := pickBest(sc.cands, opts.Band)
	out.SubScore = sub
	if best == nil || best.res.Score < opts.MinScore {
		sc.ext.Reset()
		return out, nil
	}
	out.Best = best.alignmentBuf(sc, sub, st.ref)
	sc.ext.Reset()
	return out, nil
}

// pickBest selects the top-scoring candidate (deterministic tie-breaks:
// lower reference position, then forward strand) and the best competing
// score at a locus more than slop away from the winner's.
func pickBest(cands []memCandidate, slop int) (*memCandidate, int) {
	var best *memCandidate
	for i := range cands {
		c := &cands[i]
		if best == nil {
			best = c
			continue
		}
		switch {
		case c.res.Score > best.res.Score:
			best = c
		case c.res.Score == best.res.Score && c.res.RefStart < best.res.RefStart:
			best = c
		case c.res.Score == best.res.Score && c.res.RefStart == best.res.RefStart && c.forward && !best.forward:
			best = c
		}
	}
	if best == nil {
		return nil, 0
	}
	sub := 0
	for i := range cands {
		c := &cands[i]
		if c == best {
			continue
		}
		dist := c.res.RefStart - best.res.RefStart
		if dist < 0 {
			dist = -dist
		}
		if dist <= slop && c.forward == best.forward {
			continue // same locus reached through another chain
		}
		if c.res.Score > sub {
			sub = c.res.Score
		}
	}
	return best, sub
}

// alignmentBuf renders a winning candidate as a MemAlignment using the
// scratch's CIGAR buffer and intern table, so a repeated CIGAR shape costs
// no allocation.
func (c *memCandidate) alignmentBuf(sc *memScratch, sub int, ref dna.Seq) MemAlignment {
	r := c.res
	sc.cigar = appendClippedCIGAR(sc.cigar[:0], r, len(c.query))
	return MemAlignment{
		Pos:     int32(r.RefStart),
		RefSpan: r.RefEnd - r.RefStart,
		Score:   r.Score,
		MapQ:    MemMapQ(r.Score, sub),
		CIGAR:   sc.internCIGAR(sc.cigar),
		Forward: c.forward,
		NM:      editDistance(r, c.query, ref),
	}
}

// MemMapQ is the mapping quality of a best score against its runner-up at a
// distinct locus: 60·(best−sub)/best, the linear discount of the
// second-best evidence, clamped to [0, 60]. A read whose best placement is
// tied elsewhere gets 0; a read with no competitor gets 60.
func MemMapQ(best, sub int) uint8 {
	if best <= 0 || sub >= best {
		return 0
	}
	if sub < 0 {
		sub = 0
	}
	return uint8(60 * (best - sub) / best)
}

// clippedCIGAR wraps an extension traceback with the terminal soft clips
// implied by the unaligned query prefix/suffix.
func clippedCIGAR(r align.Result, queryLen int) string {
	return string(appendClippedCIGAR(nil, r, queryLen))
}

// appendClippedCIGAR is clippedCIGAR appending rendered bytes to dst — the
// allocation-free form the batch path feeds through the intern table.
func appendClippedCIGAR(dst []byte, r align.Result, queryLen int) []byte {
	if r.QueryStart > 0 {
		dst = strconv.AppendInt(dst, int64(r.QueryStart), 10)
		dst = append(dst, 'S')
	}
	dst = appendCIGAROps(dst, r.Ops)
	if tail := queryLen - r.QueryEnd; tail > 0 {
		dst = strconv.AppendInt(dst, int64(tail), 10)
		dst = append(dst, 'S')
	}
	return dst
}

// appendCIGAROps run-length encodes a traceback, matching Result.CIGAR
// byte for byte ("*" for an empty traceback).
func appendCIGAROps(dst []byte, ops []align.Op) []byte {
	if len(ops) == 0 {
		return append(dst, '*')
	}
	count := 1
	for i := 1; i <= len(ops); i++ {
		if i < len(ops) && ops[i] == ops[i-1] {
			count++
			continue
		}
		dst = strconv.AppendInt(dst, int64(count), 10)
		dst = append(dst, byte(ops[i-1]))
		count = 1
	}
	return dst
}

// editDistance counts the NM tag over an extension traceback: mismatched
// aligned bases plus inserted and deleted bases.
func editDistance(r align.Result, query, ref dna.Seq) int {
	nm := 0
	qi, ri := r.QueryStart, r.RefStart
	for _, op := range r.Ops {
		switch op {
		case align.OpMatch:
			if query[qi] != ref[ri] {
				nm++
			}
			qi++
			ri++
		case align.OpInsert:
			nm++
			qi++
		case align.OpDelete:
			nm++
			ri++
		}
	}
	return nm
}

// MemPairResult is the outcome of mapping one mate pair.
type MemPairResult struct {
	R1, R2 MemResult
	// Proper reports FR orientation with the fragment length inside the
	// insert window.
	Proper bool
	// Insert is the observed fragment length when Proper (R1's signed TLen
	// is +Insert or −Insert by position).
	Insert int
}

// MemPairFromResults reassembles a pair-level result from two per-read
// results — the shape batch APIs return — re-deriving the proper-pair call.
// opts must be the options the reads were mapped with.
func MemPairFromResults(r1, r2 MemResult, opts MemOptions) MemPairResult {
	opts = opts.withDefaults()
	out := MemPairResult{R1: r1, R2: r2}
	out.Proper, out.Insert = properPair(r1, r2, opts)
	return out
}

// MapPairMem maps a mate pair: both mates through the single-end pipeline,
// then a mate-rescue search for a mate the seeds missed (a banded scan of
// the insert window implied by its mapped partner), then the proper-pair
// call against the insert window.
func (ix *Index) MapPairMem(r1, r2 dna.Seq, opts MemOptions) (MemPairResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return MemPairResult{}, err
	}
	mem, err := ix.memState()
	if err != nil {
		return MemPairResult{}, err
	}
	sc := memScratchPool.Get().(*memScratch)
	out, err := mem.mapPair(sc, r1, r2, opts)
	memScratchPool.Put(sc)
	return out, err
}

// mapPair is the pair pipeline with the state and option plumbing hoisted:
// batch loops resolve memState and validate options once and call this per
// pair (the former per-pair re-resolution was pure overhead).
func (st *memState) mapPair(sc *memScratch, r1, r2 dna.Seq, opts MemOptions) (MemPairResult, error) {
	var out MemPairResult
	var err error
	if out.R1, err = st.mapRead(sc, r1, opts); err != nil {
		return out, err
	}
	if out.R2, err = st.mapRead(sc, r2, opts); err != nil {
		return out, err
	}
	// Rescue: one mapped mate defines the window the other must fall in.
	if out.R1.Mapped() && !out.R2.Mapped() {
		st.rescueMate(sc, &out.R2, r2, out.R1.Best, opts)
	} else if out.R2.Mapped() && !out.R1.Mapped() {
		st.rescueMate(sc, &out.R1, r1, out.R2.Best, opts)
	}
	out.Proper, out.Insert = properPair(out.R1, out.R2, opts)
	return out, nil
}

// rescueMate searches the insert window implied by the mapped anchor mate
// for the missing mate in the FR-expected orientation, charging the scan's
// DP cells to the rescued read. A hit must still clear MinScore. The full
// Smith-Waterman over the window runs in the scratch's extender, so rescue
// stays allocation-free too.
func (st *memState) rescueMate(sc *memScratch, dst *MemResult, read dna.Seq, anchor MemAlignment, opts MemOptions) {
	if opts.MaxInsert <= 0 || len(read) == 0 {
		return
	}
	var wStart, wEnd int
	var query dna.Seq
	var forward bool
	if anchor.Forward {
		// Anchor is the left mate: the missing mate lies downstream on the
		// reverse strand.
		wStart = int(anchor.Pos)
		wEnd = min(len(st.ref), wStart+opts.MaxInsert)
		sc.rescueQ = read.ReverseComplementInto(sc.rescueQ)
		query = sc.rescueQ
		forward = false
	} else {
		// Anchor is the right mate: the missing mate lies upstream, forward.
		wEnd = int(anchor.Pos) + anchor.RefSpan
		wStart = max(0, wEnd-opts.MaxInsert)
		query = read
		forward = true
	}
	if wEnd-wStart < opts.MinSeedLen {
		return
	}
	res, err := sc.ext.SmithWaterman(query, st.ref[wStart:wEnd], opts.Scoring)
	if err != nil {
		sc.ext.Reset()
		return
	}
	dst.Cells += res.Cells
	if res.Score < opts.MinScore {
		sc.ext.Reset()
		return
	}
	res.RefStart += wStart
	res.RefEnd += wStart
	cand := memCandidate{res: res, forward: forward, query: query}
	dst.Best = cand.alignmentBuf(sc, 0, st.ref)
	sc.ext.Reset()
	// A rescued placement is evidence from the pair, not the read alone:
	// cap its quality below a confident unique single-end hit.
	if dst.Best.MapQ > 30 {
		dst.Best.MapQ = 30
	}
	dst.Rescued = true
}

// properPair applies the FR concordance test of core/pairs.go to two mem
// placements: opposite strands, forward mate leftmost, fragment length
// inside the insert window.
func properPair(r1, r2 MemResult, opts MemOptions) (bool, int) {
	if !r1.Mapped() || !r2.Mapped() || r1.Best.Forward == r2.Best.Forward {
		return false, 0
	}
	fwd, rev := r1.Best, r2.Best
	if !fwd.Forward {
		fwd, rev = rev, fwd
	}
	insert := int(rev.Pos) + rev.RefSpan - int(fwd.Pos)
	if int(fwd.Pos) > int(rev.Pos) || insert < opts.MinInsert || insert > opts.MaxInsert {
		return false, 0
	}
	return true, insert
}

// MapReadsMem maps a batch through the seed-and-extend pipeline, pairing
// consecutive reads when opts.Paired (an odd batch maps its last read
// single-end). It delegates to the batch engine with a single worker, the
// deterministic sequential schedule; MapReadsMemInto with any worker count
// produces bit-identical results, and the FPGA kernel runs the identical
// per-read calls, so all backends agree by construction.
func (ix *Index) MapReadsMem(reads []dna.Seq, opts MemOptions) ([]MemResult, MemStats, error) {
	results := make([]MemResult, len(reads))
	stats, err := ix.MapReadsMemInto(results, reads, opts, MapOptions{})
	if err != nil {
		return nil, MemStats{}, err
	}
	return results, stats, nil
}
