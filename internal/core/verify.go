package core

import (
	"fmt"

	"bwaver/internal/dna"
)

// VerifySampled re-maps every stride-th read on the CPU and compares the
// suffix-array ranges against the accelerator's results. It is the
// defense-in-depth behind the per-batch checksum: the checksum catches
// transfer corruption, the sampled cross-check catches a device computing
// confidently wrong answers. stride <= 0 disables the check; stride 1 checks
// every read.
//
// Only ranges are compared — located positions are resolved on the host from
// the same ranges, so they cannot diverge independently.
func VerifySampled(ix *Index, reads []dna.Seq, results []MapResult, stride int) error {
	if stride <= 0 {
		return nil
	}
	if len(reads) != len(results) {
		return fmt.Errorf("core: sampled verify: %d reads but %d results", len(reads), len(results))
	}
	for i := 0; i < len(reads); i += stride {
		want := ix.MapRead(reads[i])
		got := results[i]
		if got.Forward != want.Forward || got.Reverse != want.Reverse {
			return fmt.Errorf("core: sampled verify: read %d: device ranges fw=%+v rv=%+v, CPU ranges fw=%+v rv=%+v",
				i, got.Forward, got.Reverse, want.Forward, want.Reverse)
		}
	}
	return nil
}
