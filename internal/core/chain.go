package core

import (
	"slices"
)

// Seed chaining, the host-side stage between SMEM seeding and banded
// extension (GateSeeder's decomposition: seeding and extension run as
// separate device passes with chaining in between). Seeds that agree on a
// reference diagonal describe the same candidate placement of the read;
// grouping them collapses the per-occurrence seed hits into a short list of
// loci worth extending.

// Seed is one located seed hit: the read slice [QStart, QEnd) matched the
// reference exactly at RPos.
type Seed struct {
	QStart, QEnd int
	RPos         int32
}

// Len returns the seed's match length.
func (s Seed) Len() int { return s.QEnd - s.QStart }

// diagonal returns the implied read-start locus: where the read would begin
// on the reference if the seed's placement were gap-free.
func (s Seed) diagonal() int { return int(s.RPos) - s.QStart }

// Chain is a group of collinear seeds supporting one candidate placement.
type Chain struct {
	// Seeds in read order.
	Seeds []Seed
	// Score is the number of distinct read bases the chain's seeds cover —
	// the chaining heuristic's ranking key: long unique SMEMs dominate short
	// repetitive ones.
	Score int
	// Anchor indexes the longest seed in Seeds, the extension's anchor.
	Anchor int
}

// Diagonal returns the chain's implied read-start locus (the anchor seed's).
func (c Chain) Diagonal() int { return c.Seeds[c.Anchor].diagonal() }

// chainScratch holds the chaining stage's working memory so the per-read
// batch path allocates nothing in steady state: the diagonal-sorted seed
// copy (whose subranges become the chains' seed slices) and the chain list.
type chainScratch struct {
	sorted []Seed
	chains []Chain
}

// chainSeeds groups seeds into collinear chains; see chainScratch.chain.
// This entry allocates a throwaway scratch per call — tests and one-shot
// callers use it; the batch path holds a scratch per worker.
func chainSeeds(seeds []Seed, slop, maxChains int) []Chain {
	var cs chainScratch
	return cs.chain(seeds, slop, maxChains)
}

// chain groups seeds into collinear chains: seeds whose diagonals agree
// within slop (the extension band, the indel budget the downstream DP can
// absorb) and whose read spans advance monotonically join one chain. Chains
// come back sorted by score, best first; at most maxChains survive. The
// returned chains and their seed slices alias the scratch and are valid
// until the next call.
func (cs *chainScratch) chain(seeds []Seed, slop, maxChains int) []Chain {
	if len(seeds) == 0 {
		return nil
	}
	cs.sorted = append(cs.sorted[:0], seeds...)
	sorted := cs.sorted
	slices.SortFunc(sorted, func(a, b Seed) int {
		if d := a.diagonal() - b.diagonal(); d != 0 {
			return d
		}
		return a.QStart - b.QStart
	})
	chains := cs.chains[:0]
	start := 0
	for i := 1; i <= len(sorted); i++ {
		// A diagonal gap wider than the slop starts a new chain: the banded
		// extension could not bridge the implied indel anyway.
		if i < len(sorted) && sorted[i].diagonal()-sorted[i-1].diagonal() <= slop {
			continue
		}
		chains = append(chains, buildChain(sorted[start:i:i]))
		start = i
	}
	slices.SortStableFunc(chains, func(a, b Chain) int { return b.Score - a.Score })
	cs.chains = chains
	if maxChains > 0 && len(chains) > maxChains {
		chains = chains[:maxChains]
	}
	return chains
}

// buildChain assembles one chain from diagonal-grouped seeds: read order,
// coverage score over the union of read spans, and the longest seed as the
// extension anchor. The group is re-sorted in place (it is scratch memory).
func buildChain(group []Seed) Chain {
	c := Chain{Seeds: group}
	slices.SortFunc(c.Seeds, func(a, b Seed) int {
		if a.QStart != b.QStart {
			return a.QStart - b.QStart
		}
		return b.QEnd - a.QEnd
	})
	covered, end := 0, -1
	for i, s := range c.Seeds {
		if s.QStart > end {
			covered += s.Len()
			end = s.QEnd
		} else if s.QEnd > end {
			covered += s.QEnd - end
			end = s.QEnd
		}
		if s.Len() > c.Seeds[c.Anchor].Len() {
			c.Anchor = i
		}
	}
	c.Score = covered
	return c
}
