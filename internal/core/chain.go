package core

import "sort"

// Seed chaining, the host-side stage between SMEM seeding and banded
// extension (GateSeeder's decomposition: seeding and extension run as
// separate device passes with chaining in between). Seeds that agree on a
// reference diagonal describe the same candidate placement of the read;
// grouping them collapses the per-occurrence seed hits into a short list of
// loci worth extending.

// Seed is one located seed hit: the read slice [QStart, QEnd) matched the
// reference exactly at RPos.
type Seed struct {
	QStart, QEnd int
	RPos         int32
}

// Len returns the seed's match length.
func (s Seed) Len() int { return s.QEnd - s.QStart }

// diagonal returns the implied read-start locus: where the read would begin
// on the reference if the seed's placement were gap-free.
func (s Seed) diagonal() int { return int(s.RPos) - s.QStart }

// Chain is a group of collinear seeds supporting one candidate placement.
type Chain struct {
	// Seeds in read order.
	Seeds []Seed
	// Score is the number of distinct read bases the chain's seeds cover —
	// the chaining heuristic's ranking key: long unique SMEMs dominate short
	// repetitive ones.
	Score int
	// Anchor indexes the longest seed in Seeds, the extension's anchor.
	Anchor int
}

// Diagonal returns the chain's implied read-start locus (the anchor seed's).
func (c Chain) Diagonal() int { return c.Seeds[c.Anchor].diagonal() }

// chainSeeds groups seeds into collinear chains: seeds whose diagonals agree
// within slop (the extension band, the indel budget the downstream DP can
// absorb) and whose read spans advance monotonically join one chain. Chains
// come back sorted by score, best first; at most maxChains survive.
func chainSeeds(seeds []Seed, slop, maxChains int) []Chain {
	if len(seeds) == 0 {
		return nil
	}
	sorted := append([]Seed(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].diagonal() != sorted[j].diagonal() {
			return sorted[i].diagonal() < sorted[j].diagonal()
		}
		return sorted[i].QStart < sorted[j].QStart
	})
	var chains []Chain
	start := 0
	for i := 1; i <= len(sorted); i++ {
		// A diagonal gap wider than the slop starts a new chain: the banded
		// extension could not bridge the implied indel anyway.
		if i < len(sorted) && sorted[i].diagonal()-sorted[i-1].diagonal() <= slop {
			continue
		}
		chains = append(chains, buildChain(sorted[start:i]))
		start = i
	}
	sort.SliceStable(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	if maxChains > 0 && len(chains) > maxChains {
		chains = chains[:maxChains]
	}
	return chains
}

// buildChain assembles one chain from diagonal-grouped seeds: read order,
// coverage score over the union of read spans, and the longest seed as the
// extension anchor.
func buildChain(group []Seed) Chain {
	c := Chain{Seeds: append([]Seed(nil), group...)}
	sort.Slice(c.Seeds, func(i, j int) bool {
		if c.Seeds[i].QStart != c.Seeds[j].QStart {
			return c.Seeds[i].QStart < c.Seeds[j].QStart
		}
		return c.Seeds[i].QEnd > c.Seeds[j].QEnd
	})
	covered, end := 0, -1
	for i, s := range c.Seeds {
		if s.QStart > end {
			covered += s.Len()
			end = s.QEnd
		} else if s.QEnd > end {
			covered += s.QEnd - end
			end = s.QEnd
		}
		if s.Len() > c.Seeds[c.Anchor].Len() {
			c.Anchor = i
		}
	}
	c.Score = covered
	return c
}
