package core

import (
	"testing"

	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

func TestExtractReferenceRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 100, 5000} {
		ref, err := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: int64(n), RepeatFraction: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []IndexConfig{
			{},
			{PlainBitvectors: true},
			{RRR: rrr.Params{BlockSize: 7, SuperblockFactor: 3}},
			{Locate: LocateNone},
		} {
			ix := mustBuild(t, ref, cfg)
			back, err := ix.ExtractReference()
			if err != nil {
				t.Fatalf("n=%d cfg=%+v: %v", n, cfg, err)
			}
			if !back.Equal(ref) {
				t.Fatalf("n=%d cfg=%+v: extracted reference differs", n, cfg)
			}
		}
	}
}

func TestExtractAfterSerialization(t *testing.T) {
	ref := testGenome(t, 3000)
	ix := mustBuild(t, ref, IndexConfig{Locate: LocateNone})
	back := roundTrip(t, ix)
	got, err := back.ExtractReference()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Error("extraction from deserialized index differs")
	}
}
