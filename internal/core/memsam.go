package core

import (
	"fmt"

	"bwaver/internal/dna"
	"bwaver/internal/sam"
)

// SAM rendering for mem results: concatenated positions translate through
// the contig set (boundary-straddling placements are concatenation artifacts
// and demote to unmapped), strands render the spec's orientation rules, and
// mate pairs carry the RNEXT/PNEXT/TLEN triple plus the pairing flags.

// SAMRefSeqs returns the @SQ header entries for the index's references: the
// contig set when one is attached, else a single anonymous "ref" record.
func (ix *Index) SAMRefSeqs() []sam.RefSeq {
	if ix.contigs == nil {
		return []sam.RefSeq{{Name: "ref", Length: ix.RefLength()}}
	}
	out := make([]sam.RefSeq, ix.contigs.Count())
	for i, c := range ix.contigs.Contigs() {
		out[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	return out
}

// resolveSpan translates a concatenated placement into (contig name,
// 0-based contig offset). ok is false for boundary-straddling hits.
func resolveSpan(contigs *ContigSet, refLen int, pos int32, span int) (string, int, bool) {
	if contigs == nil {
		if pos < 0 || int(pos)+span > refLen {
			return "", 0, false
		}
		return "ref", int(pos), true
	}
	c, off, ok := contigs.Resolve(int(pos), span)
	if !ok {
		return "", 0, false
	}
	return c.Name, off, true
}

// MemRecord renders one single-end mem result as a SAM record.
func (ix *Index) MemRecord(name string, read dna.Seq, res MemResult) sam.Record {
	rec := sam.Record{QName: name, Seq: read.String()}
	if !res.Mapped() {
		rec.Flag = sam.FlagUnmapped
		return rec
	}
	rname, off, ok := resolveSpan(ix.contigs, ix.RefLength(), res.Best.Pos, res.Best.RefSpan)
	if !ok {
		// Concatenation artifact: no contiguous locus corresponds to it.
		rec.Flag = sam.FlagUnmapped
		return rec
	}
	rec.RName = rname
	rec.Pos = off + 1
	rec.MapQ = res.Best.MapQ
	rec.CIGAR = res.Best.CIGAR
	if !res.Best.Forward {
		rec.Flag |= sam.FlagReverse
		rec.Seq = read.ReverseComplement().String()
	}
	rec.Tags = memTags(res)
	return rec
}

// memTags renders the optional fields: alignment score, edit distance, and
// the competing score MAPQ discounted for (XS, bwa's convention), plus XR
// marking rescued mates.
func memTags(res MemResult) []string {
	tags := []string{
		fmt.Sprintf("AS:i:%d", res.Best.Score),
		fmt.Sprintf("NM:i:%d", res.Best.NM),
	}
	if res.SubScore > 0 {
		tags = append(tags, fmt.Sprintf("XS:i:%d", res.SubScore))
	}
	if res.Rescued {
		tags = append(tags, "XR:i:1")
	}
	return tags
}

// MemPairRecords renders a mate pair's results as two SAM records with the
// pairing flags and mate fields filled in.
func (ix *Index) MemPairRecords(name1, name2 string, r1, r2 dna.Seq, pr MemPairResult) (sam.Record, sam.Record) {
	rec1 := ix.MemRecord(name1, r1, pr.R1)
	rec2 := ix.MemRecord(name2, r2, pr.R2)
	rec1.Flag |= sam.FlagPaired | sam.FlagFirstInPair
	rec2.Flag |= sam.FlagPaired | sam.FlagSecondInPair
	fillMate(&rec1, &rec2)
	fillMate(&rec2, &rec1)
	if pr.Proper && !rec1.Unmapped() && !rec2.Unmapped() {
		rec1.Flag |= sam.FlagProperPair
		rec2.Flag |= sam.FlagProperPair
		// Signed template length: leftmost mate positive, other negative.
		if rec1.Pos <= rec2.Pos {
			rec1.TLen, rec2.TLen = pr.Insert, -pr.Insert
		} else {
			rec1.TLen, rec2.TLen = -pr.Insert, pr.Insert
		}
	}
	return rec1, rec2
}

// fillMate writes the mate-describing fields of rec from its mate's record.
func fillMate(rec, mate *sam.Record) {
	if mate.Unmapped() {
		rec.Flag |= sam.FlagMateUnmapped
		return
	}
	if mate.Flag&sam.FlagReverse != 0 {
		rec.Flag |= sam.FlagMateReverse
	}
	if rec.Unmapped() || rec.RName == mate.RName {
		rec.RNext = "="
	} else {
		rec.RNext = mate.RName
	}
	rec.PNext = mate.Pos
}
