package core

import (
	"math/rand"
	"strings"
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
	"bwaver/internal/sam"
)

func buildMemIndex(t *testing.T, n int, seed int64) (*Index, dna.Seq) {
	t.Helper()
	// No simulated repeats: tests asserting on MAPQ need unique loci.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: n, GC: 0.45, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, ref
}

func TestChainSeeds(t *testing.T) {
	// Two seeds on one diagonal, one far away: two chains, collinear first.
	seeds := []Seed{
		{QStart: 0, QEnd: 20, RPos: 100},
		{QStart: 30, QEnd: 55, RPos: 130},
		{QStart: 10, QEnd: 28, RPos: 5000},
	}
	chains := chainSeeds(seeds, 10, 0)
	if len(chains) != 2 {
		t.Fatalf("%d chains, want 2", len(chains))
	}
	if chains[0].Score != 45 || len(chains[0].Seeds) != 2 {
		t.Errorf("best chain = %+v", chains[0])
	}
	if chains[0].Seeds[chains[0].Anchor].Len() != 25 {
		t.Errorf("anchor should be the longest seed, got %+v", chains[0].Seeds[chains[0].Anchor])
	}
	// Overlapping seeds count covered bases once.
	over := chainSeeds([]Seed{{0, 30, 50}, {20, 40, 70}}, 10, 0)
	if over[0].Score != 40 {
		t.Errorf("overlap-union score = %d, want 40", over[0].Score)
	}
	// maxChains truncates after score-sorting.
	if got := chainSeeds(seeds, 10, 1); len(got) != 1 || got[0].Score != 45 {
		t.Errorf("maxChains kept %+v", got)
	}
	if chainSeeds(nil, 10, 4) != nil {
		t.Error("empty seed set must chain to nil")
	}
}

func TestMapReadMemExact(t *testing.T) {
	ix, ref := buildMemIndex(t, 20000, 7)
	read := ref[5000:5100].Clone()
	res, err := ix.MapReadMem(read, MemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapped() {
		t.Fatal("exact read unmapped")
	}
	if res.Best.Pos != 5000 || !res.Best.Forward {
		t.Errorf("placement %+v, want forward 5000", res.Best)
	}
	if res.Best.CIGAR != "100M" {
		t.Errorf("CIGAR %q, want 100M", res.Best.CIGAR)
	}
	if res.Best.NM != 0 {
		t.Errorf("NM %d, want 0", res.Best.NM)
	}
	if res.Best.MapQ == 0 {
		t.Error("unique exact hit has MAPQ 0")
	}
	if res.Seeds == 0 || res.Chains == 0 || res.Extensions == 0 || res.SeedSteps == 0 || res.Cells == 0 {
		t.Errorf("pipeline counters empty: %+v", res)
	}
}

func TestMapReadMemReverseAndErrors(t *testing.T) {
	ix, ref := buildMemIndex(t, 20000, 8)
	rng := rand.New(rand.NewSource(1))
	read := ref[9000:9120].Clone()
	// Substitutions and a small deletion: the banded extension must absorb
	// both.
	for i := 0; i < 3; i++ {
		p := rng.Intn(len(read))
		read[p] = read[p].Complement()
	}
	read = append(read[:40:40], read[42:]...)
	rc := read.ReverseComplement()
	res, err := ix.MapReadMem(rc, MemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapped() {
		t.Fatal("reverse-strand read unmapped")
	}
	if res.Best.Forward {
		t.Errorf("strand wrong: %+v", res.Best)
	}
	if res.Best.Pos < 8995 || res.Best.Pos > 9005 {
		t.Errorf("position %d, want ~9000", res.Best.Pos)
	}
	if res.Best.NM == 0 {
		t.Error("mutated read reports NM 0")
	}
}

func TestMapReadMemUnmappedAndGuards(t *testing.T) {
	ix, _ := buildMemIndex(t, 20000, 9)
	rng := rand.New(rand.NewSource(2))
	junk := make(dna.Seq, 100)
	for i := range junk {
		junk[i] = dna.Base(rng.Intn(4))
	}
	res, err := ix.MapReadMem(junk, MemOptions{MinSeedLen: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped() {
		t.Errorf("random read mapped: %+v", res.Best)
	}
	if _, err := ix.MapReadMem(junk, MemOptions{MinSeedLen: -1}); err == nil {
		t.Error("accepted negative MinSeedLen")
	}
	if _, err := ix.MapReadMem(junk, MemOptions{MaxInsert: -5, Paired: true}); err == nil {
		t.Error("accepted negative MaxInsert")
	}
	empty, err := ix.MapReadMem(nil, MemOptions{})
	if err != nil || empty.Mapped() {
		t.Errorf("empty read: %+v %v", empty, err)
	}
}

// A hyper-repetitive reference must trip the seed-hit guard rather than
// exploding the chain set.
func TestMapReadMemAmbiguityGuard(t *testing.T) {
	unit := dna.MustParseSeq("ACGTACGGTTACGTACCA")
	var ref dna.Seq
	for i := 0; i < 400; i++ {
		ref = append(ref, unit...)
	}
	ix, err := BuildIndex(ref, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	read := ref[100:160].Clone()
	res, err := ix.MapReadMem(read, MemOptions{MaxSeedHits: 8, MinSeedLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 0 {
		// Every seed occurs ~400 times; all must be guarded away.
		t.Errorf("%d seeds survived a cap of 8 on a 400-copy repeat", res.Seeds)
	}
	if res.Mapped() {
		t.Errorf("guarded read still mapped: %+v", res.Best)
	}
}

func TestMapPairMemRescue(t *testing.T) {
	ix, ref := buildMemIndex(t, 30000, 10)
	r1 := ref[12000:12100].Clone()
	// R2 is the reverse-strand mate ~300 bases downstream, mutated heavily
	// enough that seeding fails (no SMEM above MinSeedLen) but the rescue
	// scan still finds it.
	mate := ref[12300:12400].Clone()
	for i := 10; i < len(mate); i += 12 {
		mate[i] = mate[i].Complement()
	}
	r2 := mate.ReverseComplement()
	opts := MemOptions{Paired: true, MinInsert: 100, MaxInsert: 600, MinSeedLen: 31}
	solo, err := ix.MapReadMem(r2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Mapped() {
		t.Skip("mate mapped without rescue; mutation pattern too mild for this seed")
	}
	pr, err := ix.MapPairMem(r1, r2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.R1.Mapped() {
		t.Fatal("anchor mate unmapped")
	}
	if !pr.R2.Mapped() || !pr.R2.Rescued {
		t.Fatalf("mate not rescued: %+v", pr.R2)
	}
	if pr.R2.Best.Forward {
		t.Error("rescued mate should be reverse strand")
	}
	if pr.R2.Best.Pos < 12290 || pr.R2.Best.Pos > 12310 {
		t.Errorf("rescued position %d, want ~12300", pr.R2.Best.Pos)
	}
	if !pr.Proper {
		t.Errorf("pair not proper: insert %d", pr.Insert)
	}
	if pr.R2.Best.MapQ > 30 {
		t.Errorf("rescued MAPQ %d above cap", pr.R2.Best.MapQ)
	}
}

func TestMapReadsMemBatchAndStats(t *testing.T) {
	ix, ref := buildMemIndex(t, 30000, 11)
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 20, ReadLength: 80, InsertMean: 300, InsertStdDev: 30,
		MappingRatio: 1, ErrorRate: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Seq
	for _, p := range pairs {
		reads = append(reads, p.R1, p.R2)
	}
	results, stats, err := ix.MapReadsMem(reads, MemOptions{Paired: true, MinInsert: 100, MaxInsert: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reads) {
		t.Fatalf("%d results for %d reads", len(results), len(reads))
	}
	if stats.Reads != len(reads) {
		t.Errorf("stats.Reads = %d", stats.Reads)
	}
	if stats.MappedReads < len(reads)*8/10 {
		t.Errorf("only %d/%d simulated reads mapped", stats.MappedReads, len(reads))
	}
	if stats.Seeds == 0 || stats.Extensions == 0 || stats.Cells == 0 || stats.SeedSteps == 0 {
		t.Errorf("stats counters empty: %+v", stats)
	}
}

func TestMemRecordsValidSAM(t *testing.T) {
	ix, ref := buildMemIndex(t, 30000, 12)
	refs := ix.SAMRefSeqs()
	if len(refs) != 1 || refs[0].Name != "ref" || refs[0].Length != 30000 {
		t.Fatalf("SAMRefSeqs = %+v", refs)
	}
	var sb strings.Builder
	w, err := sam.NewWriter(&sb, refs)
	if err != nil {
		t.Fatal(err)
	}
	r1 := ref[4000:4100].Clone()
	r2 := ref[4250:4350].Clone().ReverseComplement()
	pr, err := ix.MapPairMem(r1, r2, MemOptions{Paired: true, MinInsert: 100, MaxInsert: 600})
	if err != nil {
		t.Fatal(err)
	}
	rec1, rec2 := ix.MemPairRecords("p1/1", "p1/2", r1, r2, pr)
	if rec1.Flag&sam.FlagPaired == 0 || rec1.Flag&sam.FlagFirstInPair == 0 {
		t.Errorf("rec1 flags %#x", rec1.Flag)
	}
	if rec2.Flag&sam.FlagSecondInPair == 0 {
		t.Errorf("rec2 flags %#x", rec2.Flag)
	}
	if !pr.Proper {
		t.Fatalf("expected proper pair, insert %d", pr.Insert)
	}
	if rec1.Flag&sam.FlagProperPair == 0 || rec2.Flag&sam.FlagProperPair == 0 {
		t.Error("proper flag missing")
	}
	if rec1.TLen != -rec2.TLen || rec1.TLen == 0 {
		t.Errorf("TLen %d / %d", rec1.TLen, rec2.TLen)
	}
	if rec1.RNext != "=" || rec2.RNext != "=" {
		t.Errorf("RNext %q / %q", rec1.RNext, rec2.RNext)
	}
	if err := w.Write(rec1); err != nil {
		t.Errorf("rec1 invalid: %v", err)
	}
	if err := w.Write(rec2); err != nil {
		t.Errorf("rec2 invalid: %v", err)
	}
	// Unmapped single-end record is also valid.
	junk := dna.MustParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGT")
	res, err := ix.MapReadMem(junk, MemOptions{MinSeedLen: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ix.MemRecord("junk", junk, res)); err != nil {
		t.Errorf("unmapped record invalid: %v", err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2+1+3 { // @HD, @SQ, @PG + three records
		t.Errorf("%d SAM lines: %q", len(lines), sb.String())
	}
}
