package core

import (
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

func simPairs(t *testing.T, ref dna.Seq, count int, ratio float64) []readsim.Pair {
	t.Helper()
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: count, ReadLength: 50, InsertMean: 300, InsertStdDev: 20,
		MappingRatio: ratio, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func splitPairs(pairs []readsim.Pair) (r1s, r2s []dna.Seq) {
	for _, p := range pairs {
		r1s = append(r1s, p.R1)
		r2s = append(r2s, p.R2)
	}
	return
}

func TestMapPairsConcordantTruth(t *testing.T) {
	ref := testGenome(t, 50000)
	pairs := simPairs(t, ref, 200, 1)
	ix := mustBuild(t, ref, IndexConfig{})
	r1s, r2s := splitPairs(pairs)
	results, stats, err := ix.MapPairs(r1s, r2s, PairOptions{MinInsert: 150, MaxInsert: 450})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 200 {
		t.Fatalf("stats.Pairs = %d", stats.Pairs)
	}
	for i, p := range pairs {
		res := results[i]
		if !res.Concordant() {
			t.Fatalf("planted pair %s (origin %d, insert %d) not concordant", p.ID, p.Origin, p.Insert)
		}
		// The true placement must be among the reported ones.
		found := false
		for _, pl := range res.Placements {
			if int(pl.Pos) == p.Origin && pl.Insert == p.Insert && pl.R1Forward {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair %s: truth (pos %d, insert %d) missing from %+v",
				p.ID, p.Origin, p.Insert, res.Placements)
		}
	}
	if stats.Concordant != 200 || stats.BothMapped != 200 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMapPairsRandomPairsDiscordant(t *testing.T) {
	ref := testGenome(t, 30000)
	pairs := simPairs(t, ref, 100, 0) // all random
	ix := mustBuild(t, ref, IndexConfig{})
	r1s, r2s := splitPairs(pairs)
	_, stats, err := ix.MapPairs(r1s, r2s, PairOptions{MinInsert: 150, MaxInsert: 450})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Concordant != 0 || stats.BothMapped != 0 {
		t.Errorf("random pairs produced concordant mappings: %+v", stats)
	}
}

func TestMapPairMirrorOrientation(t *testing.T) {
	// Swap R1/R2: the pair is still concordant, in the mirrored
	// arrangement (R1Forward == false).
	ref := testGenome(t, 20000)
	pairs := simPairs(t, ref, 20, 1)
	ix := mustBuild(t, ref, IndexConfig{})
	for _, p := range pairs {
		res, err := ix.MapPair(p.R2, p.R1, PairOptions{MinInsert: 150, MaxInsert: 450})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Concordant() {
			t.Fatalf("swapped pair %s not concordant", p.ID)
		}
		found := false
		for _, pl := range res.Placements {
			if int(pl.Pos) == p.Origin && !pl.R1Forward {
				found = true
			}
		}
		if !found {
			t.Fatalf("swapped pair %s: mirrored placement missing", p.ID)
		}
	}
}

func TestMapPairInsertWindowFilters(t *testing.T) {
	ref := testGenome(t, 20000)
	pairs := simPairs(t, ref, 30, 1) // inserts ~300 +/- 20
	ix := mustBuild(t, ref, IndexConfig{})
	for _, p := range pairs {
		// A window excluding ~300 must reject the true placement.
		res, err := ix.MapPair(p.R1, p.R2, PairOptions{MinInsert: 500, MaxInsert: 600})
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range res.Placements {
			if pl.Insert < 500 || pl.Insert > 600 {
				t.Fatalf("placement outside window: %+v", pl)
			}
		}
	}
}

func TestMapPairAmbiguousCap(t *testing.T) {
	// A reference of a single repeated unit makes every mate map hundreds
	// of times; the cap must kick in.
	unit := dna.MustParseSeq("ACGTTGCA")
	ref := make(dna.Seq, 0, 8000)
	for len(ref) < 8000 {
		ref = append(ref, unit...)
	}
	ix := mustBuild(t, ref, IndexConfig{})
	res, err := ix.MapPair(ref[0:16], ref[100:116].ReverseComplement(), PairOptions{
		MinInsert: 50, MaxInsert: 200, MaxHitsPerMate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ambiguous || res.Concordant() {
		t.Errorf("repetitive pair not flagged ambiguous: %+v", res)
	}
}

func TestMapPairsValidation(t *testing.T) {
	ref := testGenome(t, 2000)
	ix := mustBuild(t, ref, IndexConfig{})
	if _, _, err := ix.MapPairs([]dna.Seq{ref[0:20]}, nil, PairOptions{MaxInsert: 100}); err == nil {
		t.Error("accepted mismatched mate counts")
	}
	if _, err := ix.MapPair(ref[0:20], ref[50:70], PairOptions{MinInsert: 200, MaxInsert: 100}); err == nil {
		t.Error("accepted inverted insert window")
	}
	if _, err := ix.MapPair(ref[0:20], ref[50:70], PairOptions{MaxInsert: 100, MaxHitsPerMate: -1}); err == nil {
		t.Error("accepted negative hit cap")
	}
}

func TestSimulatePairsValidation(t *testing.T) {
	ref := testGenome(t, 5000)
	bad := []readsim.PairConfig{
		{Count: -1, ReadLength: 50, InsertMean: 300},
		{Count: 5, ReadLength: 0, InsertMean: 300},
		{Count: 5, ReadLength: 50, InsertMean: 80},
		{Count: 5, ReadLength: 50, InsertMean: 300, InsertStdDev: -1},
		{Count: 5, ReadLength: 50, InsertMean: 300, MappingRatio: 2},
		{Count: 5, ReadLength: 50, InsertMean: 300, ErrorRate: 1},
		{Count: 5, ReadLength: 50, InsertMean: 6000, MappingRatio: 1},
	}
	for _, cfg := range bad {
		if _, err := readsim.SimulatePairs(ref, cfg); err != nil {
			continue
		}
		t.Errorf("SimulatePairs(%+v) accepted invalid config", cfg)
	}
}
