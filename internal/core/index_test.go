package core

import (
	"sort"
	"sync"
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

func testGenome(t *testing.T, n int) dna.Seq {
	t.Helper()
	g, err := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 17, RepeatFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustBuild(t *testing.T, ref dna.Seq, cfg IndexConfig) *Index {
	t.Helper()
	ix, err := BuildIndex(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil, IndexConfig{}); err == nil {
		t.Error("accepted empty reference")
	}
	if _, err := BuildIndex(dna.MustParseSeq("ACGT"), IndexConfig{RRR: rrr.Params{BlockSize: 99, SuperblockFactor: 1}}); err == nil {
		t.Error("accepted invalid RRR params")
	}
	if _, err := BuildIndex(dna.MustParseSeq("ACGT"), IndexConfig{Locate: LocateMode(9)}); err == nil {
		t.Error("accepted unknown locate mode")
	}
}

func TestBuildStats(t *testing.T) {
	ref := testGenome(t, 20000)
	ix := mustBuild(t, ref, IndexConfig{})
	s := ix.Stats()
	if s.RefLength != 20000 || s.UncompressedBytes != 20000 {
		t.Errorf("stats lengths wrong: %+v", s)
	}
	if s.StructureBytes <= 0 || s.SharedBytes <= 0 {
		t.Errorf("stats sizes missing: %+v", s)
	}
	if s.BWTRuns <= 0 || s.BWTEntropy <= 0 || s.BWTEntropy > 2 {
		t.Errorf("BWT stats implausible: %+v", s)
	}
	if s.CompressionRatio() <= 0 {
		t.Error("compression ratio missing")
	}
	if ix.RefLength() != 20000 {
		t.Errorf("RefLength = %d", ix.RefLength())
	}
	if ix.SizeBytes() <= ix.StructureBytes() {
		t.Error("total size should exceed structure size (full SA attached)")
	}
}

func TestMapReadBothStrands(t *testing.T) {
	ref := dna.MustParseSeq("ACGTACGGTACCTTAGGCAATCGA")
	ix := mustBuild(t, ref, IndexConfig{RRR: rrr.Params{BlockSize: 7, SuperblockFactor: 2}})

	// A forward substring.
	res := ix.MapRead(dna.MustParseSeq("GGTACC"))
	if !res.Mapped() {
		t.Fatal("forward substring did not map")
	}
	// GGTACC is its own reverse complement, so both orientations hit.
	if res.Forward.Count() != 1 || res.Reverse.Count() != 1 {
		t.Errorf("palindrome counts: fw=%d rc=%d", res.Forward.Count(), res.Reverse.Count())
	}

	// A reverse-strand read: RC of a reference substring.
	sub := ref[5:15]
	res = ix.MapRead(sub.ReverseComplement())
	if res.Reverse.Empty() {
		t.Error("reverse-complement read did not map on reverse strand")
	}

	// A read that maps nowhere.
	res = ix.MapRead(dna.MustParseSeq("AAAAAAAAAAAAAAAAAAAAAA"))
	if res.Mapped() {
		t.Error("impossible read mapped")
	}
	if res.Steps <= 0 {
		t.Error("steps not recorded")
	}
}

func TestMapReadsAgainstSimulatedTruth(t *testing.T) {
	ref := testGenome(t, 30000)
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 400, Length: 60, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []IndexConfig{
		{},
		{PlainBitvectors: true},
		{Locate: LocateSampled, SampleRate: 16},
		{RRR: rrr.Params{BlockSize: 9, SuperblockFactor: 5}},
	} {
		ix := mustBuild(t, ref, cfg)
		results, stats, err := ix.MapReads(readsim.Seqs(reads), MapOptions{Locate: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reads != 400 {
			t.Fatalf("stats.Reads = %d", stats.Reads)
		}
		for i, r := range reads {
			res := results[i]
			if r.Origin >= 0 {
				if !res.Mapped() {
					t.Fatalf("cfg %+v: planted read %d did not map", cfg, i)
				}
				// The planted origin must be among the located positions of
				// the correct strand.
				positions := res.ForwardPositions
				if r.RevStrand {
					positions = res.ReversePositions
				}
				found := false
				for _, p := range positions {
					if int(p) == r.Origin {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("cfg %+v: read %d origin %d not among positions %v",
						cfg, i, r.Origin, positions)
				}
			} else if res.Mapped() {
				// A random 60-mer mapping is astronomically unlikely.
				t.Fatalf("cfg %+v: random read %d mapped", cfg, i)
			}
		}
		// 50% mapping ratio by construction.
		if got := stats.MappingRatio(); got < 0.45 || got > 0.55 {
			t.Errorf("cfg %+v: mapping ratio %v, want ~0.5", cfg, got)
		}
		if stats.TotalSteps <= 0 || stats.Elapsed <= 0 {
			t.Errorf("cfg %+v: stats not populated: %+v", cfg, stats)
		}
	}
}

func TestMapReadsParallelMatchesSerial(t *testing.T) {
	ref := testGenome(t, 20000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 300, Length: 40, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: 5,
	})
	ix := mustBuild(t, ref, IndexConfig{})
	serial, _, err := ix.MapReads(readsim.Seqs(reads), MapOptions{Locate: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := ix.MapReads(readsim.Seqs(reads), MapOptions{Locate: true, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Forward != parallel[i].Forward || serial[i].Reverse != parallel[i].Reverse {
			t.Fatalf("read %d: serial and parallel ranges differ", i)
		}
		if !equalPositions(serial[i].ForwardPositions, parallel[i].ForwardPositions) ||
			!equalPositions(serial[i].ReversePositions, parallel[i].ReversePositions) {
			t.Fatalf("read %d: serial and parallel positions differ", i)
		}
	}
}

func equalPositions(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestLocateNoneIndexCounts(t *testing.T) {
	ref := testGenome(t, 5000)
	ix := mustBuild(t, ref, IndexConfig{Locate: LocateNone})
	res := ix.MapRead(ref[100:140])
	if !res.Mapped() {
		t.Error("count-only index failed to count")
	}
	if _, _, err := ix.MapReads([]dna.Seq{ref[100:140]}, MapOptions{Locate: true}); err == nil {
		t.Error("locate on a count-only index should fail")
	}
}

// TestAllOccurrencesFound plants a pattern several times and checks that
// mapping reports every copy — the paper's "find all occurrences" claim.
func TestAllOccurrencesFound(t *testing.T) {
	base := testGenome(t, 8000)
	pattern := dna.MustParseSeq("ACGTTGCAACGTTGCAACGT")
	ref := base.Clone()
	plantAt := []int{100, 2500, 4000, 7000}
	for _, p := range plantAt {
		copy(ref[p:p+len(pattern)], pattern)
	}
	ix := mustBuild(t, ref, IndexConfig{})
	res := ix.MapRead(pattern)
	positions, err := ix.FM().Locate(res.Forward)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, p := range positions {
		found[int(p)] = true
	}
	for _, p := range plantAt {
		if !found[p] {
			t.Errorf("planted occurrence at %d not reported (got %v)", p, positions)
		}
	}
}

func TestPlainVsRRRSameResults(t *testing.T) {
	ref := testGenome(t, 10000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 100, Length: 30, MappingRatio: 0.6, Seed: 7})
	rrrIx := mustBuild(t, ref, IndexConfig{})
	plainIx := mustBuild(t, ref, IndexConfig{PlainBitvectors: true})
	for _, r := range reads {
		a := rrrIx.MapRead(r.Seq)
		b := plainIx.MapRead(r.Seq)
		if a.Forward != b.Forward || a.Reverse != b.Reverse {
			t.Fatal("plain and RRR backends disagree")
		}
	}
}

func TestLocateModeString(t *testing.T) {
	if LocateFullSA.String() != "full-sa" || LocateSampled.String() != "sampled-sa" || LocateNone.String() != "none" {
		t.Error("LocateMode.String wrong")
	}
}

func TestMapReadsProgress(t *testing.T) {
	ref := testGenome(t, 10000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 250, Length: 30, MappingRatio: 1, Seed: 20})
	ix := mustBuild(t, ref, IndexConfig{})
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var updates []int
		_, _, err := ix.MapReads(readsim.Seqs(reads), MapOptions{
			Workers:       workers,
			ProgressEvery: 50,
			Progress: func(done, total int) {
				mu.Lock()
				updates = append(updates, done)
				mu.Unlock()
				if total != 250 {
					t.Errorf("total = %d", total)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(updates) < 5 { // 50,100,150,200,250 + final
			t.Errorf("workers=%d: only %d progress updates: %v", workers, len(updates), updates)
		}
		if updates[len(updates)-1] != 250 {
			t.Errorf("workers=%d: final update %d, want 250", workers, updates[len(updates)-1])
		}
	}
}

func TestSAAlgorithmsProduceIdenticalIndexes(t *testing.T) {
	ref := testGenome(t, 12000)
	reads, _ := readsim.Simulate(ref, readsim.ReadsConfig{Count: 80, Length: 35, MappingRatio: 0.7, Seed: 31})
	var base []MapResult
	for i, algo := range []SAAlgorithm{SAIS, DC3, Doubling} {
		ix := mustBuild(t, ref, IndexConfig{SAAlgorithm: algo})
		results, _, err := ix.MapReads(readsim.Seqs(reads), MapOptions{Locate: true})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = results
			continue
		}
		for j := range results {
			if results[j].Forward != base[j].Forward || results[j].Reverse != base[j].Reverse {
				t.Fatalf("%v: read %d ranges differ from SA-IS build", algo, j)
			}
			if !equalPositions(results[j].ForwardPositions, base[j].ForwardPositions) {
				t.Fatalf("%v: read %d positions differ from SA-IS build", algo, j)
			}
		}
	}
	if SAIS.String() != "sais" || DC3.String() != "dc3" || Doubling.String() != "doubling" {
		t.Error("SAAlgorithm.String wrong")
	}
	if _, err := BuildIndex(ref, IndexConfig{SAAlgorithm: SAAlgorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
