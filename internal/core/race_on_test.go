//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are meaningless under it (the detector's
// shadow state allocates).
const raceEnabled = true
