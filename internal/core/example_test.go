package core_test

import (
	"fmt"
	"log"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// ExampleBuildIndex shows the minimal index-and-map flow.
func ExampleBuildIndex() {
	ref := dna.MustParseSeq("ACGTACGGTACCTTAGGCAATCGAACGTACGGTACC")
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res := ix.MapRead(dna.MustParseSeq("GGTACC"))
	fmt.Println("mapped:", res.Mapped(), "occurrences:", res.Forward.Count())
	// Output:
	// mapped: true occurrences: 2
}

// ExampleIndex_MapReadApprox demonstrates the k-mismatch extension.
func ExampleIndex_MapReadApprox() {
	ref := dna.MustParseSeq("AACCGGTTAACCGGTTAACCGGTTACGTACGTTGCA")
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	// One substitution relative to the reference prefix.
	read := dna.MustParseSeq("AACCGGTTAACCGTTT")
	exact := ix.MapRead(read)
	approx, err := ix.MapReadApprox(read, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact:", exact.Mapped(), "with 1 mismatch:", approx.Mapped(), "stratum:", approx.BestMismatches())
	// Output:
	// exact: false with 1 mismatch: true stratum: 1
}

// ExampleIndex_ExtractReference shows that the index is a lossless archive.
func ExampleIndex_ExtractReference() {
	ref := dna.MustParseSeq("GATTACAGATTACA")
	ix, err := core.BuildIndex(ref, core.IndexConfig{Locate: core.LocateNone})
	if err != nil {
		log.Fatal(err)
	}
	back, err := ix.ExtractReference()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(back)
	// Output:
	// GATTACAGATTACA
}

// ExampleContigSet_Resolve shows per-chromosome coordinate translation.
func ExampleContigSet_Resolve() {
	cs, err := core.NewContigSet([]string{"chr1", "chr2"}, []int{1000, 500})
	if err != nil {
		log.Fatal(err)
	}
	if c, off, ok := cs.Resolve(1200, 50); ok {
		fmt.Printf("%s:%d\n", c.Name, off)
	}
	_, _, ok := cs.Resolve(990, 50) // straddles the chr1/chr2 boundary
	fmt.Println("boundary hit accepted:", ok)
	// Output:
	// chr2:200
	// boundary hit accepted: false
}
