package fpga

import (
	"strings"
	"testing"

	"bwaver/internal/dna"
)

func TestFarmResultsMatchSingleCard(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 3000, 40, 0.6)
	devices := make([]*Device, 4)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
	}
	farm, err := NewFarm(devices, ix)
	if err != nil {
		t.Fatal(err)
	}
	if farm.Size() != 4 {
		t.Fatalf("Size = %d", farm.Size())
	}
	single, _ := NewDevice(Config{})
	k, _ := single.Program(ix)
	want, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := farm.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		if got.Results[i].Forward != want.Results[i].Forward ||
			got.Results[i].Reverse != want.Results[i].Reverse {
			t.Fatalf("read %d: farm and single card disagree", i)
		}
	}
	// Kernel time must drop roughly by the card count.
	speedup := float64(want.Profile.KernelCycles) / float64(got.Profile.KernelCycles)
	if speedup < 3.0 || speedup > 5.0 {
		t.Errorf("4-card kernel speedup %v, want ~4", speedup)
	}
	// Index transfer is broadcast: charged once per card.
	if got.Profile.IndexTransfer != 4*want.Profile.IndexTransfer {
		t.Errorf("index transfer %v, want 4x %v", got.Profile.IndexTransfer, want.Profile.IndexTransfer)
	}
}

func TestFarmMoreCardsThanReads(t *testing.T) {
	ix := buildIndex(t, 5000)
	devices := make([]*Device, 8)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
	}
	farm, err := NewFarm(devices, ix)
	if err != nil {
		t.Fatal(err)
	}
	reads := simReads(t, ix, 3, 30, 1)
	run, err := farm.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 3 {
		t.Fatalf("%d results", len(run.Results))
	}
	for i := range run.Results {
		if !run.Results[i].Mapped() {
			t.Errorf("read %d unmapped", i)
		}
	}
}

func TestFarmValidation(t *testing.T) {
	ix := buildIndex(t, 2000)
	if _, err := NewFarm(nil, ix); err == nil {
		t.Error("empty farm accepted")
	}
	tiny, _ := NewDevice(Config{BRAMBytes: 16})
	if _, err := NewFarm([]*Device{tiny}, ix); err == nil {
		t.Error("farm accepted a card the index cannot fit")
	}
}

// TestSimulateCyclesMatchesModel validates the closed-form cycle model
// against the exact per-PE schedule: identical at one PE, within the
// worst-case stripe-imbalance bound at several.
func TestSimulateCyclesMatchesModel(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 2001, 40, 0.5) // odd count stresses striping
	for _, pes := range []int{1, 2, 4, 7} {
		d, _ := NewDevice(Config{PEs: pes})
		k, _ := d.Program(ix)
		run, err := k.MapReads(reads)
		if err != nil {
			t.Fatal(err)
		}
		exact, perPE, err := k.SimulateCycles(reads)
		if err != nil {
			t.Fatal(err)
		}
		if len(perPE) != pes {
			t.Fatalf("pes=%d: %d lanes", pes, len(perPE))
		}
		if pes == 1 {
			if exact != run.Profile.KernelCycles {
				t.Fatalf("single PE: exact %d != model %d", exact, run.Profile.KernelCycles)
			}
			continue
		}
		// The model divides total work evenly; the exact round-robin
		// schedule can only be worse. The imbalance of dealt lanes is
		// statistical, so allow a few percent of slack.
		if exact < run.Profile.KernelCycles {
			t.Errorf("pes=%d: exact %d below model %d", pes, exact, run.Profile.KernelCycles)
		}
		slack := run.Profile.KernelCycles / 20 // 5%
		if exact > run.Profile.KernelCycles+slack {
			t.Errorf("pes=%d: exact %d exceeds model %d by more than 5%%", pes, exact, run.Profile.KernelCycles)
		}
	}
	// Oversized and empty reads rejected.
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	if _, _, err := k.SimulateCycles([]dna.Seq{{}}); err == nil {
		t.Error("empty read accepted")
	}
	if _, _, err := k.SimulateCycles([]dna.Seq{make(dna.Seq, MaxQueryBases+1)}); err == nil {
		t.Error("oversized read accepted")
	}
}

func TestKernelReport(t *testing.T) {
	ix := buildIndex(t, 100000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	r, err := k.Report(35)
	if err != nil {
		t.Fatal(err)
	}
	if r.StructureBytes != k.IndexBytes() {
		t.Errorf("structure bytes %d != %d", r.StructureBytes, k.IndexBytes())
	}
	// The tiled blocks must cover the structure.
	covered := r.URAMUsed*URAMBytes + r.BRAMUsed*BRAM36Bytes
	if covered < r.StructureBytes {
		t.Errorf("blocks cover %d < structure %d", covered, r.StructureBytes)
	}
	if covered-r.StructureBytes >= URAMBytes+BRAM36Bytes {
		t.Errorf("tiling wastes %d bytes", covered-r.StructureBytes)
	}
	if r.CyclesPerStep != 1 || r.PEs != 1 || r.ClockMHz != 300 {
		t.Errorf("config echo wrong: %+v", r)
	}
	// 300 MHz / (35 + 4 overhead) ~ 7.7 M reads/s.
	if r.ReadsPerSecond < 7e6 || r.ReadsPerSecond > 8e6 {
		t.Errorf("throughput %v implausible", r.ReadsPerSecond)
	}
	// Multi-PE scales throughput.
	d4, _ := NewDevice(Config{PEs: 4})
	k4, _ := d4.Program(ix)
	r4, err := k4.Report(35)
	if err != nil {
		t.Fatal(err)
	}
	if r4.ReadsPerSecond < 3.9*r.ReadsPerSecond {
		t.Errorf("4-PE throughput %v not ~4x %v", r4.ReadsPerSecond, r.ReadsPerSecond)
	}
	if _, err := k.Report(0); err == nil {
		t.Error("zero steps accepted")
	}
	var sb strings.Builder
	WriteReport(&sb, r)
	for _, want := range []string{"URAM", "BRAM36", "reads/s", "300 MHz"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}
