package fpga

import (
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// batchesOf splits reads into pair-aligned batches of size n.
func batchesOf(reads []dna.Seq, n int) [][]dna.Seq {
	var out [][]dna.Seq
	for off := 0; off < len(reads); off += n {
		out = append(out, reads[off:min(off+n, len(reads))])
	}
	return out
}

func TestMemSessionSingleReconfig(t *testing.T) {
	ix, reads := memBatch(t, 30000, 30)
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
	}
	farm, err := NewFarmOpts(devices, ix, FarmOptions{VerifyStride: 8})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MemOptions{Paired: true, MinInsert: 100, MaxInsert: 500}
	session := farm.NewMemSession(opts, MapRunOptions{})

	host, _, err := ix.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for bi, batch := range batchesOf(reads, 20) {
		run, err := session.Map(batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.VerifyChecksum(); err != nil {
			t.Fatal(err)
		}
		// Session results are bit-identical to the sequential host pipeline.
		for i := range run.Results {
			if run.Results[i] != host[off+i] {
				t.Fatalf("batch %d read %d diverges", bi, i)
			}
		}
		off += len(batch)
		if bi == 0 {
			if run.Profile.Reconfig != DefaultReconfigTime {
				t.Errorf("batch 0 reconfig charge %v, want %v", run.Profile.Reconfig, DefaultReconfigTime)
			}
			if run.Profile.Overlap != 0 {
				t.Errorf("batch 0 charged overlap %v before any extension to hide behind", run.Profile.Overlap)
			}
		} else {
			if run.Profile.Reconfig != 0 {
				t.Errorf("batch %d charged reconfig %v under the session schedule", bi, run.Profile.Reconfig)
			}
			// Host seeding of this batch hides behind the previous batch's
			// modeled extension.
			if run.Profile.Overlap <= 0 {
				t.Errorf("batch %d credits no seeding overlap", bi)
			}
			if run.Profile.Overlap > run.SeedTime {
				t.Errorf("batch %d overlap %v exceeds its seed time %v", bi, run.Profile.Overlap, run.SeedTime)
			}
		}
		if run.SeedCycles == 0 || run.ExtendCycles == 0 {
			t.Errorf("batch %d per-pass split empty: seed %d extend %d", bi, run.SeedCycles, run.ExtendCycles)
		}
		// Per-pass maxima are taken shard-wise (the slowest card bounds each
		// pass), so the split brackets the aggregate kernel charge rather
		// than summing to it exactly.
		if run.SeedCycles > run.Profile.KernelCycles || run.ExtendCycles > run.Profile.KernelCycles ||
			run.SeedCycles+run.ExtendCycles < run.Profile.KernelCycles {
			t.Errorf("batch %d pass split %d+%d inconsistent with kernel cycles %d",
				bi, run.SeedCycles, run.ExtendCycles, run.Profile.KernelCycles)
		}
	}
	if session.Reconfigs() != 1 {
		t.Errorf("session charged %d reconfigs over %d batches, want 1", session.Reconfigs(), session.Batches())
	}
	if session.Batches() != 3 {
		t.Errorf("session mapped %d batches, want 3", session.Batches())
	}
}

func TestMemSessionUnderFaults(t *testing.T) {
	ix, reads := memBatch(t, 20000, 24)
	plan, err := ParseFaultPlan("seed=17,query=0.15,kernel=0.1")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 3)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	// A generous breaker keeps cards available across the session's many
	// batches — this test is about the schedule, not the breaker.
	farm, err := NewFarmOpts(devices, ix, FarmOptions{VerifyStride: 4, BreakerThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MemOptions{Paired: true, MinInsert: 100, MaxInsert: 500}
	session := farm.NewMemSession(opts, MapRunOptions{})
	host, _, err := ix.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Retries and shard redistribution must not disturb the schedule's
	// correctness: every batch still checksums and matches the host bit for
	// bit, and the session still charges a single reconfiguration.
	off := 0
	for _, batch := range batchesOf(reads, 16) {
		run, err := session.Map(batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.VerifyChecksum(); err != nil {
			t.Fatal(err)
		}
		for i := range run.Results {
			if run.Results[i] != host[off+i] {
				t.Fatalf("read %d diverges after faults", off+i)
			}
		}
		off += len(batch)
	}
	if session.Reconfigs() != 1 {
		t.Errorf("session charged %d reconfigs, want 1", session.Reconfigs())
	}
}
