package fpga

import (
	"context"
	"fmt"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// Kernel is a programmed device: the index is resident in simulated BRAM.
type Kernel struct {
	dev           *Device
	ix            *core.Index
	indexBytes    int
	ftabBytes     int
	useFtab       bool
	ftabDegraded  bool
	indexTransfer time.Duration
}

// Index returns the index the kernel was programmed with.
func (k *Kernel) Index() *core.Index { return k.ix }

// IndexBytes returns the BRAM bytes occupied by the resident structures
// (succinct BWT plus the prefix table when one is resident).
func (k *Kernel) IndexBytes() int { return k.indexBytes }

// FtabBytes returns the BRAM bytes the resident prefix table occupies,
// 0 when the kernel runs without one.
func (k *Kernel) FtabBytes() int { return k.ftabBytes }

// UsesFtab reports whether the kernel's pipelines consult a BRAM-resident
// prefix table, collapsing the first k backward-search iterations of both
// the forward and reverse-complement pipelines into one LUT access.
func (k *Kernel) UsesFtab() bool { return k.useFtab }

// FtabDegraded reports whether Program dropped the index's prefix table
// because structure + table exceeded the device's BRAM capacity.
func (k *Kernel) FtabDegraded() bool { return k.ftabDegraded }

// stepCycles returns the modeled cost of one backward-search step. The
// paper's design resolves the RRR class sum with a pipelined adder tree, so
// a pipeline retires one step per cycle; the SequentialRank ablation walks
// the (on average sf/2) class fields of the superblock serially on each of
// the wavelet levels instead.
func (k *Kernel) stepCycles() uint64 {
	if !k.dev.cfg.SequentialRank {
		return 1
	}
	sf := k.ix.Config().RRR.SuperblockFactor
	const waveletLevels = 2 // log2 of the DNA alphabet
	return uint64(waveletLevels * (sf/2 + 1))
}

// Event mirrors an OpenCL profiling event: the paper benchmarks with
// "OpenCL events that provide an easy to use API to profile the code that
// runs on the FPGA device". Timestamps are on the run's virtual timeline,
// measured from enqueue of the first command.
//
// Device, Attempt, and Shard identify where the command actually ran. A
// farm run that survives retries or shard redistribution would otherwise
// be unreadable: without identity, a recovered run's timeline cannot say
// which card finally did the work or how many attempts it took. Attempt is
// 1-based on the device that succeeded (a plain kernel run reports 1);
// Shard is the farm stripe index (0 for single-kernel runs).
type Event struct {
	Name      string
	Queued    time.Duration
	Submitted time.Duration
	Start     time.Duration
	End       time.Duration
	Device    int
	Attempt   int
	Shard     int
}

// Duration returns the event's execution span.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Profile decomposes a modeled run.
type Profile struct {
	// Setup is the fixed OpenCL runtime overhead.
	Setup time.Duration
	// IndexTransfer moves the succinct structure into BRAM.
	IndexTransfer time.Duration
	// QueryTransfer streams the 512-bit query records to the device.
	QueryTransfer time.Duration
	// KernelTime is the modeled execution time of the search pipelines.
	KernelTime time.Duration
	// ResultTransfer returns the row ranges to the host.
	ResultTransfer time.Duration
	// Reconfig is the fabric-reconfiguration cost of a two-pass run
	// (zero for exact-only runs).
	Reconfig time.Duration
	// RetryBackoff is the host-side wait accrued by the resilience layer's
	// exponential backoff between retried shard attempts (zero without
	// injected faults). Charged on the modeled timeline, not slept.
	RetryBackoff time.Duration
	// Overlap is the time hidden by double-buffered query streaming
	// (min(QueryTransfer, KernelTime) when Config.DoubleBuffer is set);
	// Total subtracts it.
	Overlap time.Duration
	// KernelCycles is the raw cycle count behind KernelTime.
	KernelCycles uint64
	// WaveCycles is the batch-homogeneity accounting: the cycle count of a
	// lockstep dispatcher that issues reads to the PEs in waves and holds
	// every lane until the wave's slowest read finishes. Early-exiting
	// reads (dirty or unmappable ones) idle their lane for the remainder
	// of the wave, so WaveCycles - KernelCycles measures the divergence a
	// quality-sorted batch removes. Accounting only: KernelTime always
	// derives from KernelCycles, the work-balanced model, so enabling the
	// wave metric changes no result or modeled time.
	WaveCycles uint64
	// Events is the OpenCL-style event log of the run.
	Events []Event
	// HostWallTime is how long the simulator actually took, for sanity
	// checks; it plays no role in the model.
	HostWallTime time.Duration
}

// Total is the modeled end-to-end device time, the quantity Tables I and II
// report for BWaveR-FPGA.
func (p Profile) Total() time.Duration {
	return p.Setup + p.IndexTransfer + p.QueryTransfer + p.KernelTime + p.ResultTransfer + p.Reconfig + p.RetryBackoff - p.Overlap
}

// EnergyJoules is board power times modeled time, the paper's
// power-efficiency accounting.
func (p Profile) EnergyJoules(powerWatts float64) float64 {
	return powerWatts * p.Total().Seconds()
}

// RunResult is a completed mapping run.
type RunResult struct {
	Results []core.MapResult
	Profile Profile
	// Checksum is the per-batch checksum the kernel computed over its
	// results before the result transfer; VerifyChecksum recomputes it
	// host-side to detect transfer corruption.
	Checksum uint64
}

// VerifyChecksum recomputes the batch checksum over the received results and
// returns ErrResultCorrupt on mismatch.
func (r *RunResult) VerifyChecksum() error {
	if ChecksumResults(r.Results) != r.Checksum {
		return ErrResultCorrupt
	}
	return nil
}

// MapRunOptions control one mapping run on a programmed kernel. The zero
// value reproduces the historical MapReads behaviour: no cancellation, no
// progress reporting, and a fresh index transfer charged to the run.
type MapRunOptions struct {
	// Context, if non-nil, cancels the run between queries; the call
	// returns the context's error.
	Context context.Context
	// Progress, if non-nil, is called with (done, total) roughly every
	// ProgressEvery completed queries and once at the end, from the
	// calling goroutine.
	Progress func(done, total int)
	// ProgressEvery is the reporting granularity; 0 means 256.
	ProgressEvery int
	// IndexResident marks the succinct structure as already transferred to
	// BRAM by an earlier run on this kernel, so the profile charges no
	// index transfer — the amortization the paper's fixed-overhead
	// argument relies on when a service reuses a programmed device.
	IndexResident bool

	// memReconfigured marks the fabric as already holding the pass-2
	// alignment array from an earlier mem batch of the same session, so the
	// run charges no reconfiguration. Set only by MemSession.
	memReconfigured bool
}

// MapReads maps a batch of reads on the device. Every read must fit the
// 512-bit query record (at most MaxQueryBases bases). The search itself is
// executed bit-for-bit (results are exact); cycles are charged per the
// pipeline model described in the package comment.
func (k *Kernel) MapReads(reads []dna.Seq) (*RunResult, error) {
	return k.MapReadsOpts(reads, MapRunOptions{})
}

// MapReadsOpts is MapReads with per-run cancellation, progress reporting,
// and index-residency control.
func (k *Kernel) MapReadsOpts(reads []dna.Seq, opts MapRunOptions) (*RunResult, error) {
	wallStart := time.Now()
	cfg := k.dev.cfg

	// Validate and pack the query records as the host code would. The
	// packed form is what the query-transfer model charges for.
	for i, r := range reads {
		if len(r) == 0 {
			return nil, fmt.Errorf("fpga: read %d is empty", i)
		}
		if len(r) > MaxQueryBases {
			return nil, fmt.Errorf("fpga: read %d has %d bases; the 512-bit query record holds at most %d",
				i, len(r), MaxQueryBases)
		}
	}
	records := make([]dna.PackedSeq, len(reads))
	for i, r := range reads {
		records[i] = dna.Pack(r)
	}

	// Injected faults strike in stage order: index load (only when the
	// structure is not already resident), query streaming, then the kernel
	// itself — a hang the runtime watchdog reports as a timeout.
	if inj := k.dev.inj; inj != nil {
		if !opts.IndexResident {
			if err := inj.at(StageIndexLoad); err != nil {
				return nil, err
			}
		}
		if err := inj.at(StageQueryTransfer); err != nil {
			return nil, err
		}
		if err := inj.at(StageKernel); err != nil {
			return nil, err
		}
	}

	every := opts.ProgressEvery
	if every <= 0 {
		every = 256
	}

	// Execute the searches functionally while accumulating the cycle model.
	results := make([]core.MapResult, len(reads))
	var stepCycles uint64
	perStep := k.stepCycles()
	// Wave accounting: reads issue in waves of cfg.PEs lanes; each wave is
	// charged for its slowest lane.
	var waveCycles, waveMax uint64
	lane := 0
	for i, rec := range records {
		if opts.Context != nil && i%64 == 0 {
			if err := opts.Context.Err(); err != nil {
				return nil, err
			}
		}
		// The kernel operates on the packed record, mirroring the decode
		// the hardware performs. The kernel's own ftab mode — not the host
		// index's — decides the search path, so a BRAM-degraded kernel's
		// cycle accounting matches the fabric it models.
		res := k.ix.MapReadMode(rec.Unpack(), k.useFtab)
		results[i] = res
		stepCycles += uint64(res.Steps)*perStep + uint64(cfg.QueryOverheadCycles)
		if s := uint64(res.Steps); s > waveMax {
			waveMax = s
		}
		if lane++; lane == cfg.PEs {
			waveCycles += waveMax*perStep + uint64(cfg.QueryOverheadCycles)
			lane, waveMax = 0, 0
		}
		if opts.Progress != nil && (i+1)%every == 0 {
			opts.Progress(i+1, len(reads))
		}
	}
	if lane > 0 {
		waveCycles += waveMax*perStep + uint64(cfg.QueryOverheadCycles)
	}
	if opts.Progress != nil {
		opts.Progress(len(reads), len(reads))
	}
	kernelCycles := uint64(cfg.PipelineFillCycles) + stepCycles/uint64(cfg.PEs)
	waveCycles += uint64(cfg.PipelineFillCycles)

	// The device checksums the batch before the result transfer; a result
	// transfer fault drops the batch, a corruption fault silently flips
	// bits afterwards for the host-side verification to catch.
	checksum := ChecksumResults(results)
	if inj := k.dev.inj; inj != nil {
		if err := inj.at(StageResultTransfer); err != nil {
			return nil, err
		}
		inj.corrupt(results)
	}

	indexTransfer := k.indexTransfer
	if opts.IndexResident {
		indexTransfer = 0
	}
	profile := Profile{
		Setup:          cfg.SetupTime,
		IndexTransfer:  indexTransfer,
		QueryTransfer:  k.dev.transfer(len(reads) * QueryRecordBytes),
		KernelTime:     k.dev.cyclesToTime(kernelCycles),
		ResultTransfer: k.dev.transfer(len(reads) * ResultRecordBytes),
		KernelCycles:   kernelCycles,
		WaveCycles:     waveCycles,
	}
	if cfg.DoubleBuffer {
		profile.Overlap = min(profile.QueryTransfer, profile.KernelTime)
	}
	profile.Events = tagEvents(buildEvents(profile), k.dev.id, 1, 0)
	profile.HostWallTime = time.Since(wallStart)
	return &RunResult{Results: results, Profile: profile, Checksum: checksum}, nil
}

// tagEvents stamps run identity (device, attempt, shard) onto every event.
func tagEvents(events []Event, device, attempt, shard int) []Event {
	for i := range events {
		events[i].Device = device
		events[i].Attempt = attempt
		events[i].Shard = shard
	}
	return events
}

// buildEvents lays the run's commands on a virtual timeline in dependency
// order, the way an in-order OpenCL command queue would schedule them.
func buildEvents(p Profile) []Event {
	t := time.Duration(0)
	mk := func(name string, queuedAt, d time.Duration) Event {
		e := Event{Name: name, Queued: queuedAt, Submitted: t, Start: t, End: t + d}
		t += d
		return e
	}
	events := make([]Event, 0, 6)
	events = append(events, mk("setup", 0, p.Setup))
	events = append(events, mk("write:index", 0, p.IndexTransfer))
	if p.Overlap > 0 {
		// Double buffering: queries stream while the kernel runs; the
		// merged phase spans the longer of the two.
		events = append(events, mk("stream:queries+kernel", 0, p.QueryTransfer+p.KernelTime-p.Overlap))
	} else {
		events = append(events, mk("write:queries", 0, p.QueryTransfer))
		events = append(events, mk("kernel:bwaver", 0, p.KernelTime))
	}
	if p.Reconfig > 0 {
		events = append(events, mk("reconfigure", 0, p.Reconfig))
	}
	events = append(events, mk("read:results", 0, p.ResultTransfer))
	return events
}

// MapReadsBatched maps reads in fixed-size batches, as hosts with bounded
// device buffers must (the paper's related work sends queries "in batches
// to the FPGA"). Each batch pays its own query/result transfer and pipeline
// fill, so small batches waste cycles — the batch-size trade-off quantified
// by TestBatchSizeAblation. Setup and index transfer are still charged
// once. Results are identical to MapReads.
func (k *Kernel) MapReadsBatched(reads []dna.Seq, batchSize int) (*RunResult, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("fpga: batch size %d must be >= 1", batchSize)
	}
	wallStart := time.Now()
	out := &RunResult{Results: make([]core.MapResult, 0, len(reads))}
	agg := Profile{Setup: k.dev.cfg.SetupTime, IndexTransfer: k.indexTransfer}
	for start := 0; start < len(reads); start += batchSize {
		end := min(start+batchSize, len(reads))
		run, err := k.MapReads(reads[start:end])
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, run.Results...)
		agg.QueryTransfer += run.Profile.QueryTransfer
		agg.KernelTime += run.Profile.KernelTime
		agg.ResultTransfer += run.Profile.ResultTransfer
		agg.KernelCycles += run.Profile.KernelCycles
		agg.Overlap += run.Profile.Overlap
	}
	agg.Events = tagEvents(buildEvents(agg), k.dev.id, 1, 0)
	agg.HostWallTime = time.Since(wallStart)
	out.Profile = agg
	out.Checksum = ChecksumResults(out.Results)
	return out, nil
}

// ModelProfile returns the modeled profile for a batch of nReads reads whose
// mean per-query pipeline occupancy (max of forward/reverse step counts) is
// avgStepsPerRead, without functionally executing the searches. The bench
// harness uses it to extrapolate the paper's 100-million-read workloads from
// a measured sample: the cycle model is linear in the summed step counts, so
// the extrapolation is exact up to sampling error in avgStepsPerRead.
func (k *Kernel) ModelProfile(nReads int, avgStepsPerRead float64) Profile {
	cfg := k.dev.cfg
	stepCycles := uint64(float64(nReads) * (avgStepsPerRead*float64(k.stepCycles()) + float64(cfg.QueryOverheadCycles)))
	kernelCycles := uint64(cfg.PipelineFillCycles) + stepCycles/uint64(cfg.PEs)
	p := Profile{
		Setup:          cfg.SetupTime,
		IndexTransfer:  k.indexTransfer,
		QueryTransfer:  k.dev.transfer(nReads * QueryRecordBytes),
		KernelTime:     k.dev.cyclesToTime(kernelCycles),
		ResultTransfer: k.dev.transfer(nReads * ResultRecordBytes),
		KernelCycles:   kernelCycles,
	}
	if cfg.DoubleBuffer {
		p.Overlap = min(p.QueryTransfer, p.KernelTime)
	}
	p.Events = tagEvents(buildEvents(p), k.dev.id, 1, 0)
	return p
}

// LocateResults resolves occurrence positions for a run on the host through
// the index's suffix array — the paper's final host-side step. It returns
// the wall-clock time spent, which the hybrid pipeline adds to the host
// budget, not the device budget.
func (k *Kernel) LocateResults(results []core.MapResult) (time.Duration, error) {
	start := time.Now()
	fm := k.ix.FM()
	// One growing slab for the whole batch; results hold subslices of it.
	// Append never mutates earlier content, so subslices survive regrowth.
	var slab []int32
	for i := range results {
		var err error
		a := len(slab)
		if slab, err = fm.LocateAppend(slab, results[i].Forward); err != nil {
			return 0, err
		}
		b := len(slab)
		if slab, err = fm.LocateAppend(slab, results[i].Reverse); err != nil {
			return 0, err
		}
		if b > a {
			results[i].ForwardPositions = slab[a:b:b]
		}
		if c := len(slab); c > b {
			results[i].ReversePositions = slab[b:c:c]
		}
	}
	return time.Since(start), nil
}
