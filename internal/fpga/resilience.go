package fpga

// Host-side resilience primitives: retry with exponential backoff and
// deterministic jitter, a per-device circuit breaker, and the shared
// counters the server surfaces at /api/stats. The farm composes them (see
// farm.go); the server adds the final rung, a transparent CPU fallback.

import (
	"errors"
	"math"
	"sync"
	"time"
)

// Resilience defaults.
const (
	// DefaultMaxAttempts is how many times a shard is tried on one device
	// before it is redistributed.
	DefaultMaxAttempts = 3
	// DefaultBreakerThreshold is how many consecutive failures open a
	// device's circuit breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker waits before
	// letting one probe run through (half-open).
	DefaultBreakerCooldown = 30 * time.Second
)

// RetryPolicy bounds per-device retries. Backoff grows exponentially from
// BaseDelay by Multiplier up to MaxDelay, with deterministic jitter in
// [1/2, 1] of the computed delay. The simulator does not sleep: the accrued
// backoff is charged to the run's Profile.RetryBackoff on the modeled
// timeline, keeping tests fast and the fault sequence reproducible.
type RetryPolicy struct {
	// MaxAttempts per device per shard; default DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the first retry's nominal backoff; default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; default 1s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor; default 2.
	Multiplier float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// delay returns the backoff before retrying after the attempt-th failure
// (1-based), drawing jitter deterministically from rng.
func (p RetryPolicy) delay(attempt int, rng *uint64) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt-1))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d * (0.5 + 0.5*rand01(rng)))
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-device circuit breaker: after threshold consecutive
// failures it opens and the farm stops routing shards to the device; after
// the cooldown it lets one probe run through (half-open), closing again on
// success and re-opening on failure. Devices own their breaker, so farms
// programmed with different indexes over the same cards share health state.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	now         func() time.Time // injectable clock for tests
	state       BreakerState
	consecutive int
	openedAt    time.Time
	trips       uint64
	notify      func(from, to BreakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// configure updates the thresholds without resetting accumulated state, so a
// new farm over already-running devices cannot mask an open breaker.
func (b *Breaker) configure(threshold int, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if threshold > 0 {
		b.threshold = threshold
	}
	if cooldown > 0 {
		b.cooldown = cooldown
	}
}

// SetNotify registers fn to run after every state transition, with the old
// and new states. The callback fires outside the breaker's lock, so it may
// safely query the breaker or record metrics; it must tolerate concurrent
// invocation. Passing nil removes the callback.
func (b *Breaker) SetNotify(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.notify = fn
	b.mu.Unlock()
}

// fire invokes the transition callback outside the lock when the state
// actually changed. Callers pass the values captured under b.mu.
func fireNotify(fn func(from, to BreakerState), from, to BreakerState) {
	if fn != nil && from != to {
		fn(from, to)
	}
}

// Allow reports whether the device may take work. An open breaker past its
// cooldown transitions to half-open and admits one probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	from, fn := b.state, b.notify
	ok := true
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
		} else {
			ok = false
		}
	}
	to := b.state
	b.mu.Unlock()
	fireNotify(fn, from, to)
	return ok
}

// Success records a successful run, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	from, fn := b.state, b.notify
	b.consecutive = 0
	b.state = BreakerClosed
	b.mu.Unlock()
	fireNotify(fn, from, BreakerClosed)
}

// Failure records a failed run, opening the breaker at the threshold (or
// immediately when a half-open probe fails).
func (b *Breaker) Failure() {
	b.mu.Lock()
	from, fn := b.state, b.notify
	b.consecutive++
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		if b.consecutive >= b.threshold {
			b.open()
		}
	}
	to := b.state
	b.mu.Unlock()
	fireNotify(fn, from, to)
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures returns the current consecutive-failure count.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ResilienceStats is a point-in-time snapshot of the resilience counters,
// shaped for /api/stats.
type ResilienceStats struct {
	// Faults counts device failures the farm observed, by stage name.
	Faults map[string]uint64 `json:"faults"`
	// Retries counts shard attempts repeated on the same device.
	Retries uint64 `json:"retries"`
	// Redistributed counts shards handed to a different device after their
	// primary exhausted its attempts or tripped its breaker.
	Redistributed uint64 `json:"redistributed_shards"`
	// ChecksumMismatches counts result batches the host rejected.
	ChecksumMismatches uint64 `json:"checksum_mismatches"`
	// CrossCheckFailures counts sampled CPU cross-check rejections.
	CrossCheckFailures uint64 `json:"crosscheck_failures"`
	// Exhausted counts runs that failed on every available device.
	Exhausted uint64 `json:"exhausted_runs"`
	// Fallbacks counts jobs the server transparently reran on the CPU.
	Fallbacks uint64 `json:"fallbacks"`
}

// StatsRecorder accumulates resilience counters. One recorder can be shared
// by many farms (the server shares one across all cached indexes) and is
// safe for concurrent use.
type StatsRecorder struct {
	mu sync.Mutex
	s  ResilienceStats
}

// NewStatsRecorder creates an empty recorder.
func NewStatsRecorder() *StatsRecorder {
	return &StatsRecorder{s: ResilienceStats{Faults: map[string]uint64{}}}
}

func (r *StatsRecorder) fault(stage string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Faults[stage]++
}

func (r *StatsRecorder) retry()         { r.mu.Lock(); r.s.Retries++; r.mu.Unlock() }
func (r *StatsRecorder) redistributed() { r.mu.Lock(); r.s.Redistributed++; r.mu.Unlock() }
func (r *StatsRecorder) checksum()      { r.mu.Lock(); r.s.ChecksumMismatches++; r.mu.Unlock() }
func (r *StatsRecorder) crosscheck()    { r.mu.Lock(); r.s.CrossCheckFailures++; r.mu.Unlock() }
func (r *StatsRecorder) exhausted()     { r.mu.Lock(); r.s.Exhausted++; r.mu.Unlock() }

// RecordFallback counts a job the server reran on the CPU baseline.
func (r *StatsRecorder) RecordFallback() { r.mu.Lock(); r.s.Fallbacks++; r.mu.Unlock() }

// Snapshot returns a copy of the counters.
func (r *StatsRecorder) Snapshot() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.s
	out.Faults = make(map[string]uint64, len(r.s.Faults))
	for k, v := range r.s.Faults {
		out.Faults[k] = v
	}
	return out
}

// ErrNoHealthyDevices is returned when every device in the farm is either
// breaker-open or has exhausted its retries for the run.
var ErrNoHealthyDevices = errors.New("fpga: no healthy devices available")

// errCrossCheckFailed marks a sampled CPU cross-check rejection; retryable,
// like corruption, because a re-run re-transfers the batch.
var errCrossCheckFailed = errors.New("fpga: sampled CPU cross-check failed")

// IsDeviceFailure reports whether err stems from the simulated device layer
// — an injected fault, corrupted results, or exhausted/unhealthy devices —
// as opposed to bad input or cancellation. This is the condition under which
// the server's transparent CPU fallback is sound.
func IsDeviceFailure(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe) ||
		errors.Is(err, ErrNoHealthyDevices) ||
		errors.Is(err, ErrResultCorrupt) ||
		errors.Is(err, errCrossCheckFailed)
}

// isRetryableFault reports whether the resilience layer should retry after
// err. Context cancellation and input validation errors are not retryable.
func isRetryableFault(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe) ||
		errors.Is(err, ErrResultCorrupt) ||
		errors.Is(err, errCrossCheckFailed)
}

// DeviceHealth is one device's breaker snapshot, for /api/health.
type DeviceHealth struct {
	Device              int    `json:"device"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	BreakerTrips        uint64 `json:"breaker_trips"`
}
