package fpga

import (
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

// memBatch builds an index plus an interleaved paired-end batch drawn from
// the same reference.
func memBatch(t *testing.T, refLen, pairs int) (*core.Index, []dna.Seq) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: refLen, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: pairs, ReadLength: 70, InsertMean: 250, InsertStdDev: 25,
		MappingRatio: 0.9, ErrorRate: 0.01, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Seq
	for _, p := range sim {
		reads = append(reads, p.R1, p.R2)
	}
	return ix, reads
}

func TestKernelMemMatchesHost(t *testing.T) {
	ix, reads := memBatch(t, 30000, 40)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MemOptions{Paired: true, MinInsert: 100, MaxInsert: 500}
	run, err := k.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	host, hostStats, err := ix.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical backends: the kernel calls the same core entry points.
	for i := range host {
		if run.Results[i] != host[i] {
			t.Fatalf("read %d diverges: device %+v host %+v", i, run.Results[i], host[i])
		}
	}
	if run.Stats.MappedReads != hostStats.MappedReads || run.Stats.Cells != hostStats.Cells {
		t.Errorf("stats diverge: device %+v host %+v", run.Stats, hostStats)
	}
	if run.Stats.MappedReads < len(reads)/2 {
		t.Errorf("only %d/%d reads mapped", run.Stats.MappedReads, len(reads))
	}
	// The two-pass profile must charge both passes and the reconfiguration.
	if run.Profile.Reconfig != DefaultReconfigTime {
		t.Errorf("reconfig charge %v", run.Profile.Reconfig)
	}
	if run.Profile.KernelCycles == 0 || run.Profile.KernelTime <= 0 {
		t.Errorf("kernel charge empty: %+v", run.Profile)
	}
	if run.Profile.IndexTransfer <= 0 {
		t.Error("bidirectional index transfer not charged")
	}
	found := false
	for _, e := range run.Profile.Events {
		if e.Name == "reconfigure" {
			found = true
		}
	}
	if !found {
		t.Error("no reconfigure event on the timeline")
	}
	// A resident index pays no transfer on reruns.
	rerun, err := k.MapReadsMemOpts(reads, opts, MapRunOptions{IndexResident: true})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Profile.IndexTransfer != 0 {
		t.Errorf("resident rerun charged index transfer %v", rerun.Profile.IndexTransfer)
	}
	if rerun.Checksum != run.Checksum {
		t.Error("rerun checksum diverges")
	}
}

func TestKernelMemRejectsOversizedRead(t *testing.T) {
	ix, _ := memBatch(t, 5000, 1)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	long := make(dna.Seq, MaxQueryBases+1)
	if _, err := k.MapReadsMem([]dna.Seq{long}, core.MemOptions{}); err == nil {
		t.Error("oversized read accepted")
	}
	if _, err := k.MapReadsMem([]dna.Seq{{}}, core.MemOptions{}); err == nil {
		t.Error("empty read accepted")
	}
}

func TestFarmMemUnderFaults(t *testing.T) {
	ix, reads := memBatch(t, 20000, 30)
	plan, err := ParseFaultPlan("seed=11,query=0.3,kernel=0.2")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 3)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	farm, err := NewFarmOpts(devices, ix, FarmOptions{VerifyStride: 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MemOptions{Paired: true, MinInsert: 100, MaxInsert: 500}
	run, err := farm.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	host, _, err := ix.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Faults may retry or redistribute shards, but results must still be
	// bit-identical to the host — including pair-rescue outcomes, which
	// demand that no pair straddles a shard boundary.
	for i := range host {
		if run.Results[i] != host[i] {
			t.Fatalf("read %d diverges after faults: device %+v host %+v", i, run.Results[i], host[i])
		}
	}
	if run.Stats.Reads != len(reads) {
		t.Errorf("stats cover %d reads, want %d", run.Stats.Reads, len(reads))
	}
}

func TestFarmMemPairBoundaries(t *testing.T) {
	// With 3 devices and 10 reads the naive stripe boundaries (3, 6) would
	// split pairs; the pair-aligned boundaries must not.
	ix, reads := memBatch(t, 20000, 5)
	devices := make([]*Device, 3)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
	}
	farm, err := NewFarm(devices, ix)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MemOptions{Paired: true, MinInsert: 100, MaxInsert: 500}
	run, err := farm.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	host, _, err := ix.MapReadsMem(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range host {
		if run.Results[i] != host[i] {
			t.Fatalf("read %d diverges across shard boundaries", i)
		}
	}
}
