package fpga

// Fault injection for the simulated accelerator. Real host-FPGA deployments
// fail in ways a clean functional simulator never exercises: PCIe transfer
// errors, kernel hangs caught by the runtime watchdog, and corrupted result
// payloads. A FaultPlan describes, deterministically and reproducibly, when
// the simulated device misbehaves; the resilience layer in farm.go and the
// CPU fallback in internal/server are what those faults exercise.
//
// Determinism is the design constraint throughout: every device draws from
// its own splitmix64 substream derived from (plan seed, device ID), and a
// roll happens at a fixed point in each modeled stage, so the same plan
// against the same request sequence produces the identical fault sequence —
// which the tests assert, including under the race detector.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bwaver/internal/core"
)

// FaultStage identifies the modeled stage of a device run at which a fault
// can strike.
type FaultStage int

// The injectable stages. StageCorruption does not error: it silently flips
// bits in the reported SA ranges after the batch checksum was recorded,
// modeling corruption on the PCIe result transfer that only the host-side
// checksum verification can catch.
const (
	StageIndexLoad FaultStage = iota
	StageQueryTransfer
	StageKernel
	StageResultTransfer
	StageCorruption
	numFaultStages
)

var faultStageNames = [numFaultStages]string{"index", "query", "kernel", "result", "corrupt"}

// String returns the stage's name as used in the textual fault-plan form.
func (s FaultStage) String() string {
	if s < 0 || s >= numFaultStages {
		return "unknown"
	}
	return faultStageNames[s]
}

func parseFaultStage(name string) (FaultStage, error) {
	for i, n := range faultStageNames {
		if n == name {
			return FaultStage(i), nil
		}
	}
	return 0, fmt.Errorf("fpga: unknown fault stage %q (want one of %s)",
		name, strings.Join(faultStageNames[:], ", "))
}

// FaultPlan is a deterministic, seedable description of simulated faults.
// Transient faults fire independently per operation with the configured
// probability; persistent faults pin a stage of one device to permanent
// failure, the "card is dead" scenario the circuit breaker exists for.
type FaultPlan struct {
	// Seed drives every random draw; the same seed reproduces the same
	// fault sequence for the same request sequence.
	Seed uint64
	// Transient holds the per-operation fault probability for each stage,
	// indexed by FaultStage.
	Transient [numFaultStages]float64
	// Persistent maps a device ID to the stages that always fail on it.
	Persistent map[int][]FaultStage
}

// ParseFaultPlan parses the textual plan form used by the -fault-plan flag:
// comma-separated key=value entries. Keys are "seed" (uint64), a stage name
// ("index", "query", "kernel", "result", "corrupt") with a probability in
// [0,1], or "persistent" with a DEVICE:STAGE value (repeatable):
//
//	seed=42,query=0.05,kernel=0.01,corrupt=0.02,persistent=0:kernel
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("fpga: empty fault plan")
	}
	for _, entry := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("fpga: fault-plan entry %q is not key=value", entry)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fpga: fault-plan seed: %w", err)
			}
			plan.Seed = seed
		case "persistent":
			devStr, stageStr, ok := strings.Cut(value, ":")
			if !ok {
				return nil, fmt.Errorf("fpga: persistent fault %q is not DEVICE:STAGE", value)
			}
			dev, err := strconv.Atoi(devStr)
			if err != nil || dev < 0 {
				return nil, fmt.Errorf("fpga: persistent fault device %q must be a non-negative integer", devStr)
			}
			stage, err := parseFaultStage(stageStr)
			if err != nil {
				return nil, err
			}
			if plan.Persistent == nil {
				plan.Persistent = map[int][]FaultStage{}
			}
			plan.Persistent[dev] = append(plan.Persistent[dev], stage)
		default:
			stage, err := parseFaultStage(key)
			if err != nil {
				return nil, err
			}
			p, err := strconv.ParseFloat(value, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fpga: fault probability %s=%q must be in [0,1]", key, value)
			}
			plan.Transient[stage] = p
		}
	}
	return plan, nil
}

// String renders the plan back into the textual flag form.
func (p *FaultPlan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for s, prob := range p.Transient {
		if prob > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", FaultStage(s), prob))
		}
	}
	devices := make([]int, 0, len(p.Persistent))
	for dev := range p.Persistent {
		devices = append(devices, dev)
	}
	sort.Ints(devices)
	for _, dev := range devices {
		for _, stage := range p.Persistent[dev] {
			parts = append(parts, fmt.Sprintf("persistent=%d:%s", dev, stage))
		}
	}
	return strings.Join(parts, ",")
}

func (p *FaultPlan) persistentAt(device int, stage FaultStage) bool {
	for _, s := range p.Persistent[device] {
		if s == stage {
			return true
		}
	}
	return false
}

// FaultError is a simulated device failure at a modeled stage. All fault
// errors are retryable by the resilience layer; persistent ones simply keep
// failing until the device's circuit breaker takes it out of rotation.
type FaultError struct {
	Device     int
	Stage      FaultStage
	Persistent bool
}

// Error implements error.
func (e *FaultError) Error() string {
	kind := "transient"
	if e.Persistent {
		kind = "persistent"
	}
	if e.Stage == StageKernel {
		return fmt.Sprintf("fpga: device %d: %s kernel timeout (simulated hang)", e.Device, kind)
	}
	return fmt.Sprintf("fpga: device %d: %s fault during %s transfer", e.Device, kind, e.Stage)
}

// ErrResultCorrupt is returned by RunResult.VerifyChecksum when the received
// result batch does not match the checksum the kernel computed before the
// transfer — the host-side detector for StageCorruption faults.
var ErrResultCorrupt = errors.New("fpga: result batch failed checksum verification (corrupted transfer)")

// FaultEvent is one injected fault, for determinism auditing: the same plan
// seed must produce the identical event sequence.
type FaultEvent struct {
	Device     int
	Stage      FaultStage
	Persistent bool
	// Op is the device-local operation ordinal at which the fault fired.
	Op uint64
}

// splitmix64 is the PRNG behind every fault draw: tiny, seedable, and stable
// across Go releases (unlike math/rand's default source ordering guarantees).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rand01(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// faultInjector is one device's view of a FaultPlan: its own deterministic
// substream plus injection counters and an event log.
type faultInjector struct {
	mu     sync.Mutex
	plan   *FaultPlan
	device int
	rng    uint64
	ops    uint64
	counts [numFaultStages]uint64
	log    []FaultEvent
}

func newFaultInjector(plan *FaultPlan, device int) *faultInjector {
	// Derive a per-device substream so the fault sequence on one device is
	// independent of how many operations the others ran.
	state := plan.Seed ^ (uint64(device+1) * 0x9e3779b97f4a7c15)
	splitmix64(&state)
	return &faultInjector{plan: plan, device: device, rng: state}
}

func (j *faultInjector) recordLocked(stage FaultStage, persistent bool) {
	j.counts[stage]++
	j.log = append(j.log, FaultEvent{Device: j.device, Stage: stage, Persistent: persistent, Op: j.ops})
}

// at rolls the injector at a stage, returning a *FaultError when a fault
// fires. Persistent faults fire without consuming a random draw, so adding
// one to a plan does not shift the transient sequence of other stages.
func (j *faultInjector) at(stage FaultStage) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ops++
	if j.plan.persistentAt(j.device, stage) {
		j.recordLocked(stage, true)
		return &FaultError{Device: j.device, Stage: stage, Persistent: true}
	}
	if p := j.plan.Transient[stage]; p > 0 && rand01(&j.rng) < p {
		j.recordLocked(stage, false)
		return &FaultError{Device: j.device, Stage: stage}
	}
	return nil
}

// corrupt possibly flips bits in one result of the batch — after the batch
// checksum was recorded, modeling corruption on the PCIe result transfer.
// It reports whether corruption was injected.
func (j *faultInjector) corrupt(results []core.MapResult) bool {
	if len(results) == 0 {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ops++
	hit := j.plan.persistentAt(j.device, StageCorruption)
	persistent := hit
	if !hit {
		if p := j.plan.Transient[StageCorruption]; p > 0 && rand01(&j.rng) < p {
			hit = true
		}
	}
	if !hit {
		return false
	}
	i := int(splitmix64(&j.rng) % uint64(len(results)))
	bit := splitmix64(&j.rng) % 16
	results[i].Forward.Start ^= 1 << bit
	j.recordLocked(StageCorruption, persistent)
	return true
}

func (j *faultInjector) events() []FaultEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]FaultEvent(nil), j.log...)
}

func (j *faultInjector) faultCounts() map[string]uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]uint64{}
	for s, c := range j.counts {
		if c > 0 {
			out[FaultStage(s).String()] = c
		}
	}
	return out
}

// ChecksumResults computes the per-batch FNV-1a checksum the simulated
// kernel appends to its result stream; the host recomputes it over the
// received batch to detect transfer corruption before trusting the ranges.
func ChecksumResults(results []core.MapResult) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, r := range results {
		mix(uint64(int64(r.Forward.Start)))
		mix(uint64(int64(r.Forward.End)))
		mix(uint64(int64(r.Reverse.Start)))
		mix(uint64(int64(r.Reverse.End)))
	}
	return h
}
