package fpga

import (
	"fmt"
	"io"
	"strings"
)

// Resource report, in the spirit of an HLS synthesis summary. The paper
// targets the Alveo U200's XCU200 (2160 BRAM36 blocks of 4.5 KiB and 960
// URAM blocks of 36 KiB); this report derives how the succinct structure
// tiles onto those memories and what throughput the cycle model implies.
// Everything here is a model estimate for sizing intuition — the honest
// counterpart to a synthesis report, not a synthesis result.

// U200 on-chip memory inventory.
const (
	U200BRAM36Blocks = 2160
	U200URAMBlocks   = 960
	BRAM36Bytes      = 4608  // 36 Kibit
	URAMBytes        = 36864 // 288 Kibit
)

// Report summarises a programmed kernel's modeled footprint and throughput.
type Report struct {
	// StructureBytes is everything resident on-chip: the succinct structure
	// plus the prefix-lookup table when the kernel carries one.
	StructureBytes int
	// FtabBytes is the prefix table's share of StructureBytes (0 when the
	// kernel runs ftab-off, including after a BRAM degrade).
	FtabBytes int
	// URAMUsed and BRAMUsed tile the structure: bulk data in URAM,
	// remainder and the shared rank table in BRAM.
	URAMUsed, BRAMUsed int
	// URAMPct and BRAMPct are U200 utilisation percentages.
	URAMPct, BRAMPct float64
	// PEs and ClockMHz echo the configuration.
	PEs      int
	ClockMHz float64
	// CyclesPerStep is the modeled cost of one backward-search step.
	CyclesPerStep uint64
	// ReadsPerSecond estimates steady-state throughput for reads whose
	// mean per-query occupancy is AvgSteps.
	AvgSteps       float64
	ReadsPerSecond float64
}

// Report sizes the kernel for reads averaging avgSteps backward-search
// steps (use the read length for fully-mapping workloads; unmapped reads
// exit earlier).
func (k *Kernel) Report(avgSteps float64) (Report, error) {
	if avgSteps <= 0 {
		return Report{}, fmt.Errorf("fpga: average steps %v must be positive", avgSteps)
	}
	cfg := k.dev.cfg
	r := Report{
		StructureBytes: k.indexBytes,
		FtabBytes:      k.ftabBytes,
		PEs:            cfg.PEs,
		ClockMHz:       cfg.ClockHz / 1e6,
		CyclesPerStep:  k.stepCycles(),
		AvgSteps:       avgSteps,
	}
	// Tile the structure: whole URAM blocks first, BRAM for the tail.
	// Real floorplans interleave banks per pipeline port; block counts are
	// what capacity planning needs.
	r.URAMUsed = r.StructureBytes / URAMBytes
	rem := r.StructureBytes - r.URAMUsed*URAMBytes
	r.BRAMUsed = (rem + BRAM36Bytes - 1) / BRAM36Bytes
	r.URAMPct = 100 * float64(r.URAMUsed) / float64(U200URAMBlocks)
	r.BRAMPct = 100 * float64(r.BRAMUsed) / float64(U200BRAM36Blocks)
	cyclesPerRead := avgSteps*float64(r.CyclesPerStep) + float64(cfg.QueryOverheadCycles)
	r.ReadsPerSecond = cfg.ClockHz / cyclesPerRead * float64(cfg.PEs)
	return r, nil
}

// WriteReport renders the report.
func WriteReport(w io.Writer, r Report) {
	fmt.Fprintf(w, "kernel resource model (Alveo U200)\n")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 46))
	fmt.Fprintf(w, "structure on chip:   %10d bytes\n", r.StructureBytes)
	if r.FtabBytes > 0 {
		fmt.Fprintf(w, "  of which ftab LUT: %10d bytes\n", r.FtabBytes)
	}
	fmt.Fprintf(w, "URAM blocks:         %10d / %d (%.1f%%)\n", r.URAMUsed, U200URAMBlocks, r.URAMPct)
	fmt.Fprintf(w, "BRAM36 blocks:       %10d / %d (%.1f%%)\n", r.BRAMUsed, U200BRAM36Blocks, r.BRAMPct)
	fmt.Fprintf(w, "processing elements: %10d\n", r.PEs)
	fmt.Fprintf(w, "kernel clock:        %10.0f MHz\n", r.ClockMHz)
	fmt.Fprintf(w, "cycles per step:     %10d\n", r.CyclesPerStep)
	fmt.Fprintf(w, "throughput @ %.0f steps/read: %.2f M reads/s\n", r.AvgSteps, r.ReadsPerSecond/1e6)
}
