package fpga

import (
	"sort"
	"testing"

	"bwaver/internal/dna"
)

// TestWaveCyclesAccounting pins the batch-homogeneity metric: WaveCycles
// bounds KernelCycles from above (a wave waits for its slowest lane, the
// balanced model averages), is order-sensitive where KernelCycles is not,
// and shrinks when the batch is sorted so similar-cost reads share a wave.
func TestWaveCyclesAccounting(t *testing.T) {
	ix := buildIndex(t, 50000)
	dev, err := NewDevice(Config{PEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	k, err := dev.Program(ix)
	if err != nil {
		t.Fatal(err)
	}

	// Half the batch maps end to end (many search steps), half is garbage
	// that empties the suffix-array range after a few steps — the maximal
	// lane-divergence mix. Interleave them so every wave holds both kinds.
	mixed := simReads(t, ix, 512, 40, 0.5)
	run, err := k.MapReads(mixed)
	if err != nil {
		t.Fatal(err)
	}
	p := run.Profile
	if p.WaveCycles == 0 {
		t.Fatal("WaveCycles not accounted")
	}
	if p.WaveCycles < p.KernelCycles {
		t.Errorf("WaveCycles %d below KernelCycles %d; max-per-wave cannot undercut the balanced model",
			p.WaveCycles, p.KernelCycles)
	}

	// Sort reads by their individual step cost (the oracle a quality-sort
	// approximates) and remap: the balanced model must not move, the wave
	// model must improve.
	steps := make([]int, len(mixed))
	for i, r := range mixed {
		steps[i] = ix.MapRead(r).Steps
	}
	sorted := make([]dna.Seq, len(mixed))
	order := make([]int, len(mixed))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return steps[order[a]] < steps[order[b]] })
	for i, idx := range order {
		sorted[i] = mixed[idx]
	}
	runSorted, err := k.MapReads(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if runSorted.Profile.KernelCycles != p.KernelCycles {
		t.Errorf("KernelCycles moved with read order: %d vs %d — the balanced model must be order-invariant",
			runSorted.Profile.KernelCycles, p.KernelCycles)
	}
	if runSorted.Profile.WaveCycles >= p.WaveCycles {
		t.Errorf("sorted batch WaveCycles %d not below mixed %d — homogeneity should reduce divergence",
			runSorted.Profile.WaveCycles, p.WaveCycles)
	}
	if runSorted.Profile.KernelTime != p.KernelTime {
		t.Errorf("KernelTime changed (%v vs %v): wave accounting must not alter modeled time",
			runSorted.Profile.KernelTime, p.KernelTime)
	}
}
