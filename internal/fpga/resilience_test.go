package fpga

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	rng := uint64(7)
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		nominal := p.BaseDelay * (1 << (attempt - 1))
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		d := p.delay(attempt, &rng)
		if d < nominal/2 || d > nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		if nominal < prevCap {
			t.Errorf("attempt %d: nominal cap shrank", attempt)
		}
		prevCap = nominal
	}
	// Jitter is deterministic: the same rng state reproduces the same delay.
	r1, r2 := uint64(123), uint64(123)
	if p.delay(3, &r1) != p.delay(3, &r2) {
		t.Error("jitter not deterministic")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %v trips %d after threshold", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted work before cooldown")
	}

	// Past the cooldown one probe gets through (half-open).
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	// A failed probe reopens immediately.
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state %v trips %d", b.State(), b.Trips())
	}

	// A successful probe closes and resets the failure count.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed || b.ConsecutiveFailures() != 0 {
		t.Fatalf("state %v failures %d after success", b.State(), b.ConsecutiveFailures())
	}
}

func TestFarmRedistributesAroundDeadDevice(t *testing.T) {
	ix := buildIndex(t, 8000)
	reads := simReads(t, ix, 300, 35, 0.7)
	plan, err := ParseFaultPlan("seed=5,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	rec := NewStatsRecorder()
	farm, err := NewFarmOpts(devices, ix, FarmOptions{
		Retry:            RetryPolicy{MaxAttempts: 3},
		BreakerThreshold: 3,
		Recorder:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	run, err := farm.MapReads(reads)
	if err != nil {
		t.Fatalf("farm with one healthy device failed: %v", err)
	}
	for i, read := range reads {
		want := ix.MapRead(read)
		if run.Results[i].Forward != want.Forward || run.Results[i].Reverse != want.Reverse {
			t.Fatalf("read %d diverges from CPU after redistribution", i)
		}
	}
	if run.Profile.RetryBackoff <= 0 {
		t.Error("no modeled retry backoff charged")
	}

	stats := farm.Stats()
	if stats.Faults["kernel"] == 0 || stats.Retries == 0 || stats.Redistributed == 0 {
		t.Errorf("stats = %+v, want kernel faults, retries, and redistribution", stats)
	}
	// Three consecutive failures at threshold 3: device 0's breaker is open.
	if devices[0].Breaker().State() != BreakerOpen {
		t.Errorf("device 0 breaker %v, want open", devices[0].Breaker().State())
	}
	if devices[1].Breaker().State() != BreakerClosed {
		t.Errorf("device 1 breaker %v, want closed", devices[1].Breaker().State())
	}

	// The next run skips the broken card entirely: no new kernel faults.
	before := farm.Stats().Faults["kernel"]
	if _, err := farm.MapReads(reads[:50]); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if after := farm.Stats().Faults["kernel"]; after != before {
		t.Errorf("broken device still took work: faults %d -> %d", before, after)
	}
	health := farm.DeviceHealth()
	if len(health) != 2 || health[0].Breaker != "open" || health[0].BreakerTrips == 0 {
		t.Errorf("health = %+v", health)
	}
}

func TestFarmAllDevicesBroken(t *testing.T) {
	ix := buildIndex(t, 4000)
	reads := simReads(t, ix, 50, 30, 1)
	plan, err := ParseFaultPlan("seed=5,persistent=0:kernel,persistent=1:kernel")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	farm, err := NewFarmOpts(devices, ix, FarmOptions{Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = farm.MapReads(reads)
	if err == nil {
		t.Fatal("farm with no working devices succeeded")
	}
	if !errors.Is(err, ErrNoHealthyDevices) {
		t.Errorf("error = %v, want ErrNoHealthyDevices", err)
	}
	if !IsDeviceFailure(err) {
		t.Error("exhausted farm error not classified as device failure")
	}
	if farm.Stats().Exhausted == 0 {
		t.Error("exhausted run not counted")
	}
}

func TestFarmRecoversFromCorruption(t *testing.T) {
	ix := buildIndex(t, 6000)
	reads := simReads(t, ix, 200, 35, 0.8)
	plan, err := ParseFaultPlan("seed=9,persistent=0:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	farm, err := NewFarmOpts(devices, ix, FarmOptions{Retry: RetryPolicy{MaxAttempts: 2}, VerifyStride: 8})
	if err != nil {
		t.Fatal(err)
	}
	run, err := farm.MapReads(reads)
	if err != nil {
		t.Fatalf("farm failed to recover from corruption: %v", err)
	}
	if farm.Stats().ChecksumMismatches == 0 {
		t.Errorf("stats = %+v, want checksum mismatches", farm.Stats())
	}
	for i, read := range reads {
		want := ix.MapRead(read)
		if run.Results[i].Forward != want.Forward || run.Results[i].Reverse != want.Reverse {
			t.Fatalf("read %d: corrupted result leaked through verification", i)
		}
	}
}

func TestFarmTwoPassUnderFaults(t *testing.T) {
	ix := buildIndex(t, 6000)
	reads := simReads(t, ix, 200, 35, 0.6)
	plan, err := ParseFaultPlan("seed=11,persistent=0:result")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	farm, err := NewFarmOpts(devices, ix, FarmOptions{Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	run, err := farm.MapReadsTwoPassOpts(reads, 1, MapRunOptions{})
	if err != nil {
		t.Fatalf("two-pass farm run failed: %v", err)
	}
	if len(run.Exact) != len(reads) {
		t.Fatalf("%d exact results for %d reads", len(run.Exact), len(reads))
	}
	// Compare against a clean single card.
	clean, _ := NewDevice(Config{})
	k, _ := clean.Program(ix)
	want, err := k.MapReadsTwoPass(reads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Rescued != want.Rescued {
		t.Errorf("rescued %d, clean card rescued %d", run.Rescued, want.Rescued)
	}
	for i := range reads {
		if run.Exact[i].Forward != want.Exact[i].Forward || run.Exact[i].Reverse != want.Exact[i].Reverse {
			t.Fatalf("read %d: exact pass diverges", i)
		}
	}
	if farm.Stats().Redistributed == 0 {
		t.Errorf("stats = %+v, want redistribution", farm.Stats())
	}
}

func TestFarmContextCancelNotDeviceFailure(t *testing.T) {
	ix := buildIndex(t, 4000)
	reads := simReads(t, ix, 100, 30, 1)
	dev, _ := NewDevice(Config{})
	farm, err := NewFarm([]*Device{dev}, ix)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = farm.MapReadsOpts(reads, MapRunOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if IsDeviceFailure(err) {
		t.Error("cancellation misclassified as device failure (would trigger CPU fallback)")
	}
	// Cancellation must not count against the device's health.
	if dev.Breaker().ConsecutiveFailures() != 0 {
		t.Error("cancellation charged to the breaker")
	}
}
