package fpga

import "bwaver/internal/dna"

// Exact pipeline simulation. MapReads prices a batch with a closed form —
// fill + sum(steps + overhead)/PEs — which ignores how queries actually
// distribute across processing elements. SimulateCycles steps the schedule
// explicitly: queries are dealt round-robin to the PEs, each PE is an
// in-order II=1 pipeline (the paper's dual forward/reverse search units
// read the BWT structure through their own BRAM ports, so there is no
// memory contention to model), and the batch finishes when the slowest PE
// drains. The closed form is exact for one PE and an upper-bounded
// approximation for several; TestSimulateCyclesMatchesModel pins the gap.

// SimulateCycles returns the exact kernel cycle count for reads under the
// device's configuration, plus each PE's individual busy cycles.
func (k *Kernel) SimulateCycles(reads []dna.Seq) (total uint64, perPE []uint64, err error) {
	cfg := k.dev.cfg
	perPE = make([]uint64, cfg.PEs)
	perStep := k.stepCycles()
	for i, r := range reads {
		if len(r) == 0 || len(r) > MaxQueryBases {
			return 0, nil, errQuerySize(i, len(r))
		}
		res := k.ix.MapReadMode(r, k.useFtab)
		perPE[i%cfg.PEs] += uint64(res.Steps)*perStep + uint64(cfg.QueryOverheadCycles)
	}
	for _, c := range perPE {
		if c > total {
			total = c
		}
	}
	total += uint64(cfg.PipelineFillCycles)
	return total, perPE, nil
}

func errQuerySize(i, n int) error {
	return &querySizeError{index: i, bases: n}
}

type querySizeError struct {
	index, bases int
}

func (e *querySizeError) Error() string {
	if e.bases == 0 {
		return "fpga: read " + itoa(e.index) + " is empty"
	}
	return "fpga: read " + itoa(e.index) + " has " + itoa(e.bases) + " bases; the record holds at most " + itoa(MaxQueryBases)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
