package fpga

import (
	"fmt"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// Seed-and-extend ("mem") mapping on the modeled device: a two-pass design
// in the spirit of the runtime-reconfigurable architecture twopass.go models.
// Pass 1 runs SMEM seeding on the bidirectional FM-index pipelines (the same
// rank-step cost model as the exact kernel — an SMEM extension op is one
// backward-search step). The fabric then reconfigures from the search
// pipelines to a banded systolic alignment array, and pass 2 executes the
// chain extensions: the array retires one DP cell per PE per cycle, so the
// pass-2 charge is the pipeline fill plus total cells over PEs. Chaining and
// best-selection are host-side (cheap, irregular control flow), mirroring
// the host/device split the paper's hybrid pipeline uses for locate.
//
// The searches and extensions execute bit-for-bit through the same core
// entry points the CPU path calls, so both backends agree by construction;
// the kernel adds only the cycle charges, the fault surface, and the batch
// checksum.

// MemRunResult is a completed seed-and-extend run.
type MemRunResult struct {
	// Results holds one entry per input read, by input position.
	Results []core.MemResult
	// Stats aggregates the batch's pipeline counters.
	Stats core.MemStats
	// Profile covers both passes plus the reconfiguration.
	Profile Profile
	// SeedCycles and ExtendCycles split Profile.KernelCycles into the two
	// passes; SeedTime and ExtendTime are their modeled durations. The
	// session scheduler's overlap model needs the split: host-side seeding
	// of the next batch hides behind the device extension of this one.
	SeedCycles, ExtendCycles uint64
	SeedTime, ExtendTime     time.Duration
	// Checksum is the batch checksum the device computed before the result
	// transfer (see ChecksumMemResults).
	Checksum uint64
}

// VerifyChecksum recomputes the batch checksum over the received results and
// returns ErrResultCorrupt on mismatch.
func (r *MemRunResult) VerifyChecksum() error {
	if ChecksumMemResults(r.Results) != r.Checksum {
		return ErrResultCorrupt
	}
	return nil
}

// ChecksumMemResults folds the deterministic fields of a mem batch into the
// same FNV-1a construction ChecksumResults uses for exact batches. CIGAR
// bytes participate so a corrupted traceback is as detectable as a corrupted
// position.
func ChecksumMemResults(results []core.MemResult) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, r := range results {
		mix(uint64(int64(r.Best.Pos)))
		mix(uint64(int64(r.Best.RefSpan)))
		mix(uint64(int64(r.Best.Score)))
		mix(uint64(r.Best.MapQ))
		mix(uint64(int64(r.Best.NM)))
		mix(uint64(int64(r.SubScore)))
		var bits uint64
		if r.Best.Forward {
			bits |= 1
		}
		if r.Rescued {
			bits |= 2
		}
		mix(bits)
		for _, b := range []byte(r.Best.CIGAR) {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// MapReadsMem runs the seed-and-extend pipeline on the device; see
// MapReadsMemOpts.
func (k *Kernel) MapReadsMem(reads []dna.Seq, memOpts core.MemOptions) (*MemRunResult, error) {
	return k.MapReadsMemOpts(reads, memOpts, MapRunOptions{})
}

// MapReadsMemOpts maps a batch through seed → chain → extend with per-run
// cancellation, progress reporting, and index-residency control. When
// memOpts.Paired is set, consecutive reads are mate pairs (an odd batch maps
// its last read single-end), exactly as core.MapReadsMem pairs them.
func (k *Kernel) MapReadsMemOpts(reads []dna.Seq, memOpts core.MemOptions, opts MapRunOptions) (*MemRunResult, error) {
	wallStart := time.Now()
	cfg := k.dev.cfg
	for i, r := range reads {
		if len(r) == 0 {
			return nil, fmt.Errorf("fpga: read %d is empty", i)
		}
		if len(r) > MaxQueryBases {
			return nil, fmt.Errorf("fpga: read %d has %d bases; the 512-bit query record holds at most %d",
				i, len(r), MaxQueryBases)
		}
	}

	// The seeding pass needs both directions' structures resident; gate on
	// BRAM like Program gates the exact index.
	if err := k.ix.EnsureMem(); err != nil {
		return nil, err
	}
	memBytes := k.ix.MemBytes()
	if memBytes > cfg.BRAMBytes {
		return nil, fmt.Errorf("fpga: bidirectional index (%d bytes) exceeds device BRAM (%d bytes)",
			memBytes, cfg.BRAMBytes)
	}

	// Pass-1 fault surface: bidirectional index load (unless resident),
	// query streaming, seeding kernel.
	if inj := k.dev.inj; inj != nil {
		if !opts.IndexResident {
			if err := inj.at(StageIndexLoad); err != nil {
				return nil, err
			}
		}
		if err := inj.at(StageQueryTransfer); err != nil {
			return nil, err
		}
		if err := inj.at(StageKernel); err != nil {
			return nil, err
		}
	}

	// The mapping itself runs through the core batch engine — pooled
	// per-worker scratch, pair-boundary chunking — so the simulated device
	// path is as allocation-free as the CPU path and bit-identical to it by
	// construction.
	out := &MemRunResult{Results: make([]core.MemResult, len(reads))}
	stats, err := k.ix.MapReadsMemInto(out.Results, reads, memOpts, core.MapOptions{
		Context:       opts.Context,
		Workers:       1,
		Progress:      opts.Progress,
		ProgressEvery: opts.ProgressEvery,
	})
	if err != nil {
		return nil, err
	}
	out.Stats = stats

	// Pass-1 cycles: SMEM extension ops through the rank pipelines, same
	// per-step model as the exact kernel.
	perStep := k.stepCycles()
	var seedCycles uint64
	for _, r := range out.Results {
		seedCycles += uint64(r.SeedSteps)*perStep + uint64(cfg.QueryOverheadCycles)
	}
	pass1Cycles := uint64(cfg.PipelineFillCycles) + seedCycles/uint64(cfg.PEs)

	// Reconfiguration swaps the search pipelines for the systolic alignment
	// array; pass 2 re-rolls the stream/kernel fault stages like a fresh run.
	if inj := k.dev.inj; inj != nil {
		if err := inj.at(StageQueryTransfer); err != nil {
			return nil, err
		}
		if err := inj.at(StageKernel); err != nil {
			return nil, err
		}
	}

	// Pass-2 cycles: the array retires one DP cell per PE per cycle.
	var cellCycles uint64
	for _, r := range out.Results {
		cellCycles += uint64(r.Cells)
	}
	cellCycles += uint64(out.Stats.Extensions) * uint64(cfg.QueryOverheadCycles)
	pass2Cycles := uint64(cfg.PipelineFillCycles) + cellCycles/uint64(cfg.PEs)

	out.Checksum = ChecksumMemResults(out.Results)
	if inj := k.dev.inj; inj != nil {
		if err := inj.at(StageResultTransfer); err != nil {
			return nil, err
		}
	}

	indexTransfer := k.dev.transfer(memBytes)
	if opts.IndexResident {
		indexTransfer = 0
	}
	// A session run on an already-reconfigured fabric (batch two onward of
	// the two-pass schedule) charges no reconfiguration: the alignment array
	// stays programmed and the host takes over seeding.
	reconfig := DefaultReconfigTime
	if opts.memReconfigured {
		reconfig = 0
	}
	kernelCycles := pass1Cycles + pass2Cycles
	out.SeedCycles, out.ExtendCycles = pass1Cycles, pass2Cycles
	out.SeedTime = k.dev.cyclesToTime(pass1Cycles)
	out.ExtendTime = k.dev.cyclesToTime(pass2Cycles)
	profile := Profile{
		Setup:         cfg.SetupTime,
		IndexTransfer: indexTransfer,
		// Pass 1 streams the reads; pass 2 streams one extension-job record
		// per surviving chain.
		QueryTransfer:  k.dev.transfer(len(reads)*QueryRecordBytes + out.Stats.Extensions*QueryRecordBytes),
		KernelTime:     k.dev.cyclesToTime(kernelCycles),
		ResultTransfer: k.dev.transfer(len(reads) * ResultRecordBytes),
		Reconfig:       reconfig,
		KernelCycles:   kernelCycles,
	}
	if cfg.DoubleBuffer {
		profile.Overlap = min(profile.QueryTransfer, profile.KernelTime)
	}
	profile.Events = tagEvents(buildEvents(profile), k.dev.id, 1, 0)
	profile.HostWallTime = time.Since(wallStart)
	out.Profile = profile
	out.Stats.Elapsed = profile.HostWallTime
	return out, nil
}

// verifySampledMem recomputes every stride-th result on the host and compares
// it to the device's, the mem counterpart of core.VerifySampled. Paired
// batches verify whole pairs so rescue and proper-pair context match.
func verifySampledMem(ix *core.Index, reads []dna.Seq, results []core.MemResult, memOpts core.MemOptions, stride int) error {
	if stride <= 0 {
		return nil
	}
	for i := 0; i < len(reads); i += stride {
		if memOpts.Paired && i+1 < len(reads) {
			j := i &^ 1 // verify the pair the read belongs to
			pr, err := ix.MapPairMem(reads[j], reads[j+1], memOpts)
			if err != nil {
				return err
			}
			if pr.R1 != results[j] || pr.R2 != results[j+1] {
				return fmt.Errorf("fpga: mem cross-check mismatch at pair %d", j/2)
			}
			continue
		}
		res, err := ix.MapReadMem(reads[i], memOpts)
		if err != nil {
			return err
		}
		if res != results[i] {
			return fmt.Errorf("fpga: mem cross-check mismatch at read %d", i)
		}
	}
	return nil
}

// MapReadsMem stripes a mem batch across the farm; see MapReadsMemOpts.
func (f *Farm) MapReadsMem(reads []dna.Seq, memOpts core.MemOptions) (*MemRunResult, error) {
	return f.MapReadsMemOpts(reads, memOpts, MapRunOptions{})
}

// MapReadsMemOpts stripes a seed-and-extend batch across the healthy cards
// with the farm's usual retry, checksum verification, and redistribution.
// Paired batches stripe on pair boundaries so no mate pair splits across
// cards (pairing context — rescue, proper-pair calls — is shard-local).
func (f *Farm) MapReadsMemOpts(reads []dna.Seq, memOpts core.MemOptions, opts MapRunOptions) (*MemRunResult, error) {
	wallStart := time.Now()
	healthy := f.healthyDevices()
	if len(healthy) == 0 {
		f.rec.exhausted()
		return nil, ErrNoHealthyDevices
	}
	n := len(healthy)
	boundary := func(si int) int {
		if si >= n {
			return len(reads)
		}
		b := len(reads) * si / n
		if memOpts.Paired {
			b &^= 1
		}
		return b
	}
	out := &MemRunResult{Results: make([]core.MemResult, len(reads))}
	agg := Profile{Setup: f.kernels[0].dev.cfg.SetupTime}
	var maxKernel, maxReconfig time.Duration
	var maxCycles uint64
	var events []Event
	for si, di := range healthy {
		lo, hi := boundary(si), boundary(si+1)
		if lo == hi {
			continue
		}
		shard := reads[lo:hi]
		runOpts := MapRunOptions{
			Context:         opts.Context,
			Progress:        shardProgress(opts, lo, len(reads)),
			ProgressEvery:   opts.ProgressEvery,
			IndexResident:   opts.IndexResident,
			memReconfigured: opts.memReconfigured,
		}
		run, backoff, winner, err := execShard(f, opts.Context, di, healthy, func(k *Kernel) (*MemRunResult, error) {
			r, err := k.MapReadsMemOpts(shard, memOpts, runOpts)
			if err != nil {
				return nil, err
			}
			if err := r.VerifyChecksum(); err != nil {
				return nil, err
			}
			if s := f.opts.VerifyStride; s > 0 {
				if err := verifySampledMem(k.ix, shard, r.Results, memOpts, s); err != nil {
					return nil, fmt.Errorf("%w: %v", errCrossCheckFailed, err)
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		f.observeRun(run.Profile, backoff)
		events = append(events, tagEvents(run.Profile.Events, winner.Device, winner.Attempt, si)...)
		copy(out.Results[lo:hi], run.Results)
		agg.IndexTransfer += run.Profile.IndexTransfer
		agg.QueryTransfer += run.Profile.QueryTransfer
		agg.ResultTransfer += run.Profile.ResultTransfer
		agg.RetryBackoff += backoff
		if run.Profile.Reconfig > maxReconfig {
			maxReconfig = run.Profile.Reconfig
		}
		if run.Profile.KernelTime > maxKernel {
			maxKernel = run.Profile.KernelTime
		}
		if run.Profile.KernelCycles > maxCycles {
			maxCycles = run.Profile.KernelCycles
		}
		// The per-pass split aggregates like KernelTime: shards run in
		// parallel across cards, so the slowest shard's pass bounds the batch.
		out.SeedCycles = max(out.SeedCycles, run.SeedCycles)
		out.ExtendCycles = max(out.ExtendCycles, run.ExtendCycles)
		out.SeedTime = max(out.SeedTime, run.SeedTime)
		out.ExtendTime = max(out.ExtendTime, run.ExtendTime)
	}
	agg.KernelTime = maxKernel
	agg.KernelCycles = maxCycles
	agg.Reconfig = maxReconfig
	sortEvents(events)
	agg.Events = events
	agg.HostWallTime = time.Since(wallStart)
	out.Profile = agg
	out.Checksum = ChecksumMemResults(out.Results)
	for _, r := range out.Results {
		out.Stats.Add(r)
	}
	out.Stats.Elapsed = agg.HostWallTime
	return out, nil
}
