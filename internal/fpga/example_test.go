package fpga_test

import (
	"fmt"
	"log"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fpga"
)

// Example shows the device flow: program the simulated card with an index
// and map a batch, getting exact results plus a modeled profile.
func Example() {
	ref := dna.MustParseSeq("ACGTACGGTACCTTAGGCAATCGAACGTACGGTACCTTAG")
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := fpga.NewDevice(fpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dev.Program(ix) // enforces the BRAM capacity gate
	if err != nil {
		log.Fatal(err)
	}
	run, err := kernel.MapReads([]dna.Seq{
		dna.MustParseSeq("GGTACC"),
		dna.MustParseSeq("TTTTTTTT"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read 0 mapped:", run.Results[0].Mapped())
	fmt.Println("read 1 mapped:", run.Results[1].Mapped())
	fmt.Println("kernel cycles > 0:", run.Profile.KernelCycles > 0)
	// Output:
	// read 0 mapped: true
	// read 1 mapped: false
	// kernel cycles > 0: true
}
