package fpga

import (
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// MemSession schedules a multi-batch seed-and-extend job as a single
// two-pass program instead of paying the full two-pass cost per batch.
//
// A one-shot mem run reconfigures the fabric between its seeding pass and
// its extension pass, so a job streamed as B batches charges B
// reconfigurations. The session charges exactly one: the first batch runs
// the classic schedule (device seeding → reconfigure → device extension),
// and from then on the fabric stays programmed as the alignment array while
// the host — whose succinct index answers the same rank queries — takes
// over seeding. That host seeding is double-buffered against the device:
// while the array extends batch N, the host seeds batch N+1, so each later
// batch's profile credits min(seed time, previous batch's extension time)
// as Overlap. The credit is shifted by one batch — batch N+1 carries it,
// because that is the batch whose seeding was hidden.
//
// Everything else about a farm run survives the re-scheduling: shards still
// execute under execShard's retry/redistribution, fault stages fire
// per-pass as before, batch checksums are verified, and sampled host
// cross-checks still run. A MemSession is not safe for concurrent use;
// serve one stream of batches per session.
type MemSession struct {
	f       *Farm
	memOpts core.MemOptions
	opts    MapRunOptions

	batches    int
	reconfigs  int
	prevExtend time.Duration
}

// NewMemSession opens a batched two-pass session on the farm. The options
// apply to every batch; IndexResident is forced from the second batch on
// (the first batch's transfer leaves the structure in BRAM).
func (f *Farm) NewMemSession(memOpts core.MemOptions, opts MapRunOptions) *MemSession {
	return &MemSession{f: f, memOpts: memOpts, opts: opts}
}

// Map runs one batch under the session's schedule and returns its result.
// Results are bit-identical to Farm.MapReadsMemOpts — only the modeled
// profile (reconfiguration charge, overlap credit) differs.
func (s *MemSession) Map(reads []dna.Seq) (*MemRunResult, error) {
	opts := s.opts
	if s.batches > 0 {
		opts.memReconfigured = true
		opts.IndexResident = true
	}
	run, err := s.f.MapReadsMemOpts(reads, s.memOpts, opts)
	if err != nil {
		return nil, err
	}
	if s.batches == 0 {
		s.reconfigs++
	} else if credit := min(run.SeedTime, s.prevExtend); credit > 0 {
		// Host seeding of this batch ran while the device extended the
		// previous one; Profile.Total subtracts the hidden time.
		run.Profile.Overlap += credit
	}
	s.prevExtend = run.ExtendTime
	s.batches++
	return run, nil
}

// Batches returns how many batches the session has mapped.
func (s *MemSession) Batches() int { return s.batches }

// Reconfigs returns how many fabric reconfigurations the session has
// charged — one for any number of batches, the point of the schedule.
func (s *MemSession) Reconfigs() int { return s.reconfigs }
