package fpga

import (
	"context"
	"errors"
	"testing"
)

// A resident index skips the transfer charge but changes nothing functional —
// the amortization a service relies on when reusing a programmed kernel.
func TestMapReadsOptsIndexResident(t *testing.T) {
	ix := buildIndex(t, 20000)
	reads := simReads(t, ix, 200, 40, 0.5)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	first, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	if first.Profile.IndexTransfer <= 0 {
		t.Fatalf("first run charged no index transfer: %v", first.Profile.IndexTransfer)
	}
	second, err := k.MapReadsOpts(reads, MapRunOptions{IndexResident: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.Profile.IndexTransfer != 0 {
		t.Errorf("resident run charged index transfer %v", second.Profile.IndexTransfer)
	}
	if second.Profile.Total() >= first.Profile.Total() {
		t.Errorf("resident total %v not below first total %v", second.Profile.Total(), first.Profile.Total())
	}
	for i := range first.Results {
		if first.Results[i].Forward != second.Results[i].Forward || first.Results[i].Reverse != second.Results[i].Reverse {
			t.Fatalf("read %d: resident run changed results", i)
		}
	}
}

func TestMapReadsOptsCancel(t *testing.T) {
	ix := buildIndex(t, 20000)
	reads := simReads(t, ix, 100, 40, 0.5)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := k.MapReadsOpts(reads, MapRunOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v, want context.Canceled", err)
	}
	if _, err := k.MapReadsTwoPassOpts(reads, 1, MapRunOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled two-pass run returned %v, want context.Canceled", err)
	}
}

func TestMapReadsOptsProgress(t *testing.T) {
	ix := buildIndex(t, 20000)
	reads := simReads(t, ix, 150, 40, 0.5)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	var calls []int
	_, err = k.MapReadsOpts(reads, MapRunOptions{
		ProgressEvery: 50,
		Progress:      func(done, total int) { calls = append(calls, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 || calls[len(calls)-1] != len(reads) {
		t.Fatalf("progress calls %v must end at %d", calls, len(reads))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] < calls[i-1] {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}
