package fpga

import (
	"strings"
	"testing"
	"time"

	"bwaver/internal/obs"
)

// TestFarmEventTaggingUnderFaults pins down the event-identity contract:
// after a persistent fault drives shard redistribution, the aggregate event
// log records which device and attempt actually produced each shard's
// timeline, and the log is ordered by (Shard, Start, Name).
func TestFarmEventTaggingUnderFaults(t *testing.T) {
	ix := buildIndex(t, 8000)
	reads := simReads(t, ix, 200, 35, 0.7)
	plan, err := ParseFaultPlan("seed=7,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 2)
	for i := range devices {
		devices[i], _ = NewDevice(Config{})
		devices[i].EnableFaults(plan, i)
	}
	reg := obs.NewRegistry()
	farm, err := NewFarmOpts(devices, ix, FarmOptions{
		Retry:   RetryPolicy{MaxAttempts: 2},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := farm.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}

	events := run.Profile.Events
	if len(events) == 0 {
		t.Fatal("aggregate run has no events")
	}
	shards := map[int]bool{}
	for _, e := range events {
		shards[e.Shard] = true
		if e.Attempt < 1 {
			t.Errorf("event %q shard %d: attempt %d, want >= 1", e.Name, e.Shard, e.Attempt)
		}
		// Device 0's kernel stage always faults, so every surviving shard
		// timeline was produced by device 1.
		if e.Device != 1 {
			t.Errorf("event %q shard %d attributed to device %d, want 1", e.Name, e.Shard, e.Device)
		}
	}
	if !shards[0] || !shards[1] {
		t.Errorf("events cover shards %v, want both 0 and 1", shards)
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		ordered := a.Shard < b.Shard ||
			(a.Shard == b.Shard && (a.Start < b.Start ||
				(a.Start == b.Start && a.Name <= b.Name)))
		if !ordered {
			t.Fatalf("events[%d]=%+v out of order after events[%d]=%+v", i, b, i-1, a)
		}
	}

	// The same run should have charged retry backoff and stage durations to
	// the attached registry.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`bwaver_fpga_stage_seconds_bucket{stage="kernel",le="+Inf"}`,
		`bwaver_fpga_stage_seconds_bucket{stage="retry_backoff",le="+Inf"}`,
		"bwaver_fpga_retry_backoff_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestKernelEventTagging: a single-kernel run tags every event with the
// device's identity, attempt 1, shard 0.
func TestKernelEventTagging(t *testing.T) {
	ix := buildIndex(t, 4000)
	reads := simReads(t, ix, 40, 30, 1)
	dev, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	dev.EnableFaults(nil, 3) // assigns the ID only
	k, err := dev.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	run, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Profile.Events) == 0 {
		t.Fatal("no events")
	}
	for _, e := range run.Profile.Events {
		if e.Device != 3 || e.Attempt != 1 || e.Shard != 0 {
			t.Errorf("event %q tagged (device=%d attempt=%d shard=%d), want (3,1,0)",
				e.Name, e.Device, e.Attempt, e.Shard)
		}
	}
}

// TestBreakerNotify: the transition callback reports each state change with
// the correct old/new pair and never fires on a no-op.
func TestBreakerNotify(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Minute)
	b.now = func() time.Time { return now }

	type hop struct{ from, to BreakerState }
	var got []hop
	b.SetNotify(func(from, to BreakerState) { got = append(got, hop{from, to}) })

	b.Failure() // 1/2: still closed, no transition
	b.Failure() // 2/2: closed -> open
	if b.Allow() {
		t.Fatal("open breaker admitted work before cooldown")
	}
	now = now.Add(2 * time.Minute)
	if !b.Allow() { // open -> half-open probe
		t.Fatal("cooled-down breaker rejected probe")
	}
	b.Success() // half-open -> closed
	b.Success() // already closed: no transition

	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %v -> %v, want %v -> %v",
				i, got[i].from, got[i].to, want[i].from, want[i].to)
		}
	}
}
