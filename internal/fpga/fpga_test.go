package fpga

import (
	"strings"
	"testing"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

func buildIndex(t *testing.T, n int) *core.Index {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 21, RepeatFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func simReads(t *testing.T, ix *core.Index, count, length int, ratio float64) []dna.Seq {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: ix.RefLength(), Seed: 21, RepeatFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: count, Length: length, MappingRatio: ratio, RevCompFraction: 0.5, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	return readsim.Seqs(reads)
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	d, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.ClockHz != 300e6 || cfg.PowerWatts != 25 || cfg.PEs != 1 || cfg.BRAMBytes != 40<<20 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	bad := []Config{
		{ClockHz: -1},
		{BRAMBytes: -5},
		{PCIeBytesPerSec: -1},
		{PEs: -2},
		{PowerWatts: -3},
	}
	for _, c := range bad {
		if _, err := NewDevice(c); err == nil {
			t.Errorf("NewDevice(%+v) accepted invalid config", c)
		}
	}
}

func TestBRAMCapacityGate(t *testing.T) {
	ix := buildIndex(t, 50000)
	d, err := NewDevice(Config{BRAMBytes: 1024}) // absurdly small card
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(ix); err == nil {
		t.Fatal("programming oversized index should fail")
	} else if !strings.Contains(err.Error(), "BRAM") {
		t.Errorf("error should mention BRAM: %v", err)
	}
	big, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Program(ix); err != nil {
		t.Fatalf("default device rejected small index: %v", err)
	}
}

// TestResultsMatchCPU is the accuracy claim: the device path must produce
// bit-identical match ranges to the CPU path.
func TestResultsMatchCPU(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 300, 40, 0.5)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	run, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _, err := ix.MapReads(reads, core.MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		if run.Results[i].Forward != cpu[i].Forward || run.Results[i].Reverse != cpu[i].Reverse {
			t.Fatalf("read %d: FPGA and CPU disagree", i)
		}
	}
}

func TestQueryRecordLimits(t *testing.T) {
	ix := buildIndex(t, 5000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	long := make(dna.Seq, MaxQueryBases+1)
	if _, err := k.MapReads([]dna.Seq{long}); err == nil {
		t.Error("accepted read longer than the 512-bit record limit")
	}
	if _, err := k.MapReads([]dna.Seq{{}}); err == nil {
		t.Error("accepted empty read")
	}
	ok := make(dna.Seq, MaxQueryBases)
	if _, err := k.MapReads([]dna.Seq{ok}); err != nil {
		t.Errorf("rejected maximum-length read: %v", err)
	}
}

// TestFixedOverheadAmortisation reproduces the Table II trend: per-read cost
// falls as the batch grows, because setup and index transfer are fixed.
func TestFixedOverheadAmortisation(t *testing.T) {
	ix := buildIndex(t, 40000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	perRead := func(count int) float64 {
		run, err := k.MapReads(simReads(t, ix, count, 40, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		return run.Profile.Total().Seconds() / float64(count)
	}
	small := perRead(100)
	large := perRead(10000)
	if large >= small {
		t.Errorf("per-read cost did not amortise: %v (100 reads) vs %v (10k reads)", small, large)
	}
}

// TestKernelTimeIndependentOfReferenceSize reproduces the Fig. 7 claim:
// search time depends on reads, not on the reference length.
func TestKernelTimeIndependentOfReferenceSize(t *testing.T) {
	small := buildIndex(t, 20000)
	large := buildIndex(t, 200000)
	d, _ := NewDevice(Config{})
	ks, _ := d.Program(small)
	kl, _ := d.Program(large)
	reads := simReads(t, small, 2000, 40, 0) // unmapped reads: same work on both
	runS, err := ks.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	runL, err := kl.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	s := runS.Profile.KernelCycles
	l := runL.Profile.KernelCycles
	ratio := float64(l) / float64(s)
	if ratio > 1.5 || ratio < 0.6 {
		t.Errorf("kernel cycles scaled with reference size: %d vs %d", s, l)
	}
}

// TestMappingRatioDrivesKernelTime reproduces the other Fig. 7 claim:
// mapped reads cost more because unmapped reads exit early.
func TestMappingRatioDrivesKernelTime(t *testing.T) {
	ix := buildIndex(t, 100000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	cyclesAt := func(ratio float64) uint64 {
		run, err := k.MapReads(simReads(t, ix, 3000, 100, ratio))
		if err != nil {
			t.Fatal(err)
		}
		return run.Profile.KernelCycles
	}
	c0 := cyclesAt(0)
	c50 := cyclesAt(0.5)
	c100 := cyclesAt(1)
	if !(c0 < c50 && c50 < c100) {
		t.Errorf("kernel cycles not increasing with mapping ratio: %d, %d, %d", c0, c50, c100)
	}
}

func TestMultiPESpeedsKernel(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 5000, 40, 0.8)
	single, _ := NewDevice(Config{PEs: 1})
	quad, _ := NewDevice(Config{PEs: 4})
	k1, _ := single.Program(ix)
	k4, _ := quad.Program(ix)
	r1, err := k1.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := k4.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Profile.KernelCycles) / float64(r4.Profile.KernelCycles)
	if speedup < 3.5 || speedup > 4.1 {
		t.Errorf("4-PE kernel speedup %v, want ~4", speedup)
	}
	// Results must be unchanged.
	for i := range reads {
		if r1.Results[i].Forward != r4.Results[i].Forward {
			t.Fatal("PE count changed results")
		}
	}
}

func TestProfileAndEvents(t *testing.T) {
	ix := buildIndex(t, 20000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	run, err := k.MapReads(simReads(t, ix, 500, 35, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	p := run.Profile
	if p.Total() != p.Setup+p.IndexTransfer+p.QueryTransfer+p.KernelTime+p.ResultTransfer {
		t.Error("Total does not sum components")
	}
	if p.KernelCycles == 0 || p.KernelTime <= 0 {
		t.Error("kernel model produced no cycles")
	}
	if len(p.Events) != 5 {
		t.Fatalf("%d events, want 5", len(p.Events))
	}
	// Events must tile the timeline in order.
	var cursor time.Duration
	for _, e := range p.Events {
		if e.Start != cursor || e.End < e.Start {
			t.Errorf("event %s misplaced: start=%v cursor=%v", e.Name, e.Start, cursor)
		}
		if e.Duration() != e.End-e.Start {
			t.Errorf("event %s duration wrong", e.Name)
		}
		cursor = e.End
	}
	if cursor != p.Total() {
		t.Errorf("events cover %v, total %v", cursor, p.Total())
	}
	if p.EnergyJoules(25) <= 0 {
		t.Error("energy model returned nothing")
	}
	// 25 W for the modeled duration.
	want := 25 * p.Total().Seconds()
	if got := p.EnergyJoules(25); got != want {
		t.Errorf("energy %v, want %v", got, want)
	}
}

func TestLocateResults(t *testing.T) {
	ix := buildIndex(t, 20000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	reads := simReads(t, ix, 200, 40, 1)
	run, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := k.LocateResults(run.Results)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("locate time not measured")
	}
	located := 0
	for _, r := range run.Results {
		located += len(r.ForwardPositions) + len(r.ReversePositions)
	}
	if located == 0 {
		t.Error("no positions located for fully-mapping read set")
	}
}

// TestSequentialRankAblation checks that removing the adder-tree pipelining
// (DESIGN.md ablation) costs roughly levels*sf/2 more kernel cycles.
func TestSequentialRankAblation(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 1000, 40, 0.8)
	fast, _ := NewDevice(Config{})
	slow, _ := NewDevice(Config{SequentialRank: true})
	kf, _ := fast.Program(ix)
	ks, _ := slow.Program(ix)
	rf, err := kf.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ks.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rs.Profile.KernelCycles) / float64(rf.Profile.KernelCycles)
	// sf=50 -> per-step cost 2*(25+1)=52; with per-query overhead the
	// end-to-end ratio lands somewhat below that.
	if ratio < 10 || ratio > 60 {
		t.Errorf("sequential-rank cycle ratio %v outside the plausible [10,60]", ratio)
	}
	// Results must be identical; only timing changes.
	for i := range reads {
		if rf.Results[i].Forward != rs.Results[i].Forward {
			t.Fatal("ablation changed results")
		}
	}
}

// TestDoubleBufferOverlap checks the double-buffering ablation: overlapping
// query streaming with compute hides min(transfer, kernel) time without
// changing results.
func TestDoubleBufferOverlap(t *testing.T) {
	ix := buildIndex(t, 30000)
	reads := simReads(t, ix, 5000, 40, 0.8)
	plain, _ := NewDevice(Config{})
	buffered, _ := NewDevice(Config{DoubleBuffer: true})
	kp, _ := plain.Program(ix)
	kb, _ := buffered.Program(ix)
	rp, err := kp.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := kb.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Profile.Overlap <= 0 {
		t.Fatal("double buffering hid no time")
	}
	wantSaving := min(rp.Profile.QueryTransfer, rp.Profile.KernelTime)
	if got := rp.Profile.Total() - rb.Profile.Total(); got != wantSaving {
		t.Errorf("saving %v, want %v", got, wantSaving)
	}
	for i := range reads {
		if rp.Results[i].Forward != rb.Results[i].Forward {
			t.Fatal("double buffering changed results")
		}
	}
	// The merged streaming event must appear and the timeline still tiles.
	var cursor time.Duration
	merged := false
	for _, e := range rb.Profile.Events {
		if e.Name == "stream:queries+kernel" {
			merged = true
		}
		if e.Start != cursor {
			t.Errorf("event %s misplaced", e.Name)
		}
		cursor = e.End
	}
	if !merged {
		t.Error("merged streaming event missing")
	}
	if cursor != rb.Profile.Total() {
		t.Errorf("events cover %v, total %v", cursor, rb.Profile.Total())
	}
}

// TestBatchSizeAblation checks the batched host flow: results identical,
// per-batch pipeline fill making small batches costlier.
func TestBatchSizeAblation(t *testing.T) {
	ix := buildIndex(t, 20000)
	reads := simReads(t, ix, 2000, 40, 0.6)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	whole, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	var prevCycles uint64
	for i, batchSize := range []int{10, 100, 2000} {
		run, err := k.MapReadsBatched(reads, batchSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Results) != len(reads) {
			t.Fatalf("batch=%d: %d results", batchSize, len(run.Results))
		}
		for j := range reads {
			if run.Results[j].Forward != whole.Results[j].Forward {
				t.Fatalf("batch=%d: result %d differs", batchSize, j)
			}
		}
		if i > 0 && run.Profile.KernelCycles > prevCycles {
			t.Errorf("larger batches should not cost more cycles: %d then %d", prevCycles, run.Profile.KernelCycles)
		}
		prevCycles = run.Profile.KernelCycles
		// Setup charged once regardless of batch count.
		if run.Profile.Setup != d.Config().SetupTime {
			t.Errorf("batch=%d: setup charged %v", batchSize, run.Profile.Setup)
		}
	}
	// One big batch must equal the unbatched run exactly.
	one, err := k.MapReadsBatched(reads, len(reads))
	if err != nil {
		t.Fatal(err)
	}
	if one.Profile.KernelCycles != whole.Profile.KernelCycles {
		t.Errorf("single batch cycles %d != unbatched %d", one.Profile.KernelCycles, whole.Profile.KernelCycles)
	}
	if _, err := k.MapReadsBatched(reads, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
}
