package fpga

import (
	"strings"
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/readsim"
)

func buildFtabIndex(t *testing.T, n, k int) *core.Index {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 21, RepeatFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{FtabK: k})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestFtabKernelCycleReduction: the prefix table collapses the first k
// backward-search iterations of both pipelines into one LUT cycle, so the
// modeled kernel cycles must drop versus the same index without a table —
// while the mapped ranges stay bit-identical.
func TestFtabKernelCycleReduction(t *testing.T) {
	const k = 5
	plain := buildIndex(t, 60000)
	withTable := buildFtabIndex(t, 60000, k)
	reads := simReads(t, plain, 400, 35, 0.5)

	dev, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	kPlain, err := dev.Program(plain)
	if err != nil {
		t.Fatal(err)
	}
	kFtab, err := dev.Program(withTable)
	if err != nil {
		t.Fatal(err)
	}
	if !kFtab.UsesFtab() || kFtab.FtabDegraded() {
		t.Fatalf("table kernel state: uses=%v degraded=%v", kFtab.UsesFtab(), kFtab.FtabDegraded())
	}
	if kFtab.FtabBytes() != withTable.FtabBytes() {
		t.Errorf("kernel ftab bytes %d, index %d", kFtab.FtabBytes(), withTable.FtabBytes())
	}

	runPlain, err := kPlain.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	runFtab, err := kFtab.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runPlain.Results {
		a, b := runPlain.Results[i], runFtab.Results[i]
		if a.Forward != b.Forward || a.Reverse != b.Reverse {
			t.Fatalf("read %d: ftab kernel changed the result", i)
		}
	}
	if runFtab.Profile.KernelCycles >= runPlain.Profile.KernelCycles {
		t.Fatalf("ftab kernel %d cycles, plain %d — no reduction",
			runFtab.Profile.KernelCycles, runPlain.Profile.KernelCycles)
	}
	// The two pipelines run concurrently, so a read is charged the max of
	// its orientations; when both survive past k steps that max drops by
	// k-1. Require at least half the reads to realize that saving.
	saved := runPlain.Profile.KernelCycles - runFtab.Profile.KernelCycles
	minSaved := uint64(len(reads)*(k-1)) * kPlain.stepCycles() / 2
	if saved < minSaved {
		t.Errorf("saved %d cycles, expected at least %d for %d reads at k=%d",
			saved, minSaved, len(reads), k)
	}

	// The exact schedule simulation stays consistent with the batch model.
	total, _, err := kFtab.SimulateCycles(reads)
	if err != nil {
		t.Fatal(err)
	}
	if total != runFtab.Profile.KernelCycles {
		t.Errorf("SimulateCycles %d != batch model %d (1 PE must be exact)",
			total, runFtab.Profile.KernelCycles)
	}
}

// TestFtabBRAMDegrade: an index whose wavelet tree fits BRAM but whose table
// does not must program successfully with the table left off — same
// results, plain-search cycle accounting, degrade flagged in the report.
func TestFtabBRAMDegrade(t *testing.T) {
	const k = 8 // 4^8 intervals = 512 KiB of table
	ix := buildFtabIndex(t, 60000, k)
	structure := ix.StructureBytes()
	if ix.FtabBytes() <= 0 {
		t.Fatal("index has no table to degrade")
	}
	// Room for the structure, not for structure+table.
	dev, err := NewDevice(Config{BRAMBytes: structure + ix.FtabBytes()/2})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		t.Fatalf("degrade must not fail the program: %v", err)
	}
	if kernel.UsesFtab() || !kernel.FtabDegraded() {
		t.Fatalf("kernel state: uses=%v degraded=%v", kernel.UsesFtab(), kernel.FtabDegraded())
	}
	if kernel.FtabBytes() != 0 {
		t.Errorf("degraded kernel still charges %d table bytes", kernel.FtabBytes())
	}

	// A degraded kernel behaves exactly like one programmed without a table.
	plainDev, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	plainIx := buildIndex(t, 60000)
	plainKernel, err := plainDev.Program(plainIx)
	if err != nil {
		t.Fatal(err)
	}
	reads := simReads(t, ix, 300, 35, 0.5)
	runDeg, err := kernel.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	runPlain, err := plainKernel.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runDeg.Results {
		a, b := runDeg.Results[i], runPlain.Results[i]
		if a.Forward != b.Forward || a.Reverse != b.Reverse {
			t.Fatalf("read %d: degraded kernel changed the result", i)
		}
	}
	if runDeg.Profile.KernelCycles != runPlain.Profile.KernelCycles {
		t.Errorf("degraded kernel %d cycles, ftab-free kernel %d — degrade must price plain search",
			runDeg.Profile.KernelCycles, runPlain.Profile.KernelCycles)
	}

	// The resource report shows no table share after the degrade.
	rep, err := kernel.Report(35)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FtabBytes != 0 || rep.StructureBytes != structure {
		t.Errorf("degraded report charges ftab: %+v", rep)
	}
}

// TestFtabReport: an undegraded table kernel reports the table inside its
// on-chip footprint and renders it.
func TestFtabReport(t *testing.T) {
	ix := buildFtabIndex(t, 60000, 6)
	dev, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := dev.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := kernel.Report(35)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FtabBytes != ix.FtabBytes() {
		t.Errorf("report ftab bytes %d, index %d", rep.FtabBytes, ix.FtabBytes())
	}
	if rep.StructureBytes != ix.StructureBytes()+ix.FtabBytes() {
		t.Errorf("report on-chip bytes %d, want structure %d + ftab %d",
			rep.StructureBytes, ix.StructureBytes(), ix.FtabBytes())
	}
	var sb strings.Builder
	WriteReport(&sb, rep)
	if !strings.Contains(sb.String(), "ftab LUT") {
		t.Error("report output missing the ftab line")
	}
}
