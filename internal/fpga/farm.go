package fpga

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/obs"
)

// Farm models a multi-card deployment, the configuration of the paper's
// related work (Fernandez et al. on four Virtex-6 FPGAs, Arram et al. on
// eight Stratix V): the same index is broadcast to every card and the read
// batch is striped across them. The paper argues its single-card design
// "can be easily replicated to obtain even better performances"; Farm
// quantifies that claim under a shared-PCIe model — transfers serialise on
// the host bus while kernels run in parallel.
//
// The farm is also the resilience layer over the fault-injectable devices:
// each shard is retried on its card with exponential backoff and bounded
// attempts, every result batch is checksum-verified (and optionally
// cross-checked against the CPU path on a sampled subset), and a card whose
// circuit breaker opens is taken out of rotation with its shard
// redistributed to the healthy cards. Only when every card is broken does a
// run fail — with ErrNoHealthyDevices, the signal the server's CPU fallback
// keys on.
type Farm struct {
	kernels []*Kernel
	devices []*Device
	opts    FarmOptions
	rec     *StatsRecorder

	// Metric instruments, nil unless FarmOptions.Metrics was set.
	stageSeconds *obs.HistogramVec
	backoffTotal *obs.CounterVec

	// mu guards the jitter RNG; concurrent jobs may share one farm.
	mu  sync.Mutex
	rng uint64
}

// FarmOptions tune the resilience layer; the zero value takes the listed
// defaults, reproducing fault-free behaviour exactly when no fault plan is
// attached to the devices.
type FarmOptions struct {
	// Retry bounds per-device attempts and shapes the backoff.
	Retry RetryPolicy
	// BreakerThreshold consecutive failures open a device's breaker;
	// default DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerCooldown is the open-breaker probe delay; default
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// VerifyStride cross-checks every Nth result of a shard against the
	// CPU path (0 disables) — the host-side defense against corruption
	// that slips past the batch checksum.
	VerifyStride int
	// Recorder receives the resilience counters; nil creates a private one.
	Recorder *StatsRecorder
	// Metrics, when non-nil, receives per-stage modeled duration histograms
	// (bwaver_fpga_stage_seconds) and the accrued retry-backoff counter
	// (bwaver_fpga_retry_backoff_seconds_total) for every successful shard
	// run. Families are get-or-create, so farms built per cache entry share
	// one registry's series.
	Metrics *obs.Registry
	// Seed drives the backoff jitter; 0 takes a fixed default so runs stay
	// reproducible.
	Seed uint64
}

// NewFarm programs the index onto every device with default resilience
// options.
func NewFarm(devices []*Device, ix *core.Index) (*Farm, error) {
	return NewFarmOpts(devices, ix, FarmOptions{})
}

// NewFarmOpts programs the index onto every device and configures the
// resilience layer. Device breakers keep their accumulated state: a new farm
// over already-running cards cannot mask an open breaker.
func NewFarmOpts(devices []*Device, ix *core.Index, opts FarmOptions) (*Farm, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("fpga: farm needs at least one device")
	}
	opts.Retry = opts.Retry.withDefaults()
	if opts.Seed == 0 {
		opts.Seed = 0x42fa7a11
	}
	f := &Farm{
		kernels: make([]*Kernel, len(devices)),
		devices: devices,
		opts:    opts,
		rec:     opts.Recorder,
		rng:     opts.Seed,
	}
	if f.rec == nil {
		f.rec = NewStatsRecorder()
	}
	if opts.Metrics != nil {
		f.stageSeconds = opts.Metrics.Histogram("bwaver_fpga_stage_seconds",
			"Modeled duration of FPGA run stages in seconds, one observation per successful shard run.",
			nil, "stage")
		f.backoffTotal = opts.Metrics.Counter("bwaver_fpga_retry_backoff_seconds_total",
			"Modeled host-side retry backoff accrued by the resilience layer, in seconds.")
	}
	for i, d := range devices {
		k, err := d.Program(ix)
		if err != nil {
			return nil, fmt.Errorf("fpga: device %d: %w", i, err)
		}
		f.kernels[i] = k
		d.breaker.configure(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return f, nil
}

// Size returns the number of cards.
func (f *Farm) Size() int { return len(f.kernels) }

// Stats returns a snapshot of the farm's resilience counters.
func (f *Farm) Stats() ResilienceStats { return f.rec.Snapshot() }

// DeviceHealth returns every card's breaker snapshot.
func (f *Farm) DeviceHealth() []DeviceHealth {
	out := make([]DeviceHealth, len(f.devices))
	for i, d := range f.devices {
		out[i] = DeviceHealth{
			Device:              i,
			Breaker:             d.breaker.State().String(),
			ConsecutiveFailures: d.breaker.ConsecutiveFailures(),
			BreakerTrips:        d.breaker.Trips(),
		}
	}
	return out
}

// LocateResults resolves occurrence positions on the host through the
// index's suffix array (see Kernel.LocateResults).
func (f *Farm) LocateResults(results []core.MapResult) (time.Duration, error) {
	return f.kernels[0].LocateResults(results)
}

// healthyDevices returns the indexes of cards whose breaker admits work.
func (f *Farm) healthyDevices() []int {
	out := make([]int, 0, len(f.devices))
	for i, d := range f.devices {
		if d.breaker.Allow() {
			out = append(out, i)
		}
	}
	return out
}

func (f *Farm) jitter(attempt int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opts.Retry.delay(attempt, &f.rng)
}

// recordFailure folds one shard failure into the counters.
func (f *Farm) recordFailure(err error) {
	var fe *FaultError
	switch {
	case errors.As(err, &fe):
		f.rec.fault(fe.Stage.String())
	case errors.Is(err, ErrResultCorrupt):
		f.rec.checksum()
	case errors.Is(err, errCrossCheckFailed):
		f.rec.crosscheck()
	}
}

// shardWinner identifies where a shard finally succeeded: the device that
// ran it and the 1-based attempt number on that device. Failed attempts
// leave no event timeline (the run aborts before a profile exists), so the
// winner's identity is what makes a recovered run's trace readable.
type shardWinner struct {
	Device  int
	Attempt int
}

// execShard runs fn against the primary device with retry/backoff, then
// against each remaining candidate in turn (redistribution) until one
// succeeds or all are exhausted. It returns the accrued modeled backoff and
// the identity of the successful attempt.
func execShard[T any](f *Farm, ctx context.Context, primary int, candidates []int, fn func(*Kernel) (T, error)) (out T, backoff time.Duration, winner shardWinner, err error) {
	var zero T
	order := make([]int, 0, len(candidates))
	order = append(order, primary)
	for _, c := range candidates {
		if c != primary {
			order = append(order, c)
		}
	}
	var lastErr error
	for oi, di := range order {
		dev := f.devices[di]
		if !dev.breaker.Allow() {
			continue
		}
		if oi > 0 {
			f.rec.redistributed()
		}
		for attempt := 1; ; attempt++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return zero, backoff, shardWinner{}, err
				}
			}
			res, err := fn(f.kernels[di])
			if err == nil {
				dev.breaker.Success()
				return res, backoff, shardWinner{Device: di, Attempt: attempt}, nil
			}
			if !isRetryableFault(err) {
				return zero, backoff, shardWinner{}, err
			}
			lastErr = err
			f.recordFailure(err)
			dev.breaker.Failure()
			if attempt >= f.opts.Retry.MaxAttempts || !dev.breaker.Allow() {
				break
			}
			f.rec.retry()
			backoff += f.jitter(attempt)
		}
	}
	f.rec.exhausted()
	if lastErr == nil {
		return zero, backoff, shardWinner{}, ErrNoHealthyDevices
	}
	return zero, backoff, shardWinner{}, fmt.Errorf("%w (last error: %v)", ErrNoHealthyDevices, lastErr)
}

// observeRun folds one successful shard run's modeled stage durations and
// accrued backoff into the metrics registry, when one is attached.
func (f *Farm) observeRun(p Profile, backoff time.Duration) {
	if f.backoffTotal != nil && backoff > 0 {
		f.backoffTotal.With().Add(backoff.Seconds())
	}
	if f.stageSeconds == nil {
		return
	}
	observe := func(stage string, d time.Duration) {
		f.stageSeconds.With(stage).Observe(d.Seconds())
	}
	observe("setup", p.Setup)
	observe("query_transfer", p.QueryTransfer)
	observe("kernel", p.KernelTime)
	observe("result_transfer", p.ResultTransfer)
	// Conditional stages only when they happened: a resident index pays no
	// transfer, exact-only runs never reconfigure.
	if p.IndexTransfer > 0 {
		observe("index_transfer", p.IndexTransfer)
	}
	if p.Reconfig > 0 {
		observe("reconfig", p.Reconfig)
	}
	if backoff > 0 {
		observe("retry_backoff", backoff)
	}
}

// sortEvents orders a multi-shard event log deterministically: by shard,
// then by virtual-timeline start, then by name. Each shard's events keep
// their in-order command-queue sequence.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Shard != events[j].Shard {
			return events[i].Shard < events[j].Shard
		}
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Name < events[j].Name
	})
}

// verifyRun is the host's acceptance gate for one shard run: the batch
// checksum always, plus a sampled CPU cross-check when configured.
func (f *Farm) verifyRun(k *Kernel, shard []dna.Seq, run *RunResult) error {
	if err := run.VerifyChecksum(); err != nil {
		return err
	}
	if s := f.opts.VerifyStride; s > 0 {
		if err := core.VerifySampled(k.ix, shard, run.Results, s); err != nil {
			return fmt.Errorf("%w: %v", errCrossCheckFailed, err)
		}
	}
	return nil
}

// shardProgress lifts a shard-local progress callback onto the whole batch.
func shardProgress(opts MapRunOptions, lo, total int) func(done, _ int) {
	if opts.Progress == nil {
		return nil
	}
	p := opts.Progress
	return func(done, _ int) { p(lo+done, total) }
}

// MapReads stripes reads across the cards; see MapReadsOpts.
func (f *Farm) MapReads(reads []dna.Seq) (*RunResult, error) {
	return f.MapReadsOpts(reads, MapRunOptions{})
}

// MapReadsOpts stripes reads across the healthy cards with per-shard retry,
// checksum verification, and redistribution on device failure. The profile
// charges setup once, transfers serially (one shared host bus), the slowest
// card's kernel time, and the accrued retry backoff.
func (f *Farm) MapReadsOpts(reads []dna.Seq, opts MapRunOptions) (*RunResult, error) {
	wallStart := time.Now()
	healthy := f.healthyDevices()
	if len(healthy) == 0 {
		f.rec.exhausted()
		return nil, ErrNoHealthyDevices
	}
	n := len(healthy)
	out := &RunResult{Results: make([]core.MapResult, len(reads))}
	agg := Profile{Setup: f.kernels[0].dev.cfg.SetupTime}
	var maxKernel time.Duration
	var maxCycles uint64
	var events []Event
	for si, di := range healthy {
		lo := len(reads) * si / n
		hi := len(reads) * (si + 1) / n
		if lo == hi {
			continue
		}
		shard := reads[lo:hi]
		runOpts := MapRunOptions{
			Context:       opts.Context,
			Progress:      shardProgress(opts, lo, len(reads)),
			ProgressEvery: opts.ProgressEvery,
			IndexResident: opts.IndexResident,
		}
		run, backoff, winner, err := execShard(f, opts.Context, di, healthy, func(k *Kernel) (*RunResult, error) {
			r, err := k.MapReadsOpts(shard, runOpts)
			if err != nil {
				return nil, err
			}
			if err := f.verifyRun(k, shard, r); err != nil {
				return nil, err
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		f.observeRun(run.Profile, backoff)
		events = append(events, tagEvents(run.Profile.Events, winner.Device, winner.Attempt, si)...)
		copy(out.Results[lo:hi], run.Results)
		agg.IndexTransfer += run.Profile.IndexTransfer
		agg.QueryTransfer += run.Profile.QueryTransfer
		agg.ResultTransfer += run.Profile.ResultTransfer
		agg.RetryBackoff += backoff
		if run.Profile.KernelTime > maxKernel {
			maxKernel = run.Profile.KernelTime
		}
		if run.Profile.KernelCycles > maxCycles {
			maxCycles = run.Profile.KernelCycles
		}
	}
	agg.KernelTime = maxKernel
	agg.KernelCycles = maxCycles
	// The aggregate event log keeps per-shard identity — each shard's
	// command queue tagged with the device and attempt that produced it —
	// instead of a synthesized single-queue timeline that would misattribute
	// recovered runs.
	sortEvents(events)
	agg.Events = events
	agg.HostWallTime = time.Since(wallStart)
	out.Profile = agg
	out.Checksum = ChecksumResults(out.Results)
	return out, nil
}

// MapReadsTwoPassOpts is the farm's two-pass approximate flow: reads stripe
// across the healthy cards, each card runs its own exact + reconfigured
// mismatch pass (see Kernel.MapReadsTwoPassOpts) under the same retry,
// verification, and redistribution regime as MapReadsOpts. Reconfiguration
// happens on every card in parallel, so the profile charges the slowest.
func (f *Farm) MapReadsTwoPassOpts(reads []dna.Seq, maxMismatches int, opts MapRunOptions) (*TwoPassResult, error) {
	if maxMismatches < 1 {
		return nil, fmt.Errorf("fpga: two-pass run needs a mismatch budget >= 1, got %d", maxMismatches)
	}
	wallStart := time.Now()
	healthy := f.healthyDevices()
	if len(healthy) == 0 {
		f.rec.exhausted()
		return nil, ErrNoHealthyDevices
	}
	n := len(healthy)
	out := &TwoPassResult{
		Exact:  make([]core.MapResult, len(reads)),
		Approx: map[int]core.ApproxResult{},
	}
	agg := Profile{Setup: f.kernels[0].dev.cfg.SetupTime}
	var maxKernel, maxReconfig time.Duration
	var maxCycles uint64
	var events []Event
	for si, di := range healthy {
		lo := len(reads) * si / n
		hi := len(reads) * (si + 1) / n
		if lo == hi {
			continue
		}
		shard := reads[lo:hi]
		runOpts := MapRunOptions{
			Context:       opts.Context,
			Progress:      shardProgress(opts, lo, len(reads)),
			ProgressEvery: opts.ProgressEvery,
			IndexResident: opts.IndexResident,
		}
		run, backoff, winner, err := execShard(f, opts.Context, di, healthy, func(k *Kernel) (*TwoPassResult, error) {
			r, err := k.MapReadsTwoPassOpts(shard, maxMismatches, runOpts)
			if err != nil {
				return nil, err
			}
			if err := r.VerifyChecksum(); err != nil {
				return nil, err
			}
			if s := f.opts.VerifyStride; s > 0 {
				if err := core.VerifySampled(k.ix, shard, r.Exact, s); err != nil {
					return nil, fmt.Errorf("%w: %v", errCrossCheckFailed, err)
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		f.observeRun(run.Profile, backoff)
		events = append(events, tagEvents(run.Profile.Events, winner.Device, winner.Attempt, si)...)
		copy(out.Exact[lo:hi], run.Exact)
		for i, res := range run.Approx {
			out.Approx[lo+i] = res
		}
		out.Rescued += run.Rescued
		agg.IndexTransfer += run.Profile.IndexTransfer
		agg.QueryTransfer += run.Profile.QueryTransfer
		agg.ResultTransfer += run.Profile.ResultTransfer
		agg.RetryBackoff += backoff
		if run.Profile.Reconfig > maxReconfig {
			maxReconfig = run.Profile.Reconfig
		}
		if run.Profile.KernelTime > maxKernel {
			maxKernel = run.Profile.KernelTime
		}
		if run.Profile.KernelCycles > maxCycles {
			maxCycles = run.Profile.KernelCycles
		}
	}
	agg.KernelTime = maxKernel
	agg.KernelCycles = maxCycles
	agg.Reconfig = maxReconfig
	sortEvents(events)
	agg.Events = events
	agg.HostWallTime = time.Since(wallStart)
	out.Profile = agg
	out.Checksum = ChecksumResults(out.Exact)
	return out, nil
}
