package fpga

import (
	"fmt"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// Farm models a multi-card deployment, the configuration of the paper's
// related work (Fernandez et al. on four Virtex-6 FPGAs, Arram et al. on
// eight Stratix V): the same index is broadcast to every card and the read
// batch is striped across them. The paper argues its single-card design
// "can be easily replicated to obtain even better performances"; Farm
// quantifies that claim under a shared-PCIe model — transfers serialise on
// the host bus while kernels run in parallel.
type Farm struct {
	kernels []*Kernel
}

// NewFarm programs the index onto every device.
func NewFarm(devices []*Device, ix *core.Index) (*Farm, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("fpga: farm needs at least one device")
	}
	f := &Farm{kernels: make([]*Kernel, len(devices))}
	for i, d := range devices {
		k, err := d.Program(ix)
		if err != nil {
			return nil, fmt.Errorf("fpga: device %d: %w", i, err)
		}
		f.kernels[i] = k
	}
	return f, nil
}

// Size returns the number of cards.
func (f *Farm) Size() int { return len(f.kernels) }

// MapReads stripes reads across the cards. The profile charges setup once,
// index and query/result transfers serially (one shared host bus), and the
// slowest card's kernel time.
func (f *Farm) MapReads(reads []dna.Seq) (*RunResult, error) {
	wallStart := time.Now()
	n := len(f.kernels)
	out := &RunResult{Results: make([]core.MapResult, len(reads))}
	agg := Profile{Setup: f.kernels[0].dev.cfg.SetupTime}
	var maxKernel time.Duration
	var maxCycles uint64
	for i, k := range f.kernels {
		lo := len(reads) * i / n
		hi := len(reads) * (i + 1) / n
		agg.IndexTransfer += k.indexTransfer
		if lo == hi {
			continue
		}
		run, err := k.MapReads(reads[lo:hi])
		if err != nil {
			return nil, err
		}
		copy(out.Results[lo:hi], run.Results)
		agg.QueryTransfer += run.Profile.QueryTransfer
		agg.ResultTransfer += run.Profile.ResultTransfer
		if run.Profile.KernelTime > maxKernel {
			maxKernel = run.Profile.KernelTime
		}
		if run.Profile.KernelCycles > maxCycles {
			maxCycles = run.Profile.KernelCycles
		}
	}
	agg.KernelTime = maxKernel
	agg.KernelCycles = maxCycles
	agg.Events = buildEvents(agg)
	agg.HostWallTime = time.Since(wallStart)
	out.Profile = agg
	return out, nil
}
