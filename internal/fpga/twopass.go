package fpga

import (
	"fmt"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
)

// Two-pass approximate mapping, modeled on the runtime-reconfigurable
// architecture of Arram et al. that the paper's related work describes
// (§II: "the reads are first processed by the exact alignment module. Then,
// the FPGA fabric is reconfigured and any unaligned read is processed by
// the slower one- and two-mismatches alignment modules"). Pass 1 runs the
// exact kernel over every read; reads that fail both orientations are
// re-queued to a k-mismatch kernel after a fabric reconfiguration, whose
// fixed cost is charged once.

// DefaultReconfigTime is the modeled partial-reconfiguration cost of
// swapping the exact kernel for the mismatch kernel.
const DefaultReconfigTime = 500 * time.Millisecond

// TwoPassResult is a completed two-pass run.
type TwoPassResult struct {
	// Exact holds pass-1 results for every read, by input position.
	Exact []core.MapResult
	// Approx holds pass-2 results for the reads pass 1 failed to map,
	// keyed by input position. Reads mapped exactly do not appear.
	Approx map[int]core.ApproxResult
	// Rescued counts pass-2 reads that found an approximate match.
	Rescued int
	// Profile covers both passes plus the reconfiguration.
	Profile Profile
	// Checksum is the pass-1 batch checksum (see RunResult.Checksum).
	Checksum uint64
}

// VerifyChecksum recomputes the pass-1 batch checksum over the received
// exact results and returns ErrResultCorrupt on mismatch.
func (t *TwoPassResult) VerifyChecksum() error {
	if ChecksumResults(t.Exact) != t.Checksum {
		return ErrResultCorrupt
	}
	return nil
}

// MapReadsTwoPass runs the exact kernel, reconfigures, and retries the
// unaligned reads with up to maxMismatches substitutions. maxMismatches
// must be at least 1 (use MapReads for exact-only runs).
func (k *Kernel) MapReadsTwoPass(reads []dna.Seq, maxMismatches int) (*TwoPassResult, error) {
	return k.MapReadsTwoPassOpts(reads, maxMismatches, MapRunOptions{})
}

// MapReadsTwoPassOpts is MapReadsTwoPass with per-run cancellation, progress
// reporting, and index-residency control. Progress counts pass-1 queries
// toward (done, total); pass 2 re-processes the unaligned subset under the
// same total.
func (k *Kernel) MapReadsTwoPassOpts(reads []dna.Seq, maxMismatches int, opts MapRunOptions) (*TwoPassResult, error) {
	if maxMismatches < 1 {
		return nil, fmt.Errorf("fpga: two-pass run needs a mismatch budget >= 1, got %d", maxMismatches)
	}
	pass1, err := k.MapReadsOpts(reads, opts)
	if err != nil {
		return nil, err
	}
	out := &TwoPassResult{
		Exact:    pass1.Results,
		Approx:   map[int]core.ApproxResult{},
		Profile:  pass1.Profile,
		Checksum: pass1.Checksum,
	}
	var unaligned []int
	for i, res := range pass1.Results {
		if !res.Mapped() {
			unaligned = append(unaligned, i)
		}
	}
	if len(unaligned) == 0 {
		return out, nil
	}

	cfg := k.dev.cfg
	// Fabric reconfiguration: one fixed charge.
	out.Profile.Reconfig = DefaultReconfigTime

	// Pass 2 re-streams the unaligned subset and runs the mismatch kernel,
	// so it rolls the same injectable stages as a fresh run.
	if inj := k.dev.inj; inj != nil {
		if err := inj.at(StageQueryTransfer); err != nil {
			return nil, err
		}
		if err := inj.at(StageKernel); err != nil {
			return nil, err
		}
	}

	// Pass 2: the mismatch kernel. Same pipeline model; the branching
	// search simply executes more steps per query.
	var stepCycles uint64
	perStep := k.stepCycles()
	for n, i := range unaligned {
		if opts.Context != nil && n%64 == 0 {
			if err := opts.Context.Err(); err != nil {
				return nil, err
			}
		}
		res, err := k.ix.MapReadApprox(reads[i], maxMismatches)
		if err != nil {
			return nil, err
		}
		out.Approx[i] = res
		if res.Mapped() {
			out.Rescued++
		}
		stepCycles += uint64(res.Steps)*perStep + uint64(cfg.QueryOverheadCycles)
	}
	if inj := k.dev.inj; inj != nil {
		if err := inj.at(StageResultTransfer); err != nil {
			return nil, err
		}
	}
	pass2Cycles := uint64(cfg.PipelineFillCycles) + stepCycles/uint64(cfg.PEs)
	out.Profile.KernelCycles += pass2Cycles
	out.Profile.KernelTime += k.dev.cyclesToTime(pass2Cycles)
	out.Profile.QueryTransfer += k.dev.transfer(len(unaligned) * QueryRecordBytes)
	out.Profile.ResultTransfer += k.dev.transfer(len(unaligned) * ResultRecordBytes)
	out.Profile.Events = tagEvents(buildEvents(out.Profile), k.dev.id, 1, 0)
	return out, nil
}
