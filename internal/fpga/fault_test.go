package fpga

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=42,query=0.05,kernel=0.01,corrupt=0.02,persistent=0:kernel,persistent=1:result")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 {
		t.Errorf("seed = %d", plan.Seed)
	}
	if plan.Transient[StageQueryTransfer] != 0.05 || plan.Transient[StageKernel] != 0.01 ||
		plan.Transient[StageCorruption] != 0.02 {
		t.Errorf("transient probabilities = %v", plan.Transient)
	}
	if !plan.persistentAt(0, StageKernel) || !plan.persistentAt(1, StageResultTransfer) {
		t.Errorf("persistent faults = %v", plan.Persistent)
	}
	if plan.persistentAt(0, StageResultTransfer) || plan.persistentAt(2, StageKernel) {
		t.Errorf("spurious persistent faults = %v", plan.Persistent)
	}

	// String must round-trip through the parser.
	reparsed, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("round trip %q: %v", plan.String(), err)
	}
	if !reflect.DeepEqual(plan, reparsed) {
		t.Errorf("round trip: %+v != %+v", plan, reparsed)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"nonsense",
		"bogus=0.1",
		"kernel=1.5",
		"kernel=-0.1",
		"kernel=abc",
		"seed=notanumber",
		"persistent=0",
		"persistent=x:kernel",
		"persistent=-1:kernel",
		"persistent=0:bogus",
	} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", spec)
		}
	}
}

func TestPersistentKernelFault(t *testing.T) {
	ix := buildIndex(t, 3000)
	reads := simReads(t, ix, 20, 30, 1)
	plan, err := ParseFaultPlan("seed=1,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := NewDevice(Config{})
	dev.EnableFaults(plan, 0)
	k, err := dev.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.MapReads(reads)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("MapReads error = %v, want FaultError", err)
	}
	if fe.Stage != StageKernel || !fe.Persistent || fe.Device != 0 {
		t.Errorf("fault = %+v", fe)
	}
	if !IsDeviceFailure(err) {
		t.Error("kernel fault not classified as device failure")
	}
	// The fault must keep firing: persistent means the card is dead.
	if _, err := k.MapReads(reads); !errors.As(err, &fe) {
		t.Fatalf("second run error = %v", err)
	}
	if len(dev.FaultLog()) != 2 || dev.FaultCounts()["kernel"] != 2 {
		t.Errorf("fault log %v counts %v", dev.FaultLog(), dev.FaultCounts())
	}
}

func TestCorruptionCaughtByChecksum(t *testing.T) {
	ix := buildIndex(t, 3000)
	reads := simReads(t, ix, 20, 30, 1)
	plan, err := ParseFaultPlan("seed=1,persistent=0:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := NewDevice(Config{})
	dev.EnableFaults(plan, 0)
	k, err := dev.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	run, err := k.MapReads(reads)
	if err != nil {
		t.Fatalf("corruption must not error at the device: %v", err)
	}
	if err := run.VerifyChecksum(); !errors.Is(err, ErrResultCorrupt) {
		t.Fatalf("VerifyChecksum = %v, want ErrResultCorrupt", err)
	}
	if !IsDeviceFailure(ErrResultCorrupt) {
		t.Error("corruption not classified as device failure")
	}

	// A clean device's batch passes verification.
	clean, _ := NewDevice(Config{})
	ck, _ := clean.Program(ix)
	goodRun, err := ck.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	if err := goodRun.VerifyChecksum(); err != nil {
		t.Fatalf("clean run failed verification: %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	ix := buildIndex(t, 8000)
	reads := simReads(t, ix, 400, 35, 0.7)
	plan, err := ParseFaultPlan("seed=99,query=0.2,kernel=0.1,corrupt=0.15,persistent=1:result")
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		logs   [][]FaultEvent
		run    *RunResult
		runErr error
	}
	execute := func() outcome {
		devices := make([]*Device, 2)
		for i := range devices {
			devices[i], _ = NewDevice(Config{})
			devices[i].EnableFaults(plan, i)
		}
		farm, err := NewFarmOpts(devices, ix, FarmOptions{VerifyStride: 16})
		if err != nil {
			t.Fatal(err)
		}
		run, runErr := farm.MapReads(reads)
		logs := make([][]FaultEvent, len(devices))
		for i, d := range devices {
			logs[i] = d.FaultLog()
		}
		return outcome{logs: logs, run: run, runErr: runErr}
	}

	a, b := execute(), execute()
	if (a.runErr == nil) != (b.runErr == nil) {
		t.Fatalf("runs diverged: %v vs %v", a.runErr, b.runErr)
	}
	if !reflect.DeepEqual(a.logs, b.logs) {
		t.Fatalf("fault logs diverged:\n%v\n%v", a.logs, b.logs)
	}
	if a.runErr != nil {
		t.Fatalf("seeded run failed on both attempts: %v", a.runErr)
	}
	// The plan must actually have injected something, or this test is vacuous.
	total := 0
	for _, log := range a.logs {
		total += len(log)
	}
	if total == 0 {
		t.Fatal("plan injected no faults")
	}
	if a.run.Checksum != b.run.Checksum {
		t.Fatalf("checksums diverged: %x vs %x", a.run.Checksum, b.run.Checksum)
	}
	// Recovery must be lossless: the final mappings match the CPU path.
	for i, read := range reads {
		want := ix.MapRead(read)
		if a.run.Results[i].Forward != want.Forward || a.run.Results[i].Reverse != want.Reverse {
			t.Fatalf("read %d: recovered result diverges from CPU", i)
		}
	}
}
