package fpga

import (
	"math/rand"
	"testing"

	"bwaver/internal/dna"
	"bwaver/internal/readsim"
)

// mutatedReads returns reads sampled from the reference with exactly mm
// substitutions each, plus purely random reads that map nowhere even
// approximately.
func mutatedReads(t *testing.T, refLen, count, length, mm int) ([]dna.Seq, []int) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: refLen, Seed: 21, RepeatFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	var reads []dna.Seq
	var origins []int
	for i := 0; i < count; i++ {
		pos := rng.Intn(refLen - length)
		seq := ref[pos : pos+length].Clone()
		// Substitute mm distinct positions.
		for _, p := range rng.Perm(length)[:mm] {
			seq[p] = dna.Base((int(seq[p]) + 1 + rng.Intn(3)) % 4)
		}
		reads = append(reads, seq)
		origins = append(origins, pos)
	}
	return reads, origins
}

func TestTwoPassRescuesMutatedReads(t *testing.T) {
	ix := buildIndex(t, 40000)
	d, _ := NewDevice(Config{})
	k, err := d.Program(ix)
	if err != nil {
		t.Fatal(err)
	}
	// Reads with exactly one substitution: exact pass fails, 1-mismatch
	// pass must rescue them (the planted origin must be reachable).
	reads, origins := mutatedReads(t, 40000, 50, 50, 1)
	res, err := k.MapReadsTwoPass(reads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescued == 0 {
		t.Fatal("no reads rescued by the mismatch pass")
	}
	for i := range reads {
		// A 50 bp read with one substitution in a 40 kbp genome cannot
		// match exactly (up to astronomically unlikely coincidences with
		// this fixed seed).
		if res.Exact[i].Mapped() {
			continue
		}
		approx, ok := res.Approx[i]
		if !ok {
			t.Fatalf("read %d missing from approx results", i)
		}
		if !approx.Mapped() {
			t.Fatalf("read %d (origin %d) not rescued at k=1", i, origins[i])
		}
		if best := approx.BestMismatches(); best != 1 {
			t.Fatalf("read %d best stratum %d, want 1", i, best)
		}
	}
	if res.Profile.Reconfig != DefaultReconfigTime {
		t.Errorf("reconfiguration not charged: %v", res.Profile.Reconfig)
	}
	if res.Profile.Total() <= res.Profile.Reconfig {
		t.Error("profile total implausible")
	}
	// The reconfigure event must appear on the timeline.
	found := false
	for _, e := range res.Profile.Events {
		if e.Name == "reconfigure" && e.Duration() == DefaultReconfigTime {
			found = true
		}
	}
	if !found {
		t.Error("reconfigure event missing")
	}
}

func TestTwoPassAllExactSkipsReconfig(t *testing.T) {
	ix := buildIndex(t, 20000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	reads := simReads(t, ix, 100, 40, 1) // all map exactly
	res, err := k.MapReadsTwoPass(reads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Approx) != 0 || res.Rescued != 0 {
		t.Errorf("approx pass ran for fully-exact workload: %+v", res)
	}
	if res.Profile.Reconfig != 0 {
		t.Error("reconfiguration charged although pass 2 never ran")
	}
}

func TestTwoPassRandomReadsStayUnmapped(t *testing.T) {
	ix := buildIndex(t, 20000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	reads := simReads(t, ix, 50, 60, 0) // random 60-mers
	res, err := k.MapReadsTwoPass(reads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescued != 0 {
		t.Errorf("%d random reads rescued at k=1", res.Rescued)
	}
	if len(res.Approx) != len(reads) {
		t.Errorf("approx pass covered %d reads, want all %d", len(res.Approx), len(reads))
	}
}

func TestTwoPassValidation(t *testing.T) {
	ix := buildIndex(t, 5000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	if _, err := k.MapReadsTwoPass(simReads(t, ix, 5, 30, 1), 0); err == nil {
		t.Error("accepted zero mismatch budget")
	}
}

func TestTwoPassCostsMoreThanExact(t *testing.T) {
	ix := buildIndex(t, 30000)
	d, _ := NewDevice(Config{})
	k, _ := d.Program(ix)
	reads, _ := mutatedReads(t, 30000, 100, 50, 1)
	exact, err := k.MapReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	two, err := k.MapReadsTwoPass(reads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if two.Profile.KernelCycles <= exact.Profile.KernelCycles {
		t.Error("two-pass run did not cost more kernel cycles than exact run")
	}
}
