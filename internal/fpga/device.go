// Package fpga simulates the BWaveR hardware kernel of §III-C: a Xilinx
// Alveo U200 holding the succinct BWT structure in on-chip BRAM and running
// the backward search for each query and its reverse complement in two
// parallel pipelines.
//
// The simulator is both functional and timed. Functionally it executes the
// exact same backward search as the CPU path (results are bit-identical,
// which the tests assert — the paper's "without any loss in accuracy").
// For timing it charges cycles according to the architecture the paper
// describes — fully pipelined search stepping one base per cycle per
// pipeline, a fixed per-query overhead for the 512-bit record fetch, a PCIe
// transfer model for index/query/result movement, and a fixed setup overhead
// for the OpenCL runtime — and converts cycles to time at the kernel clock.
// Absolute milliseconds are therefore a calibrated model, not silicon, but
// every relative claim of the paper (speedup growth with read count, search
// time independent of reference size, cost proportional to mapping ratio)
// emerges from executed code. See EXPERIMENTS.md for the calibration notes.
package fpga

import (
	"fmt"
	"log/slog"
	"time"

	"bwaver/internal/core"
)

// Config describes the simulated accelerator card.
type Config struct {
	// ClockHz is the kernel clock; default 300 MHz, a typical SDAccel
	// kernel clock on the UltraScale+ XCU200.
	ClockHz float64
	// BRAMBytes is the on-chip memory capacity available to the BWT
	// structure; default 40 MiB (U200 BRAM + URAM). Programming an index
	// larger than this fails, the capacity gate that limits the paper to
	// references of ~100 M bases.
	BRAMBytes int
	// PCIeBytesPerSec is the host-device transfer bandwidth; default 12 GB/s.
	PCIeBytesPerSec float64
	// SetupTime is the fixed per-run overhead of the OpenCL runtime and
	// buffer management; default 200 ms, calibrated from the paper's
	// small-batch numbers (Table II: 1 M reads take 242 ms although the
	// kernel itself needs only tens of ms).
	SetupTime time.Duration
	// PowerWatts is the board power; default 25 W, the paper's reference
	// value for the Alveo U200.
	PowerWatts float64
	// PEs is the number of processing elements, each mapping independent
	// queries. The paper implements 1 and lists a multi-core architecture
	// as future work; values > 1 model that extension.
	PEs int
	// QueryOverheadCycles is the per-query pipeline overhead (record
	// fetch, reverse-complement preparation, result writeback); default 4.
	QueryOverheadCycles int
	// PipelineFillCycles is the one-off pipeline fill latency; default 64.
	PipelineFillCycles int
	// DoubleBuffer overlaps query streaming with kernel execution (two
	// query buffers ping-pong: while the kernel drains one, the host fills
	// the other), hiding min(transfer, compute) of the run — the memory
	// burst optimisation of §III-C taken one step further.
	DoubleBuffer bool
	// SequentialRank switches the cycle model from the pipelined
	// adder-tree rank of the paper's design (one backward-search step
	// retired per cycle per pipeline) to a naive sequential class scan
	// that walks up to sf blocks per rank query — the ablation DESIGN.md
	// calls out. It quantifies why the hardware structure matters: without
	// the adder tree every step costs levels x sf/2 cycles.
	SequentialRank bool
}

// Paper-aligned defaults.
const (
	defaultClockHz       = 300e6
	defaultBRAMBytes     = 40 << 20
	defaultPCIe          = 12e9
	defaultPower         = 25.0
	defaultQueryOverhead = 4
	defaultPipelineFill  = 64
	// DefaultSetupTime is the default fixed per-run overhead; exported so
	// the bench harness can scale it alongside scaled-down workloads.
	DefaultSetupTime = 200 * time.Millisecond
	// QueryRecordBytes is the 512-bit query record of §III-C.
	QueryRecordBytes = 64
	// ResultRecordBytes carries the two (start, end) row pairs per query.
	ResultRecordBytes = 32
	// MaxQueryBases is the longest read a 512-bit record can carry
	// (paper: "sequences long up to 176 bases").
	MaxQueryBases = 176
)

func (c Config) withDefaults() Config {
	if c.ClockHz == 0 {
		c.ClockHz = defaultClockHz
	}
	if c.BRAMBytes == 0 {
		c.BRAMBytes = defaultBRAMBytes
	}
	if c.PCIeBytesPerSec == 0 {
		c.PCIeBytesPerSec = defaultPCIe
	}
	if c.SetupTime == 0 {
		c.SetupTime = DefaultSetupTime
	}
	if c.PowerWatts == 0 {
		c.PowerWatts = defaultPower
	}
	if c.PEs == 0 {
		c.PEs = 1
	}
	if c.QueryOverheadCycles == 0 {
		c.QueryOverheadCycles = defaultQueryOverhead
	}
	if c.PipelineFillCycles == 0 {
		c.PipelineFillCycles = defaultPipelineFill
	}
	return c
}

func (c Config) validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("fpga: clock %v Hz must be positive", c.ClockHz)
	}
	if c.BRAMBytes <= 0 {
		return fmt.Errorf("fpga: BRAM capacity %d must be positive", c.BRAMBytes)
	}
	if c.PCIeBytesPerSec <= 0 {
		return fmt.Errorf("fpga: PCIe bandwidth %v must be positive", c.PCIeBytesPerSec)
	}
	if c.PEs < 1 {
		return fmt.Errorf("fpga: PE count %d must be >= 1", c.PEs)
	}
	if c.PowerWatts <= 0 {
		return fmt.Errorf("fpga: power %v W must be positive", c.PowerWatts)
	}
	return nil
}

// Device is a simulated accelerator card.
type Device struct {
	cfg Config
	// id identifies the card in fault plans and health reports.
	id int
	// inj, when non-nil, injects simulated faults into the card's runs.
	inj *faultInjector
	// breaker is the card's circuit breaker; it lives on the device, not
	// the farm, so farms programmed with different indexes over the same
	// cards share health state.
	breaker *Breaker
}

// NewDevice creates a device; zero-valued config fields take the
// paper-aligned defaults above.
func NewDevice(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:     cfg,
		breaker: newBreaker(DefaultBreakerThreshold, DefaultBreakerCooldown),
	}, nil
}

// Config returns the resolved device configuration.
func (d *Device) Config() Config { return d.cfg }

// EnableFaults attaches a fault plan to the device under the given device
// ID. A nil plan only assigns the ID (used in health reports). Call before
// the device takes work; not safe to race with running kernels.
func (d *Device) EnableFaults(plan *FaultPlan, deviceID int) {
	d.id = deviceID
	if plan != nil {
		d.inj = newFaultInjector(plan, deviceID)
	}
}

// ID returns the device's identifier (zero unless assigned via EnableFaults).
func (d *Device) ID() int { return d.id }

// Breaker returns the device's circuit breaker.
func (d *Device) Breaker() *Breaker { return d.breaker }

// FaultLog returns the injected-fault event sequence, empty when no fault
// plan is attached. Two devices running the same plan seed over the same
// request sequence produce identical logs — the determinism contract the
// tests pin down.
func (d *Device) FaultLog() []FaultEvent {
	if d.inj == nil {
		return nil
	}
	return d.inj.events()
}

// FaultCounts returns injected-fault counts by stage name.
func (d *Device) FaultCounts() map[string]uint64 {
	if d.inj == nil {
		return map[string]uint64{}
	}
	return d.inj.faultCounts()
}

// transfer returns the modeled PCIe time for n bytes.
func (d *Device) transfer(n int) time.Duration {
	return time.Duration(float64(n) / d.cfg.PCIeBytesPerSec * float64(time.Second))
}

// cyclesToTime converts kernel cycles to modeled time.
func (d *Device) cyclesToTime(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / d.cfg.ClockHz * float64(time.Second))
}

// Program loads a built index onto the device, enforcing the BRAM capacity
// gate, and returns a kernel ready to map reads. The returned profile-ready
// transfer covers the succinct structure, its shared rank table, and the
// prefix-lookup table when one fits; the suffix array stays on the host
// (§III-C: positions are retrieved by the host CPU).
//
// The prefix table is optional hardware: if structure + ftab exceed BRAM
// the kernel degrades to ftab-off with a logged warning instead of failing
// the job — only the succinct structure itself is a hard capacity
// requirement. A degraded kernel runs the plain backward search (still
// bit-identical results) and its cycle model prices every step, matching
// what its fabric would actually do.
func (d *Device) Program(ix *core.Index) (*Kernel, error) {
	structure := ix.StructureBytes()
	if structure > d.cfg.BRAMBytes {
		return nil, fmt.Errorf("fpga: index needs %d bytes of BRAM, device has %d — reference too large for on-chip memory",
			structure, d.cfg.BRAMBytes)
	}
	ftabBytes := ix.FtabBytes()
	useFtab := ftabBytes > 0
	degraded := false
	if useFtab && structure+ftabBytes > d.cfg.BRAMBytes {
		slog.Warn("fpga: prefix table does not fit BRAM, degrading kernel to ftab-off",
			"device", d.id,
			"structure_bytes", structure,
			"ftab_bytes", ftabBytes,
			"bram_bytes", d.cfg.BRAMBytes,
			"ftab_k", ix.FtabK())
		useFtab = false
		degraded = true
		ftabBytes = 0
	}
	resident := structure + ftabBytes
	return &Kernel{
		dev:           d,
		ix:            ix,
		indexBytes:    resident,
		ftabBytes:     ftabBytes,
		useFtab:       useFtab,
		ftabDegraded:  degraded,
		indexTransfer: d.transfer(resident),
	}, nil
}
