package dna

import "fmt"

// PackedSeq stores a DNA sequence at 2 bits per base, 32 bases per uint64
// word, base i in bits [2i%64, 2i%64+2) of word i/32. This is the layout the
// FPGA query record uses (paper §III-C: a 512-bit record holds a read of up
// to 176 bases plus metadata), and also the transport format for serialized
// references.
type PackedSeq struct {
	words []uint64
	n     int
}

// BasesPerWord is the number of 2-bit bases in one 64-bit word.
const BasesPerWord = 32

// Pack converts an unpacked sequence to its 2-bit representation.
func Pack(s Seq) PackedSeq {
	words := make([]uint64, (len(s)+BasesPerWord-1)/BasesPerWord)
	for i, b := range s {
		words[i/BasesPerWord] |= uint64(b&3) << uint((i%BasesPerWord)*2)
	}
	return PackedSeq{words: words, n: len(s)}
}

// NewPackedSeq returns an all-A packed sequence of length n.
func NewPackedSeq(n int) PackedSeq {
	return PackedSeq{words: make([]uint64, (n+BasesPerWord-1)/BasesPerWord), n: n}
}

// Len returns the number of bases.
func (p PackedSeq) Len() int { return p.n }

// Words exposes the raw 64-bit words, for serialization and for the FPGA
// record builder. The last word's unused high bits are zero.
func (p PackedSeq) Words() []uint64 { return p.words }

// Base returns the i-th base.
func (p PackedSeq) Base(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.n))
	}
	return Base((p.words[i/BasesPerWord] >> uint((i%BasesPerWord)*2)) & 3)
}

// SetBase sets the i-th base.
func (p PackedSeq) SetBase(i int, b Base) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.n))
	}
	shift := uint((i % BasesPerWord) * 2)
	w := &p.words[i/BasesPerWord]
	*w = (*w &^ (3 << shift)) | uint64(b&3)<<shift
}

// Unpack converts back to an unpacked sequence.
func (p PackedSeq) Unpack() Seq {
	out := make(Seq, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.Base(i)
	}
	return out
}

// FromWords reconstructs a PackedSeq from raw words; n is the base count.
// It validates that the word slice is exactly the required length and that
// trailing bits are zero, so corrupted serialized data is caught early.
func FromWords(words []uint64, n int) (PackedSeq, error) {
	need := (n + BasesPerWord - 1) / BasesPerWord
	if len(words) != need {
		return PackedSeq{}, fmt.Errorf("dna: packed sequence of %d bases needs %d words, got %d", n, need, len(words))
	}
	if rem := n % BasesPerWord; rem != 0 && need > 0 {
		if words[need-1]>>(uint(rem)*2) != 0 {
			return PackedSeq{}, fmt.Errorf("dna: packed sequence has nonzero bits beyond base %d", n)
		}
	}
	return PackedSeq{words: words, n: n}, nil
}
