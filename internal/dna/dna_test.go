package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromByte(t *testing.T) {
	cases := []struct {
		in   byte
		want Base
		ok   bool
	}{
		{'A', A, true}, {'C', C, true}, {'G', G, true}, {'T', T, true},
		{'a', A, true}, {'c', C, true}, {'g', G, true}, {'t', T, true},
		{'U', T, true}, {'u', T, true},
		{'N', 0, false}, {'$', 0, false}, {0, 0, false}, {' ', 0, false}, {'Z', 0, false},
	}
	for _, tc := range cases {
		got, ok := FromByte(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("FromByte(%q) = %v,%v; want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestBaseByteRoundTrip(t *testing.T) {
	for b := Base(0); b < AlphabetSize; b++ {
		got, ok := FromByte(b.Byte())
		if !ok || got != b {
			t.Errorf("round trip of base %v failed: got %v, ok=%v", b, got, ok)
		}
	}
}

func TestComplement(t *testing.T) {
	want := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, c := range want {
		if b.Complement() != c {
			t.Errorf("Complement(%v) = %v, want %v", b, b.Complement(), c)
		}
		if b.Complement().Complement() != b {
			t.Errorf("complement is not an involution at %v", b)
		}
	}
}

func TestParseSeq(t *testing.T) {
	seq, err := ParseSeq("ACGTacgtU")
	if err != nil {
		t.Fatalf("ParseSeq: %v", err)
	}
	if got, want := seq.String(), "ACGTACGTT"; got != want {
		t.Errorf("ParseSeq round trip = %q, want %q", got, want)
	}
	if _, err := ParseSeq("ACGNT"); err == nil {
		t.Error("ParseSeq accepted 'N'")
	}
	empty, err := ParseSeq("")
	if err != nil || len(empty) != 0 {
		t.Errorf("ParseSeq(\"\") = %v, %v", empty, err)
	}
}

func TestSanitize(t *testing.T) {
	seq, replaced := Sanitize([]byte("ACGNNTX"), A)
	if replaced != 3 {
		t.Errorf("Sanitize replaced %d bytes, want 3", replaced)
	}
	if got, want := seq.String(), "ACGAATA"; got != want {
		t.Errorf("Sanitize = %q, want %q", got, want)
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindromic
		{"AAACCC", "GGGTTT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, tc := range cases {
		got := MustParseSeq(tc.in).ReverseComplement().String()
		if got != tc.want {
			t.Errorf("RC(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq, _ := Sanitize(raw, A)
		return seq.ReverseComplement().ReverseComplement().Equal(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqCountAndGC(t *testing.T) {
	s := MustParseSeq("AACCGGTT")
	for b := Base(0); b < AlphabetSize; b++ {
		if s.Count(b) != 2 {
			t.Errorf("Count(%v) = %d, want 2", b, s.Count(b))
		}
	}
	if gc := s.GC(); gc != 0.5 {
		t.Errorf("GC = %v, want 0.5", gc)
	}
	if gc := (Seq{}).GC(); gc != 0 {
		t.Errorf("GC of empty = %v, want 0", gc)
	}
}

func TestSeqClone(t *testing.T) {
	s := MustParseSeq("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone aliases the original sequence")
	}
}

func randomSeq(rng *rand.Rand, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = Base(rng.Intn(AlphabetSize))
	}
	return s
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 100, 176, 1000} {
		s := randomSeq(rng, n)
		p := Pack(s)
		if p.Len() != n {
			t.Fatalf("Pack len = %d, want %d", p.Len(), n)
		}
		if !p.Unpack().Equal(s) {
			t.Fatalf("pack/unpack round trip failed at n=%d", n)
		}
		for i := 0; i < n; i++ {
			if p.Base(i) != s[i] {
				t.Fatalf("Base(%d) = %v, want %v", i, p.Base(i), s[i])
			}
		}
	}
}

func TestPackedSetBase(t *testing.T) {
	p := NewPackedSeq(70)
	p.SetBase(0, T)
	p.SetBase(33, G)
	p.SetBase(69, C)
	if p.Base(0) != T || p.Base(33) != G || p.Base(69) != C {
		t.Error("SetBase/Base mismatch")
	}
	p.SetBase(33, A)
	if p.Base(33) != A {
		t.Error("SetBase did not clear previous bits")
	}
	// Neighbours must be untouched.
	if p.Base(32) != A || p.Base(34) != A {
		t.Error("SetBase disturbed neighbouring bases")
	}
}

func TestPackedBoundsPanic(t *testing.T) {
	p := NewPackedSeq(4)
	for _, i := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Base(%d) did not panic", i)
				}
			}()
			p.Base(i)
		}()
	}
}

func TestFromWords(t *testing.T) {
	s := MustParseSeq("ACGTACGTA")
	p := Pack(s)
	back, err := FromWords(p.Words(), p.Len())
	if err != nil {
		t.Fatalf("FromWords: %v", err)
	}
	if !back.Unpack().Equal(s) {
		t.Error("FromWords round trip mismatch")
	}
	if _, err := FromWords(p.Words(), 100); err == nil {
		t.Error("FromWords accepted wrong length")
	}
	bad := []uint64{^uint64(0)}
	if _, err := FromWords(bad, 3); err == nil {
		t.Error("FromWords accepted dirty trailing bits")
	}
}

func TestPackedRCViaUnpack(t *testing.T) {
	f := func(raw []byte) bool {
		seq, _ := Sanitize(raw, C)
		p := Pack(seq)
		return p.Unpack().ReverseComplement().Equal(seq.ReverseComplement())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
