// Package dna provides the nucleotide alphabet used throughout BWaveR:
// 2-bit base codes, packed sequences, reverse complements, and validation.
//
// BWaveR maps reads over the four-letter DNA alphabet {A, C, G, T}. The
// paper's succinct structure is optimised for alphabets of 2^N symbols with
// N >= 2, and the sentinel '$' used by the Burrows-Wheeler transform is kept
// outside the alphabet (its position is tracked separately by the wavelet
// tree), so this package deliberately has no code for '$'.
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit nucleotide code. The codes are in lexicographic order so
// that sorting packed sequences matches sorting their ASCII spellings, which
// the FM-index C-array computation relies on.
type Base uint8

const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3

	// AlphabetSize is the number of distinct bases.
	AlphabetSize = 4
)

// Alphabet is the DNA alphabet in lexicographic order.
var Alphabet = [AlphabetSize]byte{'A', 'C', 'G', 'T'}

// baseFromASCII maps ASCII bytes to base codes; 0xFF marks invalid bytes.
var baseFromASCII [256]uint8

func init() {
	for i := range baseFromASCII {
		baseFromASCII[i] = 0xFF
	}
	for code, b := range Alphabet {
		baseFromASCII[b] = uint8(code)
		baseFromASCII[b+'a'-'A'] = uint8(code)
	}
	// RNA uracil maps to T, as the paper's alphabet {A,C,G,T||U} allows.
	baseFromASCII['U'] = uint8(T)
	baseFromASCII['u'] = uint8(T)
}

// FromByte converts an ASCII nucleotide to its 2-bit code.
// It accepts upper- and lower-case letters and maps U to T.
func FromByte(b byte) (Base, bool) {
	v := baseFromASCII[b]
	if v == 0xFF {
		return 0, false
	}
	return Base(v), true
}

// Byte returns the upper-case ASCII spelling of b.
func (b Base) Byte() byte { return Alphabet[b&3] }

// Complement returns the Watson-Crick complement of b (A<->T, C<->G).
// With the code assignment above this is simply 3-b.
func (b Base) Complement() Base { return 3 - (b & 3) }

// String implements fmt.Stringer.
func (b Base) String() string { return string(b.Byte()) }

// Seq is an unpacked DNA sequence, one Base per element. It is the working
// representation for BWT construction and searching; PackedSeq is the
// transport representation used by the FPGA query records.
type Seq []Base

// ParseSeq converts an ASCII string to a Seq, rejecting any byte that is not
// a nucleotide letter. Use Sanitize to replace invalid bytes instead.
func ParseSeq(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		b, ok := FromByte(s[i])
		if !ok {
			return nil, fmt.Errorf("dna: invalid nucleotide %q at position %d", s[i], i)
		}
		out[i] = b
	}
	return out, nil
}

// MustParseSeq is ParseSeq for constant inputs in tests and examples;
// it panics on invalid input.
func MustParseSeq(s string) Seq {
	seq, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// Sanitize converts ASCII to a Seq, replacing every non-nucleotide byte
// (such as the ambiguity code 'N', common in reference FASTA files) with the
// given filler base. It reports how many bytes were replaced.
func Sanitize(s []byte, filler Base) (Seq, int) {
	out := make(Seq, len(s))
	replaced := 0
	for i, raw := range s {
		b, ok := FromByte(raw)
		if !ok {
			b = filler
			replaced++
		}
		out[i] = b
	}
	return out, replaced
}

// String returns the ASCII spelling of the sequence.
func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}

// ReverseComplement returns the reverse complement of s as a new sequence.
// Mapping a read X and its reverse complement RC(X) in the same kernel pass
// is a core feature of the paper's architecture (§III-C).
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}

// ReverseComplementInto is ReverseComplement writing into dst's backing
// array (grown only when its capacity is short) — the allocation-free
// variant batch mappers use with per-worker reusable buffers.
func (s Seq) ReverseComplementInto(dst Seq) Seq {
	if cap(dst) < len(s) {
		dst = make(Seq, len(s))
	} else {
		dst = dst[:len(s)]
	}
	for i, b := range s {
		dst[len(s)-1-i] = b.Complement()
	}
	return dst
}

// Equal reports whether two sequences have identical bases.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Count returns the number of occurrences of base b in s.
func (s Seq) Count(b Base) int {
	n := 0
	for _, x := range s {
		if x == b {
			n++
		}
	}
	return n
}

// GC returns the fraction of G and C bases in s, or 0 for an empty sequence.
func (s Seq) GC() float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s.Count(C)+s.Count(G)) / float64(len(s))
}
