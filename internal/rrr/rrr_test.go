package rrr

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveRank(b []bool, i int) int {
	c := 0
	for _, x := range b[:i] {
		if x {
			c++
		}
	}
	return c
}

func randomBools(rng *rand.Rand, n int, density float64) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < density
	}
	return out
}

// runBools simulates low-entropy BWT-like input: long runs of equal bits.
func runBools(rng *rand.Rand, n int, meanRun int) []bool {
	out := make([]bool, n)
	cur := rng.Intn(2) == 1
	for i := 0; i < n; {
		runLen := 1 + rng.Intn(2*meanRun)
		for j := 0; j < runLen && i < n; j++ {
			out[i] = cur
			i++
		}
		cur = !cur
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{BlockSize: 1, SuperblockFactor: 10},
		{BlockSize: 16, SuperblockFactor: 10},
		{BlockSize: 0, SuperblockFactor: 10},
		{BlockSize: 15, SuperblockFactor: 0},
		{BlockSize: 15, SuperblockFactor: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
	if err := DefaultParams.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestTableFor(t *testing.T) {
	for b := MinBlockSize; b <= MaxBlockSize; b++ {
		tab, err := TableFor(b)
		if err != nil {
			t.Fatalf("TableFor(%d): %v", b, err)
		}
		if len(tab.Permutations) != 1<<uint(b) {
			t.Fatalf("b=%d: %d permutations, want %d", b, len(tab.Permutations), 1<<uint(b))
		}
		// Sorted by class then value; offsets invert correctly.
		for i := 1; i < len(tab.Permutations); i++ {
			ci := bits.OnesCount16(tab.Permutations[i-1])
			cj := bits.OnesCount16(tab.Permutations[i])
			if ci > cj || (ci == cj && tab.Permutations[i-1] >= tab.Permutations[i]) {
				t.Fatalf("b=%d: permutations not sorted at %d", b, i)
			}
		}
		for v := 0; v < 1<<uint(b); v++ {
			c := bits.OnesCount16(uint16(v))
			if tab.Block(c, tab.OffsetOf(uint16(v))) != uint16(v) {
				t.Fatalf("b=%d: offset round trip failed for value %d", b, v)
			}
		}
		// Class runs have binomial(b, c) entries and widths are ceil(log2).
		binom := 1
		for c := 0; c <= b; c++ {
			run := int(tab.ClassOffset[c+1] - tab.ClassOffset[c])
			if run != binom {
				t.Fatalf("b=%d c=%d: run %d, want binomial %d", b, c, run, binom)
			}
			want := int(math.Ceil(math.Log2(float64(run))))
			if run == 1 {
				want = 0
			}
			if tab.Width(c) != want {
				t.Fatalf("b=%d c=%d: width %d, want %d", b, c, tab.Width(c), want)
			}
			binom = binom * (b - c) / (c + 1)
		}
	}
	if _, err := TableFor(1); err == nil {
		t.Error("TableFor(1) should fail")
	}
	if _, err := TableFor(16); err == nil {
		t.Error("TableFor(16) should fail")
	}
}

func TestTableShared(t *testing.T) {
	a, _ := TableFor(15)
	b, _ := TableFor(15)
	if a != b {
		t.Error("TableFor(15) did not return the shared instance")
	}
}

func TestRankMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := []Params{
		{BlockSize: 15, SuperblockFactor: 50},
		{BlockSize: 15, SuperblockFactor: 1},
		{BlockSize: 15, SuperblockFactor: 100},
		{BlockSize: 7, SuperblockFactor: 4},
		{BlockSize: 3, SuperblockFactor: 2},
		{BlockSize: 2, SuperblockFactor: 200},
	}
	lengths := []int{0, 1, 14, 15, 16, 749, 750, 751, 10000}
	for _, p := range params {
		for _, n := range lengths {
			for _, density := range []float64{0, 0.1, 0.5, 1} {
				in := randomBools(rng, n, density)
				s, err := FromBools(in, p)
				if err != nil {
					t.Fatalf("FromBools(n=%d,%+v): %v", n, p, err)
				}
				if s.Len() != n {
					t.Fatalf("Len=%d, want %d", s.Len(), n)
				}
				step := 1
				if n > 2000 {
					step = 53
				}
				for i := 0; i <= n; i += step {
					if got, want := s.Rank1(i), naiveRank(in, i); got != want {
						t.Fatalf("p=%+v n=%d density=%v: Rank1(%d)=%d, want %d", p, n, density, i, got, want)
					}
				}
				if s.Ones() != naiveRank(in, n) {
					t.Fatalf("Ones=%d, want %d", s.Ones(), naiveRank(in, n))
				}
			}
		}
	}
}

func TestRankOnRunInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := runBools(rng, 50000, 40)
	s, err := FromBools(in, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= len(in); i += 37 {
		if got, want := s.Rank1(i), naiveRank(in, i); got != want {
			t.Fatalf("Rank1(%d)=%d, want %d", i, got, want)
		}
	}
}

func TestBitDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomBools(rng, 4001, 0.4)
	s, err := FromBools(in, Params{BlockSize: 11, SuperblockFactor: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range in {
		if s.Bit(i) != want {
			t.Fatalf("Bit(%d)=%v, want %v", i, s.Bit(i), want)
		}
	}
}

func TestSelect1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 100, 7500} {
		in := randomBools(rng, n, 0.3)
		s, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: 10})
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for i, b := range in {
			if b {
				k++
				if got := s.Select1(k); got != i {
					t.Fatalf("n=%d: Select1(%d)=%d, want %d", n, k, got, i)
				}
			}
		}
		if s.Select1(0) != -1 || s.Select1(s.Ones()+1) != -1 {
			t.Error("Select1 out of range should return -1")
		}
	}
}

func TestRankSelectInverseProperty(t *testing.T) {
	f := func(raw []byte, sfRaw uint8) bool {
		in := make([]bool, len(raw)*2)
		for i := range in {
			in[i] = raw[i/2]>>(uint(i)%2)&1 == 1
		}
		sf := int(sfRaw%60) + 1
		s, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: sf})
		if err != nil {
			return false
		}
		for k := 1; k <= s.Ones(); k++ {
			p := s.Select1(k)
			if !s.Bit(p) || s.Rank1(p) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRankBounds(t *testing.T) {
	s, _ := FromBools([]bool{true, false}, DefaultParams)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rank1(%d) did not panic", i)
				}
			}()
			s.Rank1(i)
		}()
	}
}

func TestNegativeLength(t *testing.T) {
	if _, err := New(func(int) bool { return false }, -1, DefaultParams); err == nil {
		t.Error("New accepted negative length")
	}
}

// TestSizeMatchesPaperFormula confirms the implementation's space accounting
// tracks the closed form in §III-B of the paper within rounding slack.
func TestSizeMatchesPaperFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := runBools(rng, 300000, 30)
	for _, p := range []Params{{15, 50}, {15, 100}, {10, 50}, {7, 64}} {
		s, err := FromBools(in, p)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(s.SizeBytes() + s.SharedSizeBytes())
		want := s.PaperFormulaBytes()
		// Allow a few percent of slack for array-boundary rounding and the
		// +1 partial-sum entry.
		if math.Abs(got-want) > 0.05*want+64 {
			t.Errorf("p=%+v: size %v, paper formula %v", p, got, want)
		}
	}
}

// TestCompressionOnLowEntropyInput checks the headline property the paper
// relies on: BWT-like run-structured bit-vectors compress well below the
// plain 1-bit-per-bit representation.
func TestCompressionOnLowEntropyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400000
	in := runBools(rng, n, 60)
	s, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	plain := n / 8
	if s.SizeBytes() >= plain {
		t.Errorf("low-entropy input did not compress: rrr=%dB plain=%dB", s.SizeBytes(), plain)
	}
}

// TestSizeDecreasesWithSf reproduces the Fig. 5 trend at unit scale:
// growing the superblock factor shrinks the structure.
func TestSizeDecreasesWithSf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomBools(rng, 200000, 0.5)
	prev := math.MaxInt
	for _, sf := range []int{25, 50, 100, 200} {
		s, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: sf})
		if err != nil {
			t.Fatal(err)
		}
		if s.SizeBytes() >= prev {
			t.Errorf("sf=%d: size %d did not decrease from %d", sf, s.SizeBytes(), prev)
		}
		prev = s.SizeBytes()
	}
}

func BenchmarkRank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := runBools(rng, 1<<20, 40)
	for _, sf := range []int{50, 100, 200} {
		s, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: sf})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("sf", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Rank1((i * 7919) % (s.Len() + 1))
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
