package rrr

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSequenceSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, p := range []Params{{15, 50}, {15, 1}, {5, 3}, {2, 200}} {
		for _, n := range []int{0, 1, 14, 15, 10000} {
			in := randomBools(rng, n, 0.35)
			orig, err := FromBools(in, p)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			written, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if written != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d, wrote %d", written, buf.Len())
			}
			back, err := ReadSequence(&buf)
			if err != nil {
				t.Fatalf("p=%+v n=%d: %v", p, n, err)
			}
			if back.Len() != n || back.Ones() != orig.Ones() || back.Params() != p {
				t.Fatalf("p=%+v n=%d: metadata changed", p, n)
			}
			for i := 0; i <= n; i += 1 + n/200 {
				if back.Rank1(i) != orig.Rank1(i) {
					t.Fatalf("p=%+v n=%d: Rank1(%d) changed", p, n, i)
				}
			}
		}
	}
}

func TestReadSequenceRejectsCorruption(t *testing.T) {
	in := randomBools(rand.New(rand.NewSource(52)), 2000, 0.5)
	orig, err := FromBools(in, Params{BlockSize: 15, SuperblockFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 10, 27, len(good) / 2, len(good) - 1} {
		if _, err := ReadSequence(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("accepted sequence truncated to %d bytes", cut)
		}
	}
	// Flipping a partial-sum byte must be caught by the consistency check.
	bad := append([]byte(nil), good...)
	// partialSum starts after 28-byte header + classes.
	classBytes := (2000/15 + 1 + 1) / 2
	bad[28+classBytes+5] ^= 0x7F
	if _, err := ReadSequence(bytes.NewReader(bad)); err == nil {
		t.Error("accepted corrupted partial sums")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := runBools(rng, 1<<20, 40)
	b.SetBytes(1 << 17) // bits to bytes
	for i := 0; i < b.N; i++ {
		if _, err := FromBools(in, DefaultParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := runBools(rng, 1<<20, 40)
	s, err := FromBools(in, DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	ones := s.Ones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select1(i%ones + 1)
	}
}
