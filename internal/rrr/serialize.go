package rrr

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization format (little endian):
//
//	magic   uint32  'RRR1'
//	n, b, sf, nBlk, nSuper, offBits  uint32 each
//	classes     [ceil(nBlk/2)]uint8
//	partialSum  [nSuper+1]uint32
//	offsetSum   [nSuper]uint32
//	offsets     [ceil(offBits/64)]uint64
//
// The shared global rank table is not serialized; it is rebuilt from b on
// load, exactly as the FPGA host code regenerates it rather than shipping
// 64 KiB per node.
const sequenceMagic = 0x52525231 // "RRR1"

// WriteTo serializes the sequence. It implements io.WriterTo.
func (s *Sequence) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	head := []uint32{sequenceMagic, uint32(s.n), uint32(s.b), uint32(s.sf),
		uint32(s.nBlk), uint32(s.nSuper), uint32(s.offBits)}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if _, err := cw.Write(s.classes); err != nil {
		return cw.n, err
	}
	for _, arr := range [][]uint32{s.partialSum, s.offsetSum} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, s.offsets); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSequence deserializes a sequence written by WriteTo, validating the
// header against the supported parameter ranges before allocating.
func ReadSequence(r io.Reader) (*Sequence, error) {
	var head [7]uint32
	if err := binary.Read(r, binary.LittleEndian, &head); err != nil {
		return nil, fmt.Errorf("rrr: reading header: %w", err)
	}
	if head[0] != sequenceMagic {
		return nil, fmt.Errorf("rrr: bad magic %#x", head[0])
	}
	n, b, sf := int(head[1]), int(head[2]), int(head[3])
	nBlk, nSuper, offBits := int(head[4]), int(head[5]), int(head[6])
	p := Params{BlockSize: b, SuperblockFactor: sf}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nBlk != (n+b-1)/b || nSuper != (nBlk+sf-1)/sf {
		return nil, fmt.Errorf("rrr: inconsistent header: n=%d b=%d sf=%d nBlk=%d nSuper=%d", n, b, sf, nBlk, nSuper)
	}
	if offBits < 0 || offBits > n+nBlk*4 {
		return nil, fmt.Errorf("rrr: implausible offset length %d bits for %d-bit sequence", offBits, n)
	}
	table, err := TableFor(b)
	if err != nil {
		return nil, err
	}
	s := &Sequence{
		n: n, b: b, sf: sf, nBlk: nBlk, nSuper: nSuper,
		table:      table,
		classes:    make([]uint8, (nBlk+1)/2),
		partialSum: make([]uint32, nSuper+1),
		offsetSum:  make([]uint32, nSuper),
		offsets:    make([]uint64, (offBits+63)/64),
		offBits:    offBits,
	}
	if _, err := io.ReadFull(r, s.classes); err != nil {
		return nil, fmt.Errorf("rrr: reading classes: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, s.partialSum); err != nil {
		return nil, fmt.Errorf("rrr: reading partial sums: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, s.offsetSum); err != nil {
		return nil, fmt.Errorf("rrr: reading offset sums: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, s.offsets); err != nil {
		return nil, fmt.Errorf("rrr: reading offsets: %w", err)
	}
	// Integrity: every stored class must be <= b; the per-superblock
	// partial sums and offset-sum entries must agree with the class array;
	// and the offset widths of all blocks must sum to offBits. This makes
	// corrupted inputs fail loudly instead of answering wrong ranks.
	ones, width := 0, 0
	for blk := 0; blk < nBlk; blk++ {
		if blk%sf == 0 {
			super := blk / sf
			if int(s.partialSum[super]) != ones {
				return nil, fmt.Errorf("rrr: partial sum of superblock %d is %d, classes say %d",
					super, s.partialSum[super], ones)
			}
			if int(s.offsetSum[super]) != width {
				return nil, fmt.Errorf("rrr: offset sum of superblock %d is %d, classes say %d",
					super, s.offsetSum[super], width)
			}
		}
		c := s.class(blk)
		if c > b {
			return nil, fmt.Errorf("rrr: block %d has class %d > b=%d", blk, c, b)
		}
		if w := table.Width(c); w > 0 {
			if width+w > offBits {
				return nil, fmt.Errorf("rrr: offset fields overrun the offset bit-vector at block %d", blk)
			}
			run := int(table.ClassOffset[c+1] - table.ClassOffset[c])
			if off := int(readBits(s.offsets, width, w)); off >= run {
				return nil, fmt.Errorf("rrr: block %d stores offset %d for class %d (only %d permutations)",
					blk, off, c, run)
			}
		}
		ones += c
		width += table.Width(c)
	}
	if int(s.partialSum[nSuper]) != ones {
		return nil, fmt.Errorf("rrr: total partial sum %d, classes say %d", s.partialSum[nSuper], ones)
	}
	if width != offBits {
		return nil, fmt.Errorf("rrr: offset bits %d do not match classes (want %d)", offBits, width)
	}
	// The last block's class cannot exceed the bits actually present.
	if nBlk > 0 {
		if rem := n - (nBlk-1)*b; s.class(nBlk-1) > rem {
			return nil, fmt.Errorf("rrr: final block class %d exceeds its %d bits", s.class(nBlk-1), rem)
		}
	}
	return s, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
