package rrr

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// GlobalRankTable is the shared permutation table of the paper (§III-B,
// Fig. 3): all 2^b possible blocks of b bits, sorted by class (popcount) and
// then in ascending value order, together with the class-offset array that
// points at the first permutation of each class.
//
// The paper stores this table once and shares it among the RRR sequences of
// all wavelet-tree nodes; here the table is interned per block size in a
// package-level cache so every Sequence with the same b shares one instance.
type GlobalRankTable struct {
	B int // block size in bits

	// Permutations holds the 2^b block values sorted by (class, value).
	Permutations []uint16
	// ClassOffset[c] is the index in Permutations of the first block with
	// class c; ClassOffset[b+1] == len(Permutations).
	ClassOffset []uint32
	// offsetOf[v] is the position of block value v within its class run,
	// the inverse mapping used during encoding.
	offsetOf []uint16
	// width[c] is ceil(log2(binomial(b, c))), the number of offset bits a
	// block of class c occupies.
	width []uint8

	// classSum and widthSum are derived lookup tables over one packed
	// classes byte (two 4-bit classes, low nibble first): the popcount sum
	// and offset-width sum of both blocks. They let Rank1's superblock scan
	// consume two blocks per iteration instead of one. Derived at build
	// time, they are not part of the structure's accounted size.
	classSum [256]uint8
	widthSum [256]uint16
}

// MinBlockSize and MaxBlockSize bound the supported block sizes. The upper
// bound of 15 comes from the paper's layout: classes are stored in 4-bit
// fields (values 0..15) and permutations in 16-bit fields.
const (
	MinBlockSize = 2
	MaxBlockSize = 15
)

var (
	tableMu    sync.Mutex
	tableCache = map[int]*GlobalRankTable{}
)

// TableFor returns the shared global rank table for block size b, building
// it on first use.
func TableFor(b int) (*GlobalRankTable, error) {
	if b < MinBlockSize || b > MaxBlockSize {
		return nil, fmt.Errorf("rrr: block size %d out of range [%d,%d]", b, MinBlockSize, MaxBlockSize)
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[b]; ok {
		return t, nil
	}
	t := buildTable(b)
	tableCache[b] = t
	return t, nil
}

func buildTable(b int) *GlobalRankTable {
	n := 1 << uint(b)
	perms := make([]uint16, n)
	for i := range perms {
		perms[i] = uint16(i)
	}
	sort.Slice(perms, func(i, j int) bool {
		ci, cj := bits.OnesCount16(perms[i]), bits.OnesCount16(perms[j])
		if ci != cj {
			return ci < cj
		}
		return perms[i] < perms[j]
	})

	classOffset := make([]uint32, b+2)
	offsetOf := make([]uint16, n)
	prevClass := -1
	for i, v := range perms {
		c := bits.OnesCount16(v)
		for prevClass < c {
			prevClass++
			classOffset[prevClass] = uint32(i)
		}
		offsetOf[v] = uint16(uint32(i) - classOffset[c])
	}
	for prevClass < b+1 {
		prevClass++
		classOffset[prevClass] = uint32(n)
	}

	width := make([]uint8, b+1)
	for c := 0; c <= b; c++ {
		count := classOffset[c+1] - classOffset[c] // == binomial(b, c)
		width[c] = uint8(bits.Len32(count - 1))    // ceil(log2(count)); 0 when count==1
	}
	t := &GlobalRankTable{
		B:            b,
		Permutations: perms,
		ClassOffset:  classOffset,
		offsetOf:     offsetOf,
		width:        width,
	}
	for v := 0; v < 256; v++ {
		lo, hi := v&0xF, v>>4
		t.classSum[v] = uint8(lo + hi)
		// Nibbles above b never occur for this block size; leave their
		// width sums zero rather than index past width.
		if lo <= b && hi <= b {
			t.widthSum[v] = uint16(width[lo]) + uint16(width[hi])
		}
	}
	return t
}

// Width returns the offset-field width in bits for a block of class c.
func (t *GlobalRankTable) Width(c int) int { return int(t.width[c]) }

// OffsetOf returns the position of block value v within its class run.
func (t *GlobalRankTable) OffsetOf(v uint16) int { return int(t.offsetOf[v]) }

// Block reconstructs the block value for (class, offset).
func (t *GlobalRankTable) Block(class, offset int) uint16 {
	return t.Permutations[int(t.ClassOffset[class])+offset]
}

// SizeBytes is the memory the shared table contributes: the paper counts
// 2^(b+1) bytes for the permutations plus the class-offset array.
func (t *GlobalRankTable) SizeBytes() int {
	return len(t.Permutations)*2 + len(t.ClassOffset)*4
}
