package rrr

import (
	"bytes"
	"testing"
)

// FuzzRank checks rank against a naive count for arbitrary bit patterns and
// parameters — the core correctness contract of the whole repository.
func FuzzRank(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint8(15), uint8(50))
	f.Add([]byte{}, uint8(2), uint8(1))
	f.Add([]byte{0x01}, uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, bRaw, sfRaw uint8) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		b := int(bRaw)%(MaxBlockSize-MinBlockSize+1) + MinBlockSize
		sf := int(sfRaw)%128 + 1
		bits := make([]bool, len(raw)*8)
		for i := range bits {
			bits[i] = raw[i/8]>>(uint(i)%8)&1 == 1
		}
		s, err := FromBools(bits, Params{BlockSize: b, SuperblockFactor: sf})
		if err != nil {
			t.Fatalf("valid params rejected: %v", err)
		}
		count := 0
		for i, bit := range bits {
			if got := s.Rank1(i); got != count {
				t.Fatalf("b=%d sf=%d: Rank1(%d)=%d, want %d", b, sf, i, got, count)
			}
			if s.Bit(i) != bit {
				t.Fatalf("b=%d sf=%d: Bit(%d) wrong", b, sf, i)
			}
			if bit {
				count++
			}
		}
		if s.Rank1(len(bits)) != count || s.Ones() != count {
			t.Fatalf("total rank wrong")
		}
	})
}

// FuzzSerialization checks that ReadSequence never panics on corrupted
// input and that valid serializations round-trip exactly.
func FuzzSerialization(f *testing.F) {
	orig, err := FromBools([]bool{true, false, true, true, false}, Params{BlockSize: 5, SuperblockFactor: 2})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if _, err := orig.WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSequence(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever deserialized must be internally consistent: ranks are
		// monotone and bounded.
		prev := 0
		for i := 0; i <= s.Len(); i += 1 + s.Len()/64 {
			r := s.Rank1(i)
			if r < prev || r > i {
				t.Fatalf("inconsistent rank %d at %d (prev %d)", r, i, prev)
			}
			prev = r
		}
	})
}
