// Package rrr implements the succinct bit-vector of Raman, Raman and Rao as
// specialised by the BWaveR paper (§III-B, Fig. 3, Algorithm 1).
//
// A bit sequence B[0,N) is split into blocks of b bits, grouped into
// superblocks of sf blocks (sf is the "superblock factor"). Per block the
// structure stores a 4-bit class (the block's popcount) and a variable-width
// offset identifying the block within its class; per superblock it stores
// the running rank (partial sum) and the bit position of the superblock's
// first offset field. All blocks of the same size share one global rank
// table of sorted permutations. Rank costs O(sf); space approaches the
// zero-order entropy of the sequence, which is what makes BWT sequences —
// full of symbol runs — so compressible.
package rrr

import (
	"errors"
	"fmt"
	"math/bits"
)

// Params selects the time/space trade-off of a Sequence.
type Params struct {
	// BlockSize is b, the bits per block (paper hardware fixes b = 15).
	BlockSize int
	// SuperblockFactor is sf, the blocks per superblock (paper uses >= 50).
	SuperblockFactor int
}

// Validate checks the parameters against the supported ranges.
func (p Params) Validate() error {
	if p.BlockSize < MinBlockSize || p.BlockSize > MaxBlockSize {
		return fmt.Errorf("rrr: block size %d out of range [%d,%d]", p.BlockSize, MinBlockSize, MaxBlockSize)
	}
	if p.SuperblockFactor < 1 {
		return fmt.Errorf("rrr: superblock factor %d must be >= 1", p.SuperblockFactor)
	}
	return nil
}

// DefaultParams are the parameters the paper fixes for its hardware
// implementation: b = 15, sf = 50.
var DefaultParams = Params{BlockSize: 15, SuperblockFactor: 50}

// Sequence is an immutable RRR-encoded bit-vector. It is safe for
// concurrent readers.
type Sequence struct {
	n      int // number of bits
	b      int
	sf     int
	nBlk   int // ceil(n/b)
	nSuper int // ceil(nBlk/sf)

	table *GlobalRankTable

	// classes holds one 4-bit class per block, two per byte, low nibble
	// first — exactly the paper's "array of N/b 4-bit fields".
	classes []uint8
	// partialSum[s] is the rank (number of 1s) before superblock s;
	// partialSum[nSuper] is the total.
	partialSum []uint32
	// offsets is the variable-width offset bit-vector, LSB-first in words.
	offsets []uint64
	offBits int
	// offsetSum[s] is the bit position in offsets of the first field of
	// superblock s (the paper's "set sum" array).
	offsetSum []uint32
}

var errTooLong = errors.New("rrr: sequence longer than 2^32-1 ones/offset bits unsupported")

// BitSource yields bit i of the input; it is how builders avoid
// materialising a []bool for multi-megabyte inputs.
type BitSource func(i int) bool

// New encodes n bits from src with the given parameters.
func New(src BitSource, n int, p Params) (*Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("rrr: negative length %d", n)
	}
	table, err := TableFor(p.BlockSize)
	if err != nil {
		return nil, err
	}
	b, sf := p.BlockSize, p.SuperblockFactor
	nBlk := (n + b - 1) / b
	nSuper := (nBlk + sf - 1) / sf

	s := &Sequence{
		n: n, b: b, sf: sf, nBlk: nBlk, nSuper: nSuper,
		table:      table,
		classes:    make([]uint8, (nBlk+1)/2),
		partialSum: make([]uint32, nSuper+1),
		offsetSum:  make([]uint32, nSuper),
	}

	// First pass: classes, partial sums, and total offset width.
	totalOnes := uint64(0)
	totalOffBits := uint64(0)
	for blk := 0; blk < nBlk; blk++ {
		if blk%sf == 0 {
			if totalOnes > 1<<32-1 || totalOffBits > 1<<32-1 {
				return nil, errTooLong
			}
			s.partialSum[blk/sf] = uint32(totalOnes)
			s.offsetSum[blk/sf] = uint32(totalOffBits)
		}
		v := blockValue(src, blk, b, n)
		c := bits.OnesCount16(v)
		s.setClass(blk, c)
		totalOnes += uint64(c)
		totalOffBits += uint64(table.Width(c))
	}
	if totalOnes > 1<<32-1 || totalOffBits > 1<<32-1 {
		return nil, errTooLong
	}
	s.partialSum[nSuper] = uint32(totalOnes)
	s.offBits = int(totalOffBits)
	s.offsets = make([]uint64, (totalOffBits+63)/64)

	// Second pass: write the offset fields.
	pos := 0
	for blk := 0; blk < nBlk; blk++ {
		v := blockValue(src, blk, b, n)
		c := bits.OnesCount16(v)
		w := table.Width(c)
		if w > 0 {
			writeBits(s.offsets, pos, uint64(table.OffsetOf(v)), w)
		}
		pos += w
	}
	return s, nil
}

// FromBools encodes a bool slice.
func FromBools(bitsIn []bool, p Params) (*Sequence, error) {
	return New(func(i int) bool { return bitsIn[i] }, len(bitsIn), p)
}

// blockValue extracts block blk as a b-bit LSB-first value, zero-padded past
// the end of the sequence.
func blockValue(src BitSource, blk, b, n int) uint16 {
	var v uint16
	base := blk * b
	end := base + b
	if end > n {
		end = n
	}
	for i := base; i < end; i++ {
		if src(i) {
			v |= 1 << uint(i-base)
		}
	}
	return v
}

func (s *Sequence) setClass(blk, c int) {
	if blk%2 == 0 {
		s.classes[blk/2] |= uint8(c)
	} else {
		s.classes[blk/2] |= uint8(c) << 4
	}
}

func (s *Sequence) class(blk int) int {
	v := s.classes[blk/2]
	if blk%2 == 1 {
		v >>= 4
	}
	return int(v & 0xF)
}

// writeBits stores the low w bits of v at bit position pos (LSB-first).
func writeBits(words []uint64, pos int, v uint64, w int) {
	wi, bi := pos/64, uint(pos%64)
	words[wi] |= v << bi
	if int(bi)+w > 64 {
		words[wi+1] |= v >> (64 - bi)
	}
}

// readBits loads w bits from bit position pos (LSB-first), w <= 16.
func readBits(words []uint64, pos int, w int) uint64 {
	wi, bi := pos/64, uint(pos%64)
	v := words[wi] >> bi
	if int(bi)+w > 64 {
		v |= words[wi+1] << (64 - bi)
	}
	return v & (1<<uint(w) - 1)
}

// Len returns the number of bits in the sequence.
func (s *Sequence) Len() int { return s.n }

// Ones returns the total number of set bits.
func (s *Sequence) Ones() int { return int(s.partialSum[s.nSuper]) }

// Params returns the encoding parameters.
func (s *Sequence) Params() Params {
	return Params{BlockSize: s.b, SuperblockFactor: s.sf}
}

// Rank1 returns the number of 1 bits strictly before position i
// (prefix-exclusive, zero-based). It is Algorithm 1 of the paper: resolve
// the enclosing superblock's partial sum, add the classes of the preceding
// blocks, then decode the current block through the global rank table and
// popcount its prefix.
func (s *Sequence) Rank1(i int) int {
	if i < 0 || i > s.n {
		panic(fmt.Sprintf("rrr: rank position %d out of range [0,%d]", i, s.n))
	}
	sb := s.b * s.sf
	if i%sb == 0 {
		return int(s.partialSum[i/sb])
	}
	super := i / sb
	count := int(s.partialSum[super])
	blk := i / s.b
	if i%s.b == 0 {
		j := super * s.sf
		if j&1 == 1 && j < blk {
			count += int(s.classes[j/2] >> 4)
			j++
		}
		for ; j+2 <= blk; j += 2 {
			count += int(s.table.classSum[s.classes[j/2]])
		}
		if j < blk {
			count += int(s.classes[j/2] & 0xF)
		}
		return count
	}
	// Scan the preceding blocks' classes two at a time through the packed
	// byte LUTs; superblocks start on even block indexes only when sf is
	// even, so handle a stray nibble at either end.
	offPos := int(s.offsetSum[super])
	j := super * s.sf
	if j&1 == 1 && j < blk {
		c := int(s.classes[j/2] >> 4)
		count += c
		offPos += int(s.table.width[c])
		j++
	}
	for ; j+2 <= blk; j += 2 {
		v := s.classes[j/2]
		count += int(s.table.classSum[v])
		offPos += int(s.table.widthSum[v])
	}
	if j < blk {
		c := int(s.classes[j/2] & 0xF)
		count += c
		offPos += int(s.table.width[c])
	}
	c := s.class(blk)
	var v uint16
	if w := s.table.Width(c); w > 0 {
		v = s.table.Block(c, int(readBits(s.offsets, offPos, w)))
	} else {
		v = s.table.Block(c, 0)
	}
	count += bits.OnesCount16(v & (1<<uint(i%s.b) - 1))
	return count
}

// Rank0 returns the number of 0 bits strictly before position i.
func (s *Sequence) Rank0(i int) int { return i - s.Rank1(i) }

// Bit returns bit i, decoded through the global rank table.
func (s *Sequence) Bit(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("rrr: index %d out of range [0,%d)", i, s.n))
	}
	blk := i / s.b
	super := blk / s.sf
	offPos := int(s.offsetSum[super])
	for j := super * s.sf; j < blk; j++ {
		offPos += s.table.Width(s.class(j))
	}
	c := s.class(blk)
	var v uint16
	if w := s.table.Width(c); w > 0 {
		v = s.table.Block(c, int(readBits(s.offsets, offPos, w)))
	} else {
		v = s.table.Block(c, 0)
	}
	return v>>uint(i%s.b)&1 == 1
}

// Select1 returns the position of the k-th set bit (k >= 1), or -1 if there
// are fewer than k ones. Superblock search is binary over the partial sums;
// within a superblock it scans classes and decodes one block.
func (s *Sequence) Select1(k int) int {
	if k <= 0 || k > s.Ones() {
		return -1
	}
	lo, hi := 0, s.nSuper-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(s.partialSum[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(s.partialSum[lo])
	offPos := int(s.offsetSum[lo])
	for blk := lo * s.sf; blk < s.nBlk; blk++ {
		c := s.class(blk)
		if rem <= c {
			w := s.table.Width(c)
			var v uint16
			if w > 0 {
				v = s.table.Block(c, int(readBits(s.offsets, offPos, w)))
			} else {
				v = s.table.Block(c, 0)
			}
			for bit := 0; bit < s.b; bit++ {
				if v>>uint(bit)&1 == 1 {
					rem--
					if rem == 0 {
						return blk*s.b + bit
					}
				}
			}
		}
		rem -= c
		offPos += s.table.Width(c)
	}
	return -1
}

// OffsetBits returns lambda, the total length in bits of the offset
// bit-vector — the entropy-dependent part of the structure's size.
func (s *Sequence) OffsetBits() int { return s.offBits }

// SizeBytes returns the actual memory footprint of this sequence, excluding
// the shared global rank table (use SharedSizeBytes for that), matching how
// the paper accounts space when many wavelet nodes share one table.
func (s *Sequence) SizeBytes() int {
	return len(s.classes) + len(s.partialSum)*4 + len(s.offsetSum)*4 + (s.offBits+7)/8 + 3*4
}

// SharedSizeBytes returns the size of the shared global rank table.
func (s *Sequence) SharedSizeBytes() int { return s.table.SizeBytes() }

// PaperFormulaBytes evaluates the closed-form size expression from §III-B:
//
//	(sf+16)N/(2·sf·b) + 2^(b+1) + 4b + 7 + lambda/8
//
// It is used by tests to confirm the implementation matches the paper's
// space accounting (up to rounding of the partial arrays).
func (s *Sequence) PaperFormulaBytes() float64 {
	n := float64(s.n)
	b := float64(s.b)
	sf := float64(s.sf)
	return (sf+16)*n/(2*sf*b) + float64(int(1)<<uint(s.b+1)) + 4*b + 7 + float64(s.offBits)/8
}
