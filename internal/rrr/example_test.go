package rrr_test

import (
	"fmt"
	"log"

	"bwaver/internal/rrr"
)

// ExampleSequence_Rank1 encodes a small bit-vector with the paper's
// parameters and answers a rank query.
func ExampleSequence_Rank1() {
	bits := []bool{true, false, true, true, false, false, true, false}
	s, err := rrr.FromBools(bits, rrr.Params{BlockSize: 4, SuperblockFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ones in first 5 bits:", s.Rank1(5))
	fmt.Println("total ones:", s.Ones())
	// Output:
	// ones in first 5 bits: 3
	// total ones: 4
}
