// Package stats provides the small descriptive-statistics toolkit the
// examples and benches share: summaries (mean/stddev/percentiles) and
// fixed-width histograms with terminal rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, StdDev float64
	Median       float64
	P5, P95      float64
}

// Summarize computes a Summary; it returns the zero value for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Median: Percentile(sorted, 50),
		P5:     Percentile(sorted, 5),
		P95:    Percentile(sorted, 95),
	}
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// sample using linear interpolation. It panics on an unsorted hint only in
// the sense of returning nonsense; callers sort first (Summarize does).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width-bucket histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count samples outside [Min, Max).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(min, max float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: bucket count %d must be >= 1", buckets)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // exact-max float rounding
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded samples, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BucketBounds returns bucket i's [lo, hi) range.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*w, h.Min + float64(i+1)*w
}

// Render writes a terminal bar chart, one line per bucket, bars scaled to
// width characters.
func (h *Histogram) Render(w io.Writer, width int) {
	if width < 1 {
		width = 40
	}
	peak := 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := strings.Repeat("#", c*width/peak)
		fmt.Fprintf(w, "  [%8.1f,%8.1f) %9d %s\n", lo, hi, c, bar)
	}
	if h.Under > 0 || h.Over > 0 {
		fmt.Fprintf(w, "  out of range: %d under, %d over\n", h.Under, h.Over)
	}
}
