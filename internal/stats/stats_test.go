package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeFixed(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Errorf("single summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {-5, 10}, {150, 40},
		{50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P5 <= s.Median && s.Median <= s.P95 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("out of range: under=%d over=%d", h.Under, h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Errorf("BucketBounds(2) = %v,%v", lo, hi)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("accepted zero buckets")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewHistogram(9, 2, 3); err == nil {
		t.Error("accepted inverted range")
	}
}

func TestHistogramCoversAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, _ := NewHistogram(-3, 3, 12)
	for i := 0; i < 10000; i++ {
		h.Add(rng.NormFloat64())
	}
	inBuckets := 0
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets+h.Under+h.Over != h.Total() {
		t.Error("samples lost")
	}
	var sb strings.Builder
	h.Render(&sb, 40)
	if strings.Count(sb.String(), "\n") < 12 {
		t.Error("render incomplete")
	}
}

func TestRenderEmptyHistogram(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	var sb strings.Builder
	h.Render(&sb, 0) // width <= 0 defaults
	if sb.Len() == 0 {
		t.Error("no output")
	}
}
