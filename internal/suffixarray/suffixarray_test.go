package suffixarray

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildNaive sorts suffixes directly; the ground truth for everything else.
func buildNaive(text []uint8) []int32 {
	n := len(text) + 1
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(x, y int) bool {
		return compareSuffixes(text, int(sa[x]), int(sa[y])) < 0
	})
	return sa
}

func equalSA(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomText(rng *rand.Rand, n, sigma int) []uint8 {
	t := make([]uint8, n)
	for i := range t {
		t[i] = uint8(rng.Intn(sigma))
	}
	return t
}

func TestBuildFixedCases(t *testing.T) {
	cases := []struct {
		text  string
		sigma int
	}{
		{"", 4},
		{"A", 4},
		{"AAAA", 4},
		{"ABAB", 4},
		{"BANANA", 26},
		{"MISSISSIPPI", 26},
		{"ACGTACGTACGT", 26},
		{"GATTACA", 26},
		{"ABRACADABRA", 26},
	}
	for _, tc := range cases {
		text := make([]uint8, len(tc.text))
		for i := range tc.text {
			text[i] = tc.text[i] - 'A'
		}
		want := buildNaive(text)
		got, err := Build(text, tc.sigma)
		if err != nil {
			t.Fatalf("Build(%q): %v", tc.text, err)
		}
		if !equalSA(got, want) {
			t.Errorf("Build(%q) = %v, want %v", tc.text, got, want)
		}
		if err := Validate(text, got); err != nil {
			t.Errorf("Validate(%q): %v", tc.text, err)
		}
		got2, err := BuildDoubling(text, tc.sigma)
		if err != nil {
			t.Fatalf("BuildDoubling(%q): %v", tc.text, err)
		}
		if !equalSA(got2, want) {
			t.Errorf("BuildDoubling(%q) = %v, want %v", tc.text, got2, want)
		}
	}
}

func TestBuildMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, sigma := range []int{1, 2, 4, 8, 250} {
		for _, n := range []int{0, 1, 2, 3, 10, 100, 500} {
			for rep := 0; rep < 5; rep++ {
				text := randomText(rng, n, sigma)
				want := buildNaive(text)
				got, err := Build(text, sigma)
				if err != nil {
					t.Fatalf("sigma=%d n=%d: %v", sigma, n, err)
				}
				if !equalSA(got, want) {
					t.Fatalf("sigma=%d n=%d rep=%d: SA-IS mismatch\ntext=%v\ngot= %v\nwant=%v",
						sigma, n, rep, text, got, want)
				}
			}
		}
	}
}

func TestBuildRepetitiveInputs(t *testing.T) {
	// Repetitive texts stress the recursion and LMS naming paths of SA-IS.
	patterns := [][]uint8{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{0, 1, 0, 1, 0, 1, 0, 1, 0},
		{1, 0, 1, 0, 1, 0},
		{2, 1, 0, 2, 1, 0, 2, 1, 0},
		{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2},
		{3, 3, 2, 2, 1, 1, 0, 0},
	}
	for _, text := range patterns {
		// Tile each pattern to several lengths.
		for _, reps := range []int{1, 7, 33} {
			tiled := make([]uint8, 0, len(text)*reps)
			for r := 0; r < reps; r++ {
				tiled = append(tiled, text...)
			}
			got, err := Build(tiled, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !equalSA(got, buildNaive(tiled)) {
				t.Fatalf("SA-IS wrong on repetitive input %v x%d", text, reps)
			}
		}
	}
}

func TestBuildAgreementProperty(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]uint8, len(raw))
		for i, r := range raw {
			text[i] = r & 3
		}
		a, err1 := Build(text, 4)
		b, err2 := BuildDoubling(text, 4)
		return err1 == nil && err2 == nil && equalSA(a, b) && Validate(text, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBuildLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	text := randomText(rng, 200000, 4)
	sa, err := Build(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Full O(n^2) validation is too slow; check the permutation property and
	// sorted order on sampled adjacent pairs.
	seen := make([]bool, len(sa))
	for _, p := range sa {
		if seen[p] {
			t.Fatal("duplicate SA entry")
		}
		seen[p] = true
	}
	for i := 1; i < len(sa); i += 173 {
		if compareSuffixes(text, int(sa[i-1]), int(sa[i])) >= 0 {
			t.Fatalf("suffixes out of order at rank %d", i)
		}
	}
	// Cross-check against the independent doubling implementation.
	sa2, err := BuildDoubling(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSA(sa, sa2) {
		t.Fatal("SA-IS and doubling disagree on 200k random text")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]uint8{0, 4}, 4); err == nil {
		t.Error("accepted out-of-alphabet symbol")
	}
	if _, err := Build(nil, 0); err == nil {
		t.Error("accepted sigma=0")
	}
	if _, err := Build(nil, 300); err == nil {
		t.Error("accepted sigma>256")
	}
	if _, err := BuildDoubling([]uint8{9}, 4); err == nil {
		t.Error("doubling accepted out-of-alphabet symbol")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	text := []uint8{0, 1, 2, 3, 0, 1}
	sa, err := Build(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(text, sa); err != nil {
		t.Fatalf("valid SA rejected: %v", err)
	}
	// Swap two entries.
	bad := append([]int32(nil), sa...)
	bad[2], bad[3] = bad[3], bad[2]
	if Validate(text, bad) == nil {
		t.Error("Validate accepted swapped entries")
	}
	// Duplicate an entry.
	bad = append([]int32(nil), sa...)
	bad[1] = bad[2]
	if Validate(text, bad) == nil {
		t.Error("Validate accepted duplicate entries")
	}
	// Wrong length.
	if Validate(text, sa[:len(sa)-1]) == nil {
		t.Error("Validate accepted truncated SA")
	}
	// Out-of-range entry.
	bad = append([]int32(nil), sa...)
	bad[4] = 99
	if Validate(text, bad) == nil {
		t.Error("Validate accepted out-of-range entry")
	}
}

func BenchmarkSuffixArrayAlgos(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	text := randomText(rng, 1<<18, 4)
	b.Run("sais", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(text, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("doubling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildDoubling(text, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dc3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildDC3(text, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestBuildDC3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, sigma := range []int{1, 2, 4, 250} {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 10, 100, 500} {
			for rep := 0; rep < 4; rep++ {
				text := randomText(rng, n, sigma)
				want := buildNaive(text)
				got, err := BuildDC3(text, sigma)
				if err != nil {
					t.Fatalf("sigma=%d n=%d: %v", sigma, n, err)
				}
				if !equalSA(got, want) {
					t.Fatalf("sigma=%d n=%d rep=%d: DC3 mismatch\ntext=%v\ngot= %v\nwant=%v",
						sigma, n, rep, text, got, want)
				}
			}
		}
	}
}

func TestThreeAlgorithmsAgree(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]uint8, len(raw))
		for i, r := range raw {
			text[i] = r & 3
		}
		a, err1 := Build(text, 4)
		b, err2 := BuildDoubling(text, 4)
		c, err3 := BuildDC3(text, 4)
		return err1 == nil && err2 == nil && err3 == nil && equalSA(a, b) && equalSA(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuildDC3Repetitive(t *testing.T) {
	for _, pattern := range [][]uint8{
		{0}, {0, 0, 0}, {0, 1}, {1, 0}, {2, 1, 0}, {0, 1, 2, 3},
	} {
		for _, reps := range []int{1, 5, 50} {
			var text []uint8
			for r := 0; r < reps; r++ {
				text = append(text, pattern...)
			}
			got, err := BuildDC3(text, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !equalSA(got, buildNaive(text)) {
				t.Fatalf("DC3 wrong on %v x%d", pattern, reps)
			}
		}
	}
}

func TestBuildDC3Large(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	text := randomText(rng, 150000, 4)
	a, err := Build(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDC3(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSA(a, b) {
		t.Fatal("SA-IS and DC3 disagree on 150k text")
	}
}

func TestBuildDC3Errors(t *testing.T) {
	if _, err := BuildDC3([]uint8{0, 9}, 4); err == nil {
		t.Error("accepted out-of-alphabet symbol")
	}
	if _, err := BuildDC3(nil, 0); err == nil {
		t.Error("accepted sigma=0")
	}
}
