// Package suffixarray builds suffix arrays for the BWT stage of BWaveR.
//
// The paper's host pipeline (§III-D step 1) computes the suffix array and
// BWT of the reference before encoding. This package provides three
// independent constructions that cross-check one another — linear-time
// SA-IS (the production path), the linear-time DC3/skew algorithm, and an
// O(n log^2 n) prefix-doubling construction — plus a naive construction
// used only by tests. Every downstream structure inherits its ordering
// from the suffix array, so this redundancy anchors the whole repository's
// correctness.
//
// All constructions operate on a text over symbols [0, sigma) and return the
// suffix array of text·$ where $ is a virtual sentinel smaller than every
// symbol: the result has length len(text)+1 and its first entry is always
// len(text) (the sentinel suffix).
package suffixarray

import "fmt"

// Build returns the suffix array of text·$ using the SA-IS linear-time
// algorithm. Symbols of text must lie in [0, sigma).
func Build(text []uint8, sigma int) ([]int32, error) {
	if err := checkText(text, sigma); err != nil {
		return nil, err
	}
	n := len(text) + 1
	// Shift symbols up by one so the appended sentinel 0 is unique smallest.
	t := make([]int32, n)
	for i, c := range text {
		t[i] = int32(c) + 1
	}
	t[n-1] = 0
	sa := make([]int32, n)
	sais(t, sa, sigma+1)
	return sa, nil
}

func checkText(text []uint8, sigma int) error {
	if sigma < 1 || sigma > 256 {
		return fmt.Errorf("suffixarray: alphabet size %d out of range [1,256]", sigma)
	}
	if len(text) > 1<<31-2 {
		return fmt.Errorf("suffixarray: text of %d symbols exceeds int32 indexing", len(text))
	}
	for i, c := range text {
		if int(c) >= sigma {
			return fmt.Errorf("suffixarray: symbol %d at position %d outside alphabet [0,%d)", c, i, sigma)
		}
	}
	return nil
}

// sais computes the suffix array of t into sa. t must end with a unique
// sentinel 0 that is strictly smaller than all other symbols, all of which
// lie in [0, sigma).
func sais(t []int32, sa []int32, sigma int) {
	n := len(t)
	switch n {
	case 0:
		return
	case 1:
		sa[0] = 0
		return
	case 2:
		sa[0], sa[1] = 1, 0
		return
	}

	// Classify suffixes: S-type if t[i:] < t[i+1:], L-type otherwise.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = t[i] < t[i+1] || (t[i] == t[i+1] && isS[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	bkt := make([]int32, sigma)
	for _, c := range t {
		bkt[c]++
	}
	bucketBounds := func(ends bool) []int32 {
		b := make([]int32, sigma)
		var sum int32
		for c := 0; c < sigma; c++ {
			sum += bkt[c]
			if ends {
				b[c] = sum
			} else {
				b[c] = sum - bkt[c]
			}
		}
		return b
	}

	// induce sorts all suffixes given the LMS suffixes in ascending order.
	induce := func(lms []int32) {
		for i := range sa {
			sa[i] = -1
		}
		b := bucketBounds(true)
		for i := len(lms) - 1; i >= 0; i-- {
			p := lms[i]
			b[t[p]]--
			sa[b[t[p]]] = p
		}
		b = bucketBounds(false)
		for i := 0; i < n; i++ {
			if j := sa[i] - 1; sa[i] > 0 && !isS[j] {
				sa[b[t[j]]] = j
				b[t[j]]++
			}
		}
		b = bucketBounds(true)
		for i := n - 1; i >= 0; i-- {
			if j := sa[i] - 1; sa[i] > 0 && isS[j] {
				b[t[j]]--
				sa[b[t[j]]] = j
			}
		}
	}

	// LMS positions in text order.
	var lms []int32
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lms = append(lms, int32(i))
		}
	}
	if len(lms) == 0 {
		induce(nil)
		return
	}

	// First induced sort orders the LMS *substrings*.
	induce(lms)
	sortedLMS := make([]int32, 0, len(lms))
	for _, p := range sa {
		if p > 0 && isLMS(int(p)) {
			sortedLMS = append(sortedLMS, p)
		}
	}

	// Name LMS substrings by equality; equal substrings share a name.
	names := make([]int32, n)
	name := int32(0)
	names[sortedLMS[0]] = 0
	for i := 1; i < len(sortedLMS); i++ {
		if !lmsSubstringEqual(t, isS, int(sortedLMS[i-1]), int(sortedLMS[i])) {
			name++
		}
		names[sortedLMS[i]] = name
	}

	if int(name)+1 < len(lms) {
		// Names collide: recurse on the reduced string to sort LMS suffixes.
		sub := make([]int32, len(lms))
		for i, p := range lms {
			sub[i] = names[p]
		}
		subSA := make([]int32, len(sub))
		sais(sub, subSA, int(name)+1)
		ordered := make([]int32, len(lms))
		for i, r := range subSA {
			ordered[i] = lms[r]
		}
		induce(ordered)
	} else {
		// All names distinct: the substring order already sorts the suffixes.
		induce(sortedLMS)
	}
}

// lmsSubstringEqual reports whether the LMS substrings starting at a and b
// are identical (same symbols and same type pattern up to the next LMS
// position inclusive).
func lmsSubstringEqual(t []int32, isS []bool, a, b int) bool {
	n := len(t)
	if a == n-1 || b == n-1 {
		return a == b // the sentinel substring is unique
	}
	for i := 0; ; i++ {
		if t[a+i] != t[b+i] || isS[a+i] != isS[b+i] {
			return false
		}
		if i > 0 {
			aLMS := isS[a+i] && !isS[a+i-1]
			bLMS := isS[b+i] && !isS[b+i-1]
			if aLMS && bLMS {
				return true
			}
			if aLMS != bLMS {
				return false
			}
		}
	}
}
