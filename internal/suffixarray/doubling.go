package suffixarray

import "sort"

// BuildDoubling returns the suffix array of text·$ using prefix doubling
// (Manber-Myers style, O(n log^2 n) with sort.Slice). It is retained as an
// independent implementation for cross-checking SA-IS and for the
// construction-algorithm ablation bench in DESIGN.md.
func BuildDoubling(text []uint8, sigma int) ([]int32, error) {
	if err := checkText(text, sigma); err != nil {
		return nil, err
	}
	n := len(text) + 1
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		if i < len(text) {
			rank[i] = int32(text[i]) + 1
		} // sentinel keeps rank 0
	}

	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(x, y int) bool {
			a1, a2 := key(sa[x])
			b1, b2 := key(sa[y])
			if a1 != b1 {
				return a1 < b1
			}
			return a2 < b2
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			a1, a2 := key(sa[i-1])
			b1, b2 := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if a1 != b1 || a2 != b2 {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa, nil
}
