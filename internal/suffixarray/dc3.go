package suffixarray

// BuildDC3 returns the suffix array of text·$ using the DC3 (skew)
// algorithm of Kärkkäinen and Sanders — the third independent linear-time
// construction in this package. Three mutually-checking implementations
// (SA-IS, prefix doubling, DC3) give the BWT stage a very strong
// correctness footing, since every downstream structure inherits its
// ordering from the suffix array.
func BuildDC3(text []uint8, sigma int) ([]int32, error) {
	if err := checkText(text, sigma); err != nil {
		return nil, err
	}
	n := len(text) + 1
	// Symbols shifted so the explicit sentinel 1 is the unique smallest
	// non-zero value; DC3 needs three zero pads at the end.
	s := make([]int32, n+3)
	for i, c := range text {
		s[i] = int32(c) + 2
	}
	s[n-1] = 1
	sa := make([]int32, n)
	dc3(s, sa, n, sigma+2)
	return sa, nil
}

// leq2 and leq3 are lexicographic pair/triple comparisons.
func leq2(a1, a2, b1, b2 int32) bool {
	return a1 < b1 || (a1 == b1 && a2 <= b2)
}

func leq3(a1, a2, a3, b1, b2, b3 int32) bool {
	return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3))
}

// radixPass stably sorts a[0..n) into b by r[a[i]], keys in [0, k).
func radixPass(a, b, r []int32, n, k int) {
	count := make([]int32, k+1)
	for i := 0; i < n; i++ {
		count[r[a[i]]]++
	}
	var sum int32
	for i := 0; i <= k; i++ {
		count[i], sum = sum, sum+count[i]
	}
	for i := 0; i < n; i++ {
		b[count[r[a[i]]]] = a[i]
		count[r[a[i]]]++
	}
}

// dc3 computes the suffix array of s[0..n) into sa. s must have values in
// [1, k) and s[n] = s[n+1] = s[n+2] = 0.
func dc3(s, sa []int32, n, k int) {
	if n == 0 {
		return
	}
	if n == 1 {
		sa[0] = 0
		return
	}
	if n == 2 {
		if leq2(s[0], s[1], s[1], 0) {
			sa[0], sa[1] = 0, 1
		} else {
			sa[0], sa[1] = 1, 0
		}
		return
	}
	n0 := (n + 2) / 3
	n1 := (n + 1) / 3
	n2 := n / 3
	n02 := n0 + n2

	s12 := make([]int32, n02+3)
	sa12 := make([]int32, n02+3)
	s0 := make([]int32, n0)
	sa0 := make([]int32, n0)

	// Positions i mod 3 != 0; the n0-n1 padding suffix keeps the recursion
	// aligned when n%3 == 1.
	j := 0
	for i := 0; i < n+(n0-n1); i++ {
		if i%3 != 0 {
			s12[j] = int32(i)
			j++
		}
	}

	// Radix sort the mod-1/2 triples.
	radixPass(s12, sa12, s[2:], n02, k)
	radixPass(sa12, s12, s[1:], n02, k)
	radixPass(s12, sa12, s, n02, k)

	// Name the triples.
	name := int32(0)
	c0, c1, c2 := int32(-1), int32(-1), int32(-1)
	for i := 0; i < n02; i++ {
		if s[sa12[i]] != c0 || s[sa12[i]+1] != c1 || s[sa12[i]+2] != c2 {
			name++
			c0, c1, c2 = s[sa12[i]], s[sa12[i]+1], s[sa12[i]+2]
		}
		if sa12[i]%3 == 1 {
			s12[sa12[i]/3] = name // left half
		} else {
			s12[sa12[i]/3+int32(n0)] = name // right half
		}
	}

	if int(name) < n02 {
		// Names collide: recurse on the half-length string.
		dc3(s12, sa12, n02, int(name)+1)
		// Store unique names in s12 using the suffix array.
		for i := 0; i < n02; i++ {
			s12[sa12[i]] = int32(i) + 1
		}
	} else {
		// Names unique: derive the sample suffix array directly.
		for i := 0; i < n02; i++ {
			sa12[s12[i]-1] = int32(i)
		}
	}

	// Sort the mod-0 suffixes by (first char, rank of following mod-1).
	j = 0
	for i := 0; i < n02; i++ {
		if sa12[i] < int32(n0) {
			s0[j] = 3 * sa12[i]
			j++
		}
	}
	radixPass(s0, sa0, s, n0, k)

	// Merge the sorted mod-0 and sorted mod-1/2 suffixes.
	getI := func(t int) int32 {
		if sa12[t] < int32(n0) {
			return sa12[t]*3 + 1
		}
		return (sa12[t]-int32(n0))*3 + 2
	}
	rank12 := func(pos int32) int32 {
		// rank of suffix pos (pos mod 3 != 0) in the sample.
		if pos%3 == 1 {
			return s12[pos/3]
		}
		return s12[pos/3+int32(n0)]
	}
	p := 0
	t := n0 - n1 // skip the padding suffix when n%3 == 1
	for kk := 0; kk < n; kk++ {
		i := getI(t) // current mod-1/2 suffix
		jj := sa0[p] // current mod-0 suffix
		var smaller bool
		if i%3 == 1 {
			smaller = leq2(s[i], rank12(i+1), s[jj], rank12(jj+1))
		} else {
			smaller = leq3(s[i], s[i+1], rank12(i+2), s[jj], s[jj+1], rank12(jj+2))
		}
		if smaller {
			sa[kk] = i
			t++
			if t == n02 {
				// Sample exhausted: copy the remaining mod-0 suffixes.
				for kk++; p < n0; p, kk = p+1, kk+1 {
					sa[kk] = sa0[p]
				}
				return
			}
		} else {
			sa[kk] = jj
			p++
			if p == n0 {
				// Mod-0 exhausted: copy the remaining sample suffixes.
				for kk++; t < n02; t, kk = t+1, kk+1 {
					sa[kk] = getI(t)
				}
				return
			}
		}
	}
}
