package suffixarray

import (
	"errors"
	"fmt"
)

// Validate checks that sa is a correct suffix array of text·$: a permutation
// of [0, len(text)] whose suffixes are in strictly increasing lexicographic
// order (with the sentinel smaller than every symbol). It runs in O(n^2)
// worst case and is intended for tests and for verifying deserialized
// indexes, not hot paths.
func Validate(text []uint8, sa []int32) error {
	n := len(text) + 1
	if len(sa) != n {
		return fmt.Errorf("suffixarray: length %d, want %d", len(sa), n)
	}
	seen := make([]bool, n)
	for _, p := range sa {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("suffixarray: entry %d out of range [0,%d)", p, n)
		}
		if seen[p] {
			return fmt.Errorf("suffixarray: duplicate entry %d", p)
		}
		seen[p] = true
	}
	if len(sa) > 0 && int(sa[0]) != len(text) {
		return errors.New("suffixarray: first entry must be the sentinel suffix")
	}
	for i := 1; i < n; i++ {
		if compareSuffixes(text, int(sa[i-1]), int(sa[i])) >= 0 {
			return fmt.Errorf("suffixarray: suffixes at ranks %d and %d out of order", i-1, i)
		}
	}
	return nil
}

// compareSuffixes lexicographically compares text[a:]·$ with text[b:]·$.
func compareSuffixes(text []uint8, a, b int) int {
	if a == b {
		return 0
	}
	for {
		aEnd, bEnd := a >= len(text), b >= len(text)
		switch {
		case aEnd && bEnd:
			return 0
		case aEnd:
			return -1
		case bEnd:
			return 1
		}
		if text[a] != text[b] {
			if text[a] < text[b] {
				return -1
			}
			return 1
		}
		a++
		b++
	}
}
