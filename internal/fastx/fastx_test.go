package fastx

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func TestReadFasta(t *testing.T) {
	in := ">seq1 first sequence\nACGT\nACGT\n>seq2\nTTTT\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Desc != "first sequence" {
		t.Errorf("record 0 header = %q/%q", recs[0].ID, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("record 0 seq = %q, want multi-line join", recs[0].Seq)
	}
	if recs[0].Qual != nil {
		t.Error("FASTA record should have nil qualities")
	}
	if recs[1].ID != "seq2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 1 = %q %q", recs[1].ID, recs[1].Seq)
	}
}

func TestReadFastaNoTrailingNewline(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">a\nACG"))
	if err != nil || len(recs) != 1 || string(recs[0].Seq) != "ACG" {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestReadFastaCRLF(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">a desc\r\nACGT\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" || recs[0].Desc != "desc" {
		t.Errorf("CRLF handling broken: %q %q", recs[0].Seq, recs[0].Desc)
	}
}

func TestReadFastq(t *testing.T) {
	in := "@read1 lane1\nACGT\n+\nIIII\n@read2\nGG\n+read2\nJJ\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "read1" || string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].ID != "read2" || string(recs[1].Qual) != "JJ" {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: recs=%v err=%v", recs, err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown format":       "XACGT\n",
		"fasta empty header":   ">\nACGT\n",
		"fasta no sequence":    ">a\n>b\nAC\n",
		"fastq missing plus":   "@a\nACGT\nIIII\n@b\n",
		"fastq qual mismatch":  "@a\nACGT\n+\nII\n",
		"fastq truncated":      "@a\nACGT\n+\n",
		"fastq truncated head": "@a\n",
		"fastq empty header":   "@\nAC\n+\nII\n",
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestGzipAutoDetect(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	io.WriteString(gz, ">g\nACGTACGT\n")
	gz.Close()
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGTACGT" {
		t.Fatalf("gzip round trip failed: %v", recs)
	}
}

func TestCorruptGzip(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00, 0x01})); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestWriteFastaRoundTrip(t *testing.T) {
	recs := []*Record{
		{ID: "a", Desc: "hello", Seq: bytes.Repeat([]byte("ACGT"), 40)},
		{ID: "b", Seq: []byte("TT")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, FASTA, false)
	w.Width = 60
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Lines must be wrapped.
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 60+1 {
			t.Errorf("line longer than width: %q", line)
		}
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || string(back[0].Seq) != string(recs[0].Seq) || back[0].Desc != "hello" {
		t.Error("FASTA write/read round trip mismatch")
	}
}

func TestWriteFastqRoundTrip(t *testing.T) {
	recs := []*Record{
		{ID: "r1", Seq: []byte("ACGT"), Qual: []byte("!!II")},
		{ID: "r2", Seq: []byte("GG")}, // qualities synthesised
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, FASTQ, false)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || string(back[0].Qual) != "!!II" || string(back[1].Qual) != "II" {
		t.Errorf("FASTQ round trip mismatch: %+v", back)
	}
}

func TestWriteGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FASTQ, true)
	if err := w.Write(&Record{ID: "x", Seq: []byte("ACGT"), Qual: []byte("IIII")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2 || buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("output is not gzipped")
	}
	back, err := ReadAll(&buf)
	if err != nil || len(back) != 1 || back[0].ID != "x" {
		t.Fatalf("gzip FASTQ round trip failed: %v %v", back, err)
	}
}

func TestWriteInvalidRecords(t *testing.T) {
	w := NewWriter(io.Discard, FASTQ, false)
	if err := w.Write(&Record{Seq: []byte("AC")}); err == nil {
		t.Error("accepted empty ID")
	}
	if err := w.Write(&Record{ID: "a", Seq: []byte("AC"), Qual: []byte("I")}); err == nil {
		t.Error("accepted mismatched qualities")
	}
}

func TestFormatDetection(t *testing.T) {
	r, err := NewReader(strings.NewReader(">x\nA\n"))
	if err != nil || r.Format() != FASTA {
		t.Errorf("FASTA not detected: %v %v", r.Format(), err)
	}
	r, err = NewReader(strings.NewReader("@x\nA\n+\nI\n"))
	if err != nil || r.Format() != FASTQ {
		t.Errorf("FASTQ not detected: %v %v", r.Format(), err)
	}
	if FASTA.String() != "FASTA" || FASTQ.String() != "FASTQ" {
		t.Error("Format.String wrong")
	}
}

func TestStreamingRead(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("@r\nACGTACGT\n+\nIIIIIIII\n")
	}
	rd, err := NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 1000 {
		t.Errorf("streamed %d records, want 1000", count)
	}
}
