package fastx

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// readTolerant drains a tolerant reader, returning surviving records and
// the per-record errors in stream order.
func readTolerant(t *testing.T, in string) ([]*Record, []*RecordError) {
	t.Helper()
	recs, recErrs, err := ReadAllTolerant(strings.NewReader(in))
	if err != nil {
		t.Fatalf("stream-level error: %v", err)
	}
	return recs, recErrs
}

func ids(recs []*Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

func TestTolerantCleanInputIdentical(t *testing.T) {
	inputs := []string{
		"@r1 lane1\nACGT\n+\nIIII\n@r2\nGG\n+r2\nJJ\n",
		">a desc\nACGT\nACGT\n>b\nTT\n",
		"@r\nACGT\n+\n@@II\n", // quality line legitimately starts with '@'
	}
	for _, in := range inputs {
		strict, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Fatalf("strict parse of clean input failed: %v", err)
		}
		tol, recErrs := readTolerant(t, in)
		if len(recErrs) != 0 {
			t.Fatalf("tolerant mode reported errors on clean input: %v", recErrs)
		}
		if len(tol) != len(strict) {
			t.Fatalf("tolerant=%d strict=%d records", len(tol), len(strict))
		}
		for i := range tol {
			if tol[i].ID != strict[i].ID || string(tol[i].Seq) != string(strict[i].Seq) ||
				string(tol[i].Qual) != string(strict[i].Qual) {
				t.Fatalf("record %d diverged: %+v vs %+v", i, tol[i], strict[i])
			}
		}
	}
}

func TestTolerantFastqSkipsBadRecord(t *testing.T) {
	cases := []struct {
		name       string
		in         string
		wantIDs    []string
		wantReason string
	}{
		{
			name:       "qual length mismatch",
			in:         "@good1\nACGT\n+\nIIII\n@bad\nACGT\n+\nII\n@good2\nTTTT\n+\nJJJJ\n",
			wantIDs:    []string{"good1", "good2"},
			wantReason: ReasonQualMismatch,
		},
		{
			name:       "missing separator",
			in:         "@bad\nACGT\nIIII\n@good\nTT\n+\nJJ\n",
			wantIDs:    []string{"good"},
			wantReason: ReasonBadSeparator,
		},
		{
			name:       "truncated record then next header",
			in:         "@bad\nACGT\n@good\nTT\n+\nJJ\n",
			wantIDs:    []string{"good"},
			wantReason: ReasonBadSeparator,
		},
		{
			name:       "blank line mid-file",
			in:         "@good1\nAC\n+\nII\n\n\n@good2\nGT\n+\nJJ\n",
			wantIDs:    []string{"good1", "good2"},
			wantReason: ReasonBlankLine,
		},
		{
			name:       "empty header id",
			in:         "@\nAC\n+\nII\n@good\nGT\n+\nJJ\n",
			wantIDs:    []string{"good"},
			wantReason: ReasonEmptyID,
		},
		{
			name:       "garbage between records",
			in:         "@good1\nAC\n+\nII\n@bad\nxx\nyy\nzz\nnot a record\n@good2\nGT\n+\nJJ\n",
			wantIDs:    []string{"good1", "good2"},
			wantReason: ReasonBadSeparator,
		},
		{
			name:       "truncated at eof",
			in:         "@good\nAC\n+\nII\n@bad\nACGT\n+\n",
			wantIDs:    []string{"good"},
			wantReason: ReasonTruncated,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, recErrs := readTolerant(t, tc.in)
			got := ids(recs)
			if strings.Join(got, ",") != strings.Join(tc.wantIDs, ",") {
				t.Fatalf("surviving IDs = %v, want %v (errs: %v)", got, tc.wantIDs, recErrs)
			}
			if len(recErrs) == 0 {
				t.Fatal("no RecordError reported")
			}
			if recErrs[0].Reason != tc.wantReason {
				t.Errorf("reason = %q, want %q", recErrs[0].Reason, tc.wantReason)
			}
			if recErrs[0].Line == 0 {
				t.Error("RecordError carries no line number")
			}
		})
	}
}

func TestTolerantRecordErrorCarriesID(t *testing.T) {
	_, recErrs := readTolerant(t, "@known\nACGT\n+\nII\n@ok\nAC\n+\nII\n")
	if len(recErrs) != 1 || recErrs[0].RecordID != "known" {
		t.Fatalf("recErrs = %v, want one error for record \"known\"", recErrs)
	}
}

func TestTolerantFastaSkipsBadRecord(t *testing.T) {
	recs, recErrs := readTolerant(t, ">good1\nACGT\n>bad\n>good2\nTTTT\n")
	if strings.Join(ids(recs), ",") != "good1,good2" {
		t.Fatalf("surviving IDs = %v", ids(recs))
	}
	if len(recErrs) != 1 || recErrs[0].Reason != ReasonBadSequence || recErrs[0].RecordID != "bad" {
		t.Fatalf("recErrs = %v", recErrs)
	}
}

func TestStrictStillFailsClosed(t *testing.T) {
	// The tolerant machinery must not leak into the default mode: a strict
	// reader still aborts on the first malformed record, as a *RecordError.
	rd, err := NewReader(strings.NewReader("@bad\nACGT\n+\nII\n@good\nAC\n+\nII\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Read()
	var re *RecordError
	if !errors.As(err, &re) {
		t.Fatalf("strict error = %v, want *RecordError", err)
	}
	if re.Reason != ReasonQualMismatch {
		t.Errorf("reason = %q", re.Reason)
	}
}

func TestFastqCRLF(t *testing.T) {
	in := "@r1 lane\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nGG\r\n+\r\nJJ\r\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Qual) != "IIII" || string(recs[1].Seq) != "GG" {
		t.Fatalf("CRLF FASTQ parse: %+v", recs)
	}
}

func TestFastaCRLFTrailingBlanks(t *testing.T) {
	in := ">a desc\r\nACGT\r\nACGT\r\n\r\n\r\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGTACGT" {
		t.Fatalf("CRLF FASTA parse: %+v", recs)
	}
}

func TestFastqTrailingBlankLines(t *testing.T) {
	for _, in := range []string{
		"@r\nACGT\n+\nIIII\n\n",
		"@r\nACGT\n+\nIIII\n\n\n\n",
		"@r\r\nACGT\r\n+\r\nIIII\r\n\r\n\r\n",
	} {
		recs, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Errorf("trailing blanks rejected for %q: %v", in, err)
			continue
		}
		if len(recs) != 1 || recs[0].ID != "r" {
			t.Errorf("parse of %q: %+v", in, recs)
		}
	}
	// A blank line followed by more records is still an error in strict mode.
	if _, err := ReadAll(strings.NewReader("@r\nAC\n+\nII\n\n@x\nAC\n+\nII\n")); err == nil {
		t.Error("interior blank line accepted in strict mode")
	}
}

func TestTolerantStreaming(t *testing.T) {
	// Interleave good and bad records at scale; every Read must make
	// progress and the tallies must add up.
	var sb strings.Builder
	good := 0
	for i := 0; i < 300; i++ {
		if i%3 == 1 {
			sb.WriteString("@bad\nACGTACGT\n+\nII\n") // short quality
		} else {
			sb.WriteString("@r\nACGTACGT\n+\nIIIIIIII\n")
			good++
		}
	}
	rd, err := NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rd.SetTolerant(true)
	valid, malformed := 0, 0
	for {
		_, err := rd.Read()
		if err == io.EOF {
			break
		}
		var re *RecordError
		if errors.As(err, &re) {
			malformed++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		valid++
	}
	if valid != good || malformed != 300-good {
		t.Fatalf("valid=%d malformed=%d, want %d/%d", valid, malformed, good, 300-good)
	}
}
