package fastx

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the parser: it must never panic,
// and any input it accepts must survive a write/re-read round trip.
func FuzzReader(f *testing.F) {
	f.Add([]byte(">a\nACGT\n"))
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte(">a desc\nAC\nGT\n>b\nTT\n"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte(""))
	f.Add([]byte(">"))
	f.Add([]byte("@x\nAC\n+\nII"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.ID == "" {
				t.Fatal("accepted record with empty ID")
			}
			if rec.Qual != nil && len(rec.Qual) != len(rec.Seq) {
				t.Fatal("accepted record with mismatched qualities")
			}
		}
		// Round trip whatever was accepted.
		format := FASTA
		if len(recs) > 0 && recs[0].Qual != nil {
			format = FASTQ
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, format, false)
		for _, rec := range recs {
			if len(rec.Seq) == 0 {
				return // FASTA writer emits no sequence line; skip round trip
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-writing accepted record failed: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-reading written records failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip produced %d records, want %d", len(back), len(recs))
		}
	})
}

// FuzzTolerantFastq feeds arbitrary bytes through the tolerant decoder: it
// must never panic, never loop (each Read consumes at least one line, so the
// iteration count is bounded by the input size), and its accounting must
// balance — every Read before EOF yields exactly one valid record or one
// RecordError. On input the strict parser accepts, tolerant mode must return
// the identical records and no errors.
func FuzzTolerantFastq(f *testing.F) {
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte("@good\nACGT\n+\nIIII\n@bad\nACGT\n+\nII\n@good2\nTT\n+\nJJ\n"))
	f.Add([]byte("@a\nACGT\n@b\nACGT\n+\nIIII\n"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("@r\nACGT\n+\n@@II\n@r2\nAC\n+\nII\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("@x\nAC\n+\nII"))
	f.Add([]byte(">a\nACGT\n>\n>b\nTT\n"))
	f.Add([]byte("@r\r\nACGT\r\n+\r\nIIII\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		defer rd.Close()
		rd.SetTolerant(true)
		// Each Read consumes >= 1 line on any path that is not EOF, so the
		// number of iterations can never exceed the line count.
		maxReads := bytes.Count(data, []byte{'\n'}) + 2
		valid, malformed, attempted := 0, 0, 0
		var recs []*Record
		for i := 0; ; i++ {
			if i > maxReads {
				t.Fatalf("tolerant reader looped: %d reads for %d bytes", i, len(data))
			}
			rec, err := rd.Read()
			if err == io.EOF {
				break
			}
			attempted++
			var re *RecordError
			if errors.As(err, &re) {
				if re.Reason == "" || re.Line <= 0 {
					t.Fatalf("RecordError missing reason/line: %+v", re)
				}
				malformed++
				continue
			}
			if err != nil {
				return // stream-level error (e.g. corrupt gzip) aborts; fine
			}
			if rec.ID == "" {
				t.Fatal("tolerant mode accepted record with empty ID")
			}
			if rec.Qual != nil && len(rec.Qual) != len(rec.Seq) {
				t.Fatal("tolerant mode accepted mismatched qualities")
			}
			valid++
			recs = append(recs, rec)
		}
		if valid+malformed != attempted {
			t.Fatalf("accounting broken: valid %d + malformed %d != attempted %d", valid, malformed, attempted)
		}
		// Strict/tolerant equivalence on clean input.
		if strictRecs, err := ReadAll(bytes.NewReader(data)); err == nil {
			if malformed != 0 {
				t.Fatalf("strict accepted the input but tolerant reported %d malformed records", malformed)
			}
			if !reflect.DeepEqual(recs, strictRecs) {
				t.Fatalf("tolerant parse diverged from strict on clean input:\n%v\n%v", recs, strictRecs)
			}
		}
	})
}

// FuzzReaderGzip checks transparent decompression: gzipping any payload must
// not change what the parser accepts or produces.
func FuzzReaderGzip(f *testing.F) {
	f.Add([]byte(">a\nACGT\n"))
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte(""))
	f.Add([]byte(">a\nAC\n>b\nGT\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// A payload that itself starts with the gzip magic would be
		// decompressed by the plain read, so equivalence doesn't hold.
		if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
			return
		}
		plainRecs, plainErr := ReadAll(bytes.NewReader(data))

		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		gzRecs, gzErr := ReadAll(bytes.NewReader(zbuf.Bytes()))

		if (plainErr == nil) != (gzErr == nil) {
			t.Fatalf("plain err %v, gzip err %v", plainErr, gzErr)
		}
		if plainErr == nil && !reflect.DeepEqual(plainRecs, gzRecs) {
			t.Fatalf("gzip parse diverged:\n%v\n%v", plainRecs, gzRecs)
		}
	})
}
