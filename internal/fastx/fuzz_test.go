package fastx

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the parser: it must never panic,
// and any input it accepts must survive a write/re-read round trip.
func FuzzReader(f *testing.F) {
	f.Add([]byte(">a\nACGT\n"))
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte(">a desc\nAC\nGT\n>b\nTT\n"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte(""))
	f.Add([]byte(">"))
	f.Add([]byte("@x\nAC\n+\nII"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.ID == "" {
				t.Fatal("accepted record with empty ID")
			}
			if rec.Qual != nil && len(rec.Qual) != len(rec.Seq) {
				t.Fatal("accepted record with mismatched qualities")
			}
		}
		// Round trip whatever was accepted.
		format := FASTA
		if len(recs) > 0 && recs[0].Qual != nil {
			format = FASTQ
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, format, false)
		for _, rec := range recs {
			if len(rec.Seq) == 0 {
				return // FASTA writer emits no sequence line; skip round trip
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-writing accepted record failed: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-reading written records failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip produced %d records, want %d", len(back), len(recs))
		}
	})
}
