// Package fastx reads and writes FASTA and FASTQ files, the interchange
// formats BWaveR's web application accepts (paper §III-D: "upload the
// reference and query sequences as FASTA and FASTQ files respectively, both
// in uncompressed or gzipped formats").
//
// The reader auto-detects gzip compression from the magic bytes and the
// record format from the first header character, so callers can hand it any
// of the four combinations without configuration.
package fastx

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// Format identifies a sequence file format.
type Format int

const (
	// FASTA records start with '>' and carry no qualities.
	FASTA Format = iota
	// FASTQ records start with '@' and carry per-base qualities.
	FASTQ
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == FASTQ {
		return "FASTQ"
	}
	return "FASTA"
}

// Record is one sequence record.
type Record struct {
	// ID is the first whitespace-delimited token of the header.
	ID string
	// Desc is the remainder of the header line, if any.
	Desc string
	// Seq is the raw sequence bytes (ASCII, case preserved).
	Seq []byte
	// Qual holds FASTQ quality bytes, nil for FASTA records. When present
	// it has the same length as Seq.
	Qual []byte
}

// Reader parses records from a FASTA or FASTQ stream.
type Reader struct {
	br     *bufio.Reader
	format Format
	gz     *gzip.Reader
	line   int
	// pending holds the next FASTA header once the previous record ends.
	pending string
	done    bool
}

// NewReader wraps r, transparently decompressing gzip input and detecting
// the record format. An empty input yields a reader whose Read returns
// io.EOF immediately.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	var gz *gzip.Reader
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err = gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("fastx: bad gzip stream: %w", err)
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	}
	first, err := br.Peek(1)
	rd := &Reader{br: br, gz: gz}
	switch {
	case err == io.EOF:
		rd.done = true
	case err != nil:
		return nil, fmt.Errorf("fastx: %w", err)
	case first[0] == '>':
		rd.format = FASTA
	case first[0] == '@':
		rd.format = FASTQ
	default:
		return nil, fmt.Errorf("fastx: unrecognised leading byte %q; want '>' (FASTA) or '@' (FASTQ)", first[0])
	}
	return rd, nil
}

// Format returns the detected format; meaningless for empty input.
func (r *Reader) Format() Format { return r.format }

// Close releases the gzip decompressor if one is active.
func (r *Reader) Close() error {
	if r.gz != nil {
		return r.gz.Close()
	}
	return nil
}

func (r *Reader) readLine() (string, error) {
	line, err := r.br.ReadString('\n')
	if err != nil && err != io.EOF {
		return "", fmt.Errorf("fastx: line %d: %w", r.line+1, err)
	}
	if line == "" && err == io.EOF {
		return "", io.EOF
	}
	r.line++
	return strings.TrimRight(line, "\r\n"), nil
}

// Read returns the next record, or io.EOF when the stream ends.
func (r *Reader) Read() (*Record, error) {
	if r.done {
		return nil, io.EOF
	}
	if r.format == FASTQ {
		return r.readFastq()
	}
	return r.readFasta()
}

func splitHeader(h string) (id, desc string) {
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

func (r *Reader) readFasta() (*Record, error) {
	header := r.pending
	r.pending = ""
	if header == "" {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		header = line
	}
	if !strings.HasPrefix(header, ">") {
		return nil, fmt.Errorf("fastx: line %d: FASTA header must start with '>', got %q", r.line, header)
	}
	rec := &Record{}
	rec.ID, rec.Desc = splitHeader(strings.TrimPrefix(header, ">"))
	if rec.ID == "" {
		return nil, fmt.Errorf("fastx: line %d: empty FASTA header", r.line)
	}
	var seq bytes.Buffer
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(line, ">") {
			r.pending = line
			break
		}
		if strings.ContainsRune(line, '>') {
			return nil, fmt.Errorf("fastx: line %d: '>' inside sequence data of record %q", r.line, rec.ID)
		}
		seq.WriteString(strings.TrimSpace(line))
	}
	if seq.Len() == 0 {
		return nil, fmt.Errorf("fastx: record %q has no sequence data", rec.ID)
	}
	rec.Seq = seq.Bytes()
	return rec, nil
}

func (r *Reader) readFastq() (*Record, error) {
	header, err := r.readLine()
	if err == io.EOF {
		r.done = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if header == "" {
		// Tolerate a trailing blank line.
		if _, err := r.br.Peek(1); err == io.EOF {
			r.done = true
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fastx: line %d: blank line inside FASTQ", r.line)
	}
	if !strings.HasPrefix(header, "@") {
		return nil, fmt.Errorf("fastx: line %d: FASTQ header must start with '@', got %q", r.line, header)
	}
	rec := &Record{}
	rec.ID, rec.Desc = splitHeader(strings.TrimPrefix(header, "@"))
	if rec.ID == "" {
		return nil, fmt.Errorf("fastx: line %d: empty FASTQ header", r.line)
	}
	seq, err := r.readLine()
	if err != nil {
		return nil, fmt.Errorf("fastx: record %q: truncated after header", rec.ID)
	}
	sep, err := r.readLine()
	if err != nil || !strings.HasPrefix(sep, "+") {
		return nil, fmt.Errorf("fastx: record %q: missing '+' separator line", rec.ID)
	}
	qual, err := r.readLine()
	if err != nil {
		return nil, fmt.Errorf("fastx: record %q: truncated before quality line", rec.ID)
	}
	if len(qual) != len(seq) {
		return nil, fmt.Errorf("fastx: record %q: %d quality bytes for %d bases", rec.ID, len(qual), len(seq))
	}
	rec.Seq = []byte(seq)
	rec.Qual = []byte(qual)
	return rec, nil
}

// ReadAll parses every record in r.
func ReadAll(r io.Reader) ([]*Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var out []*Record
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Writer emits records in FASTA or FASTQ format, optionally gzipped.
type Writer struct {
	w      *bufio.Writer
	gz     *gzip.Writer
	format Format
	// Width wraps FASTA sequence lines; <= 0 means no wrapping.
	Width int
}

// NewWriter creates a Writer for the given format. If compress is true the
// output is gzipped.
func NewWriter(w io.Writer, format Format, compress bool) *Writer {
	out := &Writer{format: format, Width: 70}
	if compress {
		out.gz = gzip.NewWriter(w)
		out.w = bufio.NewWriter(out.gz)
	} else {
		out.w = bufio.NewWriter(w)
	}
	return out
}

// Write emits one record. FASTA output drops qualities; FASTQ output
// synthesises flat qualities ('I') if the record has none.
func (w *Writer) Write(rec *Record) error {
	if rec.ID == "" {
		return fmt.Errorf("fastx: cannot write record with empty ID")
	}
	header := rec.ID
	if rec.Desc != "" {
		header += " " + rec.Desc
	}
	if w.format == FASTA {
		if _, err := fmt.Fprintf(w.w, ">%s\n", header); err != nil {
			return err
		}
		seq := rec.Seq
		width := w.Width
		if width <= 0 {
			width = len(seq)
		}
		for len(seq) > 0 {
			n := width
			if n > len(seq) {
				n = len(seq)
			}
			if _, err := w.w.Write(seq[:n]); err != nil {
				return err
			}
			if err := w.w.WriteByte('\n'); err != nil {
				return err
			}
			seq = seq[n:]
		}
		return nil
	}
	qual := rec.Qual
	if qual == nil {
		qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
	}
	if len(qual) != len(rec.Seq) {
		return fmt.Errorf("fastx: record %q: quality/sequence length mismatch", rec.ID)
	}
	_, err := fmt.Fprintf(w.w, "@%s\n%s\n+\n%s\n", header, rec.Seq, qual)
	return err
}

// Close flushes buffers and finishes the gzip stream if active.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}
