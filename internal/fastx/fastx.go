// Package fastx reads and writes FASTA and FASTQ files, the interchange
// formats BWaveR's web application accepts (paper §III-D: "upload the
// reference and query sequences as FASTA and FASTQ files respectively, both
// in uncompressed or gzipped formats").
//
// The reader auto-detects gzip compression from the magic bytes and the
// record format from the first header character, so callers can hand it any
// of the four combinations without configuration.
package fastx

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Format identifies a sequence file format.
type Format int

const (
	// FASTA records start with '>' and carry no qualities.
	FASTA Format = iota
	// FASTQ records start with '@' and carry per-base qualities.
	FASTQ
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == FASTQ {
		return "FASTQ"
	}
	return "FASTA"
}

// Reason codes carried by RecordError. They are a fixed enum so downstream
// accounting (journal counters, /metrics labels) has bounded cardinality no
// matter what bytes arrive on the wire.
const (
	// ReasonBadHeader: the line where a record header was expected does not
	// start with the format's header byte.
	ReasonBadHeader = "bad_header"
	// ReasonEmptyID: a header line with no ID token.
	ReasonEmptyID = "empty_id"
	// ReasonTruncated: the stream ended inside a record.
	ReasonTruncated = "truncated"
	// ReasonBadSeparator: a FASTQ record without a '+' separator line.
	ReasonBadSeparator = "bad_separator"
	// ReasonQualMismatch: quality and sequence lengths differ.
	ReasonQualMismatch = "qual_mismatch"
	// ReasonBlankLine: a blank line where a FASTQ header was expected
	// (other than a trailing run of blank lines at EOF, which is legal).
	ReasonBlankLine = "blank_line"
	// ReasonBadSequence: malformed FASTA sequence data ('>' mid-line, or a
	// record with no sequence at all).
	ReasonBadSequence = "bad_sequence"
)

// RecordError describes one malformed record. In strict mode it aborts the
// parse; in tolerant mode (SetTolerant) the reader resynchronizes to the
// next plausible record header and returns the RecordError so the caller
// can account for the loss and keep reading.
type RecordError struct {
	// Line is the 1-based line number of the offending line.
	Line int
	// RecordID is the record's ID when the header parsed, "" otherwise.
	RecordID string
	// Reason is one of the Reason* codes.
	Reason string
	// Detail is the human-readable description.
	Detail string
}

// Error implements error.
func (e *RecordError) Error() string { return "fastx: " + e.Detail }

// Record is one sequence record.
type Record struct {
	// ID is the first whitespace-delimited token of the header.
	ID string
	// Desc is the remainder of the header line, if any.
	Desc string
	// Seq is the raw sequence bytes (ASCII, case preserved).
	Seq []byte
	// Qual holds FASTQ quality bytes, nil for FASTA records. When present
	// it has the same length as Seq.
	Qual []byte
}

// Reader parses records from a FASTA or FASTQ stream.
type Reader struct {
	br     *bufio.Reader
	format Format
	gz     *gzip.Reader
	line   int
	// pending holds the next FASTA header once the previous record ends.
	pending string
	// pendingLine is the line number pending was read on.
	pendingLine int
	// peeked is the FASTQ lookahead window: lines read ahead of the parse
	// position (for candidate-header validation during resync) but not yet
	// consumed.
	peeked []numberedLine
	// tolerant degrades malformed records to RecordErrors instead of
	// aborting the whole parse.
	tolerant bool
	done     bool
}

// numberedLine pairs a line's text with its 1-based position in the stream.
type numberedLine struct {
	text string
	num  int
}

// NewReader wraps r, transparently decompressing gzip input and detecting
// the record format. An empty input yields a reader whose Read returns
// io.EOF immediately.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	var gz *gzip.Reader
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err = gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("fastx: bad gzip stream: %w", err)
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	}
	first, err := br.Peek(1)
	rd := &Reader{br: br, gz: gz}
	switch {
	case err == io.EOF:
		rd.done = true
	case err != nil:
		return nil, fmt.Errorf("fastx: %w", err)
	case first[0] == '>':
		rd.format = FASTA
	case first[0] == '@':
		rd.format = FASTQ
	default:
		return nil, fmt.Errorf("fastx: unrecognised leading byte %q; want '>' (FASTA) or '@' (FASTQ)", first[0])
	}
	return rd, nil
}

// Format returns the detected format; meaningless for empty input.
func (r *Reader) Format() Format { return r.format }

// SetTolerant switches the reader between strict mode (any malformed record
// aborts the parse; the default, and what reference uploads use) and
// tolerant mode, where a malformed record is skipped: the reader
// resynchronizes to the next plausible record header and Read returns a
// *RecordError describing what was lost. On well-formed input the two modes
// produce identical records.
func (r *Reader) SetTolerant(t bool) { r.tolerant = t }

// Close releases the gzip decompressor if one is active.
func (r *Reader) Close() error {
	if r.gz != nil {
		return r.gz.Close()
	}
	return nil
}

func (r *Reader) readLine() (string, error) {
	line, err := r.br.ReadString('\n')
	if err != nil && err != io.EOF {
		return "", fmt.Errorf("fastx: line %d: %w", r.line+1, err)
	}
	if line == "" && err == io.EOF {
		return "", io.EOF
	}
	r.line++
	return strings.TrimRight(line, "\r\n"), nil
}

// peekLine returns the i-th line (0-based) ahead of the parse position
// without consuming it, reading further into the stream as needed.
func (r *Reader) peekLine(i int) (numberedLine, error) {
	for len(r.peeked) <= i {
		text, err := r.readLine()
		if err != nil {
			return numberedLine{}, err
		}
		r.peeked = append(r.peeked, numberedLine{text: text, num: r.line})
	}
	return r.peeked[i], nil
}

// dropPeeked consumes the first n lines of the lookahead window.
func (r *Reader) dropPeeked(n int) {
	r.peeked = r.peeked[:copy(r.peeked, r.peeked[n:])]
}

// Read returns the next record, or io.EOF when the stream ends.
func (r *Reader) Read() (*Record, error) {
	if r.done {
		return nil, io.EOF
	}
	if r.format == FASTQ {
		return r.readFastq()
	}
	return r.readFasta()
}

func splitHeader(h string) (id, desc string) {
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// fastaFail reports a malformed FASTA record: strict mode aborts, tolerant
// mode resynchronizes to the next '>' header and returns the RecordError.
func (r *Reader) fastaFail(re *RecordError) (*Record, error) {
	if !r.tolerant {
		return nil, re
	}
	r.resyncFasta()
	return nil, re
}

// resyncFasta scans forward to the next line starting with '>' and parks it
// in r.pending so the next Read starts a fresh record there.
func (r *Reader) resyncFasta() {
	if r.pending != "" {
		return // already positioned at the next header
	}
	for {
		line, err := r.readLine()
		if err != nil {
			return // EOF (or a sticky stream error the next Read reports)
		}
		if strings.HasPrefix(line, ">") {
			r.pending = line
			r.pendingLine = r.line
			return
		}
	}
}

func (r *Reader) readFasta() (*Record, error) {
	header := r.pending
	headerLine := r.pendingLine
	r.pending = ""
	if header == "" {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		header = line
		headerLine = r.line
	}
	if !strings.HasPrefix(header, ">") {
		return r.fastaFail(&RecordError{Line: headerLine, Reason: ReasonBadHeader,
			Detail: fmt.Sprintf("line %d: FASTA header must start with '>', got %q", headerLine, header)})
	}
	rec := &Record{}
	rec.ID, rec.Desc = splitHeader(strings.TrimPrefix(header, ">"))
	if rec.ID == "" {
		return r.fastaFail(&RecordError{Line: headerLine, Reason: ReasonEmptyID,
			Detail: fmt.Sprintf("line %d: empty FASTA header", headerLine)})
	}
	var seq bytes.Buffer
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(line, ">") {
			r.pending = line
			r.pendingLine = r.line
			break
		}
		if strings.ContainsRune(line, '>') {
			return r.fastaFail(&RecordError{Line: r.line, RecordID: rec.ID, Reason: ReasonBadSequence,
				Detail: fmt.Sprintf("line %d: '>' inside sequence data of record %q", r.line, rec.ID)})
		}
		seq.WriteString(strings.TrimSpace(line))
	}
	if seq.Len() == 0 {
		return r.fastaFail(&RecordError{Line: headerLine, RecordID: rec.ID, Reason: ReasonBadSequence,
			Detail: fmt.Sprintf("record %q has no sequence data", rec.ID)})
	}
	rec.Seq = seq.Bytes()
	return rec, nil
}

// fastqFail reports a malformed FASTQ record: strict mode aborts the parse,
// tolerant mode resynchronizes to the next plausible record header and
// returns the RecordError for per-record accounting. Every failure path has
// consumed at least one line before calling this, so tolerant parsing always
// makes progress.
func (r *Reader) fastqFail(re *RecordError) (*Record, error) {
	if !r.tolerant {
		return nil, re
	}
	r.resyncFastq()
	return nil, re
}

// resyncFastq scans forward for the next line that can start a FASTQ record:
// an '@' line whose line+2 starts with '+'. An '@' alone is not enough —
// quality strings may legitimately begin with '@', so the separator two
// lines ahead is the disambiguator. A candidate too close to EOF for the
// check is accepted as-is and left for the next Read to judge. Everything
// before the candidate is discarded.
func (r *Reader) resyncFastq() {
	for {
		nl, err := r.peekLine(0)
		if err != nil {
			return // EOF (or a sticky stream error the next Read reports)
		}
		if strings.HasPrefix(nl.text, "@") {
			sep, err := r.peekLine(2)
			if err != nil || strings.HasPrefix(sep.text, "+") {
				return
			}
		}
		r.dropPeeked(1)
	}
}

func (r *Reader) readFastq() (*Record, error) {
	header, err := r.peekLine(0)
	if err == io.EOF {
		r.done = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if header.text == "" {
		// A run of blank lines is legal at EOF (trailing newlines are
		// common); anywhere else it is a malformed region.
		n := 1
		for {
			nl, err := r.peekLine(n)
			if err == io.EOF {
				r.dropPeeked(n)
				r.done = true
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			if nl.text != "" {
				break
			}
			n++
		}
		r.dropPeeked(n)
		return r.fastqFail(&RecordError{Line: header.num, Reason: ReasonBlankLine,
			Detail: fmt.Sprintf("line %d: blank line inside FASTQ", header.num)})
	}
	if !strings.HasPrefix(header.text, "@") {
		r.dropPeeked(1)
		return r.fastqFail(&RecordError{Line: header.num, Reason: ReasonBadHeader,
			Detail: fmt.Sprintf("line %d: FASTQ header must start with '@', got %q", header.num, header.text)})
	}
	rec := &Record{}
	rec.ID, rec.Desc = splitHeader(strings.TrimPrefix(header.text, "@"))
	if rec.ID == "" {
		r.dropPeeked(1)
		return r.fastqFail(&RecordError{Line: header.num, Reason: ReasonEmptyID,
			Detail: fmt.Sprintf("line %d: empty FASTQ header", header.num)})
	}
	seq, err := r.peekLine(1)
	if err == io.EOF {
		r.dropPeeked(1)
		return r.fastqFail(&RecordError{Line: header.num, RecordID: rec.ID, Reason: ReasonTruncated,
			Detail: fmt.Sprintf("record %q: truncated after header", rec.ID)})
	}
	if err != nil {
		return nil, err
	}
	sep, err := r.peekLine(2)
	if err == io.EOF {
		r.dropPeeked(2)
		return r.fastqFail(&RecordError{Line: header.num, RecordID: rec.ID, Reason: ReasonBadSeparator,
			Detail: fmt.Sprintf("record %q: missing '+' separator line", rec.ID)})
	}
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(sep.text, "+") {
		// Drop only the header: the "separator" may in fact be the next
		// record's header (a truncated record), which resync can recover.
		r.dropPeeked(1)
		return r.fastqFail(&RecordError{Line: sep.num, RecordID: rec.ID, Reason: ReasonBadSeparator,
			Detail: fmt.Sprintf("record %q: missing '+' separator line", rec.ID)})
	}
	qual, err := r.peekLine(3)
	if err == io.EOF {
		r.dropPeeked(3)
		return r.fastqFail(&RecordError{Line: header.num, RecordID: rec.ID, Reason: ReasonTruncated,
			Detail: fmt.Sprintf("record %q: truncated before quality line", rec.ID)})
	}
	if err != nil {
		return nil, err
	}
	if len(qual.text) != len(seq.text) {
		r.dropPeeked(1)
		return r.fastqFail(&RecordError{Line: qual.num, RecordID: rec.ID, Reason: ReasonQualMismatch,
			Detail: fmt.Sprintf("record %q: %d quality bytes for %d bases", rec.ID, len(qual.text), len(seq.text))})
	}
	r.dropPeeked(4)
	rec.Seq = []byte(seq.text)
	rec.Qual = []byte(qual.text)
	return rec, nil
}

// ReadAll parses every record in r.
func ReadAll(r io.Reader) ([]*Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var out []*Record
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadAllTolerant parses every record in r in tolerant mode: malformed
// records are returned as RecordErrors alongside the records that survived,
// and only stream-level failures (I/O, corrupt gzip) abort.
func ReadAllTolerant(r io.Reader) ([]*Record, []*RecordError, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	defer rd.Close()
	rd.SetTolerant(true)
	var out []*Record
	var recErrs []*RecordError
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return out, recErrs, nil
		}
		var re *RecordError
		if errors.As(err, &re) {
			recErrs = append(recErrs, re)
			continue
		}
		if err != nil {
			return out, recErrs, err
		}
		out = append(out, rec)
	}
}

// Writer emits records in FASTA or FASTQ format, optionally gzipped.
type Writer struct {
	w      *bufio.Writer
	gz     *gzip.Writer
	format Format
	// Width wraps FASTA sequence lines; <= 0 means no wrapping.
	Width int
}

// NewWriter creates a Writer for the given format. If compress is true the
// output is gzipped.
func NewWriter(w io.Writer, format Format, compress bool) *Writer {
	out := &Writer{format: format, Width: 70}
	if compress {
		out.gz = gzip.NewWriter(w)
		out.w = bufio.NewWriter(out.gz)
	} else {
		out.w = bufio.NewWriter(w)
	}
	return out
}

// Write emits one record. FASTA output drops qualities; FASTQ output
// synthesises flat qualities ('I') if the record has none.
func (w *Writer) Write(rec *Record) error {
	if rec.ID == "" {
		return fmt.Errorf("fastx: cannot write record with empty ID")
	}
	header := rec.ID
	if rec.Desc != "" {
		header += " " + rec.Desc
	}
	if w.format == FASTA {
		if _, err := fmt.Fprintf(w.w, ">%s\n", header); err != nil {
			return err
		}
		seq := rec.Seq
		width := w.Width
		if width <= 0 {
			width = len(seq)
		}
		for len(seq) > 0 {
			n := width
			if n > len(seq) {
				n = len(seq)
			}
			if _, err := w.w.Write(seq[:n]); err != nil {
				return err
			}
			if err := w.w.WriteByte('\n'); err != nil {
				return err
			}
			seq = seq[n:]
		}
		return nil
	}
	qual := rec.Qual
	if qual == nil {
		qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
	}
	if len(qual) != len(rec.Seq) {
		return fmt.Errorf("fastx: record %q: quality/sequence length mismatch", rec.ID)
	}
	_, err := fmt.Fprintf(w.w, "@%s\n%s\n+\n%s\n", header, rec.Seq, qual)
	return err
}

// Close flushes buffers and finishes the gzip stream if active.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}
