package fmindex

import "fmt"

// Super-maximal exact matches (Li 2012, the seeding algorithm of BWA-MEM):
// an SMEM is an exact match between a pattern slice and the text that is
// not contained in any other exact match of the pattern. SMEMs make far
// better seeds than fixed-length fragments because they adapt their length
// to the local repeat structure — long in unique regions, short where the
// text is repetitive.

// SMEM is one super-maximal exact match.
type SMEM struct {
	// Start and End delimit the pattern slice, half-open.
	Start, End int
	// Rows is the bidirectional interval of the match.
	Rows BiRange
}

// Len returns the match length.
func (s SMEM) Len() int { return s.End - s.Start }

type biCandidate struct {
	rows BiRange
	end  int
}

// SMEMs returns every SMEM of pattern with length >= minLen, in pattern
// order.
func (bi *BiIndex) SMEMs(pattern []uint8, minLen int) ([]SMEM, error) {
	out, _, err := bi.SMEMsSteps(pattern, minLen)
	return out, err
}

// SMEMsSteps is SMEMs also reporting the number of bidirectional extension
// operations the search executed — the per-pattern work measure a pipelined
// seeding kernel retires one per cycle, so it drives the FPGA simulator's
// pass-1 cycle model.
func (bi *BiIndex) SMEMsSteps(pattern []uint8, minLen int) ([]SMEM, int, error) {
	if minLen < 1 {
		return nil, 0, fmt.Errorf("fmindex: minimum SMEM length %d must be >= 1", minLen)
	}
	var out []SMEM
	steps := 0
	x := 0
	for x < len(pattern) {
		mems, next, n := bi.smemsFromPivot(pattern, x)
		steps += n
		for _, m := range mems {
			if m.Len() >= minLen {
				out = append(out, m)
			}
		}
		x = next
	}
	// Pivot-order emission is per-pivot sorted by start already; across
	// pivots starts strictly increase, so out is in pattern order.
	return out, steps, nil
}

// smemsFromPivot returns all SMEMs containing position x (unfiltered), the
// next pivot (the end of the longest match through x), and the number of
// extension operations performed.
func (bi *BiIndex) smemsFromPivot(pattern []uint8, x int) ([]SMEM, int, int) {
	steps := 0
	sym := pattern[x]
	if int(sym) >= bi.sigma {
		return nil, x + 1, steps
	}
	steps++
	ik := bi.ExtendLeft(bi.All(), sym)
	if ik.Empty() {
		return nil, x + 1, steps
	}

	// Forward pass: extend right from the pivot, recording the interval
	// before every size drop. curr ends up holding the match [x, end) for
	// each distinct right-maximality level.
	var curr []biCandidate
	for i := x + 1; ; i++ {
		if i == len(pattern) {
			curr = append(curr, biCandidate{rows: ik, end: i})
			break
		}
		steps++
		ik1 := bi.ExtendRight(ik, pattern[i])
		if ik1.Count() != ik.Count() {
			curr = append(curr, biCandidate{rows: ik, end: i})
		}
		if ik1.Empty() {
			break
		}
		ik = ik1
	}
	// Longest first.
	for a, b := 0, len(curr)-1; a < b; a, b = a+1, b-1 {
		curr[a], curr[b] = curr[b], curr[a]
	}
	nextPivot := curr[0].end

	// Backward pass: march the left edge from x-1 downwards. An element
	// that can no longer extend left while nothing longer survived this
	// round is a super-maximal match.
	var out []SMEM
	for j := x - 1; ; j-- {
		var prev []biCandidate
		sizeLast := -1
		emitted := false
		for _, cand := range curr {
			var ext BiRange
			if j >= 0 {
				steps++
				ext = bi.ExtendLeft(cand.rows, pattern[j])
			}
			if j < 0 || ext.Empty() {
				// cand dies here. It is super-maximal iff nothing longer
				// survived (prev empty) and nothing longer already died at
				// this same left edge (emitted).
				if len(prev) == 0 && !emitted {
					out = append(out, SMEM{Start: j + 1, End: cand.end, Rows: cand.rows})
					emitted = true
				}
				continue
			}
			if ext.Count() != sizeLast {
				sizeLast = ext.Count()
				prev = append(prev, biCandidate{rows: ext, end: cand.end})
			}
		}
		if len(prev) == 0 {
			break
		}
		curr = prev
	}
	// out was emitted with decreasing end / decreasing start; reverse to
	// pattern order.
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out, nextPivot, steps
}
