package fmindex

import (
	"fmt"
	"sync"
)

// Super-maximal exact matches (Li 2012, the seeding algorithm of BWA-MEM):
// an SMEM is an exact match between a pattern slice and the text that is
// not contained in any other exact match of the pattern. SMEMs make far
// better seeds than fixed-length fragments because they adapt their length
// to the local repeat structure — long in unique regions, short where the
// text is repetitive.

// SMEM is one super-maximal exact match.
type SMEM struct {
	// Start and End delimit the pattern slice, half-open.
	Start, End int
	// Rows is the bidirectional interval of the match.
	Rows BiRange
}

// Len returns the match length.
func (s SMEM) Len() int { return s.End - s.Start }

type biCandidate struct {
	rows BiRange
	end  int
}

// smemScratch holds the per-pivot working state of the SMEM search so a
// steady-state caller allocates nothing: the two candidate generations of
// the backward pass and the per-pivot emission buffer. Pooled because SMEM
// search runs concurrently on batch workers.
type smemScratch struct {
	curr, prev []biCandidate
	pivot      []SMEM
}

var smemScratchPool = sync.Pool{New: func() any { return new(smemScratch) }}

// SMEMs returns every SMEM of pattern with length >= minLen, in pattern
// order.
func (bi *BiIndex) SMEMs(pattern []uint8, minLen int) ([]SMEM, error) {
	out, _, err := bi.SMEMsSteps(pattern, minLen)
	return out, err
}

// SMEMsSteps is SMEMs also reporting the number of bidirectional extension
// operations the search executed — the per-pattern work measure a pipelined
// seeding kernel retires one per cycle, so it drives the FPGA simulator's
// pass-1 cycle model.
func (bi *BiIndex) SMEMsSteps(pattern []uint8, minLen int) ([]SMEM, int, error) {
	return bi.SMEMsAppend(nil, pattern, minLen)
}

// SMEMsAppend is SMEMsSteps appending into dst instead of allocating a
// fresh result slice: with a caller-reused dst of sufficient capacity the
// whole search is allocation-free in steady state (the per-pivot working
// state lives in a pooled scratch). Results, ordering, and the step count
// are identical to SMEMsSteps.
func (bi *BiIndex) SMEMsAppend(dst []SMEM, pattern []uint8, minLen int) ([]SMEM, int, error) {
	if minLen < 1 {
		return dst, 0, fmt.Errorf("fmindex: minimum SMEM length %d must be >= 1", minLen)
	}
	sc := smemScratchPool.Get().(*smemScratch)
	steps := 0
	x := 0
	for x < len(pattern) {
		mems, next, n := bi.smemsFromPivot(sc, pattern, x)
		steps += n
		for _, m := range mems {
			if m.Len() >= minLen {
				dst = append(dst, m)
			}
		}
		x = next
	}
	smemScratchPool.Put(sc)
	// Pivot-order emission is per-pivot sorted by start already; across
	// pivots starts strictly increase, so dst stays in pattern order.
	return dst, steps, nil
}

// smemsFromPivot returns all SMEMs containing position x (unfiltered), the
// next pivot (the end of the longest match through x), and the number of
// extension operations performed. The returned slice aliases sc.pivot and
// is valid until the next call with the same scratch.
func (bi *BiIndex) smemsFromPivot(sc *smemScratch, pattern []uint8, x int) ([]SMEM, int, int) {
	steps := 0
	sym := pattern[x]
	if int(sym) >= bi.sigma {
		return nil, x + 1, steps
	}
	steps++
	ik := bi.ExtendLeft(bi.All(), sym)
	if ik.Empty() {
		return nil, x + 1, steps
	}

	// Forward pass: extend right from the pivot, recording the interval
	// before every size drop. curr ends up holding the match [x, end) for
	// each distinct right-maximality level.
	curr := sc.curr[:0]
	for i := x + 1; ; i++ {
		if i == len(pattern) {
			curr = append(curr, biCandidate{rows: ik, end: i})
			break
		}
		steps++
		ik1 := bi.ExtendRight(ik, pattern[i])
		if ik1.Count() != ik.Count() {
			curr = append(curr, biCandidate{rows: ik, end: i})
		}
		if ik1.Empty() {
			break
		}
		ik = ik1
	}
	// Longest first.
	for a, b := 0, len(curr)-1; a < b; a, b = a+1, b-1 {
		curr[a], curr[b] = curr[b], curr[a]
	}
	nextPivot := curr[0].end

	// Backward pass: march the left edge from x-1 downwards. An element
	// that can no longer extend left while nothing longer survived this
	// round is a super-maximal match. The two generations ping-pong between
	// the scratch's slices.
	out := sc.pivot[:0]
	prevBuf := sc.prev[:0]
	for j := x - 1; ; j-- {
		prev := prevBuf[:0]
		sizeLast := -1
		emitted := false
		for _, cand := range curr {
			var ext BiRange
			if j >= 0 {
				steps++
				ext = bi.ExtendLeft(cand.rows, pattern[j])
			}
			if j < 0 || ext.Empty() {
				// cand dies here. It is super-maximal iff nothing longer
				// survived (prev empty) and nothing longer already died at
				// this same left edge (emitted).
				if len(prev) == 0 && !emitted {
					out = append(out, SMEM{Start: j + 1, End: cand.end, Rows: cand.rows})
					emitted = true
				}
				continue
			}
			if ext.Count() != sizeLast {
				sizeLast = ext.Count()
				prev = append(prev, biCandidate{rows: ext, end: cand.end})
			}
		}
		if len(prev) == 0 {
			break
		}
		curr, prevBuf = prev, curr[:0]
	}
	// out was emitted with decreasing end / decreasing start; reverse to
	// pattern order.
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	// Persist the (possibly regrown) buffers for the next pivot. curr and
	// prevBuf may be either of sc.curr/sc.prev after the ping-pong; keep
	// both by capacity so growth is retained.
	sc.curr, sc.prev, sc.pivot = curr[:0], prevBuf[:0], out
	return out, nextPivot, steps
}
