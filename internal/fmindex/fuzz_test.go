package fmindex

import (
	"testing"

	"bwaver/internal/bwt"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
)

// FuzzSearchWithFtab asserts the prefix-table search is bit-identical to the
// plain backward search: for any text, table order, and pattern — including
// out-of-alphabet symbols and reads shorter than k — both must return the
// same Range. The table stores the exact death range of dead k-mers, so this
// holds with no fallback re-search on the hot path; equality here is the
// whole correctness contract of the optimisation.
func FuzzSearchWithFtab(f *testing.F) {
	f.Add([]byte("ACGTACGGTACCTTAGGCAATCGA"), []byte("ACGT"), uint8(2))
	f.Add([]byte("AAAAAAAACCCCGGGG"), []byte("AAAC"), uint8(3))
	f.Add([]byte("ACGT"), []byte("NNACGT"), uint8(4))
	f.Add([]byte("TTTT"), []byte("T"), uint8(5))
	f.Fuzz(func(t *testing.T, textRaw, patternRaw []byte, kRaw uint8) {
		if len(textRaw) == 0 || len(textRaw) > 1<<10 {
			return
		}
		text := make([]uint8, len(textRaw))
		for i, b := range textRaw {
			text[i] = b & 3
		}
		// Patterns keep symbols up to 5 so values >= sigma exercise both the
		// table's miss path and Step's empty-range handling.
		pattern := make([]uint8, len(patternRaw))
		for i, b := range patternRaw {
			pattern[i] = b % 6
		}
		k := 1 + int(kRaw)%6
		sa, err := suffixarray.Build(text, 4)
		if err != nil {
			t.Skip() // degenerate text the pipeline rejects
		}
		tr, err := bwt.Transform(text, sa)
		if err != nil {
			t.Skip()
		}
		occ, err := NewWaveletOcc(tr.Data, 4, rrr.DefaultParams)
		if err != nil {
			t.Skip()
		}
		ix, err := New(tr, 4, occ, Options{SA: sa})
		if err != nil {
			t.Skip()
		}
		ftab, err := ix.BuildFtab(k)
		if err != nil {
			t.Fatalf("BuildFtab(%d): %v", k, err)
		}
		ix.SetFtab(ftab)

		plain := ix.Count(pattern)
		got := ix.SearchWithFtab(pattern)
		if got != plain {
			t.Fatalf("k=%d pattern=%v: ftab search %+v != plain search %+v",
				k, pattern, got, plain)
		}
	})
}
