package fmindex

import (
	"encoding/binary"
	"fmt"
	"io"

	"bwaver/internal/bitvec"
)

const (
	sampledMagic = 0x53534131 // "SSA1"
	ftabMagic    = 0x46544231 // "FTB1"
)

// WriteTo serializes the sampled suffix array. It implements io.WriterTo.
func (s *SampledSA) WriteTo(w io.Writer) (int64, error) {
	var written int64
	head := [3]uint32{sampledMagic, uint32(s.rate), uint32(len(s.values))}
	if err := binary.Write(w, binary.LittleEndian, head); err != nil {
		return written, err
	}
	written += 12
	n, err := s.marks.WriteTo(w)
	written += n
	if err != nil {
		return written, err
	}
	if err := binary.Write(w, binary.LittleEndian, s.values); err != nil {
		return written, err
	}
	written += int64(len(s.values)) * 4
	return written, nil
}

// ReadSampledSA deserializes a sampled suffix array written by WriteTo.
func ReadSampledSA(r io.Reader) (*SampledSA, error) {
	var head [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &head); err != nil {
		return nil, fmt.Errorf("fmindex: reading sampled SA header: %w", err)
	}
	if head[0] != sampledMagic {
		return nil, fmt.Errorf("fmindex: bad sampled SA magic %#x", head[0])
	}
	if head[1] < 1 {
		return nil, fmt.Errorf("fmindex: sampled SA rate %d invalid", head[1])
	}
	marks, err := bitvec.ReadVector(r)
	if err != nil {
		return nil, err
	}
	if int(head[2]) != marks.Ones() {
		return nil, fmt.Errorf("fmindex: sampled SA has %d values but %d marks", head[2], marks.Ones())
	}
	values := make([]int32, head[2])
	if err := binary.Read(r, binary.LittleEndian, values); err != nil {
		return nil, fmt.Errorf("fmindex: reading sampled SA values: %w", err)
	}
	return &SampledSA{rate: int(head[1]), marks: marks, values: values}, nil
}

// WriteTo serializes the prefix table (magic, order, then the two interval
// arrays). It implements io.WriterTo. Lookup counters are runtime state and
// are not persisted.
func (f *Ftab) WriteTo(w io.Writer) (int64, error) {
	var written int64
	head := [2]uint32{ftabMagic, uint32(f.k)}
	if err := binary.Write(w, binary.LittleEndian, head); err != nil {
		return written, err
	}
	written += 8
	if err := binary.Write(w, binary.LittleEndian, f.lo); err != nil {
		return written, err
	}
	written += int64(len(f.lo)) * 4
	if err := binary.Write(w, binary.LittleEndian, f.hi); err != nil {
		return written, err
	}
	written += int64(len(f.hi)) * 4
	return written, nil
}

// ReadFtab deserializes a prefix table written by WriteTo. Callers must
// Validate the result against their index length before attaching it.
func ReadFtab(r io.Reader) (*Ftab, error) {
	var head [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &head); err != nil {
		return nil, fmt.Errorf("fmindex: reading ftab header: %w", err)
	}
	if head[0] != ftabMagic {
		return nil, fmt.Errorf("fmindex: bad ftab magic %#x", head[0])
	}
	k := int(head[1])
	if k < 1 || k > MaxFtabK {
		return nil, fmt.Errorf("fmindex: ftab order %d outside [1,%d]", k, MaxFtabK)
	}
	entries := 1 << (2 * k)
	f := &Ftab{k: k, lo: make([]int32, entries), hi: make([]int32, entries)}
	if err := binary.Read(r, binary.LittleEndian, f.lo); err != nil {
		return nil, fmt.Errorf("fmindex: reading ftab intervals: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, f.hi); err != nil {
		return nil, fmt.Errorf("fmindex: reading ftab intervals: %w", err)
	}
	return f, nil
}
