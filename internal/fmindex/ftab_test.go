package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
)

func ftabTestIndex(t *testing.T, n int, seed int64) (*Index, []uint8) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	text := buildText(rng, n)
	ix := buildWith(t, text, func(d []uint8) (OccProvider, error) {
		return NewWaveletOcc(d, 4, testParams)
	}, fullSAOpts)
	return ix, text
}

// TestBuildFtabMatchesCount is the core contract: every entry of the table —
// living or dead — equals what the plain backward search returns on that
// k-mer, bit for bit. Dead entries must carry the exact range produced at
// the first death step, not just any empty range, because SearchWithFtab
// returns them verbatim.
func TestBuildFtabMatchesCount(t *testing.T) {
	ix, _ := ftabTestIndex(t, 300, 11)
	for _, k := range []int{1, 2, 3, 5} {
		ftab, err := ix.BuildFtab(k)
		if err != nil {
			t.Fatalf("BuildFtab(%d): %v", k, err)
		}
		if ftab.K() != k || ftab.Entries() != 1<<(2*k) {
			t.Fatalf("k=%d: K()=%d Entries()=%d", k, ftab.K(), ftab.Entries())
		}
		kmer := make([]uint8, k)
		for key := 0; key < ftab.Entries(); key++ {
			for i := 0; i < k; i++ {
				kmer[i] = uint8(key >> (2 * (k - 1 - i)) & 3)
			}
			want := ix.Count(kmer)
			if got := ftab.Lookup(key); got != want {
				t.Fatalf("k=%d key=%d kmer=%v: table %+v, plain search %+v",
					k, key, kmer, got, want)
			}
		}
		if err := ftab.Validate(ix.Len()); err != nil {
			t.Fatalf("k=%d: Validate: %v", k, err)
		}
	}
}

func TestBuildFtabRejectsBadK(t *testing.T) {
	ix, _ := ftabTestIndex(t, 64, 12)
	for _, k := range []int{0, -1, MaxFtabK + 1} {
		if _, err := ix.BuildFtab(k); err == nil {
			t.Errorf("BuildFtab(%d) accepted", k)
		}
	}
}

// TestSearchWithFtabPaths drives all four lookup outcomes — table hit on a
// living k-mer, hit on a dead k-mer, miss on an out-of-alphabet suffix
// symbol, and a read shorter than k — and checks both the result equality
// and the counter bookkeeping.
func TestSearchWithFtabPaths(t *testing.T) {
	ix, text := ftabTestIndex(t, 400, 13)
	const k = 4
	ftab, err := ix.BuildFtab(k)
	if err != nil {
		t.Fatal(err)
	}
	ix.SetFtab(ftab)
	if ix.Ftab() != ftab {
		t.Fatal("Ftab() does not return the attached table")
	}

	check := func(pattern []uint8) {
		t.Helper()
		if got, want := ix.SearchWithFtab(pattern), ix.Count(pattern); got != want {
			t.Fatalf("pattern %v: ftab %+v != plain %+v", pattern, got, want)
		}
	}
	check(text[10:30])                      // living hit
	check([]uint8{0, 1, 2, 3, 9, 9, 9, 9}) // suffix k-mer with sym>=4: stored death range
	check([]uint8{9, 9, 0, 1, 2, 3})       // miss: can't encode the suffix, falls back
	check(text[5 : 5+k-1])                 // short read, falls back
	check(nil)                             // empty pattern

	st := ftab.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Short != 2 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 2 short", st)
	}

	// Steps accounting: a dead-suffix hit answers in one modeled cycle.
	if _, steps := ix.SearchWithFtabSteps([]uint8{0, 0, 9, 9, 9, 9}); steps != 1 {
		t.Errorf("dead table hit took %d steps, want 1", steps)
	}

	ix.SetFtab(nil)
	if got, want := ix.SearchWithFtab(text[10:30]), ix.Count(text[10:30]); got != want {
		t.Errorf("no table: %+v != %+v", got, want)
	}
}

func TestFtabSerializeRoundTrip(t *testing.T) {
	ix, _ := ftabTestIndex(t, 200, 14)
	ftab, err := ix.BuildFtab(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := ftab.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: n=%d err=%v (buffered %d)", n, err, buf.Len())
	}
	back, err := ReadFtab(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != ftab.K() || back.Entries() != ftab.Entries() || back.SizeBytes() != ftab.SizeBytes() {
		t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d",
			back.K(), back.Entries(), back.SizeBytes(), ftab.K(), ftab.Entries(), ftab.SizeBytes())
	}
	for key := 0; key < ftab.Entries(); key++ {
		if back.Lookup(key) != ftab.Lookup(key) {
			t.Fatalf("entry %d changed across serialization", key)
		}
	}
	if err := back.Validate(ix.Len()); err != nil {
		t.Fatal(err)
	}

	// Corrupt magic must be rejected.
	raw := buf.Bytes()
	raw[0] ^= 0xff
	if _, err := ReadFtab(bytes.NewReader(raw)); err == nil {
		t.Error("accepted corrupt magic")
	}
}

func TestFtabValidateRejectsForeignTable(t *testing.T) {
	ix, _ := ftabTestIndex(t, 200, 15)
	ftab, err := ix.BuildFtab(3)
	if err != nil {
		t.Fatal(err)
	}
	// Against a much shorter text the stored rows exceed n+1 and must fail.
	if err := ftab.Validate(4); err == nil {
		t.Error("Validate accepted a table with rows beyond the index")
	}
}
