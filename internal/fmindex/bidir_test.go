package fmindex

import (
	"math/rand"
	"testing"

	"bwaver/internal/rrr"
)

func buildBi(t *testing.T, text []uint8) *BiIndex {
	t.Helper()
	bi, err := NewBiIndex(text, 4, rrr.Params{BlockSize: 15, SuperblockFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	return bi
}

func TestBiCountMatchesPlainIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	text := buildText(rng, 2000)
	bi := buildBi(t, text)
	for trial := 0; trial < 150; trial++ {
		var pattern []uint8
		if trial%2 == 0 {
			l := 1 + rng.Intn(25)
			s := rng.Intn(len(text) - l)
			pattern = text[s : s+l]
		} else {
			pattern = buildText(rng, 1+rng.Intn(15))
		}
		want := bi.Forward().Count(pattern)
		got := bi.Count(pattern)
		if got.Empty() != want.Empty() {
			t.Fatalf("bi count %v, plain %v for %v", got.Fwd, want, pattern)
		}
		if !got.Empty() && got.Fwd != want {
			t.Fatalf("bi interval %v, plain %v for %v", got.Fwd, want, pattern)
		}
	}
}

// TestBiExtendBothDirections grows a pattern outward from the middle and
// checks every intermediate interval against the plain index.
func TestBiExtendBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	text := buildText(rng, 3000)
	bi := buildBi(t, text)
	for trial := 0; trial < 40; trial++ {
		s := 20 + rng.Intn(len(text)-60)
		mid := s + 10
		r := bi.ExtendLeft(bi.All(), text[mid])
		lo, hi := mid, mid+1
		for step := 0; step < 18 && !r.Empty(); step++ {
			if step%2 == 0 && lo > 0 {
				lo--
				r = bi.ExtendLeft(r, text[lo])
			} else if hi < len(text) {
				r = bi.ExtendRight(r, text[hi])
				hi++
			}
			want := bi.Forward().Count(text[lo:hi])
			if r.Empty() != want.Empty() || (!r.Empty() && r.Fwd != want) {
				t.Fatalf("trial %d [%d,%d): bi %v, plain %v", trial, lo, hi, r.Fwd, want)
			}
			// The reverse interval must have the same size and count the
			// reversed pattern in the reversed text.
			if !r.Empty() && r.Rev.Count() != want.Count() {
				t.Fatalf("trial %d: rev interval size %d, want %d", trial, r.Rev.Count(), want.Count())
			}
		}
	}
}

func TestBiExtendInvalidSymbol(t *testing.T) {
	text := []uint8{0, 1, 2, 3, 0, 1}
	bi := buildBi(t, text)
	if !bi.ExtendLeft(bi.All(), 9).Empty() {
		t.Error("invalid symbol extended left")
	}
	if !bi.ExtendRight(bi.All(), 9).Empty() {
		t.Error("invalid symbol extended right")
	}
	dead := bi.ExtendLeft(bi.All(), 0)
	dead = BiRange{Fwd: Range{Start: 1, End: 0}, Rev: Range{Start: 1, End: 0}}
	if !bi.ExtendLeft(dead, 0).Empty() {
		t.Error("empty interval extended")
	}
}

// TestBiRevIntervalIsReverseCount verifies the synchronised-interval
// invariant directly: the Rev interval of pattern P equals the plain
// interval of reverse(P) in the reversed text.
func TestBiRevIntervalIsReverseCount(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	text := buildText(rng, 1200)
	bi := buildBi(t, text)
	for trial := 0; trial < 60; trial++ {
		l := 1 + rng.Intn(12)
		s := rng.Intn(len(text) - l)
		pattern := text[s : s+l]
		revPattern := make([]uint8, l)
		for i, c := range pattern {
			revPattern[l-1-i] = c
		}
		r := bi.Count(pattern)
		want := bi.rev.Count(revPattern)
		if r.Empty() != want.Empty() || (!r.Empty() && r.Rev != want) {
			t.Fatalf("rev interval %v, want %v", r.Rev, want)
		}
	}
}
