package fmindex

// Greedy backward-search segmentation, the classic FM-index seeding
// strategy for error-containing reads: scan the pattern right to left,
// extending the current match until the interval would empty, then emit the
// matched segment and restart. Every emitted segment occurs in the text and
// is left-maximal (extending it one symbol left kills it), which makes the
// segments high-quality seeds for the seed-and-extend pipeline the paper's
// introduction motivates.

// Segment is one maximal exact match of a pattern slice.
type Segment struct {
	// Start and End delimit the matched pattern slice, half-open.
	Start, End int
	// Rows is the suffix-array interval of the matched slice.
	Rows Range
}

// Len returns the segment length.
func (s Segment) Len() int { return s.End - s.Start }

// Segments decomposes pattern into greedy right-to-left maximal match
// segments. Pattern positions whose symbol is outside the alphabet (or that
// cannot extend any match, such as a symbol absent from the text) come back
// as zero-length segments so the caller can account for every position;
// they carry an empty row range.
func (ix *Index) Segments(pattern []uint8) []Segment {
	var out []Segment
	end := len(pattern)
	for end > 0 {
		r := ix.All()
		i := end
		for i > 0 {
			next := ix.Step(r, pattern[i-1])
			if next.Empty() {
				break
			}
			r = next
			i--
		}
		if i == end {
			// The single symbol at end-1 matches nowhere: emit a
			// zero-length marker and move past it.
			out = append(out, Segment{Start: end - 1, End: end - 1, Rows: Range{Start: 1, End: 0}})
			end--
			continue
		}
		out = append(out, Segment{Start: i, End: end, Rows: r})
		end = i
	}
	// Reverse to pattern order.
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out
}

// LongestSegment returns the longest segment of the decomposition, a cheap
// single best seed; ok is false when nothing matched.
func (ix *Index) LongestSegment(pattern []uint8) (Segment, bool) {
	best := Segment{}
	found := false
	for _, s := range ix.Segments(pattern) {
		if s.Len() > best.Len() {
			best = s
			found = true
		}
	}
	return best, found
}
