// Package fmindex implements the FM-index backward search of Ferragina and
// Manzini as used by the BWaveR paper (§III-A): given the BWT of a reference
// and an Occ structure over it, it finds the suffix-array interval of every
// suffix of the pattern in O(p) rank queries, then reports occurrence
// positions through a full or sampled suffix array.
package fmindex

import (
	"errors"
	"fmt"

	"bwaver/internal/bitvec"
	"bwaver/internal/bwt"
)

// Range is an inclusive interval [Start, End] of rows of the conceptual
// Burrows-Wheeler matrix (the paper's [start(X), end(X)]). An empty match is
// any range with Start > End.
type Range struct {
	Start, End int
}

// Empty reports whether the range contains no rows.
func (r Range) Empty() bool { return r.Start > r.End }

// Count returns the number of rows (pattern occurrences) in the range.
func (r Range) Count() int {
	if r.Empty() {
		return 0
	}
	return r.End - r.Start + 1
}

// Index is an FM-index over a text of length n. Rows are numbered 0..n over
// the full Burrows-Wheeler matrix; row 0 always corresponds to the sentinel
// suffix.
type Index struct {
	occ OccProvider
	// wocc is occ's concrete form when it is the wavelet provider. StepAll
	// calls through it directly: the devirtualized call lets escape analysis
	// keep the whole-alphabet count buffers on the stack, where the interface
	// call would force a heap allocation per step.
	wocc    *WaveletOcc
	sigma   int
	primary int
	n       int
	// cFull[s] = number of matrix rows whose first symbol sorts before s,
	// including the sentinel row; cFull[sigma] = n+1.
	cFull []int

	sa      []int32    // full suffix array (optional)
	sampled *SampledSA // sampled suffix array (optional)
	ftab    *Ftab      // k-mer prefix-lookup table (optional)
}

// Options configure locate support.
type Options struct {
	// SA is the full suffix array (length n+1). If set, Locate is O(1) per
	// occurrence; this is what the paper's host does.
	SA []int32
	// SampleRate, if > 0 and SA is nil at build time, is not valid — build
	// a SampledSA with NewSampledSA and pass it here instead.
	Sampled *SampledSA
}

// New builds an Index from a BWT, its alphabet size, and an Occ provider
// that must already encode b.Data.
func New(b *bwt.BWT, sigma int, occ OccProvider, opts Options) (*Index, error) {
	counts, err := b.SymbolCounts(sigma)
	if err != nil {
		return nil, err
	}
	return NewFromParts(occ, sigma, b.Primary, counts, opts)
}

// NewFromParts builds an Index from an already-encoded Occ provider, the
// sentinel position, and per-symbol counts — the deserialization path, where
// no raw BWT data exists.
func NewFromParts(occ OccProvider, sigma, primary int, counts []int, opts Options) (*Index, error) {
	if occ.Sigma() < sigma {
		return nil, fmt.Errorf("fmindex: occ provider alphabet %d smaller than %d", occ.Sigma(), sigma)
	}
	if len(counts) != sigma {
		return nil, fmt.Errorf("fmindex: %d symbol counts for alphabet of %d", len(counts), sigma)
	}
	n := occ.Len()
	total := 0
	for s, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("fmindex: negative count for symbol %d", s)
		}
		total += c
	}
	if total != n {
		return nil, fmt.Errorf("fmindex: symbol counts sum to %d, occ covers %d", total, n)
	}
	if primary < 0 || primary > n {
		return nil, fmt.Errorf("fmindex: primary index %d out of range [0,%d]", primary, n)
	}
	cFull := make([]int, sigma+1)
	cFull[0] = 1 // the sentinel row
	for s := 0; s < sigma; s++ {
		cFull[s+1] = cFull[s] + counts[s]
	}
	ix := &Index{occ: occ, sigma: sigma, primary: primary, n: n, cFull: cFull}
	ix.wocc, _ = occ.(*WaveletOcc)
	if opts.SA != nil {
		if len(opts.SA) != n+1 {
			return nil, fmt.Errorf("fmindex: suffix array length %d, want %d", len(opts.SA), n+1)
		}
		ix.sa = opts.SA
	}
	ix.sampled = opts.Sampled
	return ix, nil
}

// SymbolCount returns the number of occurrences of sym in the text.
func (ix *Index) SymbolCount(sym uint8) int {
	if int(sym) >= ix.sigma {
		return 0
	}
	return ix.cFull[sym+1] - ix.cFull[sym]
}

// SA returns the full suffix array if the index holds one, else nil.
func (ix *Index) SA() []int32 { return ix.sa }

// Sampled returns the sampled suffix array if the index holds one, else nil.
func (ix *Index) Sampled() *SampledSA { return ix.sampled }

// Len returns the text length n.
func (ix *Index) Len() int { return ix.n }

// Sigma returns the alphabet size.
func (ix *Index) Sigma() int { return ix.sigma }

// Primary returns the sentinel row.
func (ix *Index) Primary() int { return ix.primary }

// OccName reports the underlying Occ provider.
func (ix *Index) OccName() string { return ix.occ.Name() }

// OccProvider exposes the underlying Occ structure (for serialization).
func (ix *Index) OccProvider() OccProvider { return ix.occ }

// occFull answers Occ over the full transform, adjusting the query position
// around the sentinel slot — the paper's separate-$ optimisation.
func (ix *Index) occFull(sym uint8, i int) int {
	if i > ix.primary {
		i--
	}
	return ix.occ.Occ(sym, i)
}

// All returns the range covering every row (the empty-pattern interval).
func (ix *Index) All() Range { return Range{Start: 0, End: ix.n} }

// Step extends the current match range one symbol to the left: if r is the
// interval of rows prefixed by X, Step(r, a) is the interval for aX
// (equations 4 and 5 of the paper). The FPGA simulator calls this per base
// so its cycle accounting mirrors the real kernel's per-step rank pair.
func (ix *Index) Step(r Range, sym uint8) Range {
	if int(sym) >= ix.sigma {
		return Range{Start: 1, End: 0}
	}
	return Range{
		Start: ix.cFull[sym] + ix.occFull(sym, r.Start),
		End:   ix.cFull[sym] + ix.occFull(sym, r.End+1) - 1,
	}
}

// maxStepAllSigma bounds the stack scratch StepAll uses for its
// whole-alphabet Occ queries; alphabets larger than this fall back to
// per-symbol stepping.
const maxStepAllSigma = 8

// StepAll computes Step(r, b) for every symbol b in [0, sigma) into
// dst[0:sigma]. When the Occ provider supports whole-alphabet queries
// (OccAller — the wavelet structure does) it resolves all sigma steps with
// two OccAll traversals, one per interval endpoint: for DNA that is 6
// bit-vector ranks instead of the 16 that four separate Step calls issue.
// The bidirectional extension step — the seeding hot loop, which needs every
// symbol's interval to maintain the mirror range — is built on it.
func (ix *Index) StepAll(r Range, dst []Range) {
	if ix.wocc == nil || ix.sigma > maxStepAllSigma {
		ix.stepAllGeneric(r, dst)
		return
	}
	// Direct wavelet calls: devirtualized, so escape analysis keeps the
	// count buffers on the stack (a per-variable property — which is why the
	// interface-based fallback lives in a separate function, so its escaping
	// buffers cannot taint this path).
	var lo, hi [maxStepAllSigma]int
	i := r.Start
	if i > ix.primary {
		i--
	}
	j := r.End + 1
	if j > ix.primary {
		j--
	}
	ix.wocc.Tree.RankAll(i, lo[:ix.sigma])
	ix.wocc.Tree.RankAll(j, hi[:ix.sigma])
	for b := 0; b < ix.sigma; b++ {
		dst[b] = Range{Start: ix.cFull[b] + lo[b], End: ix.cFull[b] + hi[b] - 1}
	}
}

// stepAllGeneric is StepAll over an arbitrary provider: whole-alphabet
// queries through the OccAller interface when available, per-symbol Step
// otherwise.
func (ix *Index) stepAllGeneric(r Range, dst []Range) {
	oa, ok := ix.occ.(OccAller)
	if !ok || ix.sigma > maxStepAllSigma {
		for b := 0; b < ix.sigma; b++ {
			dst[b] = ix.Step(r, uint8(b))
		}
		return
	}
	var lo, hi [maxStepAllSigma]int
	i := r.Start
	if i > ix.primary {
		i--
	}
	oa.OccAll(i, lo[:ix.sigma])
	j := r.End + 1
	if j > ix.primary {
		j--
	}
	oa.OccAll(j, hi[:ix.sigma])
	for b := 0; b < ix.sigma; b++ {
		dst[b] = Range{Start: ix.cFull[b] + lo[b], End: ix.cFull[b] + hi[b] - 1}
	}
}

// Count runs the backward search for pattern and returns its row range.
// An empty pattern matches every row. The search stops as soon as the range
// becomes empty — the early-exit the paper leans on to explain why unmapped
// reads are cheaper (Fig. 7 discussion).
func (ix *Index) Count(pattern []uint8) Range {
	r := ix.All()
	for i := len(pattern) - 1; i >= 0; i-- {
		r = ix.Step(r, pattern[i])
		if r.Empty() {
			return r
		}
	}
	return r
}

// CountSteps runs the backward search and also reports how many steps it
// performed before matching or dying — one pass instead of Count followed by
// StepsTaken. The step count drives the FPGA cycle model.
func (ix *Index) CountSteps(pattern []uint8) (Range, int) {
	r := ix.All()
	for i := len(pattern) - 1; i >= 0; i-- {
		r = ix.Step(r, pattern[i])
		if r.Empty() {
			return r, len(pattern) - i
		}
	}
	return r, len(pattern)
}

// StepsTaken reports how many backward-search steps Count would perform for
// pattern: the full length for a matching read, fewer for one that falls off
// early. The FPGA cycle model uses it to price a query.
func (ix *Index) StepsTaken(pattern []uint8) int {
	r := ix.All()
	for i := len(pattern) - 1; i >= 0; i-- {
		r = ix.Step(r, pattern[i])
		if r.Empty() {
			return len(pattern) - i
		}
	}
	return len(pattern)
}

// LF maps a row to the row of the text position immediately to its left
// (last-first mapping). It must not be called on the sentinel row.
func (ix *Index) LF(row int) (int, error) {
	if row == ix.primary {
		return 0, errors.New("fmindex: LF on sentinel row")
	}
	sym, err := ix.rowSymbol(row)
	if err != nil {
		return 0, err
	}
	return ix.cFull[sym] + ix.occFull(sym, row), nil
}

// rowSymbol returns the BWT symbol of a non-sentinel row. It needs symbol
// access, which every bundled provider supports.
func (ix *Index) rowSymbol(row int) (uint8, error) {
	i := row
	if i > ix.primary {
		i--
	}
	switch p := ix.occ.(type) {
	case *WaveletOcc:
		return p.Tree.Access(i), nil
	case interface{ Symbol(int) uint8 }: // CheckpointOcc, RLFMOcc, ...
		return p.Symbol(i), nil
	case *FlatOcc:
		for s := 0; s < p.sigma; s++ {
			if p.table[s][i+1] > p.table[s][i] {
				return uint8(s), nil
			}
		}
		return 0, errors.New("fmindex: flat occ has no symbol at row")
	default:
		return 0, fmt.Errorf("fmindex: provider %s does not support symbol access", ix.occ.Name())
	}
}

// Locate returns the text positions of every row in r, unsorted. It uses
// the full suffix array when present (the paper's host-side lookup), else
// the sampled suffix array via LF walking, else an error.
func (ix *Index) Locate(r Range) ([]int32, error) {
	if r.Empty() {
		return nil, nil
	}
	return ix.LocateAppend(make([]int32, 0, r.Count()), r)
}

// LocateAppend appends the text positions of every row in r to dst and
// returns the extended slice, allocating only when dst's capacity runs out —
// the hot-path variant the batch mappers use with per-worker reusable
// buffers. An empty range returns dst unchanged.
func (ix *Index) LocateAppend(dst []int32, r Range) ([]int32, error) {
	if r.Empty() {
		return dst, nil
	}
	if r.Start < 0 || r.End > ix.n {
		return dst, fmt.Errorf("fmindex: range [%d,%d] outside rows [0,%d]", r.Start, r.End, ix.n)
	}
	if ix.sa != nil {
		return append(dst, ix.sa[r.Start:r.End+1]...), nil
	}
	if ix.sampled == nil {
		return dst, errors.New("fmindex: index built without locate support")
	}
	for row := r.Start; row <= r.End; row++ {
		pos, err := ix.locateOne(row)
		if err != nil {
			return dst, err
		}
		dst = append(dst, pos)
	}
	return dst, nil
}

func (ix *Index) locateOne(row int) (int32, error) {
	steps := int32(0)
	for !ix.sampled.marks.Bit(row) {
		next, err := ix.LF(row)
		if err != nil {
			return 0, err
		}
		row = next
		steps++
		if steps > int32(ix.n)+1 {
			return 0, errors.New("fmindex: locate walk did not terminate; index is corrupt")
		}
	}
	return ix.sampled.values[ix.sampled.marks.Rank1(row)] + steps, nil
}

// SizeBytes reports the footprint of the Occ structure plus whichever
// locate structure and prefix table are attached.
func (ix *Index) SizeBytes() int {
	size := ix.occ.SizeBytes() + len(ix.cFull)*8
	if ix.sa != nil {
		size += len(ix.sa) * 4
	}
	if ix.sampled != nil {
		size += ix.sampled.SizeBytes()
	}
	if ix.ftab != nil {
		size += ix.ftab.SizeBytes()
	}
	return size
}

// SampledSA stores every SampleRate-th suffix-array value (by text
// position), the standard FM-index sampling that trades locate time for
// space. The paper keeps the full SA on the host; this is the extension
// DESIGN.md lists for references beyond host memory.
type SampledSA struct {
	rate   int
	marks  *bitvec.Vector
	values []int32
}

// NewSampledSA samples sa (length n+1) at the given rate: rows whose suffix
// position is a multiple of rate are kept. Rate must be >= 1.
func NewSampledSA(sa []int32, rate int) (*SampledSA, error) {
	if rate < 1 {
		return nil, fmt.Errorf("fmindex: sample rate %d must be >= 1", rate)
	}
	b := bitvec.NewBuilder(len(sa))
	var values []int32
	for _, pos := range sa {
		if int(pos)%rate == 0 {
			b.Append(true)
			values = append(values, pos)
		} else {
			b.Append(false)
		}
	}
	return &SampledSA{rate: rate, marks: b.Build(), values: values}, nil
}

// Rate returns the sampling rate.
func (s *SampledSA) Rate() int { return s.rate }

// SizeBytes returns the sampled structure's footprint.
func (s *SampledSA) SizeBytes() int { return s.marks.SizeBytes() + len(s.values)*4 }
