package fmindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bwaver/internal/bwt"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
	"bwaver/internal/wavelet"
)

var testParams = rrr.Params{BlockSize: 15, SuperblockFactor: 10}

// naiveOccurrences returns all starting positions of pattern in text.
func naiveOccurrences(text, pattern []uint8) []int32 {
	var out []int32
	if len(pattern) == 0 {
		for i := 0; i <= len(text); i++ {
			out = append(out, int32(i))
		}
		return out
	}
outer:
	for i := 0; i+len(pattern) <= len(text); i++ {
		for j := range pattern {
			if text[i+j] != pattern[j] {
				continue outer
			}
		}
		out = append(out, int32(i))
	}
	return out
}

func buildText(rng *rand.Rand, n int) []uint8 {
	t := make([]uint8, n)
	for i := range t {
		t[i] = uint8(rng.Intn(4))
	}
	return t
}

type indexKind struct {
	name  string
	build func(t *testing.T, text []uint8) *Index
}

func buildWith(t *testing.T, text []uint8, mk func(data []uint8) (OccProvider, error), opts func(sa []int32) Options) *Index {
	t.Helper()
	sa, err := suffixarray.Build(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bwt.Transform(text, sa)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := mk(b.Data)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(b, 4, occ, opts(sa))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func fullSAOpts(sa []int32) Options { return Options{SA: sa} }

func sampledOpts(rate int) func(sa []int32) Options {
	return func(sa []int32) Options {
		s, err := NewSampledSA(sa, rate)
		if err != nil {
			panic(err)
		}
		return Options{Sampled: s}
	}
}

func indexKinds() []indexKind {
	wl := func(data []uint8) (OccProvider, error) { return NewWaveletOcc(data, 4, testParams) }
	plain := func(data []uint8) (OccProvider, error) {
		return NewWaveletOccBackend(data, 4, wavelet.PlainBackend())
	}
	flat := func(data []uint8) (OccProvider, error) { return NewFlatOcc(data, 4) }
	cp := func(data []uint8) (OccProvider, error) { return NewCheckpointOcc(data) }
	return []indexKind{
		{"wavelet-rrr+fullSA", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, wl, fullSAOpts) }},
		{"wavelet-plain+fullSA", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, plain, fullSAOpts) }},
		{"flat+fullSA", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, flat, fullSAOpts) }},
		{"checkpoint+fullSA", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, cp, fullSAOpts) }},
		{"wavelet-rrr+sampled4", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, wl, sampledOpts(4)) }},
		{"checkpoint+sampled8", func(t *testing.T, tx []uint8) *Index { return buildWith(t, tx, cp, sampledOpts(8)) }},
	}
}

func sortedEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestCountAndLocateMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	text := buildText(rng, 3000)
	for _, kind := range indexKinds() {
		ix := kind.build(t, text)
		// Patterns: sampled substrings (guaranteed hits), random patterns,
		// and patterns guaranteed absent (longer than text tail match).
		for trial := 0; trial < 120; trial++ {
			var pattern []uint8
			switch trial % 3 {
			case 0: // substring
				l := 1 + rng.Intn(30)
				s := rng.Intn(len(text) - l)
				pattern = append([]uint8(nil), text[s:s+l]...)
			case 1: // random
				pattern = buildText(rng, 1+rng.Intn(12))
			case 2: // likely absent: long random
				pattern = buildText(rng, 25)
			}
			want := naiveOccurrences(text, pattern)
			r := ix.Count(pattern)
			if r.Count() != len(want) {
				t.Fatalf("%s: Count(%v) = %d, want %d", kind.name, pattern, r.Count(), len(want))
			}
			if len(want) == 0 {
				continue
			}
			got, err := ix.Locate(r)
			if err != nil {
				t.Fatalf("%s: Locate: %v", kind.name, err)
			}
			if !sortedEqual(got, want) {
				t.Fatalf("%s: Locate mismatch for %v: got %v, want %v", kind.name, pattern, got, want)
			}
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := buildText(rng, 50)
	ix := indexKinds()[0].build(t, text)
	r := ix.Count(nil)
	if r.Count() != len(text)+1 {
		t.Errorf("empty pattern matched %d rows, want %d", r.Count(), len(text)+1)
	}
}

func TestPatternLongerThanText(t *testing.T) {
	text := []uint8{0, 1, 2}
	ix := indexKinds()[0].build(t, text)
	r := ix.Count([]uint8{0, 1, 2, 3, 0})
	if !r.Empty() {
		t.Errorf("over-long pattern matched %d rows", r.Count())
	}
}

func TestWholeTextMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := buildText(rng, 500)
	for _, kind := range indexKinds() {
		ix := kind.build(t, text)
		r := ix.Count(text)
		if r.Count() != 1 {
			t.Fatalf("%s: whole text matched %d times, want 1", kind.name, r.Count())
		}
		pos, err := ix.Locate(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(pos) != 1 || pos[0] != 0 {
			t.Fatalf("%s: whole text located at %v, want [0]", kind.name, pos)
		}
	}
}

func TestStepsTaken(t *testing.T) {
	// Construct a text without symbol 3 so any pattern ending in 3 stops
	// after one step.
	text := make([]uint8, 200)
	for i := range text {
		text[i] = uint8(i % 3)
	}
	ix := indexKinds()[0].build(t, text)
	if got := ix.StepsTaken([]uint8{0, 1, 3}); got != 1 {
		t.Errorf("StepsTaken for dead-end tail = %d, want 1", got)
	}
	pat := text[10:30]
	if got := ix.StepsTaken(pat); got != len(pat) {
		t.Errorf("StepsTaken for matching pattern = %d, want %d", got, len(pat))
	}
}

func TestInvalidSymbolInPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := buildText(rng, 100)
	ix := indexKinds()[0].build(t, text)
	r := ix.Count([]uint8{0, 9, 1})
	if !r.Empty() {
		t.Errorf("pattern with invalid symbol matched %d rows", r.Count())
	}
}

func TestLFWalkReconstructsText(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text := buildText(rng, 400)
	for _, kind := range indexKinds()[:4] { // full-SA kinds
		ix := kind.build(t, text)
		// Walk LF from row 0 (sentinel suffix) and reconstruct backwards.
		row := 0
		got := make([]uint8, len(text))
		for i := len(text) - 1; i >= 0; i-- {
			sym, err := ix.rowSymbol(row)
			if err != nil {
				t.Fatalf("%s: %v", kind.name, err)
			}
			got[i] = sym
			next, err := ix.LF(row)
			if err != nil {
				t.Fatalf("%s: LF: %v", kind.name, err)
			}
			row = next
		}
		if row != ix.Primary() {
			t.Fatalf("%s: LF walk ended at %d, want primary %d", kind.name, row, ix.Primary())
		}
		for i := range text {
			if got[i] != text[i] {
				t.Fatalf("%s: LF reconstruction differs at %d", kind.name, i)
			}
		}
	}
}

func TestLFOnSentinelRowFails(t *testing.T) {
	text := []uint8{0, 1, 2, 3}
	ix := indexKinds()[0].build(t, text)
	if _, err := ix.LF(ix.Primary()); err == nil {
		t.Error("LF on sentinel row should fail")
	}
}

func TestSampledLocateAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	text := buildText(rng, 800)
	for _, rate := range []int{1, 2, 3, 7, 16, 64} {
		ix := buildWith(t, text,
			func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
			sampledOpts(rate))
		for trial := 0; trial < 25; trial++ {
			l := 1 + rng.Intn(10)
			s := rng.Intn(len(text) - l)
			pattern := text[s : s+l]
			want := naiveOccurrences(text, pattern)
			got, err := ix.Locate(ix.Count(pattern))
			if err != nil {
				t.Fatalf("rate=%d: %v", rate, err)
			}
			if !sortedEqual(got, want) {
				t.Fatalf("rate=%d: locate mismatch", rate)
			}
		}
	}
}

func TestLocateWithoutSupportFails(t *testing.T) {
	text := []uint8{0, 1, 0, 1}
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewFlatOcc(d, 4) },
		func([]int32) Options { return Options{} })
	if _, err := ix.Locate(ix.Count([]uint8{0, 1})); err == nil {
		t.Error("Locate without SA should fail")
	}
}

func TestNewValidation(t *testing.T) {
	text := []uint8{0, 1, 2, 3}
	sa, _ := suffixarray.Build(text, 4)
	b, _ := bwt.Transform(text, sa)
	occ, _ := NewFlatOcc(b.Data, 4)
	if _, err := New(b, 4, occ, Options{SA: sa[:2]}); err == nil {
		t.Error("accepted short SA")
	}
	shortOcc, _ := NewFlatOcc(b.Data[:2], 4)
	if _, err := New(b, 4, shortOcc, Options{}); err == nil {
		t.Error("accepted occ of wrong length")
	}
	badBWT := &bwt.BWT{Data: b.Data, Primary: 99}
	if _, err := New(badBWT, 4, occ, Options{}); err == nil {
		t.Error("accepted bad primary")
	}
	if _, err := NewSampledSA(sa, 0); err == nil {
		t.Error("accepted zero sample rate")
	}
}

// Property: count via FM equals count via naive scan for random DNA.
func TestCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	text := buildText(rng, 1200)
	ix := indexKinds()[0].build(t, text)
	f := func(raw []byte) bool {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		pattern := make([]uint8, len(raw))
		for i, r := range raw {
			pattern[i] = r & 3
		}
		return ix.Count(pattern).Count() == len(naiveOccurrences(text, pattern))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the interval never grows as the pattern extends (paper §III-A:
// "the size of the interval either shrinks or remains the same").
func TestIntervalMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := buildText(rng, 600)
	ix := indexKinds()[0].build(t, text)
	for trial := 0; trial < 50; trial++ {
		pattern := buildText(rng, 15)
		r := ix.All()
		prev := r.Count()
		for i := len(pattern) - 1; i >= 0; i-- {
			r = ix.Step(r, pattern[i])
			if r.Count() > prev {
				t.Fatalf("interval grew from %d to %d", prev, r.Count())
			}
			prev = r.Count()
			if r.Empty() {
				break
			}
		}
	}
}

func TestOccProviderSizes(t *testing.T) {
	// Size ordering wavelet < checkpoint < flat holds on BWT-like data: long
	// runs of equal symbols, which is what the Occ providers actually store
	// in BWaveR. On maximum-entropy data RRR cannot compress and the shared
	// table dominates, so the test builds run-structured input.
	rng := rand.New(rand.NewSource(8))
	data := make([]uint8, 500000)
	cur := uint8(rng.Intn(4))
	for i := 0; i < len(data); {
		for j, runLen := 0, 1+rng.Intn(120); j < runLen && i < len(data); j++ {
			data[i] = cur
			i++
		}
		cur = uint8(rng.Intn(4))
	}
	wl, err := NewWaveletOcc(data, 4, rrr.Params{BlockSize: 15, SuperblockFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCheckpointOcc(data)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFlatOcc(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(wl.SizeBytes() < cp.SizeBytes() && cp.SizeBytes() < fl.SizeBytes()) {
		t.Errorf("expected wavelet(%d) < checkpoint(%d) < flat(%d)",
			wl.SizeBytes(), cp.SizeBytes(), fl.SizeBytes())
	}
}

func TestCheckpointOccRejectsNonDNA(t *testing.T) {
	if _, err := NewCheckpointOcc([]uint8{0, 1, 7}); err == nil {
		t.Error("checkpoint occ accepted non-DNA symbol")
	}
}

func TestOccWordAllSymbols(t *testing.T) {
	// Word with symbols 0,1,2,3 repeating.
	var w uint64
	for i := 0; i < 32; i++ {
		w |= uint64(i%4) << uint(i*2)
	}
	for sym := uint8(0); sym < 4; sym++ {
		for k := 0; k <= 32; k++ {
			want := 0
			for i := 0; i < k; i++ {
				if i%4 == int(sym) {
					want++
				}
			}
			if got := occWord(w, sym, k); got != want {
				t.Fatalf("occWord(sym=%d,k=%d) = %d, want %d", sym, k, got, want)
			}
		}
	}
}
